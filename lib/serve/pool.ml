module T = Hidet_tensor.Tensor
module G = Hidet_graph.Graph
module Plan = Hidet_runtime.Plan
module Parallel = Hidet_parallel.Parallel
module Metrics = Hidet_obs.Metrics
module Trace = Hidet_obs.Trace
module Events = Hidet_obs.Events
module Clock = Hidet_obs.Clock

type batch = {
  bid : int;
  bucket : int;
  members : Loadgen.request list;
  dispatch : float;
  completion : float;
  worker : int;
}

let padded_rows b = b.bucket - List.length b.members

let m_exec_batches = Metrics.counter "serve.exec_batches"
let m_check_failures = Metrics.counter "serve.check_failures"

let h_verify =
  Metrics.histogram
    ~bounds:[| 0.01; 0.05; 0.1; 0.5; 1.; 5.; 10.; 50.; 100. |]
    "serve.verify_ms"

(* Stack member rows (leading dim 1 each) along axis 0 and zero-pad the
   tail up to [bucket]. A full one-member bucket-1 batch passes through. *)
let assemble ~bucket rows =
  match rows with
  | [ r ] when bucket = 1 -> r
  | r :: _ ->
    let tail = List.tl (T.shape r) in
    let pad = bucket - List.length rows in
    let rows =
      if pad = 0 then rows else rows @ [ T.create (pad :: tail) ]
    in
    T.concat rows ~axis:0
  | [] -> invalid_arg "Pool: empty batch"

let run_batch ~seed model b =
  let variant = Registry.variant_exn model b.bucket in
  Trace.span "serve.exec_batch"
    ~attrs:(fun () ->
      [
        ("model", model.Registry.name);
        ("bucket", string_of_int b.bucket);
        ("members", string_of_int (List.length b.members));
        ("padded", string_of_int (padded_rows b));
        ("worker", string_of_int b.worker);
      ])
    (fun _ ->
      let per_member =
        List.map
          (fun (r : Loadgen.request) ->
            Loadgen.synth_inputs ~seed ~shapes:model.Registry.input_shapes
              r.Loadgen.rid)
          b.members
      in
      let inputs =
        List.mapi
          (fun i _ ->
            assemble ~bucket:b.bucket
              (List.map (fun tensors -> List.nth tensors i) per_member))
          model.Registry.input_shapes
      in
      let bindings =
        List.combine (G.input_ids variant.Registry.graph) inputs
      in
      (* Shard-group dispatch: a bucket with a shard plan runs its
         per-device fragments (host-side collectives included); buckets
         the strategy could not partition run their unsharded plan. *)
      let outs =
        match variant.Registry.shard with
        | Some shard -> Hidet_shard.Shard.run shard bindings
        | None -> Plan.run variant.Registry.plan bindings
      in
      let out =
        match outs with
        | [ o ] -> o
        | _ -> invalid_arg "Pool: served plans have exactly one output"
      in
      let rest = List.map (fun d -> (0, d)) (List.tl (T.shape out)) in
      Metrics.incr m_exec_batches;
      (* Same family as the total, distinguished by labels; Prom renders
         them as one metric family. *)
      Metrics.incr
        (Metrics.counter_labeled "serve.exec_batches"
           [
             ("model", model.Registry.name); ("bucket", string_of_int b.bucket);
           ]);
      (* Close the batch's flow arc: the arrow from the control plane's
         serve.dispatch span lands on this worker-domain span. *)
      Trace.flow ~id:((2 * b.bid) + 1) ~dir:Trace.Flow_end "serve.batch";
      List.mapi
        (fun j (r : Loadgen.request) ->
          let rid = r.Loadgen.rid in
          Trace.span "serve.demux"
            ~attrs:(fun () ->
              [ ("rid", string_of_int rid); ("bid", string_of_int b.bid) ])
            (fun _ ->
              Trace.flow ~id:(2 * rid) ~dir:Trace.Flow_end "serve.req");
          if Events.enabled () then
            Events.record
              {
                Events.t = b.completion;
                rid;
                kind = Events.Executed;
                attrs =
                  [
                    ("bid", string_of_int b.bid);
                    ("worker", string_of_int b.worker);
                  ];
              };
          (rid, T.slice out ((j, 1) :: rest)))
        b.members)

let execute ?workers ~seed model batches =
  let results =
    Parallel.map ?workers (run_batch ~seed model) (Array.of_list batches)
  in
  List.concat (Array.to_list results)

let check ?(at = fun _ -> 0.) ~seed model responses =
  let v1 = Registry.variant_exn model 1 in
  (* Bit-exact unless some bucket runs a reduction-order-changing shard
     strategy (tensor-reduce all-reduce epilogue): those are held to the
     repo-wide graph tolerance instead. *)
  let tolerant =
    List.exists
      (fun (v : Registry.variant) ->
        match v.Registry.shard with
        | Some s ->
          not (Hidet_shard.Shard.bit_exact (Hidet_shard.Shard.strategy s))
        | None -> false)
      model.Registry.variants
  in
  let mismatches =
    Parallel.map
      (fun (rid, (got : T.t)) ->
        let t0 = Clock.now_us () in
        let inputs =
          Loadgen.synth_inputs ~seed ~shapes:model.Registry.input_shapes rid
        in
        let want = Plan.run1 v1.Registry.plan inputs in
        (* Polymorphic compare on the raw arrays: bit-exact, NaN-robust. *)
        let ok =
          if tolerant then T.allclose ~rtol:1e-3 ~atol:1e-4 want got
          else compare (T.data got) (T.data want) = 0
        in
        Metrics.observe h_verify ((Clock.now_us () -. t0) /. 1e3);
        if Events.enabled () then
          Events.record
            {
              Events.t = at rid;
              rid;
              kind = Events.Verified;
              attrs = [ ("ok", if ok then "1" else "0") ];
            };
        if ok then 0
        else begin
          ignore
            (Events.flight_trip ~reason:"verify_mismatch" ~rid ~t:(at rid) ());
          1
        end)
      (Array.of_list responses)
  in
  let bad = Array.fold_left ( + ) 0 mismatches in
  for _ = 1 to bad do
    Metrics.incr m_check_failures
  done;
  bad
