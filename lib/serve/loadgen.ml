module Tensor = Hidet_tensor.Tensor

type request = { rid : int; client : int; arrival : float; deadline : float }

type profile =
  | Open_loop of { rps : float }
  | Closed_loop of { clients : int; think : float }

type burst = { start : float; dur : float; rps : float }

type t = {
  profile : profile;
  duration : float;
  deadline : float;
  burst : burst option;
  seed : int;
}

let validate lg =
  (match lg.profile with
  | Open_loop { rps } ->
    if rps <= 0. then invalid_arg "Loadgen: rps must be > 0"
  | Closed_loop { clients; think } ->
    if clients < 1 then invalid_arg "Loadgen: clients must be >= 1";
    (* think = 0 can livelock the virtual clock: a shed or rejected client
       would reissue at the same instant, forever. *)
    if think <= 0. then invalid_arg "Loadgen: think must be > 0");
  if lg.duration <= 0. then invalid_arg "Loadgen: duration must be > 0";
  if lg.deadline <= 0. then invalid_arg "Loadgen: deadline must be > 0";
  match lg.burst with
  | Some b when b.rps <= 0. || b.dur <= 0. ->
    invalid_arg "Loadgen: burst rps and dur must be > 0"
  | _ -> ()

(* One Poisson stream: exponential inter-arrival gaps at [rps], offset by
   [start], truncated to [start + dur]. *)
let poisson rng ~rps ~start ~dur =
  let rec go t acc =
    let u = Random.State.float rng 1.0 in
    let t = t +. (-.log (1.0 -. u) /. rps) in
    if t >= start +. dur then List.rev acc else go t (t :: acc)
  in
  go start []

let open_arrivals lg =
  match lg.profile with
  | Closed_loop _ -> []
  | Open_loop { rps } ->
    let base =
      poisson (Random.State.make [| lg.seed; 0x0a11 |]) ~rps ~start:0.
        ~dur:lg.duration
    in
    let extra =
      match lg.burst with
      | None -> []
      | Some b ->
        let dur = Float.min b.dur (lg.duration -. b.start) in
        if dur <= 0. then []
        else
          poisson (Random.State.make [| lg.seed; 0xb125 |]) ~rps:b.rps
            ~start:b.start ~dur
    in
    List.merge compare base extra

let request_attrs (r : request) =
  [
    ("client", string_of_int r.client);
    ("arrival", Printf.sprintf "%g" r.arrival);
    ("deadline", Printf.sprintf "%g" r.deadline);
  ]

let synth_inputs ~seed ~shapes rid =
  List.mapi
    (fun i shape -> Tensor.rand ~seed:(seed + (rid * 7919) + (i * 131)) shape)
    shapes
