(** Batch execution over worker domains, plus response verification.

    The virtual-time server ({!Server.simulate}) decides {e what} runs and
    {e when}; the pool then really runs those batches on the simulated GPU
    — assembling each batch's input tensors, padding the tail up to the
    bucket size, executing the bucket's plan, and demultiplexing one
    output row back per member request. Batches are spread across domains
    with [Hidet_parallel.Parallel.map]; plans were prepared at load time,
    so the workers never contend on the constant lock. *)

type batch = {
  bid : int;  (** dense dispatch-order id *)
  bucket : int;  (** plan variant the batch runs on (>= #members) *)
  members : Loadgen.request list;  (** admitted requests, arrival order *)
  dispatch : float;  (** virtual time the batcher launched it *)
  completion : float;  (** virtual time the service finished *)
  worker : int;  (** virtual worker the simulation placed it on *)
}

val padded_rows : batch -> int
(** [bucket - #members]: tail rows filled with zeros. *)

val execute :
  ?workers:int ->
  seed:int ->
  Registry.model ->
  batch list ->
  (int * Hidet_tensor.Tensor.t) list
(** Run every batch and demux: returns one [(rid, output-row)] pair per
    member request, in no particular order. Inputs are re-synthesized from
    [(seed, rid)] via {!Loadgen.synth_inputs}; each output row keeps its
    leading batch dim of 1, matching what the bucket-1 plan returns for
    the same request. Emits one [serve.exec_batch] trace span per batch
    (closing the batch's flow arc from [serve.dispatch]), one nested
    [serve.demux] span per member (closing the request's flow arc), an
    [Executed] lifecycle event per member, and bumps the per-model/bucket
    [serve.exec_batches] counters. *)

val check :
  ?at:(int -> float) ->
  seed:int ->
  Registry.model ->
  (int * Hidet_tensor.Tensor.t) list ->
  int
(** Re-run every response's request through the bucket-1 plan directly
    ([Plan.run1]) and compare bit-for-bit (exact float-array equality —
    batching must not change results, only pack rows; sharded models
    compile everything under deterministic-reduction options, so the
    same holds across shard groups). When some bucket runs a
    reduction-order-changing strategy (tensor-reduce), the comparison
    relaxes to the repo-wide graph tolerance. Returns the number
    of mismatching responses and bumps [serve.check_failures] for each.
    Also observes wall verify time into [serve.verify_ms], emits one
    [Verified] lifecycle event per response stamped [at rid] (the
    request's virtual completion time; defaults to 0), and trips the
    flight recorder on the first mismatch. *)
