module Metrics = Hidet_obs.Metrics
module Trace = Hidet_obs.Trace
module Events = Hidet_obs.Events

type config = {
  batcher : Batcher.config;
  workers : int;
  max_inflight : int;
  service_scale : float;
}

let validate cfg =
  Batcher.validate cfg.batcher;
  if cfg.workers < 1 then invalid_arg "Server: workers must be >= 1";
  if cfg.max_inflight < 1 then invalid_arg "Server: max_inflight must be >= 1";
  if cfg.service_scale <= 0. then
    invalid_arg "Server: service_scale must be > 0"

type outcome =
  | Completed of {
      bid : int;
      dispatch : float;
      completion : float;
      bucket : int;
    }
  | Shed of float
  | Rejected of float

type record = { req : Loadgen.request; outcome : outcome }

type schedule = {
  records : record list;
  batches : Pool.batch list;
  makespan : float;
}

let m_requests = Metrics.counter "serve.requests"
let m_rejected = Metrics.counter "serve.rejected"
let m_shed = Metrics.counter "serve.shed"
let m_completed = Metrics.counter "serve.completed"
let m_batches = Metrics.counter "serve.batches"
let m_padded = Metrics.counter "serve.padded_rows"

let ms_bounds =
  [| 0.5; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000. |]

let h_wait = Metrics.histogram ~bounds:ms_bounds "serve.queue_wait_ms"
let h_e2e = Metrics.histogram ~bounds:ms_bounds "serve.e2e_ms"

let h_batch =
  Metrics.histogram ~bounds:[| 1.; 2.; 4.; 8.; 16.; 32. |] "serve.batch_size"

let h_pad_frac =
  Metrics.histogram
    ~bounds:[| 0.01; 0.125; 0.25; 0.375; 0.5; 0.625; 0.75; 0.875 |]
    "serve.padding_frac"

let m_deadline_miss = Metrics.counter "serve.deadline_miss"

(* Per-stage latency attribution: where a completed request's budget
   went. Queue wait is dispatch - arrival (h_wait above); assembly is
   how long the batch's oldest member waited for co-batching; execute is
   the batch's virtual service time. *)
let h_assembly = Metrics.histogram ~bounds:ms_bounds "serve.assembly_ms"
let h_exec = Metrics.histogram ~bounds:ms_bounds "serve.execute_ms"

(* Lifecycle events: one atomic load when no sink is attached. *)
let emit ?(attrs = []) ~t ~rid kind =
  if Events.enabled () then Events.record { Events.t; rid; kind; attrs }

(* Flow-arc id scheme: a request rid's arc is [2 * rid], a batch bid's
   arc is [2 * bid + 1] — disjoint id spaces, so one trace can carry
   both without collisions. *)
let req_flow rid = 2 * rid
let batch_flow bid = (2 * bid) + 1

(* The event loop's mutable state. Time only moves forward, and every
   tie is broken deterministically (open-loop arrivals before closed-loop
   issues, lower client index first, lowest idle worker first). *)
type sim = {
  cfg : config;
  lg : Loadgen.t;
  latency : int -> float;
  min_service : float;  (* fastest possible service: the shedding bar *)
  mutable now : float;
  mutable open_pending : float list;  (* future open-loop arrival times *)
  client_next : float array;  (* next closed-loop issue time, or infinity *)
  mutable next_rid : int;
  queue : Loadgen.request Queue.t;
  mutable timer : float;  (* batcher's Wait_until target, or infinity *)
  busy : float array;  (* per virtual worker: free-at time *)
  mutable inflight : (float * Pool.batch) list;  (* ascending completion *)
  mutable next_bid : int;
  mutable records : record list;  (* reverse rid order *)
  mutable batches : Pool.batch list;  (* reverse dispatch order *)
  mutable makespan : float;
}

let record sim req outcome =
  sim.records <- { req; outcome } :: sim.records

(* A closed-loop client got its answer (or its shed/reject notice) at
   [t]: it thinks, then reissues — unless the run is past its duration. *)
let client_reissue sim client t =
  if client >= 0 then begin
    let t' = t +. (match sim.lg.Loadgen.profile with
                   | Loadgen.Closed_loop { think; _ } -> think
                   | Loadgen.Open_loop _ -> 0.)
    in
    sim.client_next.(client) <-
      (if t' < sim.lg.Loadgen.duration then t' else Float.infinity)
  end

let admit sim (req : Loadgen.request) =
  Metrics.incr m_requests;
  let rid = req.Loadgen.rid in
  if Queue.length sim.queue >= sim.cfg.batcher.Batcher.queue_cap then begin
    Metrics.incr m_rejected;
    record sim req (Rejected req.Loadgen.arrival);
    emit ~t:req.Loadgen.arrival ~rid Events.Rejected
      ~attrs:(("queue", string_of_int (Queue.length sim.queue))
              :: Loadgen.request_attrs req);
    Trace.span "serve.reject"
      ~attrs:(fun () -> ("rid", string_of_int rid) :: Loadgen.request_attrs req)
      (fun _ -> Trace.flow ~id:(req_flow rid) ~dir:Trace.Flow_end "serve.req");
    client_reissue sim req.Loadgen.client req.Loadgen.arrival
  end
  else begin
    Queue.push req sim.queue;
    emit ~t:req.Loadgen.arrival ~rid Events.Admitted
      ~attrs:(("queue", string_of_int (Queue.length sim.queue))
              :: Loadgen.request_attrs req);
    Trace.span "serve.admit"
      ~attrs:(fun () -> ("rid", string_of_int rid) :: Loadgen.request_attrs req)
      (fun _ -> Trace.flow ~id:(req_flow rid) ~dir:Trace.Flow_start "serve.req")
  end

(* Pull every arrival due at or before [sim.now], in time order; open-loop
   and closed-loop sources never coexist so cross-source ties are moot. *)
let rec admit_due sim =
  match sim.open_pending with
  | t :: rest when t <= sim.now ->
    let rid = sim.next_rid in
    sim.next_rid <- rid + 1;
    sim.open_pending <- rest;
    admit sim
      {
        Loadgen.rid;
        client = -1;
        arrival = t;
        deadline = t +. sim.lg.Loadgen.deadline;
      };
    admit_due sim
  | _ ->
    let due = ref (-1) in
    Array.iteri
      (fun c t ->
        if t <= sim.now && (!due < 0 || t < sim.client_next.(!due)) then
          due := c)
      sim.client_next;
    if !due >= 0 then begin
      let c = !due in
      let t = sim.client_next.(c) in
      sim.client_next.(c) <- Float.infinity;
      let rid = sim.next_rid in
      sim.next_rid <- rid + 1;
      admit sim
        {
          Loadgen.rid;
          client = c;
          arrival = t;
          deadline = t +. sim.lg.Loadgen.deadline;
        };
      admit_due sim
    end

(* Requests that can no longer meet their deadline even if dispatched
   right now are shed rather than executed. The queue is arrival-ordered
   and deadlines are arrival + constant, so the hopeless ones are always
   a prefix. *)
let rec shed_hopeless sim =
  match Queue.peek_opt sim.queue with
  | Some r when r.Loadgen.deadline < sim.now +. sim.min_service ->
    ignore (Queue.pop sim.queue);
    Metrics.incr m_shed;
    record sim r (Shed sim.now);
    emit ~t:sim.now ~rid:r.Loadgen.rid Events.Shed
      ~attrs:[ ("deadline", Printf.sprintf "%g" r.Loadgen.deadline) ];
    Trace.span "serve.shed"
      ~attrs:(fun () ->
        ("rid", string_of_int r.Loadgen.rid) :: Loadgen.request_attrs r)
      (fun _ ->
        Trace.flow ~id:(req_flow r.Loadgen.rid) ~dir:Trace.Flow_end "serve.req");
    client_reissue sim r.Loadgen.client sim.now;
    shed_hopeless sim
  | _ -> ()

let complete_due sim =
  let rec go () =
    match sim.inflight with
    | (t, b) :: rest when t <= sim.now ->
      sim.inflight <- rest;
      Metrics.observe h_exec ((t -. b.Pool.dispatch) *. 1e3);
      List.iter
        (fun (r : Loadgen.request) ->
          Metrics.incr m_completed;
          Metrics.observe h_wait
            ((b.Pool.dispatch -. r.Loadgen.arrival) *. 1e3);
          Metrics.observe h_e2e ((t -. r.Loadgen.arrival) *. 1e3);
          record sim r
            (Completed
               {
                 bid = b.Pool.bid;
                 dispatch = b.Pool.dispatch;
                 completion = t;
                 bucket = b.Pool.bucket;
               });
          let miss = t > r.Loadgen.deadline in
          emit ~t ~rid:r.Loadgen.rid Events.Completed
            ~attrs:
              [
                ("bid", string_of_int b.Pool.bid);
                ("miss", if miss then "1" else "0");
              ];
          Trace.span "serve.complete"
            ~attrs:(fun () ->
              [
                ("rid", string_of_int r.Loadgen.rid);
                ("bid", string_of_int b.Pool.bid);
                ("miss", if miss then "1" else "0");
              ])
            (fun _ ->
              Trace.flow ~id:(req_flow r.Loadgen.rid) ~dir:Trace.Flow_step
                "serve.req");
          if miss then begin
            Metrics.incr m_deadline_miss;
            (* The event above is already in the flight ring, so the
               frozen dump carries this request's full timeline. *)
            ignore
              (Events.flight_trip ~reason:"deadline_miss" ~rid:r.Loadgen.rid ~t
                 ())
          end;
          client_reissue sim r.Loadgen.client t)
        b.Pool.members;
      go ()
    | _ -> ()
  in
  go ()

let idle_worker sim =
  let found = ref (-1) in
  Array.iteri
    (fun w t -> if !found < 0 && t <= sim.now then found := w)
    sim.busy;
  !found

let no_more_arrivals sim =
  sim.open_pending = []
  && Array.for_all (fun t -> t = Float.infinity) sim.client_next

let take n q =
  let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (Queue.pop q :: acc) in
  go n []

let rec dispatch_ready sim =
  sim.timer <- Float.infinity;
  let w = idle_worker sim in
  if w >= 0 && List.length sim.inflight < sim.cfg.max_inflight then begin
    let oldest =
      match Queue.peek_opt sim.queue with
      | Some r -> r.Loadgen.arrival
      | None -> 0.
    in
    let draining = no_more_arrivals sim && sim.inflight = [] in
    match
      Batcher.decide sim.cfg.batcher ~now:sim.now
        ~queue_len:(Queue.length sim.queue) ~oldest_arrival:oldest ~draining
    with
    | Batcher.Wait_event -> ()
    | Batcher.Wait_until t -> sim.timer <- t
    | Batcher.Dispatch k as decision ->
      let k = min k (Queue.length sim.queue) in
      let members = take k sim.queue in
      let bucket = Batcher.bucket_for sim.cfg.batcher k in
      let service = sim.latency bucket *. sim.cfg.service_scale in
      let completion = sim.now +. service in
      let b =
        {
          Pool.bid = sim.next_bid;
          bucket;
          members;
          dispatch = sim.now;
          completion;
          worker = w;
        }
      in
      sim.next_bid <- sim.next_bid + 1;
      sim.busy.(w) <- completion;
      sim.inflight <-
        List.merge
          (fun (a, _) (b, _) -> compare a b)
          sim.inflight [ (completion, b) ];
      sim.batches <- b :: sim.batches;
      sim.makespan <- Float.max sim.makespan completion;
      Metrics.incr m_batches;
      Metrics.add m_padded (Pool.padded_rows b);
      Metrics.observe h_batch (float_of_int k);
      Metrics.observe h_pad_frac
        (float_of_int (Pool.padded_rows b) /. float_of_int bucket);
      Metrics.observe h_assembly ((sim.now -. oldest) *. 1e3);
      if Events.enabled () then
        List.iter
          (fun (r : Loadgen.request) ->
            let rid = r.Loadgen.rid in
            emit ~t:sim.now ~rid Events.Batched
              ~attrs:
                [
                  ("bid", string_of_int b.Pool.bid);
                  ("bucket", string_of_int bucket);
                ];
            emit ~t:sim.now ~rid Events.Dispatched
              ~attrs:
                [ ("bid", string_of_int b.Pool.bid); ("worker", string_of_int w) ])
          members;
      Trace.span "serve.dispatch"
        ~attrs:(fun () ->
          [
            ("bid", string_of_int b.Pool.bid);
            ("bucket", string_of_int bucket);
            ("members", string_of_int k);
            ("padded", string_of_int (Pool.padded_rows b));
            ("worker", string_of_int w);
            ("decision", Batcher.decision_to_string decision);
          ])
        (fun _ ->
          Trace.flow ~id:(batch_flow b.Pool.bid) ~dir:Trace.Flow_start
            "serve.batch";
          List.iter
            (fun (r : Loadgen.request) ->
              Trace.flow ~id:(req_flow r.Loadgen.rid) ~dir:Trace.Flow_step
                "serve.req")
            members);
      dispatch_ready sim
  end

let next_event sim =
  let m = Float.infinity in
  let m = match sim.open_pending with t :: _ -> Float.min m t | [] -> m in
  let m = Array.fold_left Float.min m sim.client_next in
  let m =
    match sim.inflight with (t, _) :: _ -> Float.min m t | [] -> m
  in
  if Queue.is_empty sim.queue then m else Float.min m sim.timer

let simulate cfg ~latency lg =
  validate cfg;
  Loadgen.validate lg;
  Trace.span "serve.simulate"
    ~attrs:(fun () ->
      [
        ("seed", string_of_int lg.Loadgen.seed);
        ("duration", Printf.sprintf "%g" lg.Loadgen.duration);
      ])
    (fun _ ->
      let clients =
        match lg.Loadgen.profile with
        | Loadgen.Closed_loop { clients; _ } -> clients
        | Loadgen.Open_loop _ -> 0
      in
      let sim =
        {
          cfg;
          lg;
          latency;
          min_service =
            latency (Batcher.bucket_for cfg.batcher 1) *. cfg.service_scale;
          now = 0.;
          open_pending = Loadgen.open_arrivals lg;
          client_next = Array.make (max clients 1) Float.infinity;
          next_rid = 0;
          queue = Queue.create ();
          timer = Float.infinity;
          busy = Array.make cfg.workers 0.;
          inflight = [];
          next_bid = 0;
          records = [];
          batches = [];
          makespan = 0.;
        }
      in
      (* Closed-loop clients all fire their first request at t = 0. *)
      for c = 0 to clients - 1 do
        sim.client_next.(c) <- 0.
      done;
      let rec loop () =
        complete_due sim;
        admit_due sim;
        shed_hopeless sim;
        dispatch_ready sim;
        let t = next_event sim in
        if t < Float.infinity then begin
          sim.now <- Float.max sim.now t;
          loop ()
        end
      in
      loop ();
      assert (Queue.is_empty sim.queue && sim.inflight = []);
      {
        records = List.rev sim.records;
        batches = List.rev sim.batches;
        makespan = sim.makespan;
      })

type stats = {
  offered : int;
  admitted : int;
  completed : int;
  shed : int;
  rejected : int;
  deadline_miss : int;
  batches : int;
  padded_rows : int;
  mean_batch : float;
  padding_frac : float;
  makespan : float;
  throughput : float;
  wait_p50 : float;
  wait_p95 : float;
  wait_p99 : float;
  e2e_mean : float;
  e2e_p50 : float;
  e2e_p95 : float;
  e2e_p99 : float;
}

(* Exact nearest-rank percentile of an unsorted sample; nan when empty. *)
let percentile xs q =
  let n = Array.length xs in
  if n = 0 then Float.nan
  else begin
    let xs = Array.copy xs in
    Array.sort compare xs;
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    xs.(max 0 (min (n - 1) (rank - 1)))
  end

let stats (s : schedule) =
  let offered = List.length s.records in
  let count p = List.length (List.filter p s.records) in
  let rejected = count (fun r -> match r.outcome with Rejected _ -> true | _ -> false) in
  let shed = count (fun r -> match r.outcome with Shed _ -> true | _ -> false) in
  (* (arrival, deadline, dispatch, completion) per completed request *)
  let completed_rs =
    List.filter_map
      (fun r ->
        match r.outcome with
        | Completed { dispatch; completion; _ } ->
          Some
            ( r.req.Loadgen.arrival,
              r.req.Loadgen.deadline,
              dispatch,
              completion )
        | _ -> None)
      s.records
  in
  let completed = List.length completed_rs in
  let deadline_miss =
    List.length
      (List.filter (fun (_, dl, _, c) -> c > dl) completed_rs)
  in
  let waits =
    Array.of_list (List.map (fun (a, _, d, _) -> d -. a) completed_rs)
  in
  let e2es =
    Array.of_list (List.map (fun (a, _, _, c) -> c -. a) completed_rs)
  in
  let batches = List.length s.batches in
  let padded_rows =
    List.fold_left (fun acc b -> acc + Pool.padded_rows b) 0 s.batches
  in
  let rows =
    List.fold_left (fun acc (b : Pool.batch) -> acc + b.Pool.bucket) 0 s.batches
  in
  {
    offered;
    admitted = offered - rejected;
    completed;
    shed;
    rejected;
    deadline_miss;
    batches;
    padded_rows;
    mean_batch =
      (if batches = 0 then 0.
       else float_of_int (rows - padded_rows) /. float_of_int batches);
    padding_frac =
      (if rows = 0 then 0. else float_of_int padded_rows /. float_of_int rows);
    makespan = s.makespan;
    throughput =
      (if s.makespan <= 0. then 0.
       else float_of_int completed /. s.makespan);
    wait_p50 = percentile waits 0.50;
    wait_p95 = percentile waits 0.95;
    wait_p99 = percentile waits 0.99;
    e2e_mean =
      (if completed = 0 then Float.nan
       else Array.fold_left ( +. ) 0. e2es /. float_of_int completed);
    e2e_p50 = percentile e2es 0.50;
    e2e_p95 = percentile e2es 0.95;
    e2e_p99 = percentile e2es 0.99;
  }

(* Every request contributes one SLO sample at the virtual time its fate
   was decided: completed-in-deadline is good; a late completion, a shed
   or a reject is a budget burn. *)
let slo_samples (s : schedule) =
  List.map
    (fun r ->
      match r.outcome with
      | Completed { completion; _ } ->
        { Slo.t = completion; good = completion <= r.req.Loadgen.deadline }
      | Shed t -> { Slo.t = t; good = false }
      | Rejected t -> { Slo.t = t; good = false })
    s.records

let slo_verdict ?config ~duration s =
  let cfg = match config with Some c -> c | None -> Slo.default ~duration in
  Slo.evaluate cfg (slo_samples s)

type report = {
  schedule : schedule;
  summary : stats;
  responses : (int * Hidet_tensor.Tensor.t) list;
  mismatches : int option;
  slo : Slo.verdict;
}

let run ?(exec = true) ?(check = true) ?exec_workers ?slo_config cfg model lg =
  let sched =
    simulate cfg ~latency:(fun b -> Registry.latency model b) lg
  in
  let responses =
    if exec then
      Pool.execute ?workers:exec_workers ~seed:lg.Loadgen.seed model
        sched.batches
    else []
  in
  let mismatches =
    if exec && check then begin
      (* Verified events carry the request's virtual completion time so
         they sort into its timeline, not at wall-clock zero. *)
      let completion_at =
        let tbl = Hashtbl.create 256 in
        List.iter
          (fun r ->
            match r.outcome with
            | Completed { completion; _ } ->
              Hashtbl.replace tbl r.req.Loadgen.rid completion
            | _ -> ())
          sched.records;
        fun rid -> try Hashtbl.find tbl rid with Not_found -> 0.
      in
      Some (Pool.check ~at:completion_at ~seed:lg.Loadgen.seed model responses)
    end
    else None
  in
  {
    schedule = sched;
    summary = stats sched;
    responses;
    mismatches;
    slo = slo_verdict ?config:slo_config ~duration:lg.Loadgen.duration sched;
  }

let pp_report fmt r =
  let s = r.summary in
  let ms x = x *. 1e3 in
  Format.fprintf fmt "serve: SLO report@.";
  Format.fprintf fmt
    "  traffic    offered=%d admitted=%d completed=%d shed=%d rejected=%d@."
    s.offered s.admitted s.completed s.shed s.rejected;
  Format.fprintf fmt
    "  batching   batches=%d mean_batch=%.2f padded_rows=%d padding=%.1f%%@."
    s.batches s.mean_batch s.padded_rows (100. *. s.padding_frac);
  Format.fprintf fmt
    "  slo        deadline_miss=%d makespan=%.3fs throughput=%.1f req/s@."
    s.deadline_miss s.makespan s.throughput;
  Format.fprintf fmt "  queue wait p50=%.2fms p95=%.2fms p99=%.2fms@."
    (ms s.wait_p50) (ms s.wait_p95) (ms s.wait_p99);
  Format.fprintf fmt
    "  e2e        mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms@."
    (ms s.e2e_mean) (ms s.e2e_p50) (ms s.e2e_p95) (ms s.e2e_p99);
  Slo.pp_verdict fmt r.slo;
  match r.mismatches with
  | None ->
    Format.fprintf fmt "  responses  %d (unverified)@."
      (List.length r.responses)
  | Some 0 ->
    Format.fprintf fmt
      "  responses  %d verified bit-identical to batch-1 plan@."
      (List.length r.responses)
  | Some n ->
    Format.fprintf fmt "  responses  %d MISMATCHES out of %d@." n
      (List.length r.responses)

let stats_to_json s =
  let b = Buffer.create 512 in
  let field name v = Buffer.add_string b (Printf.sprintf "\"%s\": %s" name v) in
  let fin x = if Float.is_nan x then "null" else Printf.sprintf "%.9g" x in
  Buffer.add_string b "{";
  let fields =
    [
      ("offered", string_of_int s.offered);
      ("admitted", string_of_int s.admitted);
      ("completed", string_of_int s.completed);
      ("shed", string_of_int s.shed);
      ("rejected", string_of_int s.rejected);
      ("deadline_miss", string_of_int s.deadline_miss);
      ("batches", string_of_int s.batches);
      ("padded_rows", string_of_int s.padded_rows);
      ("mean_batch", fin s.mean_batch);
      ("padding_frac", fin s.padding_frac);
      ("makespan_s", fin s.makespan);
      ("throughput_rps", fin s.throughput);
      ("wait_p50_ms", fin (s.wait_p50 *. 1e3));
      ("wait_p95_ms", fin (s.wait_p95 *. 1e3));
      ("wait_p99_ms", fin (s.wait_p99 *. 1e3));
      ("e2e_mean_ms", fin (s.e2e_mean *. 1e3));
      ("e2e_p50_ms", fin (s.e2e_p50 *. 1e3));
      ("e2e_p95_ms", fin (s.e2e_p95 *. 1e3));
      ("e2e_p99_ms", fin (s.e2e_p99 *. 1e3));
    ]
  in
  List.iteri
    (fun i (n, v) ->
      if i > 0 then Buffer.add_string b ", ";
      field n v)
    fields;
  Buffer.add_string b "}";
  Buffer.contents b
