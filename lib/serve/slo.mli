(** Multi-window burn-rate SLO alerting over virtual time.

    An SLO (e.g. 99% of requests meet their deadline) grants an error
    budget (1%); a window's {e burn rate} is its bad fraction divided by
    that budget. Each rule pairs a fast window (catches a spike quickly)
    with a slow one (confirms it is sustained) and fires only when both
    burn at or above the rule's threshold — the standard SRE recipe,
    here evaluated over the deterministic schedule's virtual timestamps
    so alerts reproduce from the seed like every other serve
    artifact. *)

type rule = {
  rname : string;
  fast : float;  (** fast window length, virtual seconds *)
  slow : float;  (** slow window length, [>= fast] *)
  burn : float;  (** firing threshold for both windows *)
}

type config = {
  objective : float;  (** good-request target in (0, 1) *)
  min_count : int;  (** fast-window samples required before firing *)
  rules : rule list;
}

val validate : config -> unit

val default : duration:float -> config
(** 99% objective with the production 5m/1h-burn-10 ("page") and
    30m/6h-burn-2 ("ticket") shapes scaled to a run of [duration]
    virtual seconds. *)

type sample = { t : float; good : bool }

type alert = {
  rule : rule;
  fired : bool;
  at : float;  (** first firing time; [nan] when not fired *)
  fast_burn : float;
      (** burn rates at [at] when fired; otherwise at the closest
          approach (the sample where the weaker window burned hottest) *)
  slow_burn : float;
}

type verdict = {
  total : int;
  bad : int;
  miss_ratio : float;
  budget : float;  (** [1 - objective] *)
  alerts : alert list;  (** one per rule, in rule order *)
}

val evaluate : config -> sample list -> verdict
(** Windows are trailing: at each sample time [t], a window [w] covers
    [(t - w, t]]. Samples need not be sorted. O(n) per rule. *)

val fired : verdict -> bool
(** Whether any rule fired. *)

val verdict_to_json : verdict -> string
(** Machine-readable [alerts] section for serve JSON output. *)

val pp_verdict : Format.formatter -> verdict -> unit
(** One ["  alert ..."] line per rule, matching {!Server.pp_report}'s
    indentation. *)
