(** Seeded load generation: requests, traffic profiles, input synthesis.

    Everything is a pure function of the profile's seed — arrival times,
    per-request inputs — so two runs of [hidetc serve --seed N] see the
    same traffic and (because the server decides in virtual time) make the
    same decisions. There is no wall clock anywhere in this module. *)

type request = {
  rid : int;  (** dense, in arrival order *)
  client : int;  (** issuing closed-loop client; 0 for open-loop traffic *)
  arrival : float;  (** virtual seconds since the run started *)
  deadline : float;  (** absolute virtual time the SLO expires *)
}

type profile =
  | Open_loop of { rps : float }
      (** Poisson arrivals at the offered rate, independent of completions
          (models external traffic; overload is possible) *)
  | Closed_loop of { clients : int; think : float }
      (** each client issues a request, waits for its response (or its
          shed/reject notice), thinks [think] seconds (strictly positive —
          an instantly-retrying rejected client would freeze the virtual
          clock), repeats *)

type burst = { start : float; dur : float; rps : float }
(** Extra open-loop Poisson traffic inside [\[start, start + dur)] — the
    overload spike the smoke test uses to prove shedding activates. *)

type t = {
  profile : profile;
  duration : float;  (** virtual seconds of traffic generation *)
  deadline : float;  (** per-request SLO, seconds after arrival *)
  burst : burst option;
  seed : int;
}

val validate : t -> unit

val open_arrivals : t -> float list
(** Sorted arrival times in [\[0, duration)] for [Open_loop] traffic
    (base stream merged with the burst stream, each seeded independently
    so adding a burst does not reshuffle the base arrivals). [\[\]] for
    [Closed_loop] — those arrivals depend on completions and are produced
    by the server loop. *)

val request_attrs : request -> (string * string) list
(** The request's identity as event/span attributes (client, arrival,
    deadline) — one definition so the server and pool tag consistently. *)

val synth_inputs : seed:int -> shapes:int list list -> int -> Hidet_tensor.Tensor.t list
(** [synth_inputs ~seed ~shapes rid]: the request's input tensors,
    deterministic in [(seed, rid)] alone — the executor materializes them
    at batch-assembly time and the checker re-materializes them to verify
    responses against the batch-1 plan. *)
