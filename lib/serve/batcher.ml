type config = {
  buckets : int list;
  max_wait : float;
  queue_cap : int;
  batching : bool;
}

let validate cfg =
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  if cfg.buckets = [] || List.hd cfg.buckets <> 1 || not (increasing cfg.buckets)
  then
    invalid_arg
      "Batcher: buckets must be strictly increasing and start at 1";
  if cfg.max_wait < 0. then invalid_arg "Batcher: max_wait must be >= 0";
  if cfg.queue_cap < 1 then invalid_arg "Batcher: queue_cap must be >= 1"

let max_bucket cfg = List.fold_left max 1 cfg.buckets

let bucket_for cfg n =
  let n = max 1 (min n (max_bucket cfg)) in
  match List.find_opt (fun b -> b >= n) cfg.buckets with
  | Some b -> b
  | None -> max_bucket cfg

type decision = Dispatch of int | Wait_until of float | Wait_event

let decision_to_string = function
  | Dispatch k -> Printf.sprintf "dispatch:%d" k
  | Wait_until t -> Printf.sprintf "wait_until:%g" t
  | Wait_event -> "wait_event"

let decide cfg ~now ~queue_len ~oldest_arrival ~draining =
  if queue_len = 0 then Wait_event
  else if not cfg.batching then Dispatch 1
  else begin
    let full = max_bucket cfg in
    if queue_len >= full then Dispatch full
      (* The timeout test and the timer target must be the same float
         expression: the event loop advances the clock to exactly
         [oldest + max_wait], and [(oldest +. w) -. oldest >= w] is not a
         tautology in floating point — comparing against the sum directly
         is what guarantees the timer's firing actually dispatches. *)
    else if draining || now >= oldest_arrival +. cfg.max_wait then
      Dispatch queue_len
    else Wait_until (oldest_arrival +. cfg.max_wait)
  end
