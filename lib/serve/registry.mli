(** Model registry: compiled batch-bucket plan variants, ready to serve.

    Loading a model compiles it once per batch bucket (1, 2, 4, 8, ...)
    with the chosen engine. Bucket compiles go through the engine's normal
    pipeline and therefore through the process-global schedule cache, so
    kernels whose workload signature is batch-invariant (e.g. the per-row
    softmax/layernorm of a fixed sequence length, or repeated shapes
    across buckets and re-loads) tune once; the per-variant
    [Engine.result] records how much tuning was fresh vs served from the
    cache. Every loaded plan is {!Hidet_runtime.Plan.prepare}d — constants
    forced eagerly — so executor domains share it without touching the
    constant lock. *)

type source =
  | Zoo of string
      (** a paper-zoo name ([Models.by_name], batch-parameterized builder)
          or a tiny test model ([Models.tiny_all], rebatched via
          {!Hidet_graph.Passes.rebatch}) *)
  | File of string  (** an HGF graph file; rebatched via [Passes.rebatch] *)
  | Graph of Hidet_graph.Graph.t  (** an in-memory batch-variant-1 graph *)

type variant = {
  bucket : int;
  graph : Hidet_graph.Graph.t;
  plan : Hidet_runtime.Plan.t;
  latency : float;  (** predicted service time of a full batch, seconds *)
  result : Hidet_runtime.Engine.result;
  shard : Hidet_shard.Shard.t option;
      (** the bucket's shard plan when the model was loaded onto a
          cluster and the strategy partitions this bucket *)
}

type model = {
  name : string;
  engine : string;
  input_shapes : int list list;  (** batch-1 input shapes, in input order *)
  variants : variant list;  (** ascending bucket; always includes bucket 1 *)
  max_inflight : int;  (** concurrency limit: batches in flight at once *)
  sharding : string option;
      (** [Shard.describe] of the first sharded variant, for logs *)
}

val load :
  ?max_inflight:int ->
  ?cluster:Hidet_gpu.Cluster.t ->
  ?parallel:Hidet_shard.Shard.strategy ->
  engine:(module Hidet_runtime.Engine.S) ->
  device:Hidet_gpu.Device.t ->
  buckets:int list ->
  source ->
  model
(** Compile every bucket variant (bucket 1 is added if missing — it is the
    checker's reference and the no-batching fallback) and prepare the
    plans. [max_inflight] defaults to unlimited.

    With [?cluster], buckets are loaded as shard groups instead: each
    bucket gets a {!Hidet_shard.Shard.t} under [?parallel] (default
    [Data]) whose per-device fragments the pool dispatches, and whose
    cost-model total (compute + collectives) becomes the bucket's
    service latency. Buckets the strategy cannot partition (e.g. bucket
    1 on a multi-device data-parallel cluster) fall back to an unsharded
    plan compiled under the same deterministic-reduction options, so
    responses still bit-match across buckets. [device] is ignored when
    [?cluster] is given.

    Raises [Invalid_argument] on an unknown zoo name, a multi-output
    graph (per-request demux slices the single output's leading dim), or
    an engine that produces no executable plan; [Failure] on an
    unreadable HGF file. *)

val variant_exn : model -> int -> variant
(** The variant compiled for exactly this bucket; [Invalid_argument] if
    the bucket was not loaded. *)

val latency : model -> int -> float
(** [latency m bucket] = [(variant_exn m bucket).latency] — the service
    time the virtual-time serving loop charges per batch. *)

(** {1 A name-keyed registry}

    [hidetc serve] serves one model, but the registry itself is
    multi-model (and domain-safe): the admission layer looks models up by
    name and applies each model's own [max_inflight]. *)

type t

val create : unit -> t
val register : t -> model -> unit
val find : t -> string -> model option
val names : t -> string list
