(** The serving loop: admission, dynamic batching, shedding — in virtual time.

    The control plane is a deterministic discrete-event simulation. Every
    decision input is virtual: arrivals come from the load generator's
    seeded streams, and a batch's service time is its plan variant's
    analytic latency ({!Registry.latency}) times [service_scale]. No wall
    clock is read anywhere, so the same seed and config always produce the
    same batch compositions, shed sets and timings — on any machine, at
    any level of real execution noise ({!simulate} is pure).

    The data plane then really executes the decided batches on the
    simulated GPU ({!Pool.execute}) and optionally verifies every response
    bit-for-bit against the bucket-1 plan ({!Pool.check}). [run] glues the
    two together. *)

type config = {
  batcher : Batcher.config;
  workers : int;  (** virtual executor slots; batches run one per slot *)
  max_inflight : int;  (** per-model concurrency limit (<= [workers] bites) *)
  service_scale : float;
      (** multiplies analytic plan latency into virtual service time. The
          analytic latencies of the tiny test models are microseconds; a
          scale of [1e3]-[1e5] turns realistic request rates into actual
          queueing pressure without needing millions of requests. *)
}

val validate : config -> unit

type outcome =
  | Completed of {
      bid : int;
      dispatch : float;
      completion : float;
      bucket : int;
    }
  | Shed of float
      (** dropped by deadline-based shedding at this virtual time: it
          could no longer finish before its deadline, so the server
          refuses to waste a batch slot on it *)
  | Rejected of float
      (** refused at arrival: the bounded queue was full (backpressure) *)

type record = { req : Loadgen.request; outcome : outcome }

type schedule = {
  records : record list;  (** every generated request, in rid order *)
  batches : Pool.batch list;  (** in dispatch order; bids are dense *)
  makespan : float;  (** virtual time the last batch completed *)
}

val simulate : config -> latency:(int -> float) -> Loadgen.t -> schedule
(** Pure virtual-time run: [latency bucket] is the service time of a full
    batch on that bucket's variant (before [service_scale]). Also bumps
    the [serve.*] metrics (requests, rejected, shed, completed,
    deadline_miss, batches, padded_rows; queue-wait / e2e / assembly /
    execute / batch-size / padding-fraction histograms) — callers that
    need isolated readings should [Metrics.reset] first.

    When an {!Hidet_obs.Events} sink is attached, every request emits
    its lifecycle events ([admitted]/[rejected]/[shed]/[batched]/
    [dispatched]/[completed]) stamped with virtual time, and the first
    deadline miss trips the flight recorder. When tracing is on, each
    decision records a span ([serve.admit] / [serve.dispatch] /
    [serve.complete] / [serve.shed] / [serve.reject]) carrying flow
    points — a request rid's arc has flow id [2 * rid], a batch bid's
    arc [2 * bid + 1] — which Perfetto renders as connected arrows from
    the control plane into the worker-domain spans of {!Pool}. *)

type stats = {
  offered : int;
  admitted : int;  (** offered - rejected *)
  completed : int;
  shed : int;
  rejected : int;
  deadline_miss : int;  (** completed, but after the deadline *)
  batches : int;
  padded_rows : int;
  mean_batch : float;  (** members per batch *)
  padding_frac : float;  (** padded rows / total bucket rows *)
  makespan : float;
  throughput : float;  (** completed / makespan, requests per virtual s *)
  wait_p50 : float;  (** queue wait = dispatch - arrival, virtual s *)
  wait_p95 : float;
  wait_p99 : float;
  e2e_mean : float;  (** completion - arrival, virtual s *)
  e2e_p50 : float;
  e2e_p95 : float;
  e2e_p99 : float;
}

val stats : schedule -> stats
(** Exact (sorted, nearest-rank) percentiles over completed requests —
    independent of the bucketed [serve.*] histograms. *)

val slo_samples : schedule -> Slo.sample list
(** One sample per request at the virtual time its fate was decided:
    completed within deadline is good; late, shed or rejected burns the
    error budget. *)

val slo_verdict : ?config:Slo.config -> duration:float -> schedule -> Slo.verdict
(** Burn-rate evaluation of the schedule ({!Slo.evaluate} over
    {!slo_samples}); [config] defaults to [Slo.default ~duration]. *)

type report = {
  schedule : schedule;
  summary : stats;
  responses : (int * Hidet_tensor.Tensor.t) list;
  mismatches : int option;  (** [None] when checking was off *)
  slo : Slo.verdict;
}

val run :
  ?exec:bool ->
  ?check:bool ->
  ?exec_workers:int ->
  ?slo_config:Slo.config ->
  config ->
  Registry.model ->
  Loadgen.t ->
  report
(** [simulate] with the model's variant latencies, then really execute the
    dispatched batches ([exec], default true) and verify every response
    against the bucket-1 plan ([check], default true). [exec_workers]
    controls the real executor domains (default
    [Parallel.default_workers]); it affects wall time only, never the
    schedule. The report carries the burn-rate verdict for the run
    ([slo_config] defaults to [Slo.default] over the load's duration). *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable SLO report: traffic, admission, batching, latency
    percentiles, verification verdict. *)

val stats_to_json : stats -> string
(** One flat JSON object (used by [hidetc serve --out] and the bench). *)
