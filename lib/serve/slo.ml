(* Multi-window burn-rate alerting over the deadline-miss ratio,
   evaluated in virtual time.

   The classic SRE recipe: an SLO (say 99% of requests meet their
   deadline) grants an error budget (1%). The burn rate of a window is
   (bad fraction in the window) / budget — burn 1 means the budget lasts
   exactly the SLO period, burn 10 means it is gone in a tenth of it. A
   rule pairs a fast window (catches the spike quickly) with a slow one
   (confirms it is sustained, not a blip) and fires only when BOTH burn
   at or above the threshold. Everything here runs over the virtual
   timestamps of the deterministic schedule, so alerts are reproducible
   from the seed like every other serve artifact. *)

type rule = {
  rname : string;
  fast : float;  (* window lengths, virtual seconds *)
  slow : float;
  burn : float;  (* firing threshold for both windows *)
}

type config = {
  objective : float;  (* good-request target in (0, 1), e.g. 0.99 *)
  min_count : int;  (* fast-window samples required before firing *)
  rules : rule list;
}

let validate cfg =
  if not (cfg.objective > 0. && cfg.objective < 1.) then
    invalid_arg "Slo: objective must be in (0, 1)";
  if cfg.min_count < 1 then invalid_arg "Slo: min_count must be >= 1";
  List.iter
    (fun r ->
      if r.fast <= 0. || r.slow <= 0. || r.fast > r.slow then
        invalid_arg "Slo: rule windows must satisfy 0 < fast <= slow";
      if r.burn <= 0. then invalid_arg "Slo: burn threshold must be > 0")
    cfg.rules

(* Window lengths scale with the run: a production page rule is
   5m/1h-over-30d; a serve run lasting [duration] virtual seconds uses
   the same proportions. *)
let default ~duration =
  {
    objective = 0.99;
    min_count = 10;
    rules =
      [
        { rname = "page"; fast = duration /. 20.; slow = duration /. 4.; burn = 10. };
        { rname = "ticket"; fast = duration /. 8.; slow = duration /. 2.; burn = 2. };
      ];
  }

type sample = { t : float; good : bool }

type alert = {
  rule : rule;
  fired : bool;
  at : float;  (* virtual time of the first firing sample; nan if never *)
  fast_burn : float;  (* at [at], or at the closest approach when not fired *)
  slow_burn : float;
}

type verdict = {
  total : int;
  bad : int;
  miss_ratio : float;
  budget : float;
  alerts : alert list;
}

let burn_of ~budget ~bad ~count =
  if count = 0 then 0.
  else
    let ratio = float_of_int bad /. float_of_int count in
    if budget <= 0. then if ratio > 0. then Float.infinity else 0.
    else ratio /. budget

(* One left-to-right pass per rule: at each sample time [now], two
   trailing windows ((now - w, now]) advance monotonically, so a pair of
   two-pointer cursors gives windowed bad counts in O(n). *)
let eval_rule ~budget ~min_count samples n rule =
  let fired = ref false in
  let at = ref Float.nan in
  let fb = ref 0. and sb = ref 0. in
  let best = ref Float.neg_infinity in
  let f_start = ref 0 and f_bad = ref 0 and f_cnt = ref 0 in
  let s_start = ref 0 and s_bad = ref 0 and s_cnt = ref 0 in
  let i = ref 0 in
  while (not !fired) && !i < n do
    let sm = samples.(!i) in
    if not sm.good then begin
      Stdlib.incr f_bad;
      Stdlib.incr s_bad
    end;
    Stdlib.incr f_cnt;
    Stdlib.incr s_cnt;
    let drop start bad cnt w =
      while samples.(!start).t <= sm.t -. w do
        if not samples.(!start).good then Stdlib.decr bad;
        Stdlib.decr cnt;
        Stdlib.incr start
      done
    in
    drop f_start f_bad f_cnt rule.fast;
    drop s_start s_bad s_cnt rule.slow;
    let fast_burn = burn_of ~budget ~bad:!f_bad ~count:!f_cnt in
    let slow_burn = burn_of ~budget ~bad:!s_bad ~count:!s_cnt in
    if !f_cnt >= min_count then begin
      if fast_burn >= rule.burn && slow_burn >= rule.burn then begin
        fired := true;
        at := sm.t;
        fb := fast_burn;
        sb := slow_burn
      end
      else begin
        (* closest approach: the sample where the weaker window burned
           hottest, reported so a non-firing verdict still says how
           close it came *)
        let m = Float.min fast_burn slow_burn in
        if m > !best then begin
          best := m;
          fb := fast_burn;
          sb := slow_burn
        end
      end
    end;
    Stdlib.incr i
  done;
  { rule; fired = !fired; at = !at; fast_burn = !fb; slow_burn = !sb }

let evaluate cfg samples =
  validate cfg;
  let samples =
    Array.of_list (List.stable_sort (fun a b -> Float.compare a.t b.t) samples)
  in
  let n = Array.length samples in
  let bad = Array.fold_left (fun acc s -> if s.good then acc else acc + 1) 0 samples in
  let budget = 1. -. cfg.objective in
  {
    total = n;
    bad;
    miss_ratio = (if n = 0 then 0. else float_of_int bad /. float_of_int n);
    budget;
    alerts =
      List.map (eval_rule ~budget ~min_count:cfg.min_count samples n) cfg.rules;
  }

let fired v = List.exists (fun a -> a.fired) v.alerts

let verdict_to_json v =
  let b = Buffer.create 512 in
  let fin x =
    if Float.is_nan x then "null"
    else if x = Float.infinity then "1e999"
    else Printf.sprintf "%.9g" x
  in
  Buffer.add_string b
    (Printf.sprintf "{\"total\": %d, \"bad\": %d, \"miss_ratio\": %s, \"budget\": %s, \"alerts\": ["
       v.total v.bad (fin v.miss_ratio) (fin v.budget));
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"rule\": \"%s\", \"fired\": %b, \"at\": %s, \"fast_window_s\": %s, \"slow_window_s\": %s, \"burn_threshold\": %s, \"fast_burn\": %s, \"slow_burn\": %s}"
           a.rule.rname a.fired
           (if a.fired then fin a.at else "null")
           (fin a.rule.fast) (fin a.rule.slow) (fin a.rule.burn) (fin a.fast_burn)
           (fin a.slow_burn)))
    v.alerts;
  Buffer.add_string b "]}";
  Buffer.contents b

let pp_verdict fmt v =
  List.iter
    (fun a ->
      if a.fired then
        Format.fprintf fmt
          "  alert      %s FIRING at t=%.3fs (burn fast=%.1fx slow=%.1fx >= %.0fx)@."
          a.rule.rname a.at a.fast_burn a.slow_burn a.rule.burn
      else
        Format.fprintf fmt
          "  alert      %s ok (peak burn fast=%.1fx slow=%.1fx < %.0fx)@."
          a.rule.rname
          (Float.max 0. a.fast_burn)
          (Float.max 0. a.slow_burn)
          a.rule.burn)
    v.alerts
