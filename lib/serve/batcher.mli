(** Dynamic batching policy: pure sizing decisions, no clocks, no queues.

    The server owns the request queue and the (virtual) clock; the batcher
    answers exactly one question — given what is waiting, dispatch a batch
    now or keep waiting — from explicit arguments only. No wall-clock, no
    hidden state: the policy is unit-testable and the serving loop built on
    it is deterministic by construction. *)

type config = {
  buckets : int list;
      (** feasible batch sizes (compiled plan variants), strictly
          increasing, starting at 1 *)
  max_wait : float;
      (** longest a request may wait (seconds) for co-batching before the
          queue is flushed as a partial batch *)
  queue_cap : int;  (** admission bound: arrivals beyond this are rejected *)
  batching : bool;
      (** [false]: always dispatch singletons (the batch-1 ablation the
          [serve] bench compares against) *)
}

val validate : config -> unit
(** Raises [Invalid_argument] unless [buckets] is strictly increasing and
    starts at 1, [max_wait >= 0] and [queue_cap >= 1]. *)

val max_bucket : config -> int

val bucket_for : config -> int -> int
(** Smallest bucket that fits [n] requests ([n] clamped to
    [1 .. max_bucket]); the gap is padded by the executor. *)

type decision =
  | Dispatch of int  (** pop this many requests from the queue head now *)
  | Wait_until of float
      (** nothing to dispatch before this time (the oldest request's
          co-batching window closes then) *)
  | Wait_event  (** nothing to do until an arrival or a worker frees *)

val decision_to_string : decision -> string
(** Compact form for trace attributes and logs: [dispatch:4],
    [wait_until:1.25], [wait_event]. *)

val decide :
  config ->
  now:float ->
  queue_len:int ->
  oldest_arrival:float ->
  draining:bool ->
  decision
(** Policy, assuming the caller has an idle worker and has already shed
    expired requests: dispatch a full [max_bucket] as soon as one is
    queued; dispatch a partial batch when the oldest request has waited
    [max_wait], or when [draining] (no future arrival can top the batch
    up); otherwise wait. [oldest_arrival] is meaningless when
    [queue_len = 0] (the answer is [Wait_event]). *)
