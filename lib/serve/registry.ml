module G = Hidet_graph.Graph
module Passes = Hidet_graph.Passes
module M = Hidet_models.Models
module E = Hidet_runtime.Engine
module Plan = Hidet_runtime.Plan
module Metrics = Hidet_obs.Metrics
module Trace = Hidet_obs.Trace

type source = Zoo of string | File of string | Graph of G.t

type variant = {
  bucket : int;
  graph : G.t;
  plan : Plan.t;
  latency : float;
  result : E.result;
}

type model = {
  name : string;
  engine : string;
  input_shapes : int list list;
  variants : variant list;
  max_inflight : int;
}

let m_models = Metrics.counter "serve.models_loaded"
let m_variants = Metrics.counter "serve.variants_compiled"

let base_graph = function
  | Graph g -> g
  | File path -> Hidet_graph.Graph_io.load path
  | Zoo name -> (
    if List.mem_assoc name M.all then M.by_name ~batch:1 name
    else
      match List.assoc_opt name M.tiny_all with
      | Some mk -> mk ()
      | None ->
        invalid_arg
          (Printf.sprintf
             "Registry: unknown model %S (zoo: %s; tiny: %s)" name
             (String.concat ", " (List.map fst M.all))
             (String.concat ", " (List.map fst M.tiny_all))))

(* Zoo builders are batch-parameterized (faithful per-batch layer shapes);
   everything else is rebound with the generic leading-dim pass. *)
let bucket_graph source base bucket =
  match source with
  | Zoo name when List.mem_assoc name M.all -> M.by_name ~batch:bucket name
  | _ -> if bucket = 1 then base else Passes.rebatch base bucket

let load ?(max_inflight = max_int) ~engine ~device ~buckets source =
  let (module Eng : E.S) = engine in
  let base = base_graph source in
  if List.length (G.outputs base) <> 1 then
    invalid_arg
      "Registry: only single-output graphs are served (per-request demux \
       slices the output's leading dim)";
  let name = G.get_name base in
  let buckets =
    List.sort_uniq compare (1 :: buckets)
    |> List.filter (fun b ->
           if b < 1 then invalid_arg "Registry: buckets must be >= 1" else true)
  in
  let variants =
    List.map
      (fun bucket ->
        Trace.span
          ~attrs:(fun () ->
            [ ("model", name); ("bucket", string_of_int bucket) ])
          "serve.load_variant"
          (fun _ ->
            let g = bucket_graph source base bucket in
            G.name g (Printf.sprintf "%s@b%d" name bucket);
            let result = Eng.compile device g in
            let plan =
              match result.E.plan with
              | Some p -> p
              | None ->
                invalid_arg
                  (Printf.sprintf
                     "Registry: engine %s produced no executable plan for %s"
                     Eng.name name)
            in
            Plan.prepare plan;
            Metrics.incr m_variants;
            Metrics.set_gauge
              (Metrics.gauge_labeled "serve.variant_latency_us"
                 [ ("model", name); ("bucket", string_of_int bucket) ])
              (result.E.latency *. 1e6);
            { bucket; graph = g; plan; latency = result.E.latency; result }))
      buckets
  in
  Metrics.incr m_models;
  let input_shapes = List.map (G.node_shape base) (G.input_ids base) in
  { name; engine = Eng.name; input_shapes; variants; max_inflight }

let variant_exn m bucket =
  match List.find_opt (fun v -> v.bucket = bucket) m.variants with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Registry: model %s has no bucket-%d variant" m.name
         bucket)

let latency m bucket = (variant_exn m bucket).latency

type t = { table : (string, model) Hashtbl.t; lock : Mutex.t }

let create () = { table = Hashtbl.create 8; lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let register t m = locked t (fun () -> Hashtbl.replace t.table m.name m)
let find t name = locked t (fun () -> Hashtbl.find_opt t.table name)

let names t =
  locked t (fun () ->
      Hashtbl.fold (fun n _ acc -> n :: acc) t.table [] |> List.sort compare)
