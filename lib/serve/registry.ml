module G = Hidet_graph.Graph
module Passes = Hidet_graph.Passes
module M = Hidet_models.Models
module E = Hidet_runtime.Engine
module Plan = Hidet_runtime.Plan
module Metrics = Hidet_obs.Metrics
module Trace = Hidet_obs.Trace

module Shard = Hidet_shard.Shard

type source = Zoo of string | File of string | Graph of G.t

type variant = {
  bucket : int;
  graph : G.t;
  plan : Plan.t;
  latency : float;
  result : E.result;
  shard : Shard.t option;
}

type model = {
  name : string;
  engine : string;
  input_shapes : int list list;
  variants : variant list;
  max_inflight : int;
  sharding : string option;
}

let m_models = Metrics.counter "serve.models_loaded"
let m_variants = Metrics.counter "serve.variants_compiled"

let base_graph = function
  | Graph g -> g
  | File path -> Hidet_graph.Graph_io.load path
  | Zoo name -> (
    if List.mem_assoc name M.all then M.by_name ~batch:1 name
    else
      match List.assoc_opt name M.tiny_all with
      | Some mk -> mk ()
      | None ->
        invalid_arg
          (Printf.sprintf
             "Registry: unknown model %S (zoo: %s; tiny: %s)" name
             (String.concat ", " (List.map fst M.all))
             (String.concat ", " (List.map fst M.tiny_all))))

(* Zoo builders are batch-parameterized (faithful per-batch layer shapes);
   everything else is rebound with the generic leading-dim pass. *)
let bucket_graph source base bucket =
  match source with
  | Zoo name when List.mem_assoc name M.all -> M.by_name ~batch:bucket name
  | _ -> if bucket = 1 then base else Passes.rebatch base bucket

let load ?(max_inflight = max_int) ?cluster ?(parallel = Shard.Data) ~engine
    ~device ~buckets source =
  let (module Eng : E.S) = engine in
  let base = base_graph source in
  if List.length (G.outputs base) <> 1 then
    invalid_arg
      "Registry: only single-output graphs are served (per-request demux \
       slices the output's leading dim)";
  let name = G.get_name base in
  let buckets =
    List.sort_uniq compare (1 :: buckets)
    |> List.filter (fun b ->
           if b < 1 then invalid_arg "Registry: buckets must be >= 1" else true)
  in
  let variants =
    List.map
      (fun bucket ->
        Trace.span
          ~attrs:(fun () ->
            [ ("model", name); ("bucket", string_of_int bucket) ])
          "serve.load_variant"
          (fun _ ->
            let g = bucket_graph source base bucket in
            G.name g (Printf.sprintf "%s@b%d" name bucket);
            let plan, result, shard =
              match cluster with
              | None ->
                let result = Eng.compile device g in
                let plan =
                  match result.E.plan with
                  | Some p -> p
                  | None ->
                    invalid_arg
                      (Printf.sprintf
                         "Registry: engine %s produced no executable plan \
                          for %s"
                         Eng.name name)
                in
                (plan, result, None)
              | Some cl -> (
                (* Sharded serving: the bucket's dispatch plan is the shard
                   plan; its latency is the cost-model total (compute +
                   collectives). Buckets the strategy cannot partition
                   (e.g. bucket 1 on a 2-device data-parallel cluster)
                   fall back to the unsharded deterministic plan, which
                   bit-matches the sharded buckets row for row. *)
                match Shard.plan ~strategy:parallel cl g with
                | shard ->
                  Shard.prepare shard;
                  ( Shard.baseline shard,
                    Shard.baseline_result shard,
                    Some shard )
                | exception Invalid_argument _ ->
                  let plan, result = Shard.compile_single cl g in
                  Plan.prepare plan;
                  (plan, result, None))
            in
            (match shard with None -> Plan.prepare plan | Some _ -> ());
            let latency =
              match shard with
              | Some s -> (Shard.estimate s).Shard.total
              | None -> result.E.latency
            in
            Metrics.incr m_variants;
            Metrics.set_gauge
              (Metrics.gauge_labeled "serve.variant_latency_us"
                 [ ("model", name); ("bucket", string_of_int bucket) ])
              (latency *. 1e6);
            { bucket; graph = g; plan; latency; result; shard }))
      buckets
  in
  Metrics.incr m_models;
  let input_shapes = List.map (G.node_shape base) (G.input_ids base) in
  let sharding =
    List.find_map (fun v -> Option.map Shard.describe v.shard) variants
  in
  {
    name;
    engine = (match cluster with None -> Eng.name | Some _ -> Eng.name ^ "+shard");
    input_shapes;
    variants;
    max_inflight;
    sharding;
  }

let variant_exn m bucket =
  match List.find_opt (fun v -> v.bucket = bucket) m.variants with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Registry: model %s has no bucket-%d variant" m.name
         bucket)

let latency m bucket = (variant_exn m bucket).latency

type t = { table : (string, model) Hashtbl.t; lock : Mutex.t }

let create () = { table = Hashtbl.create 8; lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let register t m = locked t (fun () -> Hashtbl.replace t.table m.name m)
let find t name = locked t (fun () -> Hashtbl.find_opt t.table name)

let names t =
  locked t (fun () ->
      Hashtbl.fold (fun n _ acc -> n :: acc) t.table [] |> List.sort compare)
