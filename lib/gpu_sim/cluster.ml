type link = {
  latency : float;
  bandwidth : float;
}

type t = {
  name : string;
  devices : Device.t array;
  link : link;
}

(* NVLink 3.0-class numbers: ~1.5 us software+hop latency per message,
   300 GB/s per direction (NVSwitch all-to-all makes every pair one hop). *)
let nvlink = { latency = 1.5e-6; bandwidth = 300.0e9 }

(* PCIe 4.0 x16 with host bounce: higher latency, much lower bandwidth. *)
let pcie = { latency = 5.0e-6; bandwidth = 16.0e9 }

let of_devices ?name ?(link = nvlink) devices =
  if devices = [] then invalid_arg "Cluster.of_devices: empty device list";
  let devices = Array.of_list devices in
  let name =
    match name with
    | Some n -> n
    | None ->
      Printf.sprintf "%dx%s" (Array.length devices)
        devices.(0).Device.name
  in
  { name; devices; link }

let homogeneous ?name ?link ~n device =
  if n < 1 then invalid_arg "Cluster.homogeneous: need at least one device";
  of_devices ?name ?link (List.init n (fun _ -> device))

let size c = Array.length c.devices

let device c i =
  if i < 0 || i >= size c then
    invalid_arg (Printf.sprintf "Cluster.device: no device %d" i);
  c.devices.(i)

let p2p_time c ~bytes =
  if size c <= 1 then 0.
  else c.link.latency +. (bytes /. c.link.bandwidth)

(* Ring all-reduce: a reduce-scatter pass then an all-gather pass, each of
   [n - 1] steps moving [bytes / n] per step (the classic 2(n-1)/n bytes on
   the wire; NCCL's ring algorithm). *)
let all_reduce_time c ~bytes =
  let n = float_of_int (size c) in
  if size c <= 1 then 0.
  else
    (2. *. (n -. 1.) *. c.link.latency)
    +. (2. *. (n -. 1.) /. n *. bytes /. c.link.bandwidth)

let all_gather_time c ~bytes =
  let n = float_of_int (size c) in
  if size c <= 1 then 0.
  else
    ((n -. 1.) *. c.link.latency)
    +. ((n -. 1.) /. n *. bytes /. c.link.bandwidth)

let pp fmt c =
  Format.fprintf fmt "cluster %s: %d device(s) [%s], link %.1f us / %.0f GB/s"
    c.name (size c)
    (String.concat ", "
       (Array.to_list (Array.map (fun d -> d.Device.name) c.devices)))
    (c.link.latency *. 1e6)
    (c.link.bandwidth /. 1e9)
