open Hidet_ir
module Metrics = Hidet_obs.Metrics
module Trace = Hidet_obs.Trace
module Int_map = Map.Make (Int)

(* ------------------------------------------------------------------ *)
(* Codegen                                                            *)
(* ------------------------------------------------------------------ *)

(* The printer is a one-for-one transliteration of [Compile_exec]'s closure
   compiler: the same slot assignment, the same static type dispatch, the
   same evaluation order (OCaml applications evaluate right to left in both
   the closures and the generated operators; wherever the closure backend
   sequences explicitly with lets, the generated code emits lets in the
   same order), and the same error raisers — so results, statement counts
   and raised exceptions are bit-identical across the three backends.

   What changes is the execution model: IR variables become OCaml lets and
   for-loop indices (no frames), buffers and their dimensions become
   let-bound locals hoisted into the prelude, and loads/stores become
   [Array.unsafe_get]/[unsafe_set] guarded by the same per-dimension bounds
   checks the closures perform (the checks make the unsafe access safe:
   [check_bindings] and the allocator guarantee exact array sizes). *)

type gexpr =
  | G_int of string
  | G_float of string
  | G_bool of string
  | G_dyn of string

type gstate = {
  buf_slot : (int, int) Hashtbl.t;  (** Buffer.id -> bufs slot *)
  mutable tmp : int;  (** fresh-name counter *)
}

let fresh st base =
  st.tmp <- st.tmp + 1;
  Printf.sprintf "%s%d" base st.tmp

let raw = function G_int s | G_float s | G_bool s | G_dyn s -> s

(* Coercions mirror [Compile_exec.as_int]/[as_float]/[as_bool]/[as_value]. *)
let as_int = function
  | G_int s -> s
  | G_float s -> Printf.sprintf "(int_of_float %s)" s
  | G_bool s -> Printf.sprintf "(if %s then 1 else 0)" s
  | G_dyn s -> Printf.sprintf "(R.int_of_value %s)" s

let as_float = function
  | G_float s -> s
  | G_int s -> Printf.sprintf "(float_of_int %s)" s
  | G_bool s -> Printf.sprintf "(if %s then 1. else 0.)" s
  | G_dyn s -> Printf.sprintf "(R.float_of_value %s)" s

let as_bool = function
  | G_bool s -> s
  | G_int s -> Printf.sprintf "(%s <> 0)" s
  | G_float s -> Printf.sprintf "(%s <> 0.)" s
  | G_dyn s -> Printf.sprintf "(R.bool_of_value %s)" s

let as_value = function
  | G_int s -> Printf.sprintf "(R.V_int %s)" s
  | G_float s -> Printf.sprintf "(R.V_float %s)" s
  | G_bool s -> Printf.sprintf "(R.V_bool %s)" s
  | G_dyn s -> s

let int_lit n = if n < 0 then Printf.sprintf "(%d)" n else string_of_int n

(* Hex float literals round-trip every finite value (including -0. and
   subnormals) exactly; nan/infinity go through their bit patterns so even
   exotic payloads survive. *)
let float_lit f =
  match Float.classify_float f with
  | FP_nan | FP_infinite ->
    Printf.sprintf "(Int64.float_of_bits 0x%LxL)" (Int64.bits_of_float f)
  | _ -> Printf.sprintf "(%h)" f

(* Must stay in sync with [Exec_registry.binop_of_code]. *)
let binop_code = function
  | Expr.Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Div -> 3
  | Mod -> 4
  | Min -> 5
  | Max -> 6
  | Lt -> 7
  | Le -> 8
  | Gt -> 9
  | Ge -> 10
  | Eq -> 11
  | Ne -> 12
  | And | Or -> assert false

let buf_name slot = Printf.sprintf "b%d" slot
let dim_name slot p = Printf.sprintf "b%d_d%d" slot p

(* Row-major flat index over already-bound index names, strides taken from
   the prelude's let-bound dimension ints. *)
let horner slot names =
  match names with
  | [] -> "0"
  | first :: rest ->
    List.fold_left
      (fun acc (p, nm) ->
        Printf.sprintf "((%s * %s) + %s)" acc (dim_name slot p) nm)
      first
      (List.mapi (fun i nm -> (i + 1, nm)) rest)

let bound_check slot p nm bname =
  Printf.sprintf "if %s < 0 || %s >= %s then R.oob %s %s %S; " nm nm
    (dim_name slot p) nm (dim_name slot p) bname

type vty = T_int | T_float | T_bool | T_dyn

let var_name (v : Var.t) = Printf.sprintf "v%d" v.Var.id

let rec comp st venv (e : Expr.t) : gexpr =
  match e with
  | Expr.Int n -> G_int (int_lit n)
  | Float f -> G_float (float_lit f)
  | Bool b -> G_bool (if b then "true" else "false")
  | Thread_idx -> G_int "tid"
  | Block_idx -> G_int "bid"
  | Var v -> (
    match Int_map.find_opt v.Var.id venv with
    | Some (T_int, nm) -> G_int nm
    | Some (T_float, nm) -> G_float nm
    | Some (T_bool, nm) -> G_bool nm
    | Some (T_dyn, nm) -> G_dyn nm
    | None ->
      (* Rejected by the verifier; kept for parity with the closure
         backend's runtime error. *)
      G_dyn (Printf.sprintf "(R.unbound_var %S)" (Var.name v)))
  | Load (buf, idx) -> G_float (comp_load st venv buf idx)
  | Select (c, a, b) -> (
    let cc = as_bool (comp st venv c) in
    let xa = comp st venv a and xb = comp st venv b in
    match (xa, xb) with
    | G_int sa, G_int sb ->
      G_int (Printf.sprintf "(if %s then %s else %s)" cc sa sb)
    | G_bool sa, G_bool sb ->
      G_bool (Printf.sprintf "(if %s then %s else %s)" cc sa sb)
    | (G_float _ | G_int _), (G_float _ | G_int _) ->
      G_float
        (Printf.sprintf "(if %s then %s else %s)" cc (as_float xa)
           (as_float xb))
    | _ ->
      G_dyn
        (Printf.sprintf "(if %s then %s else %s)" cc (as_value xa)
           (as_value xb)))
  | Unop (op, a) -> comp_unop st venv op a
  | Binop (op, a, b) -> comp_binop st venv op a b

(* Loads evaluate all indices left to right, then run all bounds checks,
   then read — [comp_flat_read]'s exact order. *)
and comp_load st venv (buf : Buffer.t) idx =
  let cidx = List.map (fun i -> as_int (comp st venv i)) idx in
  let ignores () =
    String.concat "" (List.map (Printf.sprintf "ignore %s; ") cidx)
  in
  match Hashtbl.find_opt st.buf_slot buf.Buffer.id with
  | None ->
    Printf.sprintf "(%sR.not_allocated %S %S)" (ignores ()) buf.Buffer.name
      (Buffer.scope_name buf.Buffer.scope)
  | Some slot ->
    let r = List.length buf.Buffer.dims in
    if List.length cidx <> r then
      Printf.sprintf "(%sR.rank_mismatch %S)" (ignores ()) buf.Buffer.name
    else begin
      let names = List.map (fun _ -> fresh st "i") cidx in
      let lets =
        List.map2 (Printf.sprintf "let %s = %s in ") names cidx
        |> String.concat ""
      in
      let checks =
        List.mapi (fun p nm -> bound_check slot p nm buf.Buffer.name) names
        |> String.concat ""
      in
      Printf.sprintf "(%s%sArray.unsafe_get %s %s)" lets checks
        (buf_name slot) (horner slot names)
    end

and comp_unop st venv op a =
  match op with
  | Expr.Not -> G_bool (Printf.sprintf "(not %s)" (as_bool (comp st venv a)))
  | Neg -> (
    match comp st venv a with
    | G_int s -> G_int (Printf.sprintf "(- %s)" s)
    | G_float s -> G_float (Printf.sprintf "(-. %s)" s)
    | G_bool s -> G_int (Printf.sprintf "(ignore %s; R.neg_bool ())" s)
    | G_dyn s -> G_dyn (Printf.sprintf "(R.dyn_neg %s)" s))
  | Abs -> (
    match comp st venv a with
    | G_int s -> G_int (Printf.sprintf "(Stdlib.abs %s)" s)
    | G_float s -> G_float (Printf.sprintf "(Float.abs %s)" s)
    | G_bool s -> G_int (Printf.sprintf "(ignore %s; R.abs_bool ())" s)
    | G_dyn s -> G_dyn (Printf.sprintf "(R.dyn_abs %s)" s))
  | Exp -> G_float (Printf.sprintf "(Stdlib.exp %s)" (as_float (comp st venv a)))
  | Log -> G_float (Printf.sprintf "(Stdlib.log %s)" (as_float (comp st venv a)))
  | Sqrt ->
    G_float (Printf.sprintf "(Stdlib.sqrt %s)" (as_float (comp st venv a)))
  | Tanh ->
    G_float (Printf.sprintf "(Stdlib.tanh %s)" (as_float (comp st venv a)))
  | Erf -> G_float (Printf.sprintf "(R.erf %s)" (as_float (comp st venv a)))

and comp_binop st venv op a b =
  match op with
  | Expr.And ->
    G_bool
      (Printf.sprintf "(%s && %s)"
         (as_bool (comp st venv a))
         (as_bool (comp st venv b)))
  | Or ->
    G_bool
      (Printf.sprintf "(%s || %s)"
         (as_bool (comp st venv a))
         (as_bool (comp st venv b)))
  | _ -> (
    let xa = comp st venv a and xb = comp st venv b in
    match (xa, xb) with
    | (G_dyn _, _ | _, G_dyn _) ->
      (* The closure backend binds va then vb explicitly. *)
      let va = fresh st "va" and vb = fresh st "vb" in
      G_dyn
        (Printf.sprintf "(let %s = %s in let %s = %s in R.dyn_binop %d %s %s)"
           va (as_value xa) vb (as_value xb) (binop_code op) va vb)
    | (G_bool _, _ | _, G_bool _) ->
      (* Evaluate both operands first, then reject — [Expr.eval]'s order. *)
      G_int
        (Printf.sprintf "(ignore %s; ignore %s; R.bool_binop ())" (raw xa)
           (raw xb))
    | G_int sa, G_int sb -> (
      match op with
      | Add -> G_int (Printf.sprintf "(%s + %s)" sa sb)
      | Sub -> G_int (Printf.sprintf "(%s - %s)" sa sb)
      | Mul -> G_int (Printf.sprintf "(%s * %s)" sa sb)
      | Div -> G_int (Printf.sprintf "(%s / %s)" sa sb)
      | Mod -> G_int (Printf.sprintf "(%s mod %s)" sa sb)
      | Min | Max ->
        (* [min (fa rt) (fb rt)] evaluates right to left: bind b, then a,
           then compare — monomorphized to int. *)
        let vb = fresh st "vb" and va = fresh st "va" in
        let cmp = if op = Min then "<=" else ">=" in
        G_int
          (Printf.sprintf
             "(let %s = %s in let %s = %s in if %s %s %s then %s else %s)" vb
             sb va sa va cmp vb va vb)
      | Lt -> G_bool (Printf.sprintf "(%s < %s)" sa sb)
      | Le -> G_bool (Printf.sprintf "(%s <= %s)" sa sb)
      | Gt -> G_bool (Printf.sprintf "(%s > %s)" sa sb)
      | Ge -> G_bool (Printf.sprintf "(%s >= %s)" sa sb)
      | Eq -> G_bool (Printf.sprintf "(%s = %s)" sa sb)
      | Ne -> G_bool (Printf.sprintf "(%s <> %s)" sa sb)
      | And | Or -> assert false)
    | _ -> (
      (* Mixed int/float promotes to float, exactly like [eval_binop]. *)
      let sa = as_float xa and sb = as_float xb in
      match op with
      | Add -> G_float (Printf.sprintf "(%s +. %s)" sa sb)
      | Sub -> G_float (Printf.sprintf "(%s -. %s)" sa sb)
      | Mul -> G_float (Printf.sprintf "(%s *. %s)" sa sb)
      | Div -> G_float (Printf.sprintf "(%s /. %s)" sa sb)
      | Mod -> G_float (Printf.sprintf "(Float.rem %s %s)" sa sb)
      | Min -> G_float (Printf.sprintf "(Float.min %s %s)" sa sb)
      | Max -> G_float (Printf.sprintf "(Float.max %s %s)" sa sb)
      | Lt -> G_bool (Printf.sprintf "(%s < %s)" sa sb)
      | Le -> G_bool (Printf.sprintf "(%s <= %s)" sa sb)
      | Gt -> G_bool (Printf.sprintf "(%s > %s)" sa sb)
      | Ge -> G_bool (Printf.sprintf "(%s >= %s)" sa sb)
      | Eq -> G_bool (Printf.sprintf "(%s = %s)" sa sb)
      | Ne -> G_bool (Printf.sprintf "(%s <> %s)" sa sb)
      | And | Or -> assert false))

(* ------------------------------------------------------------------ *)
(* Statement emission                                                 *)
(* ------------------------------------------------------------------ *)

(* Each statement is emitted as "<stmt>;\n"; blocks close with "()" so an
   empty body is still well-formed. *)

let add = Stdlib.Buffer.add_string

let rec emit_stmt st venv out ind (s : Stmt.t) : unit =
  let pad = String.make ind ' ' in
  match s with
  | Stmt.Seq ss -> List.iter (emit_stmt st venv out ind) ss
  | For { var; extent; body; _ } ->
    let ext = as_int (comp st venv extent) in
    let n = fresh st "n" in
    let v = var_name var in
    add out (Printf.sprintf "%sincr stmts;\n" pad);
    add out (Printf.sprintf "%s(let %s = %s in\n" pad n ext);
    add out (Printf.sprintf "%s for %s = 0 to %s - 1 do\n" pad v n);
    emit_stmt st (Int_map.add var.Var.id (T_int, v) venv) out (ind + 2) body;
    add out (Printf.sprintf "%s  ()\n%s done);\n" pad pad)
  | If { cond; then_; else_ } ->
    let cc = as_bool (comp st venv cond) in
    add out (Printf.sprintf "%sincr stmts;\n" pad);
    add out (Printf.sprintf "%s(if %s then begin\n" pad cc);
    emit_stmt st venv out (ind + 2) then_;
    (match else_ with
    | None -> add out (Printf.sprintf "%s  ()\n%send);\n" pad pad)
    | Some e ->
      add out (Printf.sprintf "%s  ()\n%send\n%selse begin\n" pad pad pad);
      emit_stmt st venv out (ind + 2) e;
      add out (Printf.sprintf "%s  ()\n%send);\n" pad pad))
  | Let { var; value; body } ->
    let x = comp st venv value in
    let v = var_name var in
    let ty =
      match x with
      | G_int _ -> T_int
      | G_float _ -> T_float
      | G_bool _ -> T_bool
      | G_dyn _ -> T_dyn
    in
    add out (Printf.sprintf "%sincr stmts;\n" pad);
    add out (Printf.sprintf "%s(let %s = %s in\n" pad v (raw x));
    emit_stmt st (Int_map.add var.Var.id (ty, v) venv) out (ind + 1) body;
    add out (Printf.sprintf "%s ());\n" pad)
  | Store { buf; indices; value } -> emit_store st venv out pad buf indices value
  | Mma m -> emit_mma st venv out pad m
  | Sync_threads ->
    add out (Printf.sprintf "%sincr stmts;\n%sR.sync ();\n" pad pad)
  | Comment _ -> add out (Printf.sprintf "%sincr stmts;\n" pad)

(* Stores count the statement, evaluate indices left to right, then the
   value, then resolve/check, then write — [comp_store]'s exact order. *)
and emit_store st venv out pad (buf : Buffer.t) indices value =
  let cidx = List.map (fun i -> as_int (comp st venv i)) indices in
  let cv = as_float (comp st venv value) in
  add out (Printf.sprintf "%sincr stmts;\n" pad);
  let fail raiser =
    add out (Printf.sprintf "%s(" pad);
    List.iter (fun s -> add out (Printf.sprintf "ignore %s; " s)) cidx;
    add out (Printf.sprintf "ignore %s; %s);\n" cv raiser)
  in
  match Hashtbl.find_opt st.buf_slot buf.Buffer.id with
  | None ->
    fail
      (Printf.sprintf "R.not_allocated %S %S" buf.Buffer.name
         (Buffer.scope_name buf.Buffer.scope))
  | Some slot ->
    let r = List.length buf.Buffer.dims in
    if List.length cidx <> r then
      fail (Printf.sprintf "R.rank_mismatch %S" buf.Buffer.name)
    else begin
      let names = List.map (fun _ -> fresh st "i") cidx in
      let v = fresh st "x" in
      add out (Printf.sprintf "%s(" pad);
      List.iter2
        (fun nm s -> add out (Printf.sprintf "let %s = %s in " nm s))
        names cidx;
      add out (Printf.sprintf "let %s = %s in\n%s " v cv pad);
      List.iteri
        (fun p nm -> add out (bound_check slot p nm buf.Buffer.name))
        names;
      add out
        (Printf.sprintf "Array.unsafe_set %s %s %s);\n" (buf_name slot)
           (horner slot names) v)
    end

(* MMA transliterates [comp_mma]: statement counted, lane-0 gate, offsets
   evaluated a/b/c left to right, tile origins flattened c/b/a (leading-dim
   checks hoisted), then the m*n*k loops with per-element trailing-dim
   checks. The per-dim checks plus the origin construction keep every flat
   index in bounds, so the loop bodies use unsafe accesses. *)
and emit_mma st venv out pad (m : Stmt.mma) =
  let comp_offs l = List.map (fun e -> as_int (comp st venv e)) l in
  let ca = comp_offs m.a_off
  and cb = comp_offs m.b_off
  and cc = comp_offs m.c_off in
  let slot (b : Buffer.t) = Hashtbl.find_opt st.buf_slot b.Buffer.id in
  add out (Printf.sprintf "%sincr stmts;\n" pad);
  add out (Printf.sprintf "%s(if tid mod %d = 0 then begin\n" pad
             Interp.warp_size);
  let p2 = pad ^ "  " in
  match (slot m.a, slot m.b, slot m.c) with
  | Some sa, Some sb, Some sc
    when Buffer.rank m.a >= 2 && Buffer.rank m.b >= 2 && Buffer.rank m.c >= 2
    ->
    let bind_offs prefix offs =
      List.map
        (fun s ->
          let nm = fresh st prefix in
          add out (Printf.sprintf "%slet %s = %s in\n" p2 nm s);
          nm)
        offs
      |> Array.of_list
    in
    let ao = bind_offs "ao" ca in
    let bo = bind_offs "bo" cb in
    let co = bind_offs "co" cc in
    let a_r = Buffer.rank m.a
    and b_r = Buffer.rank m.b
    and c_r = Buffer.rank m.c in
    (* Leading-dim checks + origin with trailing dims zeroed. *)
    let origin nm slot_ name r (offs : string array) =
      let acc = ref "0" in
      for p = 0 to r - 1 do
        if p < r - 2 then begin
          add out (Printf.sprintf "%s%s" p2 (bound_check slot_ p offs.(p) name));
          add out "\n";
          acc :=
            if !acc = "0" then offs.(p)
            else Printf.sprintf "((%s * %s) + %s)" !acc (dim_name slot_ p)
                   offs.(p)
        end
        else
          acc :=
            if !acc = "0" then "0"
            else Printf.sprintf "(%s * %s)" !acc (dim_name slot_ p)
      done;
      add out (Printf.sprintf "%slet %s = %s in\n" p2 nm !acc)
    in
    let c0 = fresh st "c0" and b0 = fresh st "b0" and a0 = fresh st "a0" in
    origin c0 sc m.c.Buffer.name c_r co;
    origin b0 sb m.b.Buffer.name b_r bo;
    origin a0 sa m.a.Buffer.name a_r ao;
    let ar0 = ao.(a_r - 2) and ac0 = ao.(a_r - 1) in
    let br0 = bo.(b_r - 2) and bc0 = bo.(b_r - 1) in
    let cr0 = co.(c_r - 2) and cc0 = co.(c_r - 1) in
    let a_rdim = dim_name sa (a_r - 2) and a_cdim = dim_name sa (a_r - 1) in
    let b_rdim = dim_name sb (b_r - 2) and b_cdim = dim_name sb (b_r - 1) in
    let c_rdim = dim_name sc (c_r - 2) and c_cdim = dim_name sc (c_r - 1) in
    let a_name = m.a.Buffer.name
    and b_name = m.b.Buffer.name
    and c_name = m.c.Buffer.name in
    add out (Printf.sprintf "%sfor i = 0 to %d do\n" p2 (m.m - 1));
    add out (Printf.sprintf "%s for j = 0 to %d do\n" p2 (m.n - 1));
    add out (Printf.sprintf "%s  let ri = %s + i in\n" p2 cr0);
    add out (Printf.sprintf "%s  let cj = %s + j in\n" p2 cc0);
    add out
      (Printf.sprintf "%s  if ri < 0 || ri >= %s then R.oob ri %s %S;\n" p2
         c_rdim c_rdim c_name);
    add out
      (Printf.sprintf "%s  if cj < 0 || cj >= %s then R.oob cj %s %S;\n" p2
         c_cdim c_cdim c_name);
    add out
      (Printf.sprintf "%s  let cix = %s + (ri * %s) + cj in\n" p2 c0 c_cdim);
    add out
      (Printf.sprintf "%s  let acc = ref (Array.unsafe_get %s cix) in\n" p2
         (buf_name sc));
    add out (Printf.sprintf "%s  for k = 0 to %d do\n" p2 (m.k - 1));
    add out (Printf.sprintf "%s   let brk = %s + k in\n" p2 br0);
    add out (Printf.sprintf "%s   let bcj = %s + j in\n" p2 bc0);
    add out
      (Printf.sprintf "%s   if brk < 0 || brk >= %s then R.oob brk %s %S;\n"
         p2 b_rdim b_rdim b_name);
    add out
      (Printf.sprintf "%s   if bcj < 0 || bcj >= %s then R.oob bcj %s %S;\n"
         p2 b_cdim b_cdim b_name);
    add out (Printf.sprintf "%s   let ari = %s + i in\n" p2 ar0);
    add out (Printf.sprintf "%s   let ack = %s + k in\n" p2 ac0);
    add out
      (Printf.sprintf "%s   if ari < 0 || ari >= %s then R.oob ari %s %S;\n"
         p2 a_rdim a_rdim a_name);
    add out
      (Printf.sprintf "%s   if ack < 0 || ack >= %s then R.oob ack %s %S;\n"
         p2 a_cdim a_cdim a_name);
    add out
      (Printf.sprintf
         "%s   acc := !acc +. Array.unsafe_get %s (%s + (ari * %s) + ack) \
          *. Array.unsafe_get %s (%s + (brk * %s) + bcj)\n"
         p2 (buf_name sa) a0 a_cdim (buf_name sb) b0 b_cdim);
    add out (Printf.sprintf "%s  done;\n" p2);
    add out (Printf.sprintf "%s  Array.unsafe_set %s cix !acc\n" p2
               (buf_name sc));
    add out (Printf.sprintf "%s done\n%sdone\n" p2 p2);
    add out (Printf.sprintf "%send);\n" pad)
  | sa, sb, sc ->
    (* Undeclared operand or rank < 2: rejected by the verifier; keep the
       reference's runtime behaviour (evaluate all offsets, then raise). *)
    List.iter
      (fun s -> add out (Printf.sprintf "%signore %s;\n" p2 s))
      (ca @ cb @ cc);
    let first_missing =
      List.find_opt (fun (s, _) -> s = None) [ (sa, m.a); (sb, m.b); (sc, m.c) ]
    in
    (match first_missing with
    | Some (_, b) ->
      add out
        (Printf.sprintf "%sR.not_allocated %S %S\n" p2 b.Buffer.name
           (Buffer.scope_name b.Buffer.scope))
    | None ->
      add out (Printf.sprintf "%sR.mma_rank %S\n" p2 m.c.Buffer.name));
    add out (Printf.sprintf "%send);\n" pad)

(* ------------------------------------------------------------------ *)
(* Kernel codegen                                                     *)
(* ------------------------------------------------------------------ *)

type slots = {
  nbufs : int;
  global_slots : (int * Buffer.t) array;
  shared_slots : (int * Buffer.t) array;
  warp_slots : (int * Buffer.t) array;
  reg_slots : (int * Buffer.t) array;
}

(* Slot assignment order matches [Compile_exec.compile]: params, shared,
   warp buffers, registers, one incrementing counter. *)
let assign_slots (k : Kernel.t) =
  let buf_slot = Hashtbl.create 16 in
  let next = ref 0 in
  let assign bufs =
    Array.of_list
      (List.map
         (fun (b : Buffer.t) ->
           let s = !next in
           incr next;
           Hashtbl.replace buf_slot b.Buffer.id s;
           (s, b))
         bufs)
  in
  let global_slots = assign k.Kernel.params in
  let shared_slots = assign k.Kernel.shared in
  let warp_slots = assign k.Kernel.warp_bufs in
  let reg_slots = assign k.Kernel.regs in
  ( buf_slot,
    { nbufs = !next; global_slots; shared_slots; warp_slots; reg_slots } )

(* The generated unit: [body tid bid bufs] runs one thread and returns its
   statement count. Buffer arrays and their dimensions are hoisted to
   let-bound locals in the prelude; the registration trailer (which embeds
   the unique unit name) is appended at build time so the source digest
   memoizing compilation is stable across processes. *)
let codegen (k : Kernel.t) : string * slots =
  let buf_slot, slots = assign_slots k in
  let st = { buf_slot; tmp = 0 } in
  let out = Stdlib.Buffer.create 4096 in
  add out
    (Printf.sprintf "(* generated by Hidet_gpu.Exec_ocaml for kernel %s *)\n"
       k.Kernel.name);
  (* The mangled unit name, not the [Hidet_gpu] wrapper alias: dune's dev
     profile compiles with [-opaque], so going through the wrapper would
     record an implementation dependency on the wrapper unit — which hosts
     never link (alias references resolve statically). The registry unit
     itself is always linked into any host that can reach this code. *)
  add out "module R = Hidet_gpu__Exec_registry\n\n";
  add out "let body (tid : int) (bid : int) (bufs : float array array) : int =\n";
  add out "  ignore tid; ignore bid; ignore bufs;\n";
  add out "  let stmts = ref 0 in\n";
  let prelude (s, (b : Buffer.t)) =
    add out (Printf.sprintf "  let %s = bufs.(%d) in\n" (buf_name s) s);
    List.iteri
      (fun p d -> add out (Printf.sprintf "  let %s = %d in\n" (dim_name s p) d))
      b.Buffer.dims
  in
  Array.iter prelude slots.global_slots;
  Array.iter prelude slots.shared_slots;
  Array.iter prelude slots.warp_slots;
  Array.iter prelude slots.reg_slots;
  emit_stmt st Int_map.empty out 2 k.Kernel.body;
  add out "  !stmts\n";
  (Stdlib.Buffer.contents out, slots)

let source k = fst (codegen k)

(* ------------------------------------------------------------------ *)
(* Toolchain probe                                                    *)
(* ------------------------------------------------------------------ *)

type toolchain = {
  ocamlfind : string;
  inc_flags : string;  (** -I flags for every library's .cmi directory *)
  scratch : string;  (** per-process scratch dir for .ml/.cmxs files *)
}

let path_sep = if Sys.win32 then ';' else ':'

let find_in_path prog =
  match Sys.getenv_opt "PATH" with
  | None -> None
  | Some path ->
    String.split_on_char path_sep path
    |> List.find_map (fun dir ->
           if dir = "" then None
           else
             let p = Filename.concat dir prog in
             if Sys.file_exists p then Some p else None)

let is_dir p = try Sys.is_directory p with Sys_error _ -> false

(* Executables live in _build/default/{bin,test,bench}; every library's
   .cmi files sit at _build/default/lib/<x>/.<name>.objs/byte and its .cmx
   files at .../native. Both matter: without the .cmx in scope, ocamlopt
   cannot resolve the [Hidet_gpu] wrapper alias statically and records a
   hard implementation dependency on the wrapper unit, which Dynlink then
   refuses to satisfy. *)
let include_dirs () =
  let root = Filename.concat (Filename.dirname Sys.executable_name) ".." in
  let lib = Filename.concat root "lib" in
  if not (is_dir lib) then []
  else
    Sys.readdir lib |> Array.to_list
    |> List.concat_map (fun d ->
           let dd = Filename.concat lib d in
           if not (is_dir dd) then []
           else
             Sys.readdir dd |> Array.to_list
             |> List.concat_map (fun o ->
                    if Filename.check_suffix o ".objs" then
                      List.filter is_dir
                        [
                          Filename.concat (Filename.concat dd o) "byte";
                          Filename.concat (Filename.concat dd o) "native";
                        ]
                    else []))

let unit_counter = Atomic.make 0

let m_codegen_us = Metrics.counter "sim.native.codegen_us"
let m_ocamlopt_us = Metrics.counter "sim.native.ocamlopt_us"
let m_dynlink_us = Metrics.counter "sim.native.dynlink_us"
let m_units = Metrics.counter "sim.native.units"
let m_memo_hits = Metrics.counter "sim.native.memo_hits"

let timed counter f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Metrics.add counter (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
  r

let read_file path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error _ | End_of_file -> ""

(* Compile one generated unit and claim its registered entry point. The
   unit (file and module) name is unique per process, so privately
   dynlinked modules never collide. *)
let build tc body_src : Exec_registry.entry =
  let name =
    Printf.sprintf "hidet_kernel_%d_%d" (Unix.getpid ())
      (Atomic.fetch_and_add unit_counter 1)
  in
  let ml = Filename.concat tc.scratch (name ^ ".ml") in
  let cmxs = Filename.concat tc.scratch (name ^ ".cmxs") in
  let errf = ml ^ ".err" in
  let oc = open_out ml in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc body_src;
      output_string oc (Printf.sprintf "\nlet () = R.register %S body\n" name));
  let cmd =
    Printf.sprintf "%s ocamlopt -shared -w -a %s %s -o %s 2>%s"
      (Filename.quote tc.ocamlfind) tc.inc_flags (Filename.quote ml)
      (Filename.quote cmxs) (Filename.quote errf)
  in
  timed m_ocamlopt_us (fun () ->
      Trace.span
        ~attrs:(fun () -> [ ("unit", name) ])
        "sim.native.ocamlopt"
        (fun _ ->
          if Sys.command cmd <> 0 then
            failwith
              (Printf.sprintf "Exec_ocaml: ocamlopt failed on %s: %s" ml
                 (String.trim (read_file errf)))));
  timed m_dynlink_us (fun () ->
      Trace.span
        ~attrs:(fun () -> [ ("unit", name) ])
        "sim.native.dynlink"
        (fun _ ->
          try Dynlink.loadfile_private cmxs
          with Dynlink.Error e ->
            failwith
              (Printf.sprintf "Exec_ocaml: dynlink failed on %s: %s" cmxs
                 (Dynlink.error_message e))));
  Metrics.incr m_units;
  match Exec_registry.take name with
  | Some entry -> entry
  | None ->
    failwith
      (Printf.sprintf "Exec_ocaml: unit %s loaded but never registered" name)

(* One-shot probe: native Dynlink, ocamlfind on PATH, the build tree's .cmi
   directories, and an end-to-end smoke compile+load of a trivial unit.
   Failure is an [Error reason], never an exception — callers degrade to
   the closure backend with the reason logged. *)
let probe () : (toolchain, string) result =
  if not Dynlink.is_native then
    Error "bytecode host: Dynlink.is_native is false"
  else
    match find_in_path "ocamlfind" with
    | None -> Error "ocamlfind not found on PATH"
    | Some ocamlfind -> (
      let dirs = include_dirs () in
      if
        not
          (List.exists
             (fun d -> Filename.basename (Filename.dirname d) = ".hidet_gpu.objs")
             dirs)
      then
        Error
          (Printf.sprintf
             "no .cmi directories found near %s (not running from a dune \
              build tree?)"
             Sys.executable_name)
      else
        let scratch =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "hidet_native_%d" (Unix.getpid ()))
        in
        (try Sys.mkdir scratch 0o700 with Sys_error _ -> ());
        if not (is_dir scratch) then
          Error (Printf.sprintf "cannot create scratch dir %s" scratch)
        else
          let tc =
            {
              ocamlfind;
              inc_flags =
                String.concat " "
                  (List.map (fun d -> "-I " ^ Filename.quote d) dirs);
              scratch;
            }
          in
          let smoke =
            "module R = Hidet_gpu__Exec_registry\n\
             let body (_ : int) (_ : int) (_ : float array array) : int = 0\n"
          in
          match build tc smoke with
          | entry ->
            if entry 0 0 [||] = 0 then Ok tc
            else Error "smoke unit returned garbage"
          | exception Failure msg -> Error msg)

let toolchain_once = lazy (probe ())
let available () = Result.map (fun _ -> ()) (Lazy.force toolchain_once)

(* ------------------------------------------------------------------ *)
(* Compilation with memoization                                       *)
(* ------------------------------------------------------------------ *)

type compiled = {
  kernel : Kernel.t;
  slots : slots;
  entry : Exec_registry.entry;
  has_sync : bool;
  parallel_ok : bool;
}

let kernel c = c.kernel
let parallel_grid c = c.parallel_ok

let memo : (string, Exec_registry.entry) Hashtbl.t = Hashtbl.create 16
let memo_lock = Mutex.create ()

let compile ?key (k : Kernel.t) : compiled =
  let tc =
    match Lazy.force toolchain_once with
    | Ok tc -> tc
    | Error reason ->
      failwith ("Exec_ocaml: native backend unavailable: " ^ reason)
  in
  Verify.kernel_exn k;
  let src, slots =
    timed m_codegen_us (fun () ->
        Trace.span
          ~attrs:(fun () -> [ ("kernel", k.Kernel.name) ])
          "sim.native.codegen"
          (fun _ -> codegen k))
  in
  (* Codegen is cheap and runs every call; ocamlopt + dynlink are memoized
     on the workload key plus the source digest (the digest alone is
     sufficient for correctness — the key prefix scopes eviction and
     observability to the schedule-cache workload). *)
  let memo_key =
    (match key with Some s -> s ^ ":" | None -> "")
    ^ Digest.to_hex (Digest.string src)
  in
  let entry =
    Mutex.lock memo_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock memo_lock)
      (fun () ->
        match Hashtbl.find_opt memo memo_key with
        | Some e ->
          Metrics.incr m_memo_hits;
          e
        | None ->
          let e = build tc src in
          Hashtbl.replace memo memo_key e;
          e)
  in
  {
    kernel = k;
    slots;
    entry;
    has_sync =
      Stmt.count (function Stmt.Sync_threads -> true | _ -> false)
        k.Kernel.body
      > 0;
    parallel_ok = Verify.block_disjoint_writes k;
  }

(* ------------------------------------------------------------------ *)
(* Launch                                                             *)
(* ------------------------------------------------------------------ *)

let m_threads = Metrics.counter "sim.threads"
let m_stmts = Metrics.counter "sim.statements"
let m_exec_us = Metrics.counter "sim.exec_us"
let m_par_blocks = Metrics.counter "sim.parallel_blocks"
let m_seq_blocks = Metrics.counter "sim.sequential_blocks"

(* Identical per-block memory model to [Compile_exec.exec_block]: shared
   arrays fresh per block, warp storage shared across a warp's threads,
   register arrays fresh per thread. Kernels without [Sync_threads] skip
   the fiber machinery entirely — a plain loop over tids is observably
   identical when no barrier can be reached. *)
let exec_block (c : compiled) (proto : float array array) bid : int =
  let k = c.kernel in
  let bufs_block = Array.copy proto in
  Array.iter
    (fun (s, b) -> bufs_block.(s) <- Array.make (Buffer.num_elems b) 0.)
    c.slots.shared_slots;
  let num_warps =
    (k.Kernel.block_dim + Interp.warp_size - 1) / Interp.warp_size
  in
  let warp_storage =
    Array.init num_warps (fun _ ->
        Array.map
          (fun (_, b) -> Array.make (Buffer.num_elems b) 0.)
          c.slots.warp_slots)
  in
  let thread_bufs tid =
    let bufs = Array.copy bufs_block in
    let ws = warp_storage.(tid / Interp.warp_size) in
    Array.iteri (fun i (s, _) -> bufs.(s) <- ws.(i)) c.slots.warp_slots;
    Array.iter
      (fun (s, b) -> bufs.(s) <- Array.make (Buffer.num_elems b) 0.)
      c.slots.reg_slots;
    bufs
  in
  if not c.has_sync then begin
    let total = ref 0 in
    for tid = 0 to k.Kernel.block_dim - 1 do
      total := !total + c.entry tid bid (thread_bufs tid)
    done;
    !total
  end
  else begin
    let counts = Array.make k.Kernel.block_dim 0 in
    let rts = Array.init k.Kernel.block_dim thread_bufs in
    let statuses =
      Array.init k.Kernel.block_dim (fun tid ->
          Interp.start_thread (fun () ->
              counts.(tid) <- c.entry tid bid rts.(tid)))
    in
    Interp.barrier_loop ~kernel_name:k.Kernel.name ~bid statuses;
    Array.fold_left ( + ) 0 counts
  end

let run_compiled ?(parallel = true) (c : compiled) bindings =
  let k = c.kernel in
  Interp.check_bindings k bindings;
  let proto = Array.make (max 1 c.slots.nbufs) [||] in
  Array.iter
    (fun (s, (b : Buffer.t)) ->
      match List.find_opt (fun (p, _) -> Buffer.equal p b) bindings with
      | Some (_, arr) -> proto.(s) <- arr
      | None -> assert false (* every parameter is bound: check_bindings *))
    c.slots.global_slots;
  let use_domains = parallel && c.parallel_ok && k.Kernel.grid_dim > 1 in
  let t0 = Unix.gettimeofday () in
  let counts =
    Trace.span
      ~attrs:(fun () ->
        [
          ("kernel", k.Kernel.name);
          ("backend", "native");
          ("parallel", string_of_bool use_domains);
          ("grid_dim", string_of_int k.Kernel.grid_dim);
        ])
      "sim.exec"
      (fun _ ->
        if use_domains then
          Hidet_parallel.Parallel.map
            (fun bid -> exec_block c proto bid)
            (Array.init k.Kernel.grid_dim Fun.id)
        else begin
          let counts = Array.make k.Kernel.grid_dim 0 in
          for bid = 0 to k.Kernel.grid_dim - 1 do
            counts.(bid) <- exec_block c proto bid
          done;
          counts
        end)
  in
  Metrics.add m_exec_us (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
  Metrics.add m_threads (Kernel.num_threads k);
  Metrics.add m_stmts (Array.fold_left ( + ) 0 counts);
  Metrics.add
    (if use_domains then m_par_blocks else m_seq_blocks)
    k.Kernel.grid_dim

let run ?parallel ?key (k : Kernel.t) bindings =
  run_compiled ?parallel (compile ?key k) bindings

let run_alloc ?parallel ?key k ~inputs ~outputs =
  let out_arrays =
    List.map (fun b -> Array.make (Buffer.num_elems b) 0.) outputs
  in
  run ?parallel ?key k (inputs @ List.combine outputs out_arrays);
  out_arrays
