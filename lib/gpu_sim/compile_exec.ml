open Hidet_ir
module Metrics = Hidet_obs.Metrics
module Trace = Hidet_obs.Trace
module Int_map = Map.Make (Int)

(* ------------------------------------------------------------------ *)
(* Runtime state                                                      *)
(* ------------------------------------------------------------------ *)

(* Everything mutable lives here, one record per simulated thread, so the
   compiled closures themselves are immutable and safe to share across the
   domains running different blocks. *)
type rt = {
  tid : int;
  bid : int;
  bufs : float array array;  (** buffer slot -> backing storage *)
  ints : int array;  (** int-typed variable frame *)
  floats : float array;
  bools : bool array;
  vals : Expr.value array;  (** boxed fallback frame (rare) *)
  mutable stmts : int;  (** statements executed by this thread *)
}

let invalid_access msg = raise (Interp.Invalid_access msg)

let oob i d name =
  invalid_access
    (Printf.sprintf "Buffer.flat_index: index %d out of bound %d on %s" i d
       name)

let not_allocated (b : Buffer.t) =
  invalid_access
    (Printf.sprintf "buffer %s (%s) not allocated" b.Buffer.name
       (Buffer.scope_name b.Buffer.scope))

(* ------------------------------------------------------------------ *)
(* Compile-time state                                                 *)
(* ------------------------------------------------------------------ *)

(* Frame slots are allocated with stack discipline while walking the
   statement tree: sibling scopes reuse the same slots, and the high-water
   mark gives the frame size. *)
type cstate = {
  buf_slot : (int, int) Hashtbl.t;  (** Buffer.id -> bufs slot *)
  mutable next_int : int;
  mutable max_int : int;
  mutable next_float : int;
  mutable max_float : int;
  mutable next_bool : int;
  mutable max_bool : int;
  mutable next_dyn : int;
  mutable max_dyn : int;
}

type vslot = S_int of int | S_float of int | S_bool of int | S_dyn of int

let push_int st =
  let s = st.next_int in
  st.next_int <- s + 1;
  if st.next_int > st.max_int then st.max_int <- st.next_int;
  s

let push_float st =
  let s = st.next_float in
  st.next_float <- s + 1;
  if st.next_float > st.max_float then st.max_float <- st.next_float;
  s

let push_bool st =
  let s = st.next_bool in
  st.next_bool <- s + 1;
  if st.next_bool > st.max_bool then st.max_bool <- st.next_bool;
  s

let push_dyn st =
  let s = st.next_dyn in
  st.next_dyn <- s + 1;
  if st.next_dyn > st.max_dyn then st.max_dyn <- st.next_dyn;
  s

(* ------------------------------------------------------------------ *)
(* Expression compilation                                             *)
(* ------------------------------------------------------------------ *)

(* A compiled expression is an unboxed closure at its statically inferred
   type. [C_dyn] is the boxed escape hatch for expressions whose type
   depends on runtime control flow (e.g. a [Select] mixing bool and
   numeric branches); it dispatches exactly like [Expr.eval], so parity
   with the reference interpreter holds even there. *)
type cexpr =
  | C_int of (rt -> int)
  | C_float of (rt -> float)
  | C_bool of (rt -> bool)
  | C_dyn of (rt -> Expr.value)

(* Coercions mirror [Expr.int_of_value] / [float_of_value] /
   [bool_of_value] exactly: int_of_float truncates, bools read as 1/0,
   numbers test as <> 0. *)
let as_int = function
  | C_int f -> f
  | C_float f -> fun rt -> int_of_float (f rt)
  | C_bool f -> fun rt -> if f rt then 1 else 0
  | C_dyn f -> fun rt -> Expr.int_of_value (f rt)

let as_float = function
  | C_float f -> f
  | C_int f -> fun rt -> float_of_int (f rt)
  | C_bool f -> fun rt -> if f rt then 1. else 0.
  | C_dyn f -> fun rt -> Expr.float_of_value (f rt)

let as_bool = function
  | C_bool f -> f
  | C_int f -> fun rt -> f rt <> 0
  | C_float f -> fun rt -> f rt <> 0.
  | C_dyn f -> fun rt -> Expr.bool_of_value (f rt)

let as_value = function
  | C_int f -> fun rt -> Expr.V_int (f rt)
  | C_float f -> fun rt -> Expr.V_float (f rt)
  | C_bool f -> fun rt -> Expr.V_bool (f rt)
  | C_dyn f -> f

(* Flat index with [Buffer.flat_index]'s exact left-to-right per-dimension
   bounds checks, strength-reduced to stride arithmetic. All indices are
   evaluated (left to right) before any check runs, matching the reference
   interpreter's [List.map eval_int]-then-[flat_index] order. Ranks 1-4
   get dedicated closures with no per-call allocation. *)
let comp_flat_read (buf : Buffer.t) (cidx : (rt -> int) array) slot :
    rt -> float =
  let name = buf.Buffer.name in
  let dims = Array.of_list buf.Buffer.dims in
  if Array.length cidx <> Array.length dims then fun rt ->
    Array.iter (fun c -> ignore (c rt)) cidx;
    invalid_access (Printf.sprintf "Buffer.flat_index: rank mismatch on %s" name)
  else
    match dims with
    | [| d0 |] ->
      let c0 = cidx.(0) in
      fun rt ->
        let i0 = c0 rt in
        if i0 < 0 || i0 >= d0 then oob i0 d0 name;
        rt.bufs.(slot).(i0)
    | [| d0; d1 |] ->
      let c0 = cidx.(0) and c1 = cidx.(1) in
      fun rt ->
        let i0 = c0 rt in
        let i1 = c1 rt in
        if i0 < 0 || i0 >= d0 then oob i0 d0 name;
        if i1 < 0 || i1 >= d1 then oob i1 d1 name;
        rt.bufs.(slot).((i0 * d1) + i1)
    | [| d0; d1; d2 |] ->
      let c0 = cidx.(0) and c1 = cidx.(1) and c2 = cidx.(2) in
      fun rt ->
        let i0 = c0 rt in
        let i1 = c1 rt in
        let i2 = c2 rt in
        if i0 < 0 || i0 >= d0 then oob i0 d0 name;
        if i1 < 0 || i1 >= d1 then oob i1 d1 name;
        if i2 < 0 || i2 >= d2 then oob i2 d2 name;
        rt.bufs.(slot).((((i0 * d1) + i1) * d2) + i2)
    | [| d0; d1; d2; d3 |] ->
      let c0 = cidx.(0) and c1 = cidx.(1) and c2 = cidx.(2) and c3 = cidx.(3) in
      fun rt ->
        let i0 = c0 rt in
        let i1 = c1 rt in
        let i2 = c2 rt in
        let i3 = c3 rt in
        if i0 < 0 || i0 >= d0 then oob i0 d0 name;
        if i1 < 0 || i1 >= d1 then oob i1 d1 name;
        if i2 < 0 || i2 >= d2 then oob i2 d2 name;
        if i3 < 0 || i3 >= d3 then oob i3 d3 name;
        rt.bufs.(slot).((((((i0 * d1) + i1) * d2) + i2) * d3) + i3)
    | _ ->
      let n = Array.length dims in
      fun rt ->
        let idx = Array.make n 0 in
        for p = 0 to n - 1 do
          idx.(p) <- cidx.(p) rt
        done;
        let acc = ref 0 in
        for p = 0 to n - 1 do
          let i = idx.(p) and d = dims.(p) in
          if i < 0 || i >= d then oob i d name;
          acc := (!acc * d) + i
        done;
        rt.bufs.(slot).(!acc)

let rec comp st (venv : vslot Int_map.t) (e : Expr.t) : cexpr =
  match e with
  | Expr.Int n -> C_int (fun _ -> n)
  | Float f -> C_float (fun _ -> f)
  | Bool b -> C_bool (fun _ -> b)
  | Thread_idx -> C_int (fun rt -> rt.tid)
  | Block_idx -> C_int (fun rt -> rt.bid)
  | Var v -> (
    match Int_map.find_opt v.Var.id venv with
    | Some (S_int s) -> C_int (fun rt -> rt.ints.(s))
    | Some (S_float s) -> C_float (fun rt -> rt.floats.(s))
    | Some (S_bool s) -> C_bool (fun rt -> rt.bools.(s))
    | Some (S_dyn s) -> C_dyn (fun rt -> rt.vals.(s))
    | None ->
      (* Rejected by the verifier; kept for parity with [Interp]'s runtime
         error should an unverified kernel ever reach execution. *)
      let msg = Printf.sprintf "unbound variable %s" (Var.name v) in
      C_dyn (fun _ -> invalid_access msg))
  | Load (buf, idx) -> (
    let cidx =
      Array.of_list (List.map (fun i -> as_int (comp st venv i)) idx)
    in
    match Hashtbl.find_opt st.buf_slot buf.Buffer.id with
    | Some slot -> C_float (comp_flat_read buf cidx slot)
    | None ->
      C_float
        (fun rt ->
          Array.iter (fun c -> ignore (c rt)) cidx;
          not_allocated buf))
  | Select (c, a, b) -> (
    let cc = as_bool (comp st venv c) in
    let xa = comp st venv a and xb = comp st venv b in
    match (xa, xb) with
    | C_int fa, C_int fb -> C_int (fun rt -> if cc rt then fa rt else fb rt)
    | C_bool fa, C_bool fb -> C_bool (fun rt -> if cc rt then fa rt else fb rt)
    | (C_float _ | C_int _), (C_float _ | C_int _) ->
      let fa = as_float xa and fb = as_float xb in
      C_float (fun rt -> if cc rt then fa rt else fb rt)
    | _ ->
      let fa = as_value xa and fb = as_value xb in
      C_dyn (fun rt -> if cc rt then fa rt else fb rt))
  | Unop (op, a) -> comp_unop st venv op a
  | Binop (op, a, b) -> comp_binop st venv op a b

and comp_unop st venv op a =
  match op with
  | Expr.Not ->
    let f = as_bool (comp st venv a) in
    C_bool (fun rt -> not (f rt))
  | Neg -> (
    match comp st venv a with
    | C_int f -> C_int (fun rt -> -f rt)
    | C_float f -> C_float (fun rt -> -.f rt)
    | C_bool f ->
      (* [Expr.eval] evaluates the operand, then rejects it. *)
      C_int
        (fun rt ->
          ignore (f rt);
          invalid_arg "Expr.eval: neg of bool")
    | C_dyn f ->
      C_dyn
        (fun rt ->
          match f rt with
          | Expr.V_int n -> Expr.V_int (-n)
          | V_float x -> V_float (-.x)
          | V_bool _ -> invalid_arg "Expr.eval: neg of bool"))
  | Abs -> (
    match comp st venv a with
    | C_int f -> C_int (fun rt -> Stdlib.abs (f rt))
    | C_float f -> C_float (fun rt -> Float.abs (f rt))
    | C_bool f ->
      C_int
        (fun rt ->
          ignore (f rt);
          invalid_arg "Expr.eval: abs of bool")
    | C_dyn f ->
      C_dyn
        (fun rt ->
          match f rt with
          | Expr.V_int n -> Expr.V_int (Stdlib.abs n)
          | V_float x -> V_float (Float.abs x)
          | V_bool _ -> invalid_arg "Expr.eval: abs of bool"))
  | Exp ->
    let f = as_float (comp st venv a) in
    C_float (fun rt -> Stdlib.exp (f rt))
  | Log ->
    let f = as_float (comp st venv a) in
    C_float (fun rt -> Stdlib.log (f rt))
  | Sqrt ->
    let f = as_float (comp st venv a) in
    C_float (fun rt -> Stdlib.sqrt (f rt))
  | Tanh ->
    let f = as_float (comp st venv a) in
    C_float (fun rt -> Stdlib.tanh (f rt))
  | Erf ->
    let f = as_float (comp st venv a) in
    C_float (fun rt -> Expr.erf (f rt))

and comp_binop st venv op a b =
  match op with
  | Expr.And ->
    let fa = as_bool (comp st venv a) and fb = as_bool (comp st venv b) in
    C_bool (fun rt -> fa rt && fb rt)
  | Or ->
    let fa = as_bool (comp st venv a) and fb = as_bool (comp st venv b) in
    C_bool (fun rt -> fa rt || fb rt)
  | _ -> (
    let xa = comp st venv a and xb = comp st venv b in
    match (xa, xb) with
    | (C_dyn _, _ | _, C_dyn _) ->
      (* Statically untypeable operand: fall back to [Expr.eval]'s exact
         dynamic dispatch (including the bool-operand rejection). *)
      let fa = as_value xa and fb = as_value xb in
      C_dyn
        (fun rt ->
          let va = fa rt in
          let vb = fb rt in
          match (va, vb) with
          | Expr.V_int x, Expr.V_int y -> Expr.eval_int_binop op x y
          | (V_float _ | V_int _), (V_float _ | V_int _) ->
            Expr.eval_float_binop op (Expr.float_of_value va)
              (Expr.float_of_value vb)
          | _ -> invalid_arg "Expr.eval: bool operand to arithmetic binop")
    | (C_bool _, _ | _, C_bool _) ->
      (* [Expr.eval] evaluates both operands first, then rejects. *)
      let fa = as_value xa and fb = as_value xb in
      C_int
        (fun rt ->
          ignore (fa rt);
          ignore (fb rt);
          invalid_arg "Expr.eval: bool operand to arithmetic binop")
    | C_int fa, C_int fb -> (
      match op with
      | Add -> C_int (fun rt -> fa rt + fb rt)
      | Sub -> C_int (fun rt -> fa rt - fb rt)
      | Mul -> C_int (fun rt -> fa rt * fb rt)
      | Div -> C_int (fun rt -> fa rt / fb rt)
      | Mod -> C_int (fun rt -> fa rt mod fb rt)
      | Min -> C_int (fun rt -> min (fa rt) (fb rt))
      | Max -> C_int (fun rt -> max (fa rt) (fb rt))
      | Lt -> C_bool (fun rt -> fa rt < fb rt)
      | Le -> C_bool (fun rt -> fa rt <= fb rt)
      | Gt -> C_bool (fun rt -> fa rt > fb rt)
      | Ge -> C_bool (fun rt -> fa rt >= fb rt)
      | Eq -> C_bool (fun rt -> fa rt = fb rt)
      | Ne -> C_bool (fun rt -> fa rt <> fb rt)
      | And | Or -> assert false)
    | _ -> (
      (* Mixed int/float promotes to float, exactly like [eval_binop]. *)
      let fa = as_float xa and fb = as_float xb in
      match op with
      | Add -> C_float (fun rt -> fa rt +. fb rt)
      | Sub -> C_float (fun rt -> fa rt -. fb rt)
      | Mul -> C_float (fun rt -> fa rt *. fb rt)
      | Div -> C_float (fun rt -> fa rt /. fb rt)
      | Mod -> C_float (fun rt -> Float.rem (fa rt) (fb rt))
      | Min -> C_float (fun rt -> Float.min (fa rt) (fb rt))
      | Max -> C_float (fun rt -> Float.max (fa rt) (fb rt))
      | Lt -> C_bool (fun rt -> fa rt < fb rt)
      | Le -> C_bool (fun rt -> fa rt <= fb rt)
      | Gt -> C_bool (fun rt -> fa rt > fb rt)
      | Ge -> C_bool (fun rt -> fa rt >= fb rt)
      | Eq -> C_bool (fun rt -> fa rt = fb rt)
      | Ne -> C_bool (fun rt -> fa rt <> fb rt)
      | And | Or -> assert false))

(* ------------------------------------------------------------------ *)
(* Statement compilation                                              *)
(* ------------------------------------------------------------------ *)

let noop (_ : rt) = ()

(* Store evaluates all indices (left to right), then the value, then
   resolves the buffer, then bounds-checks — the reference interpreter's
   exact order, so a failing statement raises the same error at the same
   point. *)
let comp_store st venv (buf : Buffer.t) indices value : rt -> unit =
  let cidx =
    Array.of_list (List.map (fun i -> as_int (comp st venv i)) indices)
  in
  let cv = as_float (comp st venv value) in
  let name = buf.Buffer.name in
  let dims = Array.of_list buf.Buffer.dims in
  let generic_fail fail rt =
    rt.stmts <- rt.stmts + 1;
    Array.iter (fun c -> ignore (c rt)) cidx;
    ignore (cv rt);
    fail ()
  in
  match Hashtbl.find_opt st.buf_slot buf.Buffer.id with
  | None -> generic_fail (fun () -> not_allocated buf)
  | Some slot ->
    if Array.length cidx <> Array.length dims then
      generic_fail (fun () ->
          invalid_access
            (Printf.sprintf "Buffer.flat_index: rank mismatch on %s" name))
    else (
      match dims with
      | [| d0 |] ->
        let c0 = cidx.(0) in
        fun rt ->
          rt.stmts <- rt.stmts + 1;
          let i0 = c0 rt in
          let v = cv rt in
          if i0 < 0 || i0 >= d0 then oob i0 d0 name;
          rt.bufs.(slot).(i0) <- v
      | [| d0; d1 |] ->
        let c0 = cidx.(0) and c1 = cidx.(1) in
        fun rt ->
          rt.stmts <- rt.stmts + 1;
          let i0 = c0 rt in
          let i1 = c1 rt in
          let v = cv rt in
          if i0 < 0 || i0 >= d0 then oob i0 d0 name;
          if i1 < 0 || i1 >= d1 then oob i1 d1 name;
          rt.bufs.(slot).((i0 * d1) + i1) <- v
      | [| d0; d1; d2 |] ->
        let c0 = cidx.(0) and c1 = cidx.(1) and c2 = cidx.(2) in
        fun rt ->
          rt.stmts <- rt.stmts + 1;
          let i0 = c0 rt in
          let i1 = c1 rt in
          let i2 = c2 rt in
          let v = cv rt in
          if i0 < 0 || i0 >= d0 then oob i0 d0 name;
          if i1 < 0 || i1 >= d1 then oob i1 d1 name;
          if i2 < 0 || i2 >= d2 then oob i2 d2 name;
          rt.bufs.(slot).((((i0 * d1) + i1) * d2) + i2) <- v
      | [| d0; d1; d2; d3 |] ->
        let c0 = cidx.(0)
        and c1 = cidx.(1)
        and c2 = cidx.(2)
        and c3 = cidx.(3) in
        fun rt ->
          rt.stmts <- rt.stmts + 1;
          let i0 = c0 rt in
          let i1 = c1 rt in
          let i2 = c2 rt in
          let i3 = c3 rt in
          let v = cv rt in
          if i0 < 0 || i0 >= d0 then oob i0 d0 name;
          if i1 < 0 || i1 >= d1 then oob i1 d1 name;
          if i2 < 0 || i2 >= d2 then oob i2 d2 name;
          if i3 < 0 || i3 >= d3 then oob i3 d3 name;
          rt.bufs.(slot).((((((i0 * d1) + i1) * d2) + i2) * d3) + i3) <- v
      | _ ->
        let n = Array.length dims in
        fun rt ->
          rt.stmts <- rt.stmts + 1;
          let idx = Array.make n 0 in
          for p = 0 to n - 1 do
            idx.(p) <- cidx.(p) rt
          done;
          let v = cv rt in
          let acc = ref 0 in
          for p = 0 to n - 1 do
            let i = idx.(p) and d = dims.(p) in
            if i < 0 || i >= d then oob i d name;
            acc := (!acc * d) + i
          done;
          rt.bufs.(slot).(!acc) <- v)

(* Evaluate an offset list left to right into a fresh array (fresh per
   execution: compiled closures are shared across domains). *)
let eval_offs (co : (rt -> int) array) rt =
  let n = Array.length co in
  let o = Array.make n 0 in
  for p = 0 to n - 1 do
    o.(p) <- co.(p) rt
  done;
  o

(* MMA: lane 0 of each warp multiplies an [m x k] by a [k x n] tile into an
   [m x n] accumulator. The reference rebuilds an index list per element
   ([List.mapi]); here the tile origin is flattened once and elements are
   addressed as [origin + row * leading_stride + col]. Per-element bounds
   checks on the two trailing dims are kept (offsets are runtime values);
   leading-dim checks are hoisted out of the loops since their indices are
   loop-invariant. The only observable deviation from the reference is
   which error surfaces when several operands are simultaneously out of
   bounds — unreachable for verified kernels. *)
let comp_mma st venv (m : Stmt.mma) : rt -> unit =
  let comp_offs l =
    Array.of_list (List.map (fun e -> as_int (comp st venv e)) l)
  in
  let ca_off = comp_offs m.a_off
  and cb_off = comp_offs m.b_off
  and cc_off = comp_offs m.c_off in
  let slot (b : Buffer.t) = Hashtbl.find_opt st.buf_slot b.Buffer.id in
  (* Leading-dim check + tile-origin flattening (trailing dims zeroed). *)
  let origin name (dims : int array) r (base : int array) =
    let acc = ref 0 in
    for p = 0 to r - 1 do
      let d = dims.(p) in
      if p < r - 2 then begin
        let i = base.(p) in
        if i < 0 || i >= d then oob i d name;
        acc := (!acc * d) + i
      end
      else acc := !acc * d
    done;
    !acc
  in
  match (slot m.a, slot m.b, slot m.c) with
  | Some sa, Some sb, Some sc
    when Buffer.rank m.a >= 2 && Buffer.rank m.b >= 2 && Buffer.rank m.c >= 2
    ->
    let dims_of (b : Buffer.t) = Array.of_list b.Buffer.dims in
    let a_dims = dims_of m.a and b_dims = dims_of m.b and c_dims = dims_of m.c in
    let a_r = Array.length a_dims
    and b_r = Array.length b_dims
    and c_r = Array.length c_dims in
    let a_name = m.a.Buffer.name
    and b_name = m.b.Buffer.name
    and c_name = m.c.Buffer.name in
    let a_rdim = a_dims.(a_r - 2) and a_cdim = a_dims.(a_r - 1) in
    let b_rdim = b_dims.(b_r - 2) and b_cdim = b_dims.(b_r - 1) in
    let c_rdim = c_dims.(c_r - 2) and c_cdim = c_dims.(c_r - 1) in
    let mm = m.m and nn = m.n and kk = m.k in
    fun rt ->
      rt.stmts <- rt.stmts + 1;
      if rt.tid mod Interp.warp_size = 0 then begin
        let ao = eval_offs ca_off rt in
        let bo = eval_offs cb_off rt in
        let co = eval_offs cc_off rt in
        let aarr = rt.bufs.(sa)
        and barr = rt.bufs.(sb)
        and carr = rt.bufs.(sc) in
        let c0 = origin c_name c_dims c_r co in
        let b0 = origin b_name b_dims b_r bo in
        let a0 = origin a_name a_dims a_r ao in
        let ar0 = ao.(a_r - 2) and ac0 = ao.(a_r - 1) in
        let br0 = bo.(b_r - 2) and bc0 = bo.(b_r - 1) in
        let cr0 = co.(c_r - 2) and cc0 = co.(c_r - 1) in
        for i = 0 to mm - 1 do
          for j = 0 to nn - 1 do
            let ri = cr0 + i and cj = cc0 + j in
            if ri < 0 || ri >= c_rdim then oob ri c_rdim c_name;
            if cj < 0 || cj >= c_cdim then oob cj c_cdim c_name;
            let cix = c0 + (ri * c_cdim) + cj in
            let acc = ref carr.(cix) in
            for k = 0 to kk - 1 do
              let brk = br0 + k and bcj = bc0 + j in
              if brk < 0 || brk >= b_rdim then oob brk b_rdim b_name;
              if bcj < 0 || bcj >= b_cdim then oob bcj b_cdim b_name;
              let ari = ar0 + i and ack = ac0 + k in
              if ari < 0 || ari >= a_rdim then oob ari a_rdim a_name;
              if ack < 0 || ack >= a_cdim then oob ack a_cdim a_name;
              acc :=
                !acc
                +. aarr.(a0 + (ari * a_cdim) + ack)
                   *. barr.(b0 + (brk * b_cdim) + bcj)
            done;
            carr.(cix) <- !acc
          done
        done
      end
  | sa, sb, sc ->
    (* Undeclared operand or rank < 2: both rejected by the verifier; keep
       the reference's runtime behaviour for robustness. *)
    let first_missing =
      List.find_opt
        (fun (s, _) -> s = None)
        [ (sa, m.a); (sb, m.b); (sc, m.c) ]
    in
    fun rt ->
      rt.stmts <- rt.stmts + 1;
      if rt.tid mod Interp.warp_size = 0 then begin
        ignore (eval_offs ca_off rt);
        ignore (eval_offs cb_off rt);
        ignore (eval_offs cc_off rt);
        match first_missing with
        | Some (_, b) -> not_allocated b
        | None ->
          invalid_access
            (Printf.sprintf "mma operand of rank < 2 on %s" m.c.Buffer.name)
      end

let rec comp_stmt st venv (s : Stmt.t) : rt -> unit =
  match s with
  | Stmt.Seq ss -> (
    match List.map (comp_stmt st venv) ss with
    | [] -> noop
    | [ a ] -> a
    | [ a; b ] ->
      fun rt ->
        a rt;
        b rt
    | [ a; b; c ] ->
      fun rt ->
        a rt;
        b rt;
        c rt
    | cs ->
      let arr = Array.of_list cs in
      let n = Array.length arr in
      fun rt ->
        for i = 0 to n - 1 do
          arr.(i) rt
        done)
  | For { var; extent; body; _ } ->
    let cext = as_int (comp st venv extent) in
    let s0 = push_int st in
    let cbody = comp_stmt st (Int_map.add var.Var.id (S_int s0) venv) body in
    st.next_int <- st.next_int - 1;
    fun rt ->
      rt.stmts <- rt.stmts + 1;
      let n = cext rt in
      let ints = rt.ints in
      for i = 0 to n - 1 do
        ints.(s0) <- i;
        cbody rt
      done
  | If { cond; then_; else_ } ->
    let cc = as_bool (comp st venv cond) in
    let ct = comp_stmt st venv then_ in
    let ce = match else_ with Some e -> comp_stmt st venv e | None -> noop in
    fun rt ->
      rt.stmts <- rt.stmts + 1;
      if cc rt then ct rt else ce rt
  | Let { var; value; body } -> (
    match comp st venv value with
    | C_int f ->
      let s0 = push_int st in
      let cbody = comp_stmt st (Int_map.add var.Var.id (S_int s0) venv) body in
      st.next_int <- st.next_int - 1;
      fun rt ->
        rt.stmts <- rt.stmts + 1;
        rt.ints.(s0) <- f rt;
        cbody rt
    | C_float f ->
      let s0 = push_float st in
      let cbody =
        comp_stmt st (Int_map.add var.Var.id (S_float s0) venv) body
      in
      st.next_float <- st.next_float - 1;
      fun rt ->
        rt.stmts <- rt.stmts + 1;
        rt.floats.(s0) <- f rt;
        cbody rt
    | C_bool f ->
      let s0 = push_bool st in
      let cbody = comp_stmt st (Int_map.add var.Var.id (S_bool s0) venv) body in
      st.next_bool <- st.next_bool - 1;
      fun rt ->
        rt.stmts <- rt.stmts + 1;
        rt.bools.(s0) <- f rt;
        cbody rt
    | C_dyn f ->
      let s0 = push_dyn st in
      let cbody = comp_stmt st (Int_map.add var.Var.id (S_dyn s0) venv) body in
      st.next_dyn <- st.next_dyn - 1;
      fun rt ->
        rt.stmts <- rt.stmts + 1;
        rt.vals.(s0) <- f rt;
        cbody rt)
  | Store { buf; indices; value } -> comp_store st venv buf indices value
  | Mma m -> comp_mma st venv m
  | Sync_threads ->
    fun rt ->
      rt.stmts <- rt.stmts + 1;
      Effect.perform Interp.Sync
  | Comment _ -> fun rt -> rt.stmts <- rt.stmts + 1

(* ------------------------------------------------------------------ *)
(* Kernel compilation and launch                                      *)
(* ------------------------------------------------------------------ *)

type compiled = {
  kernel : Kernel.t;
  nbufs : int;
  global_slots : (int * Buffer.t) array;
  shared_slots : (int * Buffer.t) array;
  warp_slots : (int * Buffer.t) array;
  reg_slots : (int * Buffer.t) array;
  n_ints : int;
  n_floats : int;
  n_bools : int;
  n_dyns : int;
  body : rt -> unit;
  parallel_ok : bool;
}

let m_threads = Metrics.counter "sim.threads"
let m_stmts = Metrics.counter "sim.statements"
let m_compile_us = Metrics.counter "sim.compile_us"
let m_exec_us = Metrics.counter "sim.exec_us"
let m_par_blocks = Metrics.counter "sim.parallel_blocks"
let m_seq_blocks = Metrics.counter "sim.sequential_blocks"

let kernel c = c.kernel
let parallel_grid c = c.parallel_ok

let compile (k : Kernel.t) : compiled =
  Verify.kernel_exn k;
  let t0 = Unix.gettimeofday () in
  let res =
    Trace.span
      ~attrs:(fun () -> [ ("kernel", k.Kernel.name) ])
      "sim.compile"
      (fun _ ->
        let buf_slot = Hashtbl.create 16 in
        let next = ref 0 in
        let assign bufs =
          Array.of_list
            (List.map
               (fun (b : Buffer.t) ->
                 let s = !next in
                 incr next;
                 Hashtbl.replace buf_slot b.Buffer.id s;
                 (s, b))
               bufs)
        in
        let global_slots = assign k.params in
        let shared_slots = assign k.shared in
        let warp_slots = assign k.warp_bufs in
        let reg_slots = assign k.regs in
        let st =
          {
            buf_slot;
            next_int = 0;
            max_int = 0;
            next_float = 0;
            max_float = 0;
            next_bool = 0;
            max_bool = 0;
            next_dyn = 0;
            max_dyn = 0;
          }
        in
        let body = comp_stmt st Int_map.empty k.body in
        {
          kernel = k;
          nbufs = !next;
          global_slots;
          shared_slots;
          warp_slots;
          reg_slots;
          n_ints = st.max_int;
          n_floats = st.max_float;
          n_bools = st.max_bool;
          n_dyns = st.max_dyn;
          body;
          parallel_ok = Verify.block_disjoint_writes k;
        })
  in
  Metrics.add m_compile_us
    (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
  res

(* Run one block; returns the number of statements its threads executed.
   Thread fibers start in ascending tid order and advance phase by phase
   through [Interp]'s barrier machinery, exactly like the reference. *)
let exec_block (c : compiled) (proto : float array array) bid : int =
  let k = c.kernel in
  let bufs_block = Array.copy proto in
  Array.iter
    (fun (s, b) -> bufs_block.(s) <- Array.make (Buffer.num_elems b) 0.)
    c.shared_slots;
  let num_warps =
    (k.Kernel.block_dim + Interp.warp_size - 1) / Interp.warp_size
  in
  let warp_storage =
    Array.init num_warps (fun _ ->
        Array.map (fun (_, b) -> Array.make (Buffer.num_elems b) 0.) c.warp_slots)
  in
  let rts =
    Array.init k.Kernel.block_dim (fun tid ->
        let bufs = Array.copy bufs_block in
        let ws = warp_storage.(tid / Interp.warp_size) in
        Array.iteri (fun i (s, _) -> bufs.(s) <- ws.(i)) c.warp_slots;
        Array.iter
          (fun (s, b) -> bufs.(s) <- Array.make (Buffer.num_elems b) 0.)
          c.reg_slots;
        {
          tid;
          bid;
          bufs;
          ints = Array.make (max 1 c.n_ints) 0;
          floats = Array.make (max 1 c.n_floats) 0.;
          bools = Array.make (max 1 c.n_bools) false;
          vals = Array.make (max 1 c.n_dyns) (Expr.V_int 0);
          stmts = 0;
        })
  in
  let statuses =
    Array.init k.Kernel.block_dim (fun tid ->
        Interp.start_thread (fun () -> c.body rts.(tid)))
  in
  Interp.barrier_loop ~kernel_name:k.Kernel.name ~bid statuses;
  Array.fold_left (fun acc rt -> acc + rt.stmts) 0 rts

let run_compiled ?(parallel = true) (c : compiled) bindings =
  let k = c.kernel in
  Interp.check_bindings k bindings;
  let proto = Array.make (max 1 c.nbufs) [||] in
  Array.iter
    (fun (s, (b : Buffer.t)) ->
      match List.find_opt (fun (p, _) -> Buffer.equal p b) bindings with
      | Some (_, arr) -> proto.(s) <- arr
      | None -> assert false (* every parameter is bound: check_bindings *))
    c.global_slots;
  let use_domains = parallel && c.parallel_ok && k.Kernel.grid_dim > 1 in
  let t0 = Unix.gettimeofday () in
  let counts =
    Trace.span
      ~attrs:(fun () ->
        [
          ("kernel", k.Kernel.name);
          ("parallel", string_of_bool use_domains);
          ("grid_dim", string_of_int k.Kernel.grid_dim);
        ])
      "sim.exec"
      (fun _ ->
        if use_domains then
          Hidet_parallel.Parallel.map
            (fun bid -> exec_block c proto bid)
            (Array.init k.Kernel.grid_dim Fun.id)
        else begin
          let counts = Array.make k.Kernel.grid_dim 0 in
          for bid = 0 to k.Kernel.grid_dim - 1 do
            counts.(bid) <- exec_block c proto bid
          done;
          counts
        end)
  in
  Metrics.add m_exec_us (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
  Metrics.add m_threads (Kernel.num_threads k);
  Metrics.add m_stmts (Array.fold_left ( + ) 0 counts);
  Metrics.add
    (if use_domains then m_par_blocks else m_seq_blocks)
    k.Kernel.grid_dim

let run ?parallel (k : Kernel.t) bindings =
  run_compiled ?parallel (compile k) bindings

let run_alloc ?parallel k ~inputs ~outputs =
  let out_arrays =
    List.map (fun b -> Array.make (Buffer.num_elems b) 0.) outputs
  in
  run ?parallel k (inputs @ List.combine outputs out_arrays);
  out_arrays
