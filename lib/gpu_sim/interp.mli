(** Functional interpreter for IR kernels.

    Executes a kernel exactly as a GPU would, block by block: every block
    runs its threads as cooperative fibers (OCaml 5 effects) that advance in
    lockstep between [__syncthreads] barriers, with per-scope memory (global,
    shared per block, warp-distributed, per-thread registers). MMA statements
    execute once per warp.

    This engine is for correctness (small shapes); latency comes from
    {!Perf_model}. *)

exception Barrier_divergence of string
(** Raised when some threads of a block reach a barrier while others have
    already exited — undefined behaviour on real hardware. *)

exception Invalid_access of string
(** Out-of-bounds or wrong-scope access detected during execution. *)

val run : Hidet_ir.Kernel.t -> (Hidet_ir.Buffer.t * float array) list -> unit
(** [run kernel bindings] executes the kernel. [bindings] must provide one
    array per kernel parameter, each of length [Buffer.num_elems]; output
    arrays are mutated in place. Raises [Invalid_argument] on missing or
    mis-sized bindings. *)

val run_alloc :
  Hidet_ir.Kernel.t ->
  inputs:(Hidet_ir.Buffer.t * float array) list ->
  outputs:Hidet_ir.Buffer.t list ->
  float array list
(** Convenience wrapper: allocates zero-filled arrays for [outputs], runs,
    and returns them in order. *)

(** {1 Shared execution machinery}

    The pieces below are the barrier and launch-validation substrate reused
    by {!Compile_exec}, the closure-compiling backend. Sharing them (rather
    than reimplementing) is what keeps [Barrier_divergence] and binding
    errors bit-identical across the two backends. *)

type _ Effect.t += Sync : unit Effect.t
(** Performed by a thread fiber reaching [__syncthreads]. *)

val warp_size : int

type status = Finished | Blocked of (unit, status) Effect.Deep.continuation
(** State of one thread fiber between barrier phases. *)

val start_thread : (unit -> unit) -> status
(** Run a thread body as a fiber until it finishes or performs {!Sync}. *)

val barrier_loop : kernel_name:string -> bid:int -> status array -> unit
(** Advance all blocked fibers phase by phase; raises {!Barrier_divergence}
    if some threads finished while others wait at a barrier. *)

val check_bindings :
  Hidet_ir.Kernel.t -> (Hidet_ir.Buffer.t * float array) list -> unit
(** Validate launch bindings (sizes, presence of every parameter); raises
    [Invalid_argument] with the same messages {!run} uses. *)
