(** Closure-compiling execution backend for IR kernels.

    {!Interp} walks the statement tree for every thread of every block,
    re-resolving variables through a map and buffers through hash tables at
    each step. This backend instead walks the [Kernel.t] {e once} and
    compiles it to [unit -> unit] thread programs:

    - variables live in per-thread unboxed frames ([int array] /
      [float array] / [bool array]) at slots fixed at compile time;
    - buffers are resolved at compile time to slots in a per-thread
      [float array array] (no [Hashtbl] in the hot loop);
    - [Buffer.flat_index] is strength-reduced to precomputed strides with
      per-dimension bounds checks identical to the reference;
    - expression trees are specialized into unboxed [float]/[int]/[bool]
      closures (a boxed [Expr.value] fallback handles the rare
      statically-untypeable expression, with {!Expr.eval}'s exact dynamic
      dispatch);
    - MMA tiles index by stride arithmetic instead of per-element list
      rebuilding.

    [Sync_threads] still runs on {!Interp}'s effect-handler barrier
    machinery ({!Interp.start_thread} / {!Interp.barrier_loop}), so
    {!Interp.Barrier_divergence} and {!Interp.Invalid_access} semantics are
    bit-identical to the legacy interpreter, which remains the reference.

    The grid loop runs blocks on concurrent domains when the verifier
    proves blocks write disjoint global memory
    ({!Verify.block_disjoint_writes}); otherwise — or with
    [~parallel:false] — blocks run sequentially, exactly like the
    reference. *)

type compiled
(** A kernel compiled to thread programs; reusable across launches. *)

val compile : Hidet_ir.Kernel.t -> compiled
(** Verify ([Verify.kernel_exn], like [Interp.run]) and compile the
    kernel. Records compile wall time in the [sim.compile_us] metric and a
    [sim.compile] trace span. *)

val kernel : compiled -> Hidet_ir.Kernel.t

val parallel_grid : compiled -> bool
(** Whether the verifier proved per-block write disjointness, i.e. whether
    {!run_compiled} may launch blocks on concurrent domains. *)

val run_compiled :
  ?parallel:bool ->
  compiled ->
  (Hidet_ir.Buffer.t * float array) list ->
  unit
(** Execute a compiled kernel. [bindings] follow the [Interp.run] contract
    (one array per parameter, mutated in place) and failures raise the same
    exceptions with the same messages. [parallel] (default [true]) permits
    domain-parallel block execution when {!parallel_grid} holds. Updates
    the [sim.threads], [sim.statements], [sim.exec_us] metrics and a
    [sim.exec] trace span. *)

val run :
  ?parallel:bool ->
  Hidet_ir.Kernel.t ->
  (Hidet_ir.Buffer.t * float array) list ->
  unit
(** [compile] + [run_compiled]: drop-in replacement for [Interp.run]. *)

val run_alloc :
  ?parallel:bool ->
  Hidet_ir.Kernel.t ->
  inputs:(Hidet_ir.Buffer.t * float array) list ->
  outputs:Hidet_ir.Buffer.t list ->
  float array list
(** Drop-in replacement for [Interp.run_alloc]. *)
