(** Handshake and runtime support for dynlinked native kernels.

    {!Exec_ocaml} pretty-prints each kernel to an OCaml source file whose
    toplevel effect is one {!register} call, compiles it with [ocamlopt
    -shared] and [Dynlink]s the result; the loaded unit hands its entry
    point back through the table here. Everything else in this module is
    the small runtime surface the generated code calls into: the barrier
    effect, the exact error raisers of the interpreter backends, and
    [Expr.eval]'s dynamic-dispatch fallback for statically untypeable
    expressions — re-exported so generated source references one module
    only, and so all three backends raise bit-identical errors. *)

type entry = int -> int -> float array array -> int
(** [entry tid bid bufs] runs one thread and returns the number of
    statements it executed. [bufs] is indexed by the buffer slots assigned
    at codegen time. *)

val register : string -> entry -> unit
(** Called by the generated unit's toplevel [let () = ...] under the unit's
    own (unique) module name. *)

val take : string -> entry option
(** Claim and remove a registered entry; [None] if the unit never ran its
    registration (a codegen or link bug). *)

(** {1 Runtime support used by generated code} *)

val sync : unit -> unit
(** Perform {!Interp.Sync} — the block barrier. *)

val warp_size : int

val oob : int -> int -> string -> 'a
(** [Interp.Invalid_access] with [Buffer.flat_index]'s exact message. *)

val rank_mismatch : string -> 'a
val not_allocated : string -> string -> 'a
(** [not_allocated name scope_name]. *)

val unbound_var : string -> 'a
val mma_rank : string -> 'a

val neg_bool : unit -> 'a
val abs_bool : unit -> 'a
val bool_binop : unit -> 'a
(** [Invalid_argument] with [Expr.eval]'s exact messages (the operands
    have already been evaluated by the caller, like the reference). *)

val erf : float -> float

(** {1 Dynamic-dispatch fallback}

    The boxed escape hatch for expressions whose type depends on runtime
    control flow, dispatching exactly like [Expr.eval]. *)

type value = Hidet_ir.Expr.value =
  | V_int of int
  | V_float of float
  | V_bool of bool

val int_of_value : value -> int
val float_of_value : value -> float
val bool_of_value : value -> bool

val dyn_neg : value -> value
val dyn_abs : value -> value

val dyn_binop : int -> value -> value -> value
(** [dyn_binop code va vb] applies the arithmetic/comparison binop encoded
    by [code] (see {!Exec_ocaml}'s emitter; [And]/[Or] short-circuit in
    generated code and never reach here): int×int via [Expr.eval_int_binop],
    numeric mix via [Expr.eval_float_binop], bool operands rejected. *)
