(** Analytic latency model.

    Latency is estimated from structural resource counts ({!Traffic}),
    occupancy, wave quantization and pipeline overlap:

    - Occupancy: resident blocks per SM are limited by threads, shared
      memory, registers, and the architectural block cap. A kernel whose
      block exceeds any per-block resource is infeasible.
    - Waves: blocks are dispatched in waves of [num_sms * blocks_per_sm]; a
      partially filled final wave costs a full wave (wave quantization).
    - Per-block time: memory time (bandwidth shared among active blocks,
      degraded by poor coalescing and low thread counts, and discounted by
      the {!Traffic.block_reuse} L2-locality factor over the device's
      [l2_reuse_window]) and compute time (CUDA-core + tensor-core +
      shared-memory throughput). With a validated pipelined main loop
      (stages >= 2) the two overlap: [max(mem, compute)] plus a residue of
      the shorter phase that shrinks with pipeline depth (2 / 3 / 4+
      stages); otherwise they serialize: [mem + compute].
    - Fixed costs: kernel launch overhead and per-barrier latency.

    The model is calibrated to RTX 3090 peaks; absolute values are plausible
    but the goal is ordinal fidelity across schedules (see DESIGN.md §3). *)

type estimate = {
  latency : float;  (** seconds, including launch overhead *)
  mem_time : float;  (** per-wave memory component *)
  compute_time : float;  (** per-wave compute component *)
  waves : int;
  blocks_per_sm : int;
  occupancy : float;  (** resident threads / max threads per SM *)
  pipelined : bool;
  feasible : bool;
  note : string;
      (** infeasible: the reason; feasible: the binding bottleneck —
          ["memory-bound"], ["compute-bound"] or ["launch-bound"] *)
}

val infeasible : string -> estimate

val blocks_per_sm_limit :
  Device.t -> block_dim:int -> smem:int -> regs:int -> (int, string) result
(** Resident blocks per SM given a block's resource footprint, or the
    infeasibility reason. A kernel with [regs = 0] is not register-limited
    (the thread / shared-memory limits still apply). *)

val kernel : Device.t -> Hidet_ir.Kernel.t -> estimate
(** Estimate one kernel launch. *)

(** {1 Fidelity modes}

    [`Analytic] is the model above (the paper's mode, and the default).
    [`Cycle] routes to the cycle-approximate model of the [Hidet_cycle]
    library — per-warp coalescing, shared-memory bank conflicts, an L1/L2
    cache simulation and a latency-hiding warp scheduler — which registers
    itself via {!register_cycle_model} at link time. When no cycle model is
    registered, [`Cycle] degrades to the analytic estimate. *)

type fidelity = [ `Analytic | `Cycle ]

val fidelity_of_string : string -> fidelity option
val fidelity_to_string : fidelity -> string

val fidelity_cache_suffix : fidelity -> string
(** Folded into schedule-cache keys so rankings produced under different
    fidelities never alias; empty for [`Analytic], so caches persisted
    before fidelity modes existed remain valid. *)

val set_default_fidelity : fidelity -> unit
(** Process-global default used by {!estimate} when [?fidelity] is omitted
    (e.g. set once from [hidetc --fidelity]). Initially [`Analytic]. *)

val default_fidelity : unit -> fidelity

val register_cycle_model : (Device.t -> Hidet_ir.Kernel.t -> estimate) -> unit
(** Called by [Hidet_cycle.Fidelity] at module initialization. *)

val estimate : ?fidelity:fidelity -> Device.t -> Hidet_ir.Kernel.t -> estimate
(** {!kernel} under [`Analytic] (bit-identical); the registered cycle model
    under [`Cycle]. Default fidelity: {!default_fidelity}. *)

val latency_exn : Device.t -> Hidet_ir.Kernel.t -> float
(** Latency in seconds; raises [Failure] if the kernel is infeasible. *)

val pp : Format.formatter -> estimate -> unit
