(** Structural resource extraction from kernels.

    Walks the statement tree once, multiplying by (constant) loop extents, to
    count per-thread memory traffic and arithmetic. Loads and stores under
    predication are counted fully: on real hardware a warp issues the
    instruction for all lanes of a partial tile, which is exactly the
    partial-tile waste the hardware-centric schedule space pays for.

    Index arithmetic is free (it overlaps with memory latency); only
    operations in value position count as FLOPs. *)

type counts = {
  global_load_bytes : float;  (** per thread *)
  global_store_bytes : float;  (** per thread *)
  global_ld_transactions : float;
      (** per thread, weighted by coalescing factor: 1.0 = fully coalesced *)
  shared_bytes : float;  (** per thread *)
  flops : float;  (** scalar CUDA-core FLOPs per thread *)
  mma_flops : float;  (** tensor-core FLOPs per warp *)
  syncs : float;  (** per block *)
}

val zero : counts
val kernel : Hidet_ir.Kernel.t -> counts

val coalescing_stride : Hidet_ir.Expr.t -> int
(** Estimated |d(index)/d(threadIdx.x)| of the innermost index expression
    (evaluated numerically with other variables at zero): 1 means consecutive
    threads touch consecutive elements. *)

val effective_factor : int -> float
(** Memory-traffic multiplier for a given stride: 1.0 when coalesced, up to
    8.0 for badly strided access (cache lines partially wasted). *)

val block_reuse : window:int -> Hidet_ir.Kernel.t -> float
(** L2-locality factor in [1, window]: how many times each unit of DRAM
    traffic is shared across a window of [window] consecutively launched
    blocks. Monotone non-decreasing in [window]: the factor is the best
    ratio over any prefix window (a cache covering [window] blocks can
    always restrict itself to fewer). Every global load site is probed per block id (thread 0, loop
    indices 0); the flattened index identifies the operand panel the block
    streams, and a panel touched by several blocks of the window is only
    fetched from DRAM once. Sites whose index cannot be evaluated count as
    distinct per block (conservative). This term is what distinguishes a
    swizzled block-launch order from a row-major one: same per-block bytes,
    smaller union working set per window. *)
