type t = {
  name : string;
  num_sms : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  shared_mem_per_sm : int;
  shared_mem_per_block : int;
  registers_per_sm : int;
  max_registers_per_thread : int;
  warp_size : int;
  mem_bandwidth : float;
  fp32_tflops : float;
  tensor_tflops : float;
  shared_bandwidth_per_sm : float;
  kernel_launch_overhead : float;
  sync_latency : float;
  saturation_threads_per_sm : int;
  l2_reuse_window : int;
  sm_clock_hz : float;
  cache_line_bytes : int;
  l1_size : int;
  l1_ways : int;
  l2_size : int;
  l2_ways : int;
  l1_latency_cycles : int;
  l2_latency_cycles : int;
  dram_latency_cycles : int;
  smem_latency_cycles : int;
}

let rtx3090 =
  {
    name = "rtx3090";
    num_sms = 82;
    max_threads_per_sm = 1536;
    max_blocks_per_sm = 16;
    shared_mem_per_sm = 100 * 1024;
    shared_mem_per_block = 99 * 1024;
    registers_per_sm = 65536;
    max_registers_per_thread = 255;
    warp_size = 32;
    mem_bandwidth = 936.0e9;
    fp32_tflops = 35.6;
    tensor_tflops = 71.0;
    (* 128 bytes/cycle/SM at ~1.7 GHz. *)
    shared_bandwidth_per_sm = 128.0 *. 1.7e9;
    kernel_launch_overhead = 4.0e-6;
    sync_latency = 30.0e-9;
    saturation_threads_per_sm = 512;
    (* 6 MB L2: roughly 8 concurrently resident blocks' operand panels
       coexist before eviction. *)
    l2_reuse_window = 8;
    (* Cycle-fidelity parameters (GA102): unified 128 KB L1/shared per SM,
       6 MB L2, 128-byte lines. Latencies are the usual microbenchmark
       ballpark figures for Ampere. *)
    sm_clock_hz = 1.70e9;
    cache_line_bytes = 128;
    l1_size = 128 * 1024;
    l1_ways = 4;
    l2_size = 6 * 1024 * 1024;
    l2_ways = 16;
    l1_latency_cycles = 30;
    l2_latency_cycles = 200;
    dram_latency_cycles = 400;
    smem_latency_cycles = 25;
  }

let a100 =
  {
    name = "a100";
    num_sms = 108;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    shared_mem_per_sm = 164 * 1024;
    shared_mem_per_block = 163 * 1024;
    registers_per_sm = 65536;
    max_registers_per_thread = 255;
    warp_size = 32;
    mem_bandwidth = 1555.0e9;
    fp32_tflops = 19.5;
    tensor_tflops = 156.0;
    shared_bandwidth_per_sm = 128.0 *. 1.41e9;
    kernel_launch_overhead = 4.0e-6;
    sync_latency = 30.0e-9;
    saturation_threads_per_sm = 512;
    (* 40 MB L2 keeps a wider neighborhood of blocks' panels resident. *)
    l2_reuse_window = 16;
    sm_clock_hz = 1.41e9;
    cache_line_bytes = 128;
    l1_size = 192 * 1024;
    l1_ways = 4;
    l2_size = 40 * 1024 * 1024;
    l2_ways = 16;
    l1_latency_cycles = 30;
    l2_latency_cycles = 200;
    dram_latency_cycles = 400;
    smem_latency_cycles = 25;
  }

let fp32_flops d = d.fp32_tflops *. 1e12
let tensor_flops d = d.tensor_tflops *. 1e12

let pp fmt d =
  Format.fprintf fmt "%s: %d SMs, %.0f GB/s, %.1f/%.1f TFLOPS (fp32/tensor)"
    d.name d.num_sms (d.mem_bandwidth /. 1e9) d.fp32_tflops d.tensor_tflops
