open Hidet_ir

type estimate = {
  latency : float;
  mem_time : float;
  compute_time : float;
  waves : int;
  blocks_per_sm : int;
  occupancy : float;
  pipelined : bool;
  feasible : bool;
  note : string;
}

let infeasible note =
  {
    latency = infinity;
    mem_time = infinity;
    compute_time = infinity;
    waves = 0;
    blocks_per_sm = 0;
    occupancy = 0.;
    pipelined = false;
    feasible = false;
    note;
  }

let ceil_div a b = (a + b - 1) / b

let blocks_per_sm_limit (d : Device.t) ~block_dim ~smem ~regs =
  if block_dim > 1024 then Error "block_dim exceeds 1024"
  else if smem > d.shared_mem_per_block then
    Error (Printf.sprintf "shared memory %d B exceeds per-block cap %d B" smem d.shared_mem_per_block)
  else if regs > d.max_registers_per_thread then
    Error (Printf.sprintf "%d registers/thread exceeds cap %d" regs d.max_registers_per_thread)
  else begin
    let by_threads = d.max_threads_per_sm / block_dim in
    let by_smem = if smem = 0 then d.max_blocks_per_sm else d.shared_mem_per_sm / smem in
    (* A kernel that declares no registers is not register-limited. *)
    let by_regs =
      if regs = 0 then d.max_blocks_per_sm
      else d.registers_per_sm / (regs * block_dim)
    in
    let bps = min (min by_threads by_smem) (min by_regs d.max_blocks_per_sm) in
    if bps <= 0 then Error "zero resident blocks per SM" else Ok bps
  end

let occupancy_limits (d : Device.t) (k : Kernel.t) =
  blocks_per_sm_limit d ~block_dim:k.block_dim ~smem:(Kernel.shared_bytes k)
    ~regs:(Kernel.regs_per_thread k)

let kernel (d : Device.t) (k : Kernel.t) =
  match occupancy_limits d k with
  | Error note -> infeasible note
  | Ok blocks_per_sm ->
    let c = Traffic.kernel k in
    let stages = Pipeline.effective_stages k in
    let pipelined = stages >= 2 in
    let warps_per_block = Kernel.num_warps_per_block k in
    let concurrent = d.num_sms * blocks_per_sm in
    let active_blocks = min k.grid_dim concurrent in
    let waves = ceil_div k.grid_dim concurrent in
    let blocks_on_sm = ceil_div active_blocks d.num_sms in
    let resident_threads = float_of_int (k.block_dim * blocks_on_sm) in
    let occupancy =
      Float.min 1.
        (float_of_int (k.block_dim * blocks_per_sm)
        /. float_of_int d.max_threads_per_sm)
    in
    (* Per-block memory traffic: weight raw bytes by the transaction factor
       so strided access pays for wasted cache-line sectors. *)
    let ld_eff =
      if c.global_load_bytes > 0. then
        c.global_ld_transactions *. 4. /. c.global_load_bytes
      else 1.
    in
    (* L2 locality: load traffic shared by a window of consecutively
       launched blocks (bounded by what is actually co-resident) is fetched
       from DRAM once, not once per block. Swizzled launch orders shrink
       the window's union working set and show up here. *)
    let l2_reuse =
      if c.global_load_bytes > 0. then
        Traffic.block_reuse ~window:(min d.l2_reuse_window active_blocks) k
      else 1.
    in
    let bytes_block =
      ((c.global_load_bytes *. Float.max 1. ld_eff /. l2_reuse)
      +. c.global_store_bytes)
      *. float_of_int k.block_dim
    in
    (* Bandwidth share per block, capped by what one SM's LSUs can pull and
       degraded when too few threads are resident to hide DRAM latency. *)
    (* Sublinear saturation: latency hiding degrades gracefully below the
       saturation point rather than proportionally. *)
    let sat_curve x = Float.min 1. (Float.pow x 0.6) in
    let mem_saturation =
      sat_curve (resident_threads /. (0.75 *. float_of_int d.saturation_threads_per_sm))
    in
    let bw_per_block =
      Float.min
        (d.mem_bandwidth /. float_of_int active_blocks)
        (1.5 *. d.mem_bandwidth /. float_of_int d.num_sms)
      *. mem_saturation
    in
    let mem_time = bytes_block /. bw_per_block in
    (* Compute: peak per SM shared among co-resident blocks, degraded when
       the SM has too few threads to saturate issue ports. *)
    let comp_saturation =
      sat_curve (resident_threads /. float_of_int d.saturation_threads_per_sm)
    in
    let cuda_per_block =
      Device.fp32_flops d /. float_of_int d.num_sms
      /. float_of_int blocks_on_sm *. comp_saturation
    in
    let tensor_saturation =
      Float.min 1. (float_of_int (warps_per_block * blocks_on_sm) /. 8.)
    in
    let tensor_per_block =
      Device.tensor_flops d /. float_of_int d.num_sms
      /. float_of_int blocks_on_sm *. tensor_saturation
    in
    let shared_per_block =
      d.shared_bandwidth_per_sm /. float_of_int blocks_on_sm
    in
    let flops_block = c.flops *. float_of_int k.block_dim in
    let mma_block = c.mma_flops *. float_of_int warps_per_block in
    let shared_block = c.shared_bytes *. float_of_int k.block_dim in
    let compute_time =
      (flops_block /. cuda_per_block)
      +. (mma_block /. Float.max tensor_per_block 1.)
      +. (shared_block /. shared_per_block)
    in
    let sync_time = c.syncs *. d.sync_latency in
    (* Pipelined kernels overlap memory and compute; the barrier at each
       stage boundary still exposes a residue of the shorter phase, smaller
       for deeper pipelines: double buffering still stalls on every other
       tile's latency, 3 stages hide most of it, 4 stages nearly all (at
       the price of the extra shared-memory stage, which the occupancy
       limits above already charge). *)
    let block_time =
      if pipelined then
        let residue =
          if stages >= 4 then 0.02 else if stages >= 3 then 0.05 else 0.15
        in
        Float.max mem_time compute_time
        +. (residue *. Float.min mem_time compute_time)
        +. sync_time
      else mem_time +. compute_time +. sync_time
    in
    let latency =
      d.kernel_launch_overhead +. (float_of_int waves *. block_time)
    in
    (* The binding bottleneck, nsight-style: launch overhead dominating the
       whole run, else the larger of the two per-wave components. *)
    let note =
      if d.kernel_launch_overhead >= float_of_int waves *. block_time then
        "launch-bound"
      else if mem_time >= compute_time then "memory-bound"
      else "compute-bound"
    in
    {
      latency;
      mem_time;
      compute_time;
      waves;
      blocks_per_sm;
      occupancy;
      pipelined;
      feasible = true;
      note;
    }

(* --- fidelity dispatch ------------------------------------------------------

   The analytic model above is the paper's mode and stays the default; the
   cycle-approximate model lives in [Hidet_cycle] (which depends on this
   library) and registers itself here at link time. With no model registered
   [`Cycle] degrades to the analytic estimate, so nothing in this library's
   behavior depends on whether the cycle library is linked. *)

type fidelity = [ `Analytic | `Cycle ]

let fidelity_of_string = function
  | "analytic" -> Some `Analytic
  | "cycle" -> Some `Cycle
  | _ -> None

let fidelity_to_string = function `Analytic -> "analytic" | `Cycle -> "cycle"

(* Empty for the analytic default so schedule-cache keys persisted before
   fidelity modes existed stay valid (same contract as Search.cache_suffix). *)
let fidelity_cache_suffix = function `Analytic -> "" | `Cycle -> "#cycle"

let default_fidelity_ref : fidelity Atomic.t = Atomic.make `Analytic
let set_default_fidelity f = Atomic.set default_fidelity_ref f
let default_fidelity () = Atomic.get default_fidelity_ref

let cycle_model : (Device.t -> Kernel.t -> estimate) option Atomic.t =
  Atomic.make None

let register_cycle_model f = Atomic.set cycle_model (Some f)

let estimate ?fidelity d k =
  let fidelity =
    match fidelity with Some f -> f | None -> default_fidelity ()
  in
  match fidelity with
  | `Analytic -> kernel d k
  | `Cycle -> (
    match Atomic.get cycle_model with
    | Some f -> f d k
    | None -> kernel d k)

let latency_exn d k =
  let e = kernel d k in
  if not e.feasible then
    failwith (Printf.sprintf "kernel %s infeasible: %s" k.name e.note)
  else e.latency

let pp fmt e =
  if not e.feasible then Format.fprintf fmt "infeasible (%s)" e.note
  else
    Format.fprintf fmt
      "%.1f us (mem %.1f us, compute %.1f us, %d waves, %d blocks/SM, occ \
       %.0f%%%s%s)"
      (e.latency *. 1e6) (e.mem_time *. 1e6) (e.compute_time *. 1e6) e.waves
      e.blocks_per_sm (e.occupancy *. 100.)
      (if e.pipelined then ", pipelined" else "")
      (if e.note = "" then "" else ", " ^ e.note)
