(** GPU device models.

    The simulator is parameterized by a device description so experiments can
    be re-run on hypothetical hardware. {!rtx3090} mirrors the paper's
    evaluation platform (NVIDIA GeForce RTX 3090, Ampere GA102). *)

type t = {
  name : string;
  num_sms : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  shared_mem_per_sm : int;  (** bytes *)
  shared_mem_per_block : int;  (** bytes, architectural per-block cap *)
  registers_per_sm : int;  (** 32-bit registers *)
  max_registers_per_thread : int;
  warp_size : int;
  mem_bandwidth : float;  (** bytes / second *)
  fp32_tflops : float;  (** CUDA-core FP32 peak *)
  tensor_tflops : float;  (** tensor-core TF32 peak *)
  shared_bandwidth_per_sm : float;  (** bytes / second per SM *)
  kernel_launch_overhead : float;  (** seconds *)
  sync_latency : float;  (** seconds per __syncthreads per block *)
  saturation_threads_per_sm : int;
      (** resident threads needed to reach peak issue rate *)
  l2_reuse_window : int;
      (** how many consecutively launched blocks share the L2 working set;
          scales with L2 capacity. {!Traffic.block_reuse} measures operand
          overlap across this window, which is what thread-block swizzling
          improves (§3.1's block-index remap). *)
  sm_clock_hz : float;  (** SM clock, converts modeled cycles to seconds *)
  cache_line_bytes : int;  (** L1/L2 line size; coalescing granularity *)
  l1_size : int;  (** unified L1/texture cache per SM, bytes *)
  l1_ways : int;  (** L1 set associativity *)
  l2_size : int;  (** device-wide L2, bytes *)
  l2_ways : int;  (** L2 set associativity *)
  l1_latency_cycles : int;  (** load-to-use latency on an L1 hit *)
  l2_latency_cycles : int;  (** load-to-use latency on an L2 hit *)
  dram_latency_cycles : int;  (** load-to-use latency on an L2 miss *)
  smem_latency_cycles : int;  (** shared-memory load-to-use latency *)
}

val rtx3090 : t
(** The paper's evaluation GPU (Ampere GA102). *)

val a100 : t
(** Datacenter Ampere (GA100): more SMs and bandwidth, lower FP32 clock
    throughput, far higher tensor throughput. Used by the device-sweep
    ablation to show the hardware-centric space retargeting. *)

val fp32_flops : t -> float
(** Peak CUDA-core throughput in FLOP/s. *)

val tensor_flops : t -> float
val pp : Format.formatter -> t -> unit
