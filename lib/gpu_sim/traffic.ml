open Hidet_ir

type counts = {
  global_load_bytes : float;
  global_store_bytes : float;
  global_ld_transactions : float;
  shared_bytes : float;
  flops : float;
  mma_flops : float;
  syncs : float;
}

let zero =
  {
    global_load_bytes = 0.;
    global_store_bytes = 0.;
    global_ld_transactions = 0.;
    shared_bytes = 0.;
    flops = 0.;
    mma_flops = 0.;
    syncs = 0.;
  }

let add a b =
  {
    global_load_bytes = a.global_load_bytes +. b.global_load_bytes;
    global_store_bytes = a.global_store_bytes +. b.global_store_bytes;
    global_ld_transactions = a.global_ld_transactions +. b.global_ld_transactions;
    shared_bytes = a.shared_bytes +. b.shared_bytes;
    flops = a.flops +. b.flops;
    mma_flops = a.mma_flops +. b.mma_flops;
    syncs = a.syncs +. b.syncs;
  }

let scale s a =
  {
    global_load_bytes = s *. a.global_load_bytes;
    global_store_bytes = s *. a.global_store_bytes;
    global_ld_transactions = s *. a.global_ld_transactions;
    shared_bytes = s *. a.shared_bytes;
    flops = s *. a.flops;
    mma_flops = s *. a.mma_flops;
    syncs = s *. a.syncs;
  }

(* Numeric probe environment: [Let]-bound variables evaluate through
   [bindings]; other free variables and loads read as zero so index
   expressions can still be evaluated to estimate strides and extents. *)
let probe_env ?(bindings = fun _ -> None) ?(block = 0) tid =
  {
    Expr.lookup =
      (fun v ->
        match bindings v with Some value -> value | None -> Expr.V_int 0);
    load = (fun _ _ -> Expr.V_float 0.);
    thread_idx = tid;
    block_idx = block;
  }

let flatten_index (b : Hidet_ir.Buffer.t) indices =
  List.fold_left2
    (fun acc idx dim -> Expr.add (Expr.mul acc (Expr.int dim)) idx)
    (Expr.int 0) indices b.Buffer.dims

let coalescing_stride e =
  try
    let v0 = Expr.eval_int (probe_env 0) e in
    let v1 = Expr.eval_int (probe_env 1) e in
    abs (v1 - v0)
  with _ -> 1

let effective_factor stride =
  if stride = 0 then 0.25 (* broadcast: one transaction serves the warp *)
  else if stride = 1 then 1.0
  else Float.min 8.0 (float_of_int stride)

(* Count loads appearing anywhere in an expression, and FLOPs appearing in
   value position. [in_value] is false inside index computations. *)
let rec expr_counts ~in_value (e : Expr.t) : counts =
  match e with
  | Int _ | Float _ | Bool _ | Var _ | Thread_idx | Block_idx -> zero
  | Binop (op, a, b) ->
    let c = add (expr_counts ~in_value a) (expr_counts ~in_value b) in
    let is_arith =
      match op with
      | Add | Sub | Mul | Div | Mod | Min | Max -> true
      | Lt | Le | Gt | Ge | Eq | Ne | And | Or -> false
    in
    if in_value && is_arith then { c with flops = c.flops +. 1. } else c
  | Unop (op, a) ->
    let c = expr_counts ~in_value a in
    let cost =
      match op with
      | Neg | Not | Abs -> 1.
      | Exp | Log | Sqrt | Tanh | Erf -> 4. (* SFU-class instruction *)
    in
    if in_value then { c with flops = c.flops +. cost } else c
  | Select (cond, a, b) ->
    add
      (expr_counts ~in_value:false cond)
      (add (expr_counts ~in_value a) (expr_counts ~in_value b))
  | Load (buf, indices) ->
    let c =
      List.fold_left
        (fun acc i -> add acc (expr_counts ~in_value:false i))
        zero indices
    in
    let bytes = float_of_int (Dtype.size_bytes buf.Buffer.elt) in
    (match buf.Buffer.scope with
    | Buffer.Global ->
      let stride = coalescing_stride (flatten_index buf indices) in
      {
        c with
        global_load_bytes = c.global_load_bytes +. bytes;
        global_ld_transactions =
          c.global_ld_transactions +. effective_factor stride;
      }
    | Buffer.Shared | Buffer.Warp ->
      { c with shared_bytes = c.shared_bytes +. bytes }
    | Buffer.Register -> c)

let rec stmt_counts env (s : Stmt.t) : counts =
  let bindings v = Hashtbl.find_opt env v.Var.id in
  match s with
  | Seq ss -> List.fold_left (fun acc x -> add acc (stmt_counts env x)) zero ss
  | For { var; extent; body; _ } ->
    let n =
      match Expr.const_int extent with
      | Some n -> float_of_int (max n 0)
      | None -> (
        (* Variable extents (e.g. split-k trip counts) evaluate through the
           Let bindings collected so far, with block 0 as the probe. *)
        try float_of_int (max (Expr.eval_int (probe_env ~bindings 0) extent) 1)
        with _ -> 1.)
    in
    (* A loop index averages n/2 over the iterations; probe with 0. *)
    Hashtbl.replace env var.Var.id (Expr.V_int 0);
    let c = add (expr_counts ~in_value:false extent) (scale n (stmt_counts env body)) in
    Hashtbl.remove env var.Var.id;
    c
  | If { cond; then_; else_ } ->
    (* Divergent warps execute both paths serially: count both. *)
    let c = expr_counts ~in_value:false cond in
    let c = add c (stmt_counts env then_) in
    (match else_ with Some e -> add c (stmt_counts env e) | None -> c)
  | Let { var; value; body } ->
    let in_value = Dtype.is_float var.Var.dtype in
    (try Hashtbl.replace env var.Var.id (Expr.eval (probe_env ~bindings 0) value)
     with _ -> ());
    let c = add (expr_counts ~in_value value) (stmt_counts env body) in
    Hashtbl.remove env var.Var.id;
    c
  | Store { buf; indices; value } ->
    let c =
      List.fold_left
        (fun acc i -> add acc (expr_counts ~in_value:false i))
        (expr_counts ~in_value:true value)
        indices
    in
    let bytes = float_of_int (Dtype.size_bytes buf.Buffer.elt) in
    (match buf.Buffer.scope with
    | Buffer.Global -> { c with global_store_bytes = c.global_store_bytes +. bytes }
    | Buffer.Shared | Buffer.Warp -> { c with shared_bytes = c.shared_bytes +. bytes }
    | Buffer.Register -> c)
  | Mma m ->
    let flops = 2. *. float_of_int (m.m * m.n * m.k) in
    (* The warp streams the A and B operand tiles from shared memory; the C
       fragment stays in registers. Fragments are reused across adjacent MMA
       tiles (ldmatrix amortization), modeled as a 0.5 factor. *)
    let tile_bytes = 4. *. float_of_int ((m.m * m.k) + (m.k * m.n)) *. 0.5 in
    { zero with mma_flops = flops; shared_bytes = tile_bytes /. 32. }
  | Sync_threads -> { zero with syncs = 1. }
  | Comment _ -> zero

let kernel (k : Kernel.t) = stmt_counts (Hashtbl.create 16) k.body

(* --- L2 block-reuse analysis -----------------------------------------------

   How much of the global-load traffic of a window of consecutively
   launched blocks is shared? Each global load site is probed once per
   block id in the window (thread 0, loop indices at 0): the flattened
   index it touches identifies the operand panel the block streams. A
   site whose probe value repeats across the window (e.g. the A tile of
   blocks in the same block-row) is served by L2 after the first block;
   a site with [d] distinct values across a window of [w] blocks costs
   [d/w] of its naive DRAM traffic.

   This is what makes thread-block swizzle visible to the latency model:
   under row-major launch order a window of 8 blocks spans 1 A-panel and
   8 B-panels, while the panelized swizzle (4 block-rows per column)
   spans 4 A-panels and 2 B-panels — less union traffic for the same
   per-block byte count. *)

let block_reuse ~window (k : Kernel.t) =
  let w = max 1 (min window k.Kernel.grid_dim) in
  if w = 1 then 1.
  else begin
    (* site id -> distinct probe values seen across the window *)
    let distinct : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
    (* site id -> loop-scaled bytes per thread (identical on every pass) *)
    let weights : (int, float) Hashtbl.t = Hashtbl.create 8 in
    let unknown = ref 0 in
    let best = ref 1. in
    for b = 0 to w - 1 do
      let env = Hashtbl.create 16 in
      let bindings v = Hashtbl.find_opt env v.Var.id in
      let penv = probe_env ~bindings ~block:b 0 in
      (* Sites are numbered in traversal order, which is the same on every
         pass: the walk never branches on probe values. *)
      let site = ref 0 in
      let record buf indices scale =
        let id = !site in
        incr site;
        if not (Hashtbl.mem weights id) then
          Hashtbl.add weights id
            (float_of_int (Dtype.size_bytes buf.Buffer.elt) *. scale);
        let value =
          match Expr.eval_int penv (flatten_index buf indices) with
          | v -> v
          | exception _ ->
            (* Unevaluable index: treat as distinct per block (no reuse). *)
            incr unknown;
            - !unknown
        in
        let tbl =
          match Hashtbl.find_opt distinct id with
          | Some t -> t
          | None ->
            let t = Hashtbl.create 4 in
            Hashtbl.add distinct id t;
            t
        in
        Hashtbl.replace tbl value ()
      in
      let rec expr scale (e : Expr.t) =
        match e with
        | Int _ | Float _ | Bool _ | Var _ | Thread_idx | Block_idx -> ()
        | Binop (_, a, b') ->
          expr scale a;
          expr scale b'
        | Unop (_, a) -> expr scale a
        | Select (c, a, b') ->
          expr scale c;
          expr scale a;
          expr scale b'
        | Load (buf, indices) ->
          List.iter (expr scale) indices;
          if buf.Buffer.scope = Buffer.Global then record buf indices scale
      in
      let rec stmt scale (s : Stmt.t) =
        match s with
        | Seq ss -> List.iter (stmt scale) ss
        | For { var; extent; body; _ } ->
          let n =
            match Expr.const_int extent with
            | Some n -> float_of_int (max n 0)
            | None -> (
              try float_of_int (max (Expr.eval_int penv extent) 1)
              with _ -> 1.)
          in
          expr scale extent;
          Hashtbl.replace env var.Var.id (Expr.V_int 0);
          stmt (scale *. n) body;
          Hashtbl.remove env var.Var.id
        | If { cond; then_; else_ } ->
          expr scale cond;
          stmt scale then_;
          (match else_ with Some e -> stmt scale e | None -> ())
        | Let { var; value; body } ->
          (try Hashtbl.replace env var.Var.id (Expr.eval penv value)
           with _ -> ());
          expr scale value;
          stmt scale body;
          Hashtbl.remove env var.Var.id
        | Store { indices; value; _ } ->
          List.iter (expr scale) indices;
          expr scale value
        | Mma _ | Sync_threads | Comment _ -> ()
      in
      stmt 1. k.Kernel.body;
      (* A cache covering [w] blocks can always restrict itself to a
         smaller window, so the achievable reuse is the best ratio over any
         prefix window [b + 1 <= w] — which also makes the factor monotone
         non-decreasing in [window] (the raw ratio can dip when one more
         block opens a fresh operand panel, e.g. a new tile row). *)
      let w' = float_of_int (b + 1) in
      let naive = Hashtbl.fold (fun _ wt acc -> acc +. wt) weights 0. in
      let union =
        Hashtbl.fold
          (fun id tbl acc ->
            let wt = Option.value (Hashtbl.find_opt weights id) ~default:0. in
            acc +. (wt *. float_of_int (Hashtbl.length tbl) /. w'))
          distinct 0.
      in
      if naive > 0. && union > 0. then
        best := Float.max !best (Float.min w' (naive /. union))
    done;
    !best
  end
