module Expr = Hidet_ir.Expr

type entry = int -> int -> float array array -> int

let table : (string, entry) Hashtbl.t = Hashtbl.create 16
let lock = Mutex.create ()

let register name fn =
  Mutex.lock lock;
  Hashtbl.replace table name fn;
  Mutex.unlock lock

let take name =
  Mutex.lock lock;
  let r = Hashtbl.find_opt table name in
  Hashtbl.remove table name;
  Mutex.unlock lock;
  r

let sync () = Effect.perform Interp.Sync
let warp_size = Interp.warp_size
let invalid_access msg = raise (Interp.Invalid_access msg)

let oob i d name =
  invalid_access
    (Printf.sprintf "Buffer.flat_index: index %d out of bound %d on %s" i d
       name)

let rank_mismatch name =
  invalid_access (Printf.sprintf "Buffer.flat_index: rank mismatch on %s" name)

let not_allocated name scope =
  invalid_access (Printf.sprintf "buffer %s (%s) not allocated" name scope)

let unbound_var name =
  invalid_access (Printf.sprintf "unbound variable %s" name)

let mma_rank name =
  invalid_access (Printf.sprintf "mma operand of rank < 2 on %s" name)

let neg_bool () = invalid_arg "Expr.eval: neg of bool"
let abs_bool () = invalid_arg "Expr.eval: abs of bool"
let bool_binop () = invalid_arg "Expr.eval: bool operand to arithmetic binop"
let erf = Expr.erf

type value = Hidet_ir.Expr.value =
  | V_int of int
  | V_float of float
  | V_bool of bool

let int_of_value = Expr.int_of_value
let float_of_value = Expr.float_of_value
let bool_of_value = Expr.bool_of_value

let dyn_neg = function
  | V_int n -> V_int (-n)
  | V_float x -> V_float (-.x)
  | V_bool _ -> neg_bool ()

let dyn_abs = function
  | V_int n -> V_int (Stdlib.abs n)
  | V_float x -> V_float (Float.abs x)
  | V_bool _ -> abs_bool ()

(* Must stay in sync with [Exec_ocaml.binop_code]. [And]/[Or] short-circuit
   in generated code and are never encoded. *)
let binop_of_code =
  [|
    Expr.Add;
    Expr.Sub;
    Expr.Mul;
    Expr.Div;
    Expr.Mod;
    Expr.Min;
    Expr.Max;
    Expr.Lt;
    Expr.Le;
    Expr.Gt;
    Expr.Ge;
    Expr.Eq;
    Expr.Ne;
  |]

let dyn_binop code va vb =
  let op = binop_of_code.(code) in
  match (va, vb) with
  | V_int x, V_int y -> Expr.eval_int_binop op x y
  | (V_float _ | V_int _), (V_float _ | V_int _) ->
    Expr.eval_float_binop op (Expr.float_of_value va)
      (Expr.float_of_value vb)
  | _ -> bool_binop ()
