open Hidet_ir

exception Barrier_divergence of string
exception Invalid_access of string

type _ Effect.t += Sync : unit Effect.t

let warp_size = 32

module Int_map = Map.Make (Int)

(* Storage for one buffer: a flat float array (all dtypes are stored as
   floats; integer tensors do not occur in the generated kernels). *)
type store = (int, float array) Hashtbl.t

let alloc_into (tbl : store) (bufs : Hidet_ir.Buffer.t list) =
  List.iter
    (fun (b : Hidet_ir.Buffer.t) ->
      Hashtbl.replace tbl b.Buffer.id (Array.make (Buffer.num_elems b) 0.))
    bufs

let flat (b : Hidet_ir.Buffer.t) (idx : int list) =
  try Buffer.flat_index b idx
  with Invalid_argument msg -> raise (Invalid_access msg)

(* Execution context of one thread. [vars] is the current lexical
   environment; statements save and restore it around scoped bindings so a
   single [Expr.env] record (allocated once per thread) can close over the
   context instead of being rebuilt per statement. *)
type thread_ctx = {
  tid : int;
  bid : int;
  globals : store;
  shared : store;  (** per block *)
  warps : store array;  (** per warp of the block *)
  regs : store;  (** per thread *)
  mutable vars : Expr.value Int_map.t;
}

let locate ctx (b : Hidet_ir.Buffer.t) : float array =
  let tbl =
    match b.Buffer.scope with
    | Buffer.Global -> ctx.globals
    | Buffer.Shared -> ctx.shared
    | Buffer.Warp -> ctx.warps.(ctx.tid / warp_size)
    | Buffer.Register -> ctx.regs
  in
  match Hashtbl.find_opt tbl b.Buffer.id with
  | Some arr -> arr
  | None ->
    raise
      (Invalid_access
         (Printf.sprintf "buffer %s (%s) not allocated" b.Buffer.name
            (Buffer.scope_name b.Buffer.scope)))

let load_value ctx b idx = Expr.V_float (locate ctx b).(flat b idx)

let env_of ctx : Expr.env =
  {
    Expr.lookup =
      (fun v ->
        match Int_map.find_opt v.Var.id ctx.vars with
        | Some value -> value
        | None ->
          raise (Invalid_access (Printf.sprintf "unbound variable %s" (Var.name v))));
    load = (fun b idx -> load_value ctx b idx);
    thread_idx = ctx.tid;
    block_idx = ctx.bid;
  }

let exec_mma ctx env (m : Stmt.mma) =
  (* Executed cooperatively by the warp; simulated once, by lane 0. *)
  if ctx.tid mod warp_size = 0 then begin
    let off l = List.map (Expr.eval_int env) l in
    let a_off = off m.a_off and b_off = off m.b_off and c_off = off m.c_off in
    let a = locate ctx m.a and b = locate ctx m.b and c = locate ctx m.c in
    let tile_index (buf : Hidet_ir.Buffer.t) base i j =
      (* base locates the tile origin; i, j offset the two trailing dims. *)
      let n = List.length base in
      let adjusted =
        List.mapi
          (fun p x -> if p = n - 2 then x + i else if p = n - 1 then x + j else x)
          base
      in
      flat buf adjusted
    in
    for i = 0 to m.m - 1 do
      for j = 0 to m.n - 1 do
        let acc = ref c.(tile_index m.c c_off i j) in
        for k = 0 to m.k - 1 do
          acc :=
            !acc
            +. (a.(tile_index m.a a_off i k) *. b.(tile_index m.b b_off k j))
        done;
        c.(tile_index m.c c_off i j) <- !acc
      done
    done
  end

let rec exec_stmt ctx env (s : Stmt.t) : unit =
  match s with
  | Stmt.Seq ss -> List.iter (exec_stmt ctx env) ss
  | For { var; extent; body; _ } ->
    let n = Expr.eval_int env extent in
    let saved = ctx.vars in
    for i = 0 to n - 1 do
      ctx.vars <- Int_map.add var.Var.id (Expr.V_int i) saved;
      exec_stmt ctx env body
    done;
    ctx.vars <- saved
  | If { cond; then_; else_ } ->
    if Expr.eval_bool env cond then exec_stmt ctx env then_
    else Option.iter (exec_stmt ctx env) else_
  | Let { var; value; body } ->
    let v = Expr.eval env value in
    let saved = ctx.vars in
    ctx.vars <- Int_map.add var.Var.id v saved;
    exec_stmt ctx env body;
    ctx.vars <- saved
  | Store { buf; indices; value } ->
    let idx = List.map (Expr.eval_int env) indices in
    let v = Expr.eval_float env value in
    (locate ctx buf).(flat buf idx) <- v
  | Mma m -> exec_mma ctx env m
  | Sync_threads -> Effect.perform Sync
  | Comment _ -> ()

type status = Finished | Blocked of (unit, status) Effect.Deep.continuation

(* Barrier loop: advance all blocked threads phase by phase. Shared with
   [Compile_exec] so barrier-divergence semantics (and the error message)
   cannot drift between the two backends. *)
let barrier_loop ~kernel_name ~bid statuses =
  let rec phases statuses =
    let blocked =
      Array.exists (function Blocked _ -> true | Finished -> false) statuses
    in
    if blocked then begin
      let finished =
        Array.exists (function Finished -> true | Blocked _ -> false) statuses
      in
      if finished then
        raise
          (Barrier_divergence
             (Printf.sprintf
                "kernel %s, block %d: some threads exited while others wait at \
                 a barrier"
                kernel_name bid));
      phases
        (Array.map
           (function
             | Blocked cont -> Effect.Deep.continue cont ()
             | Finished -> Finished)
           statuses)
    end
  in
  phases statuses

let start_thread body : status =
  Effect.Deep.match_with body ()
    {
      retc = (fun () -> Finished);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sync ->
            Some
              (fun (k : (a, status) Effect.Deep.continuation) -> Blocked k)
          | _ -> None);
    }

let run_block (k : Kernel.t) globals bid =
  let shared : store = Hashtbl.create 4 in
  alloc_into shared k.shared;
  let num_warps = (k.block_dim + warp_size - 1) / warp_size in
  let warps =
    Array.init num_warps (fun _ ->
        let tbl : store = Hashtbl.create 4 in
        alloc_into tbl k.warp_bufs;
        tbl)
  in
  let make_ctx tid =
    let regs : store = Hashtbl.create 4 in
    alloc_into regs k.regs;
    { tid; bid; globals; shared; warps; regs; vars = Int_map.empty }
  in
  let statuses =
    Array.init k.block_dim (fun tid ->
        start_thread (fun () ->
            let ctx = make_ctx tid in
            exec_stmt ctx (env_of ctx) k.body))
  in
  barrier_loop ~kernel_name:k.name ~bid statuses

(* Binding validation shared with [Compile_exec]; the messages keep the
   historical "Interp.run" prefix so both backends fail identically. *)
let check_bindings (k : Kernel.t) bindings =
  List.iter
    (fun ((b : Hidet_ir.Buffer.t), arr) ->
      if Array.length arr <> Buffer.num_elems b then
        invalid_arg
          (Printf.sprintf "Interp.run: binding for %s has %d elements, expected %d"
             b.Buffer.name (Array.length arr) (Buffer.num_elems b)))
    bindings;
  List.iter
    (fun (b : Hidet_ir.Buffer.t) ->
      if not (List.exists (fun (p, _) -> Buffer.equal p b) bindings) then
        invalid_arg
          (Printf.sprintf "Interp.run: missing binding for parameter %s"
             b.Buffer.name))
    k.params

let run (k : Kernel.t) bindings =
  Verify.kernel_exn k;
  check_bindings k bindings;
  let globals : store = Hashtbl.create 8 in
  List.iter
    (fun ((b : Hidet_ir.Buffer.t), arr) -> Hashtbl.replace globals b.Buffer.id arr)
    bindings;
  for bid = 0 to k.grid_dim - 1 do
    run_block k globals bid
  done

let run_alloc k ~inputs ~outputs =
  let out_arrays =
    List.map (fun b -> Array.make (Buffer.num_elems b) 0.) outputs
  in
  run k (inputs @ List.combine outputs out_arrays);
  out_arrays
