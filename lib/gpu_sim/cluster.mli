(** An N-device cluster: a set of simulated devices joined by a symmetric
    interconnect, plus NCCL-ring-style cost formulas for the collectives
    the shard runtime issues (all-reduce, all-gather, point-to-point).

    The cost model is the standard latency–bandwidth (alpha–beta) form: a
    ring collective over [n] devices moves its payload in [n - 1] (or
    [2(n - 1)] for all-reduce) chunked steps, each paying the link latency
    once and streaming [bytes / n] through the per-direction link
    bandwidth. Single-device clusters pay nothing for any collective. *)

type link = {
  latency : float;  (** per-message hop latency, seconds *)
  bandwidth : float;  (** per-direction link bandwidth, bytes/second *)
}

type t = {
  name : string;
  devices : Device.t array;
  link : link;
}

val nvlink : link
(** NVLink-class interconnect: 1.5 us hop latency, 300 GB/s/direction. *)

val pcie : link
(** PCIe-class fallback: 5 us hop latency, 16 GB/s/direction. *)

val homogeneous : ?name:string -> ?link:link -> n:int -> Device.t -> t
(** [n] identical devices behind the same link. Raises [Invalid_argument]
    when [n < 1]. *)

val of_devices : ?name:string -> ?link:link -> Device.t list -> t
(** A (possibly heterogeneous) cluster from an explicit device list.
    Raises [Invalid_argument] on an empty list. *)

val size : t -> int
val device : t -> int -> Device.t

(** {2 Collective cost model}

    All take the {e total} payload in bytes (the full tensor being
    reduced or gathered, not the per-device shard) and return seconds. *)

val p2p_time : t -> bytes:float -> float
(** One device sends [bytes] to another: [latency + bytes / bandwidth]. *)

val all_reduce_time : t -> bytes:float -> float
(** Ring all-reduce (reduce-scatter + all-gather):
    [2 (n-1) latency + 2 (n-1)/n * bytes / bandwidth]. *)

val all_gather_time : t -> bytes:float -> float
(** Ring all-gather of a [bytes]-sized result sharded [1/n] per device:
    [(n-1) latency + (n-1)/n * bytes / bandwidth]. *)

val pp : Format.formatter -> t -> unit
