(** Structural validation of a kernel's claimed software-pipelining depth.

    A kernel claiming [pipeline_stages >= 2] (double buffering or deeper)
    must actually contain the pattern that lets global loads overlap
    computation — the optimization of the paper's Fig. 5 that loop-oriented
    scheduling cannot express. The check looks for a loop whose body, in
    order, (1) issues global-memory loads, (2) computes (MMA or an
    accumulation reading shared memory), and (3) only then stores the
    prefetched data to shared memory — i.e. the load of tile [k+1] is in
    flight during the computation of tile [k].

    {!Perf_model} only grants overlap credit when this check passes, so a
    scheduler cannot obtain double-buffering speedups by merely setting the
    flag. The pattern is depth-independent: 2-stage double buffering and
    the 3/4-stage circular-buffer pipelines all validate through the same
    prefetch → compute → stage subsequence, and {!Perf_model} scales the
    residual stall with the validated depth. *)

val has_overlap_pattern : Hidet_ir.Stmt.t -> bool
(** True if some loop in the statement exhibits the load → compute →
    shared-store pattern. *)

val effective_stages : Hidet_ir.Kernel.t -> int
(** The claimed [pipeline_stages], downgraded to 1 when the structural
    pattern is absent. *)
