(** Native codegen backend: kernel IR → OCaml source → [ocamlopt -shared]
    → [Dynlink].

    The third execution backend, after the tree-walking interpreter
    ({!Interp}) and the closure compiler ({!Compile_exec}). Each kernel is
    pretty-printed to a self-contained OCaml unit — flat-array loops over
    the thread/block index ranges, buffer dimensions hoisted to let-bound
    ints, the same per-dimension bounds checks the closures perform
    (followed by unsafe accesses they make safe), and statically
    type-specialized int/float/bool bodies with no per-statement dispatch —
    then compiled with [ocamlfind ocamlopt -shared], loaded with
    [Dynlink.loadfile_private], and claimed through {!Exec_registry}.

    Results, statement counts and raised errors are bit-identical to
    {!Compile_exec} (property-tested in [test_exec_ocaml] and cross-checked
    by the fuzzer's [native] path); only the execution model differs.

    Compiled units are memoized per process on the generated source digest,
    optionally prefixed by the schedule-cache workload key ([?key]), so a
    kernel pays ocamlopt + dynlink once and every later launch reuses the
    loaded entry point.

    The backend degrades, never fails, when the toolchain is missing:
    {!available} probes once per process (native [Dynlink], [ocamlfind] on
    [PATH], the dune build tree's [.cmi] directories, and an end-to-end
    smoke compile+load) and callers such as [Compiled.run] fall back to the
    closure backend with the reason logged. *)

type compiled

val available : unit -> (unit, string) result
(** Probe the toolchain once per process; [Error reason] when native
    compilation cannot work here (bytecode host, no [ocamlfind], not
    running from a dune build tree, or the smoke compile failed). *)

val source : Hidet_ir.Kernel.t -> string
(** The generated unit body (without the registration trailer) — for
    debugging and golden tests. Does not require the toolchain. *)

val compile : ?key:string -> Hidet_ir.Kernel.t -> compiled
(** Verify, codegen, and compile+load (memoized on [?key] plus the source
    digest). Raises [Failure] when {!available} is an [Error] or the
    toolchain misbehaves — callers wanting graceful degradation check
    {!available} first. *)

val kernel : compiled -> Hidet_ir.Kernel.t
val parallel_grid : compiled -> bool

val run_compiled :
  ?parallel:bool -> compiled -> (Hidet_ir.Buffer.t * float array) list -> unit
(** Launch with the same semantics, metrics (["sim.threads"],
    ["sim.statements"], ["sim.exec_us"], parallel/sequential block
    counters) and ["sim.exec"] span as [Compile_exec.run_compiled]; blocks
    run across domains under the same conditions. *)

val run :
  ?parallel:bool ->
  ?key:string ->
  Hidet_ir.Kernel.t ->
  (Hidet_ir.Buffer.t * float array) list ->
  unit

val run_alloc :
  ?parallel:bool ->
  ?key:string ->
  Hidet_ir.Kernel.t ->
  inputs:(Hidet_ir.Buffer.t * float array) list ->
  outputs:Hidet_ir.Buffer.t list ->
  float array list
(** Allocate zeroed arrays for [outputs], run, return them in order. *)
