(** Scalar expressions of the tensor-program IR.

    Smart constructors ({!add}, {!mul}, ...) perform local constant folding
    and algebraic identity elimination, so expressions built by schedulers are
    already partially simplified. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** integer division truncating toward zero / float division *)
  | Mod
  | Min
  | Max
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or

type unop = Neg | Not | Exp | Log | Sqrt | Tanh | Erf | Abs

type t =
  | Int of int
  | Float of float
  | Bool of bool
  | Var of Var.t
  | Thread_idx  (** threadIdx.x: linear thread index within the block *)
  | Block_idx   (** blockIdx.x: linear block index within the grid *)
  | Binop of binop * t * t
  | Unop of unop * t
  | Select of t * t * t  (** [Select (cond, if_true, if_false)] *)
  | Load of Buffer.t * t list

(** Runtime values produced by evaluation. *)
type value = V_int of int | V_float of float | V_bool of bool

(** {1 Smart constructors} *)

val int : int -> t
val float : float -> t
val bool : bool -> t
val var : Var.t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val modulo : t -> t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t
val lt : t -> t -> t
val le : t -> t -> t
val gt : t -> t -> t
val ge : t -> t -> t
val eq : t -> t -> t
val ne : t -> t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val not_ : t -> t
val neg : t -> t
val select : t -> t -> t -> t
val load : Buffer.t -> t list -> t
val binop : binop -> t -> t -> t
val unop : unop -> t -> t

(** Infix aliases for index arithmetic. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( % ) : t -> t -> t
  val ( < ) : t -> t -> t
  val ( <= ) : t -> t -> t
  val ( && ) : t -> t -> t
end

(** {1 Queries and transforms} *)

val equal : t -> t -> bool
(** Structural equality (buffers by id, vars by id). *)

val subst : Var.t -> t -> t -> t
(** [subst v e body] replaces every occurrence of [Var v] in [body] by [e]. *)

val free_vars : t -> Var.t list
(** Deduplicated, in first-occurrence order. *)

val map_loads : (Buffer.t -> t list -> t) -> t -> t
(** Rewrite every [Load] node bottom-up; indices have already been rewritten
    when the callback runs. *)

val const_int : t -> int option
(** [Some n] iff the expression is a literal integer. *)

val is_pure_of_thread : t -> bool
(** [true] if the expression mentions [Thread_idx] (directly); used by the
    verifier to flag thread-divergent conditions. *)

(** {1 Evaluation} *)

type env = {
  lookup : Var.t -> value;
  load : Buffer.t -> int list -> value;
  thread_idx : int;
  block_idx : int;
}

val eval : env -> t -> value
val eval_int : env -> t -> int
val eval_float : env -> t -> float
val eval_bool : env -> t -> bool

val eval_int_binop : binop -> int -> int -> value
(** Apply an arithmetic/comparison binop to two ints ([And]/[Or] are
    handled by short-circuit evaluation, not here). Exposed so the
    closure-compiling simulator backend dispatches mixed-type operands
    through exactly the same tables as {!eval}. *)

val eval_float_binop : binop -> float -> float -> value

val erf : float -> float
(** The scalar approximation {!eval} uses for [Erf]. *)

val float_of_value : value -> float
val int_of_value : value -> int
val bool_of_value : value -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
