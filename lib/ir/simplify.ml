(* How many IR nodes the rewrites below actually removed or folded, across
   the whole process — a cheap proxy for how much work the simplifier does
   per compilation. *)
let m_simplified = Hidet_obs.Metrics.counter "ir.nodes_simplified"

let rec expr (e : Expr.t) : Expr.t =
  match e with
  | Int _ | Float _ | Bool _ | Var _ | Thread_idx | Block_idx -> e
  | Binop (op, a, b) -> binop op (expr a) (expr b)
  | Unop (op, a) -> Expr.unop op (expr a)
  | Select (c, a, b) ->
    let c = expr c and a = expr a and b = expr b in
    if Expr.equal a b then (
      Hidet_obs.Metrics.incr m_simplified;
      a)
    else Expr.select c a b
  | Load (buf, idx) -> Expr.Load (buf, List.map expr idx)

and binop op a b =
  match (op, a, b) with
  | Expr.Sub, a, b when Expr.equal a b ->
    Hidet_obs.Metrics.incr m_simplified;
    Expr.Int 0
  | (Expr.Min | Expr.Max), a, b when Expr.equal a b ->
    Hidet_obs.Metrics.incr m_simplified;
    a
  (* (x * c + r) reassociation: fold constants across nested adds. *)
  | Expr.Add, Expr.Binop (Add, x, Expr.Int c1), Expr.Int c2 ->
    Hidet_obs.Metrics.incr m_simplified;
    Expr.add x (Expr.Int (c1 + c2))
  | Expr.Mul, Expr.Binop (Mul, x, Expr.Int c1), Expr.Int c2 ->
    Hidet_obs.Metrics.incr m_simplified;
    Expr.mul x (Expr.Int (c1 * c2))
  (* (x % c) % c = x % c  and  (x % c1) / c1 = 0 only when c1 = c; keep the
     safe same-divisor cases. *)
  | Expr.Mod, (Expr.Binop (Mod, _, Expr.Int c1) as inner), Expr.Int c2
    when c1 = c2 ->
    Hidet_obs.Metrics.incr m_simplified;
    inner
  | _ -> Expr.binop op a b

let rec stmt (s : Stmt.t) : Stmt.t =
  match s with
  | Seq ss -> Stmt.seq (List.map stmt ss)
  | For { var; extent; unroll; body } ->
    Stmt.for_ ~unroll var (expr extent) (stmt body)
  | If { cond; then_; else_ } ->
    Stmt.if_ ?else_:(Option.map stmt else_) (expr cond) (stmt then_)
  | Let { var; value; body } -> (
    let value = expr value in
    match value with
    | Int _ | Float _ | Bool _ | Var _ | Thread_idx | Block_idx ->
      Hidet_obs.Metrics.incr m_simplified;
      stmt (Stmt.subst var value body)
    | _ -> Stmt.let_ var value (stmt body))
  | Store { buf; indices; value } ->
    Stmt.store buf (List.map expr indices) (expr value)
  | Mma m ->
    Mma
      {
        m with
        a_off = List.map expr m.a_off;
        b_off = List.map expr m.b_off;
        c_off = List.map expr m.c_off;
      }
  | Sync_threads | Comment _ -> s

let kernel k = Kernel.map_body stmt k
