type scope = Global | Shared | Warp | Register

type t = {
  id : int;
  name : string;
  scope : scope;
  elt : Dtype.t;
  dims : int list;
}

(* Atomic: buffers are created from several domains when the tuner compiles
   schedule candidates in parallel. *)
let counter = Atomic.make 0

let create ?(scope = Global) ?(elt = Dtype.F32) name dims =
  if dims = [] then invalid_arg "Buffer.create: empty shape";
  List.iter
    (fun d -> if d <= 0 then invalid_arg "Buffer.create: non-positive dim")
    dims;
  { id = Atomic.fetch_and_add counter 1 + 1; name; scope; elt; dims }

let num_elems b = List.fold_left ( * ) 1 b.dims
let size_bytes b = num_elems b * Dtype.size_bytes b.elt
let rank b = List.length b.dims

let scope_name = function
  | Global -> "global"
  | Shared -> "shared"
  | Warp -> "warp"
  | Register -> "register"

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id

let pp fmt b =
  Format.fprintf fmt "%s@%s[%s]" b.name (scope_name b.scope)
    (String.concat "," (List.map string_of_int b.dims))

let flat_index b idx =
  if List.length idx <> List.length b.dims then
    invalid_arg (Printf.sprintf "Buffer.flat_index: rank mismatch on %s" b.name);
  List.fold_left2
    (fun acc i d ->
      if i < 0 || i >= d then
        invalid_arg
          (Printf.sprintf "Buffer.flat_index: index %d out of bound %d on %s" i
             d b.name);
      (acc * d) + i)
    0 idx b.dims
