type t = { id : int; name : string; dtype : Dtype.t }

(* Atomic: fresh variables are minted from several domains when the tuner
   compiles schedule candidates in parallel. *)
let counter = Atomic.make 0

let fresh ?(dtype = Dtype.I32) name =
  { id = Atomic.fetch_and_add counter 1 + 1; name; dtype }

let name v = Printf.sprintf "%s_%d" v.name v.id
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let pp fmt v = Format.pp_print_string fmt (name v)
