type error = { where : string; message : string }

let pp_error fmt e = Format.fprintf fmt "[%s] %s" e.where e.message

module Int_set = Set.Make (Int)

type ctx = {
  bound : Int_set.t;  (** bound variable ids *)
  bufs : Int_set.t;  (** declared buffer ids *)
  divergent : bool;  (** inside thread-divergent control flow *)
  errors : error list ref;  (** shared across derived contexts *)
}

let error ctx where fmt =
  Format.kasprintf (fun message -> ctx.errors := { where; message } :: !(ctx.errors)) fmt

let rec check_expr ctx where (e : Expr.t) =
  match e with
  | Int _ | Float _ | Bool _ | Thread_idx | Block_idx -> ()
  | Var v ->
    if not (Int_set.mem v.Var.id ctx.bound) then
      error ctx where "unbound variable %s" (Var.name v)
  | Binop (_, a, b) ->
    check_expr ctx where a;
    check_expr ctx where b
  | Unop (_, a) -> check_expr ctx where a
  | Select (c, a, b) ->
    check_expr ctx where c;
    check_expr ctx where a;
    check_expr ctx where b
  | Load (buf, idx) -> check_access ctx where buf idx

and check_access ctx where buf idx =
  if not (Int_set.mem buf.Buffer.id ctx.bufs) then
    error ctx where "access to undeclared buffer %s" buf.Buffer.name;
  if List.length idx <> Buffer.rank buf then
    error ctx where "rank mismatch on %s: %d indices for rank %d"
      buf.Buffer.name (List.length idx) (Buffer.rank buf);
  List.iter (check_expr ctx where) idx

let check_mma_tile ctx where (buf : Buffer.t) rows cols =
  match List.rev buf.Buffer.dims with
  | c :: r :: _ ->
    if r < rows || c < cols then
      error ctx where "MMA tile %dx%d exceeds trailing dims of %s" rows cols
        buf.Buffer.name
  | _ -> error ctx where "MMA operand %s must have rank >= 2" buf.Buffer.name

let rec check_stmt ctx (s : Stmt.t) =
  match s with
  | Seq ss -> List.iter (check_stmt ctx) ss
  | For { var; extent; body; _ } ->
    check_expr ctx "for" extent;
    let divergent = ctx.divergent || Expr.is_pure_of_thread extent in
    check_stmt
      { ctx with bound = Int_set.add var.Var.id ctx.bound; divergent }
      body
  | If { cond; then_; else_ } ->
    check_expr ctx "if" cond;
    let divergent = ctx.divergent || Expr.is_pure_of_thread cond in
    let ctx' = { ctx with divergent } in
    check_stmt ctx' then_;
    Option.iter (check_stmt ctx') else_
  | Let { var; value; body } ->
    check_expr ctx "let" value;
    check_stmt { ctx with bound = Int_set.add var.Var.id ctx.bound } body
  | Store { buf; indices; value } ->
    check_access ctx "store" buf indices;
    check_expr ctx "store" value
  | Mma m ->
    List.iter (check_expr ctx "mma") (m.a_off @ m.b_off @ m.c_off);
    List.iter
      (fun (b : Buffer.t) ->
        if not (Int_set.mem b.Buffer.id ctx.bufs) then
          error ctx "mma" "access to undeclared buffer %s" b.Buffer.name)
      [ m.a; m.b; m.c ];
    check_mma_tile ctx "mma" m.a m.m m.k;
    check_mma_tile ctx "mma" m.b m.k m.n;
    check_mma_tile ctx "mma" m.c m.m m.n
  | Sync_threads ->
    if ctx.divergent then
      error ctx "sync" "sync_threads under thread-divergent control flow"
  | Comment _ -> ()

(* NVIDIA architectural limit on threads per block. *)
let max_block_dim = 1024

let kernel (k : Kernel.t) =
  let bufs =
    List.fold_left
      (fun acc (b : Buffer.t) -> Int_set.add b.Buffer.id acc)
      Int_set.empty
      (k.params @ k.shared @ k.warp_bufs @ k.regs)
  in
  let ctx = { bound = Int_set.empty; bufs; divergent = false; errors = ref [] } in
  if k.block_dim > max_block_dim then
    error ctx "launch" "block_dim %d exceeds maximum %d" k.block_dim
      max_block_dim;
  check_stmt ctx k.body;
  match !(ctx.errors) with [] -> Ok () | errs -> Error (List.rev errs)

(* Block-disjointness analysis for domain-parallel grid execution: see the
   .mli for the exact guarantee. Taint flows from [Block_idx] through
   [Let]-bound variables only; [For]-bound variables always range from 0 and
   so never prove per-block disjointness. *)

let rec expr_tainted tainted (e : Expr.t) =
  match e with
  | Expr.Block_idx -> true
  | Var v -> Int_set.mem v.Var.id tainted
  | Int _ | Float _ | Bool _ | Thread_idx -> false
  | Binop (_, a, b) -> expr_tainted tainted a || expr_tainted tainted b
  | Unop (_, a) -> expr_tainted tainted a
  | Select (c, a, b) ->
    expr_tainted tainted c || expr_tainted tainted a || expr_tainted tainted b
  | Load (_, idx) -> List.exists (expr_tainted tainted) idx

let block_disjoint_writes (k : Kernel.t) =
  let is_global (b : Buffer.t) = b.Buffer.scope = Buffer.Global in
  let stored = ref Int_set.empty and loaded = ref Int_set.empty in
  let ok = ref true in
  let note_loads e =
    ignore
      (Expr.map_loads
         (fun b idx ->
           if is_global b then loaded := Int_set.add b.Buffer.id !loaded;
           Expr.Load (b, idx))
         e)
  in
  let rec go tainted (s : Stmt.t) =
    match s with
    | Stmt.Seq ss -> List.iter (go tainted) ss
    | For { extent; body; _ } ->
      note_loads extent;
      go tainted body
    | If { cond; then_; else_ } ->
      note_loads cond;
      go tainted then_;
      Option.iter (go tainted) else_
    | Let { var; value; body } ->
      note_loads value;
      let tainted =
        if expr_tainted tainted value then Int_set.add var.Var.id tainted
        else tainted
      in
      go tainted body
    | Store { buf; indices; value } ->
      List.iter (note_loads) indices;
      note_loads value;
      if is_global buf then begin
        stored := Int_set.add buf.Buffer.id !stored;
        if not (List.exists (expr_tainted tainted) indices) then ok := false
      end
    | Mma m ->
      List.iter (note_loads) (m.a_off @ m.b_off @ m.c_off);
      List.iter
        (fun (b : Buffer.t) ->
          if is_global b then loaded := Int_set.add b.Buffer.id !loaded)
        [ m.a; m.b ];
      (* The accumulator tile is both read and written. *)
      if is_global m.c then begin
        stored := Int_set.add m.c.Buffer.id !stored;
        loaded := Int_set.add m.c.Buffer.id !loaded;
        if not (List.exists (expr_tainted tainted) m.c_off) then ok := false
      end
    | Sync_threads | Comment _ -> ()
  in
  go Int_set.empty k.body;
  !ok && Int_set.is_empty (Int_set.inter !stored !loaded)

let kernel_exn k =
  match kernel k with
  | Ok () -> ()
  | Error errs ->
    let msg =
      String.concat "; "
        (List.map (fun e -> Format.asprintf "%a" pp_error e) errs)
    in
    failwith (Printf.sprintf "kernel %s failed verification: %s" k.name msg)
