(** Well-formedness checking for kernels.

    A kernel that passes verification can be interpreted and timed safely.
    Checked properties:
    - every variable used is bound by an enclosing [For], [Let] or is a
      launch index;
    - every buffer accessed is declared (a parameter or a scope buffer of the
      kernel) and accessed with the right rank;
    - [Sync_threads] does not occur under thread-divergent control flow
      (a condition or loop extent mentioning [threadIdx]);
    - MMA tile shapes fit inside the referenced buffers' trailing dims;
    - block size does not exceed the architectural maximum (1024). *)

type error = { where : string; message : string }

val kernel : Kernel.t -> (unit, error list) result
val kernel_exn : Kernel.t -> unit
(** Raises [Failure] with a readable message listing all errors. *)

val pp_error : Format.formatter -> error -> unit

val block_disjoint_writes : Kernel.t -> bool
(** Conservative static check that distinct blocks of the grid touch
    disjoint global memory, so the simulator may execute blocks on
    concurrent domains and still produce the sequential result:

    - every [Store] to a global buffer (and every MMA accumulator in global
      scope) has at least one index expression tainted by [blockIdx] —
      directly, or through a [Let]-bound variable whose definition is
      tainted ([For]-bound variables are never considered tainted: their
      ranges start at 0 in every block);
    - no global buffer is both written and read by the kernel (a block
      could otherwise observe another block's writes).

    [false] means "could not prove disjointness" — callers must fall back
    to sequential block execution, not that a race necessarily exists. *)
