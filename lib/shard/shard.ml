module G = Hidet_graph.Graph
module Op = Hidet_graph.Op
module Passes = Hidet_graph.Passes
module T = Hidet_tensor.Tensor
module Plan = Hidet_runtime.Plan
module Cluster = Hidet_gpu.Cluster
module HE = Hidet.Hidet_engine
module Trace = Hidet_obs.Trace

type tensor_mode = Gather | Reduce

type strategy =
  | Data
  | Tensor of tensor_mode
  | Pipeline of { microbatches : int }

let strategy_to_string = function
  | Data -> "data"
  | Tensor Gather -> "tensor-gather"
  | Tensor Reduce -> "tensor-reduce"
  | Pipeline { microbatches } -> Printf.sprintf "pipeline:%d" microbatches

let strategy_of_string ?(microbatches = 4) s =
  match String.lowercase_ascii s with
  | "data" -> Some Data
  | "tensor" | "tensor-gather" -> Some (Tensor Gather)
  | "tensor-reduce" -> Some (Tensor Reduce)
  | "pipeline" -> Some (Pipeline { microbatches })
  | _ -> None

let bit_exact = function Tensor Reduce -> false | _ -> true

type stage_exec = {
  stage : int;
  micro : int;
  device : int;
  start : float;
  finish : float;
}

let pipeline_schedule ~latency ~xfer ~stages ~micros =
  if stages < 1 || micros < 1 then
    invalid_arg "Shard.pipeline_schedule: stages and micros must be >= 1";
  let finish = Array.make_matrix stages micros 0. in
  let records = ref [] in
  for s = 0 to stages - 1 do
    for m = 0 to micros - 1 do
      let ready_up =
        if s = 0 then 0. else finish.(s - 1).(m) +. xfer ~stage:s ~micro:m
      in
      let ready_here = if m = 0 then 0. else finish.(s).(m - 1) in
      let start = Float.max ready_up ready_here in
      let f = start +. latency ~stage:s ~micro:m in
      finish.(s).(m) <- f;
      records :=
        { stage = s; micro = m; device = s; start; finish = f } :: !records
    done
  done;
  (List.rev !records, finish.(stages - 1).(micros - 1))

type estimate = {
  devices : int;
  compute : float;
  comm : float;
  total : float;
  baseline : float;
  speedup : float;
  per_device : float array;
}

(* A compiled per-device fragment. [feeds]/[yields] are node positions
   (indices into the source graph's topological node list), so they name
   the same logical value across rebatched graph variants, whose node ids
   need not coincide with the source graph's. *)
type frag = {
  dev : int;
  graph : G.t;
  plan : Plan.t;
  latency : float;
  feeds : int list;
  yields : int list;
}

type tensor_exec = {
  mode : tensor_mode;
  anchor : int;  (** anchor matmul position *)
  a : int;  (** activation position *)
  a_const : T.t option;  (** forced at plan time if the activation is a leaf constant *)
  pre : frag option;
  parts : frag array;  (** one per device; inputs: activation [, weight slice] *)
  w_feed : int option;  (** weight position when the weight is a graph input *)
  splits : (int * int) array;  (** (start, len) along the split axis per device *)
  split_extent : int;
  k : int;  (** contraction extent, for the ULP budget *)
  post : frag option;
  const_outs : (int * T.t) list;  (** output positions that are constants *)
}

type pipeline_exec = {
  micro_sizes : int array;
  class_of : int array;  (** micro index -> size-class index *)
  stage_frags : frag array array;  (** [stage_frags.(s).(class)] *)
  xfer_bytes : float array array;  (** [(s).(class)]: bytes entering stage s *)
  out_bytes : float array;  (** per class: bytes of the graph outputs *)
}

type exec =
  | E_data of { frags : frag array; sizes : int array }
  | E_tensor of tensor_exec
  | E_pipeline of pipeline_exec

type t = {
  cluster : Cluster.t;
  strat : strategy;
  source : G.t;
  base_plan : Plan.t;
  base_result : Hidet_runtime.Engine.result;
  exec : exec;
}

let strategy t = t.strat
let cluster t = t.cluster
let baseline t = t.base_plan
let baseline_result t = t.base_result
let base_latency t = t.base_result.Hidet_runtime.Engine.latency

(* --- shared helpers --------------------------------------------------------- *)

let fp32_bytes shape = 4.0 *. float_of_int (List.fold_left ( * ) 1 shape)

let positions g = Array.of_list (G.nodes g)

let pos_table (nodes : G.node array) =
  let h = Hashtbl.create (max 8 (Array.length nodes)) in
  Array.iteri (fun i n -> Hashtbl.replace h n.G.id i) nodes;
  h

let is_leaf (n : G.node) =
  match n.G.op with Op.Input | Op.Constant _ -> true | _ -> false

let compile_frag ~options ~cluster ~dev g ~feeds ~yields =
  let plan, result = HE.compile_plan ~options (Cluster.device cluster dev) g in
  {
    dev;
    graph = g;
    plan;
    latency = result.Hidet_runtime.Engine.latency;
    feeds;
    yields;
  }

let run_frag frag args =
  Plan.run frag.plan (List.combine (G.input_ids frag.graph) args)

(* Member ids whose values escape the member set: consumed by a
   non-member, or listed as graph outputs. In topological order. *)
let escaping_ids g (nodes : G.node array) member_tbl =
  let outs = G.outputs g in
  Array.to_list nodes
  |> List.filter_map (fun (n : G.node) ->
         if
           Hashtbl.mem member_tbl n.G.id
           && (List.mem n.G.id outs
              || List.exists
                   (fun c -> not (Hashtbl.mem member_tbl c))
                   (G.consumers g n.G.id))
         then Some n.G.id
         else None)

let member_tbl ids =
  let h = Hashtbl.create (max 8 (List.length ids)) in
  List.iter (fun id -> Hashtbl.replace h id ()) ids;
  h

(* --- data parallelism ------------------------------------------------------- *)

let leading_rows g =
  match G.input_ids g with
  | [] -> invalid_arg "shard: graph has no inputs"
  | id :: _ -> (
    match G.node_shape g id with
    | d :: _ -> d
    | [] -> invalid_arg "shard: scalar graph input")

let plan_data ~options ~cluster g =
  (match Batch_split.check g with
  | Ok () -> ()
  | Error e -> invalid_arg ("shard: data parallelism: " ^ e));
  let rows = leading_rows g in
  let sizes = Batch_split.split_sizes ~rows ~parts:(Cluster.size cluster) in
  let frags =
    Array.mapi
      (fun d b ->
        let gd = Passes.rebatch g b in
        compile_frag ~options ~cluster ~dev:d gd ~feeds:[] ~yields:[])
      sizes
  in
  E_data { frags; sizes }

(* Slice every input proportionally along its leading dim: an input whose
   leading dim is [c * total_rows] contributes [c * len] rows per shard
   (mirroring how [Passes.rebatch] rescales leading dims). *)
let slice_inputs_for tensors ~total ~start ~len =
  List.map
    (fun t ->
      let d0 = match T.shape t with d :: _ -> d | [] -> 1 in
      if d0 mod total <> 0 then
        invalid_arg
          (Printf.sprintf "shard: input leading dim %d not a multiple of %d"
             d0 total);
      let unit = d0 / total in
      Batch_split.slice_rows t ~start:(unit * start) ~len:(unit * len))
    tensors

let prefix_starts sizes =
  let starts = Array.make (Array.length sizes) 0 in
  for i = 1 to Array.length sizes - 1 do
    starts.(i) <- starts.(i - 1) + sizes.(i - 1)
  done;
  starts

let concat_rows_of per_shard =
  match per_shard with
  | [] -> []
  | first :: _ ->
    List.mapi
      (fun i _ ->
        T.concat (List.map (fun outs -> List.nth outs i) per_shard) ~axis:0)
      first

let run_data frags sizes inputs =
  let total = Array.fold_left ( + ) 0 sizes in
  let starts = prefix_starts sizes in
  let per_dev =
    Array.to_list
      (Array.mapi
         (fun d frag ->
           run_frag frag
             (slice_inputs_for inputs ~total ~start:starts.(d) ~len:sizes.(d)))
         frags)
  in
  concat_rows_of per_dev

(* --- tensor parallelism ----------------------------------------------------- *)

(* The dominant sliceable matmul: rank-2 leaf weight (Input or Constant)
   with enough extent along the split axis for one slab per device. *)
let find_anchor (nodes : G.node array) pos_of ~mode ~devices =
  let best = ref None in
  Array.iteri
    (fun pos (n : G.node) ->
      match (n.G.op, n.G.inputs) with
      | Op.Matmul, [ a; w ] -> (
        let wn = nodes.(Hashtbl.find pos_of w) in
        match (is_leaf wn, wn.G.shape) with
        | true, [ wk; wcols ] ->
          let extent = match mode with Gather -> wcols | Reduce -> wk in
          if extent >= devices then begin
            let fl =
              float_of_int (List.fold_left ( * ) 1 n.G.shape)
              *. float_of_int wk
            in
            match !best with
            | Some (_, _, _, best_fl) when best_fl >= fl -> ()
            | _ -> best := Some (pos, a, w, fl)
          end
        | _ -> ())
      | _ -> ())
    nodes;
  !best

let compute_ancestors (nodes : G.node array) pos_of root_id =
  let seen = Hashtbl.create 16 in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      List.iter go nodes.(Hashtbl.find pos_of id).G.inputs
    end
  in
  go root_id;
  Hashtbl.fold
    (fun id () acc ->
      if is_leaf nodes.(Hashtbl.find pos_of id) then acc else id :: acc)
    seen []
  |> List.sort compare

let forced_const (nodes : G.node array) pos_of id =
  match nodes.(Hashtbl.find pos_of id).G.op with
  | Op.Constant { value } -> Some (Lazy.force value)
  | _ -> None

let plan_tensor ~options ~cluster ~mode g =
  let devices = Cluster.size cluster in
  let nodes = positions g in
  let pos_of = pos_table nodes in
  let anchor_pos, a_id, w_id, _ =
    match find_anchor nodes pos_of ~mode ~devices with
    | Some x -> x
    | None ->
      invalid_arg
        (Printf.sprintf
           "shard: tensor parallelism: no matmul with a rank-2 leaf weight \
            offering >= %d %s extent" devices
           (match mode with Gather -> "output" | Reduce -> "reduction"))
  in
  let anchor_id = nodes.(anchor_pos).G.id in
  let wk, wcols =
    match G.node_shape g w_id with [ k; n ] -> (k, n) | _ -> assert false
  in
  let split_extent = match mode with Gather -> wcols | Reduce -> wk in
  let lens = Batch_split.split_sizes ~rows:split_extent ~parts:devices in
  let splits =
    let start = ref 0 in
    Array.map
      (fun len ->
        let s = !start in
        start := s + len;
        (s, len))
      lens
  in
  let a_shape = G.node_shape g a_id in
  let a_node = nodes.(Hashtbl.find pos_of a_id) in
  let pre_members = compute_ancestors nodes pos_of a_id in
  let pre =
    if pre_members = [] then None
    else begin
      let tbl = member_tbl pre_members in
      let yields = escaping_ids g nodes tbl in
      let ex = Passes.extract g ~nodes:pre_members ~outputs:yields in
      Some
        (compile_frag ~options ~cluster ~dev:0 ex.Passes.sub
           ~feeds:(List.map (Hashtbl.find pos_of) ex.Passes.feeds)
           ~yields:(List.map (Hashtbl.find pos_of) ex.Passes.yields))
    end
  in
  (* Host-side constants are forced now (planning is single-threaded), so
     [run] never touches the shared lazy thunks from worker domains. *)
  let a_const = if is_leaf a_node then forced_const nodes pos_of a_id else None in
  let w_const = forced_const nodes pos_of w_id in
  let w_is_input =
    match nodes.(Hashtbl.find pos_of w_id).G.op with
    | Op.Input -> true
    | _ -> false
  in
  let parts =
    Array.mapi
      (fun d (start, len) ->
        let pg = G.create () in
        G.name pg (Printf.sprintf "%s.part%d" (G.get_name g) d);
        let a_shape_d =
          match mode with
          | Gather -> a_shape
          | Reduce ->
            let r = List.length a_shape in
            List.mapi (fun i x -> if i = r - 1 then len else x) a_shape
        in
        let a_in = G.input pg a_shape_d in
        let w_nd =
          match w_const with
          | Some w ->
            let axis = match mode with Gather -> 1 | Reduce -> 0 in
            G.constant pg (Batch_split.slice_axis w ~axis ~start ~len)
          | None ->
            let w_shape_d =
              match mode with Gather -> [ wk; len ] | Reduce -> [ len; wcols ]
            in
            G.input pg w_shape_d
        in
        let mm = G.matmul pg a_in w_nd in
        G.set_outputs pg [ mm ];
        compile_frag ~options ~cluster ~dev:d pg ~feeds:[] ~yields:[])
      splits
  in
  let pre_tbl = member_tbl pre_members in
  let post_members =
    Array.to_list nodes
    |> List.filter_map (fun (n : G.node) ->
           if is_leaf n || n.G.id = anchor_id || Hashtbl.mem pre_tbl n.G.id
           then None
           else Some n.G.id)
  in
  let post =
    if post_members = [] then None
    else begin
      let tbl = member_tbl post_members in
      let yields = escaping_ids g nodes tbl in
      let ex = Passes.extract g ~nodes:post_members ~outputs:yields in
      Some
        (compile_frag ~options ~cluster ~dev:0 ex.Passes.sub
           ~feeds:(List.map (Hashtbl.find pos_of) ex.Passes.feeds)
           ~yields:(List.map (Hashtbl.find pos_of) ex.Passes.yields))
    end
  in
  let const_outs =
    List.filter_map
      (fun o ->
        match forced_const nodes pos_of o with
        | Some v -> Some (Hashtbl.find pos_of o, v)
        | None -> None)
      (G.outputs g)
  in
  E_tensor
    {
      mode;
      anchor = anchor_pos;
      a = Hashtbl.find pos_of a_id;
      a_const;
      pre;
      parts;
      w_feed = (if w_is_input then Some (Hashtbl.find pos_of w_id) else None);
      splits;
      split_extent;
      k = wk;
      post;
      const_outs;
    }

let run_tensor t (e : tensor_exec) inputs =
  let nodes = positions t.source in
  let pos_of = pos_table nodes in
  let env = Hashtbl.create 32 in
  List.iter2
    (fun id tns -> Hashtbl.replace env (Hashtbl.find pos_of id) tns)
    (G.input_ids t.source) inputs;
  List.iter (fun (p, v) -> Hashtbl.replace env p v) e.const_outs;
  let run_sub frag =
    let args = List.map (Hashtbl.find env) frag.feeds in
    List.iter2 (Hashtbl.replace env) frag.yields (run_frag frag args)
  in
  Option.iter run_sub e.pre;
  let a = match e.a_const with Some v -> v | None -> Hashtbl.find env e.a in
  let w = Option.map (Hashtbl.find env) e.w_feed in
  let part_outs =
    Array.to_list
      (Array.mapi
         (fun d (start, len) ->
           let a_d =
             match e.mode with
             | Gather -> a
             | Reduce ->
               let axis = List.length (T.shape a) - 1 in
               Batch_split.slice_axis a ~axis ~start ~len
           in
           let args =
             match w with
             | None -> [ a_d ]
             | Some w ->
               let axis = match e.mode with Gather -> 1 | Reduce -> 0 in
               [ a_d; Batch_split.slice_axis w ~axis ~start ~len ]
           in
           match run_frag e.parts.(d) args with
           | [ o ] -> o
           | _ -> failwith "shard: tensor part produced multiple outputs")
         e.splits)
  in
  let anchor_val =
    match (e.mode, part_outs) with
    | _, [] -> assert false
    | Gather, o :: _ -> T.concat part_outs ~axis:(List.length (T.shape o) - 1)
    | Reduce, o :: rest -> List.fold_left T.add o rest
  in
  Hashtbl.replace env e.anchor anchor_val;
  Option.iter run_sub e.post;
  List.map
    (fun o -> Hashtbl.find env (Hashtbl.find pos_of o))
    (G.outputs t.source)

(* --- pipeline parallelism --------------------------------------------------- *)

(* Contiguous, flops-balanced stage assignment over the compute nodes of
   [g], in topological order. Every stage gets at least one node. *)
let stage_assignment g (nodes : G.node array) ~stages =
  let compute =
    Array.of_list (List.filter (fun n -> not (is_leaf n)) (Array.to_list nodes))
  in
  let n = Array.length compute in
  if n < stages then
    invalid_arg
      (Printf.sprintf
         "shard: pipeline: %d compute nodes cannot fill %d stages" n stages);
  let cost (nd : G.node) =
    let out = float_of_int (List.fold_left ( * ) 1 nd.G.shape) in
    let fl =
      match (nd.G.op, nd.G.inputs) with
      | Op.Matmul, [ a; _ ] -> (
        match List.rev (G.node_shape g a) with
        | k :: _ -> out *. float_of_int k
        | [] -> out)
      | _ -> out
    in
    Float.max fl 1.
  in
  let total = Array.fold_left (fun acc nd -> acc +. cost nd) 0. compute in
  let members = Array.make stages [] in
  let s = ref 0 and acc = ref 0. in
  Array.iteri
    (fun i nd ->
      let remaining_nodes = n - i in
      (* close the stage once it met its cumulative share — but never
         early enough to starve the remaining stages of a node each *)
      if
        !s < stages - 1
        && members.(!s) <> []
        && (!acc *. float_of_int stages >= total *. float_of_int (!s + 1)
           || remaining_nodes <= stages - !s - 1 + 1)
      then incr s;
      members.(!s) <- nd :: members.(!s);
      acc := !acc +. cost nd)
    compute;
  Array.map List.rev members

let plan_pipeline ~options ~cluster ~microbatches g =
  (match Batch_split.check g with
  | Ok () -> ()
  | Error e -> invalid_arg ("shard: pipeline: " ^ e));
  if microbatches < 1 then invalid_arg "shard: pipeline: microbatches < 1";
  let stages_n = Cluster.size cluster in
  let rows = leading_rows g in
  let micro_sizes = Batch_split.split_sizes ~rows ~parts:microbatches in
  let nodes = positions g in
  let pos_of = pos_table nodes in
  let stage_nodes = stage_assignment g nodes ~stages:stages_n in
  let stage_member_pos =
    Array.map
      (fun ms -> List.map (fun (n : G.node) -> Hashtbl.find pos_of n.G.id) ms)
      stage_nodes
  in
  let stage_out_pos =
    Array.map
      (fun ms ->
        let tbl = member_tbl (List.map (fun (n : G.node) -> n.G.id) ms) in
        List.map (Hashtbl.find pos_of) (escaping_ids g nodes tbl))
      stage_nodes
  in
  let classes =
    Array.of_list (List.sort_uniq compare (Array.to_list micro_sizes))
  in
  let class_of =
    Array.map
      (fun sz ->
        let rec idx i = if classes.(i) = sz then i else idx (i + 1) in
        idx 0)
      micro_sizes
  in
  (* one compiled stage chain per distinct microbatch size *)
  let per_class =
    Array.map
      (fun mb ->
        let gc = Passes.rebatch g mb in
        let cnodes = positions gc in
        let cpos = pos_table cnodes in
        let frags =
          Array.mapi
            (fun s member_pos ->
              let ids = List.map (fun p -> cnodes.(p).G.id) member_pos in
              let outs = List.map (fun p -> cnodes.(p).G.id) stage_out_pos.(s) in
              let ex = Passes.extract gc ~nodes:ids ~outputs:outs in
              compile_frag ~options ~cluster ~dev:s ex.Passes.sub
                ~feeds:(List.map (Hashtbl.find cpos) ex.Passes.feeds)
                ~yields:(List.map (Hashtbl.find cpos) ex.Passes.yields))
            stage_member_pos
        in
        let xfer =
          Array.mapi
            (fun s frag ->
              if s = 0 then 0.
              else
                List.fold_left
                  (fun acc p -> acc +. fp32_bytes cnodes.(p).G.shape)
                  0. frag.feeds)
            frags
        in
        let out_bytes =
          List.fold_left
            (fun acc o -> acc +. fp32_bytes (G.node_shape gc o))
            0. (G.outputs gc)
        in
        (frags, xfer, out_bytes))
      classes
  in
  E_pipeline
    {
      micro_sizes;
      class_of;
      stage_frags =
        Array.init stages_n (fun s ->
            Array.map (fun (frags, _, _) -> frags.(s)) per_class);
      xfer_bytes =
        Array.init stages_n (fun s ->
            Array.map (fun (_, xf, _) -> xf.(s)) per_class);
      out_bytes = Array.map (fun (_, _, ob) -> ob) per_class;
    }

let run_pipeline t (p : pipeline_exec) inputs =
  let nodes = positions t.source in
  let pos_of = pos_table nodes in
  let input_pos = List.map (Hashtbl.find pos_of) (G.input_ids t.source) in
  let out_pos = List.map (Hashtbl.find pos_of) (G.outputs t.source) in
  let total = Array.fold_left ( + ) 0 p.micro_sizes in
  let starts = prefix_starts p.micro_sizes in
  let per_micro =
    Array.to_list
      (Array.mapi
         (fun m sz ->
           let env = Hashtbl.create 32 in
           List.iter2 (Hashtbl.replace env) input_pos
             (slice_inputs_for inputs ~total ~start:starts.(m) ~len:sz);
           Array.iter
             (fun stage ->
               let frag = stage.(p.class_of.(m)) in
               let args = List.map (Hashtbl.find env) frag.feeds in
               List.iter2 (Hashtbl.replace env) frag.yields
                 (run_frag frag args))
             p.stage_frags;
           List.map (Hashtbl.find env) out_pos)
         p.micro_sizes)
  in
  concat_rows_of per_micro

(* --- public API ------------------------------------------------------------- *)

let default_options = { HE.default_options with HE.deterministic_reduce = true }

let compile_single ?(options = default_options) cluster g =
  let options = { options with HE.deterministic_reduce = true } in
  HE.compile_plan ~options (Cluster.device cluster 0) g

let plan ?(options = default_options) ?(strategy = Data) cluster g =
  (* The equivalence contract rests on reduction-order-canonical
     schedules on both sides; everything else in [options] is honored. *)
  let options = { options with HE.deterministic_reduce = true } in
  Trace.span
    ~attrs:(fun () ->
      [
        ("strategy", strategy_to_string strategy);
        ("cluster", cluster.Cluster.name);
        ("model", G.get_name g);
      ])
    "shard.plan"
    (fun _ ->
      let base_plan, base_result =
        HE.compile_plan ~options (Cluster.device cluster 0) g
      in
      let exec =
        match strategy with
        | Data -> plan_data ~options ~cluster g
        | Tensor mode -> plan_tensor ~options ~cluster ~mode g
        | Pipeline { microbatches } ->
          plan_pipeline ~options ~cluster ~microbatches g
      in
      { cluster; strat = strategy; source = g; base_plan; base_result; exec })

let out_bytes_total g =
  List.fold_left
    (fun acc o -> acc +. fp32_bytes (G.node_shape g o))
    0. (G.outputs g)

let pipeline_times t (p : pipeline_exec) =
  let latency ~stage ~micro =
    p.stage_frags.(stage).(p.class_of.(micro)).latency
  in
  let xfer ~stage ~micro =
    Cluster.p2p_time t.cluster ~bytes:p.xfer_bytes.(stage).(p.class_of.(micro))
  in
  pipeline_schedule ~latency ~xfer
    ~stages:(Array.length p.stage_frags)
    ~micros:(Array.length p.micro_sizes)

let estimate t =
  let n = Cluster.size t.cluster in
  match t.exec with
  | E_data { frags; _ } ->
    let per_device = Array.map (fun f -> f.latency) frags in
    let compute = Array.fold_left Float.max 0. per_device in
    let comm =
      Cluster.all_gather_time t.cluster ~bytes:(out_bytes_total t.source)
    in
    let total = compute +. comm in
    {
      devices = n;
      compute;
      comm;
      total;
      baseline = base_latency t;
      speedup = base_latency t /. total;
      per_device;
    }
  | E_tensor e ->
    let pre_l = match e.pre with Some f -> f.latency | None -> 0. in
    let post_l = match e.post with Some f -> f.latency | None -> 0. in
    let part_max =
      Array.fold_left (fun m f -> Float.max m f.latency) 0. e.parts
    in
    let nodes = positions t.source in
    let anchor_bytes = fp32_bytes nodes.(e.anchor).G.shape in
    let a_bytes = fp32_bytes (G.node_shape t.source (List.hd nodes.(e.anchor).G.inputs)) in
    (* activation broadcast (none needed when each device could have
       computed it, but the simulated runtime materializes on dev0) *)
    let bcast =
      if n = 1 then 0. else Cluster.all_gather_time t.cluster ~bytes:a_bytes
    in
    let coll =
      match e.mode with
      | Gather -> Cluster.all_gather_time t.cluster ~bytes:anchor_bytes
      | Reduce -> Cluster.all_reduce_time t.cluster ~bytes:anchor_bytes
    in
    let compute = pre_l +. part_max +. post_l in
    let comm = bcast +. coll in
    let total = compute +. comm in
    let per_device =
      Array.mapi
        (fun d f -> f.latency +. (if d = 0 then pre_l +. post_l else 0.))
        e.parts
    in
    {
      devices = n;
      compute;
      comm;
      total;
      baseline = base_latency t;
      speedup = base_latency t /. total;
      per_device;
    }
  | E_pipeline p ->
    let _, makespan = pipeline_times t p in
    let micros = Array.length p.micro_sizes in
    let stages_n = Array.length p.stage_frags in
    let drain =
      Array.fold_left
        (fun acc c -> acc +. Cluster.p2p_time t.cluster ~bytes:p.out_bytes.(c))
        0. p.class_of
    in
    let comm = ref drain in
    for s = 1 to stages_n - 1 do
      for m = 0 to micros - 1 do
        comm :=
          !comm
          +. Cluster.p2p_time t.cluster
               ~bytes:p.xfer_bytes.(s).(p.class_of.(m))
      done
    done;
    let per_device =
      Array.map
        (fun per_class ->
          Array.fold_left
            (fun acc c -> acc +. per_class.(c).latency)
            0. p.class_of)
        p.stage_frags
    in
    let total = makespan +. drain in
    {
      devices = n;
      compute = Array.fold_left Float.max 0. per_device;
      comm = !comm;
      total;
      baseline = base_latency t;
      speedup = base_latency t /. total;
      per_device;
    }

let schedule t =
  match t.exec with
  | E_pipeline p -> fst (pipeline_times t p)
  | _ -> []

let describe t =
  let c =
    Printf.sprintf "%dx %s" (Cluster.size t.cluster)
      (Cluster.device t.cluster 0).Hidet_gpu.Device.name
  in
  let join sizes =
    String.concat "+" (Array.to_list (Array.map string_of_int sizes))
  in
  match t.exec with
  | E_data { sizes; _ } -> Printf.sprintf "data[rows %s | %s]" (join sizes) c
  | E_tensor e ->
    Printf.sprintf "%s[%s=%d: %s | %s]"
      (strategy_to_string (Tensor e.mode))
      (match e.mode with Gather -> "n" | Reduce -> "k")
      e.split_extent
      (join (Array.map snd e.splits))
      c
  | E_pipeline p ->
    Printf.sprintf "pipeline[%d stages x %d micro (rows %s) | %s]"
      (Array.length p.stage_frags)
      (Array.length p.micro_sizes)
      (join p.micro_sizes) c

(* Regrouping a k-length fp32 dot product into n partial sums perturbs
   each output by at most a few units in the last place per accumulation
   step; the budget scales with the contraction extent and keeps a wide
   safety margin (see EXPERIMENTS.md). Bit-exact strategies get 0. *)
let ulp_budget t =
  match t.exec with
  | E_tensor { mode = Reduce; k; _ } -> max 256 (16 * k)
  | _ -> 0

let frags t =
  match t.exec with
  | E_data { frags; _ } -> Array.to_list frags
  | E_tensor e ->
    Option.to_list e.pre @ Array.to_list e.parts @ Option.to_list e.post
  | E_pipeline p ->
    Array.to_list p.stage_frags
    |> List.concat_map (fun per_class -> Array.to_list per_class)

let fragment_count t = List.length (frags t)

let prepare t =
  Plan.prepare t.base_plan;
  List.iter (fun f -> Plan.prepare f.plan) (frags t)

let run t bindings =
  Trace.span "shard.run" (fun _ ->
      let inputs =
        List.map
          (fun id ->
            match List.assoc_opt id bindings with
            | Some tns -> tns
            | None ->
              invalid_arg
                (Printf.sprintf "shard: missing binding for input %%%d" id))
          (G.input_ids t.source)
      in
      match t.exec with
      | E_data { frags; sizes } -> run_data frags sizes inputs
      | E_tensor e -> run_tensor t e inputs
      | E_pipeline p -> run_pipeline t p inputs)

let run1 t inputs =
  match run t (List.combine (G.input_ids t.source) inputs) with
  | [ o ] -> o
  | _ -> invalid_arg "shard: run1 on a multi-output graph"

(* --- differential comparison ------------------------------------------------ *)

let ulp_diff a b =
  if Int64.bits_of_float a = Int64.bits_of_float b then 0L
  else
    let key f =
      let i = Int64.bits_of_float f in
      if Int64.compare i 0L < 0 then Int64.sub Int64.min_int i else i
    in
    Int64.abs (Int64.sub (key a) (key b))

let verify t inputs =
  let bindings = List.combine (G.input_ids t.source) inputs in
  let got = run t bindings in
  let want = Plan.run t.base_plan bindings in
  let budget = ulp_budget t in
  let spec = describe t in
  let shape_str s = String.concat "x" (List.map string_of_int s) in
  let check_pair i g w =
    if T.shape g <> T.shape w then
      Error
        (Printf.sprintf "%s: output %d shape %s vs baseline %s" spec i
           (shape_str (T.shape g)) (shape_str (T.shape w)))
    else begin
      let dg = T.data g and dw = T.data w in
      let bad = ref None in
      Array.iteri
        (fun j x ->
          if !bad = None then begin
            let y = dw.(j) in
            let ok =
              if budget = 0 then
                Int64.bits_of_float x = Int64.bits_of_float y
              else
                Int64.compare (ulp_diff x y) (Int64.of_int budget) <= 0
                || Float.abs (x -. y) <= 1e-6
            in
            if not ok then bad := Some (j, x, y)
          end)
        dg;
      match !bad with
      | None -> Ok ()
      | Some (j, x, y) ->
        Error
          (Printf.sprintf
             "%s: output %d element %d: sharded %h vs baseline %h (ulp %Ld, \
              budget %d)"
             spec i j x y (ulp_diff x y) budget)
    end
  in
  if List.length got <> List.length want then
    Error
      (Printf.sprintf "%s: %d outputs vs baseline %d" spec (List.length got)
         (List.length want))
  else
    let rec go i = function
      | [], [] ->
        Ok
          (Printf.sprintf "%s: %d output(s) %s" spec (List.length got)
             (if budget = 0 then "bit-identical"
              else Printf.sprintf "within %d ulp" budget))
      | g :: gs, w :: ws -> (
        match check_pair i g w with
        | Ok () -> go (i + 1) (gs, ws)
        | Error _ as e -> e)
      | _ -> assert false
    in
    go 0 (got, want)
