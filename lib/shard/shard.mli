(** Multi-device sharded execution.

    A shard plan partitions a graph across the devices of a
    {!Hidet_gpu.Cluster}, compiles one plan fragment per device (through
    the normal Hidet engine, so every fragment is tuned against the
    per-device schedule cache), and orchestrates execution host-side:
    inputs are sliced, fragments run, and the collectives the real
    runtime would issue (all-gather, all-reduce, point-to-point) are
    performed as tensor ops and billed through the cluster's
    latency–bandwidth cost model.

    Equivalence contract: fragments and the single-device baseline are
    compiled with {!Hidet.Hidet_engine.options.deterministic_reduce}, so
    every strategy that preserves reduction extents — data parallelism,
    column-parallel tensor parallelism, pipeline microbatching — is
    {e bit-exact} against the baseline. Row-parallel tensor parallelism
    ([Tensor Reduce]) splits the contraction axis and regroups the k-sum
    into per-device partial sums, which legitimately reorders fp32
    addition; it is held to a documented ULP budget instead
    ({!ulp_budget}). *)

type tensor_mode =
  | Gather
      (** Column-parallel: the weight is sliced along its output (n)
          axis; each device computes a column slab and the slabs are
          all-gathered (concatenated on the last axis). Preserves each
          output element's reduction extent — bit-exact. *)
  | Reduce
      (** Row-parallel (split-k): the weight is sliced along its
          reduction (k) axis and the activation along its last axis;
          partial products are all-reduced (summed). Reorders the k-sum
          — ULP-bounded, not bit-exact. *)

type strategy =
  | Data  (** split the leading (batch) dimension across devices *)
  | Tensor of tensor_mode  (** split the dominant matmul *)
  | Pipeline of { microbatches : int }
      (** stage the graph across devices and stream microbatches *)

val strategy_to_string : strategy -> string
val strategy_of_string : ?microbatches:int -> string -> strategy option
(** ["data"], ["tensor"]/["tensor-gather"], ["tensor-reduce"],
    ["pipeline"] (with [?microbatches], default 4). *)

val bit_exact : strategy -> bool
(** Whether the strategy preserves reduction order (everything except
    [Tensor Reduce]). *)

(** One microbatch's residence in one pipeline stage, in virtual time. *)
type stage_exec = {
  stage : int;
  micro : int;
  device : int;
  start : float;
  finish : float;  (** [start] includes the inbound transfer *)
}

val pipeline_schedule :
  latency:(stage:int -> micro:int -> float) ->
  xfer:(stage:int -> micro:int -> float) ->
  stages:int ->
  micros:int ->
  stage_exec list * float
(** Pure virtual-time pipeline schedule (exposed for property tests):
    microbatch [m] enters stage [s] when both the previous stage has
    finished it and the stage has finished microbatch [m - 1];
    [finish (s, m) = max (finish (s-1, m) + xfer (s, m), finish (s, m-1))
    + latency (s, m)]. Returns the records in (stage, micro) order and
    the makespan. *)

type estimate = {
  devices : int;
  compute : float;  (** critical-path compute seconds *)
  comm : float;  (** collective/transfer seconds under the link model *)
  total : float;
  baseline : float;  (** single-device latency of the same graph *)
  speedup : float;  (** [baseline /. total] *)
  per_device : float array;  (** busy compute seconds per device *)
}

type t

val plan :
  ?options:Hidet.Hidet_engine.options ->
  ?strategy:strategy ->
  Hidet_gpu.Cluster.t ->
  Hidet_graph.Graph.t ->
  t
(** Partition [g] for the cluster and compile the per-device fragments
    plus the single-device baseline (on device 0). [options] defaults to
    [{ default_options with deterministic_reduce = true }]; the
    [deterministic_reduce] flag is forced on regardless, since the
    equivalence contract depends on it. [strategy] defaults to [Data].
    Raises [Invalid_argument] when the strategy does not apply to the
    graph (not batch-splittable, no sliceable matmul, fewer batch rows
    than devices, ...) — the differential harness maps this to a skip. *)

val default_options : Hidet.Hidet_engine.options
(** [{ Hidet_engine.default_options with deterministic_reduce = true }] —
    what {!plan} and {!compile_single} compile with. *)

val compile_single :
  ?options:Hidet.Hidet_engine.options ->
  Hidet_gpu.Cluster.t ->
  Hidet_graph.Graph.t ->
  Hidet_runtime.Plan.t * Hidet_runtime.Engine.result
(** Compile the unsharded graph on device 0 under the same deterministic
    options a shard plan's baseline uses — the serving registry's
    fallback when a bucket is too small to partition, so its outputs
    still bit-match the sharded buckets row for row. *)

val strategy : t -> strategy
val cluster : t -> Hidet_gpu.Cluster.t
val baseline : t -> Hidet_runtime.Plan.t
val baseline_result : t -> Hidet_runtime.Engine.result
val fragment_count : t -> int
(** Number of compiled per-device plan fragments. *)

val prepare : t -> unit
(** Eagerly force the constants of the baseline and of every fragment
    plan ({!Hidet_runtime.Plan.prepare}), so worker domains can {!run}
    concurrently without contending on the constant lock. *)

val describe : t -> string
(** One-line human/repro description of the partitioning, e.g.
    ["tensor-gather[n=64: 32+32 | 2x sim-rtx3090]"]. *)

val estimate : t -> estimate
val schedule : t -> stage_exec list
(** The virtual-time schedule ([[]] unless the strategy is pipeline). *)

val ulp_budget : t -> int
(** Max per-element ULP distance from the baseline this plan is allowed:
    [0] for bit-exact strategies; for [Tensor Reduce] a budget scaled by
    the contraction extent (see EXPERIMENTS.md for the rationale). *)

val run :
  t -> (int * Hidet_tensor.Tensor.t) list -> Hidet_tensor.Tensor.t list
(** Execute the sharded plan: bindings are (graph input id, tensor) in
    any order, results are the graph outputs in order. *)

val run1 : t -> Hidet_tensor.Tensor.t list -> Hidet_tensor.Tensor.t
(** [run] with positional inputs, returning the single output. *)

val verify :
  t -> Hidet_tensor.Tensor.t list -> (string, string) result
(** Run the sharded plan and the single-device baseline on the same
    inputs and compare under the strategy's contract: bitwise equality
    ([Int64.bits_of_float]) for bit-exact strategies, the ULP budget
    (with a small absolute-tolerance floor for cancellation near zero)
    for [Tensor Reduce]. [Ok summary] or [Error diagnosis]; the
    diagnosis embeds {!describe} so failures are reproducible. *)
