(** Static analysis: does a graph commute with splitting its leading
    (batch) dimension?

    A graph is batch-splittable when running it on a leading-dim slice of
    its inputs produces exactly the matching leading-dim slice of its
    outputs — the precondition for both data parallelism and pipeline
    microbatching. The check walks the graph tracking which values carry
    the batch dimension (descend from an Input) and rejects any operator
    that mixes rows — transposing the batch axis away, reducing over a
    rank-1 batch axis (softmax), concatenating along it, or broadcasting
    a non-batch operand against it. Operators applied to batch-free
    (constant-derived) values are always fine: they replicate. *)

val check : Hidet_graph.Graph.t -> (unit, string) result
(** [Ok ()] when every output carries the batch dimension and every
    operator on the batch-carrying spine is row-parallel. The verdict is
    conservative: [Ok] guarantees slice-then-run = run-then-slice
    (bitwise, for a fixed schedule); [Error] carries the offending node. *)

val split_sizes : rows:int -> parts:int -> int array
(** Balanced leading-dim split: [parts] sizes that sum to [rows], each
    [>= 1], differing by at most one (ceil first). Raises
    [Invalid_argument] when [parts < 1] or [rows < parts]. *)

val slice_rows : Hidet_tensor.Tensor.t -> start:int -> len:int -> Hidet_tensor.Tensor.t
(** Leading-dimension window of a tensor. *)

val slice_axis :
  Hidet_tensor.Tensor.t -> axis:int -> start:int -> len:int -> Hidet_tensor.Tensor.t
(** Window along an arbitrary axis (full extent elsewhere). *)
