module G = Hidet_graph.Graph
module Op = Hidet_graph.Op
module T = Hidet_tensor.Tensor

let split_sizes ~rows ~parts =
  if parts < 1 then invalid_arg "Batch_split.split_sizes: parts must be >= 1";
  if rows < parts then
    invalid_arg
      (Printf.sprintf
         "Batch_split.split_sizes: %d rows cannot feed %d devices" rows parts);
  let base = rows / parts and rem = rows mod parts in
  Array.init parts (fun i -> if i < rem then base + 1 else base)

let slice_axis t ~axis ~start ~len =
  let spec =
    List.mapi
      (fun i d -> if i = axis then (start, len) else (0, d))
      (T.shape t)
  in
  T.slice t spec

let slice_rows t ~start ~len = slice_axis t ~axis:0 ~start ~len

(* Rules, per operator, for a node with at least one batch-carrying
   ("split") operand. Operands that do not carry the batch dimension are
   replicated whole on every device; the danger is an operator that makes
   rows of its split operand interact, or that silently aliases a
   replicated operand's leading dim against the batch. *)
let node_ok g (n : G.node) ~split =
  let is_split id = Hashtbl.mem split id in
  let rank id = List.length (G.node_shape g id) in
  let dim0 id = List.hd (G.node_shape g id) in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let x_rank = match n.G.inputs with x :: _ -> rank x | [] -> 0 in
  match (n.G.op, n.G.inputs) with
  | (Op.Input | Op.Constant _), _ -> Ok ()
  | Op.Unary _, [ _ ] -> Ok ()
  | Op.Binary _, [ a; b ] -> (
    match (is_split a, is_split b) with
    | true, true -> Ok ()
    | (true, false | false, true) ->
      (* The replicated side must broadcast strictly below the batch axis,
         or its own leading dim would alias (or broadcast against) the
         per-shard batch extent. *)
      let s, r = if is_split a then (a, b) else (b, a) in
      if rank r < rank s || dim0 r = 1 then Ok ()
      else
        err "node %%%d: binary mixes batch rows with a replicated operand"
          n.G.id
    | false, false -> Ok ())
  | Op.Bias_add, [ _; b ] ->
    if is_split b then
      err "node %%%d: per-channel operand carries the batch" n.G.id
    else Ok ()
  | Op.Scale_shift, [ _; sc; sh ] ->
    if is_split sc || is_split sh then
      err "node %%%d: per-channel operand carries the batch" n.G.id
    else Ok ()
  | Op.Matmul, [ a; b ] -> (
    match (is_split a, is_split b) with
    | true, true ->
      if rank a = 3 && rank b = 3 then Ok ()
      else err "node %%%d: rank-2 matmul between batch-carrying values" n.G.id
    | true, false ->
      (* Split data against replicated weights: safe for [.., m, k] x
         [k, n]. A rank-3 replicated B would alias its leading dim. *)
      if rank b = 2 then Ok ()
      else err "node %%%d: replicated matmul operand is batched" n.G.id
    | false, true ->
      if rank a = 2 && rank b = 3 then Ok ()
      else err "node %%%d: batch-carrying matmul B must be rank 3" n.G.id
    | false, false -> Ok ())
  | (Op.Conv2d _ | Op.Depthwise_conv2d _), [ _; w ] ->
    if is_split w then err "node %%%d: conv weight carries the batch" n.G.id
    else Ok ()
  | (Op.Pool2d _ | Op.Global_avg_pool | Op.Im2col _), [ _ ] -> Ok ()
  | (Op.Softmax | Op.Layernorm _), _ :: rest ->
    if x_rank < 2 then
      err "node %%%d: last-axis reduction over the batch axis itself" n.G.id
    else if List.exists is_split rest then
      err "node %%%d: normalization parameters carry the batch" n.G.id
    else Ok ()
  | Op.Reshape _, [ _ ] ->
    (* Row-major flattening commutes with a proportional leading-dim
       split: a shard is a contiguous flat range of every intermediate,
       and [Passes.rebatch] rescales (or rejects) the target's leading
       dim. *)
    Ok ()
  | Op.Transpose perm, [ _ ] ->
    if perm <> [] && List.hd perm = 0 then Ok ()
    else err "node %%%d: transpose moves the batch axis" n.G.id
  | Op.Concat { axis }, ins ->
    if axis = 0 then err "node %%%d: concat along the batch axis" n.G.id
    else if List.for_all is_split ins then Ok ()
    else err "node %%%d: concat mixes batch and replicated operands" n.G.id
  | Op.Embedding, [ _; table ] ->
    if is_split table then
      err "node %%%d: embedding table carries the batch" n.G.id
    else Ok ()
  | op, _ -> err "node %%%d: %s arity unsupported" n.G.id (Op.name op)

let check g =
  let split = Hashtbl.create 32 in
  let rec go = function
    | [] ->
      let bad =
        List.find_opt (fun o -> not (Hashtbl.mem split o)) (G.outputs g)
      in
      (match bad with
      | Some o ->
        Error
          (Printf.sprintf "output %%%d does not carry the batch dimension" o)
      | None -> if G.outputs g = [] then Error "graph has no outputs" else Ok ())
    | (n : G.node) :: rest -> (
      let carries =
        match n.G.op with
        | Op.Input -> true
        | Op.Constant _ -> false
        | _ -> List.exists (Hashtbl.mem split) n.G.inputs
      in
      if not carries then go rest
      else
        match node_ok g n ~split with
        | Ok () ->
          Hashtbl.replace split n.G.id ();
          go rest
        | Error _ as e -> e)
  in
  match G.input_ids g with
  | [] -> Error "graph has no inputs"
  | _ -> go (G.nodes g)
