module Tensor = Hidet_tensor.Tensor

let foldable (op : Op.t) =
  match op with
  | Op.Reshape _ | Transpose _ | Unary _ | Binary _ | Bias_add | Scale_shift
  | Concat _ ->
    true
  | Input | Constant _ | Matmul | Conv2d _ | Depthwise_conv2d _ | Pool2d _
  | Global_avg_pool | Softmax | Layernorm _ | Im2col _ | Embedding ->
    false

let rebuild g ~keep ~fold_value =
  (* Rebuild the graph; [keep id] decides whether a node survives as-is,
     [fold_value id] supplies the lazy constant replacing a folded node. *)
  let g' = Graph.create () in
  Graph.name g' (Graph.get_name g);
  let remap = Hashtbl.create 64 in
  List.iter
    (fun (n : Graph.node) ->
      if keep n.Graph.id then begin
        let new_id =
          match fold_value n.Graph.id with
          | Some value -> Graph.constant_lazy g' n.Graph.shape value
          | None -> (
            match n.Graph.op with
            | Op.Input -> Graph.input g' n.Graph.shape
            | Op.Constant { value } -> Graph.constant_lazy g' n.Graph.shape value
            | op ->
              Graph.add_op g' op
                (List.map (Hashtbl.find remap) n.Graph.inputs))
        in
        Hashtbl.replace remap n.Graph.id new_id
      end)
    (Graph.nodes g);
  Graph.set_outputs g' (List.map (Hashtbl.find remap) (Graph.outputs g));
  g'

let constant_fold g =
  (* folded : id -> lazy tensor, for nodes that became constants. *)
  let folded : (int, Tensor.t Lazy.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (n : Graph.node) ->
      match n.Graph.op with
      | Op.Constant { value } -> Hashtbl.replace folded n.Graph.id value
      | op when foldable op && n.Graph.inputs <> [] ->
        let inputs_folded =
          List.filter_map (Hashtbl.find_opt folded) n.Graph.inputs
        in
        if List.length inputs_folded = List.length n.Graph.inputs then
          Hashtbl.replace folded n.Graph.id
            (lazy (Op.eval op (List.map Lazy.force inputs_folded)))
      | _ -> ())
    (Graph.nodes g);
  rebuild g
    ~keep:(fun _ -> true)
    ~fold_value:(fun id ->
      match Graph.node g id with
      | { Graph.op = Op.Constant _; _ } -> None
      | _ -> Hashtbl.find_opt folded id)

let dead_code_elim g =
  let live = Hashtbl.create 64 in
  let rec mark id =
    if not (Hashtbl.mem live id) then begin
      Hashtbl.replace live id ();
      List.iter mark (Graph.node g id).Graph.inputs
    end
  in
  List.iter mark (Graph.outputs g);
  rebuild g ~keep:(Hashtbl.mem live) ~fold_value:(fun _ -> None)

let optimize g = dead_code_elim (constant_fold g)

type group = {
  anchor : int;
  prologues : int list;
  epilogues : int list;
  output : int;
}

let is_source (n : Graph.node) =
  match n.Graph.op with Op.Input | Op.Constant _ -> true | _ -> false

let partition g =
  let assigned = Hashtbl.create 64 in
  let topo = Graph.nodes g in
  List.iter
    (fun (n : Graph.node) -> if is_source n then Hashtbl.replace assigned n.Graph.id ())
    topo;
  let in_shapes_of (n : Graph.node) =
    List.map (Graph.node_shape g) n.Graph.inputs
  in
  let build_group (anchor : Graph.node) =
    let members = Hashtbl.create 8 in
    Hashtbl.replace members anchor.Graph.id ();
    (* Absorb injective producers whose every consumer is inside the group. *)
    let prologues = ref [] in
    let rec absorb nid =
      List.iter
        (fun p ->
          let pn = Graph.node g p in
          if
            (not (Hashtbl.mem assigned p))
            && (not (Hashtbl.mem members p))
            && (not (is_source pn))
            && Op.is_injective pn.Graph.op (in_shapes_of pn)
            && (not (Op.is_anchor pn.Graph.op))
            && List.for_all (Hashtbl.mem members) (Graph.consumers g p)
          then begin
            Hashtbl.replace members p ();
            prologues := p :: !prologues;
            absorb p
          end)
        (Graph.node g nid).Graph.inputs
    in
    absorb anchor.Graph.id;
    (* Absorb the bijective single-consumer epilogue chain. *)
    let epilogues = ref [] in
    let output = ref anchor.Graph.id in
    let continue_ = ref true in
    while !continue_ do
      match Graph.consumers g !output with
      | [ c ] ->
        let cn = Graph.node g c in
        if
          (not (Hashtbl.mem assigned c))
          && Op.is_bijective cn.Graph.op (in_shapes_of cn)
          && (not (Op.is_anchor cn.Graph.op))
          && List.hd cn.Graph.inputs = !output
          && (not (List.mem !output (Graph.outputs g)))
        then begin
          Hashtbl.replace members c ();
          epilogues := c :: !epilogues;
          output := c
        end
        else continue_ := false
      | _ -> continue_ := false
    done;
    Hashtbl.iter (fun id () -> Hashtbl.replace assigned id ()) members;
    {
      anchor = anchor.Graph.id;
      prologues = List.sort compare !prologues;
      epilogues = List.rev !epilogues;
      output = !output;
    }
  in
  (* First pass: anchor-rooted groups. Second pass: leftover chains. *)
  let groups = ref [] in
  List.iter
    (fun (n : Graph.node) ->
      if (not (Hashtbl.mem assigned n.Graph.id)) && Op.is_anchor n.Graph.op then
        groups := build_group n :: !groups)
    topo;
  List.iter
    (fun (n : Graph.node) ->
      if not (Hashtbl.mem assigned n.Graph.id) then
        groups := build_group n :: !groups)
    topo;
  List.sort (fun a b -> compare a.output b.output) !groups

let group_inputs g grp =
  let members = Hashtbl.create 8 in
  List.iter
    (fun id -> Hashtbl.replace members id ())
    ((grp.anchor :: grp.prologues) @ grp.epilogues);
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  List.iter
    (fun id ->
      List.iter
        (fun p ->
          if (not (Hashtbl.mem members p)) && not (Hashtbl.mem seen p) then begin
            Hashtbl.replace seen p ();
            acc := p :: !acc
          end)
        (Graph.node g id).Graph.inputs)
    ((grp.anchor :: grp.prologues) @ grp.epilogues);
  List.rev !acc

(* Lowering of convolutions to implicit-GEMM form (paper section 5.2):
   conv2d(x, w) => reshape(matmul(reshape(w), im2col(x))). The weight
   reshape constant-folds; im2col and the output reshape fuse into the
   scheduled GEMM. Depthwise convolutions are left untouched. *)
let lower_conv_to_gemm g =
  let g' = Graph.create () in
  Graph.name g' (Graph.get_name g);
  let remap = Hashtbl.create 64 in
  let map_id id = Hashtbl.find remap id in
  List.iter
    (fun (n : Graph.node) ->
      let new_id =
        match (n.Graph.op, n.Graph.inputs) with
        | Op.Input, _ -> Graph.input g' n.Graph.shape
        | Op.Constant { value }, _ -> Graph.constant_lazy g' n.Graph.shape value
        | Op.Conv2d { stride; pad_h; pad_w }, [ x; w ] ->
          let x_shape = Graph.node_shape g x and w_shape = Graph.node_shape g w in
          (match (x_shape, w_shape, n.Graph.shape) with
          | [ nb; c; _; _ ], [ oc; _; kh; kw ], [ _; _; oh; ow ] ->
            let w_mat = Graph.reshape g' (map_id w) [ oc; c * kh * kw ] in
            let cols =
              Graph.add_op g'
                (Op.Im2col { kh; kw; stride; pad_h; pad_w })
                [ map_id x ]
            in
            let mm = Graph.matmul g' w_mat cols in
            Graph.reshape g' mm [ nb; oc; oh; ow ]
          | _ -> assert false)
        | op, inputs -> Graph.add_op g' op (List.map map_id inputs)
      in
      Hashtbl.replace remap n.Graph.id new_id)
    (Graph.nodes g);
  Graph.set_outputs g' (List.map map_id (Graph.outputs g));
  g'

(* Extract a subset of compute nodes as a standalone graph. Values flowing
   into the subset from outside (graph inputs or non-member compute nodes)
   become Input stubs, recorded in [feeds] in first-use order; constants
   consumed by members are recreated inside the extraction (sharing the
   lazy thunk with the source graph, like [rebatch]). The shard planner
   uses this to carve pipeline stages and the pre/part/post split of
   tensor parallelism out of a single-device graph. *)
type extraction = {
  sub : Graph.t;
  feeds : int list;  (* original ids bound, in order, to [sub]'s inputs *)
  yields : int list;  (* original ids exposed, in order, as [sub]'s outputs *)
}

let extract g ~nodes ~outputs =
  let members = Hashtbl.create 16 in
  List.iter
    (fun id ->
      match (Graph.node g id).Graph.op with
      | Op.Input | Op.Constant _ ->
        invalid_arg "Passes.extract: members must be compute nodes"
      | _ -> Hashtbl.replace members id ())
    nodes;
  let sub = Graph.create () in
  Graph.name sub (Graph.get_name g ^ "_sub");
  let remap = Hashtbl.create 16 in
  let feeds = ref [] in
  let feed_of id shape =
    match Hashtbl.find_opt remap id with
    | Some nid -> nid
    | None ->
      let nid = Graph.input sub shape in
      Hashtbl.replace remap id nid;
      feeds := id :: !feeds;
      nid
  in
  List.iter
    (fun (n : Graph.node) ->
      if Hashtbl.mem members n.Graph.id then begin
        let ins =
          List.map
            (fun p ->
              match Hashtbl.find_opt remap p with
              | Some nid -> nid
              | None -> (
                let pn = Graph.node g p in
                match pn.Graph.op with
                | Op.Constant { value } ->
                  let nid = Graph.constant_lazy sub pn.Graph.shape value in
                  Hashtbl.replace remap p nid;
                  nid
                | _ -> feed_of p pn.Graph.shape))
            n.Graph.inputs
        in
        Hashtbl.replace remap n.Graph.id (Graph.add_op sub n.Graph.op ins)
      end)
    (Graph.nodes g);
  let yields =
    List.map
      (fun id ->
        if not (Hashtbl.mem members id) then
          invalid_arg "Passes.extract: outputs must be member nodes";
        id)
      outputs
  in
  Graph.set_outputs sub (List.map (Hashtbl.find remap) yields);
  { sub; feeds = List.rev !feeds; yields }

(* Rebind the leading (batch) dimension of a graph. Used by the serving
   registry to derive batch-bucket variants of models that were not built
   through a [?batch]-parameterized builder (HGF files, tiny test models).
   Shapes of interior nodes are re-inferred from the rebound inputs; the
   only ops carrying literal shapes are [Input] and [Reshape], whose
   leading dims scale by [batch / old_batch] (a [-1] wildcard is left to
   the inference). Constants (weights) are batch-independent and shared
   with the source graph — including their lazy thunks, which is why
   [Plan]'s constant forcing is lock-protected. *)
let rebatch g batch =
  if batch < 1 then invalid_arg "Passes.rebatch: batch must be >= 1";
  let old_batch =
    match Graph.input_ids g with
    | [] -> invalid_arg "Passes.rebatch: graph has no inputs"
    | id :: _ -> (
      match Graph.node_shape g id with
      | b :: _ -> b
      | [] -> invalid_arg "Passes.rebatch: rank-0 input")
  in
  let scale what d =
    if d = -1 then d
    else if d mod old_batch <> 0 then
      invalid_arg
        (Printf.sprintf
           "Passes.rebatch: %s leading dim %d not divisible by batch %d" what d
           old_batch)
    else d / old_batch * batch
  in
  let rescale what = function
    | d :: rest -> scale what d :: rest
    | [] -> invalid_arg "Passes.rebatch: rank-0 shape"
  in
  let g' = Graph.create () in
  Graph.name g' (Graph.get_name g);
  let remap = Hashtbl.create 64 in
  let map_id id = Hashtbl.find remap id in
  List.iter
    (fun (n : Graph.node) ->
      let new_id =
        match n.Graph.op with
        | Op.Input -> Graph.input g' (rescale "input" n.Graph.shape)
        | Op.Constant { value } -> Graph.constant_lazy g' n.Graph.shape value
        | Op.Reshape dims ->
          Graph.add_op g'
            (Op.Reshape (rescale "reshape" dims))
            (List.map map_id n.Graph.inputs)
        | op -> Graph.add_op g' op (List.map map_id n.Graph.inputs)
      in
      Hashtbl.replace remap n.Graph.id new_id)
    (Graph.nodes g);
  Graph.set_outputs g' (List.map map_id (Graph.outputs g));
  g'
