(** Graph-level optimization passes (step 2 of the paper's Fig. 10) and the
    fusion partitioning that feeds post-scheduling fusion. *)

val constant_fold : Graph.t -> Graph.t
(** Evaluate operators whose inputs are all constants (lazily — weights are
    only materialized if someone forces them). Typical win: reshaping or
    transposing weight tensors at compile time (e.g. OIHW conv weights to
    the [oc, c*k*k] matrix of implicit-GEMM). *)

val dead_code_elim : Graph.t -> Graph.t
(** Drop nodes not reachable from the outputs. *)

val optimize : Graph.t -> Graph.t
(** [constant_fold] then [dead_code_elim]. *)

val lower_conv_to_gemm : Graph.t -> Graph.t
(** Rewrite every [Conv2d] as
    [reshape(matmul(reshape(w), im2col(x)))] — implicit-GEMM convolution
    (paper §5.2). The weight reshape constant-folds away; the [im2col] and
    output [reshape] fuse into the scheduled matmul. Depthwise convolutions
    are untouched. *)

(** A fusion group: one anchor plus the injective prologues and bijective
    epilogues absorbed around it (paper §5.2 step 1). Anchor-less groups
    (a leftover injective chain) use the chain head as [anchor]. *)
type group = {
  anchor : int;
  prologues : int list;  (** absorbed producer ids, topological order *)
  epilogues : int list;  (** absorbed consumer chain, in application order *)
  output : int;  (** final node of the group *)
}

val partition : Graph.t -> group list
(** Partition all non-[Input]/[Constant] nodes into fusion groups, in
    topological order of their outputs. Absorption rules:
    - a producer is absorbed as prologue if it is injective and the group is
      its only consumer;
    - a consumer is absorbed as epilogue if it is bijective, consumes the
      group output as its first operand, and is that output's only consumer.
    Every node belongs to exactly one group. *)

val group_inputs : Graph.t -> group -> int list
(** External node ids feeding the group, in deterministic order: the
    (prologue-substituted) operand order of the anchor followed by extra
    epilogue operands. *)

(** A subgraph carved out of a larger graph, with Input stubs standing in
    for values produced outside it. *)
type extraction = {
  sub : Graph.t;  (** the standalone subgraph *)
  feeds : int list;
      (** original-graph node ids whose values must be bound, in order, to
          [sub]'s inputs at run time *)
  yields : int list;
      (** original-graph node ids that [sub]'s outputs (same order)
          correspond to *)
}

val extract : Graph.t -> nodes:int list -> outputs:int list -> extraction
(** [extract g ~nodes ~outputs] rebuilds the compute nodes [nodes] (ids
    in [g]) as a standalone graph. Member operands produced outside the
    member set — graph inputs or non-member compute nodes — become Input
    stubs recorded in [feeds]; constants are recreated inside the
    extraction, sharing their lazy thunks with [g]. [outputs] (ids in
    [g], all members) become the extraction's outputs. The shard
    planner's pipeline-staging and tensor-parallel partition passes are
    built on this. Raises [Invalid_argument] when a member or output id
    is not a compute node of [g]. *)

val rebatch : Graph.t -> int -> Graph.t
(** [rebatch g b] rebuilds [g] with its leading (batch) dimension rebound
    to [b]: every input's leading dim — and every [Reshape] target's
    leading dim — is scaled by [b / old_batch] (old batch = the first
    input's leading dim, which must divide the dims it scales); all other
    shapes are re-inferred. Constants are shared with [g], thunks
    included. The serving registry uses this to derive batch-bucket plan
    variants from HGF files. Raises [Invalid_argument] when a leading dim
    does not scale or the result fails shape inference. *)
