module Tensor = Hidet_tensor.Tensor

let inline_data_threshold = 4096

(* --- tiny s-expression layer ---------------------------------------------- *)

type sexp = Atom of string | List of sexp list

let rec print_sexp buf = function
  | Atom s -> Buffer.add_string buf s
  | List items ->
    Buffer.add_char buf '(';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ' ';
        print_sexp buf item)
      items;
    Buffer.add_char buf ')'

exception Parse_error of int * string

let parse_sexps (s : string) : sexp list =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
        incr pos;
        skip_ws ()
      | ';' ->
        while !pos < n && s.[!pos] <> '\n' do incr pos done;
        skip_ws ()
      | _ -> ()
  in
  let atom () =
    if s.[!pos] = '"' then begin
      incr pos;
      let b = Buffer.create 16 in
      let rec chars () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
            incr pos;
            if !pos >= n then fail "unterminated escape";
            Buffer.add_char b s.[!pos];
            incr pos;
            chars ()
          | c ->
            Buffer.add_char b c;
            incr pos;
            chars ()
      in
      chars ();
      Atom (Buffer.contents b)
    end
    else begin
      let start = !pos in
      while
        !pos < n
        && match s.[!pos] with ' ' | '\t' | '\n' | '\r' | '(' | ')' -> false | _ -> true
      do
        incr pos
      done;
      if start = !pos then fail "empty atom";
      Atom (String.sub s start (!pos - start))
    end
  in
  let rec expr () =
    skip_ws ();
    if !pos >= n then fail "unexpected end of input";
    if s.[!pos] = '(' then begin
      incr pos;
      let items = ref [] in
      let rec loop () =
        skip_ws ();
        if !pos >= n then fail "unterminated list";
        if s.[!pos] = ')' then incr pos
        else begin
          items := expr () :: !items;
          loop ()
        end
      in
      loop ();
      List (List.rev !items)
    end
    else atom ()
  in
  let out = ref [] in
  skip_ws ();
  while !pos < n do
    out := expr () :: !out;
    skip_ws ()
  done;
  List.rev !out

(* --- op <-> sexp ----------------------------------------------------------- *)

let f2s f = Printf.sprintf "%h" f
let s2f s = try float_of_string s with _ -> failwith ("bad float " ^ s)
let i2a i = Atom (string_of_int i)
let ints_of = List.map (fun i -> i2a i)

let op_to_sexp (op : Op.t) : sexp =
  let l name args = List (Atom name :: args) in
  match op with
  | Op.Input -> l "input" []
  | Op.Constant { value } ->
    let t = Lazy.force value in
    if Tensor.numel t <= inline_data_threshold then
      l "constant"
        [ List (Atom "data" :: Array.to_list (Array.map (fun v -> Atom (f2s v)) (Tensor.data t))) ]
    else l "constant" [ Atom "random" ]
  | Op.Matmul -> l "matmul" []
  | Op.Conv2d { stride; pad_h; pad_w } -> l "conv2d" (ints_of [ stride; pad_h; pad_w ])
  | Op.Depthwise_conv2d { stride; padding } -> l "dwconv2d" (ints_of [ stride; padding ])
  | Op.Pool2d { kind; kernel; stride; padding } ->
    l "pool2d"
      (Atom (match kind with Op.Max_pool -> "max" | Op.Avg_pool -> "avg")
      :: ints_of [ kernel; stride; padding ])
  | Op.Global_avg_pool -> l "global_avg_pool" []
  | Op.Unary Op.Relu -> l "relu" []
  | Op.Unary Op.Gelu -> l "gelu" []
  | Op.Unary Op.Tanh_act -> l "tanh" []
  | Op.Unary Op.Sigmoid -> l "sigmoid" []
  | Op.Unary (Op.Scale_by f) -> l "scale" [ Atom (f2s f) ]
  | Op.Unary (Op.Clip (lo, hi)) -> l "clip" [ Atom (f2s lo); Atom (f2s hi) ]
  | Op.Binary Op.Add -> l "add" []
  | Op.Binary Op.Sub -> l "sub" []
  | Op.Binary Op.Mul -> l "mul" []
  | Op.Bias_add -> l "bias_add" []
  | Op.Scale_shift -> l "scale_shift" []
  | Op.Softmax -> l "softmax" []
  | Op.Layernorm { eps } -> l "layernorm" [ Atom (f2s eps) ]
  | Op.Reshape target -> l "reshape" (ints_of target)
  | Op.Transpose perm -> l "transpose" (ints_of perm)
  | Op.Concat { axis } -> l "concat" [ i2a axis ]
  | Op.Im2col { kh; kw; stride; pad_h; pad_w } ->
    l "im2col" (ints_of [ kh; kw; stride; pad_h; pad_w ])
  | Op.Embedding -> l "embedding" []

let int_of = function Atom a -> (try int_of_string a with _ -> failwith ("bad int " ^ a)) | List _ -> failwith "expected int"
let ints_from = List.map int_of

(* [shape] and [node id] supply context for constants. *)
let op_of_sexp ~shape ~node_id (s : sexp) : Op.t =
  match s with
  | List (Atom name :: args) -> (
    match (name, args) with
    | "input", [] -> Op.Input
    | "constant", [ Atom "random" ] ->
      Op.Constant
        { value = lazy (Tensor.rand ~seed:(node_id + 0x517e) shape) }
    | "constant", [ List (Atom "data" :: values) ] ->
      let data =
        Array.of_list
          (List.map (function Atom a -> s2f a | List _ -> failwith "bad data") values)
      in
      Op.Constant { value = lazy (Tensor.of_array shape data) }
    | "matmul", [] -> Op.Matmul
    | "conv2d", [ a; b; c ] ->
      Op.Conv2d { stride = int_of a; pad_h = int_of b; pad_w = int_of c }
    | "dwconv2d", [ a; b ] ->
      Op.Depthwise_conv2d { stride = int_of a; padding = int_of b }
    | "pool2d", [ Atom kind; a; b; c ] ->
      Op.Pool2d
        {
          kind = (match kind with "max" -> Op.Max_pool | "avg" -> Op.Avg_pool | _ -> failwith "bad pool kind");
          kernel = int_of a;
          stride = int_of b;
          padding = int_of c;
        }
    | "global_avg_pool", [] -> Op.Global_avg_pool
    | "relu", [] -> Op.Unary Op.Relu
    | "gelu", [] -> Op.Unary Op.Gelu
    | "tanh", [] -> Op.Unary Op.Tanh_act
    | "sigmoid", [] -> Op.Unary Op.Sigmoid
    | "scale", [ Atom f ] -> Op.Unary (Op.Scale_by (s2f f))
    | "clip", [ Atom lo; Atom hi ] -> Op.Unary (Op.Clip (s2f lo, s2f hi))
    | "add", [] -> Op.Binary Op.Add
    | "sub", [] -> Op.Binary Op.Sub
    | "mul", [] -> Op.Binary Op.Mul
    | "bias_add", [] -> Op.Bias_add
    | "scale_shift", [] -> Op.Scale_shift
    | "softmax", [] -> Op.Softmax
    | "layernorm", [ Atom eps ] -> Op.Layernorm { eps = s2f eps }
    | "reshape", target -> Op.Reshape (ints_from target)
    | "transpose", perm -> Op.Transpose (ints_from perm)
    | "concat", [ a ] -> Op.Concat { axis = int_of a }
    | "im2col", [ a; b; c; d; e ] ->
      Op.Im2col
        { kh = int_of a; kw = int_of b; stride = int_of c; pad_h = int_of d; pad_w = int_of e }
    | "embedding", [] -> Op.Embedding
    | _ -> failwith (Printf.sprintf "unknown operator %s" name))
  | _ -> failwith "expected operator list"

(* --- graph <-> text --------------------------------------------------------- *)

let escape_name s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      (match c with '"' | '\\' -> Buffer.add_char b '\\' | _ -> ());
      Buffer.add_char b c)
    s;
  Buffer.contents b

let to_string (g : Graph.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "(graph \"%s\"\n" (escape_name (Graph.get_name g)));
  List.iter
    (fun (n : Graph.node) ->
      let fields =
        [ i2a n.Graph.id; op_to_sexp n.Graph.op ]
        @ (if n.Graph.inputs = [] then []
           else [ List (Atom "inputs" :: ints_of n.Graph.inputs) ])
        @ [ List (Atom "shape" :: ints_of n.Graph.shape) ]
      in
      Buffer.add_string buf "  ";
      print_sexp buf (List (Atom "node" :: fields));
      Buffer.add_char buf '\n')
    (Graph.nodes g);
  Buffer.add_string buf "  ";
  print_sexp buf (List (Atom "outputs" :: ints_of (Graph.outputs g)));
  Buffer.add_string buf ")\n";
  Buffer.contents buf

let field name items =
  List.find_map
    (function List (Atom n :: rest) when n = name -> Some rest | _ -> None)
    items

let of_string s =
  let top =
    match parse_sexps s with
    | [ List (Atom "graph" :: Atom name :: rest) ] -> (name, rest)
    | _ -> failwith "Graph_io.of_string: expected (graph \"name\" ...)"
  in
  let name, items = top in
  let g = Graph.create () in
  Graph.name g name;
  let remap = Hashtbl.create 64 in
  let outputs = ref [] in
  List.iter
    (fun item ->
      match item with
      | List (Atom "node" :: i2a_id :: op_sexp :: fields) ->
        let id = int_of i2a_id in
        let inputs =
          match field "inputs" fields with Some l -> ints_from l | None -> []
        in
        let shape =
          match field "shape" fields with
          | Some l -> ints_from l
          | None -> failwith "node without shape"
        in
        let op = op_of_sexp ~shape ~node_id:id op_sexp in
        let new_id =
          match op with
          | Op.Input -> Graph.input g shape
          | Op.Constant { value } -> Graph.constant_lazy g shape value
          | op ->
            let mapped =
              List.map
                (fun i ->
                  match Hashtbl.find_opt remap i with
                  | Some x -> x
                  | None -> failwith (Printf.sprintf "forward reference to node %d" i))
                inputs
            in
            let nid = Graph.add_op g op mapped in
            let got = Graph.node_shape g nid in
            if got <> shape then
              failwith
                (Printf.sprintf "node %d: recorded shape disagrees with inference" id);
            nid
        in
        Hashtbl.replace remap id new_id
      | List (Atom "outputs" :: ids) ->
        outputs := List.map (fun i -> Hashtbl.find remap (int_of i)) ids
      | _ -> failwith "unexpected item in graph")
    items;
  if !outputs = [] then failwith "graph without outputs";
  Graph.set_outputs g !outputs;
  g

let of_string s =
  try of_string s with
  | Parse_error (pos, msg) ->
    failwith (Printf.sprintf "Graph_io.of_string: parse error at %d: %s" pos msg)
  | Failure msg -> failwith ("Graph_io.of_string: " ^ msg)
  | Invalid_argument msg -> failwith ("Graph_io.of_string: invalid graph: " ^ msg)

let save g path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string g))

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      of_string (really_input_string ic (in_channel_length ic)))
