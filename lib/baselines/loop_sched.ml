open Hidet_ir
module Compiled = Hidet_sched.Compiled

type sched = {
  tile_m : int;
  tile_n : int;
  tile_k : int;
  thread_m : int;
  thread_n : int;
  use_shared : bool;
  unroll : bool;
}

let divides a b = a > 0 && b mod a = 0

let check s ~m ~n ~k =
  let err fmt = Printf.ksprintf (fun e -> Error e) fmt in
  if not (divides s.tile_m m) then err "tile_m %d does not divide m=%d" s.tile_m m
  else if not (divides s.tile_n n) then err "tile_n %d does not divide n=%d" s.tile_n n
  else if not (divides s.tile_k k) then err "tile_k %d does not divide k=%d" s.tile_k k
  else if not (divides s.thread_m s.tile_m) then err "thread_m does not divide tile_m"
  else if not (divides s.thread_n s.tile_n) then err "thread_n does not divide tile_n"
  else
    let threads = s.tile_m / s.thread_m * (s.tile_n / s.thread_n) in
    (* TVM templates bind at least one warp per block. *)
    if threads < 32 || threads > 1024 then
      err "block of %d threads out of [32, 1024]" threads
    else if s.thread_m * s.thread_n > 160 then err "register tile too large"
    else Ok ()

let divisors_desc n =
  List.filter (fun d -> n mod d = 0) (List.init n (fun i -> n - i))

let first_valid ~m ~n ~k =
  (* Deterministic divisor search: prefer larger (but capped) tiles and
     modest register tiles, first candidate that passes [check] wins.
     [None] exactly when the space is empty (e.g. prime extents with no
     usable factorization — the paper's Fig. 16 failure mode). *)
  let cap lim xs = List.filter (fun d -> d <= lim) xs in
  let tms = cap 64 (divisors_desc m)
  and tns = cap 64 (divisors_desc n)
  and tks = cap 32 (divisors_desc k) in
  let pick () =
    List.find_map
      (fun tile_m ->
        List.find_map
          (fun tile_n ->
            List.find_map
              (fun tile_k ->
                List.find_map
                  (fun thread_m ->
                    List.find_map
                      (fun thread_n ->
                        let s =
                          { tile_m; tile_n; tile_k; thread_m; thread_n;
                            use_shared = true; unroll = false }
                        in
                        match check s ~m ~n ~k with
                        | Ok () -> Some s
                        | Error _ -> None)
                      (cap 8 (divisors_desc tile_n)))
                  (cap 8 (divisors_desc tile_m)))
              tks)
          tns)
      tms
  in
  pick ()

let sched_to_string s =
  Printf.sprintf "t%dx%dx%d_th%dx%d%s%s" s.tile_m s.tile_n s.tile_k s.thread_m
    s.thread_n
    (if s.use_shared then "_sh" else "")
    (if s.unroll then "_u" else "")

let lets bindings body =
  List.fold_right (fun (v, e) acc -> Stmt.let_ v e acc) bindings body

(* The generic loop-oriented GEMM kernel: what split/reorder/bind/cache_read
   produce. [load_a b row col] / [load_b b row col] supply operand elements
   (direct buffer loads for matmul; implicit im2col indexing for conv).
   [store_c b row col v] writes one output element. *)
let gemm_generic ~name ~batch ~ins ~out ~temps ~m ~n ~k ~load_a ~load_b
    ~store_c s =
  (match check s ~m ~n ~k with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Loop_sched.gemm %s: %s" name e));
  let ( +: ) = Expr.add and ( *: ) = Expr.mul in
  let ( /: ) = Expr.div and ( %: ) = Expr.modulo and ( <: ) = Expr.lt in
  let threads_n = s.tile_n / s.thread_n in
  let threads_m = s.tile_m / s.thread_m in
  let block_dim = threads_m * threads_n in
  let gm = m / s.tile_m and gn = n / s.tile_n in
  let grid = batch * gm * gn in
  let smem_a = Buffer.create ~scope:Buffer.Shared "LSmemA" [ s.tile_m; s.tile_k ] in
  let smem_b = Buffer.create ~scope:Buffer.Shared "LSmemB" [ s.tile_k; s.tile_n ] in
  let regs_c = Buffer.create ~scope:Buffer.Register "LRegsC" [ s.thread_m; s.thread_n ] in
  let regs_af = Buffer.create ~scope:Buffer.Register "LRegsAF" [ s.thread_m ] in
  let regs_bf = Buffer.create ~scope:Buffer.Register "LRegsBF" [ s.thread_n ] in
  let v_b = Var.fresh "b" and v_im = Var.fresh "im" and v_jn = Var.fresh "jn" in
  let v_ty = Var.fresh "ty" and v_tx = Var.fresh "tx" in
  let v_row0 = Var.fresh "row0" and v_col0 = Var.fresh "col0" in
  let bid = Expr.Block_idx and tid = Expr.Thread_idx in
  let header body =
    lets
      [
        (v_jn, bid %: Expr.int gn);
        (v_im, bid /: Expr.int gn %: Expr.int gm);
        (v_b, bid /: Expr.int (gm * gn));
        (v_ty, tid /: Expr.int threads_n);
        (v_tx, tid %: Expr.int threads_n);
        (v_row0, (Expr.var v_im *: Expr.int s.tile_m) +: (Expr.var v_ty *: Expr.int s.thread_m));
        (v_col0, (Expr.var v_jn *: Expr.int s.tile_n) +: (Expr.var v_tx *: Expr.int s.thread_n));
      ]
      body
  in
  let b_e = Expr.var v_b in
  let row0 = Expr.var v_row0 and col0 = Expr.var v_col0 in
  let tile_row0 = Expr.var v_im *: Expr.int s.tile_m in
  let tile_col0 = Expr.var v_jn *: Expr.int s.tile_n in
  (* Cooperative flat staging of a (rows x cols) strip into shared memory. *)
  let stage smem rows cols elem =
    let elems = rows * cols in
    let per_thread = (elems + block_dim - 1) / block_dim in
    let v_e = Var.fresh "e" in
    let idx = (Expr.var v_e *: Expr.int block_dim) +: tid in
    Stmt.for_ ~unroll:s.unroll v_e (Expr.int per_thread)
      (Stmt.if_
         (idx <: Expr.int elems)
         (Stmt.store smem
            [ idx /: Expr.int cols; idx %: Expr.int cols ]
            (elem (idx /: Expr.int cols) (idx %: Expr.int cols))))
  in
  let init =
    let vi = Var.fresh "i" and vj = Var.fresh "j" in
    Stmt.for_ vi (Expr.int s.thread_m)
      (Stmt.for_ vj (Expr.int s.thread_n)
         (Stmt.store regs_c [ Expr.var vi; Expr.var vj ] (Expr.float 0.)))
  in
  let v_k0 = Var.fresh "k0" in
  let k0 = Expr.var v_k0 in
  let kbase = k0 *: Expr.int s.tile_k in
  let v_kk = Var.fresh "kk" in
  let kk = Expr.var v_kk in
  (* Per-kk fragment loads, then the register FMA tile. *)
  let fragment_loads =
    let vi = Var.fresh "i" and vj = Var.fresh "j" in
    Stmt.seq
      [
        Stmt.for_ ~unroll:s.unroll vi (Expr.int s.thread_m)
          (Stmt.store regs_af [ Expr.var vi ]
             (if s.use_shared then
                Expr.load smem_a
                  [ (Expr.var v_ty *: Expr.int s.thread_m) +: Expr.var vi; kk ]
              else load_a b_e (row0 +: Expr.var vi) (kbase +: kk)));
        Stmt.for_ ~unroll:s.unroll vj (Expr.int s.thread_n)
          (Stmt.store regs_bf [ Expr.var vj ]
             (if s.use_shared then
                Expr.load smem_b
                  [ kk; (Expr.var v_tx *: Expr.int s.thread_n) +: Expr.var vj ]
              else load_b b_e (kbase +: kk) (col0 +: Expr.var vj)));
      ]
  in
  let fma =
    let vi = Var.fresh "i" and vj = Var.fresh "j" in
    Stmt.for_ ~unroll:s.unroll vi (Expr.int s.thread_m)
      (Stmt.for_ ~unroll:s.unroll vj (Expr.int s.thread_n)
         (Stmt.store regs_c
            [ Expr.var vi; Expr.var vj ]
            (Expr.add
               (Expr.load regs_c [ Expr.var vi; Expr.var vj ])
               (Expr.mul
                  (Expr.load regs_af [ Expr.var vi ])
                  (Expr.load regs_bf [ Expr.var vj ])))))
  in
  let main_iter =
    if s.use_shared then
      Stmt.seq
        [
          stage smem_a s.tile_m s.tile_k (fun r c ->
              load_a b_e (tile_row0 +: r) (kbase +: c));
          stage smem_b s.tile_k s.tile_n (fun r c ->
              load_b b_e (kbase +: r) (tile_col0 +: c));
          Stmt.sync;
          Stmt.for_ ~unroll:s.unroll v_kk (Expr.int s.tile_k)
            (Stmt.seq [ fragment_loads; fma ]);
          Stmt.sync;
        ]
    else
      Stmt.for_ ~unroll:s.unroll v_kk (Expr.int s.tile_k)
        (Stmt.seq [ fragment_loads; fma ])
  in
  let main_loop = Stmt.for_ v_k0 (Expr.int (k / s.tile_k)) main_iter in
  let writeback =
    let vi = Var.fresh "i" and vj = Var.fresh "j" in
    Stmt.for_ vi (Expr.int s.thread_m)
      (Stmt.for_ vj (Expr.int s.thread_n)
         (store_c b_e (row0 +: Expr.var vi) (col0 +: Expr.var vj)
            (Expr.load regs_c [ Expr.var vi; Expr.var vj ])))
  in
  let body = Simplify.stmt (header (Stmt.seq [ init; main_loop; writeback ])) in
  let shared = if s.use_shared then [ smem_a; smem_b ] else [] in
  let kernel =
    Kernel.create ~shared ~regs:[ regs_c; regs_af; regs_bf ] ~name
      ~params:(ins @ temps @ [ out ])
      ~grid_dim:grid ~block_dim body
  in
  { Compiled.name; kernels = [ kernel ]; ins; out; temps; key = None }

let gemm ?(batch = 1) ?(a_batched = true) ?(b_batched = false) ~m ~n ~k s =
  let a = Buffer.create "A" (if a_batched then [ batch; m; k ] else [ m; k ]) in
  let b = Buffer.create "B" (if b_batched then [ batch; k; n ] else [ k; n ]) in
  let c = Buffer.create "C" [ batch; m; n ] in
  let name =
    Printf.sprintf "loop_matmul_%dx%dx%dx%d_%s" batch m n k (sched_to_string s)
  in
  gemm_generic ~name ~batch ~ins:[ a; b ] ~out:c ~temps:[] ~m ~n ~k
    ~load_a:(fun be row col ->
      Expr.load a (if a_batched then [ be; row; col ] else [ row; col ]))
    ~load_b:(fun be row col ->
      Expr.load b (if b_batched then [ be; row; col ] else [ row; col ]))
    ~store_c:(fun be row col v -> Stmt.store c [ be; row; col ] v)
    s

let conv2d ~x_shape ~w_shape ~stride ~pad_h ~pad_w s =
  match (x_shape, w_shape) with
  | [ nb; c; h; w ], [ oc; c'; kh; kw ] when c = c' ->
    let oh = ((h + (2 * pad_h) - kh) / stride) + 1 in
    let ow = ((w + (2 * pad_w) - kw) / stride) + 1 in
    let m = oc and n = oh * ow and k = c * kh * kw in
    let x = Buffer.create "x" x_shape in
    let wt = Buffer.create "w" w_shape in
    let out = Buffer.create "y" [ nb; oc; oh; ow ] in
    let ( +: ) = Expr.add and ( -: ) = Expr.sub and ( *: ) = Expr.mul in
    let ( /: ) = Expr.div and ( %: ) = Expr.modulo in
    let name =
      Printf.sprintf "loop_conv_%dx%dx%dx%d_oc%d_k%dx%d_%s" nb c h w oc kh kw
        (sched_to_string s)
    in
    gemm_generic ~name ~batch:nb ~ins:[ x; wt ] ~out ~temps:[] ~m ~n ~k
      ~load_a:(fun _ row col ->
        (* weight element: row = oc index, col = (ci, khi, kwi) *)
        Expr.load wt
          [
            row;
            col /: Expr.int (kh * kw);
            col /: Expr.int kw %: Expr.int kh;
            col %: Expr.int kw;
          ])
      ~load_b:(fun be row col ->
        (* implicit im2col element: row = (ci, khi, kwi), col = pixel *)
        let ci = row /: Expr.int (kh * kw) in
        let khi = row /: Expr.int kw %: Expr.int kh in
        let kwi = row %: Expr.int kw in
        let hi = (col /: Expr.int ow *: Expr.int stride) +: khi -: Expr.int pad_h in
        let wi = (col %: Expr.int ow *: Expr.int stride) +: kwi -: Expr.int pad_w in
        Expr.select
          (Expr.and_
             (Expr.and_ (Expr.ge hi (Expr.int 0)) (Expr.lt hi (Expr.int h)))
             (Expr.and_ (Expr.ge wi (Expr.int 0)) (Expr.lt wi (Expr.int w))))
          (Expr.load x [ be; ci; hi; wi ])
          (Expr.float 0.))
      ~store_c:(fun be row col v ->
        Stmt.store out [ be; row; col /: Expr.int ow; col %: Expr.int ow ] v)
      s
  | _ -> invalid_arg "Loop_sched.conv2d: expected NCHW x OIHW"

type dw_sched = { dw_tile_p : int; dw_thread_p : int; dw_unroll : bool }

let dw_check s ~oh ~ow =
  let p = oh * ow in
  let err fmt = Printf.ksprintf (fun e -> Error e) fmt in
  if not (divides s.dw_tile_p p) then
    err "dw_tile_p %d does not divide %d output pixels" s.dw_tile_p p
  else if not (divides s.dw_thread_p s.dw_tile_p) then
    err "dw_thread_p does not divide dw_tile_p"
  else
    let threads = s.dw_tile_p / s.dw_thread_p in
    if threads < 1 || threads > 1024 then err "bad thread count %d" threads
    else Ok ()

let first_valid_dw ~oh ~ow =
  let p = oh * ow in
  List.find_map
    (fun dw_tile_p ->
      List.find_map
        (fun dw_thread_p ->
          let s = { dw_tile_p; dw_thread_p; dw_unroll = false } in
          match dw_check s ~oh ~ow with Ok () -> Some s | Error _ -> None)
        (List.filter (fun d -> d <= 8) (divisors_desc dw_tile_p)))
    (List.filter (fun d -> d <= 256) (divisors_desc p))

let depthwise ~x_shape ~w_shape ~stride ~padding s =
  match (x_shape, w_shape) with
  | [ nb; c; h; w ], [ c'; 1; kh; kw ] when c = c' ->
    let oh = ((h + (2 * padding) - kh) / stride) + 1 in
    let ow = ((w + (2 * padding) - kw) / stride) + 1 in
    (match dw_check s ~oh ~ow with
    | Ok () -> ()
    | Error e -> invalid_arg (Printf.sprintf "Loop_sched.depthwise: %s" e));
    let p = oh * ow in
    let x = Buffer.create "x" x_shape in
    let wt = Buffer.create "w" w_shape in
    let out = Buffer.create "y" [ nb; c; oh; ow ] in
    let wregs = Buffer.create ~scope:Buffer.Register "wregs" [ kh * kw ] in
    let threads = s.dw_tile_p / s.dw_thread_p in
    let tiles = p / s.dw_tile_p in
    let grid = nb * c * tiles in
    let ( +: ) = Expr.add and ( -: ) = Expr.sub and ( *: ) = Expr.mul in
    let ( /: ) = Expr.div and ( %: ) = Expr.modulo in
    let v_b = Var.fresh "b" and v_c = Var.fresh "ci" and v_t = Var.fresh "t" in
    let bid = Expr.Block_idx and tid = Expr.Thread_idx in
    let v_kidx = Var.fresh "kidx" in
    let load_weights =
      Stmt.for_ ~unroll:s.dw_unroll v_kidx
        (Expr.int (kh * kw))
        (Stmt.store wregs [ Expr.var v_kidx ]
           (Expr.load wt
              [
                Expr.var v_c;
                Expr.int 0;
                Expr.var v_kidx /: Expr.int kw;
                Expr.var v_kidx %: Expr.int kw;
              ]))
    in
    let v_e = Var.fresh "e" and v_r0 = Var.fresh "r0" and v_r1 = Var.fresh "r1" in
    let pixel =
      (Expr.var v_t *: Expr.int s.dw_tile_p)
      +: (tid *: Expr.int s.dw_thread_p)
      +: Expr.var v_e
    in
    let acc = Buffer.create ~scope:Buffer.Register "dw_acc" [ 1 ] in
    let compute =
      let ohi = pixel /: Expr.int ow and owi = pixel %: Expr.int ow in
      let hi = (ohi *: Expr.int stride) +: Expr.var v_r0 -: Expr.int padding in
      let wi = (owi *: Expr.int stride) +: Expr.var v_r1 -: Expr.int padding in
      Stmt.seq
        [
          Stmt.store acc [ Expr.int 0 ] (Expr.float 0.);
          Stmt.for_ ~unroll:s.dw_unroll v_r0 (Expr.int kh)
            (Stmt.for_ ~unroll:s.dw_unroll v_r1 (Expr.int kw)
               (Stmt.store acc [ Expr.int 0 ]
                  (Expr.add
                     (Expr.load acc [ Expr.int 0 ])
                     (Expr.mul
                        (Expr.select
                           (Expr.and_
                              (Expr.and_ (Expr.ge hi (Expr.int 0))
                                 (Expr.lt hi (Expr.int h)))
                              (Expr.and_ (Expr.ge wi (Expr.int 0))
                                 (Expr.lt wi (Expr.int w))))
                           (Expr.load x [ Expr.var v_b; Expr.var v_c; hi; wi ])
                           (Expr.float 0.))
                        (Expr.load wregs
                           [ (Expr.var v_r0 *: Expr.int kw) +: Expr.var v_r1 ])))));
          Stmt.store out
            [ Expr.var v_b; Expr.var v_c; ohi; owi ]
            (Expr.load acc [ Expr.int 0 ]);
        ]
    in
    let body =
      lets
        [
          (v_t, bid %: Expr.int tiles);
          (v_c, bid /: Expr.int tiles %: Expr.int c);
          (v_b, bid /: Expr.int (tiles * c));
        ]
        (Stmt.seq
           [
             load_weights;
             Stmt.for_ ~unroll:s.dw_unroll v_e (Expr.int s.dw_thread_p) compute;
           ])
    in
    let name =
      Printf.sprintf "loop_dwconv_%dx%dx%dx%d_k%d_p%d_t%d" nb c h w kh
        s.dw_tile_p s.dw_thread_p
    in
    let kernel =
      Kernel.create ~regs:[ wregs; acc ] ~name ~params:[ x; wt; out ]
        ~grid_dim:grid ~block_dim:threads (Simplify.stmt body)
    in
    { Compiled.name; kernels = [ kernel ]; ins = [ x; wt ]; out; temps = []; key = None }
  | _ -> invalid_arg "Loop_sched.depthwise: expected NCHW x [c,1,kh,kw]"
