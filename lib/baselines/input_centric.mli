(** Input-centric schedule spaces and tuners: the AutoTVM-like and
    Ansor-like baselines (paper §§2.3, 3.3, 6).

    Both search the loop-oriented space of {!Loop_sched}, where every tile
    factor must divide the corresponding loop extent. The modeled template
    splits each output dimension into 4 ordered factors (grid / virtual
    thread / thread / register — TVM's conv2d and dense templates) and the
    reduction into 2, so the space size is a product of ordered-factorization
    counts — 10^4 to 10^8 for ResNet-50 convolutions (paper Fig. 7), and
    nearly empty for prime extents (Fig. 16).

    AutoTVM-like tunes by random search with a fixed budget (1000 trials);
    Ansor-like by evolutionary search (800 trials), which finds better
    optima in the same space. Neither space can express double buffering.

    Measurement runs through the same parallel path as Hidet's tuner
    (pre-sampled batches fanned across domains — AutoTVM's measurement
    workers): only wall clock improves; the *simulated* sequential cost
    ([trials x seconds_per_trial], the Fig. 14 axis) and the selected
    schedule are identical to the sequential implementation's. *)

type strategy = Random_search | Evolutionary

val seconds_per_trial : float

(** {1 Space cardinality (Fig. 7)} *)

val ordered_factorizations : int -> int -> float
(** [ordered_factorizations n j]: number of ways to write [n] as an ordered
    product of [j] positive factors. *)

val matmul_space_size : m:int -> n:int -> k:int -> float
val conv_space_size : x_shape:int list -> w_shape:int list -> stride:int -> pad_h:int -> pad_w:int -> float
val depthwise_space_size : oh:int -> ow:int -> float

(** {1 Samplers} *)

val random_factorization : Random.State.t -> int -> int -> int array
(** Random ordered factorization of [n] into [j] factors (product = [n]). *)

val sample_gemm_sched :
  Random.State.t -> m:int -> n:int -> k:int -> Loop_sched.sched
(** A uniform-ish random point of the modeled space, mapped onto the
    realizable knobs; may fail [Loop_sched.check] (invalid candidates cost a
    trial, as on real hardware). *)

val sample_dw_sched : Random.State.t -> p:int -> Loop_sched.dw_sched

(** {1 Tuners} *)

type tuned = {
  compiled : Hidet_sched.Compiled.t;
  latency : float;
  trials : int;
  simulated_seconds : float;
      (** [trials x seconds_per_trial]: the sequential measure-one-at-a-time
          cost model, deliberately unchanged by parallel measurement *)
  wall_seconds : float;  (** actual tuner time on this machine *)
}

val tune_gemm :
  ?key:string ->
  strategy:strategy ->
  trials:int ->
  device:Hidet_gpu.Device.t ->
  seed:int ->
  m:int ->
  n:int ->
  k:int ->
  compile:(Loop_sched.sched -> Hidet_sched.Compiled.t) ->
  unit ->
  tuned option
(** [None] when no sampled candidate is feasible (e.g. prime extents).
    [?key] labels the workload in trace spans and tuning-log records; the
    engine label is derived from [strategy] ("autotvm" / "ansor"). *)

val tune_depthwise :
  ?key:string ->
  strategy:strategy ->
  trials:int ->
  device:Hidet_gpu.Device.t ->
  seed:int ->
  p:int ->
  compile:(Loop_sched.dw_sched -> Hidet_sched.Compiled.t) ->
  unit ->
  tuned option

(** {1 Engines} *)

module Autotvm : Hidet_runtime.Engine.S
module Ansor : Hidet_runtime.Engine.S

val autotvm_trials : int
val ansor_trials : int

val compile_with :
  name:string ->
  strategy:strategy ->
  trials:int ->
  Hidet_gpu.Device.t ->
  Hidet_graph.Graph.t ->
  Hidet_runtime.Engine.result
(** Shared engine implementation (exposed for tests and ablations). *)
