(** The declarative loop-oriented scheduling substrate: the kernel structure
    that TVM-style [split] / [reorder] / [bind] / [cache_read] /
    [cache_write] / [unroll] primitives produce (paper §2.3, Table 2).

    Two deliberate, paper-central restrictions versus the task-mapping
    templates:

    - {b input-centric tiling}: every tile factor must divide its loop
      extent ("to avoid conditional if-else branches, existing frameworks
      only cover perfect tile sizes", §3.3) — enforced by {!check};
    - {b no software pipelining}: the loop structure interleaves load,
      barrier, compute, barrier; double buffering is inexpressible with the
      declarative primitives (§3.1), so every generated kernel has
      [pipeline_stages = 1].

    GEMM-shaped kernels cover matrix multiplication directly and
    convolution via on-the-fly (implicit) input indexing; depthwise
    convolution gets a direct spatially-tiled kernel. *)

type sched = {
  tile_m : int;  (** block tile rows; must divide m *)
  tile_n : int;  (** block tile cols; must divide n *)
  tile_k : int;  (** reduction strip; must divide k *)
  thread_m : int;  (** per-thread rows; must divide tile_m *)
  thread_n : int;  (** per-thread cols; must divide tile_n *)
  use_shared : bool;  (** cache_read A/B strips into shared memory *)
  unroll : bool;
}

val check : sched -> m:int -> n:int -> k:int -> (unit, string) result
(** Divisibility of all factors plus a 32..1024 thread-count window (real
    templates bind at least a warp). For prime extents the only
    factorizations give 1 or the extent itself, so no schedule passes —
    reproducing the paper's Fig. 16 failure. *)

val first_valid : m:int -> n:int -> k:int -> sched option
(** Deterministic divisor search for any schedule passing {!check}; [None]
    when the input-centric space is empty for these extents (e.g. primes).
    The differential fuzzer uses this as the baseline-lowering oracle
    without paying for a full tuning run. *)

val sched_to_string : sched -> string

val gemm :
  ?batch:int ->
  ?a_batched:bool ->
  ?b_batched:bool ->
  m:int ->
  n:int ->
  k:int ->
  sched ->
  Hidet_sched.Compiled.t
(** Loop-oriented matmul. Raises [Invalid_argument] if [check] fails. *)

val conv2d :
  x_shape:int list ->
  w_shape:int list ->
  stride:int ->
  pad_h:int ->
  pad_w:int ->
  sched ->
  Hidet_sched.Compiled.t
(** Loop-oriented direct convolution as an implicit GEMM over
    [m = oc], [n = oh*ow] (per image), [k = c*kh*kw]; the padding
    predicate is data semantics, not partial-tile predication, so the
    input-centric restriction still applies to all three GEMM dims. *)

type dw_sched = {
  dw_tile_p : int;  (** spatial tile (output pixels per block); divides oh*ow *)
  dw_thread_p : int;  (** pixels per thread; divides dw_tile_p *)
  dw_unroll : bool;
}

val dw_check : dw_sched -> oh:int -> ow:int -> (unit, string) result

val first_valid_dw : oh:int -> ow:int -> dw_sched option
(** Depthwise analog of {!first_valid}. *)

val depthwise :
  x_shape:int list ->
  w_shape:int list ->
  stride:int ->
  padding:int ->
  dw_sched ->
  Hidet_sched.Compiled.t
(** Loop-oriented depthwise convolution: block per (image, channel, spatial
    tile); each thread produces [dw_thread_p] consecutive outputs, reusing
    the weight values held in registers. *)
