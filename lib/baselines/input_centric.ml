module Compiled = Hidet_sched.Compiled
module G = Hidet_graph.Graph
module Op = Hidet_graph.Op
module Passes = Hidet_graph.Passes
module Engine = Hidet_runtime.Engine
module Plan = Hidet_runtime.Plan
module GC = Hidet_runtime.Group_compiler
module Trace = Hidet_obs.Trace
module Metrics = Hidet_obs.Metrics
module Tuning_log = Hidet_obs.Tuning_log

type strategy = Random_search | Evolutionary

let strategy_engine = function
  | Random_search -> "autotvm"
  | Evolutionary -> "ansor"

let seconds_per_trial = Hidet_sched.Tuner.seconds_per_trial
let autotvm_trials = 1000
let ansor_trials = 800

(* --- space cardinality -------------------------------------------------------- *)

let prime_exponents n =
  let rec go n p acc =
    if n = 1 then acc
    else if p * p > n then (n, 1) :: acc (* remaining n is prime *)
    else if n mod p = 0 then begin
      let a = ref 0 and n = ref n in
      while !n mod p = 0 do
        incr a;
        n := !n / p
      done;
      go !n (p + 1) ((p, !a) :: acc)
    end
    else go n (p + 1) acc
  in
  if n <= 1 then [] else go n 2 []

let rec binom n k =
  if k = 0 || k = n then 1.
  else if k < 0 || k > n then 0.
  else binom (n - 1) (k - 1) *. float_of_int n /. float_of_int k

let ordered_factorizations n j =
  List.fold_left
    (fun acc (_, a) -> acc *. binom (a + j - 1) (j - 1))
    1. (prime_exponents n)

(* TVM-style template knobs: 4-way splits of the two output dims, a 2-way
   split of the reduction, plus shared-staging and unroll flags. *)
let matmul_space_size ~m ~n ~k =
  ordered_factorizations m 4 *. ordered_factorizations n 4
  *. ordered_factorizations k 2 *. 4.

let conv_out h k stride pad = ((h + (2 * pad) - k) / stride) + 1

let conv_space_size ~x_shape ~w_shape ~stride ~pad_h ~pad_w =
  match (x_shape, w_shape) with
  | [ _; c; h; w ], [ oc; _; kh; kw ] ->
    let p = conv_out h kh stride pad_h * conv_out w kw stride pad_w in
    matmul_space_size ~m:oc ~n:p ~k:(c * kh * kw)
  | _ -> invalid_arg "conv_space_size"

let depthwise_space_size ~oh ~ow =
  ordered_factorizations (oh * ow) 3 *. 2.

(* --- samplers ------------------------------------------------------------------- *)

let divisors n = List.filter (fun d -> n mod d = 0) (List.init n (fun i -> i + 1))

(* Random ordered factorization of [n] into [j] factors: distribute each
   prime's exponent units over the j positions. *)
let random_factorization rng n j =
  let parts = Array.make j 1 in
  List.iter
    (fun (p, a) ->
      for _ = 1 to a do
        let slot = Random.State.int rng j in
        parts.(slot) <- parts.(slot) * p
      done)
    (prime_exponents n);
  parts

let sample_gemm_sched rng ~m ~n ~k =
  let fm = random_factorization rng m 4 in
  let fn = random_factorization rng n 4 in
  let fk = random_factorization rng k 2 in
  (* positions: grid / vthread / thread / register. Block tile = vthread *
     thread * register; per-thread tile = vthread * register. *)
  {
    Loop_sched.tile_m = fm.(1) * fm.(2) * fm.(3);
    tile_n = fn.(1) * fn.(2) * fn.(3);
    tile_k = fk.(1);
    thread_m = fm.(1) * fm.(3);
    thread_n = fn.(1) * fn.(3);
    use_shared = Random.State.int rng 5 > 0;
    unroll = Random.State.bool rng;
  }

let sample_dw_sched rng ~p =
  let fp = random_factorization rng p 3 in
  {
    Loop_sched.dw_tile_p = fp.(1) * fp.(2);
    dw_thread_p = fp.(2);
    dw_unroll = Random.State.bool rng;
  }

(* --- tuners ---------------------------------------------------------------------- *)

type tuned = {
  compiled : Compiled.t;
  latency : float;
  trials : int;
  simulated_seconds : float;
  wall_seconds : float;
}

(* The real tuners steer sampling with a learned cost model; model that by
   rejection-sampling implausible candidates (degenerate thread counts or
   register tiles) a few times before accepting whatever comes. *)
let plausible_gemm (s : Loop_sched.sched) =
  let threads = s.Loop_sched.tile_m / s.Loop_sched.thread_m
                * (s.Loop_sched.tile_n / s.Loop_sched.thread_n) in
  threads >= 64 && threads <= 512
  && s.Loop_sched.thread_m * s.Loop_sched.thread_n >= 2
  && s.Loop_sched.thread_m * s.Loop_sched.thread_n <= 64
  && s.Loop_sched.tile_k <= 64 && s.Loop_sched.use_shared

let guided_sample ~plausible sample rng =
  let rec go n =
    let s = sample rng in
    if n = 0 || plausible s then s else go (n - 1)
  in
  go 12

(* Counted separately from the hidet tuner's ["tuner.trials"] so the two
   families remain comparable side by side in one metrics dump. *)
let m_trials = Metrics.counter "baseline.trials"
let m_rejected = Metrics.counter "baseline.rejected"

let classify device compile sched =
  match compile sched with
  | exception Invalid_argument _ ->
    Metrics.incr m_rejected;
    (`Rejected, infinity, None)
  | compiled ->
    Metrics.incr m_trials;
    let lat = Compiled.latency device compiled in
    if lat < infinity then (`Measured, lat, Some (compiled, lat))
    else (`Infeasible, lat, None)

let measure device compile sched =
  let _, _, r = classify device compile sched in
  r

let generic_tune ?(key = "") ?(show = fun _ -> "") ~strategy ~budget ~device
    ~seed ~space_size ~sample ~mutate ~compile () =
  let t0 = Unix.gettimeofday () in
  let engine = strategy_engine strategy in
  let rng = Random.State.make [| seed; 0x5eed |] in
  (* Real tuners measure distinct configurations; a space smaller than the
     budget is exhausted early (the paper's AutoTVM-on-Bert case). *)
  let budget = min budget (max 1 (int_of_float (Float.min space_size 1e9))) in
  let sp =
    Trace.enter
      ~attrs:
        [
          ("engine", engine);
          ("workload", key);
          ("budget", string_of_int budget);
        ]
      "tune"
  in
  let best = ref None in
  let consider_lat sched lat =
    match lat with
    | None -> ()
    | Some lat -> (
      match !best with
      | Some (_, b) when b <= lat -> ()
      | _ -> best := Some (sched, lat))
  in
  let measure_lat sched = Option.map snd (measure device compile sched) in
  (* [i] is the trial number; a span + tuning-log record per candidate,
     same shape as the hidet tuner's, so traces and logs line up across
     engines. The unobserved path is a bare compile+measure. *)
  let observed = Trace.enabled () || Tuning_log.enabled () in
  let measure_idx i sched =
    if not observed then measure_lat sched
    else begin
      let csp = Trace.enter "trial" in
      let status, lat, r = classify device compile sched in
      let status_str =
        match status with
        | `Rejected -> "rejected"
        | `Infeasible -> "infeasible"
        | `Measured -> "measured"
      in
      if Trace.enabled () then begin
        Trace.add csp "workload" key;
        Trace.add csp "index" (string_of_int i);
        Trace.add csp "config" (show sched);
        Trace.add csp "outcome" status_str;
        if status = `Measured then
          Trace.add csp "latency_us" (Printf.sprintf "%.3f" (lat *. 1e6))
      end;
      Trace.exit csp;
      if Tuning_log.enabled () then
        Tuning_log.record
          {
            Tuning_log.engine;
            workload = key;
            index = i;
            config = show sched;
            outcome =
              (match status with
              | `Rejected -> Tuning_log.Rejected
              | `Infeasible -> Tuning_log.Infeasible
              | `Measured -> Tuning_log.Measured);
            latency = lat;
            (* Input-centric tuners sample their space exhaustively within
               a budget; there is no guided proposer to attribute. *)
            proposer = Tuning_log.Exhaustive;
          };
      Option.map snd r
    end
  in
  (* Measure a pre-sampled batch across domains (AutoTVM's parallel
     measurement workers). Only wall clock improves: the *simulated*
     sequential cost model — budget x seconds_per_trial — is unchanged,
     and the batch is merged in sampling order with ties kept first, so the
     selected schedule is identical to the sequential path's. *)
  let measure_batch scheds =
    let lats =
      Hidet_sched.Parallel.map
        (fun (i, s) -> measure_idx i s)
        (Array.of_list (List.mapi (fun i s -> (i, s)) scheds))
    in
    List.iteri (fun i sched -> consider_lat sched lats.(i)) scheds
  in
  (match strategy with
  | Random_search -> measure_batch (List.init budget (fun _ -> sample rng))
  | Evolutionary ->
    let pop_size = min 40 budget in
    let population = ref (List.init pop_size (fun _ -> sample rng)) in
    measure_batch !population;
    (* The mutation loop is inherently sequential: each parent choice
       depends on the best-so-far after the previous measurement. *)
    let used = ref pop_size in
    while !used < budget do
      let parent =
        match !best with
        | Some (s, _) when Random.State.int rng 3 > 0 -> s
        | _ -> (
          match !population with
          | p :: _ when Random.State.bool rng -> p
          | _ -> sample rng)
      in
      let child = mutate rng parent in
      consider_lat child (measure_idx !used child);
      population := child :: (match !population with _ :: t -> t | [] -> []);
      incr used
    done);
  Trace.add sp "trials" (string_of_int budget);
  (match !best with
  | Some (_, lat) ->
    Trace.add sp "best_latency_us" (Printf.sprintf "%.3f" (lat *. 1e6))
  | None -> Trace.add sp "outcome" "no feasible candidate");
  Trace.exit sp;
  Option.map
    (fun (sched, lat) ->
      {
        (* Re-instantiate the winner in the calling domain. *)
        compiled = compile sched;
        latency = lat;
        trials = budget;
        simulated_seconds = float_of_int budget *. seconds_per_trial;
        wall_seconds = Unix.gettimeofday () -. t0;
      })
    !best

let mutate_gemm ~m ~n ~k rng (s : Loop_sched.sched) =
  match Random.State.int rng 4 with
  | 0 ->
    let f = random_factorization rng m 4 in
    { s with Loop_sched.tile_m = f.(1) * f.(2) * f.(3); thread_m = f.(1) * f.(3) }
  | 1 ->
    let f = random_factorization rng n 4 in
    { s with Loop_sched.tile_n = f.(1) * f.(2) * f.(3); thread_n = f.(1) * f.(3) }
  | 2 ->
    let ds = divisors (min k 4096) in
    let valid = List.filter (fun d -> k mod d = 0) ds in
    { s with Loop_sched.tile_k = List.nth valid (Random.State.int rng (List.length valid)) }
  | _ -> { s with Loop_sched.unroll = not s.Loop_sched.unroll }

let show_gemm (s : Loop_sched.sched) =
  Printf.sprintf "tile=%dx%dx%d thread=%dx%d shared=%b unroll=%b"
    s.Loop_sched.tile_m s.Loop_sched.tile_n s.Loop_sched.tile_k
    s.Loop_sched.thread_m s.Loop_sched.thread_n s.Loop_sched.use_shared
    s.Loop_sched.unroll

let show_dw (s : Loop_sched.dw_sched) =
  Printf.sprintf "tile_p=%d thread_p=%d unroll=%b" s.Loop_sched.dw_tile_p
    s.Loop_sched.dw_thread_p s.Loop_sched.dw_unroll

let tune_gemm ?key ~strategy ~trials ~device ~seed ~m ~n ~k ~compile () =
  generic_tune ?key ~show:show_gemm ~strategy ~budget:trials ~device ~seed
    ~space_size:(matmul_space_size ~m ~n ~k)
    ~sample:
      (guided_sample ~plausible:plausible_gemm (fun rng ->
           sample_gemm_sched rng ~m ~n ~k))
    ~mutate:(mutate_gemm ~m ~n ~k) ~compile ()

let tune_depthwise ?key ~strategy ~trials ~device ~seed ~p ~compile () =
  generic_tune ?key ~show:show_dw ~strategy ~budget:trials ~device ~seed
    ~space_size:(ordered_factorizations p 3 *. 2.)
    ~sample:(fun rng -> sample_dw_sched rng ~p)
    ~mutate:(fun rng _ -> sample_dw_sched rng ~p)
    ~compile ()

(* --- engines ----------------------------------------------------------------------- *)

type tuning_stats = { mutable cost : float; mutable wall : float }

let schedule_anchor ~strategy ~trials ~device ~cache ~stats g (anchor : G.node) =
  let in_shapes = List.map (G.node_shape g) anchor.G.inputs in
  let cached key tune fallback =
    match Hashtbl.find_opt cache key with
    | Some maker -> (maker () : Compiled.t)
    | None ->
      let maker =
        match tune () with
        | Some t ->
          stats.cost <- stats.cost +. t.simulated_seconds;
          stats.wall <- stats.wall +. t.wall_seconds;
          (* Re-instantiating would lose the tuned schedule: keep it. *)
          fun () -> t.compiled
        | None -> fallback
      in
      Hashtbl.replace cache key maker;
      maker ()
  in
  let seed = Hashtbl.hash (Op.name anchor.G.op, in_shapes) in
  match (anchor.G.op, in_shapes) with
  | Op.Matmul, [ sa; sb ] ->
    let a_batched, batch_a, m, k =
      match sa with
      | [ m; k ] -> (false, 1, m, k)
      | [ b; m; k ] -> (true, b, m, k)
      | _ -> invalid_arg "loop engine: matmul A rank"
    in
    let b_batched, batch_b, n =
      match sb with
      | [ _; n ] -> (false, 1, n)
      | [ b; _; n ] -> (true, b, n)
      | _ -> invalid_arg "loop engine: matmul B rank"
    in
    let batch = max batch_a batch_b in
    let key = Printf.sprintf "mm_%d_%d_%d_%d" batch m n k in
    let c =
      cached key
        (fun () ->
          tune_gemm ~key ~strategy ~trials ~device ~seed ~m ~n ~k
            ~compile:(fun s ->
              Loop_sched.gemm ~batch ~a_batched ~b_batched ~m ~n ~k s)
            ())
        (fun () ->
          Hidet_sched.Rule_based.schedule (Op.to_def anchor.G.op in_shapes))
    in
    (* The template emits [batch, m, n]; adapt when the graph node is
       rank-2 (the rule-based fallback already matches the graph shape). *)
    if c.Compiled.out.Hidet_ir.Buffer.dims = [ 1; m; n ]
       && List.length anchor.G.shape = 2
    then
      Hidet_fusion.Fuse.fuse_epilogue c
        (Op.to_def (Op.Reshape [ m; n ]) [ [ 1; m; n ] ])
    else c
  | Op.Conv2d { stride; pad_h; pad_w }, [ x_shape; w_shape ] ->
    let m, n, k =
      match (x_shape, w_shape) with
      | [ _; c; h; w ], [ oc; _; kh; kw ] ->
        ( oc,
          conv_out h kh stride pad_h * conv_out w kw stride pad_w,
          c * kh * kw )
      | _ -> invalid_arg "loop engine: conv shapes"
    in
    let key =
      Printf.sprintf "conv_%s_%s_%d_%d_%d"
        (String.concat "x" (List.map string_of_int x_shape))
        (String.concat "x" (List.map string_of_int w_shape))
        stride pad_h pad_w
    in
    cached key
      (fun () ->
        tune_gemm ~key ~strategy ~trials ~device ~seed ~m ~n ~k
          ~compile:(fun s ->
            Loop_sched.conv2d ~x_shape ~w_shape ~stride ~pad_h ~pad_w s)
          ())
      (fun () -> Hidet_sched.Rule_based.schedule (Op.to_def anchor.G.op in_shapes))
  | Op.Depthwise_conv2d { stride; padding }, [ x_shape; w_shape ] ->
    let p =
      match (x_shape, w_shape) with
      | [ _; _; h; w ], [ _; _; kh; kw ] ->
        conv_out h kh stride padding * conv_out w kw stride padding
      | _ -> invalid_arg "loop engine: dw shapes"
    in
    let key =
      Printf.sprintf "dw_%s_%d"
        (String.concat "x" (List.map string_of_int x_shape))
        stride
    in
    cached key
      (fun () ->
        tune_depthwise ~key ~strategy ~trials ~device ~seed ~p
          ~compile:(fun s ->
            Loop_sched.depthwise ~x_shape ~w_shape ~stride ~padding s)
          ())
      (fun () -> Hidet_sched.Rule_based.schedule (Op.to_def anchor.G.op in_shapes))
  | Op.Softmax, [ s ] ->
    let cols = List.nth s (List.length s - 1) in
    let rows = List.fold_left ( * ) 1 s / cols in
    Hidet_sched.Row_templates.softmax ~rows ~cols ()
  | Op.Layernorm { eps }, [ s; _; _ ] ->
    let cols = List.nth s (List.length s - 1) in
    let rows = List.fold_left ( * ) 1 s / cols in
    Hidet_sched.Row_templates.layernorm ~eps ~rows ~cols ()
  | Op.Global_avg_pool, [ s ] ->
    Hidet_sched.Reduce_template.schedule (Op.to_def anchor.G.op [ s ])
  | _ -> Hidet_sched.Rule_based.schedule (Op.to_def anchor.G.op in_shapes)

let compile_with ~name ~strategy ~trials device g =
  Trace.span
    ~attrs:(fun () -> [ ("engine", name); ("model", G.get_name g) ])
    "compile_plan"
  @@ fun _root ->
  let t0 = Unix.gettimeofday () in
  let g = Trace.span "graph_optimize" (fun _ -> Passes.optimize g) in
  let cache = Hashtbl.create 32 in
  let stats = { cost = 0.; wall = 0. } in
  let gc_config =
    {
      GC.schedule_anchor =
        (fun g n -> schedule_anchor ~strategy ~trials ~device ~cache ~stats g n);
      may_fuse_prologue = (fun _ -> true);
      may_fuse_epilogue = (fun _ -> true);
    }
  in
  let plan = GC.compile_graph gc_config g in
  {
    Engine.engine = name;
    model = G.get_name g;
    latency = Plan.latency device plan;
    tuning_cost = stats.cost;
    cached_tuning_cost = 0.;
    tuning_wall = stats.wall;
    compile_wall = Unix.gettimeofday () -. t0;
    kernel_count = Plan.kernel_count plan;
    plan = Some plan;
  }

module Autotvm = struct
  let name = "autotvm"

  let caps =
    {
      Engine.graph_opt = Engine.High;
      kernel_opt = Engine.Medium;
      tuning_time = Engine.Low;
      engineering_effort = Engine.Medium;
    }

  let compile device g =
    compile_with ~name ~strategy:Random_search ~trials:autotvm_trials device g
end

module Ansor = struct
  let name = "ansor"

  let caps =
    {
      Engine.graph_opt = Engine.High;
      kernel_opt = Engine.Low;
      tuning_time = Engine.Low;
      engineering_effort = Engine.High;
    }

  let compile device g =
    compile_with ~name ~strategy:Evolutionary ~trials:ansor_trials device g
end
