module Compiled = Hidet_sched.Compiled
module MT = Hidet_sched.Matmul_template
module G = Hidet_graph.Graph
module Op = Hidet_graph.Op
module Passes = Hidet_graph.Passes
module Engine = Hidet_runtime.Engine
module Plan = Hidet_runtime.Plan
module GC = Hidet_runtime.Group_compiler
module Device = Hidet_gpu.Device

(* The library's fixed kernel list, largest tiles first: classic
   cuBLAS/CUTLASS SKUs with double buffering. cuDNN/cuBLAS run fp32 by
   default (TF32 is opt-in); TensorRT enables TF32 tensor cores. *)
let matmul_configs ~tensor_core =
  let mk block_m block_n block_k warp_m warp_n =
    {
      MT.block_m;
      block_n;
      block_k;
      warp_m;
      warp_n;
      (* Libraries ship double-buffered kernels; the tensor-core SKUs use
         the deeper Ampere multistage pipeline. *)
      stages = (if tensor_core then 3 else 2);
      split_k = 1;
      use_tensor_core = tensor_core;
      swizzle = true;
    }
  in
  [
    mk 128 128 16 64 64;
    mk 128 64 16 64 32;
    mk 64 64 16 32 32;
    mk 64 32 16 32 16;
    mk 32 32 16 16 16;
  ]

let ceil_div a b = (a + b - 1) / b

(* Size heuristic, not tuning: prefer the biggest tile that still yields a
   reasonably parallel grid. This mirrors library dispatch tables, which are
   excellent on common large shapes and waste the GPU on small or odd
   ones (the paper's Fig. 16/17 observations). *)
let pick_matmul ?(tensor_core = false) ~m ~n ~k () =
  ignore k;
  let configs = matmul_configs ~tensor_core in
  (* Dispatch tables favor large tiles; they only fall back when the grid
     would be degenerate, which leaves the GPU underfilled at small batch
     sizes (paper Fig. 17). *)
  let enough cfg = ceil_div m cfg.MT.block_m * ceil_div n cfg.MT.block_n >= 24 in
  match List.find_opt enough configs with
  | Some cfg -> cfg
  | None -> List.nth configs (List.length configs - 1)

let fused_attention_latency (d : Device.t) ~heads ~seq ~dim =
  let f = float_of_int in
  let flops = 4. *. f heads *. f seq *. f seq *. f dim in
  let bytes = 4. *. 4. *. f heads *. f seq *. f dim in
  let effective_tensor = 0.5 *. Device.tensor_flops d in
  d.Device.kernel_launch_overhead
  +. Float.max (flops /. effective_tensor) (bytes /. d.Device.mem_bandwidth)
  +. (f seq *. 2e-9 (* softmax row latencies inside the fused kernel *))

(* Depthwise dispatch: a decent fixed schedule (libraries ship good
   depthwise kernels, but again without input-size tuning). *)
let pick_depthwise ~p =
  let pick_div target =
    let rec best d candidate =
      if d > p then candidate
      else
        let candidate =
          if p mod d = 0 && d <= target && d > candidate then d else candidate
        in
        best (d + 1) candidate
    in
    best 1 1
  in
  let tile = pick_div 256 in
  let per_thread = if tile mod 2 = 0 then 2 else 1 in
  { Loop_sched.dw_tile_p = tile; dw_thread_p = per_thread; dw_unroll = true }

(* TensorRT times every tactic (kernel variant) in its catalog for each
   layer while building the engine; PyTorch/ORT dispatch by heuristic. *)
let tactic_configs ~tensor_core =
  matmul_configs ~tensor_core
  @ List.concat_map
      (fun sk ->
        List.filter_map
          (fun c ->
            if c.MT.block_m <= 64 && c.MT.block_n <= 64 then
              Some { c with MT.split_k = sk }
            else None)
          (matmul_configs ~tensor_core))
      [ 4; 8 ]

let schedule_anchor ?(tensor_core = false) ?(tactic_timing = false) device g
    (anchor : G.node) =
  let in_shapes = List.map (G.node_shape g) anchor.G.inputs in
  match (anchor.G.op, in_shapes) with
  | Op.Matmul, [ sa; sb ] ->
    let a_batched, batch_a, m, k =
      match sa with
      | [ m; k ] -> (false, 1, m, k)
      | [ b; m; k ] -> (true, b, m, k)
      | _ -> invalid_arg "library: matmul A rank"
    in
    let b_batched, batch_b, n =
      match sb with
      | [ _; n ] -> (false, 1, n)
      | [ b; _; n ] -> (true, b, n)
      | _ -> invalid_arg "library: matmul B rank"
    in
    let batch = max batch_a batch_b in
    let c =
      if tactic_timing then
        match
          Hidet_sched.Tuner.tune ~device ~candidates:(tactic_configs ~tensor_core)
            ~compile:(fun cfg -> MT.compile ~batch ~a_batched ~b_batched ~m ~n ~k cfg)
            ()
        with
        | Some (_, c, _) -> c
        | None ->
          MT.compile ~batch ~a_batched ~b_batched ~m ~n ~k
            (pick_matmul ~tensor_core ~m ~n ~k ())
      else
        MT.compile ~batch ~a_batched ~b_batched ~m ~n ~k
          (pick_matmul ~tensor_core ~m ~n ~k ())
    in
    if c.Compiled.out.Hidet_ir.Buffer.dims = [ 1; m; n ]
       && List.length anchor.G.shape = 2
    then
      Hidet_fusion.Fuse.fuse_epilogue c
        (Op.to_def (Op.Reshape [ m; n ]) [ [ 1; m; n ] ])
    else c
  | Op.Depthwise_conv2d { stride; padding }, [ x_shape; w_shape ] -> (
    let p =
      match anchor.G.shape with
      | [ _; _; oh; ow ] -> oh * ow
      | _ -> invalid_arg "library: dw shape"
    in
    let s = pick_depthwise ~p in
    match Loop_sched.depthwise ~x_shape ~w_shape ~stride ~padding s with
    | c -> c
    | exception Invalid_argument _ ->
      Hidet_sched.Rule_based.schedule (Op.to_def anchor.G.op in_shapes))
  | Op.Softmax, [ s ] ->
    let cols = List.nth s (List.length s - 1) in
    let rows = List.fold_left ( * ) 1 s / cols in
    Hidet_sched.Row_templates.softmax ~rows ~cols ()
  | Op.Layernorm { eps }, [ s; _; _ ] ->
    let cols = List.nth s (List.length s - 1) in
    let rows = List.fold_left ( * ) 1 s / cols in
    Hidet_sched.Row_templates.layernorm ~eps ~rows ~cols ()
  | Op.Global_avg_pool, [ s ] ->
    Hidet_sched.Reduce_template.schedule (Op.to_def anchor.G.op [ s ])
  | _ -> Hidet_sched.Rule_based.schedule (Op.to_def anchor.G.op in_shapes)

type fusion_level = No_fusion | Pattern_fusion | Full_fusion

let may_fuse_prologue level (n : G.node) =
  match level with
  | Full_fusion -> true
  | No_fusion | Pattern_fusion -> (
    (* The conv kernel's internal im2col always fuses (cuDNN implicit
       GEMM); user-level producers do not. *)
    match n.G.op with Op.Im2col _ -> true | _ -> false)

let may_fuse_epilogue level (n : G.node) =
  match level with
  | Full_fusion -> true
  | No_fusion -> ( match n.G.op with Op.Reshape _ -> true | _ -> false)
  | Pattern_fusion -> (
    (* ORT's FusedConv patterns: bias/BN, activations, and the residual Add
       (Conv+Add+Relu); no transform or arbitrary-expression fusion. *)
    match n.G.op with
    | Op.Reshape _ | Op.Scale_shift | Op.Bias_add | Op.Binary Op.Add
    | Op.Unary (Op.Relu | Op.Gelu | Op.Sigmoid | Op.Tanh_act | Op.Clip _) ->
      true
    | _ -> false)

let compile_with ~name ~level ?(tensor_core = false) ?(tactic_timing = false)
    ?(fused_attention = false) device g =
  Hidet_obs.Trace.span
    ~attrs:(fun () -> [ ("engine", name); ("model", G.get_name g) ])
    "compile_plan"
  @@ fun _root ->
  let t0 = Unix.gettimeofday () in
  let g =
    Hidet_obs.Trace.span "lower_conv_to_gemm" (fun _ ->
        Passes.lower_conv_to_gemm g)
  in
  let g = Hidet_obs.Trace.span "graph_optimize" (fun _ -> Passes.optimize g) in
  let gc_config =
    {
      GC.schedule_anchor =
        (fun g n -> schedule_anchor ~tensor_core ~tactic_timing device g n);
      may_fuse_prologue = may_fuse_prologue level;
      may_fuse_epilogue = may_fuse_epilogue level;
    }
  in
  let plan = GC.compile_graph gc_config g in
  let base_latency = Plan.latency device plan in
  let latency =
    if not fused_attention then base_latency
    else begin
      (* Replace each (QK^T matmul -> scale -> softmax -> matmul V) region's
         step costs with one fused-attention kernel estimate. *)
      let step_latency node_id =
        List.fold_left
          (fun acc (s : Plan.step) ->
            if s.Plan.out_node = node_id then
              acc +. Compiled.latency device s.Plan.compiled
            else acc)
          0. plan.Plan.steps
      in
      List.fold_left
        (fun lat (n : G.node) ->
          match n.G.op with
          | Op.Softmax -> (
            let producer_chain id =
              let node = G.node g id in
              match node.G.op with
              | Op.Unary (Op.Scale_by _) -> List.hd node.G.inputs
              | _ -> id
            in
            let p = producer_chain (List.hd n.G.inputs) in
            let pn = G.node g p in
            let consumers = G.consumers g n.G.id in
            match (pn.G.op, consumers) with
            | Op.Matmul, [ c ] when (G.node g c).G.op = Op.Matmul -> (
              match n.G.shape with
              | [ heads; seq; _ ] ->
                let dim =
                  match (G.node g c).G.shape with
                  | [ _; _; d ] -> d
                  | _ -> seq
                in
                let saved =
                  step_latency p +. step_latency n.G.id +. step_latency c
                  +. step_latency (List.hd n.G.inputs)
                in
                lat -. saved
                +. fused_attention_latency device ~heads ~seq ~dim
              | _ -> lat)
            | _ -> lat)
          | _ -> lat)
        base_latency (G.nodes g)
    end
  in
  {
    Engine.engine = name;
    model = G.get_name g;
    latency;
    (* Libraries ship pre-tuned kernels: no tuning cost at deployment.
       TensorRT's tactic timing happens inside the build (compile_wall). *)
    tuning_cost = 0.;
    cached_tuning_cost = 0.;
    tuning_wall = 0.;
    compile_wall = Unix.gettimeofday () -. t0;
    kernel_count = Plan.kernel_count plan;
    plan = Some plan;
  }

module Pytorch = struct
  let name = "pytorch"

  let caps =
    {
      Engine.graph_opt = Engine.Low;
      kernel_opt = Engine.High;
      tuning_time = Engine.High;
      engineering_effort = Engine.Low;
    }

  let compile device g = compile_with ~name ~level:No_fusion device g
end

module Ort = struct
  let name = "onnxruntime"

  let caps =
    {
      Engine.graph_opt = Engine.Medium;
      kernel_opt = Engine.High;
      tuning_time = Engine.High;
      engineering_effort = Engine.Low;
    }

  let compile device g = compile_with ~name ~level:Pattern_fusion device g
end

module Tensorrt = struct
  let name = "tensorrt"

  let caps =
    {
      Engine.graph_opt = Engine.High;
      kernel_opt = Engine.High;
      tuning_time = Engine.High;
      engineering_effort = Engine.Low;
    }

  let compile device g =
    compile_with ~name ~level:Full_fusion ~tensor_core:true ~tactic_timing:true
      ~fused_attention:true device g
end
