module Expr = Hidet_ir.Expr
module Tensor = Hidet_tensor.Tensor

type scalar =
  | Const of float
  | Const_int of int
  | Axis of int
  | Raxis of int
  | Input of int * scalar list
  | Bin of Expr.binop * scalar * scalar
  | Un of Expr.unop * scalar
  | Sel of scalar * scalar * scalar

type reduce_kind = Sum | Max_reduce

type t = {
  name : string;
  in_shapes : int list list;
  out_shape : int list;
  body : scalar;
  reduce : (int list * reduce_kind) option;
  bijection : (Expr.t list -> Expr.t list) option;
}

let create ?reduce ?bijection ~name ~in_shapes ~out_shape body =
  if out_shape = [] then invalid_arg "Def.create: empty output shape";
  { name; in_shapes; out_shape; body; reduce; bijection }

let is_injective d = d.reduce = None

let is_bijective d =
  is_injective d && d.bijection <> None
  && match d.in_shapes with
     | s :: _ -> List.fold_left ( * ) 1 s = List.fold_left ( * ) 1 d.out_shape
     | [] -> false

let ( + ) a b = Bin (Expr.Add, a, b)
let ( - ) a b = Bin (Expr.Sub, a, b)
let ( * ) a b = Bin (Expr.Mul, a, b)
let ( / ) a b = Bin (Expr.Div, a, b)
let maxs a b = Bin (Expr.Max, a, b)
let sel c a b = Sel (c, a, b)
let lts a b = Bin (Expr.Lt, a, b)
let ges a b = Bin (Expr.Ge, a, b)
let ands a b = Bin (Expr.And, a, b)
let input k idx = Input (k, idx)
let axis i = Axis i
let raxis i = Raxis i
let const f = Const f
let iconst n = Const_int n

let num_out_elems d = List.fold_left Stdlib.( * ) 1 d.out_shape

(* --- structural validation ------------------------------------------------ *)

let well_formed d =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun s -> Error (d.name ^ ": " ^ s)) fmt in
  let rank = List.length d.out_shape in
  let rrank =
    match d.reduce with None -> 0 | Some (ext, _) -> List.length ext
  in
  let* () =
    if List.for_all (fun x -> x > 0) d.out_shape then Ok ()
    else err "non-positive output dimension"
  in
  let* () =
    if List.for_all (List.for_all (fun x -> x > 0)) d.in_shapes then Ok ()
    else err "non-positive input dimension"
  in
  let* () =
    match d.reduce with
    | Some (ext, _) when not (List.for_all (fun x -> x > 0) ext) ->
      err "non-positive reduction extent"
    | _ -> Ok ()
  in
  let n_inputs = List.length d.in_shapes in
  let rec check s =
    match s with
    | Const _ | Const_int _ -> Ok ()
    | Axis i ->
      if i >= 0 && i < rank then Ok ()
      else err "axis i%d out of range (rank %d)" i rank
    | Raxis i ->
      if i >= 0 && i < rrank then Ok ()
      else err "reduction axis r%d out of range (%d reduction axes)" i rrank
    | Input (k, idx) ->
      if k < 0 || k >= n_inputs then err "input %d out of range (%d inputs)" k n_inputs
      else
        let arity = List.length (List.nth d.in_shapes k) in
        if List.length idx <> arity then
          err "input %d indexed with %d indices, rank is %d" k (List.length idx) arity
        else check_all idx
    | Bin (_, a, b) ->
      let* () = check a in
      check b
    | Un (_, a) -> check a
    | Sel (c, a, b) ->
      let* () = check c in
      let* () = check a in
      check b
  and check_all = function
    | [] -> Ok ()
    | s :: rest ->
      let* () = check s in
      check_all rest
  in
  check d.body

(* --- reference evaluation ------------------------------------------------- *)

let rec eval_scalar ~inputs ~axes ~raxes s : float =
  match s with
  | Const f -> f
  | Const_int n -> float_of_int n
  | Axis i -> float_of_int (List.nth axes i)
  | Raxis i -> float_of_int (List.nth raxes i)
  | Input (k, idx) ->
    let idx = List.map (fun e -> int_of_float (eval_scalar ~inputs ~axes ~raxes e)) idx in
    Tensor.get (List.nth inputs k) idx
  | Bin (op, a, b) ->
    let va = eval_scalar ~inputs ~axes ~raxes a in
    let vb = eval_scalar ~inputs ~axes ~raxes b in
    (match op with
    | Expr.Add -> va +. vb
    | Sub -> va -. vb
    | Mul -> va *. vb
    | Div ->
      (* Index arithmetic travels through this float-valued evaluator;
         integral operands use truncating integer division as the IR does. *)
      if Float.is_integer va && Float.is_integer vb && vb <> 0. then
        float_of_int (Stdlib.( / ) (int_of_float va) (int_of_float vb))
      else va /. vb
    | Mod ->
      if Float.is_integer va && Float.is_integer vb && vb <> 0. then
        float_of_int (int_of_float va mod int_of_float vb)
      else Float.rem va vb
    | Min -> Float.min va vb
    | Max -> Float.max va vb
    | Lt -> if va < vb then 1. else 0.
    | Le -> if va <= vb then 1. else 0.
    | Gt -> if va > vb then 1. else 0.
    | Ge -> if va >= vb then 1. else 0.
    | Eq -> if va = vb then 1. else 0.
    | Ne -> if va <> vb then 1. else 0.
    | And -> if va <> 0. && vb <> 0. then 1. else 0.
    | Or -> if va <> 0. || vb <> 0. then 1. else 0.)
  | Sel (c, a, b) ->
    if eval_scalar ~inputs ~axes ~raxes c <> 0. then
      eval_scalar ~inputs ~axes ~raxes a
    else eval_scalar ~inputs ~axes ~raxes b
  | Un (op, a) -> (
    let v = eval_scalar ~inputs ~axes ~raxes a in
    match op with
    | Expr.Neg -> -.v
    | Not -> if v = 0. then 1. else 0.
    | Exp -> exp v
    | Log -> log v
    | Sqrt -> sqrt v
    | Tanh -> tanh v
    | Abs -> Float.abs v
    | Erf ->
      Expr.float_of_value
        (Expr.eval
           {
             Expr.lookup = (fun _ -> Expr.V_float 0.);
             load = (fun _ _ -> Expr.V_float 0.);
             thread_idx = 0;
             block_idx = 0;
           }
           (Expr.Unop (Expr.Erf, Expr.Float v))))

let rec enumerate shape =
  match shape with
  | [] -> [ [] ]
  | d :: rest ->
    let tails = enumerate rest in
    List.concat (List.init d (fun i -> List.map (fun tl -> i :: tl) tails))

let eval d inputs =
  if List.length inputs <> List.length d.in_shapes then
    invalid_arg (Printf.sprintf "Def.eval %s: input count mismatch" d.name);
  List.iter2
    (fun t s ->
      if Tensor.shape t <> s then
        invalid_arg (Printf.sprintf "Def.eval %s: input shape mismatch" d.name))
    inputs d.in_shapes;
  Tensor.init d.out_shape (fun axes ->
      match d.reduce with
      | None -> eval_scalar ~inputs ~axes ~raxes:[] d.body
      | Some (extents, kind) ->
        let init_v = match kind with Sum -> 0. | Max_reduce -> neg_infinity in
        let combine = match kind with Sum -> Stdlib.( +. ) | Max_reduce -> Float.max in
        List.fold_left
          (fun acc raxes -> combine acc (eval_scalar ~inputs ~axes ~raxes d.body))
          init_v (enumerate extents))

(* --- lowering ------------------------------------------------------------- *)

let rec scalar_to_expr ~inputs ~axes ~raxes s : Expr.t =
  match s with
  | Const f -> Expr.float f
  | Const_int n -> Expr.int n
  | Axis i -> List.nth axes i
  | Raxis i -> List.nth raxes i
  | Input (k, idx) -> inputs k (List.map (scalar_to_expr ~inputs ~axes ~raxes) idx)
  | Bin (op, a, b) ->
    Expr.binop op
      (scalar_to_expr ~inputs ~axes ~raxes a)
      (scalar_to_expr ~inputs ~axes ~raxes b)
  | Un (op, a) -> Expr.unop op (scalar_to_expr ~inputs ~axes ~raxes a)
  | Sel (c, a, b) ->
    (* Comparison/logical Bins lower to boolean expressions directly; any
       other condition is compared against zero. *)
    let cond =
      match c with
      | Bin ((Expr.Lt | Le | Gt | Ge | Eq | Ne | And | Or), _, _) ->
        scalar_to_expr ~inputs ~axes ~raxes c
      | _ -> Expr.ne (scalar_to_expr ~inputs ~axes ~raxes c) (Expr.int 0)
    in
    Expr.select cond
      (scalar_to_expr ~inputs ~axes ~raxes a)
      (scalar_to_expr ~inputs ~axes ~raxes b)

let rec pp_scalar fmt = function
  | Const f -> Format.fprintf fmt "%g" f
  | Const_int n -> Format.fprintf fmt "%d" n
  | Axis i -> Format.fprintf fmt "i%d" i
  | Raxis i -> Format.fprintf fmt "r%d" i
  | Input (k, idx) ->
    Format.fprintf fmt "in%d[%a]" k
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_scalar)
      idx
  | Bin (op, a, b) ->
    Format.fprintf fmt "(%a %s %a)" pp_scalar a
      (match op with
      | Expr.Add -> "+"
      | Sub -> "-"
      | Mul -> "*"
      | Div -> "/"
      | Mod -> "%"
      | Min -> "min"
      | Max -> "max"
      | _ -> "?")
      pp_scalar b
  | Un (_, a) -> Format.fprintf fmt "f(%a)" pp_scalar a
  | Sel (c, a, b) ->
    Format.fprintf fmt "(%a ? %a : %a)" pp_scalar c pp_scalar a pp_scalar b

let pp fmt d =
  Format.fprintf fmt "%s: out[%s] = %s%a" d.name
    (String.concat ", " (List.map string_of_int d.out_shape))
    (match d.reduce with
    | None -> ""
    | Some (ext, Sum) ->
      Printf.sprintf "sum_{%s} " (String.concat "," (List.map string_of_int ext))
    | Some (ext, Max_reduce) ->
      Printf.sprintf "max_{%s} " (String.concat "," (List.map string_of_int ext)))
    pp_scalar d.body
