(** Computation definitions: the mathematical description of an operator,
    decoupled from any schedule (the input of both scheduling mechanisms in
    the paper's §5.1.3 and the currency of post-scheduling fusion, §5.2).

    A definition gives, for every output element (indexed by output axes),
    a scalar expression over the input tensors — optionally wrapped in a
    reduction over reduction axes:

    {v out[i0, ..] = reduce_{r0, ..} body(i0, .., r0, ..) v} *)

(** Scalar expressions over abstract axes. *)
type scalar =
  | Const of float
  | Const_int of int  (** integer literal: lowers to integer IR arithmetic *)
  | Axis of int  (** output axis [i] *)
  | Raxis of int  (** reduction axis [i] *)
  | Input of int * scalar list  (** input tensor [k] at the given indices *)
  | Bin of Hidet_ir.Expr.binop * scalar * scalar
  | Un of Hidet_ir.Expr.unop * scalar
  | Sel of scalar * scalar * scalar
      (** [Sel (cond, a, b)]: [a] where [cond] is true (nonzero), else [b].
          [cond] should be a comparison/logical [Bin]. Used for padding and
          boundary predication (e.g. im2col, pooling). *)

type reduce_kind = Sum | Max_reduce

type t = {
  name : string;
  in_shapes : int list list;
  out_shape : int list;
  body : scalar;
  reduce : (int list * reduce_kind) option;
      (** reduction axis extents and combining operation *)
  bijection : (Hidet_ir.Expr.t list -> Hidet_ir.Expr.t list) option;
      (** For bijective single-input transforms: maps an {e input} element
          index to the {e output} index it lands on. Enables epilogue fusion
          of the operator (paper §4.2). *)
}

val create :
  ?reduce:int list * reduce_kind ->
  ?bijection:(Hidet_ir.Expr.t list -> Hidet_ir.Expr.t list) ->
  name:string ->
  in_shapes:int list list ->
  out_shape:int list ->
  scalar ->
  t

(** {1 Classification (paper §4.2)} *)

val is_injective : t -> bool
(** No reduction: qualified as a prologue operator. *)

val is_bijective : t -> bool
(** Injective with an index bijection, and input 0 has the same element
    count as the output: qualified as an epilogue operator (extra inputs,
    e.g. a residual tensor, are loaded at the fused store site). *)

val well_formed : t -> (unit, string) result
(** Structural validation: every [Axis]/[Raxis]/[Input] reference in the
    body is in range and indexed at the right arity, and all shapes and
    reduction extents are positive. Used by the differential fuzzer to
    reject malformed generated definitions before lowering; does {e not}
    check index bounds (the generators are in-bounds by construction, and
    the interpreter traps violations as [Invalid_access]). *)

(** {1 Scalar helpers} *)

val ( + ) : scalar -> scalar -> scalar
val ( - ) : scalar -> scalar -> scalar
val ( * ) : scalar -> scalar -> scalar
val ( / ) : scalar -> scalar -> scalar
val maxs : scalar -> scalar -> scalar
val sel : scalar -> scalar -> scalar -> scalar
val lts : scalar -> scalar -> scalar
val ges : scalar -> scalar -> scalar
val ands : scalar -> scalar -> scalar
val input : int -> scalar list -> scalar
val axis : int -> scalar
val raxis : int -> scalar
val const : float -> scalar
val iconst : int -> scalar

(** {1 Reference evaluation} *)

val eval : t -> Hidet_tensor.Tensor.t list -> Hidet_tensor.Tensor.t
(** Evaluate on CPU tensors; the oracle for all scheduled kernels. Raises
    [Invalid_argument] on input shape mismatch. *)

(** {1 Lowering support} *)

val scalar_to_expr :
  inputs:(int -> Hidet_ir.Expr.t list -> Hidet_ir.Expr.t) ->
  axes:Hidet_ir.Expr.t list ->
  raxes:Hidet_ir.Expr.t list ->
  scalar ->
  Hidet_ir.Expr.t
(** Instantiate a scalar expression as IR: [inputs k idx] supplies the IR
    expression for reading input [k] at [idx] (a buffer load, or an inlined
    producer expression during prologue fusion). *)

val num_out_elems : t -> int
val pp : Format.formatter -> t -> unit
