(** Process-global metrics registry: named counters, gauges and histograms.

    Unlike tracing, metrics are always on — a counter bump is one atomic
    fetch-and-add, cheap enough for the tuner's per-candidate hot path, and
    counts from worker domains therefore sum exactly (no per-domain
    buffering, no flush). Instruments are registered by name on first use;
    asking for an existing name returns the existing instrument, and asking
    for a name already registered as a different kind raises
    [Invalid_argument]. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Get or register the counter named [name]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?bounds:float array -> string -> histogram
(** Get or register a histogram. [bounds] are the upper edges of the
    buckets, strictly increasing; an implicit overflow bucket catches the
    rest. [bounds] is only consulted on first registration. *)

val observe : histogram -> float -> unit

(** {1 Labels}

    Per-model / per-bucket instruments encode their labels into the
    registered name in the canonical form [base{k="v",k2="v2"}] — keys
    sorted, values escaped Prometheus-style (backslash, quote and
    newline get backslash escapes) — so the
    registry stays a flat name-keyed table and [dump] stays sorted and
    stable. The exposition writer ({!Prom}) splits the name back apart
    with {!split_labels}. *)

val labeled_name : string -> (string * string) list -> string
(** [labeled_name base labels] is the canonical registry name for
    [base] with [labels]. [labeled_name base [] = base]. Raises
    [Invalid_argument] on an invalid or duplicate label key, or on the
    reserved key ["le"]. *)

val split_labels : string -> string * (string * string) list
(** Inverse of {!labeled_name}. Names without a well-formed [{...}]
    suffix come back unchanged with no labels. *)

val counter_labeled : string -> (string * string) list -> counter
val gauge_labeled : string -> (string * string) list -> gauge

val histogram_labeled :
  ?bounds:float array -> string -> (string * string) list -> histogram

type hist_snapshot = {
  bounds : float array;
  counts : int array;  (** one longer than [bounds]: last is overflow *)
  total : int;
  sum : float;
  maxv : float;  (** largest value observed; [neg_infinity] when empty *)
}

val hist_snapshot : histogram -> hist_snapshot

val quantile : hist_snapshot -> float -> float
(** [quantile snap q] estimates the [q]-quantile ([q] clamped to [0, 1])
    by linear interpolation inside the bucket holding rank [q * total],
    Prometheus-style: the first bucket's lower edge is 0 (or [bounds.(0)]
    when that is negative). A rank landing in the overflow bucket
    interpolates between the last finite bound and the largest value
    actually observed, so quantiles beyond the top bound are reported
    honestly (strictly above the bound) rather than clamped to it.
    [nan] on an empty histogram. *)

type snapshot =
  | Counter of int
  | Gauge of float
  | Histogram of hist_snapshot

val dump : unit -> (string * snapshot) list
(** All registered instruments with their current values, sorted by name. *)

val reset : unit -> unit
(** Zero every registered instrument (instruments stay registered). For
    tests and for delimiting one compilation from the next. *)
