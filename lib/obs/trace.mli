(** Structured tracing: nestable spans with process-relative timestamps and
    key/value attributes.

    Instrumented code talks to a process-global {e recorder}. The default is
    {!noop}: every operation then reduces to one atomic load (and {!enter}
    returns a shared constant), so instrumentation costs ~nothing when
    tracing is off. Installing a {!collector} turns the same call sites into
    an in-memory event log that the exporters ({!Chrome_trace}, {!Summary})
    render.

    Domain safety: events may be recorded from any domain (the tuner's
    worker domains included). Each domain records onto its own {e track} — a
    small integer assigned from a free list on the domain's first event and
    released when the domain exits, so the finite pool of worker tracks is
    reused across tuning calls instead of growing one track per short-lived
    domain. Within a track, spans follow strict enter/exit discipline, so
    two spans on one track either nest or are disjoint — which is exactly
    the containment the Chrome trace viewer uses to draw nesting. *)

type attr = string * string

type flow_dir = Flow_start | Flow_step | Flow_end
(** Position of a flow point in its arc: Perfetto draws an arrow from
    each flow point to the next one carrying the same id. *)

type event =
  | Span of {
      name : string;
      track : int;
      ts_us : float;  (** start, microseconds since process start *)
      dur_us : float;  (** duration, >= 0 *)
      attrs : attr list;
    }
  | Instant of { name : string; track : int; ts_us : float; attrs : attr list }
  | Flow of {
      name : string;
      track : int;
      ts_us : float;
      id : int;  (** arc identity; points sharing an id are connected *)
      dir : flow_dir;
      attrs : attr list;
    }

val event_name : event -> string
val event_track : event -> int
val event_ts : event -> float

(** {1 Recorders} *)

type recorder

val noop : recorder
(** Discards everything; the process-global default. *)

val collector : unit -> recorder
(** A fresh in-memory event buffer (mutex-protected). *)

val events : recorder -> event list
(** Events recorded so far, sorted by start time (ties: longer span first,
    so a parent precedes its children). Empty for {!noop}. *)

val set_recorder : recorder -> unit
val recorder : unit -> recorder

val enabled : unit -> bool
(** [true] iff the current recorder is not {!noop}. One atomic load. *)

(** {1 Spans} *)

type span
(** An open span handle. With the no-op recorder, handles are a shared
    constant and all operations on them are free. *)

val null_span : span

val enter : ?attrs:attr list -> string -> span
(** Open a span at the current time on the calling domain's track. *)

val add : span -> string -> string -> unit
(** Attach an attribute to an open span (e.g. a result discovered while the
    span was running). No-op on {!null_span}. *)

val exit : span -> unit
(** Close the span and record it. No-op on {!null_span}. *)

val span : ?attrs:(unit -> attr list) -> string -> (span -> 'a) -> 'a
(** [span name f] runs [f] inside a span, passing the open handle so [f]
    can {!add} attributes it discovers while running ({!null_span} when
    tracing is off). [attrs] is a thunk so attribute lists are never built
    when tracing is off. If [f] raises, the span is recorded with an
    ["error"] attribute and the exception rethrown. *)

val instant : ?attrs:attr list -> string -> unit
(** A zero-duration point event. *)

val flow : ?attrs:attr list -> id:int -> dir:flow_dir -> string -> unit
(** A flow point at the current time on the calling domain's track. Emit
    one inside each span a logical item (a serve request, a batch)
    passes through, with a stable [id], and the trace viewer renders the
    item's path across tracks as a connected arc: [Flow_start] inside
    the first span, [Flow_step] inside intermediate ones, [Flow_end]
    inside the last. Binds to the {e enclosing} span — emit it between
    that span's enter and exit. No-op when tracing is off. *)

val with_collector : (unit -> 'a) -> 'a * event list
(** Run [f] with a fresh collector installed, restoring the previous
    recorder afterwards; returns [f]'s result and the collected events. *)
