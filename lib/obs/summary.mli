(** Human-readable observability summary.

    Aggregates span events by name (count, total, mean, max wall time) and
    appends the current {!Metrics} registry — the "read it in the terminal"
    counterpart of the Chrome trace export. *)

val pp_events : Format.formatter -> Trace.event list -> unit
(** The span aggregation table alone, sorted by total time descending. *)

val pp_metrics : Format.formatter -> unit -> unit
(** The current metrics registry (counters, gauges, histograms). *)

val pp : Format.formatter -> Trace.event list -> unit
(** Both of the above. *)
