let base = Unix.gettimeofday ()
let now_us () = (Unix.gettimeofday () -. base) *. 1e6
