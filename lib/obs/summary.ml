type agg = {
  mutable count : int;
  mutable total : float;
  mutable max : float;
}

let pp_events fmt events =
  let by_name : (string, agg) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun ev ->
      match (ev : Trace.event) with
      | Trace.Span { name; dur_us; _ } ->
        let a =
          match Hashtbl.find_opt by_name name with
          | Some a -> a
          | None ->
            let a = { count = 0; total = 0.; max = 0. } in
            Hashtbl.add by_name name a;
            a
        in
        a.count <- a.count + 1;
        a.total <- a.total +. dur_us;
        a.max <- Float.max a.max dur_us
      | Trace.Instant _ | Trace.Flow _ -> ())
    events;
  let rows = Hashtbl.fold (fun name a acc -> (name, a) :: acc) by_name [] in
  let rows = List.sort (fun (_, a) (_, b) -> Float.compare b.total a.total) rows in
  Format.fprintf fmt "@[<v>%-28s %8s %12s %12s %12s@,"
    "span" "count" "total(ms)" "mean(us)" "max(us)";
  List.iter
    (fun (name, a) ->
      Format.fprintf fmt "%-28s %8d %12.3f %12.1f %12.1f@," name a.count
        (a.total /. 1e3)
        (a.total /. float_of_int a.count)
        a.max)
    rows;
  Format.fprintf fmt "@]"

let pp_metrics fmt () =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (name, snap) ->
      match (snap : Metrics.snapshot) with
      | Metrics.Counter v -> Format.fprintf fmt "%-40s %12d@," name v
      | Metrics.Gauge v -> Format.fprintf fmt "%-40s %12g@," name v
      | Metrics.Histogram h ->
        (* An empty histogram has no sum/max/quantiles worth printing —
           and quantile would be nan — so it renders as just "n=0". *)
        if h.Metrics.total = 0 then Format.fprintf fmt "%-40s n=0" name
        else begin
          Format.fprintf fmt "%-40s n=%d sum=%g max=%g" name h.Metrics.total
            h.Metrics.sum h.Metrics.maxv;
          Format.fprintf fmt " p50=%g p95=%g p99=%g"
            (Metrics.quantile h 0.50) (Metrics.quantile h 0.95)
            (Metrics.quantile h 0.99)
        end;
        Array.iteri
          (fun i c ->
            if c > 0 then
              if i < Array.length h.Metrics.bounds then
                Format.fprintf fmt " [<=%g: %d]" h.Metrics.bounds.(i) c
              else Format.fprintf fmt " [rest: %d]" c)
          h.Metrics.counts;
        Format.fprintf fmt "@,")
    (Metrics.dump ());
  Format.fprintf fmt "@]"

let pp fmt events =
  let spans = List.exists (function Trace.Span _ -> true | _ -> false) events in
  if spans then Format.fprintf fmt "%a@," pp_events events;
  pp_metrics fmt ()
