(** Request-lifecycle event log.

    Where {!Trace} answers "what was each domain doing when", the event
    log answers "what happened to request 17": every serve request
    carries a stable request id and emits a small fixed vocabulary of
    lifecycle events with virtual timestamps and the batch/bucket/worker
    that handled it. The log is a bounded, domain-safe ring exported as
    JSONL (one object per line) with a strict hand-rolled validator,
    mirroring {!Chrome_trace}. A {!Flight} recorder keeps a short ring
    of recent events and freezes it into a dump the first time something
    goes wrong. *)

type kind =
  | Admitted  (** entered the queue (attrs: client, deadline, queue depth) *)
  | Rejected  (** bounced at admission: queue full / overloaded *)
  | Shed  (** dropped before dispatch: deadline already hopeless *)
  | Batched  (** grouped into a batch (attrs: bid, bucket) *)
  | Dispatched  (** batch handed to a worker (attrs: bid, worker) *)
  | Executed  (** data plane really ran the batch row *)
  | Verified  (** response bit-checked against the batch-1 plan *)
  | Completed  (** virtual-time completion (attrs: bid, miss flag) *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type event = {
  t : float;  (** virtual seconds since serve start *)
  rid : int;
  kind : kind;
  attrs : (string * string) list;
}

(** {1 Bounded ring log} *)

type log

val create : ?capacity:int -> unit -> log
(** A fresh log keeping the most recent [capacity] (default 65536)
    events. Raises [Invalid_argument] on a non-positive capacity. *)

val emit : log -> event -> unit
val events : log -> event list
(** Retained events, oldest first (emission order). *)

val total : log -> int
(** Events emitted over the log's lifetime, including dropped ones. *)

val dropped : log -> int
(** Events evicted by the ring bound ([total - retained]). *)

val sort_events : event list -> event list
(** Deterministic order for export: by [(t, rid, kind rank)], where the
    rank follows control-plane-then-data-plane emission order. Worker
    domains emit [Executed]/[Verified] concurrently, so raw emission
    order is racy; sorting restores a stable, per-request-ordered log. *)

(** {1 JSONL} *)

val event_to_json : event -> string
(** One line: [{"t":..,"rid":..,"ev":"..","attrs":{..}}] with [%.17g]
    timestamps so floats round-trip exactly. *)

val to_jsonl : event list -> string
val save_jsonl : string -> event list -> unit
(** Atomic (temp file + rename). *)

val parse_jsonl : string -> (event list, string) result
(** Strict parse of a JSONL document (blank lines allowed). *)

val check : string -> (int * int, string) result
(** Parse and validate a JSONL event log: syntax plus per-request
    lifecycle rules (timestamps monotone per request; first event
    [Admitted] or [Rejected]; exactly one terminal event; [Rejected]
    sole; [Shed] preceded only by [Admitted]; [Completed] preceded by
    exactly one [Batched] and one [Dispatched], with
    [Executed]/[Verified] at most once each and only after
    [Dispatched]). [Ok (events, requests)] on success. *)

val check_file : string -> (int * int, string) result

(** {1 Flight recorder} *)

module Flight : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** A recorder retaining the most recent [capacity] (default 256)
      events. *)

  val record : t -> event -> unit
  val trigger : t -> reason:string -> rid:int -> t:float -> unit -> bool
  (** Freeze the ring into a JSON dump (the offending request's full
      retained timeline plus the surrounding context) and bump
      [obs.flight_dumps]. Only the first trigger captures; [true] iff
      this call was it. *)

  val fired : t -> bool
  val dump : t -> string option
  val save : t -> string -> bool
  (** Write the captured dump to [path] (atomic); [false] when nothing
      fired. *)
end

(** {1 Process-global sink}

    Off by default: instrumented code pays one atomic load per event
    when nobody is listening. *)

val set_log : log option -> unit
val set_flight : Flight.t option -> unit
val enabled : unit -> bool
(** Whether any sink (log or flight recorder) is attached. *)

val record : event -> unit
(** Append to the attached log and flight recorder, if any. *)

val flight_trip : reason:string -> rid:int -> t:float -> unit -> bool
(** Trip the attached flight recorder. [true] on the first (and only)
    capture; [false] when none is attached or it already fired. *)

val with_log : log -> (unit -> 'a) -> 'a
(** Attach [log] for the duration of [f] (detached on return or
    raise). *)
