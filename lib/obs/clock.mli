(** Process-relative clock for trace timestamps.

    Timestamps are microseconds since the module was initialized (process
    start, for all practical purposes), so traces from one process share one
    origin and stay small enough to print with fixed precision. The source
    is [Unix.gettimeofday]; span durations are clamped non-negative by the
    recorder, so a (rare) wall-clock step cannot produce a negative
    duration. *)

val now_us : unit -> float
(** Microseconds elapsed since process start. *)
