(* Request-lifecycle event log.

   Where Trace answers "what was each domain doing when", the event log
   answers "what happened to request 17": every serve request carries a
   stable request id and emits a small fixed vocabulary of lifecycle
   events with virtual timestamps. The log is a bounded mutex'd ring —
   worker domains emit concurrently during real execution — exported as
   JSONL (one object per line) and hand-validated like chrome_trace. *)

type kind =
  | Admitted
  | Rejected
  | Shed
  | Batched
  | Dispatched
  | Executed
  | Verified
  | Completed

let kind_to_string = function
  | Admitted -> "admitted"
  | Rejected -> "rejected"
  | Shed -> "shed"
  | Batched -> "batched"
  | Dispatched -> "dispatched"
  | Executed -> "executed"
  | Verified -> "verified"
  | Completed -> "completed"

let kind_of_string = function
  | "admitted" -> Some Admitted
  | "rejected" -> Some Rejected
  | "shed" -> Some Shed
  | "batched" -> Some Batched
  | "dispatched" -> Some Dispatched
  | "executed" -> Some Executed
  | "verified" -> Some Verified
  | "completed" -> Some Completed
  | _ -> None

(* Emission order within one timestamp: control-plane decisions first,
   then data-plane confirmations. Used by [sort_events] to make logs
   deterministic even when worker domains emitted out of order. *)
let kind_rank = function
  | Admitted -> 0
  | Rejected -> 1
  | Shed -> 2
  | Batched -> 3
  | Dispatched -> 4
  | Completed -> 5
  | Executed -> 6
  | Verified -> 7

type event = {
  t : float;  (* virtual seconds *)
  rid : int;
  kind : kind;
  attrs : (string * string) list;
}

(* --- bounded ring ------------------------------------------------------ *)

type log = {
  buf : event option array;
  mutable head : int;  (* next write position *)
  mutable len : int;
  mutable seen : int;  (* total emitted, including dropped *)
  lock : Mutex.t;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Events.create: capacity must be positive";
  { buf = Array.make capacity None; head = 0; len = 0; seen = 0; lock = Mutex.create () }

let emit log ev =
  Mutex.lock log.lock;
  let cap = Array.length log.buf in
  log.buf.(log.head) <- Some ev;
  log.head <- (log.head + 1) mod cap;
  if log.len < cap then log.len <- log.len + 1;
  log.seen <- log.seen + 1;
  Mutex.unlock log.lock

let events log =
  Mutex.lock log.lock;
  let cap = Array.length log.buf in
  let start = (log.head - log.len + cap) mod cap in
  let out =
    List.init log.len (fun i ->
        match log.buf.((start + i) mod cap) with
        | Some ev -> ev
        | None -> assert false)
  in
  Mutex.unlock log.lock;
  out

let total log =
  Mutex.lock log.lock;
  let n = log.seen in
  Mutex.unlock log.lock;
  n

let dropped log =
  Mutex.lock log.lock;
  let n = log.seen - log.len in
  Mutex.unlock log.lock;
  n

let sort_events evs =
  List.stable_sort
    (fun a b ->
      let c = Float.compare a.t b.t in
      if c <> 0 then c
      else
        let c = Int.compare a.rid b.rid in
        if c <> 0 then c else Int.compare (kind_rank a.kind) (kind_rank b.kind))
    evs

(* --- JSONL ------------------------------------------------------------- *)

let event_to_json ev =
  let b = Buffer.create 96 in
  (* %.17g: shortest decimal that round-trips any double, so the parsed
     log compares bit-equal to the emitted one. *)
  Buffer.add_string b (Printf.sprintf "{\"t\":%.17g,\"rid\":%d,\"ev\":\"%s\"" ev.t ev.rid (kind_to_string ev.kind));
  if ev.attrs <> [] then begin
    Buffer.add_string b ",\"attrs\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" (Json.escape k) (Json.escape v)))
      ev.attrs;
    Buffer.add_char b '}'
  end;
  Buffer.add_char b '}';
  Buffer.contents b

let to_jsonl evs = String.concat "" (List.map (fun ev -> event_to_json ev ^ "\n") evs)

let save_jsonl path evs =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  List.iter
    (fun ev ->
      output_string oc (event_to_json ev);
      output_char oc '\n')
    evs;
  close_out oc;
  Sys.rename tmp path

let event_of_json line =
  match Json.parse line with
  | Error e -> Error e
  | Ok j -> (
    match j with
    | Json.Obj fields ->
      let get k = List.assoc_opt k fields in
      (match (get "t", get "rid", get "ev") with
      | Some (Json.Num t), Some (Json.Num rid), Some (Json.Str ks) -> (
        if Float.is_nan t then Error "event: \"t\" is nan"
        else if Float.of_int (int_of_float rid) <> rid then
          Error "event: \"rid\" is not an integer"
        else
          match kind_of_string ks with
          | None -> Error (Printf.sprintf "event: unknown kind %S" ks)
          | Some kind -> (
            match get "attrs" with
            | None -> Ok { t; rid = int_of_float rid; kind; attrs = [] }
            | Some (Json.Obj attrs) ->
              let rec conv acc = function
                | [] -> Ok (List.rev acc)
                | (k, Json.Str v) :: rest -> conv ((k, v) :: acc) rest
                | (k, _) :: _ ->
                  Error (Printf.sprintf "event: attr %S is not a string" k)
              in
              (match conv [] attrs with
              | Ok attrs -> Ok { t; rid = int_of_float rid; kind; attrs }
              | Error e -> Error e)
            | Some _ -> Error "event: \"attrs\" is not an object"))
      | _ -> Error "event: requires numeric \"t\", numeric \"rid\", string \"ev\"")
    | _ -> Error "event: line is not an object")

let parse_jsonl s =
  let lines = String.split_on_char '\n' s in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      if String.trim line = "" then go (n + 1) acc rest
      else (
        match event_of_json line with
        | Ok ev -> go (n + 1) (ev :: acc) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" n e))
  in
  go 1 [] lines

(* --- lifecycle validation ---------------------------------------------- *)

(* Per request id: timestamps non-decreasing; the first event is
   [Admitted] or [Rejected]; there is exactly one terminal event
   ([Rejected]/[Shed]/[Completed]); [Rejected] is the sole event of its
   request; [Shed] follows a bare [Admitted]; [Completed] requires
   exactly one [Batched] and one [Dispatched] in between, with
   [Executed]/[Verified] (at most one each) after [Dispatched] — the
   data plane may confirm before or after the virtual-time completion. *)
let check_lifecycle evs =
  let by_rid = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      let l = try Hashtbl.find by_rid ev.rid with Not_found -> [] in
      Hashtbl.replace by_rid ev.rid (ev :: l))
    evs;
  let err = ref None in
  let fail rid msg =
    if !err = None then err := Some (Printf.sprintf "rid %d: %s" rid msg)
  in
  Hashtbl.iter
    (fun rid revs ->
      let evs = List.rev revs in
      (* timestamps monotone *)
      ignore
        (List.fold_left
           (fun prev ev ->
             if ev.t < prev then fail rid "timestamps not monotone";
             ev.t)
           Float.neg_infinity evs);
      let count k = List.length (List.filter (fun e -> e.kind = k) evs) in
      (match evs with
      | [] -> ()
      | first :: _ ->
        if first.kind <> Admitted && first.kind <> Rejected then
          fail rid "first event must be admitted or rejected");
      let terminals = count Rejected + count Shed + count Completed in
      if terminals <> 1 then
        fail rid (Printf.sprintf "%d terminal events (want exactly 1)" terminals);
      if count Rejected > 0 && List.length evs <> 1 then
        fail rid "rejected must be the sole event";
      if count Shed > 0 then begin
        match List.map (fun e -> e.kind) evs with
        | [ Admitted; Shed ] -> ()
        | _ -> fail rid "shed request must be exactly [admitted; shed]"
      end;
      if count Completed > 0 then begin
        if count Admitted <> 1 then fail rid "completed request must be admitted once";
        if count Batched <> 1 then fail rid "completed request must be batched once";
        if count Dispatched <> 1 then
          fail rid "completed request must be dispatched once";
        if count Executed > 1 then fail rid "more than one executed event";
        if count Verified > 1 then fail rid "more than one verified event";
        (* order: admitted < batched <= dispatched < completed;
           executed/verified after dispatched *)
        let pos k =
          let rec go i = function
            | [] -> -1
            | e :: rest -> if e.kind = k then i else go (i + 1) rest
          in
          go 0 evs
        in
        let a = pos Admitted
        and b = pos Batched
        and d = pos Dispatched
        and c = pos Completed in
        if not (a < b && b <= d && d < c) then
          fail rid "order must be admitted, batched, dispatched, completed";
        let after_dispatch k =
          let p = pos k in
          if p >= 0 && p < d then fail rid (kind_to_string k ^ " before dispatched")
        in
        after_dispatch Executed;
        after_dispatch Verified
      end)
    by_rid;
  match !err with
  | Some e -> Error e
  | None -> Ok (List.length evs, Hashtbl.length by_rid)

let check s =
  match parse_jsonl s with
  | Error e -> Error e
  | Ok evs -> check_lifecycle evs

let check_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  check s

(* --- flight recorder --------------------------------------------------- *)

module Flight = struct
  (* A second, smaller ring holding the most recent events; when the
     first deadline miss or verification mismatch trips it, the ring is
     frozen into a JSON dump carrying the offending request's full
     timeline plus the surrounding context. Fires at most once per
     arming so overload storms produce one artifact, not thousands. *)

  type t = {
    ring : log;
    fired : string option Atomic.t;  (* captured dump JSON *)
  }

  let create ?(capacity = 256) () = { ring = create ~capacity (); fired = Atomic.make None }
  let record fr ev = if Atomic.get fr.fired = None then emit fr.ring ev
  let fired fr = Atomic.get fr.fired <> None
  let dump fr = Atomic.get fr.fired

  let m_dumps = Metrics.counter "obs.flight_dumps"

  let render ~reason ~rid ~t recent =
    let b = Buffer.create 1024 in
    Buffer.add_string b
      (Printf.sprintf "{\n  \"reason\": \"%s\",\n  \"rid\": %d,\n  \"t\": %.17g,\n"
         (Json.escape reason) rid t);
    let dump_list name evs =
      Buffer.add_string b (Printf.sprintf "  \"%s\": [\n" name);
      List.iteri
        (fun i ev ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b ("    " ^ event_to_json ev))
        evs;
      Buffer.add_string b "\n  ]"
    in
    dump_list "timeline" (List.filter (fun ev -> ev.rid = rid) recent);
    Buffer.add_string b ",\n";
    dump_list "recent" recent;
    Buffer.add_string b "\n}\n";
    Buffer.contents b

  let trigger fr ~reason ~rid ~t () =
    let recent = sort_events (events fr.ring) in
    let d = render ~reason ~rid ~t recent in
    if Atomic.compare_and_set fr.fired None (Some d) then begin
      Metrics.incr m_dumps;
      true
    end
    else false

  let save fr path =
    match Atomic.get fr.fired with
    | None -> false
    | Some d ->
      let tmp = path ^ ".tmp" in
      let oc = open_out tmp in
      output_string oc d;
      close_out oc;
      Sys.rename tmp path;
      true
end

(* --- process-global sink ----------------------------------------------- *)

(* Like Trace's recorder: a process-global sink that is off by default,
   so instrumented code pays one atomic load per event when nobody is
   listening. The serving stack calls [record]; the CLI and tests turn
   the sink on around a run. *)

let current_log : log option Atomic.t = Atomic.make None
let current_flight : Flight.t option Atomic.t = Atomic.make None

let set_log l = Atomic.set current_log l
let set_flight f = Atomic.set current_flight f

let enabled () = Atomic.get current_log <> None || Atomic.get current_flight <> None

let record ev =
  (match Atomic.get current_log with Some l -> emit l ev | None -> ());
  match Atomic.get current_flight with Some fr -> Flight.record fr ev | None -> ()

(* Trip the armed flight recorder, if any. Returns [true] on the first
   (and only) trip. *)
let flight_trip ~reason ~rid ~t () =
  match Atomic.get current_flight with
  | Some fr -> Flight.trigger fr ~reason ~rid ~t ()
  | None -> false

let with_log log f =
  set_log (Some log);
  Fun.protect ~finally:(fun () -> set_log None) f
