let add_args b attrs =
  Buffer.add_string b "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" (Json.escape k) (Json.escape v)))
    attrs;
  Buffer.add_string b "}"

let add_event b ev =
  match (ev : Trace.event) with
  | Trace.Span { name; track; ts_us; dur_us; attrs } ->
    Buffer.add_string b
      (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":"
         (Json.escape name) track ts_us dur_us);
    add_args b attrs;
    Buffer.add_string b "}"
  | Trace.Instant { name; track; ts_us; attrs } ->
    Buffer.add_string b
      (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"args\":"
         (Json.escape name) track ts_us);
    add_args b attrs;
    Buffer.add_string b "}"
  | Trace.Flow { name; track; ts_us; id; dir; attrs } ->
    let ph =
      match dir with
      | Trace.Flow_start -> "s"
      | Trace.Flow_step -> "t"
      | Trace.Flow_end -> "f"
    in
    (* bp:e binds the step/end point to its enclosing slice, which is how
       Perfetto attaches the arrow to the span the point was emitted in. *)
    let bp = match dir with Trace.Flow_start -> "" | _ -> ",\"bp\":\"e\"" in
    Buffer.add_string b
      (Printf.sprintf
         "{\"name\":\"%s\",\"cat\":\"flow\",\"ph\":\"%s\",\"id\":%d%s,\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"args\":"
         (Json.escape name) ph id bp track ts_us);
    add_args b attrs;
    Buffer.add_string b "}"

let to_string events =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  (* Name the process and each track; track 0 is the calling domain. *)
  Buffer.add_string b
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"hidet\"}}";
  let tracks = List.sort_uniq compare (List.map Trace.event_track events) in
  List.iter
    (fun t ->
      Buffer.add_string b
        (Printf.sprintf
           ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           t
           (if t = 0 then "domain 0 (main)" else Printf.sprintf "domain %d (worker)" t)))
    tracks;
  List.iter
    (fun ev ->
      Buffer.add_string b ",";
      add_event b ev)
    events;
  Buffer.add_string b "]}";
  Buffer.contents b

let write oc events = output_string oc (to_string events)

let save path events =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> write oc events);
  Sys.rename tmp path

(* --- validation --------------------------------------------------------------- *)

let check text =
  match Json.parse text with
  | Error msg -> Error (Printf.sprintf "not valid JSON (%s)" msg)
  | Ok json -> (
    match Option.bind (Json.member "traceEvents" json) Json.to_arr with
    | None -> Error "no traceEvents array"
    | Some events ->
      let count = ref 0 in
      let rec go = function
        | [] -> Ok !count
        | ev :: rest -> (
          let num field = Option.bind (Json.member field ev) Json.to_num in
          match Option.bind (Json.member "ph" ev) Json.to_str with
          | None -> Error "event without \"ph\""
          | Some "M" -> go rest
          | Some ph -> (
            match Option.bind (Json.member "name" ev) Json.to_str with
            | None -> Error "event without a string name"
            | Some name -> (
              let bad msg = Error (Printf.sprintf "event %S: %s" name msg) in
              match (ph, num "ts", num "dur") with
              | "X", Some ts, Some dur when ts >= 0. && dur >= 0. ->
                Stdlib.incr count;
                go rest
              | "X", Some _, Some _ -> bad "negative ts or dur"
              | "X", _, _ -> bad "missing numeric ts/dur"
              | "i", Some ts, _ when ts >= 0. ->
                Stdlib.incr count;
                go rest
              | "i", _, _ -> bad "missing or negative ts"
              | ("s" | "t" | "f"), Some ts, _ when ts >= 0. -> (
                match num "id" with
                | Some _ ->
                  Stdlib.incr count;
                  go rest
                | None -> bad "flow event without numeric id")
              | ("s" | "t" | "f"), _, _ -> bad "missing or negative ts"
              | ph, _, _ -> bad (Printf.sprintf "unknown phase %S" ph))))
      in
      go events)

let check_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    check text
