(** Prometheus text-exposition writer for the {!Metrics} registry.

    Registry names map to metric families by replacing characters
    outside [[a-zA-Z0-9_:]] with underscores ("serve.queue_wait_ms"
    becomes [serve_queue_wait_ms]); labeled registry names (see
    {!Metrics.labeled_name}) are split back into family + label pairs.
    Histograms render the full cumulative [_bucket] / [_sum] / [_count]
    triple with [le="+Inf"] equal to the total, so a real scraper would
    compute the same quantiles {!Summary} prints. A strict hand-rolled
    {!check} validates the format back, mirroring
    {!Chrome_trace.check}. *)

val sanitize : string -> string
(** Metric-family name for a registry name. *)

val of_dump : (string * Metrics.snapshot) list -> string * int
(** Exposition text for a {!Metrics.dump}, plus the number of sample
    lines. Families render in first-appearance order with one [# TYPE]
    line each; label variants of one family are grouped even when the
    registry sort order interleaves other names between them. *)

val to_string : unit -> string
(** [fst (of_dump (Metrics.dump ()))]. *)

val save : string -> int
(** Write the current registry to [path] (atomic: temp file + rename);
    returns the number of sample lines written. *)

val check : string -> (int, string) result
(** Validate exposition text: every sample's family must carry a single
    [# TYPE] line ([_bucket]/[_sum]/[_count] suffixes resolve to their
    histogram family), label sets must parse with Prometheus escaping,
    no duplicate samples, and each histogram series must have ascending
    [le] bounds, cumulative counts, a final [le="+Inf"] bucket equal to
    its [_count], and a [_sum]. [Ok samples] on success. *)

val check_file : string -> (int, string) result
