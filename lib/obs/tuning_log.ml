type outcome = Measured | Infeasible | Rejected

type proposer = Exhaustive | Seed | Mutation | Crossover

type trial = {
  engine : string;
  workload : string;
  index : int;
  config : string;
  outcome : outcome;
  latency : float;
  proposer : proposer;
}

let outcome_to_string = function
  | Measured -> "measured"
  | Infeasible -> "infeasible"
  | Rejected -> "rejected"

let outcome_of_string = function
  | "measured" -> Some Measured
  | "infeasible" -> Some Infeasible
  | "rejected" -> Some Rejected
  | _ -> None

let proposer_to_string = function
  | Exhaustive -> "exhaustive"
  | Seed -> "seed"
  | Mutation -> "mutation"
  | Crossover -> "crossover"

let proposer_of_string = function
  | "exhaustive" -> Some Exhaustive
  | "seed" -> Some Seed
  | "mutation" -> Some Mutation
  | "crossover" -> Some Crossover
  | _ -> None

type sink = { lock : Mutex.t; mutable entries : trial list }

let current : sink option Atomic.t = Atomic.make None
let enabled () = Atomic.get current <> None

let start () =
  Atomic.set current (Some { lock = Mutex.create (); entries = [] })

let record t =
  match Atomic.get current with
  | None -> ()
  | Some s ->
    Mutex.lock s.lock;
    s.entries <- t :: s.entries;
    Mutex.unlock s.lock

let snapshot s =
  Mutex.lock s.lock;
  let entries = s.entries in
  Mutex.unlock s.lock;
  List.rev entries

let stop () =
  match Atomic.get current with
  | None -> []
  | Some s ->
    Atomic.set current None;
    snapshot s

let trials () =
  match Atomic.get current with None -> [] | Some s -> snapshot s

let sanitize s =
  String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s

let save_tsv path entries =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      (* The proposer column is appended last so readers of the original
         six-column format keep working unchanged. *)
      output_string oc
        "engine\tworkload\tindex\tconfig\toutcome\tlatency_us\tproposer\n";
      List.iter
        (fun t ->
          Printf.fprintf oc "%s\t%s\t%d\t%s\t%s\t%.3f\t%s\n" (sanitize t.engine)
            (sanitize t.workload) t.index (sanitize t.config)
            (outcome_to_string t.outcome)
            (if t.latency < infinity then t.latency *. 1e6 else -1.)
            (proposer_to_string t.proposer))
        entries);
  Sys.rename tmp path

(* Accepts both the original six-column rows (proposer defaults to
   [Exhaustive] — every pre-proposer trial came from the exhaustive
   enumeration) and the current seven-column rows. *)
let parse_line line =
  let fields = String.split_on_char '\t' line in
  let base engine workload index config outcome latency proposer =
    match
      (int_of_string_opt index, outcome_of_string outcome,
       float_of_string_opt latency)
    with
    | Some index, Some outcome, Some lat_us when index >= 0 ->
      let latency =
        if lat_us < 0. || not (Float.is_finite lat_us) then infinity
        else lat_us /. 1e6
      in
      Some { engine; workload; index; config; outcome; latency; proposer }
    | _ -> None
  in
  match fields with
  | [ engine; workload; index; config; outcome; latency ] ->
    base engine workload index config outcome latency Exhaustive
  | [ engine; workload; index; config; outcome; latency; proposer ] -> (
    match proposer_of_string proposer with
    | Some p -> base engine workload index config outcome latency p
    | None -> None)
  | _ -> None

let load_tsv path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let entries = ref [] in
        (try
           while true do
             match parse_line (input_line ic) with
             | Some t -> entries := t :: !entries
             | None -> () (* header, or a corrupt line: skip *)
           done
         with End_of_file -> ());
        Ok (List.rev !entries))
