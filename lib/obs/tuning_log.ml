type outcome = Measured | Infeasible | Rejected

type trial = {
  engine : string;
  workload : string;
  index : int;
  config : string;
  outcome : outcome;
  latency : float;
}

let outcome_to_string = function
  | Measured -> "measured"
  | Infeasible -> "infeasible"
  | Rejected -> "rejected"

type sink = { lock : Mutex.t; mutable entries : trial list }

let current : sink option Atomic.t = Atomic.make None
let enabled () = Atomic.get current <> None

let start () =
  Atomic.set current (Some { lock = Mutex.create (); entries = [] })

let record t =
  match Atomic.get current with
  | None -> ()
  | Some s ->
    Mutex.lock s.lock;
    s.entries <- t :: s.entries;
    Mutex.unlock s.lock

let snapshot s =
  Mutex.lock s.lock;
  let entries = s.entries in
  Mutex.unlock s.lock;
  List.rev entries

let stop () =
  match Atomic.get current with
  | None -> []
  | Some s ->
    Atomic.set current None;
    snapshot s

let trials () =
  match Atomic.get current with None -> [] | Some s -> snapshot s

let sanitize s =
  String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s

let save_tsv path entries =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "engine\tworkload\tindex\tconfig\toutcome\tlatency_us\n";
      List.iter
        (fun t ->
          Printf.fprintf oc "%s\t%s\t%d\t%s\t%s\t%.3f\n" (sanitize t.engine)
            (sanitize t.workload) t.index (sanitize t.config)
            (outcome_to_string t.outcome)
            (if t.latency < infinity then t.latency *. 1e6 else -1.))
        entries);
  Sys.rename tmp path
