(** Minimal JSON support for the trace exporter and its validator.

    No JSON library is among the repository's allowed dependencies, so the
    Chrome-trace exporter escapes strings through {!escape} and the
    [trace-check] tooling and tests parse its output back with {!parse} — a
    strict, self-contained recursive-descent parser (objects, arrays,
    strings with escapes, numbers, booleans, null). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-literal escaping of [s] (without the surrounding quotes):
    backslash, quote, and all control characters below 0x20. *)

val parse : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error. The error
    string includes the offending byte offset. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing fields or non-objects. *)

val to_num : t -> float option
val to_str : t -> string option
val to_arr : t -> t list option
