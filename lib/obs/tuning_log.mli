(** The tuning log: one structured record per tuning trial.

    This is the AutoTVM/Ansor-style "tuning records" artifact: every
    candidate a tuner evaluates is logged with its workload signature,
    candidate index, printable config, outcome and estimated latency —
    enough to regenerate the Fig 14 (cost) and Fig 15 (schedule-latency
    distribution) quantities offline, or to feed a learned cost model later.

    Collection follows the {!Trace} recorder model: a process-global sink,
    off by default (recording is then one atomic load), enabled with
    {!start}. Records may arrive from any domain. *)

type outcome =
  | Measured  (** compiled and measured, finite latency *)
  | Infeasible  (** compiled, but the device model rejected it *)
  | Rejected  (** the template refused the config; never measured *)

type trial = {
  engine : string;  (** "hidet", "autotvm", "ansor", ... *)
  workload : string;  (** workload signature, e.g. the schedule-cache key *)
  index : int;  (** candidate index in the enumeration / trial number *)
  config : string;  (** printable schedule config ("" if unavailable) *)
  outcome : outcome;
  latency : float;  (** estimated seconds; [infinity] unless [Measured] *)
}

val outcome_to_string : outcome -> string

val enabled : unit -> bool
val start : unit -> unit
(** Begin collecting, discarding any previous log. *)

val record : trial -> unit
(** No-op unless collecting. Callers on hot paths should guard record
    construction with {!enabled}. *)

val stop : unit -> trial list
(** Stop collecting and return the log in record order. *)

val trials : unit -> trial list
(** Snapshot without stopping. *)

val save_tsv : string -> trial list -> unit
(** Tab-separated export: engine, workload, index, config, outcome,
    latency in microseconds. One header line. *)
