(** The tuning log: one structured record per tuning trial.

    This is the AutoTVM/Ansor-style "tuning records" artifact: every
    candidate a tuner evaluates is logged with its workload signature,
    candidate index, printable config, outcome and estimated latency —
    enough to regenerate the Fig 14 (cost) and Fig 15 (schedule-latency
    distribution) quantities offline, or to feed a learned cost model later.

    Collection follows the {!Trace} recorder model: a process-global sink,
    off by default (recording is then one atomic load), enabled with
    {!start}. Records may arrive from any domain. *)

type outcome =
  | Measured  (** compiled and measured, finite latency *)
  | Infeasible  (** compiled, but the device model rejected it *)
  | Rejected  (** the template refused the config; never measured *)

type proposer =
  | Exhaustive  (** the exhaustive enumeration proposed this candidate *)
  | Seed  (** guided search: initial population member *)
  | Mutation  (** guided search: single-field mutation of an elite *)
  | Crossover  (** guided search: field-wise mix of two elites *)

type trial = {
  engine : string;  (** "hidet", "autotvm", "ansor", ... *)
  workload : string;  (** workload signature, e.g. the schedule-cache key *)
  index : int;  (** candidate index in the enumeration / trial number *)
  config : string;  (** printable schedule config ("" if unavailable) *)
  outcome : outcome;
  latency : float;  (** estimated seconds; [infinity] unless [Measured] *)
  proposer : proposer;  (** which search stage proposed the candidate *)
}

val outcome_to_string : outcome -> string
val outcome_of_string : string -> outcome option
val proposer_to_string : proposer -> string
val proposer_of_string : string -> proposer option

val enabled : unit -> bool
val start : unit -> unit
(** Begin collecting, discarding any previous log. *)

val record : trial -> unit
(** No-op unless collecting. Callers on hot paths should guard record
    construction with {!enabled}. *)

val stop : unit -> trial list
(** Stop collecting and return the log in record order. *)

val trials : unit -> trial list
(** Snapshot without stopping. *)

val save_tsv : string -> trial list -> unit
(** Tab-separated export: engine, workload, index, config, outcome,
    latency in microseconds, proposer. One header line. The proposer
    column is appended after the original six so readers of the earlier
    format keep working. *)

val parse_line : string -> trial option
(** Parse one TSV data row. Accepts both the original six-column rows
    (proposer defaults to [Exhaustive]) and the current seven-column rows;
    [None] for the header or a malformed row. Negative or non-finite
    latencies read back as [infinity] (the inverse of {!save_tsv}'s [-1]
    encoding). *)

val load_tsv : string -> (trial list, string) result
(** Read a whole TSV written by {!save_tsv} (either column count),
    skipping the header and malformed rows; [Error] on an unreadable
    file. Used to warm-start the guided tuner's cost model from prior
    trials. *)
