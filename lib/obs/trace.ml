type attr = string * string
type flow_dir = Flow_start | Flow_step | Flow_end

type event =
  | Span of {
      name : string;
      track : int;
      ts_us : float;
      dur_us : float;
      attrs : attr list;
    }
  | Instant of { name : string; track : int; ts_us : float; attrs : attr list }
  | Flow of {
      name : string;
      track : int;
      ts_us : float;
      id : int;
      dir : flow_dir;
      attrs : attr list;
    }

let event_name = function Span s -> s.name | Instant i -> i.name | Flow f -> f.name

let event_track = function
  | Span s -> s.track
  | Instant i -> i.track
  | Flow f -> f.track

let event_ts = function Span s -> s.ts_us | Instant i -> i.ts_us | Flow f -> f.ts_us
let event_dur = function Span s -> s.dur_us | Instant _ | Flow _ -> 0.

(* --- recorders --------------------------------------------------------------- *)

type buf = { lock : Mutex.t; mutable evs : event list }
type recorder = Noop | Collect of buf

let noop = Noop
let collector () = Collect { lock = Mutex.create (); evs = [] }
let current : recorder Atomic.t = Atomic.make Noop
let set_recorder r = Atomic.set current r
let recorder () = Atomic.get current
let enabled () = Atomic.get current != Noop

let record buf ev =
  Mutex.lock buf.lock;
  buf.evs <- ev :: buf.evs;
  Mutex.unlock buf.lock

let events = function
  | Noop -> []
  | Collect b ->
    Mutex.lock b.lock;
    let evs = b.evs in
    Mutex.unlock b.lock;
    (* Start-time order; a parent shares its child's start only if it opened
       first, so break ties toward the longer span to keep parents ahead. *)
    List.stable_sort
      (fun a b ->
        match Float.compare (event_ts a) (event_ts b) with
        | 0 -> Float.compare (event_dur b) (event_dur a)
        | c -> c)
      (List.rev evs)

(* --- tracks -------------------------------------------------------------------

   One track per live domain, assigned from a free list on the domain's
   first event and released at domain exit. Short-lived tuner workers from
   successive [Parallel.map] calls therefore reuse tracks 1..w instead of
   each new domain opening a fresh track; the main domain holds track 0. *)

let track_lock = Mutex.create ()
let tracks_in_use : (int, unit) Hashtbl.t = Hashtbl.create 16

let acquire_track () =
  Mutex.lock track_lock;
  let rec free i = if Hashtbl.mem tracks_in_use i then free (i + 1) else i in
  let t = free 0 in
  Hashtbl.replace tracks_in_use t ();
  Mutex.unlock track_lock;
  t

let release_track t =
  Mutex.lock track_lock;
  Hashtbl.remove tracks_in_use t;
  Mutex.unlock track_lock

let track_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)

let track () =
  let t = Domain.DLS.get track_key in
  if t >= 0 then t
  else begin
    let t = acquire_track () in
    Domain.DLS.set track_key t;
    Domain.at_exit (fun () -> release_track t);
    t
  end

(* --- spans -------------------------------------------------------------------- *)

type span =
  | Null
  | Open of {
      name : string;
      track : int;
      ts : float;
      mutable attrs : attr list;  (** reversed *)
      buf : buf;
    }

let null_span = Null

let enter ?(attrs = []) name =
  match Atomic.get current with
  | Noop -> Null
  | Collect buf ->
    Open { name; track = track (); ts = Clock.now_us (); attrs = List.rev attrs; buf }

let add sp key value =
  match sp with Null -> () | Open o -> o.attrs <- (key, value) :: o.attrs

let exit sp =
  match sp with
  | Null -> ()
  | Open o ->
    let dur = Float.max 0. (Clock.now_us () -. o.ts) in
    record o.buf
      (Span
         {
           name = o.name;
           track = o.track;
           ts_us = o.ts;
           dur_us = dur;
           attrs = List.rev o.attrs;
         })

let span ?attrs name f =
  if not (enabled ()) then f Null
  else begin
    let attrs = match attrs with None -> [] | Some thunk -> thunk () in
    let sp = enter ~attrs name in
    match f sp with
    | v ->
      exit sp;
      v
    | exception e ->
      add sp "error" (Printexc.to_string e);
      exit sp;
      raise e
  end

let instant ?(attrs = []) name =
  match Atomic.get current with
  | Noop -> ()
  | Collect buf ->
    record buf (Instant { name; track = track (); ts_us = Clock.now_us (); attrs })

let flow ?(attrs = []) ~id ~dir name =
  match Atomic.get current with
  | Noop -> ()
  | Collect buf ->
    record buf (Flow { name; track = track (); ts_us = Clock.now_us (); id; dir; attrs })

let with_collector f =
  let r = collector () in
  let prev = recorder () in
  set_recorder r;
  let v = Fun.protect ~finally:(fun () -> set_recorder prev) f in
  (v, events r)
