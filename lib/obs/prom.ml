(* Prometheus text-exposition writer for the Metrics registry, plus a
   strict hand-rolled validator in the spirit of chrome_trace.check.

   Registry names like "serve.queue_wait_ms" become the metric family
   "serve_queue_wait_ms"; labeled names ("base{k=\"v\"}", see
   Metrics.labeled_name) are split back into family + labels. Histograms
   render the full cumulative _bucket / _sum / _count triple so a real
   scraper could compute the same quantiles Summary prints. *)

let sanitize name =
  let ok_first = function 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false in
  let ok = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
    | _ -> false
  in
  let b = Buffer.create (String.length name + 1) in
  String.iteri
    (fun i c ->
      if i = 0 && not (ok_first c) then Buffer.add_char b '_';
      Buffer.add_char b (if ok c then c else '_'))
    name;
  Buffer.contents b

let escape_label_value v =
  let b = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

(* Shortest decimal that re-parses to the same double; counts are
   integers and render as such. *)
let fmt_value v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let render_labels labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
           labels)
    ^ "}"

type family = {
  fam : string;  (* sanitized family name *)
  kind : string;  (* "counter" | "gauge" | "histogram" *)
  mutable members : ((string * string) list * Metrics.snapshot) list;  (* reversed *)
}

let snapshot_kind = function
  | Metrics.Counter _ -> "counter"
  | Metrics.Gauge _ -> "gauge"
  | Metrics.Histogram _ -> "histogram"

let of_dump dump =
  (* Group by sanitized family. dump is sorted by full registry name but
     a family's members need not be adjacent there ("base_total" sorts
     between "base" and "base{...}"), so group via a table and render in
     first-appearance order, members in dump (= sorted) order. *)
  let order = ref [] in
  let families : (string, family) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (name, snap) ->
      let base, labels = Metrics.split_labels name in
      let fam = sanitize base in
      match Hashtbl.find_opt families fam with
      | None ->
        let f = { fam; kind = snapshot_kind snap; members = [ (labels, snap) ] } in
        Hashtbl.replace families fam f;
        order := f :: !order
      | Some f ->
        (* Mixed kinds under one family would be an invalid exposition;
           the first-registered kind wins and later mismatches are
           dropped (the registry itself forbids this for identical
           names, so it only arises across label variants). *)
        if f.kind = snapshot_kind snap then f.members <- (labels, snap) :: f.members)
    dump;
  let b = Buffer.create 4096 in
  let samples = ref 0 in
  let sample name labels v =
    Buffer.add_string b (Printf.sprintf "%s%s %s\n" name (render_labels labels) v);
    incr samples
  in
  List.iter
    (fun f ->
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" f.fam f.kind);
      List.iter
        (fun (labels, snap) ->
          match snap with
          | Metrics.Counter n -> sample f.fam labels (string_of_int n)
          | Metrics.Gauge v -> sample f.fam labels (fmt_value v)
          | Metrics.Histogram h ->
            let cum = ref 0 in
            Array.iteri
              (fun i bound ->
                cum := !cum + h.Metrics.counts.(i);
                sample (f.fam ^ "_bucket")
                  (labels @ [ ("le", fmt_value bound) ])
                  (string_of_int !cum))
              h.Metrics.bounds;
            sample (f.fam ^ "_bucket")
              (labels @ [ ("le", "+Inf") ])
              (string_of_int h.Metrics.total);
            sample (f.fam ^ "_sum") labels (fmt_value h.Metrics.sum);
            sample (f.fam ^ "_count") labels (string_of_int h.Metrics.total))
        (List.rev f.members))
    (List.rev !order);
  (Buffer.contents b, !samples)

let to_string () = fst (of_dump (Metrics.dump ()))

let save path =
  let s, n = of_dump (Metrics.dump ()) in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc s;
  close_out oc;
  Sys.rename tmp path;
  n

(* --- validator --------------------------------------------------------- *)

let valid_metric_name n =
  n <> ""
  && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       n

(* Parse one sample line: name[{labels}] value *)
let parse_sample line =
  let n = String.length line in
  let pos = ref 0 in
  while !pos < n && (match line.[!pos] with
                     | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
                     | _ -> false) do
    incr pos
  done;
  let name = String.sub line 0 !pos in
  if not (valid_metric_name name) then Error "invalid metric name"
  else begin
    let labels = ref [] in
    let err = ref None in
    let fail m = if !err = None then err := Some m in
    if !pos < n && line.[!pos] = '{' then begin
      incr pos;
      let closed = ref false in
      while (not !closed) && !err = None do
        if !pos >= n then fail "unterminated label set"
        else if line.[!pos] = '}' then begin
          closed := true;
          incr pos
        end
        else begin
          let start = !pos in
          while !pos < n && line.[!pos] <> '=' do
            incr pos
          done;
          if !pos >= n then fail "label missing '='"
          else begin
            let k = String.sub line start (!pos - start) in
            if k = "" then fail "empty label name"
            else if !pos + 1 >= n || line.[!pos + 1] <> '"' then
              fail "label value must be quoted"
            else begin
              pos := !pos + 2;
              let b = Buffer.create 16 in
              let vdone = ref false in
              while (not !vdone) && !err = None do
                if !pos >= n then fail "unterminated label value"
                else
                  match line.[!pos] with
                  | '"' ->
                    vdone := true;
                    incr pos
                  | '\\' ->
                    if !pos + 1 >= n then fail "dangling escape"
                    else begin
                      (match line.[!pos + 1] with
                      | '\\' -> Buffer.add_char b '\\'
                      | '"' -> Buffer.add_char b '"'
                      | 'n' -> Buffer.add_char b '\n'
                      | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
                      pos := !pos + 2
                    end
                  | c ->
                    Buffer.add_char b c;
                    incr pos
              done;
              if !err = None then begin
                labels := (k, Buffer.contents b) :: !labels;
                if !pos < n && line.[!pos] = ',' then incr pos
                else if !pos < n && line.[!pos] <> '}' then
                  fail "expected ',' or '}' after label"
              end
            end
          end
        end
      done
    end;
    match !err with
    | Some e -> Error e
    | None ->
      let rest = String.trim (String.sub line !pos (n - !pos)) in
      if rest = "" then Error "missing value"
      else
        let value =
          match rest with
          | "+Inf" -> Some Float.infinity
          | "-Inf" -> Some Float.neg_infinity
          | "NaN" -> Some Float.nan
          | _ -> float_of_string_opt rest
        in
        (match value with
        | None -> Error (Printf.sprintf "unparseable value %S" rest)
        | Some v -> Ok (name, List.rev !labels, v))
  end

type hist_acc = {
  mutable buckets : (float * float) list;  (* le, cumulative count; reversed *)
  mutable hsum : float option;
  mutable hcount : float option;
}

let check s =
  let lines = String.split_on_char '\n' s in
  let types : (string, string) Hashtbl.t = Hashtbl.create 32 in
  (* histogram series keyed by (family, non-le labels) *)
  let hists : (string * (string * string) list, hist_acc) Hashtbl.t =
    Hashtbl.create 32
  in
  let seen_samples : (string * (string * string) list, unit) Hashtbl.t =
    Hashtbl.create 64
  in
  let samples = ref 0 in
  let err = ref None in
  let fail lineno msg =
    if !err = None then err := Some (Printf.sprintf "line %d: %s" lineno msg)
  in
  (* family a sample belongs to, honoring histogram suffixes *)
  let family_of name =
    if Hashtbl.mem types name then Some (name, `Plain)
    else
      let strip suffix =
        let ls = String.length suffix and ln = String.length name in
        if ln > ls && String.sub name (ln - ls) ls = suffix then
          let base = String.sub name 0 (ln - ls) in
          if Hashtbl.find_opt types base = Some "histogram" then Some base else None
        else None
      in
      match strip "_bucket" with
      | Some base -> Some (base, `Bucket)
      | None -> (
        match strip "_sum" with
        | Some base -> Some (base, `Sum)
        | None -> (
          match strip "_count" with
          | Some base -> Some (base, `Count)
          | None -> None))
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line = "" then ()
      else if String.length line >= 6 && String.sub line 0 6 = "# TYPE" then begin
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; kind ] ->
          if not (valid_metric_name name) then
            fail lineno (Printf.sprintf "invalid family name %S" name)
          else if
            not (List.mem kind [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
          then fail lineno (Printf.sprintf "unknown type %S" kind)
          else if Hashtbl.mem types name then
            fail lineno (Printf.sprintf "duplicate TYPE for %S" name)
          else Hashtbl.replace types name kind
        | _ -> fail lineno "malformed TYPE line"
      end
      else if line.[0] = '#' then ()  (* HELP and other comments *)
      else begin
        match parse_sample line with
        | Error e -> fail lineno e
        | Ok (name, labels, v) -> (
          incr samples;
          let key = (name, List.sort compare labels) in
          if Hashtbl.mem seen_samples key then
            fail lineno (Printf.sprintf "duplicate sample %S" name)
          else Hashtbl.replace seen_samples key ();
          match family_of name with
          | None -> fail lineno (Printf.sprintf "sample %S has no TYPE" name)
          | Some (base, role) -> (
            let series = List.sort compare (List.remove_assoc "le" labels) in
            let acc () =
              match Hashtbl.find_opt hists (base, series) with
              | Some a -> a
              | None ->
                let a = { buckets = []; hsum = None; hcount = None } in
                Hashtbl.replace hists (base, series) a;
                a
            in
            match role with
            | `Plain ->
              if Hashtbl.find_opt types name = Some "histogram" then
                fail lineno
                  (Printf.sprintf "histogram %S exposed without _bucket suffix" name)
            | `Bucket -> (
              match List.assoc_opt "le" labels with
              | None -> fail lineno "_bucket sample missing le label"
              | Some le ->
                let lef =
                  match le with
                  | "+Inf" -> Some Float.infinity
                  | _ -> float_of_string_opt le
                in
                (match lef with
                | None -> fail lineno (Printf.sprintf "unparseable le %S" le)
                | Some lef -> (acc ()).buckets <- (lef, v) :: (acc ()).buckets))
            | `Sum -> (acc ()).hsum <- Some v
            | `Count -> (acc ()).hcount <- Some v))
      end)
    lines;
  (* histogram series consistency *)
  Hashtbl.iter
    (fun (base, _series) a ->
      if !err = None then begin
        let buckets = List.rev a.buckets in
        let whine msg = if !err = None then err := Some (base ^ ": " ^ msg) in
        (match buckets with
        | [] -> whine "no _bucket samples"
        | _ ->
          let les = List.map fst buckets in
          let rec ascending = function
            | a :: (b :: _ as rest) -> a < b && ascending rest
            | _ -> true
          in
          if not (ascending les) then whine "le bounds not ascending";
          let counts = List.map snd buckets in
          let rec non_decreasing = function
            | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
            | _ -> true
          in
          if not (non_decreasing counts) then whine "bucket counts not cumulative";
          (match List.rev buckets with
          | (le, last) :: _ ->
            if le <> Float.infinity then whine "last bucket must be le=\"+Inf\"";
            (match a.hcount with
            | None -> whine "missing _count"
            | Some c -> if c <> last then whine "+Inf bucket does not equal _count")
          | [] -> ()));
        if a.hsum = None then whine "missing _sum"
      end)
    hists;
  match !err with Some e -> Error e | None -> Ok !samples

let check_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  check s
