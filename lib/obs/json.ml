type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* --- parser ----------------------------------------------------------------- *)

exception Bad of int * string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_body () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char b '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char b '/'; advance (); go ()
        | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
        | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
        | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
        | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub text !pos 4 in
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          (* Encode the code point as UTF-8 (surrogates kept verbatim:
             enough for validation round trips). *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end;
          go ()
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let digits () =
      let had = ref false in
      let rec go () =
        match peek () with
        | Some ('0' .. '9') ->
          had := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if not !had then fail "expected digit"
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    (match peek () with
    | Some '.' ->
      advance ();
      digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elems acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (elems [])
      end
    | Some '"' -> Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (number ())
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_arr = function Arr l -> Some l | _ -> None
