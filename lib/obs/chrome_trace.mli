(** Chrome trace-event JSON export.

    Produces the JSON-object flavour of the trace-event format, loadable in
    Perfetto ([ui.perfetto.dev]) or [chrome://tracing]: spans become
    complete ("ph":"X") events with microsecond [ts]/[dur], instants become
    "ph":"i" events, attributes become [args], and each {!Trace} track
    becomes one named thread so spans from tuner worker domains land on
    their own rows. Events are emitted in start-time order.

    {!check} is the matching validator (used by [hidetc trace-check] and
    [make trace-smoke]): the file must parse as JSON, carry a [traceEvents]
    array, and every event must have a string [name] and numeric,
    non-negative [ts]/[dur]. *)

val to_string : Trace.event list -> string
val write : out_channel -> Trace.event list -> unit

val save : string -> Trace.event list -> unit
(** Write atomically via a temp file, as the schedule cache does. *)

val check : string -> (int, string) result
(** Validate trace JSON text; [Ok n] is the number of span/instant events
    (metadata records excluded). *)

val check_file : string -> (int, string) result
