type counter = { name : string; cell : int Atomic.t }
type gauge = { gname : string; gcell : float Atomic.t }

type histogram = {
  hname : string;
  bounds : float array;
  counts : int array;
  mutable sum : float;
  mutable total : int;
  mutable maxv : float;
  hlock : Mutex.t;
}

type instrument = C of counter | G of gauge | H of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 32
let registry_lock = Mutex.create ()

let locked f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let get_or_register name make unpack =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some i -> (
        match unpack i with
        | Some x -> x
        | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as another kind" name))
      | None ->
        let x, i = make () in
        Hashtbl.replace registry name i;
        x)

let counter name =
  get_or_register name
    (fun () ->
      let c = { name; cell = Atomic.make 0 } in
      (c, C c))
    (function C c -> Some c | _ -> None)

let incr c = Atomic.incr c.cell
let add c n = ignore (Atomic.fetch_and_add c.cell n)
let value c = Atomic.get c.cell

let gauge name =
  get_or_register name
    (fun () ->
      let g = { gname = name; gcell = Atomic.make 0. } in
      (g, G g))
    (function G g -> Some g | _ -> None)

let set_gauge g v = Atomic.set g.gcell v
let gauge_value g = Atomic.get g.gcell

let default_bounds = [| 1.; 2.5; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000. |]

let histogram ?(bounds = default_bounds) name =
  get_or_register name
    (fun () ->
      let increasing = ref (Array.length bounds > 0) in
      for i = 0 to Array.length bounds - 2 do
        if bounds.(i) >= bounds.(i + 1) then increasing := false
      done;
      if not !increasing then
        invalid_arg "Metrics.histogram: bounds must be non-empty and strictly increasing";
      let h =
        {
          hname = name;
          bounds = Array.copy bounds;
          counts = Array.make (Array.length bounds + 1) 0;
          sum = 0.;
          total = 0;
          maxv = Float.neg_infinity;
          hlock = Mutex.create ();
        }
      in
      (h, H h))
    (function H h -> Some h | _ -> None)

let observe h v =
  Mutex.lock h.hlock;
  let n = Array.length h.bounds in
  let rec bucket i = if i >= n || v <= h.bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.total <- h.total + 1;
  if v > h.maxv then h.maxv <- v;
  Mutex.unlock h.hlock

type hist_snapshot = {
  bounds : float array;
  counts : int array;
  total : int;
  sum : float;
  maxv : float;
}

let hist_snapshot h =
  Mutex.lock h.hlock;
  let s =
    {
      bounds = Array.copy h.bounds;
      counts = Array.copy h.counts;
      total = h.total;
      sum = h.sum;
      maxv = h.maxv;
    }
  in
  Mutex.unlock h.hlock;
  s

let quantile (s : hist_snapshot) q =
  if s.total = 0 then Float.nan
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = q *. float_of_int s.total in
    let n = Array.length s.bounds in
    (* The overflow bucket (index [n]) participates like any other: its
       lower edge is the top bound and its upper edge the largest value
       actually observed, so a rank landing there interpolates strictly
       above the top bound instead of being clamped to it. *)
    let rec go i cum =
      let c = s.counts.(i) in
      let cum' = cum + c in
      if c > 0 && float_of_int cum' >= rank then begin
        let lo = if i = 0 then Float.min 0. s.bounds.(0) else s.bounds.(i - 1) in
        let hi = if i < n then s.bounds.(i) else Float.max s.maxv lo in
        lo +. ((hi -. lo) *. ((rank -. float_of_int cum) /. float_of_int c))
      end
      else if i >= n then
        (* Numerically unreachable (the last non-empty bucket satisfies
           [cum' = total >= rank]), kept as a safe floor. *)
        if s.counts.(n) > 0 then s.maxv else s.bounds.(n - 1)
      else go (i + 1) cum'
    in
    go 0 0
  end

type snapshot = Counter of int | Gauge of float | Histogram of hist_snapshot

let dump () =
  let all =
    locked (fun () -> Hashtbl.fold (fun name i acc -> (name, i) :: acc) registry [])
  in
  all
  |> List.map (fun (name, i) ->
         ( name,
           match i with
           | C c -> Counter (value c)
           | G g -> Gauge (gauge_value g)
           | H h -> Histogram (hist_snapshot h) ))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  let all = locked (fun () -> Hashtbl.fold (fun _ i acc -> i :: acc) registry []) in
  List.iter
    (function
      | C c -> Atomic.set c.cell 0
      | G g -> Atomic.set g.gcell 0.
      | H h ->
        Mutex.lock h.hlock;
        Array.fill h.counts 0 (Array.length h.counts) 0;
        h.sum <- 0.;
        h.total <- 0;
        h.maxv <- Float.neg_infinity;
        Mutex.unlock h.hlock)
    all
