type counter = { name : string; cell : int Atomic.t }
type gauge = { gname : string; gcell : float Atomic.t }

type histogram = {
  hname : string;
  bounds : float array;
  counts : int array;
  mutable sum : float;
  mutable total : int;
  mutable maxv : float;
  hlock : Mutex.t;
}

type instrument = C of counter | G of gauge | H of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 32
let registry_lock = Mutex.create ()

let locked f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let get_or_register name make unpack =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some i -> (
        match unpack i with
        | Some x -> x
        | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as another kind" name))
      | None ->
        let x, i = make () in
        Hashtbl.replace registry name i;
        x)

let counter name =
  get_or_register name
    (fun () ->
      let c = { name; cell = Atomic.make 0 } in
      (c, C c))
    (function C c -> Some c | _ -> None)

(* --- labels -------------------------------------------------------------------

   Per-model / per-bucket instruments encode their labels into the
   registered name in the canonical form [base{k="v",k2="v2"}] — keys
   sorted, values escaped Prometheus-style — so the registry stays a flat
   name-keyed table, [dump] stays sorted and stable, and the exposition
   writer ({!Prom}) can split the name back into a metric family plus
   real labels. *)

let escape_label_value v =
  let b = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let valid_label_key k =
  k <> ""
  && (match k.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       k

let labeled_name base labels =
  match labels with
  | [] -> base
  | _ ->
    List.iter
      (fun (k, _) ->
        if not (valid_label_key k) then
          invalid_arg (Printf.sprintf "Metrics: invalid label key %S" k);
        if k = "le" then
          invalid_arg "Metrics: label key \"le\" is reserved for histogram buckets")
      labels;
    let labels =
      List.sort (fun (a, _) (b, _) -> String.compare a b) labels
    in
    (match labels with
    | (k, _) :: rest ->
      ignore
        (List.fold_left
           (fun prev (k, _) ->
             if prev = k then
               invalid_arg (Printf.sprintf "Metrics: duplicate label key %S" k);
             k)
           k rest)
    | [] -> ());
    Printf.sprintf "%s{%s}" base
      (String.concat ","
         (List.map
            (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
            labels))

(* Inverse of [labeled_name]; names without a well-formed [{...}] suffix
   are treated as plain (the whole string is the base, no labels). *)
let split_labels name =
  match String.index_opt name '{' with
  | None -> (name, [])
  | Some i when String.length name > 0 && name.[String.length name - 1] = '}' ->
    let base = String.sub name 0 i in
    let body = String.sub name (i + 1) (String.length name - i - 2) in
    let n = String.length body in
    let pos = ref 0 in
    let fail = ref false in
    let labels = ref [] in
    (* parse comma-separated key="value" pairs with backslash escapes *)
    while (not !fail) && !pos < n do
      let start = !pos in
      while !pos < n && body.[!pos] <> '=' do
        incr pos
      done;
      let k = String.sub body start (!pos - start) in
      if (not (valid_label_key k)) || !pos + 1 >= n || body.[!pos + 1] <> '"'
      then fail := true
      else begin
        pos := !pos + 2;
        let b = Buffer.create 16 in
        let closed = ref false in
        while (not !closed) && (not !fail) && !pos < n do
          match body.[!pos] with
          | '"' ->
            closed := true;
            incr pos
          | '\\' when !pos + 1 < n ->
            (match body.[!pos + 1] with
            | '\\' -> Buffer.add_char b '\\'
            | '"' -> Buffer.add_char b '"'
            | 'n' -> Buffer.add_char b '\n'
            | _ -> fail := true);
            pos := !pos + 2
          | c ->
            Buffer.add_char b c;
            incr pos
        done;
        if not !closed then fail := true
        else begin
          labels := (k, Buffer.contents b) :: !labels;
          if !pos < n then
            if body.[!pos] = ',' && !pos + 1 < n then incr pos else fail := true
        end
      end
    done;
    if !fail then (name, []) else (base, List.rev !labels)
  | Some _ -> (name, [])

let counter_labeled base labels = counter (labeled_name base labels)

let incr c = Atomic.incr c.cell
let add c n = ignore (Atomic.fetch_and_add c.cell n)
let value c = Atomic.get c.cell

let gauge name =
  get_or_register name
    (fun () ->
      let g = { gname = name; gcell = Atomic.make 0. } in
      (g, G g))
    (function G g -> Some g | _ -> None)

let set_gauge g v = Atomic.set g.gcell v
let gauge_value g = Atomic.get g.gcell
let gauge_labeled base labels = gauge (labeled_name base labels)

let default_bounds = [| 1.; 2.5; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000. |]

let histogram ?(bounds = default_bounds) name =
  get_or_register name
    (fun () ->
      let increasing = ref (Array.length bounds > 0) in
      for i = 0 to Array.length bounds - 2 do
        if bounds.(i) >= bounds.(i + 1) then increasing := false
      done;
      if not !increasing then
        invalid_arg "Metrics.histogram: bounds must be non-empty and strictly increasing";
      let h =
        {
          hname = name;
          bounds = Array.copy bounds;
          counts = Array.make (Array.length bounds + 1) 0;
          sum = 0.;
          total = 0;
          maxv = Float.neg_infinity;
          hlock = Mutex.create ();
        }
      in
      (h, H h))
    (function H h -> Some h | _ -> None)

let histogram_labeled ?bounds base labels =
  histogram ?bounds (labeled_name base labels)

let observe h v =
  Mutex.lock h.hlock;
  let n = Array.length h.bounds in
  let rec bucket i = if i >= n || v <= h.bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.total <- h.total + 1;
  if v > h.maxv then h.maxv <- v;
  Mutex.unlock h.hlock

type hist_snapshot = {
  bounds : float array;
  counts : int array;
  total : int;
  sum : float;
  maxv : float;
}

let hist_snapshot h =
  Mutex.lock h.hlock;
  let s =
    {
      bounds = Array.copy h.bounds;
      counts = Array.copy h.counts;
      total = h.total;
      sum = h.sum;
      maxv = h.maxv;
    }
  in
  Mutex.unlock h.hlock;
  s

let quantile (s : hist_snapshot) q =
  if s.total = 0 then Float.nan
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = q *. float_of_int s.total in
    let n = Array.length s.bounds in
    (* The overflow bucket (index [n]) participates like any other: its
       lower edge is the top bound and its upper edge the largest value
       actually observed, so a rank landing there interpolates strictly
       above the top bound instead of being clamped to it. *)
    let rec go i cum =
      let c = s.counts.(i) in
      let cum' = cum + c in
      if c > 0 && float_of_int cum' >= rank then begin
        let lo = if i = 0 then Float.min 0. s.bounds.(0) else s.bounds.(i - 1) in
        let hi = if i < n then s.bounds.(i) else Float.max s.maxv lo in
        lo +. ((hi -. lo) *. ((rank -. float_of_int cum) /. float_of_int c))
      end
      else if i >= n then
        (* Numerically unreachable (the last non-empty bucket satisfies
           [cum' = total >= rank]), kept as a safe floor. *)
        if s.counts.(n) > 0 then s.maxv else s.bounds.(n - 1)
      else go (i + 1) cum'
    in
    go 0 0
  end

type snapshot = Counter of int | Gauge of float | Histogram of hist_snapshot

let dump () =
  let all =
    locked (fun () -> Hashtbl.fold (fun name i acc -> (name, i) :: acc) registry [])
  in
  all
  |> List.map (fun (name, i) ->
         ( name,
           match i with
           | C c -> Counter (value c)
           | G g -> Gauge (gauge_value g)
           | H h -> Histogram (hist_snapshot h) ))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  let all = locked (fun () -> Hashtbl.fold (fun _ i acc -> i :: acc) registry []) in
  List.iter
    (function
      | C c -> Atomic.set c.cell 0
      | G g -> Atomic.set g.gcell 0.
      | H h ->
        Mutex.lock h.hlock;
        Array.fill h.counts 0 (Array.length h.counts) 0;
        h.sum <- 0.;
        h.total <- 0;
        h.maxv <- Float.neg_infinity;
        Mutex.unlock h.hlock)
    all
