module G = Hidet_graph.Graph

(* Weight seeds are derived from a per-model counter so graphs are
   deterministic and distinct layers get distinct weights. *)
type ctx = { g : G.t; mutable seed : int }

let fresh_seed ctx =
  ctx.seed <- ctx.seed + 1;
  ctx.seed

let weight ctx shape = G.constant_rand ctx.g ~seed:(fresh_seed ctx) shape

type act = No_act | Relu_act | Relu6_act

let activate ctx act x =
  match act with
  | No_act -> x
  | Relu_act -> G.relu ctx.g x
  | Relu6_act -> G.add_op ctx.g (Hidet_graph.Op.Unary (Hidet_graph.Op.Clip (0., 6.))) [ x ]

(* Convolution + folded batch norm (+ optional activation). *)
let conv_bn ?(act = Relu_act) ?(stride = 1) ?(padding = 0) ctx x ~in_ch ~out_ch
    ~kernel =
  let w = weight ctx [ out_ch; in_ch; kernel; kernel ] in
  let c = G.conv2d ctx.g x w ~stride ~padding in
  let scale = weight ctx [ out_ch ] and shift = weight ctx [ out_ch ] in
  activate ctx act (G.scale_shift ctx.g c ~scale ~shift)

let conv_bn_asym ?(act = Relu_act) ctx x ~in_ch ~out_ch ~kh ~kw ~pad_h ~pad_w =
  let w = weight ctx [ out_ch; in_ch; kh; kw ] in
  let c = G.conv2d_asym ctx.g x w ~stride:1 ~pad_h ~pad_w in
  let scale = weight ctx [ out_ch ] and shift = weight ctx [ out_ch ] in
  activate ctx act (G.scale_shift ctx.g c ~scale ~shift)

let classifier ctx x ~in_ch ~classes =
  let pooled = G.global_avgpool ctx.g x in
  let flat = G.reshape ctx.g pooled [ -1; in_ch ] in
  let w = weight ctx [ in_ch; classes ] in
  let b = weight ctx [ classes ] in
  G.bias_add ctx.g (G.matmul ctx.g flat w) b

(* --- ResNet-50 ----------------------------------------------------------------- *)

let bottleneck ctx x ~in_ch ~mid ~out_ch ~stride =
  let c1 = conv_bn ctx x ~in_ch ~out_ch:mid ~kernel:1 in
  let c2 = conv_bn ctx c1 ~stride ~padding:1 ~in_ch:mid ~out_ch:mid ~kernel:3 in
  let c3 = conv_bn ~act:No_act ctx c2 ~in_ch:mid ~out_ch ~kernel:1 in
  let shortcut =
    if stride = 1 && in_ch = out_ch then x
    else conv_bn ~act:No_act ~stride ctx x ~in_ch ~out_ch ~kernel:1
  in
  G.relu ctx.g (G.add ctx.g c3 shortcut)

let resnet_stage ctx x ~in_ch ~mid ~out_ch ~blocks ~stride =
  let x = ref (bottleneck ctx x ~in_ch ~mid ~out_ch ~stride) in
  for _ = 2 to blocks do
    x := bottleneck ctx !x ~in_ch:out_ch ~mid ~out_ch ~stride:1
  done;
  !x

let resnet50 ?(batch = 1) () =
  let g = G.create () in
  G.name g (if batch = 1 then "resnet50" else Printf.sprintf "resnet50_b%d" batch);
  let ctx = { g; seed = 0 } in
  let x = G.input g [ batch; 3; 224; 224 ] in
  let stem = conv_bn ~stride:2 ~padding:3 ctx x ~in_ch:3 ~out_ch:64 ~kernel:7 in
  let pooled = G.maxpool g stem ~kernel:3 ~stride:2 ~padding:1 in
  let s1 = resnet_stage ctx pooled ~in_ch:64 ~mid:64 ~out_ch:256 ~blocks:3 ~stride:1 in
  let s2 = resnet_stage ctx s1 ~in_ch:256 ~mid:128 ~out_ch:512 ~blocks:4 ~stride:2 in
  let s3 = resnet_stage ctx s2 ~in_ch:512 ~mid:256 ~out_ch:1024 ~blocks:6 ~stride:2 in
  let s4 = resnet_stage ctx s3 ~in_ch:1024 ~mid:512 ~out_ch:2048 ~blocks:3 ~stride:2 in
  let out = classifier ctx s4 ~in_ch:2048 ~classes:1000 in
  G.set_outputs g [ out ];
  g

(* --- Inception-V3 ----------------------------------------------------------------- *)

let inception_a ctx x ~in_ch ~pool_features =
  let b1 = conv_bn ctx x ~in_ch ~out_ch:64 ~kernel:1 in
  let b5 = conv_bn ctx x ~in_ch ~out_ch:48 ~kernel:1 in
  let b5 = conv_bn ~padding:2 ctx b5 ~in_ch:48 ~out_ch:64 ~kernel:5 in
  let b3 = conv_bn ctx x ~in_ch ~out_ch:64 ~kernel:1 in
  let b3 = conv_bn ~padding:1 ctx b3 ~in_ch:64 ~out_ch:96 ~kernel:3 in
  let b3 = conv_bn ~padding:1 ctx b3 ~in_ch:96 ~out_ch:96 ~kernel:3 in
  let bp = G.avgpool ctx.g x ~kernel:3 ~stride:1 ~padding:1 in
  let bp = conv_bn ctx bp ~in_ch ~out_ch:pool_features ~kernel:1 in
  G.concat ctx.g [ b1; b5; b3; bp ] ~axis:1

let inception_b ctx x ~in_ch =
  let b3 = conv_bn ~stride:2 ctx x ~in_ch ~out_ch:384 ~kernel:3 in
  let bd = conv_bn ctx x ~in_ch ~out_ch:64 ~kernel:1 in
  let bd = conv_bn ~padding:1 ctx bd ~in_ch:64 ~out_ch:96 ~kernel:3 in
  let bd = conv_bn ~stride:2 ctx bd ~in_ch:96 ~out_ch:96 ~kernel:3 in
  let bp = G.maxpool ctx.g x ~kernel:3 ~stride:2 ~padding:0 in
  G.concat ctx.g [ b3; bd; bp ] ~axis:1

let inception_c ctx x ~in_ch ~c7 =
  let b1 = conv_bn ctx x ~in_ch ~out_ch:192 ~kernel:1 in
  let b7 = conv_bn ctx x ~in_ch ~out_ch:c7 ~kernel:1 in
  let b7 = conv_bn_asym ctx b7 ~in_ch:c7 ~out_ch:c7 ~kh:1 ~kw:7 ~pad_h:0 ~pad_w:3 in
  let b7 = conv_bn_asym ctx b7 ~in_ch:c7 ~out_ch:192 ~kh:7 ~kw:1 ~pad_h:3 ~pad_w:0 in
  let bd = conv_bn ctx x ~in_ch ~out_ch:c7 ~kernel:1 in
  let bd = conv_bn_asym ctx bd ~in_ch:c7 ~out_ch:c7 ~kh:7 ~kw:1 ~pad_h:3 ~pad_w:0 in
  let bd = conv_bn_asym ctx bd ~in_ch:c7 ~out_ch:c7 ~kh:1 ~kw:7 ~pad_h:0 ~pad_w:3 in
  let bd = conv_bn_asym ctx bd ~in_ch:c7 ~out_ch:c7 ~kh:7 ~kw:1 ~pad_h:3 ~pad_w:0 in
  let bd = conv_bn_asym ctx bd ~in_ch:c7 ~out_ch:192 ~kh:1 ~kw:7 ~pad_h:0 ~pad_w:3 in
  let bp = G.avgpool ctx.g x ~kernel:3 ~stride:1 ~padding:1 in
  let bp = conv_bn ctx bp ~in_ch ~out_ch:192 ~kernel:1 in
  G.concat ctx.g [ b1; b7; bd; bp ] ~axis:1

let inception_d ctx x ~in_ch =
  let b3 = conv_bn ctx x ~in_ch ~out_ch:192 ~kernel:1 in
  let b3 = conv_bn ~stride:2 ctx b3 ~in_ch:192 ~out_ch:320 ~kernel:3 in
  let b7 = conv_bn ctx x ~in_ch ~out_ch:192 ~kernel:1 in
  let b7 = conv_bn_asym ctx b7 ~in_ch:192 ~out_ch:192 ~kh:1 ~kw:7 ~pad_h:0 ~pad_w:3 in
  let b7 = conv_bn_asym ctx b7 ~in_ch:192 ~out_ch:192 ~kh:7 ~kw:1 ~pad_h:3 ~pad_w:0 in
  let b7 = conv_bn ~stride:2 ctx b7 ~in_ch:192 ~out_ch:192 ~kernel:3 in
  let bp = G.maxpool ctx.g x ~kernel:3 ~stride:2 ~padding:0 in
  G.concat ctx.g [ b3; b7; bp ] ~axis:1

let inception_e ctx x ~in_ch =
  let b1 = conv_bn ctx x ~in_ch ~out_ch:320 ~kernel:1 in
  let b3 = conv_bn ctx x ~in_ch ~out_ch:384 ~kernel:1 in
  let b3a = conv_bn_asym ctx b3 ~in_ch:384 ~out_ch:384 ~kh:1 ~kw:3 ~pad_h:0 ~pad_w:1 in
  let b3b = conv_bn_asym ctx b3 ~in_ch:384 ~out_ch:384 ~kh:3 ~kw:1 ~pad_h:1 ~pad_w:0 in
  let b3 = G.concat ctx.g [ b3a; b3b ] ~axis:1 in
  let bd = conv_bn ctx x ~in_ch ~out_ch:448 ~kernel:1 in
  let bd = conv_bn ~padding:1 ctx bd ~in_ch:448 ~out_ch:384 ~kernel:3 in
  let bda = conv_bn_asym ctx bd ~in_ch:384 ~out_ch:384 ~kh:1 ~kw:3 ~pad_h:0 ~pad_w:1 in
  let bdb = conv_bn_asym ctx bd ~in_ch:384 ~out_ch:384 ~kh:3 ~kw:1 ~pad_h:1 ~pad_w:0 in
  let bd = G.concat ctx.g [ bda; bdb ] ~axis:1 in
  let bp = G.avgpool ctx.g x ~kernel:3 ~stride:1 ~padding:1 in
  let bp = conv_bn ctx bp ~in_ch ~out_ch:192 ~kernel:1 in
  G.concat ctx.g [ b1; b3; bd; bp ] ~axis:1

let inception_v3 ?(batch = 1) () =
  let g = G.create () in
  G.name g
    (if batch = 1 then "inception_v3" else Printf.sprintf "inception_v3_b%d" batch);
  let ctx = { g; seed = 1000 } in
  let x = G.input g [ batch; 3; 299; 299 ] in
  let x = conv_bn ~stride:2 ctx x ~in_ch:3 ~out_ch:32 ~kernel:3 in
  let x = conv_bn ctx x ~in_ch:32 ~out_ch:32 ~kernel:3 in
  let x = conv_bn ~padding:1 ctx x ~in_ch:32 ~out_ch:64 ~kernel:3 in
  let x = G.maxpool g x ~kernel:3 ~stride:2 ~padding:0 in
  let x = conv_bn ctx x ~in_ch:64 ~out_ch:80 ~kernel:1 in
  let x = conv_bn ctx x ~in_ch:80 ~out_ch:192 ~kernel:3 in
  let x = G.maxpool g x ~kernel:3 ~stride:2 ~padding:0 in
  let x = inception_a ctx x ~in_ch:192 ~pool_features:32 in
  let x = inception_a ctx x ~in_ch:256 ~pool_features:64 in
  let x = inception_a ctx x ~in_ch:288 ~pool_features:64 in
  let x = inception_b ctx x ~in_ch:288 in
  let x = inception_c ctx x ~in_ch:768 ~c7:128 in
  let x = inception_c ctx x ~in_ch:768 ~c7:160 in
  let x = inception_c ctx x ~in_ch:768 ~c7:160 in
  let x = inception_c ctx x ~in_ch:768 ~c7:192 in
  let x = inception_d ctx x ~in_ch:768 in
  let x = inception_e ctx x ~in_ch:1280 in
  let x = inception_e ctx x ~in_ch:2048 in
  let out = classifier ctx x ~in_ch:2048 ~classes:1000 in
  G.set_outputs g [ out ];
  g

(* --- MobileNet-V2 ------------------------------------------------------------------ *)

let depthwise_bn ?(act = Relu6_act) ctx x ~ch ~stride =
  let w = weight ctx [ ch; 1; 3; 3 ] in
  let c = G.depthwise_conv2d ctx.g x w ~stride ~padding:1 in
  let scale = weight ctx [ ch ] and shift = weight ctx [ ch ] in
  activate ctx act (G.scale_shift ctx.g c ~scale ~shift)

let inverted_residual ctx x ~in_ch ~out_ch ~stride ~expand =
  let hidden = in_ch * expand in
  let h =
    if expand = 1 then x
    else conv_bn ~act:Relu6_act ctx x ~in_ch ~out_ch:hidden ~kernel:1
  in
  let h = depthwise_bn ctx h ~ch:hidden ~stride in
  let h = conv_bn ~act:No_act ctx h ~in_ch:hidden ~out_ch ~kernel:1 in
  if stride = 1 && in_ch = out_ch then G.add ctx.g h x else h

let mobilenet_v2 ?(batch = 1) () =
  let g = G.create () in
  G.name g
    (if batch = 1 then "mobilenet_v2" else Printf.sprintf "mobilenet_v2_b%d" batch);
  let ctx = { g; seed = 2000 } in
  let x = G.input g [ batch; 3; 224; 224 ] in
  let x =
    ref (conv_bn ~act:Relu6_act ~stride:2 ~padding:1 ctx x ~in_ch:3 ~out_ch:32 ~kernel:3)
  in
  let in_ch = ref 32 in
  List.iter
    (fun (expand, out_ch, blocks, stride) ->
      for b = 1 to blocks do
        let s = if b = 1 then stride else 1 in
        x := inverted_residual ctx !x ~in_ch:!in_ch ~out_ch ~stride:s ~expand;
        in_ch := out_ch
      done)
    [
      (1, 16, 1, 1);
      (6, 24, 2, 2);
      (6, 32, 3, 2);
      (6, 64, 4, 2);
      (6, 96, 3, 1);
      (6, 160, 3, 2);
      (6, 320, 1, 1);
    ];
  let x = conv_bn ~act:Relu6_act ctx !x ~in_ch:320 ~out_ch:1280 ~kernel:1 in
  let out = classifier ctx x ~in_ch:1280 ~classes:1000 in
  G.set_outputs g [ out ];
  g

(* --- Transformers --------------------------------------------------------------------- *)

let dense ctx x ~d_in ~d_out =
  let w = weight ctx [ d_in; d_out ] in
  let b = weight ctx [ d_out ] in
  G.bias_add ctx.g (G.matmul ctx.g x w) b

let layer_norm ctx x ~d =
  let gamma = weight ctx [ d ] and beta = weight ctx [ d ] in
  G.layernorm ctx.g x ~gamma ~beta

(* Multi-head self-attention on [batch, seq, d]. *)
let attention ctx x ~batch ~seq ~d ~heads =
  let dh = d / heads in
  let q = dense ctx x ~d_in:d ~d_out:d in
  let k = dense ctx x ~d_in:d ~d_out:d in
  let v = dense ctx x ~d_in:d ~d_out:d in
  let split t =
    (* [b, s, d] -> [b*h, s, dh] *)
    let r = G.reshape ctx.g t [ batch; seq; heads; dh ] in
    let p = G.transpose ctx.g r [ 0; 2; 1; 3 ] in
    G.reshape ctx.g p [ batch * heads; seq; dh ]
  in
  let qh = split q and kh = split k and vh = split v in
  let kt = G.transpose ctx.g kh [ 0; 2; 1 ] in
  let scores = G.matmul ctx.g qh kt in
  let scaled =
    G.add_op ctx.g
      (Hidet_graph.Op.Unary (Hidet_graph.Op.Scale_by (1. /. sqrt (float_of_int dh))))
      [ scores ]
  in
  let probs = G.softmax ctx.g scaled in
  let context = G.matmul ctx.g probs vh in
  let merged =
    let r = G.reshape ctx.g context [ batch; heads; seq; dh ] in
    let p = G.transpose ctx.g r [ 0; 2; 1; 3 ] in
    G.reshape ctx.g p [ batch; seq; d ]
  in
  dense ctx merged ~d_in:d ~d_out:d

let ffn ctx x ~d ~d_ff =
  let h = dense ctx x ~d_in:d ~d_out:d_ff in
  let h = G.gelu ctx.g h in
  dense ctx h ~d_in:d_ff ~d_out:d

(* Post-LN encoder layer (BERT). *)
let bert_layer ctx x ~batch ~seq ~d ~heads ~d_ff =
  let att = attention ctx x ~batch ~seq ~d ~heads in
  let x = layer_norm ctx (G.add ctx.g x att) ~d in
  let ff = ffn ctx x ~d ~d_ff in
  layer_norm ctx (G.add ctx.g x ff) ~d

(* Pre-LN decoder layer (GPT-2). *)
let gpt2_layer ctx x ~batch ~seq ~d ~heads ~d_ff =
  let att = attention ctx (layer_norm ctx x ~d) ~batch ~seq ~d ~heads in
  let x = G.add ctx.g x att in
  let ff = ffn ctx (layer_norm ctx x ~d) ~d ~d_ff in
  G.add ctx.g x ff

let transformer ~name ~layer ?(batch = 1) ?(seq = 128) ?(embed = false)
    ?(vocab = 30522) () =
  let g = G.create () in
  G.name g (if batch = 1 then name else Printf.sprintf "%s_b%d" name batch);
  let ctx = { g; seed = 3000 } in
  let d = 768 and heads = 12 and d_ff = 3072 and layers = 12 in
  let x =
    ref
      (if embed then begin
         (* Token ids enter as integral floats; the embedding gather
            produces the hidden states. *)
         let ids = G.input g [ batch; seq ] in
         let table = weight ctx [ vocab; d ] in
         G.add_op g Hidet_graph.Op.Embedding [ ids; table ]
       end
       else G.input g [ batch; seq; d ])
  in
  for _ = 1 to layers do
    x := layer ctx !x ~batch ~seq ~d ~heads ~d_ff
  done;
  let out = layer_norm ctx !x ~d in
  G.set_outputs g [ out ];
  g

let bert_base ?batch ?seq ?embed () =
  transformer ~name:"bert" ~layer:bert_layer ?batch ?seq ?embed ~vocab:30522 ()

let gpt2 ?batch ?seq ?embed () =
  transformer ~name:"gpt2" ~layer:gpt2_layer ?batch ?seq ?embed ~vocab:50257 ()

let all =
  [
    ("resnet50", fun () -> resnet50 ());
    ("inception_v3", fun () -> inception_v3 ());
    ("mobilenet_v2", fun () -> mobilenet_v2 ());
    ("bert", fun () -> bert_base ());
    ("gpt2", fun () -> gpt2 ());
  ]

let by_name ?(batch = 1) = function
  | "resnet50" -> resnet50 ~batch ()
  | "inception_v3" -> inception_v3 ~batch ()
  | "mobilenet_v2" -> mobilenet_v2 ~batch ()
  | "bert" -> bert_base ~batch ()
  | "gpt2" -> gpt2 ~batch ()
  | other -> invalid_arg (Printf.sprintf "Models.by_name: unknown model %s" other)

module Tiny = struct
  let cnn () =
    let g = G.create () in
    G.name g "tiny_cnn";
    let ctx = { g; seed = 100 } in
    let x = G.input g [ 1; 3; 16; 16 ] in
    let stem = conv_bn ~stride:1 ~padding:1 ctx x ~in_ch:3 ~out_ch:8 ~kernel:3 in
    let b = bottleneck ctx stem ~in_ch:8 ~mid:4 ~out_ch:16 ~stride:2 in
    let out = classifier ctx b ~in_ch:16 ~classes:10 in
    G.set_outputs g [ out ];
    g

  let separable () =
    let g = G.create () in
    G.name g "tiny_separable";
    let ctx = { g; seed = 200 } in
    let x = G.input g [ 1; 4; 12; 12 ] in
    let h = conv_bn ctx x ~in_ch:4 ~out_ch:8 ~kernel:1 in
    let out = inverted_residual ctx h ~in_ch:8 ~out_ch:8 ~stride:1 ~expand:2 in
    G.set_outputs g [ out ];
    g

  let transformer () =
    let g = G.create () in
    G.name g "tiny_transformer";
    let ctx = { g; seed = 300 } in
    let batch = 1 and seq = 8 and d = 32 and heads = 2 and d_ff = 64 in
    let x = G.input g [ batch; seq; d ] in
    let out = bert_layer ctx x ~batch ~seq ~d ~heads ~d_ff in
    G.set_outputs g [ out ];
    g

  let inception_module () =
    let g = G.create () in
    G.name g "tiny_inception";
    let ctx = { g; seed = 400 } in
    let x = G.input g [ 1; 8; 10; 10 ] in
    let b1 = conv_bn ctx x ~in_ch:8 ~out_ch:4 ~kernel:1 in
    let b3 = conv_bn ~padding:1 ctx x ~in_ch:8 ~out_ch:6 ~kernel:3 in
    let bp = G.avgpool g x ~kernel:3 ~stride:1 ~padding:1 in
    let bp = conv_bn ctx bp ~in_ch:8 ~out_ch:2 ~kernel:1 in
    let out = G.concat g [ b1; b3; bp ] ~axis:1 in
    G.set_outputs g [ out ];
    g
end

let tiny_all =
  [
    ("tiny_cnn", Tiny.cnn);
    ("tiny_separable", Tiny.separable);
    ("tiny_transformer", Tiny.transformer);
    ("tiny_inception", Tiny.inception_module);
  ]
