(** The paper's evaluation workloads (§6, "Workloads"), with faithful layer
    configurations and randomly initialized weights (latency is
    shape-dependent, not value-dependent; weights materialize lazily and are
    never forced by latency benchmarks).

    Deviations from the originals, chosen to fit the operator set and
    documented in DESIGN.md: the transformer models consume pre-embedded
    hidden states by default (pass [~embed:true] to prepend the token
    embedding gather) and GPT-2 omits the causal mask addition (shape- and
    latency-neutral at this granularity). *)

val resnet50 : ?batch:int -> unit -> Hidet_graph.Graph.t
(** ImageNet configuration: input [batch, 3, 224, 224], 53 convolutions in
    bottleneck blocks, global average pooling, 1000-way classifier. *)

val inception_v3 : ?batch:int -> unit -> Hidet_graph.Graph.t
(** Input [batch, 3, 299, 299]; the full A/B/C/D/E module structure with
    asymmetric 1x7/7x1 convolutions. *)

val mobilenet_v2 : ?batch:int -> unit -> Hidet_graph.Graph.t
(** Input [batch, 3, 224, 224]; inverted residual blocks with depthwise
    convolutions. *)

val bert_base :
  ?batch:int -> ?seq:int -> ?embed:bool -> unit -> Hidet_graph.Graph.t
(** 12 layers, hidden 768, 12 heads, FFN 3072, post-layer-norm; [seq]
    defaults to 128. Default input: [batch, seq, 768] hidden states; with
    [~embed:true] the input is integral token ids [batch, seq] and a
    30522-entry WordPiece embedding table is gathered first. *)

val gpt2 : ?batch:int -> ?seq:int -> ?embed:bool -> unit -> Hidet_graph.Graph.t
(** GPT-2 small: 12 layers, hidden 768, 12 heads, pre-layer-norm; 50257-entry
    BPE vocabulary with [~embed:true]. *)

val all : (string * (unit -> Hidet_graph.Graph.t)) list
(** The five benchmark models at batch 1, by paper name. *)

val by_name : ?batch:int -> string -> Hidet_graph.Graph.t
(** ["resnet50" | "inception_v3" | "mobilenet_v2" | "bert" | "gpt2"].
    Raises [Invalid_argument] otherwise. *)

(** Small configurations of the same architectures for correctness tests
    (a few blocks, tiny spatial sizes — runnable on the interpreter). *)
module Tiny : sig
  val cnn : unit -> Hidet_graph.Graph.t
  (** Stem + one bottleneck + head, input [1, 3, 16, 16]. *)

  val separable : unit -> Hidet_graph.Graph.t
  (** One inverted-residual (depthwise) block. *)

  val transformer : unit -> Hidet_graph.Graph.t
  (** One BERT-style layer: hidden 32, 2 heads, seq 8. *)

  val inception_module : unit -> Hidet_graph.Graph.t
  (** One Inception-A-style multi-branch module with concat. *)
end

val tiny_all : (string * (unit -> Hidet_graph.Graph.t)) list
(** The {!Tiny} models by name ([tiny_cnn], [tiny_separable],
    [tiny_transformer], [tiny_inception]): batch-1 graphs small enough to
    execute on the simulator — the serving runtime's real-execution
    workloads (batch-bucket variants come from {!Hidet_graph.Passes.rebatch}
    since these builders are not batch-parameterized). *)
