module G = Hidet_graph.Graph
module Op = Hidet_graph.Op
module Passes = Hidet_graph.Passes
module Compiled = Hidet_sched.Compiled
module Fuse = Hidet_fusion.Fuse
module Trace = Hidet_obs.Trace
module Metrics = Hidet_obs.Metrics

(* Fusion effectiveness: how many operators rode along with an anchor
   versus how many fell back to standalone rule-based kernels. *)
let m_groups = Metrics.counter "fusion.groups"
let m_fused_prologues = Metrics.counter "fusion.fused_prologues"
let m_fused_epilogues = Metrics.counter "fusion.fused_epilogues"
let m_fallback = Metrics.counter "fusion.fallback_kernels"
let m_kernels = Metrics.counter "plan.kernels_emitted"

type config = {
  schedule_anchor : G.t -> G.node -> Compiled.t;
  may_fuse_prologue : G.node -> bool;
  may_fuse_epilogue : G.node -> bool;
}

(* A prologue definition whose output shape must match the anchor's input
   buffer. Unary operators are shape-polymorphic, so retry against the
   buffer dims when the graph rank differs. *)
let prologue_def g (p : G.node) buffer_dims =
  let in_shapes = List.map (G.node_shape g) p.G.inputs in
  let try_def shapes =
    match Op.to_def p.G.op shapes with
    | def when def.Hidet_compute.Def.out_shape = buffer_dims -> Some def
    | _ -> None
    | exception Invalid_argument _ -> None
  in
  match try_def in_shapes with
  | Some def -> Some def
  | None -> (
    match p.G.op with
    | Op.Unary _ -> try_def [ buffer_dims ]
    | Op.Binary _ -> try_def [ buffer_dims; buffer_dims ]
    | Op.Bias_add -> (
      match in_shapes with
      | [ _; bias ] -> try_def [ buffer_dims; bias ]
      | _ -> None)
    | _ -> None)

let epilogue_def g (e : G.node) out_buffer_dims =
  let in_shapes = List.map (G.node_shape g) e.G.inputs in
  let adjusted = out_buffer_dims :: List.tl in_shapes in
  match Op.to_def e.G.op adjusted with
  | def -> Some def
  | exception Invalid_argument _ -> None

let standalone_step g (n : G.node) =
  Metrics.incr m_fallback;
  let def = Op.to_def n.G.op (List.map (G.node_shape g) n.G.inputs) in
  {
    Plan.compiled = Hidet_sched.Rule_based.schedule def;
    args = n.G.inputs;
    out_node = n.G.id;
  }

let compile_group cfg g (grp : Passes.group) : Plan.step list =
  let anchor = G.node g grp.Passes.anchor in
  let compiled = ref (cfg.schedule_anchor g anchor) in
  let slots = ref anchor.G.inputs in
  let out_node = ref grp.Passes.anchor in
  let pre_steps = ref [] in
  let prologue_set = Hashtbl.create 8 in
  List.iter (fun id -> Hashtbl.replace prologue_set id ()) grp.Passes.prologues;
  (* Fuse prologues to fixpoint; unfusable or disallowed ones become
     standalone steps. *)
  let rec fuse_prologues () =
    let slot_arr = Array.of_list !slots in
    let idx = ref (-1) in
    Array.iteri
      (fun i node_id -> if !idx < 0 && Hashtbl.mem prologue_set node_id then idx := i)
      slot_arr;
    if !idx >= 0 then begin
      let i = !idx in
      let p = G.node g slot_arr.(i) in
      let buffer = List.nth !compiled.Compiled.ins i in
      let fallback () =
        Hashtbl.remove prologue_set p.G.id;
        pre_steps := standalone_step g p :: !pre_steps
      in
      (if not (cfg.may_fuse_prologue p) then fallback ()
       else
         match prologue_def g p buffer.Hidet_ir.Buffer.dims with
         | Some def -> (
           match Fuse.fuse_prologue !compiled ~input_index:i def with
           | fused ->
             Metrics.incr m_fused_prologues;
             compiled := fused;
             slots :=
               List.concat
                 (List.mapi (fun j s -> if j = i then p.G.inputs else [ s ]) !slots)
           | exception Invalid_argument _ -> fallback ())
         | None -> fallback ());
      fuse_prologues ()
    end
  in
  fuse_prologues ();
  (* Standalone prologues may reference other group prologues; those must
     also be emitted (in topological order). *)
  let rec emit_remaining () =
    let emitted_ids = List.map (fun (s : Plan.step) -> s.Plan.out_node) !pre_steps in
    let needed = List.concat_map (fun (s : Plan.step) -> s.Plan.args) !pre_steps in
    let missing =
      List.filter
        (fun id -> Hashtbl.mem prologue_set id && not (List.mem id emitted_ids))
        needed
    in
    match missing with
    | [] -> ()
    | id :: _ ->
      Hashtbl.remove prologue_set id;
      pre_steps := standalone_step g (G.node g id) :: !pre_steps;
      emit_remaining ()
  in
  emit_remaining ();
  let pre_steps =
    List.sort
      (fun (a : Plan.step) b -> compare a.Plan.out_node b.Plan.out_node)
      !pre_steps
  in
  (* Fuse epilogues in chain order; after the first failure the rest run as
     standalone kernels (order in the chain must be preserved). *)
  let post_steps = ref [] in
  let fusing = ref true in
  List.iter
    (fun e_id ->
      let e = G.node g e_id in
      let fallback () =
        post_steps := !post_steps @ [ standalone_step g e ];
        out_node := e.G.id;
        fusing := false
      in
      if !fusing && cfg.may_fuse_epilogue e then (
        match epilogue_def g e !compiled.Compiled.out.Hidet_ir.Buffer.dims with
        | Some def -> (
          match Fuse.fuse_epilogue !compiled def with
          | fused ->
            Metrics.incr m_fused_epilogues;
            compiled := fused;
            slots := !slots @ List.tl e.G.inputs;
            out_node := e.G.id
          | exception Invalid_argument _ -> fallback ())
        | None -> fallback ())
      else fallback ())
    grp.Passes.epilogues;
  let anchor_step =
    { Plan.compiled = !compiled; args = !slots; out_node = !out_node }
  in
  (* When standalone epilogues exist, the fused part ends at the first
     standalone step's data input. *)
  let anchor_step =
    match !post_steps with
    | [] -> anchor_step
    | first :: _ -> { anchor_step with Plan.out_node = List.hd first.Plan.args }
  in
  pre_steps @ [ anchor_step ] @ !post_steps

let compile_group cfg g (grp : Passes.group) : Plan.step list =
  Metrics.incr m_groups;
  if not (Trace.enabled ()) then compile_group cfg g grp
  else
    Trace.span
      ~attrs:(fun () ->
        let anchor = G.node g grp.Passes.anchor in
        [
          ("anchor", Op.name anchor.G.op);
          ("prologues", string_of_int (List.length grp.Passes.prologues));
          ("epilogues", string_of_int (List.length grp.Passes.epilogues));
        ])
      "compile_group"
      (fun _sp -> compile_group cfg g grp)

let compile_graph cfg g =
  let groups =
    Trace.span "partition" (fun sp ->
        let groups = Passes.partition g in
        Trace.add sp "groups" (string_of_int (List.length groups));
        groups)
  in
  let steps =
    Trace.span "schedule_and_fuse" (fun sp ->
        let steps = List.concat_map (compile_group cfg g) groups in
        Trace.add sp "kernels" (string_of_int (List.length steps));
        steps)
  in
  Metrics.add m_kernels (List.length steps);
  { Plan.graph = g; steps }
