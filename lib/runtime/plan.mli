(** Execution plans: the artifact every engine produces for a graph.

    A plan is an ordered list of steps; each step launches one compiled
    operator (one or more kernels) whose arguments are graph node values —
    inputs, constants, or outputs of earlier steps. Plans support latency
    accounting (analytic model) and functional execution (interpreter). *)

type step = {
  compiled : Hidet_sched.Compiled.t;
  args : int list;  (** graph node ids bound to [compiled.ins], in order *)
  out_node : int;  (** graph node whose value this step produces *)
}

type t = { graph : Hidet_graph.Graph.t; steps : step list }

val latency : Hidet_gpu.Device.t -> t -> float
(** Sum of per-step estimates (serial kernel launches, as in single-stream
    inference); [infinity] if any kernel is infeasible. *)

val kernel_count : t -> int

val prepare : t -> unit
(** Eagerly force every constant of the plan's graph. Constant forcing is
    serialized through a process-wide lock (OCaml's [Lazy] is not
    domain-safe, and weight thunks are shared across the batch-bucket
    variants of a model), so a prepared plan can be {!run} concurrently
    from many domains without ever contending on that lock. Called by the
    serving registry at model-load time; optional elsewhere — [run] forces
    on demand under the same lock. *)

val run :
  ?around:(int -> step -> (unit -> Hidet_tensor.Tensor.t) -> Hidet_tensor.Tensor.t) ->
  ?backend:Hidet_sched.Compiled.backend ->
  t ->
  (int * Hidet_tensor.Tensor.t) list ->
  Hidet_tensor.Tensor.t list
(** Execute on the simulator: bind graph inputs, force constants on
    demand (domain-safely, see {!prepare}), run every step, return the
    graph outputs. Intended for correctness tests on small graphs.
    [around step_index step exec] wraps each step's execution (default:
    just calls [exec]); the profiler uses it to capture per-step wall
    time and simulator counters. [?backend] selects the simulator
    execution backend per call (default [Compiled.default_backend ()]). *)

val run1 :
  ?around:(int -> step -> (unit -> Hidet_tensor.Tensor.t) -> Hidet_tensor.Tensor.t) ->
  ?backend:Hidet_sched.Compiled.backend ->
  t ->
  Hidet_tensor.Tensor.t list ->
  Hidet_tensor.Tensor.t

val cuda_source : t -> string
(** Concatenated CUDA C for every kernel in the plan. *)

val pp : Format.formatter -> t -> unit
