module Compiled = Hidet_sched.Compiled
module Graph = Hidet_graph.Graph
module Op = Hidet_graph.Op
module Tensor = Hidet_tensor.Tensor

type step = { compiled : Compiled.t; args : int list; out_node : int }
type t = { graph : Graph.t; steps : step list }

let latency device plan =
  List.fold_left
    (fun acc s -> acc +. Compiled.latency device s.compiled)
    0. plan.steps

let kernel_count plan =
  List.fold_left
    (fun acc s -> acc + List.length s.compiled.Compiled.kernels)
    0 plan.steps

(* OCaml's [Lazy] is not domain-safe: two domains forcing the same thunk
   concurrently race (one can observe [Lazy.Undefined] or a torn memo).
   Constant thunks are shared — across concurrent runs of one plan, and
   across plans (batch-bucket variants of a model reuse the same weight
   thunks) — so every force goes through one process-wide lock. Forcing is
   once-only (the lazy memoizes under the lock); steady-state runs of a
   [prepare]d plan never touch the lock's contended path because the memo
   is already filled. *)
let constant_lock = Mutex.create ()

let force_constant value =
  (* No [Lazy.is_val] fast path: even reading a lazy's state races with a
     concurrent force. The lock is uncontended after [prepare]. *)
  Mutex.lock constant_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock constant_lock)
    (fun () -> Lazy.force value)

let prepare plan =
  List.iter
    (fun (n : Graph.node) ->
      match n.Graph.op with
      | Op.Constant { value } -> ignore (force_constant value)
      | _ -> ())
    (Graph.nodes plan.graph)

let run ?(around = fun _ _ f -> f ()) ?backend plan bindings =
  let values = Hashtbl.create 64 in
  List.iter (fun (id, t) -> Hashtbl.replace values id t) bindings;
  let lookup id =
    match Hashtbl.find_opt values id with
    | Some t -> t
    | None -> (
      match (Graph.node plan.graph id).Graph.op with
      | Op.Constant { value } ->
        let t = force_constant value in
        Hashtbl.replace values id t;
        t
      | Op.Input ->
        invalid_arg (Printf.sprintf "Plan.run: input node %d unbound" id)
      | _ ->
        invalid_arg
          (Printf.sprintf "Plan.run: node %d consumed before being produced" id))
  in
  List.iteri
    (fun i s ->
      let args = List.map lookup s.args in
      let out = around i s (fun () -> Compiled.run ?backend s.compiled args) in
      (* Re-shape the result to the graph node's shape (buffer ranks may
         differ from the logical shape, e.g. [rows, cols] row templates). *)
      let shape = Graph.node_shape plan.graph s.out_node in
      Hashtbl.replace values s.out_node (Tensor.reshape out shape))
    plan.steps;
  List.map lookup (Graph.outputs plan.graph)

let run1 ?around ?backend plan inputs =
  let ids = Graph.input_ids plan.graph in
  if List.length ids <> List.length inputs then
    invalid_arg "Plan.run1: input count mismatch";
  match run ?around ?backend plan (List.combine ids inputs) with
  | [ out ] -> out
  | _ -> invalid_arg "Plan.run1: graph has multiple outputs"

let cuda_source plan =
  Hidet_ir.Cuda_codegen.program
    (List.concat_map (fun s -> s.compiled.Compiled.kernels) plan.steps)

let pp fmt plan =
  Format.fprintf fmt "@[<v>plan (%d steps, %d kernels):@," (List.length plan.steps)
    (kernel_count plan);
  List.iter
    (fun s ->
      Format.fprintf fmt "  %%%d <- %s(%s)@," s.out_node s.compiled.Compiled.name
        (String.concat ", "
           (List.map (fun i -> "%" ^ string_of_int i) s.args)))
    plan.steps;
  Format.fprintf fmt "@]"
