(** The common interface of all inference engines compared in the paper's
    evaluation: Hidet itself, the loop-oriented tuners (AutoTVM-like,
    Ansor-like) and the kernel-library engines (PyTorch-, ONNX-Runtime- and
    TensorRT-like). *)

(** Qualitative capability levels, for the Table 1 reproduction. *)
type capability = Low | Medium | High

type caps = {
  graph_opt : capability;
  kernel_opt : capability;
  tuning_time : capability;  (** High = little tuning time needed *)
  engineering_effort : capability;  (** High = little effort per new op *)
}

type result = {
  engine : string;
  model : string;
  latency : float;  (** end-to-end seconds per the performance model *)
  tuning_cost : float;
      (** simulated tuning seconds of {e fresh} trials this compilation
          actually ran (paper Fig. 14 axis) *)
  cached_tuning_cost : float;
      (** simulated tuning seconds served from the schedule cache —
          cost this compilation would have paid without warm-starting *)
  tuning_wall : float;  (** actual seconds spent inside the tuners here *)
  compile_wall : float;  (** actual seconds the whole compilation took *)
  kernel_count : int;
  plan : Plan.t option;
      (** executable plan when the engine generates real kernels *)
}

val total_tuning_cost : result -> float
(** [tuning_cost + cached_tuning_cost]: the from-scratch tuning cost of the
    model, independent of the schedule cache's warm state — the Fig. 14
    quantity. *)

module type S = sig
  val name : string
  val caps : caps
  val compile : Hidet_gpu.Device.t -> Hidet_graph.Graph.t -> result
end

val capability_dots : capability -> string
(** Render as the paper's Table 1 dots. *)
