(** Per-kernel profiler report for a compiled plan.

    One row per kernel launch, nsight-compute style, derived entirely from
    the performance model ({!Hidet_gpu.Perf_model}, analytic or cycle
    fidelity) and the structural traffic counts ({!Hidet_gpu.Traffic}) — no
    execution involved, so profiling a plan is instant and deterministic.
    Under [`Cycle] fidelity each row additionally carries {!cycle_cols}
    (coalescing, bank conflicts, cache hit rates).

    [tail_waste] is the wave-quantization loss: the fraction of launched
    block slots the final, partially filled wave leaves idle
    ([1 - grid / (waves * num_sms * blocks_per_sm)]). It is the whole-kernel
    cousin of the partial-tile waste the hardware-centric schedule space
    trades against — a grid that does not divide the machine pays for the
    remainder just like a tile that does not divide the tensor. *)

(** Cycle-fidelity columns; present only when the row was estimated with
    [`Cycle] fidelity, so the analytic table stays byte-identical. *)
type cycle_cols = {
  txn_per_access : float;  (** mean coalesced transactions per warp access *)
  conflict_factor : float;  (** weighted mean shared-memory conflict degree *)
  l1_hit : float;  (** 0..1 *)
  l2_hit : float;  (** 0..1, incl. cross-block L2 reuse *)
}

type row = {
  step : int;  (** plan step index this kernel belongs to *)
  op : string;  (** compiled operator name (one op may launch >1 kernel) *)
  kernel : string;
  grid_dim : int;
  block_dim : int;
  latency : float;  (** seconds, incl. launch overhead *)
  mem_time : float;  (** per-wave memory component, seconds *)
  compute_time : float;  (** per-wave compute component, seconds *)
  pipelined : bool;
  occupancy : float;  (** 0..1 *)
  waves : int;
  blocks_per_sm : int;
  tail_waste : float;  (** 0..1, idle fraction of launched block slots *)
  smem_bytes : int;  (** static shared memory per block *)
  regs_per_thread : int;
  global_bytes : float;  (** total global load+store bytes, whole grid *)
  flops : float;  (** total scalar FLOPs, whole grid *)
  note : string;  (** binding bottleneck, or the infeasibility reason *)
  cycle : cycle_cols option;  (** [Some] iff estimated under [`Cycle] *)
}

val kernel_row :
  ?fidelity:Hidet_gpu.Perf_model.fidelity ->
  Hidet_gpu.Device.t -> step:int -> op:string -> Hidet_ir.Kernel.t -> row
(** [?fidelity] defaults to {!Hidet_gpu.Perf_model.default_fidelity}. *)

val report :
  ?fidelity:Hidet_gpu.Perf_model.fidelity ->
  Hidet_gpu.Device.t -> Plan.t -> row list
(** One row per kernel, in launch order. *)

val total_latency : row list -> float

val pp_rows : Format.formatter -> row list -> unit
(** The table, with a totals line. Rows carrying cycle columns switch the
    table to the wider cycle layout (txn/acc, bank, L1%, L2%). *)

val pp :
  ?fidelity:Hidet_gpu.Perf_model.fidelity ->
  Hidet_gpu.Device.t -> Format.formatter -> Plan.t -> unit
(** [pp device fmt plan = pp_rows fmt (report device plan)]. *)

(** {1 Measured execution}

    Unlike {!report}, these rows come from {e actually executing} the plan
    on a simulator backend: per-step wall time plus the [sim.threads] /
    [sim.statements] observability counter deltas. *)

type measured_row = {
  m_step : int;
  m_op : string;
  m_wall : float;  (** simulator wall seconds for this step *)
  m_threads : int;  (** GPU threads simulated *)
  m_statements : int;  (** IR statements executed across all threads *)
  m_compile_us : int;
      (** backend compile wall attributed to this step: the closure
          backend's per-launch compile, plus — on the native backend —
          codegen, [ocamlopt] and [Dynlink] (memoized launches pay only
          codegen again) *)
}

val measure :
  ?backend:Hidet_sched.Compiled.backend ->
  Plan.t ->
  Hidet_tensor.Tensor.t list ->
  measured_row list
(** Run the plan once on [inputs] (bound positionally to the graph
    inputs), one row per step in launch order. [?backend] selects the
    execution backend (default [Compiled.default_backend ()]). *)

val pp_measured : Format.formatter -> measured_row list -> unit
(** The table, with statements/sec throughput and a totals line. *)
