module Compiled = Hidet_sched.Compiled
module Device = Hidet_gpu.Device
module Perf_model = Hidet_gpu.Perf_model
module Traffic = Hidet_gpu.Traffic
module Kernel = Hidet_ir.Kernel

(* Cycle-model columns, populated only under [`Cycle] fidelity so the
   analytic profiler output stays byte-identical. *)
type cycle_cols = {
  txn_per_access : float;
  conflict_factor : float;
  l1_hit : float;
  l2_hit : float;
}

type row = {
  step : int;
  op : string;
  kernel : string;
  grid_dim : int;
  block_dim : int;
  latency : float;
  mem_time : float;
  compute_time : float;
  pipelined : bool;
  occupancy : float;
  waves : int;
  blocks_per_sm : int;
  tail_waste : float;
  smem_bytes : int;
  regs_per_thread : int;
  global_bytes : float;
  flops : float;
  note : string;
  cycle : cycle_cols option;
}

let kernel_row ?fidelity device ~step ~op (k : Kernel.t) =
  let fidelity =
    match fidelity with Some f -> f | None -> Perf_model.default_fidelity ()
  in
  let e, cycle =
    match fidelity with
    | `Analytic -> (Perf_model.kernel device k, None)
    | `Cycle ->
      let e, x = Hidet_cycle.Fidelity.kernel device k in
      ( e,
        Some
          {
            txn_per_access = x.Hidet_cycle.Fidelity.txn_per_access;
            conflict_factor = x.Hidet_cycle.Fidelity.conflict_factor;
            l1_hit = x.Hidet_cycle.Fidelity.l1_hit;
            l2_hit = x.Hidet_cycle.Fidelity.l2_hit;
          } )
  in
  let c = Traffic.kernel k in
  (* Wave quantization: the final wave launches [concurrent] block slots but
     only fills what is left of the grid. The idle fraction of all launched
     slots is the schedule's partial-tile / tail waste. *)
  let concurrent = device.Device.num_sms * e.Perf_model.blocks_per_sm in
  let tail_waste =
    if e.Perf_model.waves = 0 || concurrent = 0 then 0.
    else
      1.
      -. (float_of_int k.Kernel.grid_dim
         /. float_of_int (e.Perf_model.waves * concurrent))
  in
  let per_thread = float_of_int (k.Kernel.grid_dim * k.Kernel.block_dim) in
  {
    step;
    op;
    kernel = k.Kernel.name;
    grid_dim = k.Kernel.grid_dim;
    block_dim = k.Kernel.block_dim;
    latency = e.Perf_model.latency;
    mem_time = e.Perf_model.mem_time;
    compute_time = e.Perf_model.compute_time;
    pipelined = e.Perf_model.pipelined;
    occupancy = e.Perf_model.occupancy;
    waves = e.Perf_model.waves;
    blocks_per_sm = e.Perf_model.blocks_per_sm;
    tail_waste;
    smem_bytes = Kernel.shared_bytes k;
    regs_per_thread = Kernel.regs_per_thread k;
    global_bytes =
      (c.Traffic.global_load_bytes +. c.Traffic.global_store_bytes)
      *. per_thread;
    flops = c.Traffic.flops *. per_thread;
    note = e.Perf_model.note;
    cycle;
  }

let report ?fidelity device (plan : Plan.t) =
  List.concat
    (List.mapi
       (fun i (s : Plan.step) ->
         List.map
           (kernel_row ?fidelity device ~step:i
              ~op:s.Plan.compiled.Compiled.name)
           s.Plan.compiled.Compiled.kernels)
       plan.Plan.steps)

let total_latency rows = List.fold_left (fun a r -> a +. r.latency) 0. rows

let truncate n s = if String.length s <= n then s else String.sub s 0 (n - 1) ^ "~"

let pp_rows fmt rows =
  (* The extra columns appear only when at least one row was estimated
     under cycle fidelity; the analytic table is unchanged byte for byte. *)
  let cycle_mode = List.exists (fun r -> r.cycle <> None) rows in
  if cycle_mode then begin
    Format.fprintf fmt
      "@[<v>fidelity: cycle@,%-4s %-26s %7s %6s %9s %8s %8s %5s %5s %6s %7s %7s %8s %5s %7s %5s %5s %5s %s@,"
      "step" "kernel" "grid" "block" "lat(us)" "mem(us)" "cmp(us)" "pipe"
      "occ%" "waves" "blk/SM" "waste%" "smem(B)" "regs" "txn/acc" "bank"
      "L1%" "L2%" "bottleneck";
    List.iter
      (fun r ->
        let x =
          Option.value r.cycle
            ~default:
              {
                txn_per_access = 0.;
                conflict_factor = 1.;
                l1_hit = 0.;
                l2_hit = 0.;
              }
        in
        Format.fprintf fmt
          "%-4d %-26s %7d %6d %9.1f %8.1f %8.1f %5s %5.0f %6d %7d %7.1f %8d %5d %7.2f %5.2f %5.0f %5.0f %s@,"
          r.step (truncate 26 r.kernel) r.grid_dim r.block_dim
          (r.latency *. 1e6) (r.mem_time *. 1e6) (r.compute_time *. 1e6)
          (if r.pipelined then "yes" else "no")
          (r.occupancy *. 100.) r.waves r.blocks_per_sm (r.tail_waste *. 100.)
          r.smem_bytes r.regs_per_thread x.txn_per_access x.conflict_factor
          (x.l1_hit *. 100.) (x.l2_hit *. 100.) r.note)
      rows;
    Format.fprintf fmt "%-4s %-26s %7s %6s %9.1f@,@]" "" "total" "" ""
      (total_latency rows *. 1e6)
  end
  else begin
    Format.fprintf fmt "@[<v>%-4s %-26s %7s %6s %9s %8s %8s %5s %5s %6s %7s %7s %8s %5s %s@,"
      "step" "kernel" "grid" "block" "lat(us)" "mem(us)" "cmp(us)" "pipe"
      "occ%" "waves" "blk/SM" "waste%" "smem(B)" "regs" "bottleneck";
    List.iter
      (fun r ->
        Format.fprintf fmt
          "%-4d %-26s %7d %6d %9.1f %8.1f %8.1f %5s %5.0f %6d %7d %7.1f %8d %5d %s@,"
          r.step (truncate 26 r.kernel) r.grid_dim r.block_dim
          (r.latency *. 1e6) (r.mem_time *. 1e6) (r.compute_time *. 1e6)
          (if r.pipelined then "yes" else "no")
          (r.occupancy *. 100.) r.waves r.blocks_per_sm (r.tail_waste *. 100.)
          r.smem_bytes r.regs_per_thread r.note)
      rows;
    Format.fprintf fmt "%-4s %-26s %7s %6s %9.1f@,@]" "" "total"
      "" "" (total_latency rows *. 1e6)
  end

let pp ?fidelity device fmt plan = pp_rows fmt (report ?fidelity device plan)

(* --- measured execution ---------------------------------------------------- *)

module Metrics = Hidet_obs.Metrics

type measured_row = {
  m_step : int;
  m_op : string;
  m_wall : float;
  m_threads : int;
  m_statements : int;
  m_compile_us : int;
}

let measure ?backend plan inputs =
  let threads_c = Metrics.counter "sim.threads" in
  let stmts_c = Metrics.counter "sim.statements" in
  (* Compile wall: the closure backend's per-launch compile, plus — on the
     native backend — codegen, ocamlopt and dynlink. Memoized launches add
     back only the (cheap) codegen share. *)
  let compile_counters =
    List.map Metrics.counter
      [
        "sim.compile_us";
        "sim.native.codegen_us";
        "sim.native.ocamlopt_us";
        "sim.native.dynlink_us";
      ]
  in
  let compile_us () =
    List.fold_left (fun a c -> a + Metrics.value c) 0 compile_counters
  in
  let rows = ref [] in
  let around i (s : Plan.step) exec =
    let th0 = Metrics.value threads_c
    and st0 = Metrics.value stmts_c
    and cu0 = compile_us () in
    let t0 = Unix.gettimeofday () in
    let out = exec () in
    let wall = Unix.gettimeofday () -. t0 in
    rows :=
      {
        m_step = i;
        m_op = s.Plan.compiled.Compiled.name;
        m_wall = wall;
        m_threads = Metrics.value threads_c - th0;
        m_statements = Metrics.value stmts_c - st0;
        m_compile_us = compile_us () - cu0;
      }
      :: !rows;
    out
  in
  ignore (Plan.run1 ~around ?backend plan inputs);
  List.rev !rows

let pp_measured fmt rows =
  Format.fprintf fmt "@[<v>%-4s %-26s %10s %11s %12s %14s %14s@,"
    "step" "op" "wall(ms)" "compile(ms)" "sim.threads" "sim.stmts"
    "stmts/sec";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-4d %-26s %10.2f %11.2f %12d %14d %14.3g@," r.m_step
        (truncate 26 r.m_op) (r.m_wall *. 1e3)
        (float_of_int r.m_compile_us /. 1e3)
        r.m_threads r.m_statements
        (float_of_int r.m_statements /. r.m_wall))
    rows;
  let wall = List.fold_left (fun a r -> a +. r.m_wall) 0. rows in
  let compile_us = List.fold_left (fun a r -> a + r.m_compile_us) 0 rows in
  let stmts = List.fold_left (fun a r -> a + r.m_statements) 0 rows in
  let threads = List.fold_left (fun a r -> a + r.m_threads) 0 rows in
  Format.fprintf fmt "%-4s %-26s %10.2f %11.2f %12d %14d %14.3g@,@]" ""
    "total" (wall *. 1e3)
    (float_of_int compile_us /. 1e3)
    threads stmts
    (float_of_int stmts /. wall)
