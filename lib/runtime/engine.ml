type capability = Low | Medium | High

type caps = {
  graph_opt : capability;
  kernel_opt : capability;
  tuning_time : capability;
  engineering_effort : capability;
}

type result = {
  engine : string;
  model : string;
  latency : float;
  tuning_cost : float;
  cached_tuning_cost : float;
  tuning_wall : float;
  compile_wall : float;
  kernel_count : int;
  plan : Plan.t option;
}

let total_tuning_cost r = r.tuning_cost +. r.cached_tuning_cost

module type S = sig
  val name : string
  val caps : caps
  val compile : Hidet_gpu.Device.t -> Hidet_graph.Graph.t -> result
end

let capability_dots = function Low -> "o" | Medium -> "oo" | High -> "ooo"
