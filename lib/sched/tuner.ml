module Trace = Hidet_obs.Trace
module Metrics = Hidet_obs.Metrics
module Tuning_log = Hidet_obs.Tuning_log

type stats = {
  trials : int;
  rejected : int;
  best_index : int;
  simulated_seconds : float;
  wall_seconds : float;
  best_latency : float;
  workers : int;
}

let seconds_per_trial = 1.5

let default_seconds_per_trial = seconds_per_trial

(* Trials and rejections are counted where they happen — inside the worker
   domains — so the observability tests can check that parallel counts sum
   to the sequential run's totals. *)
let m_trials = Metrics.counter "tuner.trials"
let m_rejected = Metrics.counter "tuner.rejected"

(* Outcome of one candidate. [Rejected]: the template refused the config
   ([Invalid_argument]); nothing was ever measured, so (per the cost
   accounting) no simulated seconds accrue. [Measured lat]: compiled and
   run through the latency model ([infinity] = infeasible on this device,
   still a paid measurement). *)
type outcome = Rejected | Measured of float

let log_trial ~engine ~key ~show ~index ~cand ~proposer outcome =
  if Tuning_log.enabled () then
    Tuning_log.record
      {
        Tuning_log.engine;
        workload = key;
        index;
        config = show cand;
        outcome =
          (match outcome with
          | Rejected -> Tuning_log.Rejected
          | Measured lat when lat < infinity -> Tuning_log.Measured
          | Measured _ -> Tuning_log.Infeasible);
        latency = (match outcome with Measured lat -> lat | Rejected -> infinity);
        proposer;
      }

let trial_span ~key ~show ~index ~cand outcome =
  let csp = Trace.enter "trial" in
  Trace.add csp "workload" key;
  Trace.add csp "index" (string_of_int index);
  Trace.add csp "config" (show cand);
  (match outcome with
  | Rejected -> Trace.add csp "outcome" "rejected"
  | Measured lat when lat < infinity ->
    Trace.add csp "outcome" "measured";
    Trace.add csp "latency_us" (Printf.sprintf "%.3f" (lat *. 1e6))
  | Measured _ -> Trace.add csp "outcome" "infeasible");
  Trace.exit csp

let tune ?(seconds_per_trial = default_seconds_per_trial) ?(parallel = true)
    ?workers ?(engine = "hidet") ?(key = "") ?(show = fun _ -> "")
    ?(search = Search.Exhaustive) ?fidelity ~device ~candidates ~compile () =
  let t0 = Unix.gettimeofday () in
  let cands = Array.of_list candidates in
  let w =
    if not parallel then 1
    else max 1 (Option.value workers ~default:(Parallel.default_workers ()))
  in
  let sp =
    Trace.enter
      ~attrs:
        [
          ("engine", engine);
          ("workload", key);
          ("search", Search.name search);
          ("candidates", string_of_int (Array.length cands));
        ]
      "tune"
  in
  let measure cand =
    match compile cand with
    | exception Invalid_argument _ ->
      Metrics.incr m_rejected;
      Rejected
    | compiled ->
      Metrics.incr m_trials;
      Measured (Compiled.latency ?fidelity device compiled)
  in
  let trials = ref 0 and rejected = ref 0 in
  let best = ref None in
  (match Search.start search ~candidates:cands with
  | None ->
    (* Exhaustive: measure every candidate. Whether each candidate gets its
       own trace span / tuning-log record is decided once per tune call, so
       the untraced path stays a bare compile+measure. *)
    let observed = Trace.enabled () || Tuning_log.enabled () in
    let outcomes =
      if not observed then Parallel.map ~workers:w measure cands
      else
        Parallel.map ~workers:w
          (fun (i, cand) ->
            let outcome = measure cand in
            if Trace.enabled () then trial_span ~key ~show ~index:i ~cand outcome;
            log_trial ~engine ~key ~show ~index:i ~cand
              ~proposer:Tuning_log.Exhaustive outcome;
            outcome)
          (Array.mapi (fun i c -> (i, c)) cands)
    in
    (* Deterministic merge: scan in candidate order and replace only on a
       strictly lower latency, so ties break toward the lowest index and the
       parallel and sequential paths always select the same config. *)
    Array.iteri
      (fun i -> function
        | Rejected -> incr rejected
        | Measured lat ->
          incr trials;
          if lat < infinity then
            match !best with
            | Some (b, _) when b <= lat -> ()
            | _ -> best := Some (lat, i))
      outcomes
  | Some run ->
    (* Guided: the search proposes generations of candidate indices; each
       generation is measured (possibly across domains) and merged — and
       observed, logged and traced — in batch order, so the whole trial
       sequence is a function of the seed alone. *)
    let finished = ref false in
    while not !finished do
      match Search.next_batch run with
      | [] -> finished := true
      | batch ->
        let barr = Array.of_list batch in
        let outcomes =
          Parallel.map ~workers:w (fun (i, _) -> measure cands.(i)) barr
        in
        Array.iteri
          (fun bi outcome ->
            let i, proposer = barr.(bi) in
            let cand = cands.(i) in
            (match outcome with
            | Rejected -> incr rejected
            | Measured lat ->
              incr trials;
              if lat < infinity then
                match !best with
                | Some (b, _) when b <= lat -> ()
                | _ -> best := Some (lat, i));
            Search.observe run ~index:i
              ~latency:
                (match outcome with Measured l -> l | Rejected -> infinity);
            if Trace.enabled () then trial_span ~key ~show ~index:i ~cand outcome;
            log_trial ~engine ~key ~show ~index:i ~cand ~proposer outcome)
          outcomes
    done);
  let wall = Unix.gettimeofday () -. t0 in
  Trace.add sp "trials" (string_of_int !trials);
  Trace.add sp "rejected" (string_of_int !rejected);
  (match !best with
  | Some (lat, i) ->
    Trace.add sp "best_index" (string_of_int i);
    Trace.add sp "best_latency_us" (Printf.sprintf "%.3f" (lat *. 1e6))
  | None -> Trace.add sp "outcome" "no feasible candidate");
  Trace.exit sp;
  Option.map
    (fun (lat, i) ->
      let cand = cands.(i) in
      (* Re-instantiate the winner in the calling domain so the returned
         artifact never depends on which domain compiled it. *)
      ( cand,
        compile cand,
        {
          trials = !trials;
          rejected = !rejected;
          best_index = i;
          simulated_seconds = float_of_int !trials *. seconds_per_trial;
          wall_seconds = wall;
          best_latency = lat;
          workers = w;
        } ))
    !best

let tune_matmul ~device ?(batch = 1) ?(a_batched = true) ?(b_batched = false)
    ?parallel ?search ~m ~n ~k () =
  tune ~device ?parallel ?search
    ~key:(Printf.sprintf "matmul_%d_%d_%d_%d" batch m n k)
    ~show:Matmul_template.config_to_string
    ~candidates:(Space.matmul_with_split_k ~m ~n)
    ~compile:(fun cfg ->
      Matmul_template.compile ~batch ~a_batched ~b_batched ~m ~n ~k cfg)
    ()
