type stats = {
  trials : int;
  rejected : int;
  best_index : int;
  simulated_seconds : float;
  wall_seconds : float;
  best_latency : float;
  workers : int;
}

let seconds_per_trial = 1.5

let default_seconds_per_trial = seconds_per_trial

(* Outcome of one candidate. [Rejected]: the template refused the config
   ([Invalid_argument]); nothing was ever measured, so (per the cost
   accounting) no simulated seconds accrue. [Measured lat]: compiled and
   run through the latency model ([infinity] = infeasible on this device,
   still a paid measurement). *)
type outcome = Rejected | Measured of float

let tune ?(seconds_per_trial = default_seconds_per_trial) ?(parallel = true)
    ?workers ~device ~candidates ~compile () =
  let t0 = Unix.gettimeofday () in
  let cands = Array.of_list candidates in
  let w =
    if not parallel then 1
    else max 1 (Option.value workers ~default:(Parallel.default_workers ()))
  in
  let outcomes =
    Parallel.map ~workers:w
      (fun cand ->
        match compile cand with
        | exception Invalid_argument _ -> Rejected
        | compiled -> Measured (Compiled.latency device compiled))
      cands
  in
  (* Deterministic merge: scan in candidate order and replace only on a
     strictly lower latency, so ties break toward the lowest index and the
     parallel and sequential paths always select the same config. *)
  let trials = ref 0 and rejected = ref 0 in
  let best = ref None in
  Array.iteri
    (fun i -> function
      | Rejected -> incr rejected
      | Measured lat ->
        incr trials;
        if lat < infinity then
          match !best with
          | Some (b, _) when b <= lat -> ()
          | _ -> best := Some (lat, i))
    outcomes;
  let wall = Unix.gettimeofday () -. t0 in
  Option.map
    (fun (lat, i) ->
      let cand = cands.(i) in
      (* Re-instantiate the winner in the calling domain so the returned
         artifact never depends on which domain compiled it. *)
      ( cand,
        compile cand,
        {
          trials = !trials;
          rejected = !rejected;
          best_index = i;
          simulated_seconds = float_of_int !trials *. seconds_per_trial;
          wall_seconds = wall;
          best_latency = lat;
          workers = w;
        } ))
    !best

let tune_matmul ~device ?(batch = 1) ?(a_batched = true) ?(b_batched = false)
    ?parallel ~m ~n ~k () =
  tune ~device ?parallel
    ~candidates:(Space.matmul_with_split_k ~m ~n)
    ~compile:(fun cfg ->
      Matmul_template.compile ~batch ~a_batched ~b_batched ~m ~n ~k cfg)
    ()
