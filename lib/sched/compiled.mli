(** A compiled operator: one or more kernels plus its I/O buffers.

    Most operators compile to a single kernel; split-k matrix multiplication
    compiles to a partial-product kernel followed by a reduction kernel. *)

type t = {
  name : string;
  kernels : Hidet_ir.Kernel.t list;  (** in launch order *)
  ins : Hidet_ir.Buffer.t list;  (** bind input tensors to these *)
  out : Hidet_ir.Buffer.t;  (** final output *)
  temps : Hidet_ir.Buffer.t list;  (** intermediate global buffers *)
  key : string option;
      (** schedule-cache workload key, set by the tuning service; scopes
          the native backend's per-kernel compile memo *)
}

(** {1 Execution backend}

    Which simulator executes {!run}'s kernels. [`Closure] is
    {!Hidet_gpu.Compile_exec}; [`Native] is {!Hidet_gpu.Exec_ocaml}
    (codegen → [ocamlopt] → [Dynlink]) and silently degrades to the
    closure backend — with the reason logged once — when the toolchain is
    unavailable. All backends produce bit-identical results. *)

type backend = [ `Closure | `Native ]

val set_default_backend : backend -> unit
(** Process-global default for {!run} calls that don't pass [?backend]
    (e.g. set once from [hidetc --backend]). Initially [`Closure]. *)

val default_backend : unit -> backend

val latency :
  ?fidelity:Hidet_gpu.Perf_model.fidelity -> Hidet_gpu.Device.t -> t -> float
(** Sum of per-kernel estimates (each includes launch overhead); [infinity]
    if any kernel is infeasible. [?fidelity] defaults to the process-global
    {!Hidet_gpu.Perf_model.default_fidelity}. *)

val feasible : Hidet_gpu.Device.t -> t -> bool

val run :
  ?legacy:bool ->
  ?backend:backend ->
  t ->
  Hidet_tensor.Tensor.t list ->
  Hidet_tensor.Tensor.t
(** Execute on the simulator. Input tensors are bound to [ins]
    positionally (matched by element count — layouts are row-major on both
    sides, so ranks may differ, e.g. a [m,k] tensor binding a [1,m,k]
    buffer). Returns the output with the buffer's shape.

    Kernels run on [?backend] (default {!default_backend}, initially the
    closure-compiling {!Hidet_gpu.Compile_exec}); [~legacy:true] forces the
    reference tree-walking interpreter ({!Hidet_gpu.Interp}) regardless —
    same results bit for bit, an order of magnitude slower. *)

val verify : t -> unit
(** Verifies every kernel; raises [Failure] on the first invalid one. *)

val cuda_source : t -> string
