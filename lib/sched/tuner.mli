(** Tuning over the hardware-centric schedule space.

    The default is the paper's exhaustive mode (180 schedules, "simply
    enumerating all schedules ... can be done within one minute"): every
    candidate is compiled and measured; the best feasible one wins. The
    widened space (swizzle, split-k, deep pipelines) also supports
    {!Search.Guided}, which measures a bounded fraction of the candidates
    via seeded evolutionary search. In both modes candidates are compiled
    and measured in parallel across OCaml domains (the paper's parallel
    candidate compilation), with a deterministic merge so the parallel and
    sequential paths always select the identical config — for guided runs,
    the whole trial sequence is a function of the search seed alone.

    Tuning cost accounting: real measurement on the paper's platform costs
    roughly [seconds_per_trial] per candidate (compile + benchmark); we
    report [trials * seconds_per_trial] as the simulated tuning cost used in
    the Fig. 14 reproduction, counting only candidates that were actually
    measured — configs the template rejects outright ([Invalid_argument])
    never reach the device and are reported separately as [rejected]. *)

type stats = {
  trials : int;  (** candidates compiled and measured *)
  rejected : int;  (** candidates the template refused; never measured *)
  best_index : int;  (** index of the winner in the candidate list *)
  simulated_seconds : float;  (** trials x seconds_per_trial *)
  wall_seconds : float;  (** actual enumeration time on this machine *)
  best_latency : float;  (** seconds, per the performance model *)
  workers : int;  (** domains that ran the enumeration *)
}

val seconds_per_trial : float
(** 1.5 s: compile + on-device measurement of one schedule candidate. *)

val tune :
  ?seconds_per_trial:float ->
  ?parallel:bool ->
  ?workers:int ->
  ?engine:string ->
  ?key:string ->
  ?show:('a -> string) ->
  ?search:'a Search.t ->
  ?fidelity:Hidet_gpu.Perf_model.fidelity ->
  device:Hidet_gpu.Device.t ->
  candidates:'a list ->
  compile:('a -> Compiled.t) ->
  unit ->
  ('a * Compiled.t * stats) option
(** Generic tuner; [None] if no candidate is feasible. Ties on latency
    break toward the lowest candidate index (exhaustive) or the earliest
    proposal (guided). [?search] (default {!Search.Exhaustive}) selects
    the strategy; a guided search measures at most its budget fraction of
    [candidates] and reports only those measurements in [stats].
    [?fidelity] selects the latency model each measurement uses
    (default: the process-global {!Hidet_gpu.Perf_model.default_fidelity}).
    [~parallel:false] forces the sequential path (same result, one
    domain); [?workers] overrides {!Parallel.default_workers}. The winning
    candidate is re-instantiated in the calling domain, so the returned
    [Compiled.t] does not depend on domain scheduling.

    Observability: every call maintains the ["tuner.trials"] and
    ["tuner.rejected"] counters (incremented inside the worker domains).
    When tracing ({!Hidet_obs.Trace.enabled}) or the tuning log
    ({!Hidet_obs.Tuning_log.enabled}) is on, the call is wrapped in a
    ["tune"] span (attributed with the search mode) and each candidate
    gets a ["trial"] span / log record carrying [?engine] (default
    ["hidet"]), the workload signature [?key], the candidate index, the
    printable config from [?show], the outcome (measured / infeasible /
    rejected), the estimated latency, and the proposer (exhaustive / seed
    / mutation / crossover). Guided runs emit spans and records in batch
    order from the driver, so the logged trial sequence is deterministic
    even across domains. With both disabled, the per-candidate path is a
    bare compile+measure. *)

val tune_matmul :
  device:Hidet_gpu.Device.t ->
  ?batch:int ->
  ?a_batched:bool ->
  ?b_batched:bool ->
  ?parallel:bool ->
  ?search:Matmul_template.config Search.t ->
  m:int ->
  n:int ->
  k:int ->
  unit ->
  (Matmul_template.config * Compiled.t * stats) option
(** Tune over {!Space.matmul_with_split_k}. *)
