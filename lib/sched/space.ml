module MT = Matmul_template

let cartesian_configs () =
  let block_ms = [ 16; 32; 64; 128 ] in
  let block_ns = [ 16; 32; 64; 128 ] in
  let block_ks = [ 8; 16; 32 ] in
  let warp_fracs = [ 1; 2 ] in
  (* warp tile = block tile / frac *)
  let stage_opts = [ 1; 2 ] in
  let bools = [ false; true ] in
  List.concat_map
    (fun block_m ->
      List.concat_map
        (fun block_n ->
          List.concat_map
            (fun block_k ->
              List.concat_map
                (fun fm ->
                  List.concat_map
                    (fun fn ->
                      List.concat_map
                        (fun stages ->
                          List.map
                            (fun use_tensor_core ->
                              {
                                MT.block_m;
                                block_n;
                                block_k;
                                warp_m = block_m / fm;
                                warp_n = block_n / fn;
                                stages;
                                split_k = 1;
                                use_tensor_core;
                                swizzle = false;
                              })
                            bools)
                        stage_opts)
                    warp_fracs)
                warp_fracs)
            block_ks)
        block_ns)
    block_ms

(* Curation: drop degenerate aspect ratios and register-starved tiles so the
   space stays under ~200 entries while covering the useful corners. *)
let keep (c : MT.config) =
  let aspect = max (c.MT.block_m / c.MT.block_n) (c.MT.block_n / c.MT.block_m) in
  let threads = MT.block_dim c in
  aspect <= 4 && (min c.MT.block_m c.MT.block_n > 16 || aspect <= 2)
  && threads >= 32 && threads <= 256
  && c.MT.block_m * c.MT.block_k >= threads
  && c.MT.block_k * c.MT.block_n >= threads
  &&
  if c.MT.use_tensor_core then c.MT.block_k = 16 && c.MT.block_m >= 32
  else c.MT.warp_m * c.MT.warp_n >= 512 && c.MT.block_k <= 16

let matmul =
  let base =
    List.filter (fun c -> keep c && Result.is_ok (MT.check c)) (cartesian_configs ())
  in
  (* A few 3-stage (CUTLASS-multistage-style) pipelines for the largest
     tensor-core tiles, where the deeper pipeline pays for its shared
     memory. *)
  let multistage =
    List.filter_map
      (fun (c : MT.config) ->
        if c.MT.use_tensor_core && c.MT.stages = 2 && c.MT.block_m >= 64
           && c.MT.block_n >= 64
        then Some { c with MT.stages = 3 }
        else None)
      base
  in
  base @ multistage

let size () = List.length matmul

let sample_matmul rs count =
  let all = Array.of_list matmul in
  let n = Array.length all in
  let count = max 0 (min count n) in
  if count = n then Array.to_list all
  else begin
    (* Partial Fisher–Yates over a copy: [count] distinct draws, order
       determined entirely by [rs], so the same seed yields the same
       configs on every run. *)
    let a = Array.copy all in
    for i = 0 to count - 1 do
      let j = i + Random.State.int rs (n - i) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    Array.to_list (Array.sub a 0 count)
  end

let matmul_with_split_k ~m ~n =
  (* When the m x n tile grid cannot fill the SMs with mid-size tiles, add
     split-k variants of the smaller tiles (parallel k reduction). *)
  let tiles64 = (m + 63) / 64 * ((n + 63) / 64) in
  if tiles64 >= 256 then matmul
  else
    matmul
    @ List.concat_map
        (fun sk ->
          List.filter_map
            (fun c ->
              if c.MT.block_m <= 64 && c.MT.block_n <= 64 && c.MT.stages = 2 then
                Some { c with MT.split_k = sk }
              else None)
            matmul)
        [ 4; 8 ]
