module MT = Matmul_template

let cartesian_configs () =
  let block_ms = [ 16; 32; 64; 128 ] in
  let block_ns = [ 16; 32; 64; 128 ] in
  let block_ks = [ 8; 16; 32 ] in
  let warp_fracs = [ 1; 2 ] in
  (* warp tile = block tile / frac *)
  let stage_opts = [ 1; 2 ] in
  let bools = [ false; true ] in
  List.concat_map
    (fun block_m ->
      List.concat_map
        (fun block_n ->
          List.concat_map
            (fun block_k ->
              List.concat_map
                (fun fm ->
                  List.concat_map
                    (fun fn ->
                      List.concat_map
                        (fun stages ->
                          List.map
                            (fun use_tensor_core ->
                              {
                                MT.block_m;
                                block_n;
                                block_k;
                                warp_m = block_m / fm;
                                warp_n = block_n / fn;
                                stages;
                                split_k = 1;
                                use_tensor_core;
                                swizzle = false;
                              })
                            bools)
                        stage_opts)
                    warp_fracs)
                warp_fracs)
            block_ks)
        block_ns)
    block_ms

(* Canonical dedup: configs are plain scalar records, so structural equality
   is exactly config identity. First occurrence wins, order preserved — the
   schedule cache stores winner *indices*, so enumeration order is part of
   the contract. *)
let dedup configs =
  let seen = Hashtbl.create 512 in
  List.filter
    (fun (c : MT.config) ->
      if Hashtbl.mem seen c then false
      else begin
        Hashtbl.add seen c ();
        true
      end)
    configs

(* Curation: drop degenerate aspect ratios and register-starved tiles so the
   base space stays near the paper's ~180 entries while covering the useful
   corners. *)
let keep (c : MT.config) =
  let aspect = max (c.MT.block_m / c.MT.block_n) (c.MT.block_n / c.MT.block_m) in
  let threads = MT.block_dim c in
  aspect <= 4 && (min c.MT.block_m c.MT.block_n > 16 || aspect <= 2)
  && threads >= 32 && threads <= 256
  && c.MT.block_m * c.MT.block_k >= threads
  && c.MT.block_k * c.MT.block_n >= threads
  &&
  if c.MT.use_tensor_core then c.MT.block_k = 16 && c.MT.block_m >= 32
  else c.MT.warp_m * c.MT.warp_n >= 512 && c.MT.block_k <= 16

(* The widened dimensions (this is the space the guided tuner exists for):

   - deep pipelines: 3- and 4-stage circular-buffer variants of the larger
     double-buffered tiles, where the extra shared-memory stage can pay for
     itself (feasibility on a concrete device is judged by the perf model's
     occupancy limits, not here);
   - thread-block swizzle: an L2-locality remap of the launch order for
     every pipelined tile big enough to have operand panels worth sharing
     ({!Hidet_gpu.Traffic.block_reuse} makes these distinguishable). *)
let widen base =
  let deep =
    List.concat_map
      (fun (c : MT.config) ->
        if c.MT.stages = 2 && c.MT.block_m >= 64 && c.MT.block_n >= 64 then
          [ { c with MT.stages = 3 }; { c with MT.stages = 4 } ]
        else [])
      base
  in
  let with_deep = base @ deep in
  let swizzled =
    List.filter_map
      (fun (c : MT.config) ->
        if c.MT.stages >= 2 && c.MT.block_m >= 32 && c.MT.block_n >= 32 then
          Some { c with MT.swizzle = true }
        else None)
      with_deep
  in
  with_deep @ swizzled

(* Lazily constructed and memoized: subcommands that never tune (trace
   checking, export, log inspection) must not pay for enumerating and
   checking the widened space at module initialization. *)
(* Domain-safe memoization: [Lazy.force] from two domains at once raises
   [Lazy.Undefined] (OCaml 5 lazies are not thread-safe), and tuner workers
   plus concurrently compiling engines can both be the first caller. The
   result is published through an [Atomic] (read without locking on the hot
   path) and built at most once under a mutex (double-checked). *)
let matmul_memo : MT.config list option Atomic.t = Atomic.make None
let matmul_lock = Mutex.create ()

let build_matmul () =
  dedup
    (widen
       (List.filter
          (fun c -> keep c && Result.is_ok (MT.check c))
          (cartesian_configs ())))

let matmul () =
  match Atomic.get matmul_memo with
  | Some configs -> configs
  | None ->
    Mutex.lock matmul_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock matmul_lock)
      (fun () ->
        match Atomic.get matmul_memo with
        | Some configs -> configs
        | None ->
          let configs = build_matmul () in
          Atomic.set matmul_memo (Some configs);
          configs)

let size () = List.length (matmul ())

let sample_matmul rs count =
  let all = Array.of_list (matmul ()) in
  let n = Array.length all in
  let count = max 0 (min count n) in
  if count = n then Array.to_list all
  else begin
    (* Partial Fisher–Yates over a copy: [count] distinct draws, order
       determined entirely by [rs], so the same seed yields the same
       configs on every run. *)
    let a = Array.copy all in
    for i = 0 to count - 1 do
      let j = i + Random.State.int rs (n - i) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    Array.to_list (Array.sub a 0 count)
  end

(* Split-k is a first-class dimension of the shape-aware space: factors are
   chosen by how far the m x n tile grid is from saturating the device, and
   applied across tile sizes and pipeline depths (not just the small-tile
   double-buffered corner). The latency model charges the partial-sum
   traffic and the reduction epilogue through the second kernel the
   template emits, so these variants compete on modeled cost like any
   other config. *)
let split_k_factors ~m ~n =
  let tiles64 = (m + 63) / 64 * ((n + 63) / 64) in
  if tiles64 >= 256 then []
  else if tiles64 >= 64 then [ 2; 4 ]
  else [ 2; 4; 8 ]

let matmul_with_split_k ~m ~n =
  let base = matmul () in
  match split_k_factors ~m ~n with
  | [] -> base
  | sks ->
    dedup
      (base
      @ List.concat_map
          (fun sk ->
            List.filter_map
              (fun (c : MT.config) ->
                (* Swizzle targets big grids; split-k targets small ones —
                   combining them would only pad the space. *)
                if c.MT.stages >= 2 && not c.MT.swizzle then
                  Some { c with MT.split_k = sk }
                else None)
              base)
          sks)
