open Hidet_ir
module Def = Hidet_compute.Def

let ceil_div a b = (a + b - 1) / b

(* Decode the flat worker id into multi-dimensional output indices. *)
let decode_axes gid shape =
  let n = List.length shape in
  let strides =
    List.mapi
      (fun i _ ->
        List.fold_left ( * ) 1 (List.filteri (fun j _ -> j > i) shape))
      shape
  in
  List.mapi
    (fun i d ->
      let s = List.nth strides i in
      if i = 0 && n > 0 then Expr.div gid (Expr.int s)
      else Expr.modulo (Expr.div gid (Expr.int s)) (Expr.int d))
    shape

let schedule ?(block_dim = 256) (d : Def.t) =
  let ins =
    List.mapi (fun i shape -> Buffer.create (Printf.sprintf "in%d" i) shape) d.Def.in_shapes
  in
  let out = Buffer.create "out" d.Def.out_shape in
  let numel = Def.num_out_elems d in
  let grid = max 1 (ceil_div numel block_dim) in
  let v_gid = Var.fresh "gid" in
  let gid = Expr.var v_gid in
  let axes = decode_axes gid d.Def.out_shape in
  let load_input k idx = Expr.load (List.nth ins k) idx in
  let body_stmt =
    match d.Def.reduce with
    | None ->
      Stmt.store out axes
        (Def.scalar_to_expr ~inputs:load_input ~axes ~raxes:[] d.Def.body)
    | Some (extents, kind) ->
      let acc = Buffer.create ~scope:Buffer.Register "acc" [ 1 ] in
      let init_v =
        match kind with Def.Sum -> 0. | Def.Max_reduce -> neg_infinity
      in
      let combine a b =
        match kind with Def.Sum -> Expr.add a b | Def.Max_reduce -> Expr.max_ a b
      in
      let rvars = List.map (fun _ -> Var.fresh "r") extents in
      let raxes = List.map Expr.var rvars in
      let update =
        Stmt.store acc [ Expr.int 0 ]
          (combine
             (Expr.load acc [ Expr.int 0 ])
             (Def.scalar_to_expr ~inputs:load_input ~axes ~raxes d.Def.body))
      in
      let loops =
        List.fold_right2
          (fun v ext inner -> Stmt.for_ v (Expr.int ext) inner)
          rvars extents update
      in
      Stmt.seq
        [
          Stmt.store acc [ Expr.int 0 ] (Expr.float init_v);
          loops;
          Stmt.store out axes (Expr.load acc [ Expr.int 0 ]);
        ]
  in
  let regs =
    Stmt.fold
      (fun acc s ->
        match s with
        | Stmt.Store { buf; _ } when buf.Buffer.scope = Buffer.Register ->
          if List.exists (Buffer.equal buf) acc then acc else buf :: acc
        | _ -> acc)
      [] body_stmt
  in
  let body =
    Stmt.let_ v_gid
      (Expr.add (Expr.mul Expr.Block_idx (Expr.int block_dim)) Expr.Thread_idx)
      (Stmt.if_ (Expr.lt gid (Expr.int numel)) body_stmt)
  in
  let name = Printf.sprintf "rule_%s" d.Def.name in
  let kernel =
    Kernel.create ~regs ~name
      ~params:(ins @ [ out ])
      ~grid_dim:grid ~block_dim (Simplify.stmt body)
  in
  { Compiled.name; kernels = [ kernel ]; ins; out; temps = []; key = None }
