(** Process-global, cross-compilation schedule cache.

    Tuning once per distinct [(device, workload)] pair and reusing the
    winner across models, engines and repeated benchmark runs is what makes
    the "tune within one minute" claim hold at the application level: a
    ResNet re-compile, or a second model sharing matmul shapes, performs
    zero fresh trials. Entries store the winning candidate's {e index} into
    the deterministic space enumeration (plus the tuner stats), so the cache
    is generic over candidate types; a [space_size] mismatch or a winner
    that no longer instantiates invalidates the entry and retunes.

    All operations are safe to call from any domain (mutex-protected). *)

type entry = {
  best_index : int;  (** winner's index in the candidate enumeration *)
  space_size : int;  (** length of the enumeration when tuned *)
  trials : int;
  rejected : int;
  simulated_seconds : float;
  best_latency : float;
}

type outcome =
  | Fresh of Tuner.stats  (** this call ran the tuner *)
  | Hit of entry  (** served from the cache; only the winner was compiled *)

(** {1 The tuning service} *)

val tune :
  ?seconds_per_trial:float ->
  ?parallel:bool ->
  ?workers:int ->
  ?engine:string ->
  ?show:('a -> string) ->
  ?search:'a Search.t ->
  ?fidelity:Hidet_gpu.Perf_model.fidelity ->
  device:Hidet_gpu.Device.t ->
  key:string ->
  candidates:'a list ->
  compile:('a -> Compiled.t) ->
  unit ->
  ('a * Compiled.t * outcome) option
(** Like {!Tuner.tune}, but consults the cache first. On a hit, only the
    stored winner is re-instantiated (zero fresh trials); on a miss (or a
    stale entry) the tuner runs and its result is stored. [key] must
    identify the workload {e and} any restriction applied to [candidates]
    (the device name is added automatically). [?search] (default
    {!Search.Exhaustive}) is forwarded to the tuner {e and} folded into
    the cache key via {!Search.cache_suffix}, so guided and exhaustive
    results never alias — and the exhaustive suffix is empty, so caches
    persisted before search modes existed remain valid. [?engine] and
    [?show] are forwarded to the tuner's trace spans and tuning-log
    records; each call also bumps the
    ["schedule_cache.hits"/"misses"/"stale"] metrics and, when tracing,
    drops a matching instant event. *)

(** {1 Direct cache access} *)

val find : device:string -> key:string -> entry option
(** Pure lookup — no hit/miss accounting. Only {!tune} can tell a genuine
    hit from a stale entry, so {!tune} owns the counters below. *)

val add : device:string -> key:string -> entry -> unit
val clear : unit -> unit
val size : unit -> int

val keys_for_device : string -> string list
(** Sorted workload keys cached for one device name. Cache entries are
    keyed by (device, workload), so devices with different capabilities
    never share entries; the shard test suite uses this to assert the
    per-device key sets stay disjoint across a heterogeneous cluster. *)

val hits : unit -> int
(** {!tune} calls served entirely from the table since the last {!clear}
    (always equal to the ["schedule_cache.hits"] metric delta). *)

val misses : unit -> int
(** {!tune} calls that ran the tuner. A stale lookup counts here too — it
    cost a full tuning run — and additionally in {!stale}. *)

val stale : unit -> int
(** {!tune} calls whose stored entry looked like a hit but was judged
    stale (space changed, or the winner no longer instantiates). *)

(** {1 Persistence}

    A versioned, line-oriented text format for warm-starting across
    processes ([bench/main.exe --cache], [hidetc --cache]). *)

val save : string -> unit
(** Write the whole cache to [path] (atomically, via a temp file). *)

val load : string -> (int, string) result
(** Merge entries from [path] into the cache; returns how many loaded.
    [Error] on an unreadable file or a wrong header (foreign file, or a
    different format version); individually corrupt lines are skipped. *)
