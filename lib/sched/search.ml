module MT = Matmul_template
module Tuning_log = Hidet_obs.Tuning_log

type guided_params = {
  seed : int;
  budget_fraction : float;
  population : int;
  elites : int;
  patience : int;
}

let default_guided_params =
  { seed = 2023; budget_fraction = 0.2; population = 24; elites = 8; patience = 4 }

type 'a space_ops = {
  mutate : Random.State.t -> 'a -> 'a;
  crossover : Random.State.t -> 'a -> 'a -> 'a;
  features : 'a -> float array;
}

type 'a t =
  | Exhaustive
  | Guided of {
      params : guided_params;
      ops : 'a space_ops;
      warm : ('a * float) list;
    }

let name = function Exhaustive -> "exhaustive" | Guided _ -> "guided"
let cache_suffix = function Exhaustive -> "" | Guided _ -> "#guided"

(* --- the matmul space ops --------------------------------------------------- *)

let matmul_ops =
  let block_vals = [| 16; 32; 64; 128 |] in
  let k_vals = [| 8; 16; 32 |] in
  let sk_vals = [| 1; 2; 4; 8 |] in
  (* Step one enumerated dimension to an adjacent value (clamped). *)
  let step rs vals v =
    let i = ref 0 in
    Array.iteri (fun j x -> if x = v then i := j) vals;
    let j = !i + if Random.State.bool rs then 1 else -1 in
    vals.(max 0 (min (Array.length vals - 1) j))
  in
  let mutate rs (c : MT.config) =
    let fm = max 1 (c.MT.block_m / max 1 c.MT.warp_m) in
    let fn = max 1 (c.MT.block_n / max 1 c.MT.warp_n) in
    match Random.State.int rs 8 with
    | 0 ->
      let bm = step rs block_vals c.MT.block_m in
      { c with MT.block_m = bm; warp_m = bm / fm }
    | 1 ->
      let bn = step rs block_vals c.MT.block_n in
      { c with MT.block_n = bn; warp_n = bn / fn }
    | 2 -> { c with MT.block_k = step rs k_vals c.MT.block_k }
    | 3 -> { c with MT.warp_m = c.MT.block_m / (if fm = 1 then 2 else 1) }
    | 4 -> { c with MT.warp_n = c.MT.block_n / (if fn = 1 then 2 else 1) }
    | 5 ->
      let d = if Random.State.bool rs then 1 else -1 in
      { c with MT.stages = max 1 (min 4 (c.MT.stages + d)) }
    | 6 -> { c with MT.split_k = step rs sk_vals c.MT.split_k }
    | _ ->
      if Random.State.bool rs then
        { c with MT.use_tensor_core = not c.MT.use_tensor_core }
      else { c with MT.swizzle = not c.MT.swizzle }
  in
  let crossover rs (a : MT.config) (b : MT.config) =
    let pick x y = if Random.State.bool rs then x else y in
    (* Block and warp extents travel together so the warp fraction of the
       chosen parent survives (divisibility is the template's most common
       rejection reason). *)
    let block_m, warp_m = pick (a.MT.block_m, a.MT.warp_m) (b.MT.block_m, b.MT.warp_m) in
    let block_n, warp_n = pick (a.MT.block_n, a.MT.warp_n) (b.MT.block_n, b.MT.warp_n) in
    {
      MT.block_m;
      block_n;
      warp_m;
      warp_n;
      block_k = pick a.MT.block_k b.MT.block_k;
      stages = pick a.MT.stages b.MT.stages;
      split_k = pick a.MT.split_k b.MT.split_k;
      use_tensor_core = pick a.MT.use_tensor_core b.MT.use_tensor_core;
      swizzle = pick a.MT.swizzle b.MT.swizzle;
    }
  in
  let features (c : MT.config) =
    let l x = log (float_of_int (max 1 x)) in
    [|
      1.;
      l c.MT.block_m;
      l c.MT.block_n;
      l c.MT.block_k;
      l c.MT.warp_m;
      l c.MT.warp_n;
      float_of_int c.MT.stages;
      l c.MT.split_k;
      (if c.MT.use_tensor_core then 1. else 0.);
      (if c.MT.swizzle then 1. else 0.);
      l (MT.block_dim c);
    |]
  in
  { mutate; crossover; features }

let warm_of_trials trials =
  List.filter_map
    (fun (t : Tuning_log.trial) ->
      if t.Tuning_log.outcome = Tuning_log.Measured && t.latency < infinity then
        Option.map
          (fun cfg -> (cfg, t.latency))
          (MT.config_of_string t.Tuning_log.config)
      else None)
    trials

let guided_matmul ?(params = default_guided_params) ?(warm = []) () =
  Guided { params; ops = matmul_ops; warm }

(* --- the cost model ---------------------------------------------------------

   Ridge regression of log-latency on the space features, solved by
   Gaussian elimination on the (tiny) normal equations. The model only has
   to *rank* the initial population sensibly — measurement, not the model,
   decides the winner. *)

let fit_cost_model samples =
  match samples with
  | [] -> None
  | (f0, _) :: _ ->
    let d = Array.length f0 in
    let a = Array.make_matrix d (d + 1) 0. in
    List.iter
      (fun (f, y) ->
        if Array.length f = d then begin
          let y = log (Float.max 1e-12 y) in
          for i = 0 to d - 1 do
            a.(i).(d) <- a.(i).(d) +. (f.(i) *. y);
            for j = 0 to d - 1 do
              a.(i).(j) <- a.(i).(j) +. (f.(i) *. f.(j))
            done
          done
        end)
      samples;
    for i = 0 to d - 1 do
      a.(i).(i) <- a.(i).(i) +. 1e-3
    done;
    (* Gaussian elimination with partial pivoting on [A | b]. *)
    let ok = ref true in
    for col = 0 to d - 1 do
      let piv = ref col in
      for r = col + 1 to d - 1 do
        if Float.abs a.(r).(col) > Float.abs a.(!piv).(col) then piv := r
      done;
      let tmp = a.(col) in
      a.(col) <- a.(!piv);
      a.(!piv) <- tmp;
      if Float.abs a.(col).(col) < 1e-12 then ok := false
      else
        for r = 0 to d - 1 do
          if r <> col then begin
            let factor = a.(r).(col) /. a.(col).(col) in
            for j = col to d do
              a.(r).(j) <- a.(r).(j) -. (factor *. a.(col).(j))
            done
          end
        done
    done;
    if not !ok then None
    else begin
      let w = Array.init d (fun i -> a.(i).(d) /. a.(i).(i)) in
      Some
        (fun f ->
          let s = ref 0. in
          for i = 0 to min d (Array.length f) - 1 do
            s := !s +. (w.(i) *. f.(i))
          done;
          !s)
    end

(* --- the guided run ---------------------------------------------------------

   All proposal randomness is drawn single-threaded from [rs] inside
   [next_batch]; [observe] only appends measurements. The driver measures
   each batch (possibly across domains) and reports results in batch
   order, so the proposal sequence — and hence the whole trial sequence —
   depends only on the seed. *)

type 'a run = {
  rs : Random.State.t;
  params : guided_params;
  ops : 'a space_ops;
  candidates : 'a array;
  index_of : ('a, int) Hashtbl.t;
  proposed : (int, unit) Hashtbl.t;
  score : (float array -> float) option;
  budget : int;
  mutable measured : (int * float) list;  (* finite latencies only *)
  mutable best : float;
  mutable stale_batches : int;
  mutable batch_open : float;  (* best before the batch in flight *)
  mutable started : bool;
}

let start strategy ~candidates =
  match strategy with
  | Exhaustive -> None
  | Guided { params; ops; warm } ->
    let n = Array.length candidates in
    let index_of = Hashtbl.create (2 * n) in
    Array.iteri
      (fun i c -> if not (Hashtbl.mem index_of c) then Hashtbl.add index_of c i)
      candidates;
    let budget =
      let frac =
        int_of_float (Float.max 0. params.budget_fraction *. float_of_int n)
      in
      max 1 (min n (max params.population frac))
    in
    let score =
      match warm with
      | [] -> None
      | _ ->
        fit_cost_model
          (List.map (fun (c, lat) -> (ops.features c, lat)) warm)
    in
    Some
      {
        rs = Random.State.make [| params.seed; n |];
        params;
        ops;
        candidates;
        index_of;
        proposed = Hashtbl.create 64;
        score;
        budget;
        measured = [];
        best = infinity;
        stale_batches = 0;
        batch_open = infinity;
        started = false;
      }

let observe r ~index ~latency =
  if latency < infinity then begin
    r.measured <- (index, latency) :: r.measured;
    if latency < r.best then r.best <- latency
  end

let propose r idx =
  if idx >= 0 && idx < Array.length r.candidates && not (Hashtbl.mem r.proposed idx)
  then begin
    Hashtbl.add r.proposed idx ();
    true
  end
  else false

let remaining_budget r = r.budget - Hashtbl.length r.proposed

(* Initial population: the warm cost model ranks the whole space (ties
   break to the lowest index); without one, an even spread across the
   enumeration covers every region of the curated space. *)
let seed_batch r =
  r.started <- true;
  let n = Array.length r.candidates in
  let want = min r.params.population (remaining_budget r) in
  let picks =
    match r.score with
    | Some score ->
      let scored =
        Array.init n (fun i -> (score (r.ops.features r.candidates.(i)), i))
      in
      Array.sort
        (fun (a, i) (b, j) -> if a = b then compare i j else compare a b)
        scored;
      Array.to_list (Array.sub scored 0 (min n want)) |> List.map snd
    | None -> List.init want (fun j -> j * n / want)
  in
  List.filter_map
    (fun i -> if propose r i then Some (i, Tuning_log.Seed) else None)
    picks

let elite_indices r =
  let sorted =
    List.sort
      (fun (i, a) (j, b) -> if a = b then compare i j else compare a b)
      r.measured
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | (i, _) :: rest -> i :: take (k - 1) rest
  in
  take r.params.elites sorted

let evolve_batch r =
  let elites = elite_indices r in
  match elites with
  | [] ->
    (* Nothing feasible measured yet: keep probing the enumeration in
       order (still deterministic). *)
    let n = Array.length r.candidates in
    let out = ref [] and i = ref 0 in
    while List.length !out < min r.params.population (remaining_budget r)
          && !i < n do
      if propose r !i then out := (!i, Tuning_log.Seed) :: !out;
      incr i
    done;
    List.rev !out
  | _ ->
    let earr = Array.of_list elites in
    let ne = Array.length earr in
    let pick_elite () = r.candidates.(earr.(Random.State.int r.rs ne)) in
    let want = min r.params.population (remaining_budget r) in
    let out = ref [] in
    let attempts = ref 0 in
    let max_attempts = 40 * r.params.population in
    while List.length !out < want && !attempts < max_attempts do
      incr attempts;
      let cand, proposer =
        if ne >= 2 && Random.State.bool r.rs then
          ( r.ops.crossover r.rs (pick_elite ()) (pick_elite ()),
            Tuning_log.Crossover )
        else (r.ops.mutate r.rs (pick_elite ()), Tuning_log.Mutation)
      in
      match Hashtbl.find_opt r.index_of cand with
      | Some i when propose r i -> out := (i, proposer) :: !out
      | _ -> ()
    done;
    List.rev !out

let next_batch r =
  (* Close the previous batch's patience accounting: a whole generation
     without improving the best latency counts as one stale batch. *)
  if r.started then
    if r.best < r.batch_open then r.stale_batches <- 0
    else r.stale_batches <- r.stale_batches + 1;
  if remaining_budget r <= 0 || r.stale_batches >= r.params.patience then []
  else begin
    r.batch_open <- r.best;
    if not r.started then seed_batch r else evolve_batch r
  end

(* --- the global default ----------------------------------------------------- *)

type mode = [ `Exhaustive | `Guided ]

let mode_of_string = function
  | "exhaustive" -> Some `Exhaustive
  | "guided" -> Some `Guided
  | _ -> None

let mode_to_string = function `Exhaustive -> "exhaustive" | `Guided -> "guided"

let default_mode_ref = Atomic.make `Exhaustive
let default_warm : (MT.config * float) list Atomic.t = Atomic.make []

let set_default_mode m = Atomic.set default_mode_ref m
let default_mode () = Atomic.get default_mode_ref
let set_default_warm w = Atomic.set default_warm w

let for_matmul () =
  match default_mode () with
  | `Exhaustive -> Exhaustive
  | `Guided -> guided_matmul ~warm:(Atomic.get default_warm) ()
