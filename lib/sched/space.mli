(** The hardware-centric schedule space (paper §4.3), widened.

    Tile sizes are chosen from hardware-friendly powers of two, independent
    of the problem size — partial tiles are handled by predicated loads and
    stores in the template. The curated base space stays near the paper's
    180 matmul schedules; the widened space adds the dimensions production
    GEMMs live on — thread-block swizzle for L2 locality, 3/4-stage
    software pipelines, and shape-aware split-k factors — which grows it
    past comfortable exhaustive enumeration and is what
    {!Hidet_sched.Search}'s guided mode exists for. Still orders of
    magnitude below the 10^5–10^8 candidate input-centric spaces of
    AutoTVM/Ansor (their Fig. 7). *)

val matmul : unit -> Matmul_template.config list
(** The full (widened, deduplicated) matmul space; every element passes
    [Matmul_template.check]. Independent of problem size. Lazily
    constructed on first use and memoized, so processes that never tune do
    not pay for the enumeration; the memo is domain-safe (first callers
    racing from several domains all get the same list, built once); the
    order is deterministic and is part of the schedule-cache contract
    (entries store winner indices). *)

val matmul_with_split_k : m:int -> n:int -> Matmul_template.config list
(** {!matmul}, extended with split-k variants of the pipelined configs when
    the output tile grid is too small to saturate the device (the
    parallel-k-reduction optimization of §6.2.4) — the factor set grows as
    the grid shrinks ({!split_k_factors}), and the result carries no
    duplicate configs. *)

val split_k_factors : m:int -> n:int -> int list
(** The split-k factors the [m x n] output grid warrants: [[]] when 64x64
    tiles already saturate the device, up to [[2; 4; 8]] for tiny grids. *)

val dedup : Matmul_template.config list -> Matmul_template.config list
(** Canonical structural dedup, first occurrence wins, order preserved. *)

val sample_matmul : Random.State.t -> int -> Matmul_template.config list
(** [sample_matmul rs count]: [count] distinct configs drawn uniformly (and
    deterministically, given [rs]) from {!matmul}; the whole space when
    [count >= size ()]. [count] is clamped to [0 .. size ()], so a count
    at (or beyond, or below) the space boundary never raises and the
    draws stay distinct. Used by the differential fuzzer to cross-check a
    manageable subset of the space per case. *)

val size : unit -> int
