(** The hardware-centric schedule space (paper §4.3).

    Tile sizes are chosen from hardware-friendly powers of two, independent
    of the problem size — partial tiles are handled by predicated loads and
    stores in the template. The resulting space has under 200 schedules
    (the paper reports 180 for matmul), small enough to enumerate
    exhaustively, versus the 10^5–10^8 candidate input-centric spaces of
    AutoTVM/Ansor (their Fig. 7). *)

val matmul : Matmul_template.config list
(** The full matmul space; every element passes
    [Matmul_template.check]. Independent of problem size. *)

val matmul_with_split_k : m:int -> n:int -> Matmul_template.config list
(** {!matmul}, extended with split-k variants when the output grid is too
    small to saturate the device (the parallel-k-reduction optimization of
    §6.2.4) — still a property of tile shapes versus the device, not of
    divisibility. *)

val sample_matmul : Random.State.t -> int -> Matmul_template.config list
(** [sample_matmul rs count]: [count] distinct configs drawn uniformly (and
    deterministically, given [rs]) from {!matmul}; the whole space when
    [count >= size ()]. [count] is clamped to [0 .. size ()], so a count
    at (or beyond, or below) the space boundary never raises and the
    draws stay distinct. Used by the differential fuzzer to cross-check a
    manageable subset of the space per case. *)

val size : unit -> int
