open Hidet_ir
module Def = Hidet_compute.Def

type config = { block_size : int }

let default_config = { block_size = 128 }
let space = [ { block_size = 32 }; { block_size = 64 }; { block_size = 128 }; { block_size = 256 } ]

let is_pow2 n = n > 0 && n land (n - 1) = 0
let ceil_div a b = (a + b - 1) / b

let schedule ?(config = default_config) (d : Def.t) =
  let extents, kind =
    match d.Def.reduce with
    | Some r -> r
    | None -> invalid_arg "Reduce_template.schedule: definition has no reduction"
  in
  if not (is_pow2 config.block_size) || config.block_size > 1024 then
    invalid_arg "Reduce_template.schedule: block size must be a power of two <= 1024";
  let block = config.block_size in
  let ins =
    List.mapi (fun i shape -> Buffer.create (Printf.sprintf "in%d" i) shape) d.Def.in_shapes
  in
  let out = Buffer.create "out" d.Def.out_shape in
  let numel = Def.num_out_elems d in
  let rdomain = List.fold_left ( * ) 1 extents in
  let init_v = match kind with Def.Sum -> 0. | Def.Max_reduce -> neg_infinity in
  let combine a b =
    match kind with Def.Sum -> Expr.add a b | Def.Max_reduce -> Expr.max_ a b
  in
  (* Output element of this block. *)
  let axes = Rule_based.decode_axes Expr.Block_idx d.Def.out_shape in
  (* Flat reduction index r decodes into the reduction axes. *)
  let decode_raxes r =
    List.mapi
      (fun i d_i ->
        let stride =
          List.fold_left ( * ) 1 (List.filteri (fun j _ -> j > i) extents)
        in
        if i = 0 then Expr.div r (Expr.int stride)
        else Expr.modulo (Expr.div r (Expr.int stride)) (Expr.int d_i))
      extents
  in
  let acc = Buffer.create ~scope:Buffer.Register "acc" [ 1 ] in
  let smem = Buffer.create ~scope:Buffer.Shared "red" [ block ] in
  let load_input k idx = Expr.load (List.nth ins k) idx in
  let v_t = Var.fresh "t" in
  let r =
    Expr.add (Expr.mul (Expr.var v_t) (Expr.int block)) Expr.Thread_idx
  in
  let strided_accumulate =
    Stmt.for_ v_t
      (Expr.int (ceil_div rdomain block))
      (Stmt.if_
         (Expr.lt r (Expr.int rdomain))
         (Stmt.store acc [ Expr.int 0 ]
            (combine
               (Expr.load acc [ Expr.int 0 ])
               (Def.scalar_to_expr ~inputs:load_input ~axes
                  ~raxes:(decode_raxes r) d.Def.body))))
  in
  let rec tree_levels s acc_stmts =
    if s = 0 then List.rev acc_stmts
    else
      tree_levels (s / 2)
        (Stmt.seq
           [
             Stmt.if_
               (Expr.lt Expr.Thread_idx (Expr.int s))
               (Stmt.store smem [ Expr.Thread_idx ]
                  (combine
                     (Expr.load smem [ Expr.Thread_idx ])
                     (Expr.load smem [ Expr.add Expr.Thread_idx (Expr.int s) ])));
             Stmt.sync;
           ]
        :: acc_stmts)
  in
  let body =
    Stmt.seq
      ([
         Stmt.store acc [ Expr.int 0 ] (Expr.float init_v);
         strided_accumulate;
         Stmt.store smem [ Expr.Thread_idx ] (Expr.load acc [ Expr.int 0 ]);
         Stmt.sync;
       ]
      @ tree_levels (block / 2) []
      @ [
          Stmt.if_
            (Expr.eq Expr.Thread_idx (Expr.int 0))
            (Stmt.store out axes (Expr.load smem [ Expr.int 0 ]));
        ])
  in
  let name = Printf.sprintf "reduce_%s_b%d" d.Def.name block in
  let kernel =
    Kernel.create ~shared:[ smem ] ~regs:[ acc ] ~name
      ~params:(ins @ [ out ])
      ~grid_dim:numel ~block_dim:block (Simplify.stmt body)
  in
  { Compiled.name; kernels = [ kernel ]; ins; out; temps = []; key = None }
