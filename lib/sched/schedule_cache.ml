(* Process-global schedule cache.

   Tuning results are memoized across compilations, engines and models: the
   key is (device name, workload signature), the value records which
   candidate of the (deterministic) enumeration won, plus the tuner stats
   that produced it. Storing the winner's *index* keeps the cache generic
   over candidate types — the caller re-instantiates from its own candidate
   list, and a [space_size] check invalidates entries whose space changed.

   The table is mutex-protected: tuner workers run on separate domains, and
   nothing stops two engines from compiling concurrently. *)

module Trace = Hidet_obs.Trace
module Metrics = Hidet_obs.Metrics

type entry = {
  best_index : int;
  space_size : int;
  trials : int;
  rejected : int;
  simulated_seconds : float;
  best_latency : float;
}

type outcome = Fresh of Tuner.stats | Hit of entry

let magic = "HIDET-SCHEDULE-CACHE"
let version = 1

let table : (string * string, entry) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()
let hit_count = ref 0
let miss_count = ref 0
let stale_count = ref 0

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* [find] is a pure lookup: whether a stored entry is actually servable
   (space still matches, winner still instantiates) is only known to
   [tune], so [tune] owns the hit/miss/stale accounting — the raw counters
   below and the [schedule_cache.*] metrics therefore always agree. *)
let find ~device ~key = locked (fun () -> Hashtbl.find_opt table (device, key))

let add ~device ~key entry =
  locked (fun () -> Hashtbl.replace table (device, key) entry)

let clear () =
  locked (fun () ->
      Hashtbl.reset table;
      hit_count := 0;
      miss_count := 0;
      stale_count := 0)

let size () = locked (fun () -> Hashtbl.length table)

let keys_for_device dev =
  locked (fun () ->
      Hashtbl.fold
        (fun (d, key) _ acc -> if d = dev then key :: acc else acc)
        table [])
  |> List.sort compare
let hits () = locked (fun () -> !hit_count)
let misses () = locked (fun () -> !miss_count)
let stale () = locked (fun () -> !stale_count)

(* --- persistence ------------------------------------------------------------

   Line-oriented text: a versioned header, then one tab-separated entry per
   line. Loading tolerates a corrupt file: a bad header rejects the whole
   file (it is some other format, or a future version), while individually
   malformed lines are skipped so one truncated write cannot poison every
   other entry. *)

let header = Printf.sprintf "%s v%d" magic version

let sanitize s =
  String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s

(* Temp names are unique per process *and* per call: a fixed [path ^
   ".tmp"] lets two concurrent savers (e.g. `hidetc serve` and a bench run
   sharing --cache) clobber each other's partial writes before the rename.
   With unique names each rename is atomic on its own complete file, so
   the last saver wins and the file is always loadable. *)
let tmp_counter = Atomic.make 0

let save path =
  let entries =
    locked (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])
  in
  let entries = List.sort compare entries in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  try
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (header ^ "\n");
        List.iter
          (fun ((device, key), e) ->
            Printf.fprintf oc "%s\t%s\t%d\t%d\t%d\t%d\t%.17g\t%.17g\n"
              (sanitize device) (sanitize key) e.best_index e.space_size
              e.trials e.rejected e.simulated_seconds e.best_latency)
          entries);
    Sys.rename tmp path
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let parse_line line =
  match String.split_on_char '\t' line with
  | [ device; key; best_index; space_size; trials; rejected; simulated; lat ]
    -> (
    match
      ( int_of_string_opt best_index,
        int_of_string_opt space_size,
        int_of_string_opt trials,
        int_of_string_opt rejected,
        float_of_string_opt simulated,
        float_of_string_opt lat )
    with
    | Some bi, Some ss, Some tr, Some rj, Some sim, Some l
      when bi >= 0 && bi < ss && tr >= 0 && rj >= 0
           (* nan/inf/negative floats parse fine ("nan" is a valid float
              literal) but would poison every aggregate downstream. *)
           && Float.is_finite sim && sim >= 0. && Float.is_finite l
           && l >= 0. ->
      Some
        ( device,
          key,
          {
            best_index = bi;
            space_size = ss;
            trials = tr;
            rejected = rj;
            simulated_seconds = sim;
            best_latency = l;
          } )
    | _ -> None)
  | _ -> None

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> Error "empty cache file"
        | first when first <> header ->
          Error
            (Printf.sprintf "bad cache header %S (want %S)" first header)
        | _ ->
          let loaded = ref 0 in
          (try
             while true do
               let line = input_line ic in
               match parse_line line with
               | Some (device, key, e) ->
                 add ~device ~key e;
                 incr loaded
               | None -> () (* corrupt line: skip, keep the rest *)
             done
           with End_of_file -> ());
          Ok !loaded)

(* --- the tuning service ----------------------------------------------------- *)

(* Cache effectiveness, as seen by the tuning service: [hits] were served
   from the cache, [misses] went to the tuner, [stale] looked like hits but
   failed re-instantiation and were retuned (a stale entry also counts as a
   miss — it did cost a full tuning run). *)
let m_hits = Metrics.counter "schedule_cache.hits"
let m_misses = Metrics.counter "schedule_cache.misses"
let m_stale = Metrics.counter "schedule_cache.stale"

let tune ?seconds_per_trial ?parallel ?workers ?engine ?show
    ?(search = Search.Exhaustive) ?fidelity ~device ~key ~candidates ~compile
    () =
  let device_name = device.Hidet_gpu.Device.name in
  (* The search mode is part of the cache key: a guided run's winner is
     only the best of the candidates it measured, so it must never answer
     for (or be overwritten by) the exhaustive oracle. Exhaustive keeps an
     empty suffix, so caches persisted before search modes existed stay
     valid. The fidelity mode is folded in the same way (analytic = empty
     suffix): a cycle-model winner must never answer an analytic lookup. *)
  let fidelity =
    match fidelity with
    | Some f -> f
    | None -> Hidet_gpu.Perf_model.default_fidelity ()
  in
  let key =
    key ^ Search.cache_suffix search
    ^ Hidet_gpu.Perf_model.fidelity_cache_suffix fidelity
  in
  let space_size = List.length candidates in
  (* Returned operators carry the workload key so the native execution
     backend can scope its per-kernel compile memo to this workload. *)
  let tag (compiled : Compiled.t) = { compiled with Compiled.key = Some key } in
  let fresh () =
    locked (fun () -> incr miss_count);
    Metrics.incr m_misses;
    if Trace.enabled () then
      Trace.instant ~attrs:[ ("workload", key) ] "schedule_cache.miss";
    match
      Tuner.tune ?seconds_per_trial ?parallel ?workers ?engine ~key ?show
        ~search ~fidelity ~device ~candidates ~compile ()
    with
    | None -> None
    | Some (cand, compiled, st) ->
      add ~device:device_name ~key
        {
          best_index = st.Tuner.best_index;
          space_size;
          trials = st.Tuner.trials;
          rejected = st.Tuner.rejected;
          simulated_seconds = st.Tuner.simulated_seconds;
          best_latency = st.Tuner.best_latency;
        };
      Some (cand, tag compiled, Fresh st)
  in
  match find ~device:device_name ~key with
  | Some e when e.space_size = space_size && e.best_index < space_size -> (
    let cand = List.nth candidates e.best_index in
    match compile cand with
    | compiled ->
      locked (fun () -> incr hit_count);
      Metrics.incr m_hits;
      if Trace.enabled () then
        Trace.instant ~attrs:[ ("workload", key) ] "schedule_cache.hit";
      Some (cand, tag compiled, Hit e)
    | exception Invalid_argument _ ->
      (* Stale entry (template or space changed underneath the key):
         retune and overwrite. *)
      locked (fun () -> incr stale_count);
      Metrics.incr m_stale;
      if Trace.enabled () then
        Trace.instant ~attrs:[ ("workload", key) ] "schedule_cache.stale";
      fresh ())
  | Some _ ->
    (* space changed: the stored index is meaningless *)
    locked (fun () -> incr stale_count);
    Metrics.incr m_stale;
    if Trace.enabled () then
      Trace.instant ~attrs:[ ("workload", key) ] "schedule_cache.stale";
    fresh ()
  | None -> fresh ()
