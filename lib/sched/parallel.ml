(* Re-export. The chunked fork-join domain pool moved to [Hidet_parallel]
   (lib/parallel) so layers below this one in the dependency order — the
   GPU simulator's domain-parallel grid launch in particular — can reuse
   it. Tuner and baseline call sites keep the [Hidet_sched.Parallel]
   path. *)
include Hidet_parallel.Parallel
