open Hidet_ir
module Tensor = Hidet_tensor.Tensor

type t = {
  name : string;
  kernels : Kernel.t list;
  ins : Buffer.t list;
  out : Buffer.t;
  temps : Buffer.t list;
}

let latency device c =
  List.fold_left
    (fun acc k ->
      let e = Hidet_gpu.Perf_model.kernel device k in
      if e.Hidet_gpu.Perf_model.feasible then acc +. e.Hidet_gpu.Perf_model.latency
      else infinity)
    0. c.kernels

let feasible device c = latency device c < infinity

let verify c = List.iter Verify.kernel_exn c.kernels

let run ?(legacy = false) c inputs =
  if List.length inputs <> List.length c.ins then
    invalid_arg (Printf.sprintf "Compiled.run %s: input count mismatch" c.name);
  let bindings =
    List.map2
      (fun (b : Buffer.t) t ->
        if Tensor.numel t <> Buffer.num_elems b then
          invalid_arg
            (Printf.sprintf "Compiled.run %s: %s expects %d elements, got %d"
               c.name b.Buffer.name (Buffer.num_elems b) (Tensor.numel t));
        (b, Array.copy (Tensor.data t)))
      c.ins inputs
  in
  let temp_bindings =
    List.map (fun b -> (b, Array.make (Buffer.num_elems b) 0.)) c.temps
  in
  let out_arr = Array.make (Buffer.num_elems c.out) 0. in
  let all = ((c.out, out_arr) :: bindings) @ temp_bindings in
  List.iter
    (fun (k : Kernel.t) ->
      let kernel_bindings =
        List.map
          (fun (p : Buffer.t) ->
            match List.find_opt (fun (b, _) -> Buffer.equal b p) all with
            | Some binding -> binding
            | None ->
              invalid_arg
                (Printf.sprintf "Compiled.run %s: kernel %s parameter %s unbound"
                   c.name k.Kernel.name p.Buffer.name))
          k.Kernel.params
      in
      if legacy then Hidet_gpu.Interp.run k kernel_bindings
      else Hidet_gpu.Compile_exec.run k kernel_bindings)
    c.kernels;
  Tensor.of_array c.out.Buffer.dims out_arr

let cuda_source c = Cuda_codegen.program c.kernels
