open Hidet_ir
module Tensor = Hidet_tensor.Tensor

type t = {
  name : string;
  kernels : Kernel.t list;
  ins : Buffer.t list;
  out : Buffer.t;
  temps : Buffer.t list;
  key : string option;
}

type backend = [ `Closure | `Native ]

let default = ref `Closure
let set_default_backend b = default := b
let default_backend () = !default

(* The native backend degrades, never fails: one stderr line the first
   time a run falls back, then silence. *)
let fallback_logged = ref false

let log_fallback reason =
  if not !fallback_logged then begin
    fallback_logged := true;
    Printf.eprintf
      "[hidet] native backend unavailable (%s); falling back to the closure \
       backend\n\
       %!"
      reason
  end

(* Force hidet_cycle's link-time registration: every program that can tune
   links this module, so [Perf_model.estimate ~fidelity:`Cycle] is always
   routed to the cycle model rather than the analytic fallback. *)
let () = Hidet_cycle.Fidelity.install ()

let latency ?fidelity device c =
  List.fold_left
    (fun acc k ->
      let e = Hidet_gpu.Perf_model.estimate ?fidelity device k in
      if e.Hidet_gpu.Perf_model.feasible then acc +. e.Hidet_gpu.Perf_model.latency
      else infinity)
    0. c.kernels

let feasible device c = latency device c < infinity

let verify c = List.iter Verify.kernel_exn c.kernels

let run ?(legacy = false) ?backend c inputs =
  if List.length inputs <> List.length c.ins then
    invalid_arg (Printf.sprintf "Compiled.run %s: input count mismatch" c.name);
  let backend = match backend with Some b -> b | None -> !default in
  let use_native =
    (not legacy) && backend = `Native
    &&
    match Hidet_gpu.Exec_ocaml.available () with
    | Ok () -> true
    | Error reason ->
      log_fallback reason;
      false
  in
  let bindings =
    List.map2
      (fun (b : Buffer.t) t ->
        if Tensor.numel t <> Buffer.num_elems b then
          invalid_arg
            (Printf.sprintf "Compiled.run %s: %s expects %d elements, got %d"
               c.name b.Buffer.name (Buffer.num_elems b) (Tensor.numel t));
        (b, Array.copy (Tensor.data t)))
      c.ins inputs
  in
  let temp_bindings =
    List.map (fun b -> (b, Array.make (Buffer.num_elems b) 0.)) c.temps
  in
  let out_arr = Array.make (Buffer.num_elems c.out) 0. in
  let all = ((c.out, out_arr) :: bindings) @ temp_bindings in
  List.iter
    (fun (k : Kernel.t) ->
      let kernel_bindings =
        List.map
          (fun (p : Buffer.t) ->
            match List.find_opt (fun (b, _) -> Buffer.equal b p) all with
            | Some binding -> binding
            | None ->
              invalid_arg
                (Printf.sprintf "Compiled.run %s: kernel %s parameter %s unbound"
                   c.name k.Kernel.name p.Buffer.name))
          k.Kernel.params
      in
      if legacy then Hidet_gpu.Interp.run k kernel_bindings
      else if use_native then
        (* Scope the compile memo to the schedule-cache workload when we
           know it: each kernel of a tuned operator dynlinks once per
           process. *)
        Hidet_gpu.Exec_ocaml.run
          ?key:(Option.map (fun key -> key ^ "#" ^ k.Kernel.name) c.key)
          k kernel_bindings
      else Hidet_gpu.Compile_exec.run k kernel_bindings)
    c.kernels;
  Tensor.of_array c.out.Buffer.dims out_arr

let cuda_source c = Cuda_codegen.program c.kernels
