open Hidet_ir

let ceil_div a b = (a + b - 1) / b
let is_pow2 n = n > 0 && n land (n - 1) = 0

(* Shared-memory tree combine; leaves the row statistic in smem[0]. *)
let tree smem block combine =
  let rec levels s acc =
    if s = 0 then List.rev acc
    else
      levels (s / 2)
        (Stmt.seq
           [
             Stmt.if_
               (Expr.lt Expr.Thread_idx (Expr.int s))
               (Stmt.store smem [ Expr.Thread_idx ]
                  (combine
                     (Expr.load smem [ Expr.Thread_idx ])
                     (Expr.load smem [ Expr.add Expr.Thread_idx (Expr.int s) ])));
             Stmt.sync;
           ]
        :: acc)
  in
  Stmt.seq (levels (block / 2) [])

(* Strided pass over the row: body receives the column expression, guarded
   in bounds. *)
let strided_pass ~block ~cols body =
  let v_t = Var.fresh "t" in
  let col = Expr.add (Expr.mul (Expr.var v_t) (Expr.int block)) Expr.Thread_idx in
  Stmt.for_ v_t
    (Expr.int (ceil_div cols block))
    (Stmt.if_ (Expr.lt col (Expr.int cols)) (body col))

(* Accumulate a row statistic into a register then reduce through shared
   memory; afterwards smem[0] holds the result for all threads. *)
let row_statistic ~block ~cols ~smem ~acc ~init ~combine value_of_col =
  Stmt.seq
    [
      Stmt.store acc [ Expr.int 0 ] (Expr.float init);
      strided_pass ~block ~cols (fun col ->
          Stmt.store acc [ Expr.int 0 ]
            (combine (Expr.load acc [ Expr.int 0 ]) (value_of_col col)));
      Stmt.store smem [ Expr.Thread_idx ] (Expr.load acc [ Expr.int 0 ]);
      Stmt.sync;
      tree smem block combine;
    ]

let softmax ?(block_size = 128) ~rows ~cols () =
  if not (is_pow2 block_size) then invalid_arg "Row_templates.softmax: block size";
  let block = block_size in
  let x = Buffer.create "x" [ rows; cols ] in
  let out = Buffer.create "out" [ rows; cols ] in
  let smem = Buffer.create ~scope:Buffer.Shared "red" [ block ] in
  let acc = Buffer.create ~scope:Buffer.Register "acc" [ 1 ] in
  let rmax = Buffer.create ~scope:Buffer.Register "rmax" [ 1 ] in
  let rsum = Buffer.create ~scope:Buffer.Register "rsum" [ 1 ] in
  let row = Expr.Block_idx in
  let xe col = Expr.load x [ row; col ] in
  let body =
    Stmt.seq
      [
        Stmt.comment "pass 1: row maximum";
        row_statistic ~block ~cols ~smem ~acc ~init:neg_infinity
          ~combine:Expr.max_ xe;
        Stmt.store rmax [ Expr.int 0 ] (Expr.load smem [ Expr.int 0 ]);
        Stmt.sync;
        Stmt.comment "pass 2: sum of exp(x - max)";
        row_statistic ~block ~cols ~smem ~acc ~init:0. ~combine:Expr.add
          (fun col ->
            Expr.unop Expr.Exp (Expr.sub (xe col) (Expr.load rmax [ Expr.int 0 ])));
        Stmt.store rsum [ Expr.int 0 ] (Expr.load smem [ Expr.int 0 ]);
        Stmt.comment "pass 3: normalize";
        strided_pass ~block ~cols (fun col ->
            Stmt.store out [ row; col ]
              (Expr.div
                 (Expr.unop Expr.Exp
                    (Expr.sub (xe col) (Expr.load rmax [ Expr.int 0 ])))
                 (Expr.load rsum [ Expr.int 0 ])));
      ]
  in
  let name = Printf.sprintf "softmax_%dx%d_b%d" rows cols block in
  let kernel =
    Kernel.create ~shared:[ smem ] ~regs:[ acc; rmax; rsum ] ~name
      ~params:[ x; out ] ~grid_dim:rows ~block_dim:block (Simplify.stmt body)
  in
  { Compiled.name; kernels = [ kernel ]; ins = [ x ]; out; temps = []; key = None }

let layernorm ?(block_size = 128) ?(eps = 1e-5) ~rows ~cols () =
  if not (is_pow2 block_size) then invalid_arg "Row_templates.layernorm: block size";
  let block = block_size in
  let x = Buffer.create "x" [ rows; cols ] in
  let gamma = Buffer.create "gamma" [ cols ] in
  let beta = Buffer.create "beta" [ cols ] in
  let out = Buffer.create "out" [ rows; cols ] in
  let smem = Buffer.create ~scope:Buffer.Shared "red" [ block ] in
  let acc = Buffer.create ~scope:Buffer.Register "acc" [ 1 ] in
  let mean = Buffer.create ~scope:Buffer.Register "mean" [ 1 ] in
  let var = Buffer.create ~scope:Buffer.Register "variance" [ 1 ] in
  let row = Expr.Block_idx in
  let xe col = Expr.load x [ row; col ] in
  let colsf = float_of_int cols in
  let body =
    Stmt.seq
      [
        Stmt.comment "pass 1: mean";
        row_statistic ~block ~cols ~smem ~acc ~init:0. ~combine:Expr.add xe;
        Stmt.store mean [ Expr.int 0 ]
          (Expr.div (Expr.load smem [ Expr.int 0 ]) (Expr.float colsf));
        Stmt.sync;
        Stmt.comment "pass 2: variance";
        row_statistic ~block ~cols ~smem ~acc ~init:0. ~combine:Expr.add
          (fun col ->
            let d = Expr.sub (xe col) (Expr.load mean [ Expr.int 0 ]) in
            Expr.mul d d);
        Stmt.store var [ Expr.int 0 ]
          (Expr.div (Expr.load smem [ Expr.int 0 ]) (Expr.float colsf));
        Stmt.comment "pass 3: normalize, scale, shift";
        strided_pass ~block ~cols (fun col ->
            Stmt.store out [ row; col ]
              (Expr.add
                 (Expr.mul (Expr.load gamma [ col ])
                    (Expr.div
                       (Expr.sub (xe col) (Expr.load mean [ Expr.int 0 ]))
                       (Expr.unop Expr.Sqrt
                          (Expr.add (Expr.load var [ Expr.int 0 ]) (Expr.float eps)))))
                 (Expr.load beta [ col ])));
      ]
  in
  let name = Printf.sprintf "layernorm_%dx%d_b%d" rows cols block in
  let kernel =
    Kernel.create ~shared:[ smem ] ~regs:[ acc; mean; var ] ~name
      ~params:[ x; gamma; beta; out ]
      ~grid_dim:rows ~block_dim:block (Simplify.stmt body)
  in
  {
    Compiled.name;
    kernels = [ kernel ];
    ins = [ x; gamma; beta ];
    out;
    temps = [];
    key = None;
  }
