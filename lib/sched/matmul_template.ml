open Hidet_ir
module M = Hidet_task.Mapping
module L = Hidet_task.Lower

type config = {
  block_m : int;
  block_n : int;
  block_k : int;
  warp_m : int;
  warp_n : int;
  stages : int;
  split_k : int;
  use_tensor_core : bool;
  swizzle : bool;
}

let default_config =
  {
    block_m = 64;
    block_n = 64;
    block_k = 8;
    warp_m = 32;
    warp_n = 32;
    stages = 2;
    split_k = 1;
    use_tensor_core = false;
    swizzle = false;
  }

let ceil_div a b = (a + b - 1) / b

(* Cooperative loading of a (rows x cols) tile by [threads] threads: each
   thread handles rows*cols/threads elements via repeat ∘ spatial. *)
let load_mapping ~rows ~cols ~threads =
  if threads <= rows * cols && threads mod cols = 0 && rows mod (threads / cols) = 0
  then Some M.(repeat [ rows / (threads / cols); 1 ] *> spatial [ threads / cols; cols ])
  else if cols mod threads = 0 then
    Some M.(repeat [ rows; cols / threads ] *> spatial [ 1; threads ])
  else None

let num_warps cfg = cfg.block_m / cfg.warp_m * (cfg.block_n / cfg.warp_n)
let block_dim cfg = num_warps cfg * 32

let check cfg =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if cfg.block_m <= 0 || cfg.block_n <= 0 || cfg.block_k <= 0 then
    err "non-positive block tile"
  else if cfg.block_m mod cfg.warp_m <> 0 || cfg.block_n mod cfg.warp_n <> 0 then
    err "warp tile does not divide block tile"
  else if cfg.use_tensor_core && (cfg.warp_m mod 16 <> 0 || cfg.warp_n mod 16 <> 0)
  then err "tensor-core warp tile must be a multiple of 16x16"
  else if cfg.use_tensor_core && cfg.block_k mod 8 <> 0 then
    err "tensor-core block_k must be a multiple of 8"
  else if (not cfg.use_tensor_core)
          && (cfg.warp_m mod 4 <> 0 || cfg.warp_n mod 8 <> 0)
  then err "CUDA-core warp tile must be a multiple of 4x8"
  else if num_warps cfg < 1 || num_warps cfg > 16 then
    err "warps per block out of [1, 16]"
  else if cfg.split_k < 1 || cfg.split_k > 16 then err "split_k out of range"
  else if cfg.stages < 1 || cfg.stages > 4 then err "stages out of [1, 4]"
  else
    let bd = block_dim cfg in
    if load_mapping ~rows:cfg.block_m ~cols:cfg.block_k ~threads:bd = None then
      err "no cooperative load mapping for the A tile"
    else if load_mapping ~rows:cfg.block_k ~cols:cfg.block_n ~threads:bd = None
    then err "no cooperative load mapping for the B tile"
    else if
      (not cfg.use_tensor_core)
      && cfg.warp_m / 4 * (cfg.warp_n / 8) > 128
    then err "register tile too large"
    else Ok ()

let config_to_string cfg =
  Printf.sprintf "b%dx%dx%d_w%dx%d%s%s%s%s" cfg.block_m cfg.block_n cfg.block_k
    cfg.warp_m cfg.warp_n
    (match cfg.stages with 2 -> "_db" | 3 -> "_s3" | 4 -> "_s4" | _ -> "")
    (if cfg.split_k > 1 then Printf.sprintf "_sk%d" cfg.split_k else "")
    (if cfg.use_tensor_core then "_tc" else "")
    (if cfg.swizzle then "_swz" else "")

(* Inverse of [config_to_string], used to featurize tuning-log records when
   warm-starting the guided search from a TSV of prior trials. *)
let config_of_string s =
  match String.split_on_char '_' s with
  | b :: w :: rest -> (
    match
      ( Scanf.sscanf_opt b "b%dx%dx%d%!" (fun m n k -> (m, n, k)),
        Scanf.sscanf_opt w "w%dx%d%!" (fun m n -> (m, n)) )
    with
    | Some (block_m, block_n, block_k), Some (warp_m, warp_n) ->
      let cfg =
        ref
          {
            block_m;
            block_n;
            block_k;
            warp_m;
            warp_n;
            stages = 1;
            split_k = 1;
            use_tensor_core = false;
            swizzle = false;
          }
      in
      let ok =
        List.for_all
          (fun tok ->
            match tok with
            | "db" -> cfg := { !cfg with stages = 2 }; true
            | "s3" -> cfg := { !cfg with stages = 3 }; true
            | "s4" -> cfg := { !cfg with stages = 4 }; true
            | "tc" -> cfg := { !cfg with use_tensor_core = true }; true
            | "swz" -> cfg := { !cfg with swizzle = true }; true
            | t -> (
              match Scanf.sscanf_opt t "sk%d%!" (fun sk -> sk) with
              | Some sk when sk > 1 -> cfg := { !cfg with split_k = sk }; true
              | _ -> false))
          rest
      in
      if ok then Some !cfg else None
    | _ -> None)
  | _ -> None

let lets bindings body =
  List.fold_right (fun (v, e) acc -> Stmt.let_ v e acc) bindings body

let compile ?(batch = 1) ?(a_batched = true) ?(b_batched = false) ~m ~n ~k cfg =
  (match check cfg with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Matmul_template.compile: %s" e));
  let ( +: ) = Expr.add and ( -: ) = Expr.sub and ( *: ) = Expr.mul in
  let ( /: ) = Expr.div and ( %: ) = Expr.modulo and ( <: ) = Expr.lt in
  let bm, bn, bk = (cfg.block_m, cfg.block_n, cfg.block_k) in
  let warps_n = cfg.block_n / cfg.warp_n in
  let bd = block_dim cfg in
  let gm = ceil_div m bm and gn = ceil_div n bn in
  let kt_total = ceil_div k bk in
  let chunk = ceil_div kt_total cfg.split_k in
  let grid = batch * cfg.split_k * gm * gn in
  (* Buffers. *)
  let a_buf =
    Buffer.create "A" (if a_batched then [ batch; m; k ] else [ m; k ])
  in
  let b_buf = Buffer.create "B" (if b_batched then [ batch; k; n ] else [ k; n ]) in
  let c_buf = Buffer.create "C" [ batch; m; n ] in
  let cp_buf =
    if cfg.split_k > 1 then Some (Buffer.create "Cp" [ cfg.split_k; batch; m; n ])
    else None
  in
  let db = cfg.stages in
  let smem_a = Buffer.create ~scope:Buffer.Shared "SmemA" [ db; bm; bk ] in
  let smem_b = Buffer.create ~scope:Buffer.Shared "SmemB" [ db; bk; bn ] in
  let a_map = Option.get (load_mapping ~rows:bm ~cols:bk ~threads:bd) in
  let b_map = Option.get (load_mapping ~rows:bk ~cols:bn ~threads:bd) in
  let regs_a = Buffer.create ~scope:Buffer.Register "RegsA" (L.local_shape a_map) in
  let regs_b = Buffer.create ~scope:Buffer.Register "RegsB" (L.local_shape b_map) in
  let tm_, tn_ = (cfg.warp_m / 4, cfg.warp_n / 8) in
  let c_map = M.(repeat [ tm_; tn_ ] *> spatial [ 4; 8 ]) in
  (* Per-kk operand fragments cached in registers: each thread loads its
     tm_ rows of A and tn_ cols of B once per kk and performs tm_*tn_ FMAs
     from registers (the standard register-blocked sgemm inner loop). *)
  let row_map = M.(repeat [ tm_ ] *> spatial [ 4 ]) in
  let col_map = M.(repeat [ tn_ ] *> spatial [ 8 ]) in
  let regs_af = Buffer.create ~scope:Buffer.Register "RegsAF" [ tm_ ] in
  let regs_bf = Buffer.create ~scope:Buffer.Register "RegsBF" [ tn_ ] in
  let regs_c = Buffer.create ~scope:Buffer.Register "RegsC" [ tm_; tn_ ] in
  let c_frag = Buffer.create ~scope:Buffer.Warp "CFrag" [ cfg.warp_m; cfg.warp_n ] in
  let wb_map = M.(repeat [ cfg.warp_m / 4; cfg.warp_n / 8 ] *> spatial [ 4; 8 ]) in
  (* Block-index decomposition: bid = ((b * split_k + z) * gm + im) * gn + jn. *)
  let v_b = Var.fresh "b" and v_z = Var.fresh "z" in
  let v_im = Var.fresh "im" and v_jn = Var.fresh "jn" in
  let v_row0 = Var.fresh "row0" and v_col0 = Var.fresh "col0" in
  let v_w = Var.fresh "w" and v_lane = Var.fresh "lane" in
  let v_wm = Var.fresh "wm" and v_wn = Var.fresh "wn" in
  let v_kstart = Var.fresh "kstart" and v_trips = Var.fresh "trips" in
  let bid = Expr.Block_idx and tid = Expr.Thread_idx in
  (* Block-index decomposition for im/jn, optionally swizzled: neighboring
     linear block ids then share operand panels (better L2 locality on real
     hardware; latency-neutral in the simulator, which has no L2 model). *)
  let im_binding, jn_binding =
    let r = bid %: Expr.int (gm * gn) in
    if not cfg.swizzle then
      ((v_im, bid /: Expr.int gn %: Expr.int gm), (v_jn, bid %: Expr.int gn))
    else if gm mod 4 = 0 then
      (* Panelized swizzle: walk 4 block-rows per column before advancing. *)
      let within = r %: Expr.int (4 * gn) in
      let pid = r /: Expr.int (4 * gn) in
      ( (v_im, (pid *: Expr.int 4) +: (within %: Expr.int 4)),
        (v_jn, within /: Expr.int 4) )
    else
      (* Column-major launch order. *)
      ((v_im, r %: Expr.int gm), (v_jn, r /: Expr.int gm))
  in
  let header body =
    lets
      [
        jn_binding;
        im_binding;
        (v_z, bid /: Expr.int (gm * gn) %: Expr.int cfg.split_k);
        (v_b, bid /: Expr.int (gm * gn * cfg.split_k));
        (v_row0, Expr.var v_im *: Expr.int bm);
        (v_col0, Expr.var v_jn *: Expr.int bn);
        (v_w, tid /: Expr.int 32);
        (v_lane, tid %: Expr.int 32);
        (v_wm, Expr.var v_w /: Expr.int warps_n *: Expr.int cfg.warp_m);
        (v_wn, Expr.var v_w %: Expr.int warps_n *: Expr.int cfg.warp_n);
        (v_kstart, Expr.var v_z *: Expr.int chunk);
        ( v_trips,
          Expr.max_ (Expr.int 0)
            (Expr.min_ (Expr.int chunk) (Expr.int kt_total -: Expr.var v_kstart)) );
      ]
      body
  in
  let row0 = Expr.var v_row0 and col0 = Expr.var v_col0 in
  let lane = Expr.var v_lane in
  let wm_off = Expr.var v_wm and wn_off = Expr.var v_wn in
  (* Predicated element loads (partial tiles read 0 outside bounds). *)
  let load_a_elem ~row ~col =
    Expr.select
      (Expr.and_ (row <: Expr.int m) (col <: Expr.int k))
      (Expr.load a_buf
         (if a_batched then [ Expr.var v_b; row; col ] else [ row; col ]))
      (Expr.float 0.)
  in
  let load_b_elem ~row ~col =
    let idx = if b_batched then [ Expr.var v_b; row; col ] else [ row; col ] in
    Expr.select
      (Expr.and_ (row <: Expr.int k) (col <: Expr.int n))
      (Expr.load b_buf idx) (Expr.float 0.)
  in
  (* Direct cooperative load: global -> shared (non-pipelined path). *)
  let direct_load stage k0 =
    Stmt.seq
      [
        L.on_workers a_map ~worker:tid (fun idx ->
            match idx with
            | [ i; kk ] ->
              Stmt.store smem_a [ stage; i; kk ]
                (load_a_elem ~row:(row0 +: i) ~col:(k0 +: kk))
            | _ -> assert false);
        L.on_workers b_map ~worker:tid (fun idx ->
            match idx with
            | [ kk; j ] ->
              Stmt.store smem_b [ stage; kk; j ]
                (load_b_elem ~row:(k0 +: kk) ~col:(col0 +: j))
            | _ -> assert false);
      ]
  in
  (* Pipelined path: prefetch global -> registers, later stage -> shared. *)
  let prefetch k0 =
    Stmt.seq
      [
        L.on_workers_local a_map ~worker:tid (fun ~global ~local ->
            match global with
            | [ i; kk ] ->
              Stmt.store regs_a local (load_a_elem ~row:(row0 +: i) ~col:(k0 +: kk))
            | _ -> assert false);
        L.on_workers_local b_map ~worker:tid (fun ~global ~local ->
            match global with
            | [ kk; j ] ->
              Stmt.store regs_b local (load_b_elem ~row:(k0 +: kk) ~col:(col0 +: j))
            | _ -> assert false);
      ]
  in
  let stage_regs stage =
    Stmt.seq
      [
        L.on_workers_local a_map ~worker:tid (fun ~global ~local ->
            match global with
            | [ i; kk ] -> Stmt.store smem_a [ stage; i; kk ] (Expr.load regs_a local)
            | _ -> assert false);
        L.on_workers_local b_map ~worker:tid (fun ~global ~local ->
            match global with
            | [ kk; j ] -> Stmt.store smem_b [ stage; kk; j ] (Expr.load regs_b local)
            | _ -> assert false);
      ]
  in
  (* Block MMA: accumulate the block tile from stage [p] of shared memory. *)
  let compute stage =
    if cfg.use_tensor_core then
      Stmt.seq
        (List.concat
           (List.init (cfg.warp_m / 16) (fun i ->
                List.concat
                  (List.init (cfg.warp_n / 16) (fun j ->
                       List.init (bk / 8) (fun kk ->
                           Stmt.Mma
                             {
                               m = 16;
                               n = 16;
                               k = 8;
                               a = smem_a;
                               a_off = [ stage; wm_off +: Expr.int (16 * i); Expr.int (8 * kk) ];
                               b = smem_b;
                               b_off = [ stage; Expr.int (8 * kk); wn_off +: Expr.int (16 * j) ];
                               c = c_frag;
                               c_off = [ Expr.int (16 * i); Expr.int (16 * j) ];
                             }))))))
    else
      let kk = Var.fresh "kk" in
      let kke = Expr.var kk in
      Stmt.for_ kk (Expr.int bk)
        (Stmt.seq
           [
             L.on_workers_local row_map
               ~worker:(lane /: Expr.int 8)
               (fun ~global ~local ->
                 match global with
                 | [ row ] ->
                   Stmt.store regs_af local
                     (Expr.load smem_a [ stage; wm_off +: row; kke ])
                 | _ -> assert false);
             L.on_workers_local col_map
               ~worker:(lane %: Expr.int 8)
               (fun ~global ~local ->
                 match global with
                 | [ col ] ->
                   Stmt.store regs_bf local
                     (Expr.load smem_b [ stage; kke; wn_off +: col ])
                 | _ -> assert false);
             L.on_workers_local c_map ~worker:lane (fun ~global:_ ~local ->
                 match local with
                 | [ i; j ] ->
                   Stmt.store regs_c local
                     (Expr.add (Expr.load regs_c local)
                        (Expr.mul (Expr.load regs_af [ i ])
                           (Expr.load regs_bf [ j ])))
                 | _ -> assert false);
           ])
  in
  let init_acc =
    if cfg.use_tensor_core then
      L.on_workers wb_map ~worker:lane (fun idx ->
          Stmt.store c_frag idx (Expr.float 0.))
    else
      L.on_workers_local c_map ~worker:lane (fun ~global:_ ~local ->
          Stmt.store regs_c local (Expr.float 0.))
  in
  let acc_value global local =
    if cfg.use_tensor_core then Expr.load c_frag global else Expr.load regs_c local
  in
  let writeback =
    let map = if cfg.use_tensor_core then wb_map else c_map in
    L.on_workers_local map ~worker:lane (fun ~global ~local ->
        match global with
        | [ tm; tn ] ->
          let row = row0 +: wm_off +: tm and col = col0 +: wn_off +: tn in
          Stmt.if_
            (Expr.and_ (row <: Expr.int m) (col <: Expr.int n))
            (match cp_buf with
            | None -> Stmt.store c_buf [ Expr.var v_b; row; col ] (acc_value global local)
            | Some cp ->
              Stmt.store cp
                [ Expr.var v_z; Expr.var v_b; row; col ]
                (acc_value global local))
        | _ -> assert false)
  in
  let v_kt = Var.fresh "kt" in
  let kt = Expr.var v_kt in
  let trips = Expr.var v_trips in
  let kstart = Expr.var v_kstart in
  let main_loop =
    if cfg.stages >= 2 then begin
      (* Software pipeline with [stages - 1] tiles in flight: prefetch tile
         kt + lookahead into registers while computing tile kt, then stage
         it into the circular shared-memory buffer. *)
      let lookahead = cfg.stages - 1 in
      let has_next = (kt +: Expr.int lookahead) <: trips in
      Stmt.seq
        (List.init lookahead (fun i ->
             Stmt.seq
               [
                 Stmt.comment (Printf.sprintf "preload k-tile %d into stage %d" i i);
                 direct_load (Expr.int i) ((kstart +: Expr.int i) *: Expr.int bk);
               ])
        @ [
            Stmt.sync;
            Stmt.for_ v_kt trips
              (Stmt.seq
                 [
                   Stmt.comment "prefetch upcoming tile into registers";
                   Stmt.if_ has_next
                     (prefetch
                        ((kstart +: kt +: Expr.int lookahead) *: Expr.int bk));
                   Stmt.comment "compute on current stage";
                   compute (kt %: Expr.int cfg.stages);
                   Stmt.comment "stage prefetched tile into shared memory";
                   Stmt.if_ has_next
                     (stage_regs ((kt +: Expr.int lookahead) %: Expr.int cfg.stages));
                   Stmt.sync;
                 ]);
          ])
    end
    else
      Stmt.for_ v_kt trips
        (Stmt.seq
           [
             direct_load (Expr.int 0) ((kstart +: kt) *: Expr.int bk);
             Stmt.sync;
             compute (Expr.int 0);
             Stmt.sync;
           ])
  in
  let body = header (Stmt.seq [ init_acc; main_loop; writeback ]) in
  let body = Simplify.stmt body in
  let name =
    Printf.sprintf "matmul_%dx%dx%dx%d_%s" batch m n k (config_to_string cfg)
  in
  let shared = [ smem_a; smem_b ] in
  let regs =
    (if cfg.use_tensor_core then [] else [ regs_c; regs_af; regs_bf ])
    @ if cfg.stages >= 2 then [ regs_a; regs_b ] else []
  in
  let warp_bufs = if cfg.use_tensor_core then [ c_frag ] else [] in
  let params =
    match cp_buf with
    | None -> [ a_buf; b_buf; c_buf ]
    | Some cp -> [ a_buf; b_buf; cp ]
  in
  let main_kernel =
    Kernel.create ~shared ~warp_bufs ~regs ~pipeline_stages:cfg.stages ~name
      ~params ~grid_dim:grid ~block_dim:bd body
  in
  match cp_buf with
  | None ->
    {
      Compiled.name;
      kernels = [ main_kernel ];
      ins = [ a_buf; b_buf ];
      out = c_buf;
      temps = [];
      key = None;
    }
  | Some cp ->
    (* Second kernel: C[b,i,j] = sum_z Cp[z,b,i,j]. *)
    let total = batch * m * n in
    let rb = 256 in
    let v_gid = Var.fresh "gid" in
    let gid = Expr.var v_gid in
    let v_zz = Var.fresh "zz" in
    let acc = Buffer.create ~scope:Buffer.Register "acc" [ 1 ] in
    let idx b_i r c = [ b_i; r; c ] in
    let reduce_body =
      Stmt.let_ v_gid
        ((Expr.mul Expr.Block_idx (Expr.int rb)) +: Expr.Thread_idx)
        (Stmt.if_ (gid <: Expr.int total)
           (Stmt.seq
              [
                Stmt.store acc [ Expr.int 0 ] (Expr.float 0.);
                Stmt.for_ ~unroll:true v_zz (Expr.int cfg.split_k)
                  (Stmt.store acc [ Expr.int 0 ]
                     (Expr.add
                        (Expr.load acc [ Expr.int 0 ])
                        (Expr.load cp
                           (Expr.var v_zz
                           :: idx
                                (gid /: Expr.int (m * n))
                                (gid /: Expr.int n %: Expr.int m)
                                (gid %: Expr.int n)))));
                Stmt.store c_buf
                  (idx
                     (gid /: Expr.int (m * n))
                     (gid /: Expr.int n %: Expr.int m)
                     (gid %: Expr.int n))
                  (Expr.load acc [ Expr.int 0 ]);
              ]))
    in
    let reduce_kernel =
      Kernel.create ~regs:[ acc ] ~name:(name ^ "_splitk_reduce")
        ~params:[ cp; c_buf ] ~grid_dim:(ceil_div total rb) ~block_dim:rb
        (Simplify.stmt reduce_body)
    in
    {
      Compiled.name;
      kernels = [ main_kernel; reduce_kernel ];
      ins = [ a_buf; b_buf ];
      out = c_buf;
      temps = [ cp ];
      key = None;
    }
