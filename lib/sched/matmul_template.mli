(** The template-based schedule for matrix multiplication, written in the
    task-mapping paradigm (the paper's §5.1.3 and Fig. 2/3/5).

    The generated kernel computes [C\[b,i,j\] = sum_k A\[b,i,k\] * B\[(b,)k,j\]]
    with:
    - block tiling [block_m x block_n], k-tiles of [block_k];
    - cooperative, predicated loading of A/B tiles into shared memory using
      composed task mappings ([repeat ∘ spatial], the paper's Fig. 8);
    - per-warp tiles [warp_m x warp_n]; CUDA-core path with per-thread
      register tiles via [repeat(tm, tn) ∘ spatial(4, 8)], or tensor-core
      path via 16x16x8 MMA instructions;
    - optional {b software pipelining}: with [stages = 2] (double
      buffering, Fig. 5) registers prefetch tile [k+1] while tile [k] is
      being computed; with [stages = 3] two tiles are kept in flight in a
      circular shared-memory buffer — both inexpressible in declarative
      loop-oriented scheduling;
    - optional {b split-k parallel reduction}: the k dimension is split over
      [split_k] thread blocks writing partial products, followed by a small
      reduction kernel (used by implicit-GEMM convolution, §6.2.4).

    Because loads and stores are predicated, tile sizes need not divide the
    problem sizes — the basis of the hardware-centric schedule space. *)

type config = {
  block_m : int;
  block_n : int;
  block_k : int;
  warp_m : int;  (** multiple of 4 (CUDA-core) or 16 (tensor-core) *)
  warp_n : int;  (** multiple of 8 (CUDA-core) or 16 (tensor-core) *)
  stages : int;
      (** software-pipeline depth: 1 = none, 2 = double buffering (Fig. 5),
          3–4 = multi-stage asynchronous prefetch (the CUTLASS-on-Ampere
          pattern the paper's §3.1 also lists as inexpressible with
          declarative loop-oriented primitives); each extra stage keeps one
          more tile in flight in the circular shared-memory buffer *)
  split_k : int;
  use_tensor_core : bool;
  swizzle : bool;
      (** thread-block swizzle (§3.1): remap the linear block index so
          neighboring blocks share B-operand panels, improving L2 locality
          on real hardware; expressed here as plain index arithmetic on the
          block id, which loop-oriented primitives cannot touch *)
}

val default_config : config

val check : config -> (unit, string) result
(** Structural validity (divisibility, warp count, load-mapping existence),
    independent of problem size. Resource feasibility on a device is judged
    by {!Hidet_gpu.Perf_model}. *)

val config_to_string : config -> string

val config_of_string : string -> config option
(** Inverse of {!config_to_string} ([None] on malformed input); round-trips
    every config the printer can emit. Lets the guided tuner featurize
    prior trials re-read from a {!Hidet_obs.Tuning_log} TSV. *)

val num_warps : config -> int
val block_dim : config -> int

val compile :
  ?batch:int ->
  ?a_batched:bool ->
  ?b_batched:bool ->
  m:int ->
  n:int ->
  k:int ->
  config ->
  Compiled.t
(** Raises [Invalid_argument] if [check] fails. [a_batched] (default true)
    selects a [batch, m, k] first operand versus shared [m, k]; [b_batched]
    (default false) selects a [batch, k, n] second operand versus shared
    [k, n] weights. Implicit-GEMM convolution uses [a_batched:false]
    (weights) with [b_batched:true] (im2col columns per image). *)
