(** Search strategies over the (widened) hardware-centric schedule space.

    The paper's space (~180 schedules) is small enough that exhaustive
    enumeration is the whole story. The widened space — thread-block
    swizzle, first-class split-k, 3/4-stage pipelines — is several times
    larger, so this module adds a {e guided} mode next to the exhaustive
    oracle: a seeded evolutionary search (single-field mutations and
    field-wise crossover over template configs, restricted to members of
    the enumerated space) optionally warm-started by a lightweight linear
    cost model fit to prior {!Hidet_obs.Tuning_log} records. The guided
    mode measures a bounded fraction of the space ([budget_fraction]) and,
    on the bench gates, must land within 5% of the exhaustive best.

    Determinism: all randomness flows from the seed in {!guided_params};
    batches are proposed sequentially and measured in batch order, so the
    same seed yields the identical winner and trial sequence whether the
    measurements run sequentially or across domains. *)

type guided_params = {
  seed : int;  (** all guided randomness derives from this *)
  budget_fraction : float;
      (** max fraction of the candidate list that may be measured *)
  population : int;  (** batch size per generation *)
  elites : int;  (** parents drawn from the best measured so far *)
  patience : int;
      (** generations without improvement before stopping early *)
}

val default_guided_params : guided_params
(** seed 2023, budget 20% of the space, population 24, 8 elites,
    patience 4. *)

type 'a space_ops = {
  mutate : Random.State.t -> 'a -> 'a;
  crossover : Random.State.t -> 'a -> 'a -> 'a;
  features : 'a -> float array;
      (** cost-model featurization; constant length across a space *)
}

type 'a t =
  | Exhaustive
  | Guided of {
      params : guided_params;
      ops : 'a space_ops;
      warm : ('a * float) list;
          (** (config, measured latency) pairs from prior tuning runs; a
              cost model fit to them ranks the initial population *)
    }

val name : _ t -> string
(** ["exhaustive"] or ["guided"], for traces and CLI round-trips. *)

val cache_suffix : _ t -> string
(** Appended to schedule-cache workload keys: [""] for {!Exhaustive} (so
    pre-existing cache entries stay valid) and ["#guided"] for {!Guided},
    keeping the two modes' entries from aliasing. *)

val matmul_ops : Matmul_template.config space_ops
(** Mutation steps move one dimension to an adjacent enumerated value
    (keeping the warp fraction, so most proposals stay inside the curated
    space); crossover picks each field from either parent, moving block
    and warp extents together. *)

val warm_of_trials :
  Hidet_obs.Tuning_log.trial list ->
  (Matmul_template.config * float) list
(** Measured trials whose config strings parse back
    ({!Matmul_template.config_of_string}), as cost-model training pairs. *)

val guided_matmul :
  ?params:guided_params ->
  ?warm:(Matmul_template.config * float) list ->
  unit ->
  Matmul_template.config t

(** {1 The guided run protocol}

    {!Tuner.tune} drives a guided search as: [start]; then repeatedly
    [next_batch] (proposal indices with their proposer tags), measure
    them (in any order), and [observe] each result in batch order; an
    empty batch ends the run. *)

type 'a run

val start : 'a t -> candidates:'a array -> 'a run option
(** [None] for {!Exhaustive} (no run state needed). *)

val next_batch : 'a run -> (int * Hidet_obs.Tuning_log.proposer) list
(** The next generation to measure: candidate-list indices, never repeated
    across the run, [[]] once the budget or patience is exhausted. *)

val observe : 'a run -> index:int -> latency:float -> unit
(** Report a measurement ([infinity] = infeasible). Must be called in
    batch order for the deterministic-trials guarantee. *)

(** {1 Process-global default}

    [hidetc --search] selects the mode for engines compiled behind the
    generic interface (mirroring [Compiled.set_default_backend]). *)

type mode = [ `Exhaustive | `Guided ]

val mode_of_string : string -> mode option
val mode_to_string : mode -> string
val set_default_mode : mode -> unit
val default_mode : unit -> mode

val set_default_warm : (Matmul_template.config * float) list -> unit
(** Warm-start data applied when the default mode is [`Guided] (e.g. from
    [hidetc --search-warm FILE]). *)

val for_matmul : unit -> Matmul_template.config t
(** The strategy the engine should use for matmul spaces right now:
    {!Exhaustive}, or a default-parameter {!Guided} with the registered
    warm-start data, per {!default_mode}. *)
