(** Latency-hiding warp-scheduler model.

    Simulates the resident warps of one SM round-by-round: per-round memory
    issue (bandwidth-serialized, gated by software-pipeline buffer
    availability) followed by compute on one of the SM's
    {!compute_slots} sub-partitions, with cache-blended memory latency
    hidden by switching warps. Deterministic (round-robin processing). *)

type work = {
  iters : int;
  mem_txn_per_iter : float;
  dram_frac : float;
  l2_frac : float;
  tail_mem_txn : float;
  smem_cycles_per_iter : float;
  compute_cycles_per_iter : float;
  tail_compute_cycles : float;
  sync_cycles_per_iter : float;
  stages : int;
  warps : int;
  mem_issue_cycles : float;
  dram_service_cycles : float;
  l2_service_cycles : float;
  l1_latency : float;
  l2_latency : float;
  dram_latency : float;
}

type result = { cycles : float; mem_busy : float; compute_busy : float }

val compute_slots : int
(** Warp schedulers (compute sub-partitions) per SM. *)

val simulate : work -> result
