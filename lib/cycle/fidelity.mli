(** Cycle-approximate fidelity mode: the top-level estimator.

    Combines the {!Access} coalescing/bank-conflict analysis, the
    {!Cache_model} L1/L2 replay of the sampled address stream and the
    {!Warp_sched} latency-hiding simulation into a
    {!Hidet_gpu.Perf_model.estimate}, and registers itself as
    [Perf_model]'s cycle model at link time. *)

type t = Hidet_gpu.Perf_model.fidelity

val of_string : string -> t option
val to_string : t -> string

val cache_suffix : t -> string
(** Schedule-cache key suffix: [""] for analytic (keys unchanged),
    ["#cycle"] for cycle mode. *)

val set_default : t -> unit
val default : unit -> t

type extras = {
  txn_per_access : float;  (** mean coalesced transactions per warp access *)
  conflict_factor : float;  (** weighted mean bank-conflict degree *)
  l1_hit : float;
  l2_hit : float;  (** includes cross-block reuse of the L2 window *)
  n_static : int;  (** sites proven affine and derived statically *)
  n_traced : int;  (** sites that fell back to the sampled trace *)
  sim_cycles : float;  (** modeled cycles for one wave's resident warps *)
  iters : int;  (** main-loop rounds per warp *)
}

val kernel :
  Hidet_gpu.Device.t -> Hidet_ir.Kernel.t ->
  Hidet_gpu.Perf_model.estimate * extras

val estimate :
  Hidet_gpu.Device.t -> Hidet_ir.Kernel.t -> Hidet_gpu.Perf_model.estimate

val latency : Hidet_gpu.Device.t -> Hidet_ir.Kernel.t -> float
(** [estimate]'s latency, or [infinity] when infeasible. *)

val install : unit -> unit
(** Register {!estimate} as [Perf_model]'s cycle model. Called at link
    time by this module's initializer; safe to call again. *)
