(* Set-associative LRU cache simulation over a line-id stream.

   The stream is the sampled warp's global transactions in program order
   (Access.summary.stream). Geometry is the per-warp or per-block slice of
   the physical cache — contention from co-resident warps/blocks is modeled
   by shrinking capacity rather than interleaving streams, which keeps the
   simulation deterministic and O(stream). *)

type geom = { size : int; line : int; ways : int }

type stats = { accesses : int; hits : int }

let hit_rate s =
  if s.accesses = 0 then 0. else float_of_int s.hits /. float_of_int s.accesses

(* Returns the stats and the miss stream (in order), so L2 can replay L1's
   misses. *)
let simulate_through (g : geom) (stream : int array) : stats * int array =
  let ways = max 1 g.ways in
  let line = max 1 g.line in
  let sets = max 1 (g.size / (line * ways)) in
  let cache = Array.make_matrix sets ways (-1) in
  let hits = ref 0 in
  let misses = ref [] in
  Array.iter
    (fun l ->
      let s = ((l mod sets) + sets) mod sets in
      let set = cache.(s) in
      let rec find i =
        if i >= ways then -1 else if set.(i) = l then i else find (i + 1)
      in
      let idx = find 0 in
      if idx >= 0 then begin
        incr hits;
        (* move to MRU position *)
        for j = idx downto 1 do
          set.(j) <- set.(j - 1)
        done;
        set.(0) <- l
      end
      else begin
        misses := l :: !misses;
        for j = ways - 1 downto 1 do
          set.(j) <- set.(j - 1)
        done;
        set.(0) <- l
      end)
    stream;
  ( { accesses = Array.length stream; hits = !hits },
    Array.of_list (List.rev !misses) )

let simulate g stream = fst (simulate_through g stream)
