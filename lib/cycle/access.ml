open Hidet_ir

(* Per-warp access-pattern analysis.

   Two walkers produce the same numbered list of memory-access sites:

   - [static_sites] derives each site's per-warp footprint symbolically: let
     bindings are substituted into the index expression, which then only
     mentions [Thread_idx], [Block_idx] and enclosing loop variables. A site
     is "static" when the per-lane address offsets are invariant in every
     enclosing loop variable (affine-in-tid accesses with additive loop
     terms), so probing one iteration characterizes all of them.

   - [traced_sites] executes the kernel body for one sampled warp with real
     loop iterations (optionally capped, counts scaled back up) and records
     the addresses each site actually touches — the fallback that covers
     non-affine indices, loop-dependent predicates and indirect (gather)
     addressing, and the source of the address stream the cache model
     replays.

   Site numbering is structural (traversal order, each syntactic site once
   per enclosing-region pass), so the two lists align index-for-index; on
   affine kernels the derived transaction and conflict counts agree exactly
   (the qcheck cross-check in test_cycle). *)

type kind = Global_load | Global_store | Shared_load | Shared_store

type site = {
  id : int;
  kind : kind;
  buffer : string;
  elt_bytes : int;
  weight : float;  (** loop-scaled executions of the site per warp *)
  transactions : float;
      (** global sites: coalesced line segments per execution, per warp *)
  conflict : float;
      (** shared sites: bank-conflict degree per execution (1 = free) *)
  static : bool;  (** derived statically; false = needs the trace *)
  in_main_loop : bool;
}

let is_global s = match s.kind with
  | Global_load | Global_store -> true
  | Shared_load | Shared_store -> false

let warp_lanes = 32
let num_banks = 32
let bank_word_bytes = 4

(* Distinct cache-line segments touched by one warp access, translation
   invariant (offsets from the warp's minimum address): an affine access
   produces the same count on every loop iteration, which is what lets the
   static probe stand in for the whole loop. *)
let segments ~line addrs =
  match addrs with
  | [] -> 0
  | _ ->
    let base = List.fold_left min max_int addrs in
    let segs = Hashtbl.create 8 in
    List.iter (fun a -> Hashtbl.replace segs ((a - base) / line) ()) addrs;
    Hashtbl.length segs

(* Shared-memory bank-conflict degree: the maximum number of distinct
   4-byte words mapping to one of the 32 banks. Lanes reading the same word
   broadcast (no conflict). Also computed on min-relative addresses: a
   uniform (word-aligned) shift rotates banks without changing the degree. *)
let conflict_degree addrs =
  match addrs with
  | [] -> 1
  | _ ->
    let base = List.fold_left min max_int addrs in
    let per_bank : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun a ->
        let w = (a - base) / bank_word_bytes in
        let b = w mod num_banks in
        let tbl =
          match Hashtbl.find_opt per_bank b with
          | Some t -> t
          | None ->
            let t = Hashtbl.create 4 in
            Hashtbl.add per_bank b t;
            t
        in
        Hashtbl.replace tbl w ())
      addrs;
    Hashtbl.fold (fun _ t acc -> max acc (Hashtbl.length t)) per_bank 1

let flatten_index (b : Buffer.t) indices =
  List.fold_left2
    (fun acc idx dim -> Expr.add (Expr.mul acc (Expr.int dim)) idx)
    (Expr.int 0) indices b.Buffer.dims

(* --- expression utilities --------------------------------------------------- *)

let rec subst (s : (int * Expr.t) list) (e : Expr.t) : Expr.t =
  match e with
  | Expr.Var v -> (
    match List.assoc_opt v.Var.id s with Some e' -> e' | None -> e)
  | Int _ | Float _ | Bool _ | Thread_idx | Block_idx -> e
  | Binop (op, a, b) -> Binop (op, subst s a, subst s b)
  | Unop (op, a) -> Unop (op, subst s a)
  | Select (c, a, b) -> Select (subst s c, subst s a, subst s b)
  | Load (buf, idx) -> Load (buf, List.map (subst s) idx)

let rec has_load = function
  | Expr.Load _ -> true
  | Int _ | Float _ | Bool _ | Var _ | Thread_idx | Block_idx -> false
  | Binop (_, a, b) -> has_load a || has_load b
  | Unop (_, a) -> has_load a
  | Select (c, a, b) -> has_load c || has_load a || has_load b

let rec free_vars acc = function
  | Expr.Var v -> v.Var.id :: acc
  | Int _ | Float _ | Bool _ | Thread_idx | Block_idx -> acc
  | Binop (_, a, b) -> free_vars (free_vars acc a) b
  | Unop (_, a) -> free_vars acc a
  | Select (c, a, b) -> free_vars (free_vars (free_vars acc c) a) b
  | Load (_, idx) -> List.fold_left free_vars acc idx

(* Evaluate a closed expression (free vars restricted to the loop
   assignment) for one lane of warp 0, block 0. Unassigned variables raise,
   so a genuinely free variable disqualifies the static path instead of
   silently reading 0. *)
exception Unbound

let lane_env ~assign lane =
  {
    Expr.lookup =
      (fun v ->
        match List.assoc_opt v.Var.id assign with
        | Some n -> Expr.V_int n
        | None -> raise Unbound);
    load = (fun _ _ -> Expr.V_float 0.);
    thread_idx = lane;
    block_idx = 0;
  }

(* The kernel's dominant round structure: the first outermost [For] whose
   body issues global-memory accesses is taken as the main loop; its trip
   count is the number of prefetch/compute rounds the warp scheduler
   interleaves. *)
let rec stmt_has_global_access (s : Stmt.t) =
  let rec expr_has = function
    | Expr.Load (b, idx) ->
      b.Buffer.scope = Buffer.Global || List.exists expr_has idx
    | Int _ | Float _ | Bool _ | Var _ | Thread_idx | Block_idx -> false
    | Binop (_, a, b) -> expr_has a || expr_has b
    | Unop (_, a) -> expr_has a
    | Select (c, a, b) -> expr_has c || expr_has a || expr_has b
  in
  match s with
  | Seq ss -> List.exists stmt_has_global_access ss
  | For { extent; body; _ } -> expr_has extent || stmt_has_global_access body
  | If { cond; then_; else_ } ->
    expr_has cond
    || stmt_has_global_access then_
    || (match else_ with Some e -> stmt_has_global_access e | None -> false)
  | Let { value; body; _ } -> expr_has value || stmt_has_global_access body
  | Store { buf; indices; value } ->
    buf.Buffer.scope = Buffer.Global
    || List.exists expr_has indices
    || expr_has value
  | Mma _ -> false
  | Sync_threads | Comment _ -> false

(* --- static walker ---------------------------------------------------------- *)

type static_result = { sites : site list; main_trips : float }

let static_sites ?(line = 128) (k : Kernel.t) : static_result =
  let out = ref [] in
  let next = ref 0 in
  let main_trips = ref 1. in
  let record ~subst_env ~loop_ids ~scale ~mask ~poison ~in_main kind buf
      indices =
    let id = !next in
    incr next;
    let elt = Dtype.size_bytes buf.Buffer.elt in
    let closed = List.map (subst subst_env) indices in
    let zeros = List.map (fun v -> (v, 0)) loop_ids in
    let lanes =
      match mask with
      | None -> List.init warp_lanes Fun.id
      | Some m ->
        List.filteri (fun _ l -> m.(l)) (List.init warp_lanes Fun.id)
    in
    let addrs_at assign =
      let flat = flatten_index buf closed in
      List.map (fun l -> Expr.eval_int (lane_env ~assign l) flat * elt) lanes
    in
    let analysis =
      if poison || List.exists has_load closed then None
      else if
        List.exists
          (fun v -> not (List.mem v loop_ids))
          (List.fold_left free_vars [] closed)
      then None
      else
        match addrs_at zeros with
        | exception _ -> None
        | addrs0 ->
          let rel base l = List.map (fun a -> a - base) l in
          let offsets0 =
            match addrs0 with
            | [] -> []
            | _ -> rel (List.fold_left min max_int addrs0) addrs0
          in
          let uniform =
            List.for_all
              (fun v ->
                let assign =
                  List.map (fun u -> (u, if u = v then 1 else 0)) loop_ids
                in
                match addrs_at assign with
                | exception _ -> false
                | addrs ->
                  let offs =
                    match addrs with
                    | [] -> []
                    | _ -> rel (List.fold_left min max_int addrs) addrs
                  in
                  offs = offsets0)
              loop_ids
          in
          if uniform then Some addrs0 else None
    in
    let site =
      match analysis with
      | Some addrs ->
        {
          id;
          kind;
          buffer = buf.Buffer.name;
          elt_bytes = elt;
          weight = scale;
          transactions =
            (match kind with
            | Global_load | Global_store -> float_of_int (segments ~line addrs)
            | _ -> 0.);
          conflict =
            (match kind with
            | Shared_load | Shared_store ->
              float_of_int (conflict_degree addrs)
            | _ -> 1.);
          static = true;
          in_main_loop = in_main;
        }
      | None ->
        {
          id;
          kind;
          buffer = buf.Buffer.name;
          elt_bytes = elt;
          weight = scale;
          transactions = 0.;
          conflict = 1.;
          static = false;
          in_main_loop = in_main;
        }
    in
    out := site :: !out
  in
  let trip ~subst_env ~loop_ids extent =
    let e = subst subst_env extent in
    let zeros = List.map (fun v -> (v, 0)) loop_ids in
    match Expr.const_int e with
    | Some n -> float_of_int (max n 0)
    | None -> (
      try float_of_int (max (Expr.eval_int (lane_env ~assign:zeros 0) e) 0)
      with _ -> 1.)
  in
  let rec expr ~subst_env ~loop_ids ~scale ~mask ~poison ~in_main (e : Expr.t)
      =
    let go = expr ~subst_env ~loop_ids ~scale ~mask ~poison ~in_main in
    match e with
    | Int _ | Float _ | Bool _ | Var _ | Thread_idx | Block_idx -> ()
    | Binop (_, a, b) ->
      go a;
      go b
    | Unop (_, a) -> go a
    | Select (c, a, b) ->
      go c;
      go a;
      go b
    | Load (buf, idx) -> (
      List.iter go idx;
      match buf.Buffer.scope with
      | Buffer.Global ->
        record ~subst_env ~loop_ids ~scale ~mask ~poison ~in_main Global_load
          buf idx
      | Buffer.Shared ->
        record ~subst_env ~loop_ids ~scale ~mask ~poison ~in_main Shared_load
          buf idx
      | Buffer.Warp | Buffer.Register -> ())
  in
  let rec stmt ~subst_env ~loop_ids ~scale ~mask ~poison ~in_main (s : Stmt.t)
      =
    let goe = expr ~subst_env ~loop_ids ~scale ~mask ~poison ~in_main in
    match s with
    | Seq ss ->
      List.iter (stmt ~subst_env ~loop_ids ~scale ~mask ~poison ~in_main) ss
    | For { var; extent; body; _ } ->
      goe extent;
      let n = trip ~subst_env ~loop_ids extent in
      let in_main' =
        if (not in_main) && stmt_has_global_access body then begin
          main_trips := Float.max !main_trips n;
          true
        end
        else in_main
      in
      stmt ~subst_env
        ~loop_ids:(var.Var.id :: loop_ids)
        ~scale:(scale *. n) ~mask ~poison ~in_main:in_main' body
    | If { cond; then_; else_ } -> (
      goe cond;
      let ccl = subst subst_env cond in
      let static_cond =
        (not (has_load ccl)) && free_vars [] ccl = [] && not poison
      in
      let masks =
        if not static_cond then None
        else
          match
            Array.init warp_lanes (fun l ->
                Expr.eval_bool (lane_env ~assign:[] l) ccl)
          with
          | m -> Some m
          | exception _ -> None
      in
      match masks with
      | Some cm ->
        let base = match mask with None -> Array.make warp_lanes true | Some m -> m in
        let then_mask = Array.mapi (fun l a -> a && cm.(l)) base in
        let else_mask = Array.mapi (fun l a -> a && not cm.(l)) base in
        stmt ~subst_env ~loop_ids ~scale ~mask:(Some then_mask) ~poison
          ~in_main then_;
        (match else_ with
        | Some e ->
          stmt ~subst_env ~loop_ids ~scale ~mask:(Some else_mask) ~poison
            ~in_main e
        | None -> ())
      | None ->
        (* Loop-dependent or unevaluable predicate: both branches are
           walked with the sites poisoned to the trace fallback. *)
        stmt ~subst_env ~loop_ids ~scale ~mask ~poison:true ~in_main then_;
        (match else_ with
        | Some e ->
          stmt ~subst_env ~loop_ids ~scale ~mask ~poison:true ~in_main e
        | None -> ()))
    | Let { var; value; body } ->
      goe value;
      let vcl = subst subst_env value in
      stmt
        ~subst_env:((var.Var.id, vcl) :: subst_env)
        ~loop_ids ~scale ~mask ~poison ~in_main body
    | Store { buf; indices; value } -> (
      List.iter goe indices;
      goe value;
      match buf.Buffer.scope with
      | Buffer.Global ->
        record ~subst_env ~loop_ids ~scale ~mask ~poison ~in_main Global_store
          buf indices
      | Buffer.Shared ->
        record ~subst_env ~loop_ids ~scale ~mask ~poison ~in_main Shared_store
          buf indices
      | Buffer.Warp | Buffer.Register -> ())
    | Mma _ | Sync_threads | Comment _ -> ()
  in
  stmt ~subst_env:[] ~loop_ids:[] ~scale:1. ~mask:None ~poison:false
    ~in_main:false k.Kernel.body;
  { sites = List.rev !out; main_trips = !main_trips }

(* --- trace sampler ---------------------------------------------------------- *)

type traced = {
  t_sites : site list;
  stream : int array;
      (** absolute cache-line ids of the sampled warp's global transactions,
          in program order (buffers placed at disjoint line-aligned bases) *)
}

type acc = {
  mutable execs : float;
  mutable txn : float;
  mutable conf : float;
  a_kind : kind;
  a_buffer : string;
  a_elt : int;
  mutable a_in_main : bool;
}

let traced_sites ?(line = 128) ?(loop_cap = max_int) ?(stream_cap = 65536)
    ?(block = 0) ?(warp = 0) (k : Kernel.t) : traced =
  let accs : (int, acc) Hashtbl.t = Hashtbl.create 32 in
  let stream = ref [] in
  let stream_len = ref 0 in
  let bases : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let next_base = ref 0 in
  let base_of (buf : Buffer.t) =
    match Hashtbl.find_opt bases buf.Buffer.id with
    | Some b -> b
    | None ->
      let b = (!next_base + line - 1) / line * line in
      Hashtbl.add bases buf.Buffer.id b;
      next_base := b + Buffer.size_bytes buf;
      b
  in
  let tid_base = warp * warp_lanes in
  let vals : (int, Expr.value) Hashtbl.t array =
    Array.init warp_lanes (fun _ -> Hashtbl.create 32)
  in
  let env lane =
    {
      Expr.lookup =
        (fun v ->
          match Hashtbl.find_opt vals.(lane) v.Var.id with
          | Some x -> x
          | None -> Expr.V_int 0);
      load = (fun _ _ -> Expr.V_float 0.);
      thread_idx = tid_base + lane;
      block_idx = block;
    }
  in
  (* Structural site numbering across repeated loop passes: the counter is
     reset to the loop-entry value before each iteration; every pass
     traverses the same syntactic sites, so positions are stable. *)
  let next = ref 0 in
  let record ~scale ~mask ~in_main kind buf indices =
    let id = !next in
    incr next;
    let a =
      match Hashtbl.find_opt accs id with
      | Some a -> a
      | None ->
        let a =
          {
            execs = 0.;
            txn = 0.;
            conf = 0.;
            a_kind = kind;
            a_buffer = buf.Buffer.name;
            a_elt = Dtype.size_bytes buf.Buffer.elt;
            a_in_main = in_main;
          }
        in
        Hashtbl.add accs id a;
        a
    in
    a.execs <- a.execs +. scale;
    if scale > 0. then begin
      let elt = Dtype.size_bytes buf.Buffer.elt in
      let flat = flatten_index buf indices in
      let addrs =
        List.filter_map
          (fun l ->
            if mask.(l) then
              match Expr.eval_int (env l) flat with
              | v -> Some (v * elt)
              | exception _ -> None
            else None)
          (List.init warp_lanes Fun.id)
      in
      match kind with
      | Global_load | Global_store ->
        a.txn <- a.txn +. (scale *. float_of_int (segments ~line addrs));
        if !stream_len < stream_cap && addrs <> [] then begin
          let base = base_of buf in
          let seen = Hashtbl.create 8 in
          List.iter
            (fun ad ->
              let l = (base + ad) / line in
              if not (Hashtbl.mem seen l) then begin
                Hashtbl.add seen l ();
                stream := l :: !stream;
                incr stream_len
              end)
            addrs
        end
      | Shared_load | Shared_store ->
        a.conf <- a.conf +. (scale *. float_of_int (conflict_degree addrs))
    end
  in
  let rec texpr ~scale ~mask ~in_main (e : Expr.t) =
    let go = texpr ~scale ~mask ~in_main in
    match e with
    | Expr.Int _ | Float _ | Bool _ | Var _ | Thread_idx | Block_idx -> ()
    | Binop (_, a, b) ->
      go a;
      go b
    | Unop (_, a) -> go a
    | Select (c, a, b) ->
      go c;
      go a;
      go b
    | Load (buf, idx) -> (
      List.iter go idx;
      match buf.Buffer.scope with
      | Buffer.Global -> record ~scale ~mask ~in_main Global_load buf idx
      | Buffer.Shared -> record ~scale ~mask ~in_main Shared_load buf idx
      | Buffer.Warp | Buffer.Register -> ())
  in
  let rec tstmt ~scale ~mask ~in_main (s : Stmt.t) =
    match s with
    | Stmt.Seq ss -> List.iter (tstmt ~scale ~mask ~in_main) ss
    | For { var; extent; body; _ } ->
      texpr ~scale ~mask ~in_main extent;
      let n =
        match Expr.const_int extent with
        | Some n -> max n 0
        | None -> (
          try max (Expr.eval_int (env 0) extent) 0 with _ -> 0)
      in
      let in_main' = in_main || stmt_has_global_access body in
      let iters = min n loop_cap in
      let saved =
        Array.map (fun t -> Hashtbl.find_opt t var.Var.id) vals
      in
      let entry = !next in
      if iters = 0 then begin
        (* Keep site numbering aligned with the static walker: one pass at
           zero weight with no active lanes. *)
        Array.iter (fun t -> Hashtbl.replace t var.Var.id (Expr.V_int 0)) vals;
        tstmt ~scale:0. ~mask:(Array.make warp_lanes false) ~in_main:in_main'
          body
      end
      else begin
        let sc = scale *. (float_of_int n /. float_of_int iters) in
        for i = 0 to iters - 1 do
          next := entry;
          Array.iter
            (fun t -> Hashtbl.replace t var.Var.id (Expr.V_int i))
            vals;
          tstmt ~scale:sc ~mask ~in_main:in_main' body
        done
      end;
      Array.iteri
        (fun l saved_v ->
          match saved_v with
          | Some v -> Hashtbl.replace vals.(l) var.Var.id v
          | None -> Hashtbl.remove vals.(l) var.Var.id)
        saved
    | If { cond; then_; else_ } ->
      texpr ~scale ~mask ~in_main cond;
      (* Per-lane predication: a lane whose predicate fails to evaluate is
         inactive in both branches. *)
      let cm =
        Array.init warp_lanes (fun l ->
            if not mask.(l) then None
            else
              match Expr.eval_bool (env l) cond with
              | b -> Some b
              | exception _ -> None)
      in
      let then_mask = Array.map (function Some true -> true | _ -> false) cm in
      let else_mask =
        Array.map (function Some false -> true | _ -> false) cm
      in
      tstmt ~scale ~mask:then_mask ~in_main then_;
      (match else_ with
      | Some e -> tstmt ~scale ~mask:else_mask ~in_main e
      | None -> ())
    | Let { var; value; body } ->
      texpr ~scale ~mask ~in_main value;
      let saved = Array.map (fun t -> Hashtbl.find_opt t var.Var.id) vals in
      Array.iteri
        (fun l _ ->
          match Expr.eval (env l) value with
          | v -> Hashtbl.replace vals.(l) var.Var.id v
          | exception _ -> ())
        vals;
      tstmt ~scale ~mask ~in_main body;
      Array.iteri
        (fun l saved_v ->
          match saved_v with
          | Some v -> Hashtbl.replace vals.(l) var.Var.id v
          | None -> Hashtbl.remove vals.(l) var.Var.id)
        saved
    | Store { buf; indices; value } -> (
      List.iter (texpr ~scale ~mask ~in_main) indices;
      texpr ~scale ~mask ~in_main value;
      match buf.Buffer.scope with
      | Buffer.Global -> record ~scale ~mask ~in_main Global_store buf indices
      | Buffer.Shared -> record ~scale ~mask ~in_main Shared_store buf indices
      | Buffer.Warp | Buffer.Register -> ())
    | Mma _ | Sync_threads | Comment _ -> ()
  in
  tstmt ~scale:1. ~mask:(Array.make warp_lanes true) ~in_main:false
    k.Kernel.body;
  let n_sites = !next in
  let sites =
    List.init n_sites (fun id ->
        match Hashtbl.find_opt accs id with
        | None ->
          {
            id;
            kind = Global_load;
            buffer = "";
            elt_bytes = 4;
            weight = 0.;
            transactions = 0.;
            conflict = 1.;
            static = false;
            in_main_loop = false;
          }
        | Some a ->
          let per_exec total = if a.execs > 0. then total /. a.execs else 0. in
          {
            id;
            kind = a.a_kind;
            buffer = a.a_buffer;
            elt_bytes = a.a_elt;
            weight = a.execs;
            transactions =
              (match a.a_kind with
              | Global_load | Global_store -> per_exec a.txn
              | _ -> 0.);
            conflict =
              (match a.a_kind with
              | Shared_load | Shared_store ->
                if a.execs > 0. then a.conf /. a.execs else 1.
              | _ -> 1.);
            static = false;
            in_main_loop = a.a_in_main;
          })
  in
  { t_sites = sites; stream = Array.of_list (List.rev !stream) }

(* --- combined analysis ------------------------------------------------------ *)

type summary = {
  sites : site list;
  main_trips : float;
  load_txn_main : float;
  load_txn_other : float;
  store_txn : float;
  shared_cycles_main : float;
  shared_cycles_other : float;
  global_accesses : float;
  txn_per_access : float;
  conflict_factor : float;
  n_static : int;
  n_traced : int;
  stream : int array;
}

(* Caps chosen so tuning-time analysis of one schedule stays around a
   millisecond; counts are scaled back to full trip counts, which is exact
   for loop-uniform (affine) access patterns. *)
let analyze ?(line = 128) ?(loop_cap = 8) ?(stream_cap = 8192) (k : Kernel.t)
    : summary =
  let s = static_sites ~line k in
  let t = traced_sites ~line ~loop_cap ~stream_cap k in
  let merged =
    List.map2
      (fun (ss : site) (ts : site) ->
        if ss.static then { ss with in_main_loop = ss.in_main_loop || ts.in_main_loop }
        else { ts with id = ss.id; static = false })
      s.sites t.t_sites
  in
  let n_static = List.length (List.filter (fun x -> x.static) merged) in
  let fold f init = List.fold_left f init merged in
  let load_txn_main =
    fold
      (fun acc x ->
        if x.kind = Global_load && x.in_main_loop then
          acc +. (x.weight *. x.transactions)
        else acc)
      0.
  in
  let load_txn_other =
    fold
      (fun acc x ->
        if x.kind = Global_load && not x.in_main_loop then
          acc +. (x.weight *. x.transactions)
        else acc)
      0.
  in
  let store_txn =
    fold
      (fun acc x ->
        if x.kind = Global_store then acc +. (x.weight *. x.transactions)
        else acc)
      0.
  in
  let shared_cycles in_main =
    fold
      (fun acc x ->
        match x.kind with
        | Shared_load | Shared_store when x.in_main_loop = in_main ->
          acc +. (x.weight *. x.conflict)
        | _ -> acc)
      0.
  in
  let global_accesses =
    fold (fun acc x -> if is_global x then acc +. x.weight else acc) 0.
  in
  let global_txn = load_txn_main +. load_txn_other +. store_txn in
  let shared_weight =
    fold (fun acc x -> if is_global x then acc else acc +. x.weight) 0.
  in
  let shared_conf =
    fold
      (fun acc x -> if is_global x then acc else acc +. (x.weight *. x.conflict))
      0.
  in
  {
    sites = merged;
    main_trips = s.main_trips;
    load_txn_main;
    load_txn_other;
    store_txn;
    shared_cycles_main = shared_cycles true;
    shared_cycles_other = shared_cycles false;
    global_accesses;
    txn_per_access =
      (if global_accesses > 0. then global_txn /. global_accesses else 0.);
    conflict_factor =
      (if shared_weight > 0. then shared_conf /. shared_weight else 1.);
    n_static;
    n_traced = List.length merged - n_static;
    stream = t.stream;
  }
