(** Per-warp memory access-pattern analysis.

    Derives, per syntactic access site, the coalesced global-transaction
    count and shared-memory bank-conflict degree of one warp — statically
    when index expressions are affine in thread ids (per-lane address
    offsets invariant in every enclosing loop variable), and from a sampled
    address trace of the simulated warp otherwise (non-affine indices,
    loop-dependent predicates, indirect addressing).

    Both walkers number sites structurally (traversal order), so their
    results align index-for-index; on affine kernels the static and traced
    counts agree exactly (the qcheck cross-check in test_cycle). *)

type kind = Global_load | Global_store | Shared_load | Shared_store

type site = {
  id : int;
  kind : kind;
  buffer : string;
  elt_bytes : int;
  weight : float;  (** loop-scaled executions of the site per warp *)
  transactions : float;
      (** global sites: coalesced line segments per execution, per warp *)
  conflict : float;
      (** shared sites: bank-conflict degree per execution (1 = free) *)
  static : bool;  (** derived statically; false = from the trace *)
  in_main_loop : bool;
      (** inside the kernel's dominant (global-access) loop *)
}

val is_global : site -> bool

val segments : line:int -> int list -> int
(** Distinct cache-line segments touched by one warp access (addresses in
    bytes, translation-invariant). *)

val conflict_degree : int list -> int
(** Shared-memory bank-conflict degree of one warp access: max distinct
    4-byte words mapping to one of the 32 banks; 1 = conflict-free
    (broadcast included). *)

type static_result = { sites : site list; main_trips : float }

val static_sites : ?line:int -> Hidet_ir.Kernel.t -> static_result
(** The static walker alone (warp 0, block 0). Sites whose footprint cannot
    be derived statically are returned with [static = false] and zeroed
    counts. [main_trips] is the trip count of the outermost global-access
    loop (1 if none). *)

type traced = {
  t_sites : site list;
  stream : int array;
      (** absolute cache-line ids of the warp's global transactions in
          program order; buffers occupy disjoint line-aligned bases *)
}

val traced_sites :
  ?line:int ->
  ?loop_cap:int ->
  ?stream_cap:int ->
  ?block:int ->
  ?warp:int ->
  Hidet_ir.Kernel.t ->
  traced
(** Execute the kernel body for one sampled warp with real loop iterations
    (per-lane environments, per-lane predication masks, loads reading zero)
    and record each site's actual addresses. Loops longer than [loop_cap]
    iterations run [loop_cap] times with counts scaled back up — exact for
    loop-uniform access patterns. *)

type summary = {
  sites : site list;  (** static results, trace-filled where not static *)
  main_trips : float;
  load_txn_main : float;  (** per-warp load transactions in the main loop *)
  load_txn_other : float;
  store_txn : float;
  shared_cycles_main : float;  (** sum of weight x conflict degree *)
  shared_cycles_other : float;
  global_accesses : float;
  txn_per_access : float;  (** mean transactions per global warp access *)
  conflict_factor : float;  (** weighted mean bank-conflict degree *)
  n_static : int;
  n_traced : int;
  stream : int array;  (** sampled line-id stream for the cache model *)
}

val analyze :
  ?line:int -> ?loop_cap:int -> ?stream_cap:int -> Hidet_ir.Kernel.t -> summary
(** Run the static walker, fill non-static sites from a capped trace, and
    aggregate. Deterministic; roughly a millisecond per matmul schedule at
    the default caps. *)
