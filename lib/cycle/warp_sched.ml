(* Latency-hiding warp-scheduler model.

   Instead of the analytic max(mem, compute) per wave, the resident warps
   of one SM are simulated round-by-round: each warp alternates a memory
   phase (issue the round's global transactions, wait for the last to
   arrive) and a compute phase (CUDA/tensor cycles plus shared-memory
   cycles, inflated by bank conflicts). Latency is hidden exactly as on
   hardware — by switching to another resident warp — and software
   pipelining with [stages] buffers lets one warp keep [stages - 1] rounds'
   prefetches in flight while computing.

   Contention is modeled with two shared resources: a memory pipeline whose
   busy time per round reflects LSU issue plus the DRAM/L2 service of the
   round's cache misses (bandwidth), and [compute_slots] SM sub-partitions
   (warp schedulers) that serialize compute phases when more warps are
   resident than issue ports. Warps are processed round-robin, so the
   schedule — and therefore the whole fidelity mode — is deterministic. *)

type work = {
  iters : int;  (** main-loop rounds *)
  mem_txn_per_iter : float;  (** global transactions per warp per round *)
  dram_frac : float;  (** fraction of transactions missing both caches *)
  l2_frac : float;  (** fraction served by L2 *)
  tail_mem_txn : float;  (** prologue/epilogue transactions (loads+stores) *)
  smem_cycles_per_iter : float;  (** conflict-inflated shared cycles *)
  compute_cycles_per_iter : float;
  tail_compute_cycles : float;
  sync_cycles_per_iter : float;
  stages : int;  (** validated pipeline depth (1 = no overlap) *)
  warps : int;  (** resident warps on the SM (all blocks) *)
  mem_issue_cycles : float;  (** LSU occupancy per transaction *)
  dram_service_cycles : float;  (** bandwidth: cycles per DRAM transaction *)
  l2_service_cycles : float;  (** cycles per L2-served transaction *)
  l1_latency : float;
  l2_latency : float;
  dram_latency : float;
}

type result = {
  cycles : float;  (** completion time of the resident warp set *)
  mem_busy : float;  (** total memory-pipeline busy cycles *)
  compute_busy : float;  (** total compute cycles across warps *)
}

let compute_slots = 4

let simulate (w : work) : result =
  let warps = max 1 w.warps in
  let iters = max 1 w.iters in
  let stages = max 1 w.stages in
  let l1_frac = Float.max 0. (1. -. w.dram_frac -. w.l2_frac) in
  let latency =
    (l1_frac *. w.l1_latency)
    +. (w.l2_frac *. w.l2_latency)
    +. (w.dram_frac *. w.dram_latency)
  in
  let busy_per_txn =
    w.mem_issue_cycles
    +. (w.dram_frac *. w.dram_service_cycles)
    +. (w.l2_frac *. w.l2_service_cycles)
  in
  let round_busy = w.mem_txn_per_iter *. busy_per_txn in
  let round_compute =
    w.compute_cycles_per_iter +. w.smem_cycles_per_iter
    +. w.sync_cycles_per_iter
  in
  let mem_free = ref 0. in
  let slot_free = Array.make compute_slots 0. in
  let mem_busy = ref 0. in
  let compute_busy = ref 0. in
  (* Per warp: completion time of each round's compute, a sliding window of
     [stages] entries; and the arrival time of each round's data. *)
  let compute_end = Array.make_matrix warps (iters + 1) 0. in
  let data_ready = Array.make_matrix warps iters 0. in
  let take_slot t dur =
    (* earliest-free compute sub-partition *)
    let best = ref 0 in
    for s = 1 to compute_slots - 1 do
      if slot_free.(s) < slot_free.(!best) then best := s
    done;
    let start = Float.max t slot_free.(!best) in
    slot_free.(!best) <- start +. dur;
    start +. dur
  in
  for i = 0 to iters - 1 do
    (* Issue phase: round-robin across warps, bandwidth-serialized. The
       prefetch for round [i] may only issue once the buffer it overwrites
       (round [i - stages]) has been consumed. *)
    for wp = 0 to warps - 1 do
      let gate = if i >= stages then compute_end.(wp).(i - stages) else 0. in
      let issue = Float.max !mem_free gate in
      mem_free := issue +. round_busy;
      mem_busy := !mem_busy +. round_busy;
      data_ready.(wp).(i) <- !mem_free +. latency
    done;
    (* Compute phase for round [i]: after this round's data and the
       previous round's compute, on a free sub-partition. *)
    for wp = 0 to warps - 1 do
      let prev = if i = 0 then 0. else compute_end.(wp).(i - 1) in
      let start_after = Float.max data_ready.(wp).(i) prev in
      compute_end.(wp).(i) <- take_slot start_after round_compute;
      compute_busy := !compute_busy +. round_compute
    done
  done;
  (* Tail: epilogue loads/stores and any remaining compute, once per warp. *)
  let tail_busy = w.tail_mem_txn *. busy_per_txn in
  let finish = ref 0. in
  for wp = 0 to warps - 1 do
    let last = compute_end.(wp).(iters - 1) in
    let done_c =
      if w.tail_compute_cycles > 0. then
        take_slot last w.tail_compute_cycles
      else last
    in
    compute_busy := !compute_busy +. w.tail_compute_cycles;
    let t =
      if tail_busy > 0. then begin
        let issue = Float.max !mem_free done_c in
        mem_free := issue +. tail_busy;
        mem_busy := !mem_busy +. tail_busy;
        !mem_free +. latency
      end
      else done_c
    in
    if t > !finish then finish := t
  done;
  { cycles = !finish; mem_busy = !mem_busy; compute_busy = !compute_busy }
