open Hidet_ir
module Device = Hidet_gpu.Device
module Perf_model = Hidet_gpu.Perf_model
module Traffic = Hidet_gpu.Traffic
module Pipeline = Hidet_gpu.Pipeline
module Metrics = Hidet_obs.Metrics

(* The cycle-approximate estimate: Access-derived per-warp footprints, an
   L1/L2 cache replay of the sampled address stream, and the Warp_sched
   latency-hiding simulation, converted to seconds by the device's SM
   clock. Wave quantization, occupancy limits and launch overhead are
   shared with the analytic model so the two fidelities disagree only about
   what happens inside a wave. *)

type t = Perf_model.fidelity

let of_string = Perf_model.fidelity_of_string
let to_string = Perf_model.fidelity_to_string
let cache_suffix = Perf_model.fidelity_cache_suffix
let set_default = Perf_model.set_default_fidelity
let default = Perf_model.default_fidelity

type extras = {
  txn_per_access : float;  (** mean coalesced transactions per warp access *)
  conflict_factor : float;  (** weighted mean bank-conflict degree *)
  l1_hit : float;
  l2_hit : float;  (** includes cross-block reuse of the L2 window *)
  n_static : int;
  n_traced : int;
  sim_cycles : float;  (** modeled cycles for one wave's resident warp set *)
  iters : int;
}

let no_extras =
  {
    txn_per_access = 0.;
    conflict_factor = 1.;
    l1_hit = 0.;
    l2_hit = 0.;
    n_static = 0;
    n_traced = 0;
    sim_cycles = 0.;
    iters = 0;
  }

let m_estimates = Metrics.counter "cycle.estimates"
let m_traced = Metrics.counter "cycle.traced_sites"

let ceil_div a b = (a + b - 1) / b

let kernel (d : Device.t) (k : Kernel.t) : Perf_model.estimate * extras =
  match
    Perf_model.blocks_per_sm_limit d ~block_dim:k.Kernel.block_dim
      ~smem:(Kernel.shared_bytes k) ~regs:(Kernel.regs_per_thread k)
  with
  | Error note -> (Perf_model.infeasible note, no_extras)
  | Ok blocks_per_sm ->
    Metrics.incr m_estimates;
    let c = Traffic.kernel k in
    let a = Access.analyze ~line:d.cache_line_bytes k in
    Metrics.add m_traced a.Access.n_traced;
    let stages = Pipeline.effective_stages k in
    let warps_per_block = Kernel.num_warps_per_block k in
    let concurrent = d.num_sms * blocks_per_sm in
    let active_blocks = min k.Kernel.grid_dim concurrent in
    let waves = ceil_div k.Kernel.grid_dim concurrent in
    let blocks_on_sm = max 1 (ceil_div active_blocks d.num_sms) in
    let resident_warps = warps_per_block * blocks_on_sm in
    let occupancy =
      Float.min 1.
        (float_of_int (k.Kernel.block_dim * blocks_per_sm)
        /. float_of_int d.max_threads_per_sm)
    in
    (* Cache replay: the sampled warp's stream against its slice of L1
       (contended by every co-resident warp) and of the device-wide L2. *)
    let line = d.cache_line_bytes in
    let l1_geom =
      {
        Cache_model.size = max line (d.l1_size / max 1 resident_warps);
        line;
        ways = d.l1_ways;
      }
    in
    let s1, miss1 = Cache_model.simulate_through l1_geom a.Access.stream in
    let l2_geom =
      {
        Cache_model.size =
          max line (d.l2_size / max 1 (active_blocks * warps_per_block));
        line;
        ways = d.l2_ways;
      }
    in
    let s2 = Cache_model.simulate l2_geom miss1 in
    let h1 = Cache_model.hit_rate s1 in
    let h2_intra = Cache_model.hit_rate s2 in
    (* Lines fetched once and shared by the L2 reuse window of
       consecutively launched blocks (what swizzle improves) are L2 hits
       for every block after the first. *)
    let reuse =
      if c.Traffic.global_load_bytes > 0. then
        Traffic.block_reuse ~window:(min d.l2_reuse_window active_blocks) k
      else 1.
    in
    let cross = 1. -. (1. /. Float.max 1. reuse) in
    let h2 = h2_intra +. ((1. -. h2_intra) *. cross) in
    let dram_frac = (1. -. h1) *. (1. -. h2) in
    let l2_frac = (1. -. h1) *. h2 in
    (* Round structure and per-round work (per warp). *)
    let iters = max 1 (int_of_float (Float.round a.Access.main_trips)) in
    let fiters = float_of_int iters in
    let slots = float_of_int Warp_sched.compute_slots in
    let fp32_per_slot =
      Device.fp32_flops d /. (float_of_int d.num_sms *. d.sm_clock_hz) /. slots
    in
    let tensor_per_slot =
      Device.tensor_flops d
      /. (float_of_int d.num_sms *. d.sm_clock_hz)
      /. slots
    in
    let flops_warp = c.Traffic.flops *. 32. in
    let mma_warp = c.Traffic.mma_flops in
    let compute_cycles_total =
      (flops_warp /. Float.max fp32_per_slot 1e-9)
      +. (mma_warp /. Float.max tensor_per_slot 1e-9)
    in
    let sync_cycles_total =
      c.Traffic.syncs *. d.sync_latency *. d.sm_clock_hz
    in
    (* Memory pipeline: bandwidth shared by the SMs that actually have
       blocks, floored at 1.5x an even per-SM split (an SM's own LSU/L2
       port limit, as in the analytic model). *)
    let active_sms = max 1 (min d.num_sms active_blocks) in
    let dram_service =
      Float.max
        (float_of_int line *. d.sm_clock_hz *. float_of_int active_sms
        /. d.mem_bandwidth)
        (float_of_int line *. d.sm_clock_hz *. float_of_int d.num_sms
        /. (1.5 *. d.mem_bandwidth))
    in
    let work =
      {
        Warp_sched.iters;
        mem_txn_per_iter = a.Access.load_txn_main /. fiters;
        dram_frac;
        l2_frac;
        tail_mem_txn = a.Access.load_txn_other +. a.Access.store_txn;
        smem_cycles_per_iter =
          (a.Access.shared_cycles_main /. fiters)
          +. (if a.Access.shared_cycles_main > 0. then
                float_of_int d.smem_latency_cycles
              else 0.);
        compute_cycles_per_iter = compute_cycles_total /. fiters;
        tail_compute_cycles = a.Access.shared_cycles_other;
        sync_cycles_per_iter = sync_cycles_total /. fiters;
        stages;
        warps = resident_warps;
        mem_issue_cycles = 2.;
        dram_service_cycles = dram_service;
        l2_service_cycles = dram_service /. 3.;
        l1_latency = float_of_int d.l1_latency_cycles;
        l2_latency = float_of_int d.l2_latency_cycles;
        dram_latency = float_of_int d.dram_latency_cycles;
      }
    in
    let r = Warp_sched.simulate work in
    let wave_time = r.Warp_sched.cycles /. d.sm_clock_hz in
    let latency =
      d.kernel_launch_overhead +. (float_of_int waves *. wave_time)
    in
    let mem_time = r.Warp_sched.mem_busy /. d.sm_clock_hz in
    let compute_time = r.Warp_sched.compute_busy /. slots /. d.sm_clock_hz in
    let note =
      if d.kernel_launch_overhead >= float_of_int waves *. wave_time then
        "launch-bound"
      else if mem_time >= compute_time then "memory-bound"
      else "compute-bound"
    in
    ( {
        Perf_model.latency;
        mem_time;
        compute_time;
        waves;
        blocks_per_sm;
        occupancy;
        pipelined = stages >= 2;
        feasible = true;
        note;
      },
      {
        txn_per_access = a.Access.txn_per_access;
        conflict_factor = a.Access.conflict_factor;
        l1_hit = h1;
        l2_hit = h2;
        n_static = a.Access.n_static;
        n_traced = a.Access.n_traced;
        sim_cycles = r.Warp_sched.cycles;
        iters;
      } )

let estimate d k = fst (kernel d k)

let latency d k =
  let e = estimate d k in
  if e.Perf_model.feasible then e.Perf_model.latency else infinity

let install () = Perf_model.register_cycle_model estimate

(* Register at link time: any program linking hidet_cycle (hidet_sched
   does) gets Perf_model.estimate ~fidelity:`Cycle routed here. *)
let () = install ()
