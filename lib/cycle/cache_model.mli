(** Set-associative LRU cache simulation over a cache-line-id stream. *)

type geom = {
  size : int;  (** capacity in bytes (a per-warp or per-block slice) *)
  line : int;  (** line size in bytes *)
  ways : int;  (** associativity *)
}

type stats = { accesses : int; hits : int }

val hit_rate : stats -> float

val simulate : geom -> int array -> stats

val simulate_through : geom -> int array -> stats * int array
(** Also returns the miss stream in order, for feeding a next-level cache. *)
