(* Chunked fork-join map over OCaml 5 domains.

   The tuner's unit of work (instantiate a schedule template, run the
   analytic latency model) is a few tens of microseconds, so tasks are
   handed out in chunks through one atomic cursor rather than one CAS per
   item. Worker domains write results into disjoint slots of a shared
   array; the calling domain participates as a worker, so [workers = 1]
   spawns nothing. *)

let default_workers () = max 1 (Domain.recommended_domain_count () - 1)

let map ?workers f items =
  let n = Array.length items in
  let w = max 1 (min n (Option.value workers ~default:(default_workers ()))) in
  if w = 1 || n <= 1 then Array.map f items
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let error = Atomic.make None in
    let chunk = max 1 (n / (w * 8)) in
    let worker () =
      let running = ref true in
      while !running do
        let start = Atomic.fetch_and_add cursor chunk in
        if start >= n || Atomic.get error <> None then running := false
        else
          let stop = min n (start + chunk) in
          try
            for i = start to stop - 1 do
              results.(i) <- Some (f items.(i))
            done
          with e ->
            (* Keep the first failure; other workers drain and stop. *)
            ignore (Atomic.compare_and_set error None (Some e));
            running := false
      done
    in
    let domains = List.init (w - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    (match Atomic.get error with Some e -> raise e | None -> ());
    Array.map (function Some r -> r | None -> assert false) results
  end
