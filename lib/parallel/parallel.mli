(** Fork-join parallelism for candidate compilation and measurement.

    A chunked work queue over OCaml 5 domains: items are claimed in chunks
    through an atomic cursor, each result lands in its own slot, so the
    output order is independent of scheduling. *)

val default_workers : unit -> int
(** [Domain.recommended_domain_count () - 1] (the caller's domain also
    works), at least 1. *)

val map : ?workers:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map f items] = [Array.map f items], computed by [workers] domains
    (default {!default_workers}; clamped to [1 .. length items]). With one
    worker, runs sequentially in the calling domain without spawning. If
    [f] raises, the first exception is re-raised in the caller after all
    domains have stopped. *)
