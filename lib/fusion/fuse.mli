(** Post-scheduling fusion (the paper's §4.2/§5.2).

    The anchor operator is scheduled {e alone} (template- or rule-based);
    surrounding operators are then fused into the already-scheduled tensor
    program:

    - a {b prologue} (injective operator producing anchor input [i]) replaces
      every load of that input with the prologue's defining expression,
      inlined at the loaded index;
    - an {b epilogue} (bijective operator consuming the anchor output)
      rewrites every store of the output: the stored value flows through the
      epilogue's scalar body, and the store index through its index
      bijection.

    Both rewrites operate on the scheduled IR directly, so the anchor's
    schedule — tiling, task mappings, double buffering, split-k — is
    untouched; tuning measures the fused program (the paper's "the
    decoupling does not hurt the final performance").

    Shape discipline: the prologue's output shape must equal the anchor
    input buffer's shape, and the epilogue's input shape the anchor output
    buffer's shape. The graph layer arranges ranks accordingly. *)

val fuse_prologue :
  Hidet_sched.Compiled.t ->
  input_index:int ->
  Hidet_compute.Def.t ->
  Hidet_sched.Compiled.t
(** [fuse_prologue anchor ~input_index def] inlines [def] into every load of
    input [input_index]. The fused operator's input list replaces that slot
    with [def]'s own inputs. Raises [Invalid_argument] if [def] is not
    injective or shapes disagree. *)

val fuse_epilogue :
  Hidet_sched.Compiled.t -> Hidet_compute.Def.t -> Hidet_sched.Compiled.t
(** [fuse_epilogue anchor def] pushes every store of the anchor output
    through [def]. [def]'s input 0 is the anchor output; any further inputs
    (e.g. a residual tensor) are appended to the fused operator's inputs.
    Raises [Invalid_argument] if [def] is not bijective w.r.t. input 0 or
    shapes disagree. *)

val inject_index_bug : bool ref
(** Test-only fault injection: when [true], {!fuse_epilogue} mirrors the
    innermost store index ([d-1 - i] over the last output dimension), a
    realistic in-bounds index-remap bug. Exists so the differential fuzzer
    can demonstrate that it detects, shrinks, and reports fusion bugs
    (default [false]; never set outside tests). *)
