open Hidet_ir
module Def = Hidet_compute.Def
module Compiled = Hidet_sched.Compiled

let splice_at i replacement l =
  List.concat (List.mapi (fun j x -> if j = i then replacement else [ x ]) l)

let replace_param target replacement (k : Kernel.t) =
  {
    k with
    Kernel.params =
      List.concat_map
        (fun p -> if Buffer.equal p target then replacement else [ p ])
        k.Kernel.params;
  }

let fuse_prologue (anchor : Compiled.t) ~input_index (def : Def.t) =
  if not (Def.is_injective def) then
    invalid_arg
      (Printf.sprintf "fuse_prologue: %s is not injective" def.Def.name);
  let target =
    try List.nth anchor.Compiled.ins input_index
    with _ -> invalid_arg "fuse_prologue: input index out of range"
  in
  if def.Def.out_shape <> target.Buffer.dims then
    invalid_arg
      (Printf.sprintf
         "fuse_prologue: %s produces [%s] but anchor input %s is [%s]"
         def.Def.name
         (String.concat "," (List.map string_of_int def.Def.out_shape))
         target.Buffer.name
         (String.concat "," (List.map string_of_int target.Buffer.dims)));
  let p_ins =
    List.mapi
      (fun i shape -> Buffer.create (Printf.sprintf "p%d_%s" i def.Def.name) shape)
      def.Def.in_shapes
  in
  let rewrite_load buf idx =
    if Buffer.equal buf target then
      Def.scalar_to_expr
        ~inputs:(fun k idx' -> Expr.load (List.nth p_ins k) idx')
        ~axes:idx ~raxes:[] def.Def.body
    else Expr.Load (buf, idx)
  in
  let rewrite_kernel k =
    let k = Kernel.map_body (Stmt.map_exprs (Expr.map_loads rewrite_load)) k in
    replace_param target p_ins k
  in
  {
    anchor with
    Compiled.name = Printf.sprintf "%s+%s" def.Def.name anchor.Compiled.name;
    kernels = List.map rewrite_kernel anchor.Compiled.kernels;
    ins = splice_at input_index p_ins anchor.Compiled.ins;
  }

(* Fault injection for the differential fuzzer: when set, epilogue fusion
   mirrors the innermost store index, a realistic index-remap bug that stays
   in bounds (so only the differential check — not Verify or the interpreter
   bounds trap — can catch it). *)
let inject_index_bug = ref false

let maybe_mangle_out_idx (out_shape : int list) (idx : Expr.t list) =
  if not !inject_index_bug then idx
  else
    match (List.rev idx, List.rev out_shape) with
    | last :: rest, extent :: _ when extent > 1 ->
      List.rev (Expr.sub (Expr.int (extent - 1)) last :: rest)
    | _ -> idx

let fuse_epilogue (anchor : Compiled.t) (def : Def.t) =
  if not (Def.is_injective def) then
    invalid_arg (Printf.sprintf "fuse_epilogue: %s is not injective" def.Def.name);
  let bijection =
    match def.Def.bijection with
    | Some b -> b
    | None ->
      invalid_arg
        (Printf.sprintf "fuse_epilogue: %s has no index bijection" def.Def.name)
  in
  let target = anchor.Compiled.out in
  (match def.Def.in_shapes with
  | first :: _ when first = target.Buffer.dims -> ()
  | _ ->
    invalid_arg
      (Printf.sprintf "fuse_epilogue: %s input 0 does not match anchor output %s"
         def.Def.name target.Buffer.name));
  let new_out = Buffer.create ("out_" ^ def.Def.name) def.Def.out_shape in
  let extra_ins =
    List.filteri (fun i _ -> i > 0) def.Def.in_shapes
    |> List.mapi (fun i shape ->
           Buffer.create (Printf.sprintf "e%d_%s" (i + 1) def.Def.name) shape)
  in
  let rewrite_store buf idx value =
    if Buffer.equal buf target then begin
      let out_idx =
        maybe_mangle_out_idx def.Def.out_shape
          (List.map Simplify.expr (bijection idx))
      in
      let new_value =
        Def.scalar_to_expr
          ~inputs:(fun k idx' ->
            if k = 0 then value else Expr.load (List.nth extra_ins (k - 1)) idx')
          ~axes:out_idx ~raxes:[] def.Def.body
      in
      Stmt.store new_out out_idx new_value
    end
    else Stmt.store buf idx value
  in
  let rec rewrite_stmt (s : Stmt.t) =
    match s with
    | Stmt.Seq ss -> Stmt.seq (List.map rewrite_stmt ss)
    | For f -> Stmt.For { f with body = rewrite_stmt f.body }
    | If { cond; then_; else_ } ->
      Stmt.If
        { cond; then_ = rewrite_stmt then_; else_ = Option.map rewrite_stmt else_ }
    | Let l -> Stmt.Let { l with body = rewrite_stmt l.body }
    | Store { buf; indices; value } -> rewrite_store buf indices value
    | Mma _ | Sync_threads | Comment _ -> s
  in
  let rewrite_kernel k =
    let k = Kernel.map_body rewrite_stmt k in
    replace_param target (new_out :: extra_ins) k
  in
  {
    anchor with
    Compiled.name = Printf.sprintf "%s+%s" anchor.Compiled.name def.Def.name;
    kernels = List.map rewrite_kernel anchor.Compiled.kernels;
    ins = anchor.Compiled.ins @ extra_ins;
    out = new_out;
  }
