module G = Hidet_graph.Graph
module Op = Hidet_graph.Op
module Passes = Hidet_graph.Passes
module Compiled = Hidet_sched.Compiled
module MT = Hidet_sched.Matmul_template
module Tuner = Hidet_sched.Tuner
module Fuse = Hidet_fusion.Fuse
module Plan = Hidet_runtime.Plan
module Engine = Hidet_runtime.Engine
module GC = Hidet_runtime.Group_compiler
module Trace = Hidet_obs.Trace

type options = {
  lower_convs : bool;
  fuse : bool;
  allow_tensor_core : bool;
  allow_double_buffer : bool;
  deterministic_reduce : bool;
}

let default_options =
  {
    lower_convs = true;
    fuse = true;
    (* The paper's end-to-end evaluation runs fp32 (TF32 tensor cores are
       opt-in for cuDNN/cuBLAS and absent from the TVM baselines); the
       tensor-core path is exercised by the ablation benches and examples. *)
    allow_tensor_core = false;
    allow_double_buffer = true;
    deterministic_reduce = false;
  }

module Cache = Hidet_sched.Schedule_cache

type tuning_stats = {
  mutable fresh_cost : float;  (* simulated seconds of fresh trials *)
  mutable cached_cost : float;  (* simulated seconds served by the cache *)
  mutable tuner_wall : float;  (* wall seconds inside the tuning service *)
  billed : (string, unit) Hashtbl.t;
      (* workload keys already accounted for in this compile: tuning cost is
         per unique workload (the paper's Fig 14 quantity), so a model
         reusing one shape across many layers pays for it once *)
}

(* Hidet's per-measured-candidate cost: candidate compilation and
   measurement run in parallel on the host CPU (the paper's "enumerating
   all candidates within one minute"), so each measured candidate costs a
   fraction of the sequential measure-one-at-a-time price the loop-oriented
   tuners pay. Candidates the template rejects are free (they never reach
   the device); cache hits perform zero fresh trials. *)
let hidet_seconds_per_trial = Hidet_sched.Tuner.seconds_per_trial /. 4.

(* The tuning service: the process-global schedule cache in front of the
   parallel exhaustive tuner. Winners are re-instantiated per call site. *)
let tuned ?show ?search (stats : tuning_stats) ~device ~key ~candidates
    ~compile =
  let t0 = Unix.gettimeofday () in
  let r =
    Cache.tune ~seconds_per_trial:hidet_seconds_per_trial ~engine:"hidet"
      ?show ?search ~device ~key ~candidates ~compile ()
  in
  stats.tuner_wall <- stats.tuner_wall +. (Unix.gettimeofday () -. t0);
  (if not (Hashtbl.mem stats.billed key) then (
     Hashtbl.add stats.billed key ();
     match r with
     | Some (_, _, Cache.Fresh st) ->
       stats.fresh_cost <- stats.fresh_cost +. st.Tuner.simulated_seconds
     | Some (_, _, Cache.Hit e) ->
       stats.cached_cost <- stats.cached_cost +. e.Cache.simulated_seconds
     | None -> ()));
  Option.map (fun (_, compiled, _) -> compiled) r

let restrict_space options space =
  List.filter
    (fun (c : MT.config) ->
      (options.allow_tensor_core || not c.MT.use_tensor_core)
      && (options.allow_double_buffer || c.MT.stages = 1)
      && ((not options.deterministic_reduce)
         (* Ascending-k accumulation only: no split-k partial sums, no MMA
            tiles, and one block_k so partial-tile zero padding is the
            same for every workload that shares a k extent. *)
         || (c.MT.split_k = 1 && c.MT.block_k = 8 && not c.MT.use_tensor_core)))
    space

(* --- anchor scheduling ------------------------------------------------------ *)

let rows_cols shape =
  let cols = List.nth shape (List.length shape - 1) in
  (List.fold_left ( * ) 1 shape / cols, cols)

(* Options that restrict the candidate space must be part of the workload
   signature, or a cache entry tuned under one restriction would answer for
   another. *)
let options_sig options =
  Printf.sprintf "tc%b_db%b%s" options.allow_tensor_core
    options.allow_double_buffer
    (if options.deterministic_reduce then "_det" else "")

(* Deterministic mode pins the row/reduction templates to one block size:
   the combine-tree shape then depends only on the row length, never on
   how many rows the workload happens to have (i.e. the batch), so batch-
   sliced fragments reduce in exactly the single-device order. *)
let det_sig options = if options.deterministic_reduce then "_det" else ""

let schedule_matmul options device stats ~sa ~sb ~out_rank =
  let a_batched, batch_a, m, k =
    match sa with
    | [ m; k ] -> (false, 1, m, k)
    | [ b; m; k ] -> (true, b, m, k)
    | _ -> invalid_arg "hidet: matmul A rank"
  in
  let b_batched, batch_b, n =
    match sb with
    | [ _; n ] -> (false, 1, n)
    | [ b; _; n ] -> (true, b, n)
    | _ -> invalid_arg "hidet: matmul B rank"
  in
  let batch = max batch_a batch_b in
  let key =
    Printf.sprintf "matmul_%d_%b_%b_%d_%d_%d_%s" batch a_batched b_batched m n
      k (options_sig options)
  in
  let space = restrict_space options (Hidet_sched.Space.matmul_with_split_k ~m ~n) in
  (* Matmul spaces are the only ones big enough for guided search to pay;
     the row/reduce spaces (a handful of block sizes) stay exhaustive. The
     process-global default mode is how `hidetc --search` reaches through
     the generic engine interface. *)
  let search = Hidet_sched.Search.for_matmul () in
  let compiled =
    tuned ~show:MT.config_to_string ~search stats ~device ~key
      ~candidates:space
      ~compile:(fun cfg -> MT.compile ~batch ~a_batched ~b_batched ~m ~n ~k cfg)
  in
  match compiled with
  | None -> failwith "hidet: no feasible matmul schedule"
  | Some c ->
    (* The template always produces [batch, m, n]; adapt rank-2 graphs. *)
    if out_rank = 2 then
      Fuse.fuse_epilogue c (Op.to_def (Op.Reshape [ m; n ]) [ [ 1; m; n ] ])
    else c

let block_candidates = [ 64; 128; 256 ]

let schedule_anchor options device stats g (anchor : G.node) =
  let in_shapes = List.map (G.node_shape g) anchor.G.inputs in
  match (anchor.G.op, in_shapes) with
  | Op.Matmul, [ sa; sb ] ->
    schedule_matmul options device stats ~sa ~sb
      ~out_rank:(List.length anchor.G.shape)
  | Op.Softmax, [ s ] ->
    let rows, cols = rows_cols s in
    let candidates =
      if options.deterministic_reduce then [ 128 ] else block_candidates
    in
    Option.get
      (tuned ~show:(Printf.sprintf "block=%d") stats ~device
         ~key:(Printf.sprintf "softmax_%d_%d%s" rows cols (det_sig options))
         ~candidates
         ~compile:(fun b ->
           Hidet_sched.Row_templates.softmax ~block_size:b ~rows ~cols ()))
  | Op.Layernorm { eps }, [ s; _; _ ] ->
    let rows, cols = rows_cols s in
    let candidates =
      if options.deterministic_reduce then [ 128 ] else block_candidates
    in
    Option.get
      (tuned ~show:(Printf.sprintf "block=%d") stats ~device
         ~key:(Printf.sprintf "layernorm_%d_%d%s" rows cols (det_sig options))
         ~candidates
         ~compile:(fun b ->
           Hidet_sched.Row_templates.layernorm ~block_size:b ~eps ~rows ~cols ()))
  | Op.Global_avg_pool, [ s ] ->
    let def = Op.to_def anchor.G.op [ s ] in
    let key =
      Printf.sprintf "gap_%s%s"
        (String.concat "x" (List.map string_of_int s))
        (det_sig options)
    in
    let candidates =
      if options.deterministic_reduce then
        List.filter
          (fun (c : Hidet_sched.Reduce_template.config) -> c.block_size = 128)
          Hidet_sched.Reduce_template.space
      else Hidet_sched.Reduce_template.space
    in
    let compiled =
      tuned stats ~device ~key
        ~show:(fun (c : Hidet_sched.Reduce_template.config) ->
          Printf.sprintf "block=%d" c.block_size)
        ~candidates
        ~compile:(fun cfg ->
          Hidet_sched.Reduce_template.schedule ~config:cfg def)
    in
    Option.value compiled ~default:(Hidet_sched.Rule_based.schedule def)
  | _ ->
    (* Direct convolutions, depthwise, pooling, leftover injective chains,
       concat: rule-based scheduling from the computation definition. *)
    Hidet_sched.Rule_based.schedule (Op.to_def anchor.G.op in_shapes)

(* --- the engine ---------------------------------------------------------------- *)

let compile_plan ?(options = default_options) device g =
  Trace.span
    ~attrs:(fun () ->
      [ ("engine", "hidet"); ("model", G.get_name g); ("device", device.Hidet_gpu.Device.name) ])
    "compile_plan"
    (fun root ->
      let t0 = Unix.gettimeofday () in
      let g =
        if options.lower_convs then
          Trace.span "lower_conv_to_gemm" (fun _ -> Passes.lower_conv_to_gemm g)
        else g
      in
      let g = Trace.span "graph_optimize" (fun _ -> Passes.optimize g) in
      let stats =
        {
          fresh_cost = 0.;
          cached_cost = 0.;
          tuner_wall = 0.;
          billed = Hashtbl.create 16;
        }
      in
      let gc_config =
        {
          GC.schedule_anchor =
            (fun g n -> schedule_anchor options device stats g n);
          may_fuse_prologue = (fun _ -> options.fuse);
          may_fuse_epilogue = (fun _ -> options.fuse);
        }
      in
      let plan = GC.compile_graph gc_config g in
      let latency =
        Trace.span "estimate_latency" (fun _ -> Plan.latency device plan)
      in
      Trace.add root "kernels" (string_of_int (Plan.kernel_count plan));
      Trace.add root "latency_us" (Printf.sprintf "%.3f" (latency *. 1e6));
      let result =
        {
          Engine.engine = "hidet";
          model = G.get_name g;
          latency;
          tuning_cost = stats.fresh_cost;
          cached_tuning_cost = stats.cached_cost;
          tuning_wall = stats.tuner_wall;
          compile_wall = Unix.gettimeofday () -. t0;
          kernel_count = Plan.kernel_count plan;
          plan = Some plan;
        }
      in
      (plan, result))

let name = "hidet"

let caps =
  {
    Engine.graph_opt = Engine.High;
    kernel_opt = Engine.High;
    tuning_time = Engine.High;
    engineering_effort = Engine.Medium;
  }

let compile device g = snd (compile_plan device g)
