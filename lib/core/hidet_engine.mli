(** The Hidet compilation pipeline (the paper's Fig. 10):

    1. graph-level optimizations (constant folding, dead-code elimination)
       plus lowering of convolutions to implicit GEMM;
    2. fusion partitioning (anchor + injective prologues + bijective
       epilogues);
    3. anchor scheduling — template-based for matmul (hardware-centric
       space, exhaustively tuned, workload-cached), row templates for
       softmax/layernorm, block-parallel reduction for global pooling,
       rule-based for everything else;
    4. post-scheduling fusion of the group into the scheduled program
       (falling back to standalone rule-based kernels when a neighbor
       cannot be fused, e.g. rank-incompatible transforms);
    5. lowering to CUDA C text + executable plan on the simulator. *)

type options = {
  lower_convs : bool;  (** implicit-GEMM lowering (default true) *)
  fuse : bool;  (** post-scheduling fusion (default true; off = ablation) *)
  allow_tensor_core : bool;  (** default true; off = ablation *)
  allow_double_buffer : bool;  (** default true; off = ablation *)
  deterministic_reduce : bool;
      (** Restrict tuning to reduction-order-canonical schedules (default
          false). Matmul candidates are pinned to [split_k = 1],
          [block_k = 8], no tensor cores — every surviving config
          accumulates each output element in strictly ascending k order —
          and the row/reduction templates (softmax, layernorm, global
          pooling) are pinned to one block size, so their shared-memory
          combine trees are shape-independent. Under this mode, two plans
          that compute the same output element — at any batch size or
          column slice — produce bit-identical results, which is what
          lets the shard runtime promise bit-equality between a sharded
          plan and its single-device oracle whenever the partitioning
          preserves reduction extents. *)
}

val default_options : options

val compile_plan :
  ?options:options ->
  Hidet_gpu.Device.t ->
  Hidet_graph.Graph.t ->
  Hidet_runtime.Plan.t * Hidet_runtime.Engine.result
(** Compile to an executable plan plus the engine result record (latency,
    tuning cost, kernel count). Tuning goes through the process-global
    {!Hidet_sched.Schedule_cache} keyed by (device, workload signature,
    space-restricting options): the first compile of a workload pays fresh
    trials ([result.tuning_cost]); later compiles — same model again,
    another model sharing shapes, or a warm-started process — perform zero
    fresh trials and report the avoided cost as
    [result.cached_tuning_cost]. *)

include Hidet_runtime.Engine.S
