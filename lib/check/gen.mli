(** Seeded random generation of differential-test cases.

    Two generators, per the paper's two program levels:

    - {b computation definitions}: random {!Hidet_compute.Def.scalar} trees
      over random shapes, with optional Sum/Max reductions, padding [Sel]s
      and index bijections. Index expressions are drawn from a fixed pattern
      vocabulary ({!idx_pat}) from which each input's extents are {e
      derived}, so every generated definition is in-bounds by construction
      — out-of-bounds accesses found by the interpreter are then real bugs
      in a lowering, never generator noise;
    - {b graphs}: small DAGs over the {!Hidet_graph.Op} vocabulary with
      shape-inference-valid wiring. Matmul/conv dimensions are quantized to
      a small set so the process-global schedule cache absorbs repeated
      tuning across cases.

    Everything is derived from an explicit [Random.State.t]; case [i] of a
    suite uses [Random.State.make [| seed; i |]], so any case replays from
    [(seed, i)] alone. *)

(** Per-dimension index pattern for reading one input dimension. *)
type idx_pat =
  | P_axis of int  (** [idx = i_a]; extent = out dim *)
  | P_raxis of int  (** [idx = r_a]; extent = reduce dim *)
  | P_axis_plus_raxis of int * int
      (** stencil: [idx = i_a + r_b]; extent = out + red - 1 *)
  | P_strided of int * int  (** [idx = i_a * s]; extent = (out-1)*s + 1 *)
  | P_rev of int  (** [idx = (out-1) - i_a]; extent = out dim *)
  | P_shifted of int * int
      (** padding: [idx = i_a - s], guarded by a [Sel] returning 0 when
          [idx < 0]; extent = out dim *)
  | P_const of int  (** [idx = c]; extent = c + 1 *)

(** Scalar-body tree. Leaves read whole inputs at their fixed index
    patterns, so bounds are decided entirely by the patterns. *)
type body =
  | B_in of int  (** read input [k] at its pattern indices *)
  | B_const of float
  | B_axis of int  (** output axis value as a float *)
  | B_bin of Hidet_ir.Expr.binop * body * body
  | B_un of Hidet_ir.Expr.unop * body
  | B_sel of int * int * body * body
      (** [B_sel (a, t, x, y)]: [if i_a < t then x else y] *)

type def_spec = {
  ds_name : string;
  ds_out : int list;
  ds_reduce : (int list * Hidet_compute.Def.reduce_kind) option;
  ds_inputs : idx_pat list list;  (** one pattern list per input *)
  ds_body : body;
}

(** Epilogue operators fused onto an anchor (all bijective in input 0). *)
type epi =
  | E_scale of float
  | E_relu
  | E_tanh
  | E_add_residual  (** adds an extra same-shape input *)
  | E_reshape_flat  (** reshape to rank 1 *)
  | E_transpose  (** swap the two dims; only applied at rank 2 *)

type case =
  | C_def of { spec : def_spec; pro : bool; epis : epi list }
      (** [pro]: also fuse a generated prologue into input 0 *)
  | C_matmul of {
      batch : int;
      m : int;
      n : int;
      k : int;
      n_cfgs : int;  (** template configs sampled from the space *)
      pro : bool;
      epis : epi list;
    }
  | C_conv of {
      n : int;
      c : int;
      h : int;
      w : int;
      oc : int;
      kh : int;
      kw : int;
      stride : int;
      pad : int;
    }
  | C_graph of Hidet_graph.Graph.t

val build_def : def_spec -> Hidet_compute.Def.t
(** Materialize a spec: derive input extents from the patterns, build the
    scalar body (wrapping shifted reads in padding [Sel]s), and return a
    definition that satisfies [Def.well_formed]. *)

val epi_def :
  epi -> int list -> (Hidet_compute.Def.t * int list) option
(** [epi_def e shape]: the epilogue's definition over an anchor output of
    [shape], and the resulting shape; [None] when the epilogue does not
    apply at this shape (e.g. transpose at rank <> 2). *)

val gen_def_case : Random.State.t -> max_size:int -> case
val gen_matmul_case : Random.State.t -> max_size:int -> case
val gen_conv_case : Random.State.t -> max_size:int -> case

val gen_graph : Random.State.t -> max_size:int -> Hidet_graph.Graph.t
(** A standalone DAG generator (also used directly by the HGF round-trip
    property test). Node count and shapes scale with [max_size]. *)

val gen_case : Random.State.t -> max_size:int -> case
(** Top-level: picks a case kind (weighted: defs and graphs dominate) and
    generates it. *)

val case_to_string : case -> string
(** Self-contained textual repro: HGF text for graphs, the spec plus the
    materialized definition for defs, the parameter tuple for
    matmul/conv. *)

val case_kind : case -> string
