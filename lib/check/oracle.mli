(** Differential oracles: run one generated case through every lowering path
    and compare each result against the CPU reference within an ULP-scaled
    tolerance.

    Paths (the four surfaces named in the issue):
    - [Rule]: rule-based schedule of the computation definition, executed on
      the interpreter (for graphs: the whole pipeline with implicit-GEMM
      lowering and fusion off);
    - [Template]: template-based schedules sampled from the hardware-centric
      space — matmul configs (predicated partial tiles included, plus a
      split-k variant when available) and the block-parallel reduction
      template (for graphs: the pipeline with fusion off, templates on);
    - [Fused]: post-scheduling fusion — generated prologue/epilogue chains
      fused into a scheduled anchor, or the full engine pipeline for graphs;
    - [Baseline]: loop-oriented lowerings ({!Hidet_baselines.Loop_sched})
      where the input-centric space is non-empty;
    - [Compiled_backend] ("compiled"): the closure-compiling simulator
      backend ({!Hidet_gpu.Compile_exec}) versus the legacy tree-walking
      interpreter on the same schedule — results must match {e bit for
      bit} (the backends promise identical semantics, so no tolerance),
      and the compiled result must also match the CPU reference.

    Outcome policy: a structural [Invalid_argument] while {e constructing} a
    kernel (inapplicable fusion, empty baseline space) is a [Skip] — the
    path genuinely does not apply; any exception while {e running} a built
    kernel (interpreter traps, verification failures) is a [Fail], as is a
    numeric mismatch. *)

type path =
  | Rule
  | Template
  | Fused
  | Baseline
  | Compiled_backend
  | Native
  | Sharded
      (** ("sharded") differential shard equivalence: wrap the case as a
          graph (matmul and graph cases only), derive a device count
          (1-4) and microbatch count from the case seed, and hold every
          applicable partitioning strategy — data, tensor gather/reduce,
          pipeline — to {!Hidet_shard.Shard.verify}'s contract against
          the single-device deterministic baseline (bitwise, or the ULP
          budget for the all-reduce epilogue) plus the repo-wide graph
          tolerance against the CPU reference. Skips when no strategy
          applies; failures embed the shard spec for reproduction. *)

(** The default sweep. Excludes [Native] (opt-in via [--paths native]): it
    holds the dynlinked native backend bit-for-bit to the closure backend
    — plus the CPU reference — but pays an [ocamlopt] per distinct kernel,
    which would dominate the quick fuzz smoke. [Native] skips with the
    probe's reason when the toolchain is unavailable. Also excludes
    [Sharded] (opt-in via [--paths sharded], exercised by
    [make shard-smoke]): it compiles one plan per device per applicable
    strategy. *)
val all_paths : path list
val path_to_string : path -> string
val path_of_string : string -> path option

type outcome =
  | Pass of int  (** number of individual comparisons performed *)
  | Skip of string
  | Fail of string

val run_case :
  device:Hidet_gpu.Device.t ->
  paths:path list ->
  input_seed:int ->
  Gen.case ->
  (path * outcome) list
(** Evaluate the case on every requested path. Input tensors are derived
    deterministically from [input_seed]. *)

val failed : (path * outcome) list -> (path * string) option
(** First failing path, if any. *)
