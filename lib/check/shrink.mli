(** Greedy case minimization.

    [shrink still_fails case] repeatedly tries structurally smaller variants
    of [case] (halved shapes, dropped reductions, pruned scalar trees,
    dropped fusion stages, truncated or bypassed graph nodes) and commits to
    the first variant on which [still_fails] returns [true], until no
    candidate reproduces the failure or the evaluation budget is exhausted.

    Shrinking operates on the generator's {e spec}, never on built
    artifacts, so every intermediate candidate is as well-formed as a
    freshly generated case and its repro text is printable and
    re-runnable. *)

val candidates : Gen.case -> Gen.case list
(** Structurally smaller variants, most aggressive first. Exposed for
    tests. *)

val shrink : ?max_tries:int -> (Gen.case -> bool) -> Gen.case -> Gen.case
(** [max_tries] bounds the number of [still_fails] evaluations (default
    200). *)
