module Expr = Hidet_ir.Expr
module Def = Hidet_compute.Def
module Graph = Hidet_graph.Graph
module Op = Hidet_graph.Op
module Graph_io = Hidet_graph.Graph_io

type idx_pat =
  | P_axis of int
  | P_raxis of int
  | P_axis_plus_raxis of int * int
  | P_strided of int * int
  | P_rev of int
  | P_shifted of int * int
  | P_const of int

type body =
  | B_in of int
  | B_const of float
  | B_axis of int
  | B_bin of Expr.binop * body * body
  | B_un of Expr.unop * body
  | B_sel of int * int * body * body

type def_spec = {
  ds_name : string;
  ds_out : int list;
  ds_reduce : (int list * Def.reduce_kind) option;
  ds_inputs : idx_pat list list;
  ds_body : body;
}

type epi =
  | E_scale of float
  | E_relu
  | E_tanh
  | E_add_residual
  | E_reshape_flat
  | E_transpose

type case =
  | C_def of { spec : def_spec; pro : bool; epis : epi list }
  | C_matmul of {
      batch : int;
      m : int;
      n : int;
      k : int;
      n_cfgs : int;
      pro : bool;
      epis : epi list;
    }
  | C_conv of {
      n : int;
      c : int;
      h : int;
      w : int;
      oc : int;
      kh : int;
      kw : int;
      stride : int;
      pad : int;
    }
  | C_graph of Graph.t

(* --- spec -> definition ----------------------------------------------------- *)

let pat_extent ~out ~red = function
  | P_axis a -> List.nth out a
  | P_raxis r -> List.nth red r
  | P_axis_plus_raxis (a, r) -> List.nth out a + List.nth red r - 1
  | P_strided (a, s) -> ((List.nth out a - 1) * s) + 1
  | P_rev a -> List.nth out a
  | P_shifted (a, _) -> List.nth out a
  | P_const c -> c + 1

let pat_index ~out = function
  | P_axis a -> Def.axis a
  | P_raxis r -> Def.raxis r
  | P_axis_plus_raxis (a, r) -> Def.(axis a + raxis r)
  | P_strided (a, s) -> Def.(axis a * iconst s)
  | P_rev a ->
    let dm1 = List.nth out a - 1 in
    Def.(iconst dm1 - axis a)
  | P_shifted (a, s) -> Def.(axis a - iconst s)
  | P_const c -> Def.iconst c

let build_def spec =
  let out = spec.ds_out in
  let red = match spec.ds_reduce with None -> [] | Some (e, _) -> e in
  let in_shapes =
    List.map (List.map (pat_extent ~out ~red)) spec.ds_inputs
  in
  (* A shifted pattern reads index [i - s], negative for the first [s]
     output positions: guard the whole read with a padding Sel (the Sel
     short-circuits in both the reference evaluator and the interpreter's
     Select, so the guarded load never executes out of bounds). *)
  let read k =
    let pats = List.nth spec.ds_inputs k in
    let load = Def.input k (List.map (pat_index ~out) pats) in
    let guards =
      List.filter_map
        (function
          | P_shifted (a, s) ->
            Some Def.(ges (axis a - iconst s) (iconst 0))
          | _ -> None)
        pats
    in
    match guards with
    | [] -> load
    | g :: gs ->
      Def.sel (List.fold_left Def.ands g gs) load (Def.const 0.)
  in
  let rec scalar = function
    | B_in k -> read k
    | B_const f -> Def.const f
    | B_axis a -> Def.axis a
    | B_bin (op, a, b) -> Def.Bin (op, scalar a, scalar b)
    | B_un (op, a) -> Def.Un (op, scalar a)
    | B_sel (a, t, x, y) ->
      Def.sel Def.(lts (axis a) (iconst t)) (scalar x) (scalar y)
  in
  Def.create ?reduce:spec.ds_reduce ~name:spec.ds_name ~in_shapes
    ~out_shape:out (scalar spec.ds_body)

(* --- epilogues -------------------------------------------------------------- *)

let numel = List.fold_left ( * ) 1

let epi_def e shape =
  let via op in_shapes =
    let d = Op.to_def op in_shapes in
    Some (d, d.Def.out_shape)
  in
  match e with
  | E_scale f -> via (Op.Unary (Op.Scale_by f)) [ shape ]
  | E_relu -> via (Op.Unary Op.Relu) [ shape ]
  | E_tanh -> via (Op.Unary Op.Tanh_act) [ shape ]
  | E_add_residual -> via (Op.Binary Op.Add) [ shape; shape ]
  | E_reshape_flat -> via (Op.Reshape [ numel shape ]) [ shape ]
  | E_transpose -> (
    match shape with
    | [ _; _ ] -> via (Op.Transpose [ 1; 0 ]) [ shape ]
    | _ -> None)

(* --- random pieces ---------------------------------------------------------- *)

let pick rs l = List.nth l (Random.State.int rs (List.length l))
let dim rs max_size = 1 + Random.State.int rs max_size

let gen_epis rs =
  let vocab =
    [ E_scale 0.5; E_relu; E_tanh; E_add_residual; E_reshape_flat; E_transpose ]
  in
  List.init (Random.State.int rs 3) (fun _ -> pick rs vocab)

let gen_pat rs ~rank ~rrank =
  let axis () = Random.State.int rs rank in
  let choices =
    [
      (4, fun () -> P_axis (axis ()));
      (1, fun () -> P_strided (axis (), 2 + Random.State.int rs 2));
      (1, fun () -> P_rev (axis ()));
      (1, fun () -> P_shifted (axis (), 1 + Random.State.int rs 2));
      (1, fun () -> P_const (Random.State.int rs 3));
    ]
    @
    if rrank > 0 then
      [
        (3, fun () -> P_raxis (Random.State.int rs rrank));
        (2, fun () -> P_axis_plus_raxis (axis (), Random.State.int rs rrank));
      ]
    else []
  in
  let total = List.fold_left (fun a (w, _) -> a + w) 0 choices in
  let rec go n = function
    | (w, f) :: rest -> if n < w then f () else go (n - w) rest
    | [] -> assert false
  in
  go (Random.State.int rs total) choices

let gen_body rs ~rank ~n_inputs =
  let binops = [ Expr.Add; Expr.Sub; Expr.Mul; Expr.Min; Expr.Max ] in
  let unops = [ Expr.Neg; Expr.Abs; Expr.Tanh ] in
  (* Combine every input exactly once, then decorate: all inputs are
     exercised and tree size stays bounded. *)
  let leaves = List.init n_inputs (fun k -> B_in k) in
  let combined =
    match leaves with
    | [] -> B_const 1.0
    | first :: rest ->
      List.fold_left (fun acc l -> B_bin (pick rs binops, acc, l)) first rest
  in
  let decorate b =
    match Random.State.int rs 5 with
    | 0 -> B_un (pick rs unops, b)
    | 1 -> B_bin (pick rs binops, b, B_const (Random.State.float rs 2.0 -. 1.0))
    | 2 when rank > 0 ->
      B_bin (Expr.Add, b, B_axis (Random.State.int rs rank))
    | 3 when rank > 0 ->
      let a = Random.State.int rs rank in
      B_sel (a, 1 + Random.State.int rs 2, b, B_const 0.25)
    | _ -> b
  in
  decorate (decorate combined)

let gen_def_spec rs ~max_size =
  let rank = 1 + Random.State.int rs 3 in
  let out = List.init rank (fun _ -> dim rs max_size) in
  let reduce =
    if Random.State.bool rs then
      let rrank = 1 + Random.State.int rs 2 in
      let ext = List.init rrank (fun _ -> dim rs max_size) in
      let kind =
        if Random.State.int rs 4 = 0 then Def.Max_reduce else Def.Sum
      in
      Some (ext, kind)
    else None
  in
  let rrank = match reduce with None -> 0 | Some (e, _) -> List.length e in
  let n_inputs = 1 + Random.State.int rs 3 in
  let inputs =
    List.init n_inputs (fun _ ->
        let in_rank = 1 + Random.State.int rs 3 in
        List.init in_rank (fun _ -> gen_pat rs ~rank ~rrank))
  in
  {
    ds_name = "fuzz_def";
    ds_out = out;
    ds_reduce = reduce;
    ds_inputs = inputs;
    ds_body = gen_body rs ~rank ~n_inputs;
  }

let gen_def_case rs ~max_size =
  let spec = gen_def_spec rs ~max_size in
  C_def { spec; pro = Random.State.int rs 4 = 0; epis = gen_epis rs }

let gen_matmul_case rs ~max_size =
  let side () = 1 + Random.State.int rs (4 * max_size) in
  C_matmul
    {
      batch = (if Random.State.int rs 5 = 0 then 2 else 1);
      m = side ();
      n = side ();
      k = side ();
      n_cfgs = 2 + Random.State.int rs 2;
      pro = Random.State.int rs 3 = 0;
      epis = gen_epis rs;
    }

let gen_conv_case rs ~max_size =
  let hw = 3 + Random.State.int rs (max 1 (max_size - 2)) in
  let kk = pick rs [ 1; 3 ] in
  C_conv
    {
      n = 1 + Random.State.int rs 2;
      c = 1 + Random.State.int rs 4;
      h = hw;
      w = hw;
      oc = 1 + Random.State.int rs 4;
      kh = kk;
      kw = kk;
      stride = pick rs [ 1; 1; 2 ];
      pad = (if kk = 1 then 0 else pick rs [ 0; 1 ]);
    }

(* --- graph generator -------------------------------------------------------- *)

(* Quantized dimension menus: tuning an anchor is the expensive step of the
   graph oracle, so repeated cases should hit the process-global schedule
   cache rather than retune. *)
let mat_dims = [ 8; 16; 32 ]
let chan_dims = [ 3; 4; 8 ]
let spatial_dims = [ 8; 14 ]

let gen_graph rs ~max_size =
  let g = Graph.create () in
  Graph.name g (Printf.sprintf "fuzz_graph_%d" (Random.State.int rs 100000));
  let cseed () = Random.State.int rs 1_000_000 in
  let start_4d = Random.State.bool rs in
  let x0 =
    if start_4d then
      Graph.input g
        [ 1; pick rs chan_dims; pick rs spatial_dims; pick rs spatial_dims ]
    else Graph.input g [ pick rs mat_dims; pick rs mat_dims ]
  in
  let last = ref x0 in
  let n_ops = 2 + Random.State.int rs (max 2 (max_size - 2)) in
  for _ = 1 to n_ops do
    let t = !last in
    let st = Graph.node_shape g t in
    let same_shape_peer () =
      let cands =
        List.filter
          (fun (n : Graph.node) ->
            n.Graph.id <> t && n.Graph.shape = st
            && n.Graph.op <> Op.Input
            && (match n.Graph.op with Op.Constant _ -> false | _ -> true))
          (Graph.nodes g)
      in
      match cands with [] -> None | l -> Some (pick rs l).Graph.id
    in
    let choices =
      (* Every choice appends one op consuming [t] (plus fresh constants). *)
      [
        (fun () -> Graph.relu g t);
        (fun () -> Graph.gelu g t);
        (fun () -> Graph.add_op g (Op.Unary (Op.Scale_by 0.5)) [ t ]);
        (fun () -> Graph.add_op g (Op.Unary (Op.Clip (0., 6.))) [ t ]);
        (fun () -> Graph.add_op g (Op.Unary Op.Sigmoid) [ t ]);
        (fun () ->
          let b = Graph.constant_rand g ~seed:(cseed ()) [ List.hd (List.rev st) ] in
          Graph.bias_add g t b);
        (fun () ->
          match same_shape_peer () with
          | Some p -> Graph.add g t p
          | None -> Graph.relu g t);
        (fun () -> Graph.softmax g t);
      ]
      @ (match st with
        | [ _; b ] ->
          [
            (fun () ->
              let w = Graph.constant_rand g ~seed:(cseed ()) [ b; pick rs mat_dims ] in
              Graph.matmul g t w);
            (fun () -> Graph.transpose g t [ 1; 0 ]);
            (fun () ->
              let gamma = Graph.constant_rand g ~seed:(cseed ()) [ b ] in
              let beta = Graph.constant_rand g ~seed:(cseed ()) [ b ] in
              Graph.layernorm g t ~gamma ~beta);
            (fun () -> Graph.reshape g t [ numel st ]);
          ]
        | _ -> [])
      @
      match st with
      | [ _; c; h; w ] ->
        [
          (fun () ->
            let oc = pick rs chan_dims in
            let wt = Graph.constant_rand g ~seed:(cseed ()) [ oc; c; 3; 3 ] in
            Graph.conv2d g t wt ~stride:1 ~padding:1);
          (fun () ->
            let wt = Graph.constant_rand g ~seed:(cseed ()) [ c; 1; 3; 3 ] in
            Graph.depthwise_conv2d g t wt ~stride:1 ~padding:1);
          (fun () ->
            let scale = Graph.constant_rand g ~seed:(cseed ()) [ c ] in
            let shift = Graph.constant_rand g ~seed:(cseed ()) [ c ] in
            Graph.scale_shift g t ~scale ~shift);
          (fun () -> Graph.global_avgpool g t);
          (fun () ->
            if h >= 2 && w >= 2 && h mod 2 = 0 && w mod 2 = 0 then
              Graph.maxpool g t ~kernel:2 ~stride:2 ~padding:0
            else Graph.relu g t);
        ]
      | _ -> []
    in
    last := (pick rs choices) ()
  done;
  Graph.set_outputs g [ !last ];
  g

let gen_graph_case rs ~max_size = C_graph (gen_graph rs ~max_size)

let gen_case rs ~max_size =
  match Random.State.int rs 10 with
  | 0 | 1 | 2 | 3 -> gen_def_case rs ~max_size
  | 4 | 5 -> gen_matmul_case rs ~max_size
  | 6 -> gen_conv_case rs ~max_size
  | _ -> gen_graph_case rs ~max_size

(* --- printing --------------------------------------------------------------- *)

let pat_to_string = function
  | P_axis a -> Printf.sprintf "i%d" a
  | P_raxis r -> Printf.sprintf "r%d" r
  | P_axis_plus_raxis (a, r) -> Printf.sprintf "i%d+r%d" a r
  | P_strided (a, s) -> Printf.sprintf "i%d*%d" a s
  | P_rev a -> Printf.sprintf "rev(i%d)" a
  | P_shifted (a, s) -> Printf.sprintf "i%d-%d(pad)" a s
  | P_const c -> string_of_int c

let epi_to_string = function
  | E_scale f -> Printf.sprintf "scale(%g)" f
  | E_relu -> "relu"
  | E_tanh -> "tanh"
  | E_add_residual -> "add_residual"
  | E_reshape_flat -> "reshape_flat"
  | E_transpose -> "transpose"

let epis_to_string epis =
  if epis = [] then "none" else String.concat "," (List.map epi_to_string epis)

let case_kind = function
  | C_def _ -> "def"
  | C_matmul _ -> "matmul"
  | C_conv _ -> "conv"
  | C_graph _ -> "graph"

let case_to_string = function
  | C_def { spec; pro; epis } ->
    let d = build_def spec in
    Format.asprintf
      "def case:@\n  %a@\n  input patterns: %s@\n  prologue: %b  epilogues: %s"
      Def.pp d
      (String.concat " ; "
         (List.map
            (fun pats -> "[" ^ String.concat ", " (List.map pat_to_string pats) ^ "]")
            spec.ds_inputs))
      pro (epis_to_string epis)
  | C_matmul { batch; m; n; k; n_cfgs; pro; epis } ->
    Printf.sprintf
      "matmul case: batch=%d m=%d n=%d k=%d configs=%d prologue=%b epilogues=%s"
      batch m n k n_cfgs pro (epis_to_string epis)
  | C_conv { n; c; h; w; oc; kh; kw; stride; pad } ->
    Printf.sprintf "conv case: x=[%d,%d,%d,%d] w=[%d,%d,%d,%d] stride=%d pad=%d"
      n c h w oc c kh kw stride pad
  | C_graph g -> "graph case (HGF):\n" ^ Graph_io.to_string g
