module Trace = Hidet_obs.Trace
module Metrics = Hidet_obs.Metrics

type failure = {
  f_index : int;
  f_seed : int;
  f_kind : string;
  f_path : Oracle.path;
  f_message : string;
  f_repro : string;
}

type summary = {
  s_seed : int;
  s_cases : int;
  s_checks : int;
  s_skips : int;
  s_per_path : (Oracle.path * int) list;
  s_failures : failure list;
}

let ok s = s.s_failures = []

let input_seed_of ~seed i = (seed * 1_000_003) + (i * 7919) + 13

let c_cases = lazy (Metrics.counter "check.cases")
let c_checks = lazy (Metrics.counter "check.checks")
let c_skips = lazy (Metrics.counter "check.skips")
let c_failures = lazy (Metrics.counter "check.failures")

let path_counter p =
  Metrics.counter ("check.path." ^ Oracle.path_to_string p)

let repro_text ~seed ~index ~paths ~max_size shrunk =
  let path_arg =
    if List.length paths = List.length Oracle.all_paths then ""
    else
      Printf.sprintf " --paths %s"
        (String.concat "," (List.map Oracle.path_to_string paths))
  in
  Printf.sprintf
    "rerun: hidetc fuzz --seed %d --cases 1 --offset %d --max-size %d%s\n\
     shrunk case:\n%s"
    seed index max_size path_arg
    (Gen.case_to_string shrunk)

let run_suite ?(device = Hidet_gpu.Device.rtx3090)
    ?(paths = Oracle.all_paths) ?(max_size = 8) ?(offset = 0)
    ?(max_shrunk = 5) ?progress ~seed ~cases () =
  let checks = ref 0 and skips = ref 0 in
  let per_path = Hashtbl.create 4 in
  let bump_path p n =
    Hashtbl.replace per_path p
      (n + try Hashtbl.find per_path p with Not_found -> 0);
    Metrics.add (path_counter p) n
  in
  let failures = ref [] in
  let shrunk_count = ref 0 in
  for i = offset to offset + cases - 1 do
    let rs = Random.State.make [| seed; i |] in
    let case = Gen.gen_case rs ~max_size in
    (match progress with Some f -> f i case | None -> ());
    Metrics.incr (Lazy.force c_cases);
    Trace.span "fuzz_case"
      ~attrs:(fun () ->
        [ ("index", string_of_int i); ("kind", Gen.case_kind case) ])
      (fun span ->
        let input_seed = input_seed_of ~seed i in
        let results = Oracle.run_case ~device ~paths ~input_seed case in
        List.iter
          (fun (p, outcome) ->
            match outcome with
            | Oracle.Pass n ->
              checks := !checks + n;
              Metrics.add (Lazy.force c_checks) n;
              bump_path p n
            | Oracle.Skip _ ->
              incr skips;
              Metrics.incr (Lazy.force c_skips)
            | Oracle.Fail _ -> ())
          results;
        match Oracle.failed results with
        | None -> ()
        | Some (path, message) ->
          Metrics.incr (Lazy.force c_failures);
          Trace.add span "failed" (Oracle.path_to_string path);
          let shrunk =
            if !shrunk_count >= max_shrunk then case
            else begin
              incr shrunk_count;
              Shrink.shrink
                (fun c ->
                  Oracle.failed
                    (Oracle.run_case ~device ~paths ~input_seed c)
                  <> None)
                case
            end
          in
          failures :=
            {
              f_index = i;
              f_seed = seed;
              f_kind = Gen.case_kind case;
              f_path = path;
              f_message = message;
              f_repro = repro_text ~seed ~index:i ~paths ~max_size shrunk;
            }
            :: !failures)
  done;
  {
    s_seed = seed;
    s_cases = cases;
    s_checks = !checks;
    s_skips = !skips;
    s_per_path =
      List.filter_map
        (fun p ->
          match Hashtbl.find_opt per_path p with
          | Some n -> Some (p, n)
          | None -> Some (p, 0))
        paths;
    s_failures = List.rev !failures;
  }

let summary_to_string s =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "fuzz: seed %d, %d cases, %d checks passed, %d skipped\n"
       s.s_seed s.s_cases s.s_checks s.s_skips);
  List.iter
    (fun (p, n) ->
      Buffer.add_string b
        (Printf.sprintf "  %-9s %d checks\n" (Oracle.path_to_string p) n))
    s.s_per_path;
  if s.s_failures = [] then Buffer.add_string b "  all differential checks passed\n"
  else begin
    Buffer.add_string b
      (Printf.sprintf "  %d FAILURES\n" (List.length s.s_failures));
    List.iter
      (fun f ->
        Buffer.add_string b
          (Printf.sprintf "\ncase %d (%s) failed on path %s:\n  %s\n%s\n"
             f.f_index f.f_kind
             (Oracle.path_to_string f.f_path)
             f.f_message f.f_repro))
      s.s_failures
  end;
  Buffer.contents b
