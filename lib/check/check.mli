(** The differential-testing suite engine, shared by the qcheck tests and
    the [hidetc fuzz] subcommand.

    Determinism contract: case [i] of a run is generated from
    [Random.State.make [| seed; i |]] and its input tensors from a seed
    derived from [(seed, i)], so [run_suite ~seed ~cases:1 ()] with
    [~offset:i] replays exactly case [i] of a larger run — that pair is the
    whole repro. Each case is wrapped in a [hidet_obs] span
    (["fuzz_case"]) and bumps the [check.*] counters. *)

type failure = {
  f_index : int;  (** case index (the [--offset] to replay it) *)
  f_seed : int;
  f_kind : string;  (** generator kind: def / matmul / conv / graph *)
  f_path : Oracle.path;
  f_message : string;
  f_repro : string;  (** self-contained: rerun command + shrunk case text *)
}

type summary = {
  s_seed : int;
  s_cases : int;
  s_checks : int;  (** individual comparisons that passed *)
  s_skips : int;
  s_per_path : (Oracle.path * int) list;  (** passed checks per path *)
  s_failures : failure list;
}

val ok : summary -> bool

val run_suite :
  ?device:Hidet_gpu.Device.t ->
  ?paths:Oracle.path list ->
  ?max_size:int ->
  ?offset:int ->
  ?max_shrunk:int ->
  ?progress:(int -> Gen.case -> unit) ->
  seed:int ->
  cases:int ->
  unit ->
  summary
(** Defaults: device rtx3090, all four paths, [max_size 8], [offset 0].
    Every failing case is recorded; the first [max_shrunk] (default 5) are
    also minimized with {!Shrink.shrink} before their repro is printed
    (shrinking re-runs the oracle many times, so it is budgeted). *)

val summary_to_string : summary -> string
