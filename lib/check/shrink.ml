module Graph = Hidet_graph.Graph
module Op = Hidet_graph.Op
open Gen

(* --- list surgery ----------------------------------------------------------- *)

let set_nth l i v = List.mapi (fun j x -> if j = i then v else x) l
let drop_nth l i = List.filteri (fun j _ -> j <> i) l
let halve d = (d + 1) / 2

(* --- def specs -------------------------------------------------------------- *)

(* Dropping the reduction invalidates patterns that reference reduction
   axes; rewrite them to reduction-free equivalents. *)
let drop_raxis_pat = function
  | P_raxis _ -> P_const 0
  | P_axis_plus_raxis (a, _) -> P_axis a
  | p -> p

(* Output axes are never dropped (extents are only halved), so B_axis/B_sel
   references and axis patterns always stay in range. *)
let body_subtrees = function
  | B_bin (_, a, b) -> [ a; b ]
  | B_un (_, a) -> [ a ]
  | B_sel (_, _, x, y) -> [ x; y ]
  | B_in _ | B_const _ | B_axis _ -> []

let spec_candidates spec =
  let dims =
    (* Halve each output dimension that is > 1. *)
    List.concat
      (List.mapi
         (fun i d ->
           if d > 1 then [ { spec with ds_out = set_nth spec.ds_out i (halve d) } ]
           else [])
         spec.ds_out)
  in
  let reduce =
    match spec.ds_reduce with
    | None -> []
    | Some (ext, kind) ->
      { spec with
        ds_reduce = None;
        ds_inputs = List.map (List.map drop_raxis_pat) spec.ds_inputs;
      }
      :: List.concat
           (List.mapi
              (fun i d ->
                if d > 1 then
                  [ { spec with ds_reduce = Some (set_nth ext i (halve d), kind) } ]
                else [])
              ext)
  in
  let body =
    List.map (fun b -> { spec with ds_body = b }) (body_subtrees spec.ds_body)
  in
  let pats =
    (* Simplify exotic index patterns to a plain axis read. *)
    List.concat
      (List.mapi
         (fun k pl ->
           List.concat
             (List.mapi
                (fun i p ->
                  match p with
                  | P_axis _ | P_const _ -> []
                  | P_raxis _ | P_axis_plus_raxis _ | P_strided _ | P_rev _
                  | P_shifted _ ->
                    [ { spec with
                        ds_inputs =
                          set_nth spec.ds_inputs k (set_nth pl i (P_const 0));
                      } ])
                pl))
         spec.ds_inputs)
  in
  reduce @ body @ dims @ pats

(* --- graphs ----------------------------------------------------------------- *)

(* Rebuild [g] keeping only the ancestors of [out], with node inputs first
   passed through [redirect]; the same replay loop as [Graph_io.of_string]
   uses, so rebuilt graphs are exactly as valid as parsed ones. *)
let rebuild g ~out ~redirect =
  let red i = match redirect i with Some j -> j | None -> i in
  let keep = Hashtbl.create 32 in
  let rec mark id =
    if not (Hashtbl.mem keep id) then begin
      Hashtbl.add keep id ();
      List.iter (fun i -> mark (red i)) (Graph.node g id).Graph.inputs
    end
  in
  mark (red out);
  let g' = Graph.create () in
  Graph.name g' (Graph.get_name g);
  let remap = Hashtbl.create 32 in
  List.iter
    (fun (n : Graph.node) ->
      if Hashtbl.mem keep n.Graph.id then begin
        let new_id =
          match n.Graph.op with
          | Op.Input -> Graph.input g' n.Graph.shape
          | Op.Constant { value } -> Graph.constant_lazy g' n.Graph.shape value
          | op ->
            Graph.add_op g' op
              (List.map (fun i -> Hashtbl.find remap (red i)) n.Graph.inputs)
        in
        Hashtbl.replace remap n.Graph.id new_id
      end)
    (Graph.nodes g);
  Graph.set_outputs g' [ Hashtbl.find remap (red out) ];
  g'

let graph_candidates g =
  match Graph.outputs g with
  | [ out ] ->
    let nodes = Graph.nodes g in
    let computed (n : Graph.node) =
      match n.Graph.op with Op.Input | Op.Constant _ -> false | _ -> true
    in
    (* Truncate: re-root the graph at an earlier computed node (earliest
       first — the most aggressive shrink leads). *)
    let truncations =
      List.filter_map
        (fun (n : Graph.node) ->
          if computed n && n.Graph.id <> out then
            try Some (C_graph (rebuild g ~out:n.Graph.id ~redirect:(fun _ -> None)))
            with _ -> None
          else None)
        nodes
    in
    (* Bypass: delete one computed interior node whose shape matches one of
       its producers, rewiring its consumers to that producer. *)
    let bypasses =
      List.filter_map
        (fun (n : Graph.node) ->
          if not (computed n) || n.Graph.id = out then None
          else
            match
              List.find_opt
                (fun i -> (Graph.node g i).Graph.shape = n.Graph.shape)
                n.Graph.inputs
            with
            | None -> None
            | Some producer -> (
              let redirect i = if i = n.Graph.id then Some producer else None in
              try Some (C_graph (rebuild g ~out ~redirect)) with _ -> None))
        nodes
    in
    truncations @ bypasses
  | _ -> []

(* --- cases ------------------------------------------------------------------ *)

let drop_each_epi rebuild epis =
  List.init (List.length epis) (fun i -> rebuild (drop_nth epis i))

let candidates = function
  | C_def { spec; pro; epis } ->
    (if pro then [ C_def { spec; pro = false; epis } ] else [])
    @ drop_each_epi (fun epis -> C_def { spec; pro; epis }) epis
    @ List.map (fun spec -> C_def { spec; pro; epis }) (spec_candidates spec)
  | C_matmul ({ batch; m; n; k; n_cfgs; pro; epis } as c) ->
    let dim_shrinks =
      List.filter_map
        (fun c' -> if c' <> C_matmul c then Some c' else None)
        [
          C_matmul { c with m = halve m };
          C_matmul { c with n = halve n };
          C_matmul { c with k = halve k };
          C_matmul { c with batch = halve batch };
        ]
    in
    (if n_cfgs > 1 then [ C_matmul { c with n_cfgs = 1 } ] else [])
    @ (if pro then [ C_matmul { c with pro = false } ] else [])
    @ drop_each_epi (fun epis -> C_matmul { c with epis }) epis
    @ dim_shrinks
  | C_conv ({ n; c; h; w; oc; kh; stride; _ } as cc) ->
    List.filter_map
      (fun c' -> if c' <> C_conv cc then Some c' else None)
      [
        C_conv { cc with kh = 1; kw = 1; pad = 0 };
        C_conv { cc with pad = 0 };
        C_conv { cc with stride = max 1 (stride - 1) };
        C_conv { cc with n = halve n };
        C_conv { cc with c = halve c };
        C_conv { cc with oc = halve oc };
        (if h > kh + 1 then C_conv { cc with h = halve h; w = halve w }
         else C_conv cc);
      ]
  | C_graph g -> graph_candidates g

let shrink ?(max_tries = 200) still_fails case =
  let tries = ref 0 in
  let test c =
    if !tries >= max_tries then false
    else begin
      incr tries;
      try still_fails c with _ -> false
    end
  in
  let rec go case =
    if !tries >= max_tries then case
    else
      match List.find_opt test (candidates case) with
      | Some smaller -> go smaller
      | None -> case
  in
  go case
