module T = Hidet_tensor.Tensor
module Def = Hidet_compute.Def
module Op = Hidet_graph.Op
module Graph = Hidet_graph.Graph
module Reference = Hidet_graph.Reference
module Compiled = Hidet_sched.Compiled
module Rule_based = Hidet_sched.Rule_based
module Reduce_template = Hidet_sched.Reduce_template
module MT = Hidet_sched.Matmul_template
module Space = Hidet_sched.Space
module Fuse = Hidet_fusion.Fuse
module LS = Hidet_baselines.Loop_sched
module HE = Hidet.Hidet_engine
module Plan = Hidet_runtime.Plan
module Shard = Hidet_shard.Shard
module Cluster = Hidet_gpu.Cluster

type path =
  | Rule
  | Template
  | Fused
  | Baseline
  | Compiled_backend
  | Native
  | Sharded

(* [Native] and [Sharded] are opt-in (`--paths native` / `--paths
   sharded`), not part of the default sweep: the former pays an
   ocamlopt+dynlink per distinct kernel, the latter compiles one plan per
   device per applicable partitioning — either would dominate the quick
   fuzz smoke. *)
let all_paths = [ Rule; Template; Fused; Baseline; Compiled_backend ]

let path_to_string = function
  | Rule -> "rule"
  | Template -> "template"
  | Fused -> "fused"
  | Baseline -> "baseline"
  | Compiled_backend -> "compiled"
  | Native -> "native"
  | Sharded -> "sharded"

let path_of_string = function
  | "rule" -> Some Rule
  | "template" -> Some Template
  | "fused" -> Some Fused
  | "baseline" -> Some Baseline
  | "compiled" -> Some Compiled_backend
  | "native" -> Some Native
  | "sharded" -> Some Sharded
  | _ -> None

type outcome = Pass of int | Skip of string | Fail of string

(* --- comparison ------------------------------------------------------------- *)

(* Reference and interpreter both evaluate in double precision with
   identical elementary functions, so legitimate differences come only from
   reordered floating-point reductions (register tiles, shared-memory trees,
   split-k, software pipelines). The tolerance is ULP-scaled with a budget
   proportional to the reduction size; anything past it is a real
   divergence, not noise. *)
let close ~budget a b =
  (Float.is_nan a && Float.is_nan b)
  || Float.abs (a -. b)
     <= budget *. epsilon_float
        *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let tensors_match ~budget expect got =
  if T.numel expect <> T.numel got then
    Error
      (Printf.sprintf "element count mismatch: expected [%s], got [%s]"
         (String.concat "," (List.map string_of_int (T.shape expect)))
         (String.concat "," (List.map string_of_int (T.shape got))))
  else begin
    let n = T.numel expect in
    let rec go i =
      if i = n then Ok ()
      else
        let a = T.flat_get expect i and b = T.flat_get got i in
        if close ~budget a b then go (i + 1)
        else
          Error
            (Printf.sprintf "element %d: expected %.17g, got %.17g (budget %g)"
               i a b budget)
    in
    go 0
  end

let numel = List.fold_left ( * ) 1

(* Structural [Invalid_argument] while building a kernel means the path does
   not apply to this case; anything raised while running one is a bug. *)
let checking name thunks =
  try
    let n = ref 0 in
    let rec go = function
      | [] -> Pass !n
      | t :: rest -> (
        match t () with
        | Ok () ->
          incr n;
          go rest
        | Error e -> Fail (name ^ ": " ^ e))
    in
    go thunks
  with
  | Invalid_argument e -> Skip (name ^ ": " ^ e)
  | Failure e -> Fail (name ^ ": verification/runtime failure: " ^ e)
  | Hidet_gpu.Interp.Barrier_divergence e ->
    Fail (name ^ ": Barrier_divergence: " ^ e)
  | Hidet_gpu.Interp.Invalid_access e -> Fail (name ^ ": Invalid_access: " ^ e)

let run_and_compare ~budget compiled inputs expect () =
  let got = Compiled.run compiled inputs in
  tensors_match ~budget expect got

(* The closure-compiling backend claims bit-identical semantics to the
   legacy tree-walking interpreter; hold it to that (exact bit equality,
   not ULP tolerance), then also check against the CPU reference. *)
let backend_parity ~budget compiled inputs expect () =
  let legacy = Compiled.run ~legacy:true compiled inputs in
  let got = Compiled.run compiled inputs in
  let n = T.numel legacy in
  let rec go i =
    if i = n then Ok ()
    else
      let a = T.flat_get legacy i and b = T.flat_get got i in
      if Int64.bits_of_float a = Int64.bits_of_float b then go (i + 1)
      else
        Error
          (Printf.sprintf
             "backend divergence at element %d: legacy %.17g, compiled %.17g"
             i a b)
  in
  match go 0 with
  | Error _ as e -> e
  | Ok () -> tensors_match ~budget expect got

(* The native (codegen → ocamlopt → Dynlink) backend makes the same
   bit-identical claim; hold it to the closure backend bit for bit, then
   against the CPU reference. Skips — with the probe's reason — when the
   toolchain is unavailable, rather than letting [Compiled.run] silently
   fall back and vacuously compare the closure backend with itself. *)
let native_parity ~budget compiled inputs expect () =
  let closure = Compiled.run ~backend:`Closure compiled inputs in
  let got = Compiled.run ~backend:`Native compiled inputs in
  let n = T.numel closure in
  let rec go i =
    if i = n then Ok ()
    else
      let a = T.flat_get closure i and b = T.flat_get got i in
      if Int64.bits_of_float a = Int64.bits_of_float b then go (i + 1)
      else
        Error
          (Printf.sprintf
             "backend divergence at element %d: closure %.17g, native %.17g" i
             a b)
  in
  match go 0 with
  | Error _ as e -> e
  | Ok () -> tensors_match ~budget expect got

let native_guard f =
  match Hidet_gpu.Exec_ocaml.available () with
  | Error reason -> Skip ("native toolchain unavailable: " ^ reason)
  | Ok () -> f ()

(* --- sharded execution ------------------------------------------------------ *)

(* Differential shard equivalence: derive a device count (1-4) and a
   microbatch count from the case seed, then try every partitioning
   strategy on that cluster. Each applicable one must (a) satisfy its
   equivalence contract against the single-device deterministic baseline
   — bitwise for order-preserving strategies, the ULP budget for the
   all-reduce epilogue — and (b) stay within the repo-wide graph
   tolerance of the CPU reference. Strategies the graph does not admit
   (batch smaller than the cluster, no sliceable matmul, ...) are
   skipped; a case only skips outright when nothing applies. Failure
   messages embed [Shard.describe]'s shard spec, so shrunk fuzz repros
   pin down the exact partitioning. *)
let sharded_check ~input_seed g inputs expect =
  let rs = Random.State.make [| input_seed; 13 |] in
  let devices = 1 + Random.State.int rs 4 in
  let microbatches = 2 + Random.State.int rs 3 in
  let cluster = Cluster.homogeneous ~n:devices Hidet_gpu.Device.rtx3090 in
  let candidates =
    [
      Shard.Data;
      Shard.Tensor Shard.Gather;
      Shard.Tensor Shard.Reduce;
      Shard.Pipeline { microbatches };
    ]
  in
  let skips = ref [] and applied = ref 0 and failure = ref None in
  List.iter
    (fun strat ->
      if !failure = None then
        match
          try Ok (Shard.plan ~strategy:strat cluster g)
          with Invalid_argument e -> Error e
        with
        | Error e ->
          skips := (Shard.strategy_to_string strat ^ ": " ^ e) :: !skips
        | Ok t -> (
          incr applied;
          match Shard.verify t inputs with
          | Error e -> failure := Some e
          | Ok _ ->
            let got =
              List.hd (Shard.run t (List.combine (Graph.input_ids g) inputs))
            in
            if not (T.allclose ~rtol:1e-3 ~atol:1e-4 expect got) then
              failure :=
                Some
                  (Printf.sprintf
                     "%s: diverges from CPU reference: max |diff| = %g"
                     (Shard.describe t)
                     (T.max_abs_diff expect got))))
    candidates;
  match !failure with
  | Some e -> Fail ("sharded: " ^ e)
  | None ->
    if !applied = 0 then
      Skip
        (Printf.sprintf "sharded (%d devices): no applicable partitioning: %s"
           devices
           (String.concat "; " (List.rev !skips)))
    else Pass !applied

(* --- epilogue chains -------------------------------------------------------- *)

(* Fold the case's epilogue list onto a scheduled anchor, dropping epilogues
   that do not apply at the current shape. Returns the fused operator, the
   extra input tensors appended by residual epilogues, the expected output,
   and how many epilogues were actually fused. *)
let apply_epis ~input_seed anchor expect epis =
  let fused, extras, expect, n =
    List.fold_left
      (fun (acc, extras, expect, n) epi ->
        match Gen.epi_def epi (T.shape expect) with
        | None -> (acc, extras, expect, n)
        | Some (d, _) when not (Def.is_bijective d) -> (acc, extras, expect, n)
        | Some (d, _) ->
          let extra_ts =
            List.mapi
              (fun i s -> T.rand ~seed:(input_seed + 1000 + (97 * n) + i) s)
              (List.tl d.Def.in_shapes)
          in
          let acc = Fuse.fuse_epilogue acc d in
          let expect = Def.eval d (expect :: extra_ts) in
          (acc, extras @ extra_ts, expect, n + 1))
      (anchor, [], expect, 0) epis
  in
  (fused, extras, expect, n)

(* --- per-kind oracles ------------------------------------------------------- *)

let prologue_def shape = Op.to_def (Op.Unary (Op.Scale_by 0.75)) [ shape ]

let def_paths ~input_seed spec pro epis =
  let def = Gen.build_def spec in
  (match Def.well_formed def with
  | Ok () -> ()
  | Error e -> failwith ("generator produced ill-formed definition: " ^ e));
  let inputs =
    List.mapi (fun i s -> T.rand ~seed:(input_seed + i) s) def.Def.in_shapes
  in
  let expect = Def.eval def inputs in
  let reduce_elems =
    match def.Def.reduce with None -> 1 | Some (e, _) -> numel e
  in
  let budget = 256. *. float_of_int reduce_elems in
  function
  | Rule ->
    checking "rule" [ run_and_compare ~budget (Rule_based.schedule def) inputs expect ]
  | Template -> (
    match def.Def.reduce with
    | None -> Skip "injective definition: no reduction template applies"
    | Some _ ->
      checking "reduce_template"
        (List.map
           (fun block_size ->
             run_and_compare ~budget
               (Reduce_template.schedule ~config:{ Reduce_template.block_size } def)
               inputs expect)
           [ 32; 128 ]))
  | Fused ->
    checking "fused"
      [
        (fun () ->
          let anchor = Rule_based.schedule def in
          let anchor, expect, n_pro =
            if pro && def.Def.in_shapes <> [] then
              let pd = prologue_def (List.hd def.Def.in_shapes) in
              let anchor = Fuse.fuse_prologue anchor ~input_index:0 pd in
              let inputs' =
                List.mapi
                  (fun i t -> if i = 0 then Def.eval pd [ t ] else t)
                  inputs
              in
              (anchor, Def.eval def inputs', 1)
            else (anchor, expect, 0)
          in
          let fused, extras, expect, n_epi =
            apply_epis ~input_seed anchor expect epis
          in
          if n_pro + n_epi = 0 then
            invalid_arg "no applicable prologue or epilogue"
          else
            run_and_compare ~budget fused (inputs @ extras) expect ());
      ]
  | Baseline -> Skip "no loop-oriented lowering for arbitrary definitions"
  | Compiled_backend ->
    checking "compiled_backend"
      [ backend_parity ~budget (Rule_based.schedule def) inputs expect ]
  | Native ->
    native_guard (fun () ->
        checking "native_backend"
          [ native_parity ~budget (Rule_based.schedule def) inputs expect ])
  | Sharded -> Skip "sharded equivalence exercised by matmul/graph cases"

let matmul_paths ~input_seed ~batch ~m ~n ~k ~n_cfgs pro epis =
  let a = T.rand ~seed:input_seed [ batch; m; k ] in
  let b = T.rand ~seed:(input_seed + 1) [ k; n ] in
  let expect = T.matmul a b in
  let budget = 256. *. float_of_int k in
  function
  | Rule ->
    checking "rule"
      [
        (fun () ->
          let def = Op.to_def Op.Matmul [ [ batch; m; k ]; [ k; n ] ] in
          run_and_compare ~budget (Rule_based.schedule def) [ a; b ] expect ());
      ]
  | Template ->
    (* Sampled hardware-centric configs (tile sizes independent of m/n/k:
       odd sizes exercise the predicated partial tiles), plus one split-k
       variant when the space extension offers one. *)
    let cfgs =
      Space.sample_matmul (Random.State.make [| input_seed; 7 |]) n_cfgs
    in
    let split_k =
      List.filter (fun c -> c.MT.split_k > 1) (Space.matmul_with_split_k ~m ~n)
    in
    let cfgs = match split_k with c :: _ -> cfgs @ [ c ] | [] -> cfgs in
    checking "matmul_template"
      (List.map
         (fun cfg () ->
           run_and_compare ~budget (MT.compile ~batch ~m ~n ~k cfg) [ a; b ]
             expect ())
         cfgs)
  | Fused ->
    checking "fused"
      [
        (fun () ->
          let anchor = MT.compile ~batch ~m ~n ~k MT.default_config in
          let anchor, expect, n_pro =
            if pro then
              let pd = prologue_def [ batch; m; k ] in
              ( Fuse.fuse_prologue anchor ~input_index:0 pd,
                T.matmul (Def.eval pd [ a ]) b,
                1 )
            else (anchor, expect, 0)
          in
          let fused, extras, expect, n_epi =
            apply_epis ~input_seed anchor expect epis
          in
          if n_pro + n_epi = 0 then
            invalid_arg "no applicable prologue or epilogue"
          else run_and_compare ~budget fused ([ a; b ] @ extras) expect ());
      ]
  | Baseline -> (
    match LS.first_valid ~m ~n ~k with
    | None -> Skip "input-centric space empty for these extents"
    | Some s ->
      checking "loop_gemm"
        [ run_and_compare ~budget (LS.gemm ~batch ~m ~n ~k s) [ a; b ] expect ])
  | Compiled_backend ->
    (* The default template config exercises shared memory, barriers and
       (on tensor-core devices) MMA tiles through both backends. *)
    checking "compiled_backend"
      [
        backend_parity ~budget
          (MT.compile ~batch ~m ~n ~k MT.default_config)
          [ a; b ] expect;
      ]
  | Native ->
    native_guard (fun () ->
        checking "native_backend"
          [
            native_parity ~budget
              (MT.compile ~batch ~m ~n ~k MT.default_config)
              [ a; b ] expect;
          ])
  | Sharded ->
    (* Wrap the case as a one-matmul graph with a constant weight, so
       every partitioning strategy has something to bite on: Data splits
       the batch, Tensor slices the weight, Pipeline wants more stages
       than this graph has nodes and skips. *)
    let g = Graph.create () in
    Graph.name g (Printf.sprintf "fuzz_mm_%dx%dx%dx%d" batch m n k);
    let x = Graph.input g [ batch; m; k ] in
    let w = Graph.constant g b in
    let mm = Graph.matmul g x w in
    Graph.set_outputs g [ mm ];
    sharded_check ~input_seed g [ a ] expect

let conv_paths ~input_seed ~n ~c ~h ~w ~oc ~kh ~kw ~stride ~pad =
  let x_shape = [ n; c; h; w ] and w_shape = [ oc; c; kh; kw ] in
  let x = T.rand ~seed:input_seed x_shape in
  let wt = T.rand ~seed:(input_seed + 1) w_shape in
  let expect = T.conv2d x wt ~stride ~padding:pad in
  let budget = 256. *. float_of_int (c * kh * kw) in
  let def () =
    Op.to_def (Op.Conv2d { stride; pad_h = pad; pad_w = pad })
      [ x_shape; w_shape ]
  in
  function
  | Rule ->
    checking "rule"
      [ (fun () ->
          run_and_compare ~budget (Rule_based.schedule (def ())) [ x; wt ] expect ()) ]
  | Template -> Skip "conv templates exercised through the graph pipeline"
  | Fused ->
    checking "fused"
      [
        (fun () ->
          let anchor = Rule_based.schedule (def ()) in
          let rd = Op.to_def (Op.Unary Op.Relu) [ T.shape expect ] in
          run_and_compare ~budget (Fuse.fuse_epilogue anchor rd) [ x; wt ]
            (T.relu expect) ());
      ]
  | Baseline -> (
    let oh = ((h + (2 * pad) - kh) / stride) + 1 in
    let ow = ((w + (2 * pad) - kw) / stride) + 1 in
    match LS.first_valid ~m:oc ~n:(oh * ow) ~k:(c * kh * kw) with
    | None -> Skip "input-centric space empty for these extents"
    | Some s ->
      checking "loop_conv"
        [
          run_and_compare ~budget
            (LS.conv2d ~x_shape ~w_shape ~stride ~pad_h:pad ~pad_w:pad s)
            [ x; wt ] expect;
        ])
  | Compiled_backend ->
    checking "compiled_backend"
      [ backend_parity ~budget (Rule_based.schedule (def ())) [ x; wt ] expect ]
  | Native ->
    native_guard (fun () ->
        checking "native_backend"
          [ native_parity ~budget (Rule_based.schedule (def ())) [ x; wt ] expect ])
  | Sharded -> Skip "sharded equivalence exercised by matmul/graph cases"

let graph_paths ~device ~input_seed g =
  let inputs =
    List.mapi
      (fun i id -> T.rand ~seed:(input_seed + i) (Graph.node_shape g id))
      (Graph.input_ids g)
  in
  let expect = Reference.run1 g inputs in
  (* Whole-pipeline outputs accumulate reordering across several kernels;
     use the repo-wide graph tolerance instead of per-kernel ULP budgets. *)
  let compare_plan options () =
    let plan, _ = HE.compile_plan ~options device g in
    let got = Plan.run1 plan inputs in
    if T.allclose ~rtol:1e-3 ~atol:1e-4 expect got then Ok ()
    else
      Error
        (Printf.sprintf "graph output diverges: max |diff| = %g"
           (T.max_abs_diff expect got))
  in
  let opts = HE.default_options in
  function
  | Fused -> checking "engine_fused" [ compare_plan opts ]
  | Template ->
    checking "engine_unfused" [ compare_plan { opts with HE.fuse = false } ]
  | Rule ->
    checking "engine_rule"
      [ compare_plan { opts with HE.fuse = false; lower_convs = false } ]
  | Baseline -> Skip "loop-oriented baselines exercised by matmul/conv cases"
  | Compiled_backend ->
    Skip "per-kernel backend parity exercised by def/matmul/conv cases"
  | Native ->
    Skip "per-kernel backend parity exercised by def/matmul/conv cases"
  | Sharded -> sharded_check ~input_seed g inputs expect

(* --- entry ------------------------------------------------------------------ *)

let run_case ~device ~paths ~input_seed case =
  (* Lazy so that an exception during case setup (building the definition,
     evaluating the reference) is reported as a per-path failure instead of
     escaping the suite. *)
  let oracle =
    lazy
      (match case with
      | Gen.C_def { spec; pro; epis } -> def_paths ~input_seed spec pro epis
      | Gen.C_matmul { batch; m; n; k; n_cfgs; pro; epis } ->
        matmul_paths ~input_seed ~batch ~m ~n ~k ~n_cfgs pro epis
      | Gen.C_conv { n; c; h; w; oc; kh; kw; stride; pad } ->
        conv_paths ~input_seed ~n ~c ~h ~w ~oc ~kh ~kw ~stride ~pad
      | Gen.C_graph g -> graph_paths ~device ~input_seed g)
  in
  List.map
    (fun p ->
      ( p,
        try Lazy.force oracle p with
        | Invalid_argument e -> Skip e
        | Failure e -> Fail e
        | Hidet_gpu.Interp.Barrier_divergence e ->
          Fail ("Barrier_divergence: " ^ e)
        | Hidet_gpu.Interp.Invalid_access e -> Fail ("Invalid_access: " ^ e) ))
    paths

let failed results =
  List.find_map
    (fun (p, o) -> match o with Fail e -> Some (p, e) | _ -> None)
    results
