(* Hardware-centric vs input-centric tuning on one convolution (the paper's
   sections 3.3 and 4.3 in miniature):

   - the input-centric (AutoTVM-style) space size depends on the divisor
     structure of the layer's extents and explodes to millions of points;
   - the hardware-centric space has ~450 points regardless of input size,
     enumerates exhaustively, and still finds a faster schedule because it
     can pick non-divisor tiles and pipelined (double-buffered) kernels.

   Run with: dune exec examples/tuning.exe *)

module IC = Hidet_baselines.Input_centric
module LS = Hidet_baselines.Loop_sched
module MT = Hidet_sched.Matmul_template
module Tu = Hidet_sched.Tuner
module Space = Hidet_sched.Space

let dev = Hidet_gpu.Device.rtx3090

let () =
  (* The Fig. 15 conv: 28x28 input, 256 channels, k3, stride 2, pad 1. *)
  let x_shape = [ 1; 256; 28; 28 ] and w_shape = [ 256; 256; 3; 3 ] in
  let stride = 2 and pad = 1 in
  let m = 256 and n = 196 and k = 2304 in

  Printf.printf "convolution: input %s, weight %s, stride %d\n"
    (String.concat "x" (List.map string_of_int x_shape))
    (String.concat "x" (List.map string_of_int w_shape))
    stride;
  Printf.printf "as implicit GEMM: m=%d n=%d k=%d\n\n" m n k;

  let ic_size = IC.conv_space_size ~x_shape ~w_shape ~stride ~pad_h:pad ~pad_w:pad in
  let hc_space = Space.matmul_with_split_k ~m ~n in
  Printf.printf "input-centric space:    %.3g schedules\n" ic_size;
  Printf.printf "hardware-centric space: %d schedules (%.0fx smaller)\n\n"
    (List.length hc_space)
    (ic_size /. float_of_int (List.length hc_space));

  let t0 = Unix.gettimeofday () in
  (match
     Tu.tune ~device:dev ~candidates:hc_space
       ~compile:(fun cfg -> MT.compile ~a_batched:false ~b_batched:true ~m ~n ~k cfg)
       ()
   with
  | Some (cfg, _, st) ->
    Printf.printf
      "hidet (exhaustive): best %s at %.1f us\n\
      \  %d measured + %d rejected, %.0f simulated tuning seconds,\n\
      \  %.3f s wall here on %d domain(s)\n"
      (MT.config_to_string cfg)
      (st.Tu.best_latency *. 1e6)
      st.Tu.trials st.Tu.rejected st.Tu.simulated_seconds
      (Unix.gettimeofday () -. t0)
      st.Tu.workers
  | None -> print_endline "hidet: no feasible schedule");

  List.iter
    (fun (name, strategy, trials) ->
      let t0 = Unix.gettimeofday () in
      match
        IC.tune_gemm ~strategy ~trials ~device:dev ~seed:42 ~m ~n ~k
          ~compile:(fun s ->
            LS.conv2d ~x_shape ~w_shape ~stride ~pad_h:pad ~pad_w:pad s)
          ()
      with
      | Some t ->
        Printf.printf
          "%s: best %.1f us\n\
          \  %d trials, %.0f simulated tuning seconds, %.3f s wall here\n"
          name (t.IC.latency *. 1e6) t.IC.trials t.IC.simulated_seconds
          (Unix.gettimeofday () -. t0)
      | None -> Printf.printf "%s: no valid schedule found\n" name)
    [
      ("autotvm (random, 1000)", IC.Random_search, 1000);
      ("ansor (evolutionary, 800)", IC.Evolutionary, 800);
    ]
