(* Tests for the observability layer: span nesting and containment, the
   Chrome trace-event export (including flow arcs) and its validator, the
   hand-written JSON parser, always-on metrics summing exactly across
   domains, labeled instruments and the Prometheus exposition, the
   request-lifecycle event log and flight recorder, the tuner's
   per-candidate spans and tuning-log records, and the cost of the
   instrumentation when tracing is off. *)

module Trace = Hidet_obs.Trace
module Metrics = Hidet_obs.Metrics
module Chrome = Hidet_obs.Chrome_trace
module Json = Hidet_obs.Json
module Events = Hidet_obs.Events
module Prom = Hidet_obs.Prom
module Tlog = Hidet_obs.Tuning_log
module Tu = Hidet_sched.Tuner
module MT = Hidet_sched.Matmul_template
module Space = Hidet_sched.Space

let dev = Hidet_gpu.Device.rtx3090

let span_tuples evs =
  List.filter_map
    (function
      | Trace.Span { name; track; ts_us; dur_us; attrs } ->
        Some (name, track, ts_us, dur_us, attrs)
      | Trace.Instant _ | Trace.Flow _ -> None)
    evs

(* --- spans ------------------------------------------------------------------ *)

let test_span_nesting () =
  let (), evs =
    Trace.with_collector (fun () ->
        Trace.span "outer" (fun _ ->
            Trace.span "inner1" (fun sp -> Trace.add sp "k" "v");
            Trace.span "inner2" (fun _ -> ())))
  in
  let spans = span_tuples evs in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let find n = List.find (fun (name, _, _, _, _) -> name = n) spans in
  let _, _, ots, odur, _ = find "outer" in
  let check_contained n =
    let _, _, ts, dur, _ = find n in
    Alcotest.(check bool) (n ^ " dur >= 0") true (dur >= 0.);
    Alcotest.(check bool)
      (n ^ " contained in outer")
      true
      (ots <= ts && ts +. dur <= ots +. odur +. 1e-6)
  in
  check_contained "inner1";
  check_contained "inner2";
  (* Sorted by start time, parent ahead of its children. *)
  (match spans with
  | ("outer", _, _, _, _) :: _ -> ()
  | _ -> Alcotest.fail "outer span must sort first");
  let _, _, _, _, attrs = find "inner1" in
  Alcotest.(check (list (pair string string))) "attrs" [ ("k", "v") ] attrs

let test_span_error_attr () =
  let (), evs =
    Trace.with_collector (fun () ->
        try Trace.span "boom" (fun _ -> failwith "expected") with
        | Failure _ -> ())
  in
  match span_tuples evs with
  | [ ("boom", _, _, _, attrs) ] ->
    Alcotest.(check bool) "error attr recorded" true (List.mem_assoc "error" attrs)
  | _ -> Alcotest.fail "expected exactly the failed span"

let test_noop_allocation_light () =
  Alcotest.(check bool) "tracing off" false (Trace.enabled ());
  let iters = 10_000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    let sp = Trace.enter "x" in
    Trace.add sp "k" "v";
    Trace.exit sp
  done;
  let per_iter = (Gc.minor_words () -. w0) /. float_of_int iters in
  Alcotest.(check bool)
    (Printf.sprintf "noop span costs ~no allocation (%.2f words/iter)" per_iter)
    true (per_iter < 1.

)

(* --- domains: distinct tracks, exact counter sums --------------------------- *)

let test_domains_tracks_and_counters () =
  let c = Metrics.counter "test.obs.domain_increments" in
  let v0 = Metrics.value c in
  let ready = Atomic.make 0 in
  let (), evs =
    Trace.with_collector (fun () ->
        let work () =
          for _ = 1 to 1000 do
            Metrics.incr c
          done;
          Trace.instant "worker_mark";
          (* Hold the domain alive until all three have recorded, so their
             track assignments are concurrent and therefore distinct. *)
          Atomic.incr ready;
          while Atomic.get ready < 3 do
            Domain.cpu_relax ()
          done
        in
        let ds = List.init 3 (fun _ -> Domain.spawn work) in
        List.iter Domain.join ds)
  in
  Alcotest.(check int) "counters sum exactly" 3000 (Metrics.value c - v0);
  let tracks =
    List.sort_uniq compare
      (List.filter_map
         (function
           | Trace.Instant { name = "worker_mark"; track; _ } -> Some track
           | _ -> None)
         evs)
  in
  Alcotest.(check int) "three concurrent domains, three tracks" 3
    (List.length tracks)

(* --- tuner instrumentation --------------------------------------------------- *)

let sub_space ~m ~n ~stride ~offset =
  Space.matmul_with_split_k ~m ~n
  |> List.filteri (fun i _ -> i mod stride = offset)

let test_tuner_spans_and_log () =
  let candidates = sub_space ~m:64 ~n:64 ~stride:7 ~offset:0 in
  let compile cfg = MT.compile ~m:64 ~n:64 ~k:64 cfg in
  Tlog.start ();
  let r, evs =
    Trace.with_collector (fun () ->
        Tu.tune ~workers:4 ~key:"mm_test" ~show:MT.config_to_string
          ~device:dev ~candidates ~compile ())
  in
  let logged = Tlog.stop () in
  match r with
  | None -> Alcotest.fail "tuner found nothing"
  | Some (_, _, st) ->
    let spans = span_tuples evs in
    let trials =
      List.filter (fun (name, _, _, _, _) -> name = "trial") spans
    in
    Alcotest.(check int) "one trial span per candidate"
      (List.length candidates) (List.length trials);
    Alcotest.(check int) "one log record per candidate"
      (List.length candidates) (List.length logged);
    Alcotest.(check int) "log indices are distinct"
      (List.length candidates)
      (List.length
         (List.sort_uniq compare (List.map (fun t -> t.Tlog.index) logged)));
    Alcotest.(check int) "measured+infeasible records = stats.trials"
      st.Tu.trials
      (List.length
         (List.filter (fun t -> t.Tlog.outcome <> Tlog.Rejected) logged));
    Alcotest.(check int) "rejected records = stats.rejected" st.Tu.rejected
      (List.length
         (List.filter (fun t -> t.Tlog.outcome = Tlog.Rejected) logged));
    List.iter
      (fun t ->
        Alcotest.(check string) "engine label" "hidet" t.Tlog.engine;
        Alcotest.(check string) "workload label" "mm_test" t.Tlog.workload;
        Alcotest.(check bool) "config rendered" true (t.Tlog.config <> ""))
      logged;
    (match
       List.find_opt (fun (name, _, _, _, _) -> name = "tune") spans
     with
    | None -> Alcotest.fail "missing tune span"
    | Some (_, _, ts, dur, attrs) ->
      Alcotest.(check (option string)) "tune engine attr" (Some "hidet")
        (List.assoc_opt "engine" attrs);
      List.iter
        (fun (_, _, cts, cdur, _) ->
          Alcotest.(check bool) "trial within tune span" true
            (ts <= cts && cts +. cdur <= ts +. dur +. 1e-6))
        trials)

(* Metric deltas from the always-on counters must be identical whether the
   enumeration ran on one domain or several, over random matmul sub-spaces
   (the counters are bumped inside the worker domains). *)
let gen_case =
  let open QCheck.Gen in
  let size = oneofa [| 17; 32; 49; 64; 96 |] in
  let* m = size and* n = size and* k = size in
  let* stride = int_range 5 19 in
  let* offset = int_range 0 4 in
  return (m, n, k, stride, offset)

let arb_case =
  QCheck.make
    ~print:(fun (m, n, k, stride, offset) ->
      Printf.sprintf "m=%d n=%d k=%d stride=%d offset=%d" m n k stride offset)
    gen_case

let counter_deltas f =
  let t = Metrics.counter "tuner.trials" in
  let rj = Metrics.counter "tuner.rejected" in
  let t0 = Metrics.value t and r0 = Metrics.value rj in
  f ();
  (Metrics.value t - t0, Metrics.value rj - r0)

let prop_parallel_counter_parity =
  QCheck.Test.make ~name:"parallel metric deltas = sequential" ~count:8
    arb_case (fun (m, n, k, stride, offset) ->
      let candidates = sub_space ~m ~n ~stride ~offset in
      QCheck.assume (candidates <> []);
      let compile cfg = MT.compile ~m ~n ~k cfg in
      let seq =
        counter_deltas (fun () ->
            ignore (Tu.tune ~parallel:false ~device:dev ~candidates ~compile ()))
      in
      let par =
        counter_deltas (fun () ->
            ignore (Tu.tune ~workers:4 ~device:dev ~candidates ~compile ()))
      in
      seq = par && fst seq = List.length candidates - snd seq)

(* --- Chrome trace export ------------------------------------------------------ *)

let collect_some_events () =
  let (), evs =
    Trace.with_collector (fun () ->
        Trace.span "a" (fun _ -> Trace.span "b" (fun _ -> Trace.instant "i")))
  in
  evs

let test_chrome_json_valid () =
  let evs = collect_some_events () in
  let s = Chrome.to_string evs in
  (match Json.parse s with
  | Error msg -> Alcotest.fail ("export does not parse: " ^ msg)
  | Ok _ -> ());
  match Chrome.check s with
  | Error msg -> Alcotest.fail ("validator rejects export: " ^ msg)
  | Ok n -> Alcotest.(check int) "3 events" 3 n

let test_chrome_ts_consistent () =
  let evs = collect_some_events () in
  let s = Chrome.to_string evs in
  let json = Result.get_ok (Json.parse s) in
  let events =
    Option.get (Json.member "traceEvents" json) |> Json.to_arr |> Option.get
  in
  let prev = ref neg_infinity in
  List.iter
    (fun ev ->
      match Json.member "ph" ev |> Option.get |> Json.to_str with
      | Some "M" -> ()
      | _ ->
        let num field =
          match Json.member field ev with
          | Some v -> Json.to_num v
          | None -> None
        in
        let ts = Option.get (num "ts") in
        Alcotest.(check bool) "ts >= 0" true (ts >= 0.);
        Alcotest.(check bool) "ts ascending" true (ts >= !prev);
        prev := ts;
        (match num "dur" with
        | Some dur -> Alcotest.(check bool) "dur >= 0" true (dur >= 0.)
        | None -> ()))
    events

let test_chrome_check_rejects () =
  (match Chrome.check "not json" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  match Chrome.check "{\"foo\": 1}" with
  | Ok _ -> Alcotest.fail "missing traceEvents accepted"
  | Error _ -> ()

(* --- JSON parser --------------------------------------------------------------- *)

let test_json_parse () =
  let j =
    Result.get_ok
      (Json.parse
         "{\"a\": [1, 2.5, -3e2], \"s\": \"q\\\"\\u0041\", \"t\": true, \
          \"n\": null}")
  in
  Alcotest.(check (option (list (pair string string)))) "structure"
    (Some [])
    (match j with Json.Obj _ -> Some [] | _ -> None);
  (match Json.member "a" j |> Option.get |> Json.to_arr with
  | Some [ x; y; z ] ->
    Alcotest.(check (option (float 1e-9))) "1" (Some 1.) (Json.to_num x);
    Alcotest.(check (option (float 1e-9))) "2.5" (Some 2.5) (Json.to_num y);
    Alcotest.(check (option (float 1e-9))) "-3e2" (Some (-300.)) (Json.to_num z)
  | _ -> Alcotest.fail "array");
  Alcotest.(check (option string)) "escapes" (Some "q\"A")
    (Json.member "s" j |> Option.get |> Json.to_str);
  (match Json.parse "{\"a\": 1} trailing" with
  | Ok _ -> Alcotest.fail "trailing garbage accepted"
  | Error _ -> ());
  match Json.parse "{\"a\": }" with
  | Ok _ -> Alcotest.fail "malformed accepted"
  | Error _ -> ()

let test_json_escape_roundtrip () =
  let s = "tab\t nl\n quote\" backslash\\ ctrl\x01" in
  match Json.parse ("\"" ^ Json.escape s ^ "\"") with
  | Ok (Json.Str s') -> Alcotest.(check string) "roundtrip" s s'
  | _ -> Alcotest.fail "escaped string does not parse"

(* --- metrics ------------------------------------------------------------------ *)

let test_metrics_registry () =
  let c = Metrics.counter "test.obs.counter" in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "counter" 42 (Metrics.value c);
  let c' = Metrics.counter "test.obs.counter" in
  Metrics.incr c';
  Alcotest.(check int) "same instrument by name" 43 (Metrics.value c);
  (match Metrics.gauge "test.obs.counter" with
  | _ -> Alcotest.fail "kind mismatch must raise"
  | exception Invalid_argument _ -> ());
  let h = Metrics.histogram ~bounds:[| 1.; 10. |] "test.obs.hist" in
  List.iter (Metrics.observe h) [ 0.5; 5.; 50.; 500. ];
  let s = Metrics.hist_snapshot h in
  Alcotest.(check (array int)) "buckets" [| 1; 1; 2 |] s.Metrics.counts;
  Alcotest.(check int) "total" 4 s.Metrics.total

(* Exact values, hand-computed: counts [1; 2; 1] over bounds [10; 20; 30]
   with Prometheus-style linear interpolation inside the target bucket. *)
let test_quantile_exact () =
  let h = Metrics.histogram ~bounds:[| 10.; 20.; 30. |] "test.obs.quantile" in
  Alcotest.(check bool) "empty histogram has no quantile" true
    (Float.is_nan (Metrics.quantile (Metrics.hist_snapshot h) 0.5));
  List.iter (Metrics.observe h) [ 5.; 15.; 15.; 25. ];
  let q p = Metrics.quantile (Metrics.hist_snapshot h) p in
  (* rank = q * 4; the rank-2 sample sits halfway into bucket (10, 20]. *)
  Alcotest.(check (float 1e-9)) "q=0 is the distribution floor" 0. (q 0.);
  Alcotest.(check (float 1e-9)) "p25 = first bucket's edge" 10. (q 0.25);
  Alcotest.(check (float 1e-9)) "p50 interpolates mid-bucket" 15. (q 0.5);
  Alcotest.(check (float 1e-9)) "p75 lands on a bucket edge" 20. (q 0.75);
  Alcotest.(check (float 1e-9)) "p95 interpolates the last bucket" 28. (q 0.95);
  Alcotest.(check (float 1e-9)) "p100 = last edge" 30. (q 1.);
  Alcotest.(check (float 1e-9)) "out-of-range q clamps" 30. (q 2.);
  (* Overflow observations interpolate up to the max observed value
     instead of being clamped to the last finite bound. *)
  Metrics.observe h 1e9;
  Alcotest.(check (float 1e-9)) "overflow reaches the max observed" 1e9
    (Metrics.quantile (Metrics.hist_snapshot h) 1.)

(* Regression: a histogram fed values beyond its top bound must report a
   p99 strictly above that bound (the old quantile ignored the overflow
   bucket and silently clamped to bounds.(n-1)). Exact expected values:
   counts [0; 0; 8; 2] over bounds [10; 20; 30] with max observed 50. *)
let test_quantile_overflow_honest () =
  let h = Metrics.histogram ~bounds:[| 10.; 20.; 30. |] "test.obs.overflow" in
  for _ = 1 to 8 do
    Metrics.observe h 25.
  done;
  Metrics.observe h 50.;
  Metrics.observe h 50.;
  let s = Metrics.hist_snapshot h in
  Alcotest.(check (float 1e-9)) "max observed tracked" 50. s.Metrics.maxv;
  let q p = Metrics.quantile s p in
  Alcotest.(check (float 1e-9)) "p50 stays in a finite bucket" 26.25 (q 0.5);
  (* rank 9.9 sits 1.9/2 of the way into the overflow bucket (30, 50]. *)
  Alcotest.(check (float 1e-9)) "p99 interpolates past the top bound" 49.
    (q 0.99);
  Alcotest.(check bool) "p99 > top bound" true (q 0.99 > 30.);
  Alcotest.(check (float 1e-9)) "p100 = max observed" 50. (q 1.)

let test_summary_prints_percentiles () =
  let h = Metrics.histogram ~bounds:[| 1.; 2. |] "test.obs.summary_hist" in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 1.5; 3. ];
  let out = Format.asprintf "%a" Hidet_obs.Summary.pp_metrics () in
  let contains needle =
    let n = String.length needle and m = String.length out in
    let rec go i = i + n <= m && (String.sub out i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains needle))
    [ "p50="; "p95="; "p99=" ]

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Satellite: empty histograms render as n=0 (no nan quantiles) and
   non-empty ones print the tracked max. *)
let test_summary_max_and_empty () =
  let h = Metrics.histogram ~bounds:[| 1.; 2. |] "test.obs.summary_max" in
  List.iter (Metrics.observe h) [ 0.5; 3. ];
  let _ = Metrics.histogram ~bounds:[| 1. |] "test.obs.summary_empty" in
  let out = Format.asprintf "%a" Hidet_obs.Summary.pp_metrics () in
  let line name =
    match
      List.find_opt (fun l -> contains l name) (String.split_on_char '\n' out)
    with
    | Some l -> l
    | None -> Alcotest.failf "no summary line for %s" name
  in
  Alcotest.(check bool) "max printed" true (contains (line "summary_max") "max=3");
  let empty = line "summary_empty" in
  Alcotest.(check bool) "empty histogram reports n=0" true (contains empty "n=0");
  Alcotest.(check bool) "no nan quantiles" false (contains empty "nan")

(* --- labeled metrics ---------------------------------------------------------- *)

let test_labeled_names () =
  Alcotest.(check string) "canonical form, keys sorted"
    "serve.x{bucket=\"8\",model=\"m\"}"
    (Metrics.labeled_name "serve.x" [ ("model", "m"); ("bucket", "8") ]);
  Alcotest.(check string) "no labels = base name" "serve.x"
    (Metrics.labeled_name "serve.x" []);
  let bad labels =
    match Metrics.labeled_name "f" labels with
    | _ -> Alcotest.fail "invalid labels accepted"
    | exception Invalid_argument _ -> ()
  in
  bad [ ("le", "1") ];
  bad [ ("a", "1"); ("a", "2") ];
  bad [ ("9bad", "1") ];
  bad [ ("no-dash", "1") ];
  (* values needing escapes survive the name encoding and split back *)
  let v = "a\"b\\c\nd" in
  let base, labels = Metrics.split_labels (Metrics.labeled_name "f" [ ("k", v) ]) in
  Alcotest.(check string) "base splits back" "f" base;
  Alcotest.(check (list (pair string string))) "escaped value roundtrips"
    [ ("k", v) ] labels;
  Alcotest.(check (pair string (list (pair string string))))
    "malformed suffix tolerated, no labels"
    ("weird{", [])
    (Metrics.split_labels "weird{")

let test_labeled_instruments () =
  let c = Metrics.counter_labeled "test.obs.lbl" [ ("m", "a"); ("b", "1") ] in
  let c' = Metrics.counter_labeled "test.obs.lbl" [ ("b", "1"); ("m", "a") ] in
  Metrics.incr c;
  Metrics.incr c';
  Alcotest.(check int) "label order canonicalizes to one instrument" 2
    (Metrics.value c);
  let g = Metrics.gauge_labeled "test.obs.lblg" [ ("m", "a") ] in
  Metrics.set_gauge g 2.5;
  Alcotest.(check (float 0.)) "labeled gauge" 2.5 (Metrics.gauge_value g);
  let h = Metrics.histogram_labeled ~bounds:[| 1. |] "test.obs.lblh" [ ("m", "a") ] in
  Metrics.observe h 0.5;
  Alcotest.(check int) "labeled histogram" 1
    (Metrics.hist_snapshot h).Metrics.total;
  let names = List.map fst (Metrics.dump ()) in
  Alcotest.(check bool) "dump stays sorted with labeled names" true
    (List.sort compare names = names)

(* --- Prometheus exposition ---------------------------------------------------- *)

(* Hand-checked rendering of a tiny synthetic dump: one TYPE line per
   family even when label variants interleave with other names in sort
   order, cumulative buckets, +Inf == _count. *)
let test_prom_exposition () =
  let dump =
    [
      ("lat.ms",
        Metrics.Histogram
          {
            Metrics.bounds = [| 1.; 10. |];
            counts = [| 2; 1; 1 |];
            total = 4;
            sum = 17.5;
            maxv = 50.;
          });
      ("serve.requests", Metrics.Counter 5);
      ("serve.requests_total", Metrics.Counter 9);
      ("serve.requests{model=\"m\"}", Metrics.Counter 3);
      ("queue.depth", Metrics.Gauge 2.5);
    ]
  in
  let text, samples = Prom.of_dump dump in
  Alcotest.(check int) "sample count" 9 samples;
  List.iter
    (fun l -> Alcotest.(check bool) (l ^ " present") true (contains text (l ^ "\n")))
    [
      "# TYPE lat_ms histogram";
      "lat_ms_bucket{le=\"1\"} 2";
      "lat_ms_bucket{le=\"10\"} 3";
      "lat_ms_bucket{le=\"+Inf\"} 4";
      "lat_ms_sum 17.5";
      "lat_ms_count 4";
      "# TYPE serve_requests counter";
      "serve_requests 5";
      "serve_requests{model=\"m\"} 3";
      "# TYPE queue_depth gauge";
      "queue_depth 2.5";
    ];
  (* one TYPE line per family despite "serve.requests_total" sorting
     between the unlabeled and labeled serve.requests variants *)
  let type_lines =
    List.filter
      (fun l -> contains l "# TYPE serve_requests ")
      (String.split_on_char '\n' text)
  in
  Alcotest.(check int) "family grouped under one TYPE line" 1
    (List.length type_lines);
  Alcotest.(check bool) "the interleaving family keeps its own TYPE" true
    (contains text "# TYPE serve_requests_total counter\n");
  match Prom.check text with
  | Error m -> Alcotest.fail ("validator rejects own exposition: " ^ m)
  | Ok n -> Alcotest.(check int) "validator counts samples" 9 n

let test_prom_check_rejects () =
  let bad name s =
    match Prom.check s with
    | Ok _ -> Alcotest.fail (name ^ " accepted")
    | Error _ -> ()
  in
  bad "sample without TYPE" "orphan 1\n";
  bad "duplicate sample" "# TYPE a counter\na 1\na 2\n";
  bad "duplicate TYPE" "# TYPE a counter\n# TYPE a gauge\na 1\n";
  bad "unquoted label value" "# TYPE a counter\na{k=v} 1\n";
  bad "unparseable value" "# TYPE a counter\na one\n";
  bad "histogram without buckets" "# TYPE h histogram\nh_sum 1\nh_count 1\n";
  bad "non-cumulative buckets"
    "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 1\nh_sum 0\nh_count 1\n";
  bad "missing +Inf bucket"
    "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 0\nh_count 1\n";
  bad "+Inf disagrees with _count"
    "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 0\nh_count 3\n";
  bad "missing _sum"
    "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n";
  match
    Prom.check
      "# TYPE h histogram\nh_bucket{le=\"1\",m=\"x\\\"y\"} 1\nh_bucket{le=\"+Inf\",m=\"x\\\"y\"} 1\nh_sum{m=\"x\\\"y\"} 0.5\nh_count{m=\"x\\\"y\"} 1\n"
  with
  | Ok 4 -> ()
  | Ok n -> Alcotest.failf "escaped labels: %d samples" n
  | Error m -> Alcotest.fail ("escaped labels rejected: " ^ m)

(* --- lifecycle event log ------------------------------------------------------- *)

let ev ?(attrs = []) t rid kind = { Events.t; rid; kind; attrs }

let test_events_jsonl_roundtrip () =
  let evs =
    [
      ev 0.1 1 Events.Admitted ~attrs:[ ("client", "0"); ("deadline", "0.8") ];
      ev (0.1 +. 0.2) 1 Events.Batched ~attrs:[ ("bid", "0") ];
      ev 0.4 1 Events.Dispatched ~attrs:[ ("worker", "1") ];
      ev 0.5 1 Events.Completed ~attrs:[ ("miss", "0"); ("q", "a\"b\\c") ];
    ]
  in
  match Events.parse_jsonl (Events.to_jsonl evs) with
  | Error m -> Alcotest.fail ("roundtrip does not parse: " ^ m)
  | Ok back ->
    (* %.17g timestamps make even 0.1 +. 0.2 round-trip bit-exactly *)
    Alcotest.(check bool) "events round-trip exactly" true (compare back evs = 0)

let test_events_ring_accounting () =
  let log = Events.create ~capacity:4 () in
  for i = 0 to 9 do
    Events.emit log (ev (float_of_int i) i Events.Admitted)
  done;
  let evs = Events.events log in
  Alcotest.(check (list int)) "last 4 retained, oldest first" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.Events.rid) evs);
  Alcotest.(check int) "total counts every emit" 10 (Events.total log);
  Alcotest.(check int) "dropped = total - retained" 6 (Events.dropped log);
  match Events.create ~capacity:0 () with
  | _ -> Alcotest.fail "zero capacity accepted"
  | exception Invalid_argument _ -> ()

let test_events_sort_deterministic () =
  let scrambled =
    [
      ev 0.5 1 Events.Verified;
      ev 0.5 1 Events.Completed;
      ev 0.5 1 Events.Executed;
      ev 0.2 1 Events.Admitted;
      ev 0.1 0 Events.Admitted;
      ev 0.3 1 Events.Dispatched;
      ev 0.3 1 Events.Batched;
    ]
  in
  let sorted = Events.sort_events scrambled in
  Alcotest.(check (list string)) "by (t, rid, lifecycle rank)"
    [ "admitted"; "admitted"; "batched"; "dispatched"; "completed"; "executed"; "verified" ]
    (List.map (fun e -> Events.kind_to_string e.Events.kind) sorted)

let lifecheck evs = Events.check (Events.to_jsonl evs)

let test_lifecycle_accepts () =
  let good =
    [
      ev 0.0 0 Events.Admitted;
      ev 0.1 0 Events.Batched ~attrs:[ ("bid", "0") ];
      ev 0.1 0 Events.Dispatched;
      ev 0.2 0 Events.Completed;
      ev 0.2 0 Events.Executed;
      ev 0.2 0 Events.Verified ~attrs:[ ("ok", "1") ];
      ev 0.05 1 Events.Rejected;
      ev 0.0 2 Events.Admitted;
      ev 0.3 2 Events.Shed;
    ]
  in
  match lifecheck (Events.sort_events good) with
  | Error m -> Alcotest.fail ("well-formed log rejected: " ^ m)
  | Ok (n, rids) ->
    Alcotest.(check int) "events counted" 9 n;
    Alcotest.(check int) "distinct requests counted" 3 rids

let test_lifecycle_rejects () =
  let bad name evs =
    match lifecheck evs with
    | Ok _ -> Alcotest.fail (name ^ " accepted")
    | Error _ -> ()
  in
  bad "no terminal event" [ ev 0. 0 Events.Admitted ];
  bad "first event not an admission decision"
    [ ev 0. 0 Events.Batched; ev 0.1 0 Events.Completed ];
  bad "two terminal events"
    [
      ev 0. 0 Events.Admitted;
      ev 0.1 0 Events.Batched;
      ev 0.1 0 Events.Dispatched;
      ev 0.2 0 Events.Completed;
      ev 0.3 0 Events.Completed;
    ];
  bad "rejected must be sole"
    [ ev 0. 0 Events.Rejected; ev 0.1 0 Events.Shed ];
  bad "shed after batching"
    [ ev 0. 0 Events.Admitted; ev 0.1 0 Events.Batched; ev 0.2 0 Events.Shed ];
  bad "completed without dispatch"
    [ ev 0. 0 Events.Admitted; ev 0.1 0 Events.Completed ];
  bad "executed before dispatch"
    [
      ev 0. 0 Events.Admitted;
      ev 0.1 0 Events.Executed;
      ev 0.2 0 Events.Batched;
      ev 0.2 0 Events.Dispatched;
      ev 0.3 0 Events.Completed;
    ];
  bad "timestamps regress within a request"
    [
      ev 0.5 0 Events.Admitted;
      ev 0.1 0 Events.Batched;
      ev 0.1 0 Events.Dispatched;
      ev 0.2 0 Events.Completed;
    ];
  match Events.check "not json\n" with
  | Ok _ -> Alcotest.fail "garbage line accepted"
  | Error _ -> ()

let test_flight_fires_once () =
  let f = Events.Flight.create ~capacity:8 () in
  for i = 0 to 11 do
    Events.Flight.record f
      (ev (float_of_int i /. 10.) (i mod 3) Events.Admitted)
  done;
  Alcotest.(check bool) "not fired before trigger" false (Events.Flight.fired f);
  Alcotest.(check bool) "dump absent before trigger" true
    (Events.Flight.dump f = None);
  let dumps0 = Metrics.value (Metrics.counter "obs.flight_dumps") in
  Alcotest.(check bool) "first trigger captures" true
    (Events.Flight.trigger f ~reason:"deadline_miss" ~rid:2 ~t:1.0 ());
  Alcotest.(check bool) "second trigger is a no-op" false
    (Events.Flight.trigger f ~reason:"verify_mismatch" ~rid:0 ~t:2.0 ());
  Alcotest.(check int) "exactly one dump counted" (dumps0 + 1)
    (Metrics.value (Metrics.counter "obs.flight_dumps"));
  match Events.Flight.dump f with
  | None -> Alcotest.fail "no dump after firing"
  | Some d ->
    let j =
      match Json.parse d with
      | Ok j -> j
      | Error m -> Alcotest.fail ("dump is not JSON: " ^ m)
    in
    let str k = Json.member k j |> Option.get |> Json.to_str in
    let arr k = Json.member k j |> Option.get |> Json.to_arr |> Option.get in
    Alcotest.(check (option string)) "first reason kept" (Some "deadline_miss")
      (str "reason");
    (* ring capacity 8 kept rids of emits 4..11: 1,2,0,1,2,0,1,2 *)
    Alcotest.(check int) "recent = retained ring" 8 (List.length (arr "recent"));
    Alcotest.(check int) "timeline filters the offending rid" 3
      (List.length (arr "timeline"));
    List.iter
      (fun e ->
        Alcotest.(check (option (float 0.))) "timeline entries carry rid 2"
          (Some 2.)
          (Json.member "rid" e |> Option.get |> Json.to_num))
      (arr "timeline")

(* The process-global sink: off by default, scoped on via with_log, and
   feeding both the log and the armed flight recorder. *)
let test_global_sink_scoped () =
  Alcotest.(check bool) "sink off by default" false (Events.enabled ());
  Events.record (ev 0. 0 Events.Admitted);
  let log = Events.create () in
  let x =
    Events.with_log log (fun () ->
        Alcotest.(check bool) "sink on inside with_log" true (Events.enabled ());
        Events.record (ev 0.5 7 Events.Admitted);
        17)
  in
  Alcotest.(check int) "with_log passes the result through" 17 x;
  Alcotest.(check bool) "sink off after with_log" false (Events.enabled ());
  Alcotest.(check int) "only the scoped emit landed" 1 (Events.total log);
  Alcotest.(check bool) "untripped flight_trip reports false" false
    (Events.flight_trip ~reason:"x" ~rid:0 ~t:0. ())

(* --- flow arcs in the Chrome export -------------------------------------------- *)

let test_flow_export_and_validator () =
  let (), evs =
    Trace.with_collector (fun () ->
        Trace.span "ctrl" (fun _ ->
            Trace.flow ~id:42 ~dir:Trace.Flow_start "serve.req");
        Trace.span "work" (fun _ ->
            Trace.flow ~id:42 ~dir:Trace.Flow_step "serve.req";
            Trace.flow ~id:42 ~dir:Trace.Flow_end "serve.req"))
  in
  let s = Chrome.to_string evs in
  (match Chrome.check s with
  | Error m -> Alcotest.fail ("flow export rejected: " ^ m)
  | Ok n -> Alcotest.(check int) "2 spans + 3 flow points" 5 n);
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains s needle))
    [ "\"ph\":\"s\""; "\"ph\":\"t\""; "\"ph\":\"f\""; "\"id\":42"; "\"bp\":\"e\"" ];
  (* the start point must not carry the binding-point attribute *)
  Alcotest.(check bool) "start point has no bp" false
    (contains s "\"ph\":\"s\",\"id\":42,\"bp\"");
  match
    Chrome.check
      "{\"traceEvents\":[{\"name\":\"x\",\"cat\":\"flow\",\"ph\":\"s\",\"pid\":1,\"tid\":0,\"ts\":1.0}]}"
  with
  | Ok _ -> Alcotest.fail "flow point without id accepted"
  | Error m ->
    Alcotest.(check bool) "error names the missing id" true
      (contains m "id")

(* --- tuning log TSV ------------------------------------------------------------- *)

let with_temp_file f =
  let path = Filename.temp_file "hidet_obs" ".tsv" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_tuning_log_tsv () =
  let trials =
    [
      {
        Tlog.engine = "hidet";
        workload = "w\twith\ttabs";
        index = 0;
        config = "cfg";
        outcome = Tlog.Measured;
        latency = 1.5e-6;
        proposer = Tlog.Exhaustive;
      };
      {
        Tlog.engine = "ansor";
        workload = "w2";
        index = 1;
        config = "";
        outcome = Tlog.Rejected;
        latency = infinity;
        proposer = Tlog.Mutation;
      };
    ]
  in
  with_temp_file (fun path ->
      Tlog.save_tsv path trials;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "header + 2 records" 3 (List.length lines);
      Alcotest.(check string) "header"
        "engine\tworkload\tindex\tconfig\toutcome\tlatency_us\tproposer"
        (List.hd lines);
      let fields l = String.split_on_char '\t' l in
      Alcotest.(check int) "sanitized record width" 7
        (List.length (fields (List.nth lines 1)));
      Alcotest.(check string) "rejected latency sentinel" "-1.000"
        (List.nth (fields (List.nth lines 2)) 5);
      Alcotest.(check string) "proposer is the last column" "mutation"
        (List.nth (fields (List.nth lines 2)) 6);
      (* round trip: load_tsv gives back what save_tsv wrote (modulo the
         tab sanitation in the workload) *)
      match Tlog.load_tsv path with
      | Error e -> Alcotest.fail ("load_tsv failed: " ^ e)
      | Ok back ->
        Alcotest.(check int) "both records load" 2 (List.length back);
        let t0 = List.nth back 0 and t1 = List.nth back 1 in
        Alcotest.(check string) "workload sanitized" "w with tabs"
          t0.Tlog.workload;
        Alcotest.(check bool) "latency round trips" true
          (abs_float (t0.Tlog.latency -. 1.5e-6) < 1e-12);
        Alcotest.(check bool) "infinity round trips" true
          (t1.Tlog.latency = infinity);
        Alcotest.(check bool) "proposer round trips" true
          (t0.Tlog.proposer = Tlog.Exhaustive
          && t1.Tlog.proposer = Tlog.Mutation))

let test_tuning_log_parse_compat () =
  (* Rows written before the proposer column existed (six fields) must
     still parse, defaulting the proposer to Exhaustive. *)
  (match Tlog.parse_line "hidet\tmm_64\t3\tb64x64x8_w32x32\tmeasured\t12.500" with
  | Some t ->
    Alcotest.(check string) "engine" "hidet" t.Tlog.engine;
    Alcotest.(check int) "index" 3 t.Tlog.index;
    Alcotest.(check bool) "latency us -> s" true
      (abs_float (t.Tlog.latency -. 12.5e-6) < 1e-12);
    Alcotest.(check bool) "proposer defaults to exhaustive" true
      (t.Tlog.proposer = Tlog.Exhaustive)
  | None -> Alcotest.fail "six-column row rejected");
  (* Current seven-field rows. *)
  (match
     Tlog.parse_line "hidet\tmm_64\t9\tb32x32x8_w16x16\tmeasured\t7.250\tcrossover"
   with
  | Some t ->
    Alcotest.(check bool) "crossover parsed" true
      (t.Tlog.proposer = Tlog.Crossover)
  | None -> Alcotest.fail "seven-column row rejected");
  (* -1 sentinel reads back as infinity on both widths. *)
  (match Tlog.parse_line "h\tw\t0\t\trejected\t-1.000" with
  | Some t -> Alcotest.(check bool) "sentinel -> infinity" true (t.Tlog.latency = infinity)
  | None -> Alcotest.fail "sentinel row rejected");
  (* Malformed rows and the header are rejected, not mangled. *)
  List.iter
    (fun l ->
      match Tlog.parse_line l with
      | None -> ()
      | Some _ -> Alcotest.failf "malformed row accepted: %S" l)
    [
      "engine\tworkload\tindex\tconfig\toutcome\tlatency_us\tproposer";
      "h\tw\tnotanint\tcfg\tmeasured\t1.0";
      "h\tw\t0\tcfg\tnot_an_outcome\t1.0";
      "h\tw\t0\tcfg\tmeasured\t1.0\tnot_a_proposer";
      "too\tfew";
      "";
    ]

let () =
  Alcotest.run "hidet_obs"
    [
      ( "trace",
        [
          Alcotest.test_case "span nesting and containment" `Quick
            test_span_nesting;
          Alcotest.test_case "error attribute on raise" `Quick
            test_span_error_attr;
          Alcotest.test_case "noop recorder is allocation-light" `Quick
            test_noop_allocation_light;
          Alcotest.test_case "domains: tracks and counter sums" `Quick
            test_domains_tracks_and_counters;
        ] );
      ( "tuner",
        [
          Alcotest.test_case "per-candidate spans and log records" `Quick
            test_tuner_spans_and_log;
          QCheck_alcotest.to_alcotest prop_parallel_counter_parity;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "export parses and validates" `Quick
            test_chrome_json_valid;
          Alcotest.test_case "ts/dur consistent" `Quick test_chrome_ts_consistent;
          Alcotest.test_case "validator rejects malformed" `Quick
            test_chrome_check_rejects;
          Alcotest.test_case "flow arcs export and validate" `Quick
            test_flow_export_and_validator;
        ] );
      ( "json",
        [
          Alcotest.test_case "parser" `Quick test_json_parse;
          Alcotest.test_case "escape roundtrip" `Quick test_json_escape_roundtrip;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "quantile exact values" `Quick test_quantile_exact;
          Alcotest.test_case "overflow bucket reported honestly" `Quick
            test_quantile_overflow_honest;
          Alcotest.test_case "summary prints percentiles" `Quick
            test_summary_prints_percentiles;
          Alcotest.test_case "summary max and empty histograms" `Quick
            test_summary_max_and_empty;
          Alcotest.test_case "labeled names canonical and reversible" `Quick
            test_labeled_names;
          Alcotest.test_case "labeled instruments" `Quick
            test_labeled_instruments;
        ] );
      ( "prom",
        [
          Alcotest.test_case "exposition hand-checked" `Quick
            test_prom_exposition;
          Alcotest.test_case "validator rejects malformed" `Quick
            test_prom_check_rejects;
        ] );
      ( "events",
        [
          Alcotest.test_case "jsonl roundtrip" `Quick test_events_jsonl_roundtrip;
          Alcotest.test_case "ring drop accounting" `Quick
            test_events_ring_accounting;
          Alcotest.test_case "deterministic sort order" `Quick
            test_events_sort_deterministic;
          Alcotest.test_case "lifecycle validator accepts" `Quick
            test_lifecycle_accepts;
          Alcotest.test_case "lifecycle validator rejects" `Quick
            test_lifecycle_rejects;
          Alcotest.test_case "flight recorder fires once" `Quick
            test_flight_fires_once;
          Alcotest.test_case "global sink is scoped" `Quick
            test_global_sink_scoped;
        ] );
      ( "tuning log",
        [
          Alcotest.test_case "tsv export" `Quick test_tuning_log_tsv;
          Alcotest.test_case "parse compat (6 and 7 columns)" `Quick
            test_tuning_log_parse_compat;
        ] );
    ]
