(* Parity suite for the native (codegen → ocamlopt → Dynlink) execution
   backend: on randomly generated kernels the dynlinked code must equal the
   closure-compiling backend bit for bit (results, statement counts and
   errors), and compilation must be memoized. When the toolchain is
   unavailable the suite skips visibly instead of failing. *)

open Hidet_ir
module CE = Hidet_gpu.Compile_exec
module EO = Hidet_gpu.Exec_ocaml
module G = QCheck.Gen

(* --- random kernel generator (same shape as test_compile_exec) ------------ *)

type spec = {
  grid : int;
  block : int;
  staged : bool;
  reduce : int;
  pred_tail : bool;
  block_invariant : bool;
  value_seed : int;
  input_seed : int;
}

let spec_gen =
  let open G in
  let* grid = 1 -- 4 in
  let* block = oneofl [ 16; 32; 64 ] in
  let* staged = bool in
  let* reduce = oneofl [ 0; 0; 2; 3; 4 ] in
  let* pred_tail = bool in
  let* block_invariant = frequency [ (3, return false); (1, return true) ] in
  let* value_seed = 0 -- 1_000_000 in
  let+ input_seed = 0 -- 1_000_000 in
  {
    grid;
    block;
    staged;
    reduce;
    pred_tail;
    block_invariant;
    value_seed;
    input_seed;
  }

let spec_print s =
  Printf.sprintf
    "{grid=%d; block=%d; staged=%b; reduce=%d; pred_tail=%b; \
     block_invariant=%b; value_seed=%d; input_seed=%d}"
    s.grid s.block s.staged s.reduce s.pred_tail s.block_invariant s.value_seed
    s.input_seed

let gen_value rng ~(a : Buffer.t) ~(b : Buffer.t) ~(smem : Buffer.t option)
    ~(n : int) ~(gid : Expr.t) =
  let idx () =
    match Random.State.int rng 4 with
    | 0 -> gid
    | 1 -> Expr.sub (Expr.int (n - 1)) gid
    | 2 -> Expr.modulo (Expr.mul gid (Expr.int 3)) (Expr.int n)
    | _ -> Expr.modulo (Expr.add gid (Expr.int 7)) (Expr.int n)
  in
  let leaf () =
    match Random.State.int rng 6 with
    | 0 -> Expr.load a [ idx () ]
    | 1 -> Expr.load b [ idx () ]
    | 2 -> (
      match smem with
      | Some s ->
        Expr.load s
          [ Expr.sub (Expr.int (List.hd s.Buffer.dims - 1)) Expr.Thread_idx ]
      | None -> Expr.load a [ idx () ])
    | 3 -> Expr.float (float_of_int (Random.State.int rng 9) /. 4.)
    | 4 -> Expr.int (Random.State.int rng 5)
    | _ -> Expr.Thread_idx
  in
  let rec go depth =
    if depth = 0 then leaf ()
    else
      match Random.State.int rng 8 with
      | 0 -> Expr.add (go (depth - 1)) (go (depth - 1))
      | 1 -> Expr.sub (go (depth - 1)) (go (depth - 1))
      | 2 -> Expr.mul (go (depth - 1)) (go (depth - 1))
      | 3 -> Expr.min_ (go (depth - 1)) (go (depth - 1))
      | 4 -> Expr.max_ (go (depth - 1)) (go (depth - 1))
      | 5 ->
        let u =
          match Random.State.int rng 4 with
          | 0 -> Expr.Abs
          | 1 -> Expr.Tanh
          | 2 -> Expr.Neg
          | _ -> Expr.Sqrt
        in
        Expr.unop u (go (depth - 1))
      | 6 ->
        Expr.select
          (Expr.lt Expr.Thread_idx (Expr.int (1 + Random.State.int rng 31)))
          (go (depth - 1))
          (go (depth - 1))
      | _ -> leaf ()
  in
  go (1 + Random.State.int rng 2)

let build_kernel (s : spec) =
  let n = s.grid * s.block in
  let a = Buffer.create "A" [ n ] and b = Buffer.create "B" [ n ] in
  let c = Buffer.create "C" [ n ] in
  let smem =
    if s.staged then Some (Buffer.create ~scope:Buffer.Shared "smem" [ s.block ])
    else None
  in
  let reg =
    if s.reduce > 0 then Some (Buffer.create ~scope:Buffer.Register "acc" [ 1 ])
    else None
  in
  let gid =
    Expr.add (Expr.mul Expr.Block_idx (Expr.int s.block)) Expr.Thread_idx
  in
  let rng = Random.State.make [| s.value_seed |] in
  let value = gen_value rng ~a ~b ~smem ~n ~gid in
  let out_idx = if s.block_invariant then Expr.Thread_idx else gid in
  let stage =
    match smem with
    | Some sm ->
      [ Stmt.store sm [ Expr.Thread_idx ] (Expr.load a [ gid ]); Stmt.sync ]
    | None -> []
  in
  let x = Var.fresh "x" in
  let store_out v =
    let st = Stmt.let_ x out_idx (Stmt.store c [ Expr.var x ] v) in
    if s.pred_tail then Stmt.if_ (Expr.lt gid (Expr.int (max 1 (n - 3)))) st
    else st
  in
  let compute =
    match reg with
    | Some r ->
      let rv = Var.fresh "r" in
      [
        Stmt.store r [ Expr.int 0 ] (Expr.float 0.);
        Stmt.for_ rv (Expr.int s.reduce)
          (Stmt.store r [ Expr.int 0 ]
             (Expr.add
                (Expr.load r [ Expr.int 0 ])
                (Expr.add value (Expr.mul (Expr.var rv) (Expr.float 0.5)))));
        store_out (Expr.load r [ Expr.int 0 ]);
      ]
    | None -> [ store_out value ]
  in
  let k =
    Kernel.create
      ?shared:(Option.map (fun sm -> [ sm ]) smem)
      ?regs:(Option.map (fun r -> [ r ]) reg)
      ~name:"gen" ~params:[ a; b; c ] ~grid_dim:s.grid ~block_dim:s.block
      (Stmt.seq (stage @ compute))
  in
  (k, a, b, c, n)

let make_inputs seed n =
  let rng = Random.State.make [| seed |] in
  Array.init n (fun _ -> Random.State.float rng 4. -. 2.)

let bits = Int64.bits_of_float

let arrays_equal_bits x y =
  Array.length x = Array.length y
  && Array.for_all Fun.id
       (Array.init (Array.length x) (fun i -> bits x.(i) = bits y.(i)))

let capture runner (k : Kernel.t) ~a ~b ~c ~n ~seed =
  let av = make_inputs seed n
  and bv = make_inputs (seed + 1) n
  and cv = Array.make n 0. in
  try
    runner k [ (a, av); (b, bv); (c, cv) ];
    Ok cv
  with e -> Error e

let same_result r1 r2 =
  match (r1, r2) with
  | Ok x, Ok y -> arrays_equal_bits x y
  | Error e1, Error e2 -> e1 = e2
  | _ -> false

let stmts_counter = Hidet_obs.Metrics.counter "sim.statements"

(* --- qcheck properties ----------------------------------------------------- *)

let arb_spec = QCheck.make ~print:spec_print spec_gen

(* Also asserts the executed-statement counts agree: the generated code
   must bump its counter at exactly the closure backend's points. *)
let prop_native_eq_compiled =
  QCheck.Test.make ~count:60 ~name:"native backend == closure backend"
    arb_spec (fun s ->
      let k, a, b, c, n = build_kernel s in
      let v = Hidet_obs.Metrics.value in
      let s0 = v stmts_counter in
      let r_closure =
        capture (CE.run ~parallel:false) k ~a ~b ~c ~n ~seed:s.input_seed
      in
      let closure_stmts = v stmts_counter - s0 in
      let s1 = v stmts_counter in
      let r_native =
        capture (EO.run ~parallel:false) k ~a ~b ~c ~n ~seed:s.input_seed
      in
      let native_stmts = v stmts_counter - s1 in
      same_result r_closure r_native && closure_stmts = native_stmts)

let prop_native_parallel_eq_sequential =
  QCheck.Test.make ~count:30 ~name:"native parallel grid == sequential grid"
    arb_spec (fun s ->
      let k, a, b, c, n = build_kernel s in
      let r_par =
        capture (EO.run ~parallel:true) k ~a ~b ~c ~n ~seed:s.input_seed
      in
      let r_seq =
        capture (EO.run ~parallel:false) k ~a ~b ~c ~n ~seed:s.input_seed
      in
      same_result r_par r_seq)

(* --- deterministic error-parity cases -------------------------------------- *)

let both_raise_same name mk =
  Alcotest.test_case name `Quick (fun () ->
      let k, bindings_of = mk () in
      let go runner =
        try
          runner k (bindings_of ());
          Ok ()
        with e -> Error e
      in
      let r1 = go (CE.run ~parallel:false)
      and r2 = go (EO.run ~parallel:false) in
      (match r1 with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "closure backend did not raise");
      Alcotest.(check bool)
        "same exception (constructor and message)" true (r1 = r2))

let runtime_divergence_kernel () =
  let c = Buffer.create "C" [ 32 ] in
  let x = Var.fresh "x" in
  let body =
    Stmt.seq
      [
        Stmt.let_ x Expr.Thread_idx
          (Stmt.if_ (Expr.lt (Expr.var x) (Expr.int 16)) Stmt.sync);
        Stmt.store c [ Expr.Thread_idx ] (Expr.float 0.);
      ]
  in
  let k =
    Kernel.create ~name:"rt_diverge" ~params:[ c ] ~grid_dim:1 ~block_dim:32
      body
  in
  (k, fun () -> [ (c, Array.make 32 0.) ])

let oob_store_kernel () =
  let c = Buffer.create "C" [ 8 ] in
  let body = Stmt.store c [ Expr.Thread_idx ] (Expr.float 1.) in
  let k =
    Kernel.create ~name:"oob" ~params:[ c ] ~grid_dim:1 ~block_dim:32 body
  in
  (k, fun () -> [ (c, Array.make 8 0.) ])

let negative_index_kernel () =
  let a = Buffer.create "A" [ 32 ] and c = Buffer.create "C" [ 32 ] in
  let body =
    Stmt.store c [ Expr.Thread_idx ]
      (Expr.load a [ Expr.sub Expr.Thread_idx (Expr.int 1) ])
  in
  let k =
    Kernel.create ~name:"neg" ~params:[ a; c ] ~grid_dim:1 ~block_dim:32 body
  in
  (k, fun () -> [ (a, Array.make 32 0.); (c, Array.make 32 0.) ])

let missing_binding_kernel () =
  let c = Buffer.create "C" [ 8 ] in
  let k =
    Kernel.create ~name:"missing" ~params:[ c ] ~grid_dim:1 ~block_dim:1
      (Stmt.store c [ Expr.int 0 ] (Expr.float 1.))
  in
  (k, fun () -> [])

let div_by_zero_kernel () =
  let c = Buffer.create "C" [ 8 ] in
  let k =
    Kernel.create ~name:"divz" ~params:[ c ] ~grid_dim:1 ~block_dim:1
      (Stmt.store c [ Expr.int 0 ]
         (Expr.div (Expr.int 1) (Expr.sub Expr.Thread_idx Expr.Thread_idx)))
  in
  (k, fun () -> [ (c, Array.make 8 0.) ])

(* --- deterministic result parity ------------------------------------------- *)

let check_same_outputs name k bindings_of outputs =
  Alcotest.test_case name `Quick (fun () ->
      let run runner =
        let bs = bindings_of () in
        runner k bs;
        List.map (fun b -> List.assq b bs) outputs
      in
      let o1 = run (CE.run ~parallel:false)
      and o2 = run (EO.run ~parallel:false) in
      List.iter2
        (fun x y ->
          Alcotest.(check bool) "outputs bit-identical" true
            (arrays_equal_bits x y))
        o1 o2)

let mma_kernel () =
  let a = Buffer.create "A" [ 8; 4 ] and b = Buffer.create "B" [ 4; 8 ] in
  let c = Buffer.create "C" [ 8; 8 ] in
  let sa = Buffer.create ~scope:Buffer.Shared "sa" [ 8; 4 ] in
  let sb = Buffer.create ~scope:Buffer.Shared "sb" [ 4; 8 ] in
  let sc = Buffer.create ~scope:Buffer.Warp "sc" [ 8; 8 ] in
  let copy_in =
    Stmt.seq
      [
        Stmt.store sa
          [
            Expr.div Expr.Thread_idx (Expr.int 4);
            Expr.modulo Expr.Thread_idx (Expr.int 4);
          ]
          (Expr.load a
             [
               Expr.div Expr.Thread_idx (Expr.int 4);
               Expr.modulo Expr.Thread_idx (Expr.int 4);
             ]);
        Stmt.store sb
          [
            Expr.div Expr.Thread_idx (Expr.int 8);
            Expr.modulo Expr.Thread_idx (Expr.int 8);
          ]
          (Expr.load b
             [
               Expr.div Expr.Thread_idx (Expr.int 8);
               Expr.modulo Expr.Thread_idx (Expr.int 8);
             ]);
      ]
  in
  let mma =
    Stmt.Mma
      {
        m = 8;
        n = 8;
        k = 4;
        a = sa;
        a_off = [ Expr.int 0; Expr.int 0 ];
        b = sb;
        b_off = [ Expr.int 0; Expr.int 0 ];
        c = sc;
        c_off = [ Expr.int 0; Expr.int 0 ];
      }
  in
  let writeback =
    Stmt.seq
      (List.init 2 (fun r ->
           Stmt.store c
             [
               Expr.add
                 (Expr.mul (Expr.int r) (Expr.int 4))
                 (Expr.div Expr.Thread_idx (Expr.int 8));
               Expr.modulo Expr.Thread_idx (Expr.int 8);
             ]
             (Expr.load sc
                [
                  Expr.add
                    (Expr.mul (Expr.int r) (Expr.int 4))
                    (Expr.div Expr.Thread_idx (Expr.int 8));
                  Expr.modulo Expr.Thread_idx (Expr.int 8);
                ])))
  in
  let body = Stmt.seq [ copy_in; Stmt.sync; mma; Stmt.sync; writeback ] in
  let k =
    Kernel.create ~shared:[ sa; sb ] ~warp_bufs:[ sc ] ~name:"mma"
      ~params:[ a; b; c ] ~grid_dim:1 ~block_dim:32 body
  in
  let bindings_of () =
    [
      (a, Array.init 32 (fun x -> float_of_int (x mod 5) -. 2.));
      (b, Array.init 32 (fun x -> float_of_int (x mod 7) -. 3.));
      (c, Array.make 64 0.);
    ]
  in
  (k, bindings_of, [ c ])

(* --- memoization & codegen ------------------------------------------------- *)

let vadd_kernel () =
  let n = 128 in
  let a = Buffer.create "A" [ n ] and c = Buffer.create "C" [ n ] in
  let gid = Expr.add (Expr.mul Expr.Block_idx (Expr.int 32)) Expr.Thread_idx in
  ( Kernel.create ~name:"vadd" ~params:[ a; c ] ~grid_dim:4 ~block_dim:32
      (Stmt.store c [ gid ] (Expr.add (Expr.load a [ gid ]) (Expr.float 1.))),
    a,
    c )

let test_compile_is_memoized () =
  let k, a, c = vadd_kernel () in
  let v = Hidet_obs.Metrics.value in
  let m_units = Hidet_obs.Metrics.counter "sim.native.units" in
  let m_hits = Hidet_obs.Metrics.counter "sim.native.memo_hits" in
  let c1 = EO.compile k in
  let units_after_first = v m_units in
  let hits0 = v m_hits in
  let c2 = EO.compile k in
  Alcotest.(check int) "second compile builds no new unit" units_after_first
    (v m_units);
  Alcotest.(check bool) "second compile hits the memo" true
    (v m_hits = hits0 + 1);
  let cv1 = Array.make 128 0. and cv2 = Array.make 128 0. in
  EO.run_compiled c1 [ (a, Array.make 128 1.); (c, cv1) ];
  EO.run_compiled c2 [ (a, Array.make 128 2.); (c, cv2) ];
  Alcotest.(check (float 0.)) "first launch" 2. cv1.(5);
  Alcotest.(check (float 0.)) "memoized unit still correct" 3. cv2.(5)

let test_key_scopes_memo () =
  (* Distinct workload keys compile distinct units even for identical
     source; the digest alone would have shared them. *)
  let k, _, _ = vadd_kernel () in
  let v = Hidet_obs.Metrics.value in
  let m_units = Hidet_obs.Metrics.counter "sim.native.units" in
  let u0 = v m_units in
  ignore (EO.compile ~key:"wk-a" k);
  ignore (EO.compile ~key:"wk-b" k);
  ignore (EO.compile ~key:"wk-a" k);
  Alcotest.(check int) "two keys, two units" (u0 + 2) (v m_units)

let test_source_mentions_no_dispatch () =
  (* The generated source is type-specialized: a pure float/int kernel
     never references the boxed fallback. *)
  let k, _, _ = vadd_kernel () in
  let src = EO.source k in
  let contains sub s =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "no dyn_binop in specialized source" false
    (contains "dyn_binop" src);
  Alcotest.(check bool) "uses unsafe accesses" true
    (contains "Array.unsafe_get" src)

let test_native_metrics_counters () =
  let k, a, c = vadd_kernel () in
  let v = Hidet_obs.Metrics.value in
  let m_threads = Hidet_obs.Metrics.counter "sim.threads" in
  let t0 = v m_threads and s0 = v stmts_counter in
  EO.run k [ (a, Array.make 128 1.); (c, Array.make 128 0.) ];
  Alcotest.(check int) "threads counted" (Kernel.num_threads k)
    (v m_threads - t0);
  Alcotest.(check bool) "statements counted" true (v stmts_counter - s0 >= 128)

(* --------------------------------------------------------------------------- *)

let () =
  match EO.available () with
  | Error reason ->
    (* Visible skip: the toolchain probe failed, so parity cannot run
       here. The codegen itself still must work. *)
    Printf.printf
      "SKIP exec_ocaml parity: native toolchain unavailable (%s)\n%!" reason;
    let k, _, _ = vadd_kernel () in
    Alcotest.run "exec_ocaml"
      [
        ( "codegen only (toolchain unavailable)",
          [
            Alcotest.test_case "source generates" `Quick (fun () ->
                Alcotest.(check bool) "non-empty" true
                  (String.length (EO.source k) > 0));
          ] );
      ]
  | Ok () ->
    Alcotest.run "exec_ocaml"
      [
        ( "parity",
          [
            QCheck_alcotest.to_alcotest prop_native_eq_compiled;
            QCheck_alcotest.to_alcotest prop_native_parallel_eq_sequential;
          ] );
        ( "error parity",
          [
            both_raise_same "runtime barrier divergence"
              runtime_divergence_kernel;
            both_raise_same "out-of-bounds store" oob_store_kernel;
            both_raise_same "negative index load" negative_index_kernel;
            both_raise_same "missing binding" missing_binding_kernel;
            both_raise_same "division by zero" div_by_zero_kernel;
          ] );
        ( "result parity",
          [
            (let k, b, o = mma_kernel () in
             check_same_outputs "mma tile" k b o);
          ] );
        ( "compilation",
          [
            Alcotest.test_case "compile is memoized" `Quick
              test_compile_is_memoized;
            Alcotest.test_case "workload key scopes the memo" `Quick
              test_key_scopes_memo;
            Alcotest.test_case "source is type-specialized" `Quick
              test_source_mentions_no_dispatch;
          ] );
        ( "observability",
          [
            Alcotest.test_case "metrics counters" `Quick
              test_native_metrics_counters;
          ] );
      ]
