(* Tests for the serving runtime: batcher decisions (including the
   floating-point timer boundary), seeded load generation, virtual-time
   scheduling invariants and qcheck determinism (same seed => identical
   batch compositions and shed sets), bucket-variant compilation hitting
   the schedule cache instead of re-tuning, and batched execution agreeing
   bit-for-bit with the batch-1 plan. *)

module B = Hidet_serve.Batcher
module L = Hidet_serve.Loadgen
module R = Hidet_serve.Registry
module P = Hidet_serve.Pool
module Srv = Hidet_serve.Server
module HE = Hidet.Hidet_engine
module Metrics = Hidet_obs.Metrics
module SC = Hidet_sched.Schedule_cache
module T = Hidet_tensor.Tensor

let dev = Hidet_gpu.Device.rtx3090

let bcfg ?(buckets = [ 1; 2; 4; 8 ]) ?(max_wait = 0.02) ?(queue_cap = 16)
    ?(batching = true) () =
  { B.buckets; max_wait; queue_cap; batching }

let scfg ?(batcher = bcfg ()) ?(workers = 2) ?(max_inflight = 2)
    ?(service_scale = 1.) () =
  { Srv.batcher; workers; max_inflight; service_scale }

(* --- batcher ---------------------------------------------------------------- *)

let test_bucket_for () =
  let cfg = bcfg () in
  Alcotest.(check int) "1 -> 1" 1 (B.bucket_for cfg 1);
  Alcotest.(check int) "3 -> 4" 4 (B.bucket_for cfg 3);
  Alcotest.(check int) "4 -> 4" 4 (B.bucket_for cfg 4);
  Alcotest.(check int) "clamp above" 8 (B.bucket_for cfg 100);
  Alcotest.(check int) "clamp below" 1 (B.bucket_for cfg 0)

let test_validate_rejects () =
  let bad cfg =
    match B.validate cfg with
    | () -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  bad (bcfg ~buckets:[] ());
  bad (bcfg ~buckets:[ 2; 4 ] ());
  bad (bcfg ~buckets:[ 1; 4; 2 ] ());
  bad (bcfg ~max_wait:(-1.) ());
  bad (bcfg ~queue_cap:0 ());
  B.validate (bcfg ())

let test_decide () =
  let cfg = bcfg () in
  let d = B.decide cfg ~draining:false in
  Alcotest.(check bool) "empty queue waits for events" true
    (d ~now:1. ~queue_len:0 ~oldest_arrival:0. = B.Wait_event);
  Alcotest.(check bool) "full bucket dispatches" true
    (d ~now:1. ~queue_len:9 ~oldest_arrival:1. = B.Dispatch 8);
  Alcotest.(check bool) "stale head dispatches partial" true
    (d ~now:1. ~queue_len:3 ~oldest_arrival:0.9 = B.Dispatch 3);
  Alcotest.(check bool) "fresh partial batch waits" true
    (d ~now:1. ~queue_len:3 ~oldest_arrival:0.995 = B.Wait_until 1.015);
  Alcotest.(check bool) "draining flushes immediately" true
    (B.decide cfg ~draining:true ~now:1. ~queue_len:3 ~oldest_arrival:0.999
    = B.Dispatch 3);
  let solo = bcfg ~batching:false () in
  Alcotest.(check bool) "batching off dispatches singles" true
    (B.decide solo ~draining:false ~now:1. ~queue_len:5 ~oldest_arrival:1.
    = B.Dispatch 1)

(* Regression: the event loop advances the clock to exactly the returned
   [Wait_until] target; the timeout test must fire there even though
   [(oldest +. w) -. oldest >= w] is not a floating-point tautology. *)
let test_decide_timer_boundary () =
  let cfg = bcfg ~max_wait:0.02 () in
  List.iter
    (fun oldest ->
      match
        B.decide cfg ~draining:false ~now:(oldest +. 0.02) ~queue_len:2
          ~oldest_arrival:oldest
      with
      | B.Dispatch 2 -> ()
      | _ -> Alcotest.failf "timer did not fire at oldest=%.17g" oldest)
    [ 0.1; 1.; 3.7; 1234.56789; 1e6; 0.30000000000000004 ]

(* --- loadgen ---------------------------------------------------------------- *)

let lg ?(rps = 50.) ?(duration = 1.) ?(deadline = 0.5) ?burst ?(seed = 7) () =
  { L.profile = L.Open_loop { rps }; duration; deadline; burst; seed }

let test_open_arrivals () =
  let base = L.open_arrivals (lg ()) in
  Alcotest.(check bool) "nonempty" true (base <> []);
  Alcotest.(check bool) "sorted, in range" true
    (List.for_all (fun t -> t >= 0. && t < 1.) base
    && List.sort compare base = base);
  Alcotest.(check bool) "same seed, same stream" true
    (base = L.open_arrivals (lg ()));
  Alcotest.(check bool) "different seed, different stream" true
    (base <> L.open_arrivals (lg ~seed:8 ()));
  let with_burst =
    L.open_arrivals (lg ~burst:{ L.start = 0.4; dur = 0.2; rps = 300. } ())
  in
  Alcotest.(check bool) "burst only adds arrivals (base stream unchanged)"
    true
    (List.for_all (fun t -> List.mem t with_burst) base);
  Alcotest.(check bool) "burst extras stay inside the window" true
    (List.for_all
       (fun t -> t >= 0.4 && t < 0.6)
       (List.filter (fun t -> not (List.mem t base)) with_burst))

let test_synth_inputs () =
  let shapes = [ [ 1; 3; 4 ]; [ 4; 5 ] ] in
  let a = L.synth_inputs ~seed:1 ~shapes 0 in
  Alcotest.(check (list (list int))) "shapes" shapes (List.map T.shape a);
  Alcotest.(check bool) "deterministic" true
    (compare a (L.synth_inputs ~seed:1 ~shapes 0) = 0);
  Alcotest.(check bool) "rid-dependent" true
    (compare a (L.synth_inputs ~seed:1 ~shapes 1) <> 0)

(* --- virtual-time server --------------------------------------------------- *)

let count records f = List.length (List.filter f records)
let is_completed r = match r.Srv.outcome with Srv.Completed _ -> true | _ -> false
let is_shed r = match r.Srv.outcome with Srv.Shed _ -> true | _ -> false
let is_rejected r = match r.Srv.outcome with Srv.Rejected _ -> true | _ -> false

(* One closed-loop client, constant 10 ms service, 10 ms think: requests
   at 0, 0.02 and 0.04 virtual seconds, each alone in a bucket-1 batch. *)
let test_closed_loop_hand_check () =
  let s =
    Srv.simulate (scfg ())
      ~latency:(fun _ -> 0.01)
      {
        L.profile = L.Closed_loop { clients = 1; think = 0.01 };
        duration = 0.05;
        deadline = 1.;
        burst = None;
        seed = 0;
      }
  in
  Alcotest.(check int) "three requests" 3 (List.length s.Srv.records);
  Alcotest.(check int) "three singleton batches" 3 (List.length s.Srv.batches);
  List.iter
    (fun r ->
      match r.Srv.outcome with
      | Srv.Completed { completion; _ } ->
        Alcotest.(check (float 1e-9)) "e2e is one service time" 0.01
          (completion -. r.Srv.req.L.arrival)
      | _ -> Alcotest.fail "all requests complete")
    s.Srv.records;
  Alcotest.(check (float 1e-9)) "makespan" 0.05 s.Srv.makespan

let test_hopeless_requests_are_shed_not_run () =
  let s =
    Srv.simulate (scfg ())
      ~latency:(fun _ -> 0.01)
      (lg ~deadline:0.001 ())
  in
  Alcotest.(check int) "nothing executed" 0 (List.length s.Srv.batches);
  Alcotest.(check bool) "everything shed" true
    (s.Srv.records <> [] && List.for_all is_shed s.Srv.records)

let test_backpressure_rejects () =
  let cfg = scfg ~batcher:(bcfg ~queue_cap:2 ~max_wait:0.05 ()) ~workers:1 ~max_inflight:1 () in
  let s = Srv.simulate cfg ~latency:(fun _ -> 0.05) (lg ~rps:200. ~duration:0.3 ~deadline:10. ()) in
  Alcotest.(check bool) "queue bound rejects the excess" true
    (count s.Srv.records is_rejected > 0);
  Alcotest.(check bool) "queue depth never exceeds cap" true
    (List.for_all (fun (b : P.batch) -> List.length b.P.members <= 2 + 1) s.Srv.batches)

let test_overload_burst_sheds () =
  let cfg = scfg ~batcher:(bcfg ~queue_cap:64 ()) () in
  let s =
    Srv.simulate cfg
      ~latency:(fun b -> 0.01 *. (1. +. (0.2 *. float_of_int b)))
      (lg ~rps:40. ~deadline:0.08
         ~burst:{ L.start = 0.3; dur = 0.2; rps = 2000. }
         ())
  in
  Alcotest.(check bool) "burst activates shedding" true
    (count s.Srv.records is_shed > 0);
  Alcotest.(check bool) "steady load still completes" true
    (count s.Srv.records is_completed > 0)

let test_conservation () =
  let s =
    Srv.simulate (scfg ())
      ~latency:(fun b -> 0.002 *. float_of_int b)
      (lg ~rps:150. ~deadline:0.05 ())
  in
  let completed = count s.Srv.records is_completed in
  Alcotest.(check int) "every request has exactly one outcome"
    (List.length s.Srv.records)
    (completed + count s.Srv.records is_shed + count s.Srv.records is_rejected);
  Alcotest.(check int) "batch members account for every completion" completed
    (List.fold_left (fun a (b : P.batch) -> a + List.length b.P.members) 0 s.Srv.batches);
  List.iter
    (fun (b : P.batch) ->
      Alcotest.(check bool) "members fit the bucket" true
        (List.length b.P.members >= 1 && List.length b.P.members <= b.P.bucket))
    s.Srv.batches

(* Satellite: same seed => identical schedules — batch compositions, shed
   sets, timings — across repeated runs, for random configs and traffic. *)
let prop_simulate_deterministic =
  let gen =
    let open QCheck.Gen in
    let profile =
      oneof
        [
          map (fun rps -> L.Open_loop { rps = float_of_int rps }) (int_range 5 200);
          map2
            (fun c think ->
              L.Closed_loop { clients = c; think = 0.001 *. float_of_int think })
            (int_range 1 5) (int_range 1 40);
        ]
    in
    let burst =
      opt
        (map2
           (fun s rps ->
             { L.start = 0.05 *. float_of_int s; dur = 0.2; rps = float_of_int rps })
           (int_range 0 10) (int_range 100 1000))
    in
    let lg =
      map2
        (fun (profile, burst) (duration, deadline, seed) ->
          {
            L.profile;
            duration = 0.1 *. float_of_int duration;
            deadline = 0.01 *. float_of_int deadline;
            burst;
            seed;
          })
        (pair profile burst)
        (triple (int_range 2 10) (int_range 2 40) (int_range 0 1000))
    in
    let cfg =
      map2
        (fun (mw, cap, batching) (workers, inflight) ->
          {
            Srv.batcher =
              {
                B.buckets = [ 1; 2; 4; 8 ];
                max_wait = 0.002 *. float_of_int mw;
                queue_cap = cap;
                batching;
              };
            workers;
            max_inflight = inflight;
            service_scale = 1.;
          })
        (triple (int_range 0 20) (int_range 1 64) bool)
        (pair (int_range 1 4) (int_range 1 4))
    in
    pair cfg lg
  in
  let arb =
    QCheck.make gen ~print:(fun (cfg, lg) ->
        Printf.sprintf
          "seed=%d dur=%g dl=%g batching=%b cap=%d mw=%g workers=%d inflight=%d burst=%b %s"
          lg.L.seed lg.L.duration lg.L.deadline cfg.Srv.batcher.B.batching
          cfg.Srv.batcher.B.queue_cap cfg.Srv.batcher.B.max_wait
          cfg.Srv.workers cfg.Srv.max_inflight (lg.L.burst <> None)
          (match lg.L.profile with
          | L.Open_loop { rps } -> Printf.sprintf "open rps=%g" rps
          | L.Closed_loop { clients; think } ->
            Printf.sprintf "closed clients=%d think=%g" clients think))
  in
  QCheck.Test.make ~name:"same seed => identical schedule" ~count:30 arb
    (fun (cfg, lg) ->
      let latency b = 0.003 *. (1. +. (0.25 *. float_of_int b)) in
      let s1 = Srv.simulate cfg ~latency lg in
      let s2 = Srv.simulate cfg ~latency lg in
      compare s1 s2 = 0)

(* --- registry, schedule cache, real execution ------------------------------ *)

(* Compiling the batch buckets twice must tune each distinct kernel shape
   exactly once: the second load performs zero fresh tuner trials and is
   served entirely by the schedule cache. *)
let test_bucket_variants_tune_once () =
  SC.clear ();
  let trials () = Metrics.value (Metrics.counter "tuner.trials") in
  let hits () = Metrics.value (Metrics.counter "schedule_cache.hits") in
  let load () =
    R.load ~engine:(module HE) ~device:dev ~buckets:[ 1; 2; 4; 8 ]
      (R.Zoo "tiny_cnn")
  in
  let t0 = trials () in
  let m1 = load () in
  let t1 = trials () in
  Alcotest.(check bool) "cold load runs fresh trials" true (t1 > t0);
  let h1 = hits () in
  let m2 = load () in
  Alcotest.(check int) "warm load performs zero fresh trials" t1 (trials ());
  Alcotest.(check bool) "warm load is served by the schedule cache" true
    (hits () > h1);
  List.iter
    (fun (v : R.variant) ->
      Alcotest.(check (float 0.)) "no fresh tuning cost on the warm load" 0.
        v.R.result.Hidet_runtime.Engine.tuning_cost)
    m2.R.variants;
  Alcotest.(check (list int)) "ascending buckets" [ 1; 2; 4; 8 ]
    (List.map (fun (v : R.variant) -> v.R.bucket) m1.R.variants);
  (* bucket 1 is always compiled, even when not requested *)
  let m3 = R.load ~engine:(module HE) ~device:dev ~buckets:[ 4 ] (R.Zoo "tiny_cnn") in
  Alcotest.(check (list int)) "bucket 1 added" [ 1; 4 ]
    (List.map (fun (v : R.variant) -> v.R.bucket) m3.R.variants)

let model =
  lazy
    (R.load ~engine:(module HE) ~device:dev ~buckets:[ 1; 2; 4; 8 ]
       (R.Zoo "tiny_separable"))

let req rid = { L.rid; client = -1; arrival = 0.; deadline = 1. }

(* Satellite: every bucket's output rows equal the per-request batch-1
   reference bit for bit; padded tail rows never leak into responses. *)
let test_bucket_outputs_match_batch1 () =
  let model = Lazy.force model in
  let mk bid bucket rids =
    {
      P.bid;
      bucket;
      members = List.map req rids;
      dispatch = 0.;
      completion = 0.;
      worker = 0;
    }
  in
  let batches =
    [
      mk 0 1 [ 0 ];
      mk 1 2 [ 1; 2 ];
      mk 2 4 [ 3; 4; 5 ];
      mk 3 8 [ 6; 7; 8; 9; 10 ];
    ]
  in
  Alcotest.(check int) "padding counted" 4
    (List.fold_left (fun a b -> a + P.padded_rows b) 0 batches);
  let responses = P.execute ~seed:5 model batches in
  Alcotest.(check int) "one response per member" 11 (List.length responses);
  Alcotest.(check int) "all responses bit-identical to batch-1" 0
    (P.check ~seed:5 model responses)

let test_serve_end_to_end () =
  let model = Lazy.force model in
  let cfg = scfg ~service_scale:2000. () in
  let r =
    Srv.run cfg model
      (lg ~rps:30. ~duration:0.6 ~deadline:0.3 ~seed:2 ())
  in
  Alcotest.(check (option int)) "no mismatches" (Some 0) r.Srv.mismatches;
  Alcotest.(check bool) "some requests completed" true
    (r.Srv.summary.Srv.completed > 0);
  Alcotest.(check bool) "some real batching happened" true
    (List.exists
       (fun (b : P.batch) -> List.length b.P.members > 1)
       r.Srv.schedule.Srv.batches);
  Alcotest.(check int) "a response per completion"
    r.Srv.summary.Srv.completed
    (List.length r.Srv.responses)

let () =
  Alcotest.run "hidet_serve"
    [
      ( "batcher",
        [
          Alcotest.test_case "bucket_for" `Quick test_bucket_for;
          Alcotest.test_case "validate rejects bad configs" `Quick
            test_validate_rejects;
          Alcotest.test_case "decide" `Quick test_decide;
          Alcotest.test_case "timer fires at its own boundary" `Quick
            test_decide_timer_boundary;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "open-loop arrivals" `Quick test_open_arrivals;
          Alcotest.test_case "synthesized inputs" `Quick test_synth_inputs;
        ] );
      ( "server",
        [
          Alcotest.test_case "closed-loop hand check" `Quick
            test_closed_loop_hand_check;
          Alcotest.test_case "hopeless requests shed, not run" `Quick
            test_hopeless_requests_are_shed_not_run;
          Alcotest.test_case "bounded queue rejects" `Quick
            test_backpressure_rejects;
          Alcotest.test_case "overload burst sheds" `Quick
            test_overload_burst_sheds;
          Alcotest.test_case "outcome conservation" `Quick test_conservation;
          QCheck_alcotest.to_alcotest prop_simulate_deterministic;
        ] );
      ( "registry",
        [
          Alcotest.test_case "bucket variants tune once" `Quick
            test_bucket_variants_tune_once;
        ] );
      ( "pool",
        [
          Alcotest.test_case "bucket outputs match batch-1" `Quick
            test_bucket_outputs_match_batch1;
          Alcotest.test_case "serve end to end" `Quick test_serve_end_to_end;
        ] );
    ]
