(* Tests for the serving runtime: batcher decisions (including the
   floating-point timer boundary), seeded load generation, virtual-time
   scheduling invariants and qcheck determinism (same seed => identical
   batch compositions and shed sets), bucket-variant compilation hitting
   the schedule cache instead of re-tuning, and batched execution agreeing
   bit-for-bit with the batch-1 plan. *)

module B = Hidet_serve.Batcher
module L = Hidet_serve.Loadgen
module R = Hidet_serve.Registry
module P = Hidet_serve.Pool
module Srv = Hidet_serve.Server
module Slo = Hidet_serve.Slo
module HE = Hidet.Hidet_engine
module Metrics = Hidet_obs.Metrics
module E = Hidet_obs.Events
module SC = Hidet_sched.Schedule_cache
module T = Hidet_tensor.Tensor

let dev = Hidet_gpu.Device.rtx3090

let bcfg ?(buckets = [ 1; 2; 4; 8 ]) ?(max_wait = 0.02) ?(queue_cap = 16)
    ?(batching = true) () =
  { B.buckets; max_wait; queue_cap; batching }

let scfg ?(batcher = bcfg ()) ?(workers = 2) ?(max_inflight = 2)
    ?(service_scale = 1.) () =
  { Srv.batcher; workers; max_inflight; service_scale }

(* --- batcher ---------------------------------------------------------------- *)

let test_bucket_for () =
  let cfg = bcfg () in
  Alcotest.(check int) "1 -> 1" 1 (B.bucket_for cfg 1);
  Alcotest.(check int) "3 -> 4" 4 (B.bucket_for cfg 3);
  Alcotest.(check int) "4 -> 4" 4 (B.bucket_for cfg 4);
  Alcotest.(check int) "clamp above" 8 (B.bucket_for cfg 100);
  Alcotest.(check int) "clamp below" 1 (B.bucket_for cfg 0)

let test_validate_rejects () =
  let bad cfg =
    match B.validate cfg with
    | () -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  bad (bcfg ~buckets:[] ());
  bad (bcfg ~buckets:[ 2; 4 ] ());
  bad (bcfg ~buckets:[ 1; 4; 2 ] ());
  bad (bcfg ~max_wait:(-1.) ());
  bad (bcfg ~queue_cap:0 ());
  B.validate (bcfg ())

let test_decide () =
  let cfg = bcfg () in
  let d = B.decide cfg ~draining:false in
  Alcotest.(check bool) "empty queue waits for events" true
    (d ~now:1. ~queue_len:0 ~oldest_arrival:0. = B.Wait_event);
  Alcotest.(check bool) "full bucket dispatches" true
    (d ~now:1. ~queue_len:9 ~oldest_arrival:1. = B.Dispatch 8);
  Alcotest.(check bool) "stale head dispatches partial" true
    (d ~now:1. ~queue_len:3 ~oldest_arrival:0.9 = B.Dispatch 3);
  Alcotest.(check bool) "fresh partial batch waits" true
    (d ~now:1. ~queue_len:3 ~oldest_arrival:0.995 = B.Wait_until 1.015);
  Alcotest.(check bool) "draining flushes immediately" true
    (B.decide cfg ~draining:true ~now:1. ~queue_len:3 ~oldest_arrival:0.999
    = B.Dispatch 3);
  let solo = bcfg ~batching:false () in
  Alcotest.(check bool) "batching off dispatches singles" true
    (B.decide solo ~draining:false ~now:1. ~queue_len:5 ~oldest_arrival:1.
    = B.Dispatch 1)

(* Regression: the event loop advances the clock to exactly the returned
   [Wait_until] target; the timeout test must fire there even though
   [(oldest +. w) -. oldest >= w] is not a floating-point tautology. *)
let test_decide_timer_boundary () =
  let cfg = bcfg ~max_wait:0.02 () in
  List.iter
    (fun oldest ->
      match
        B.decide cfg ~draining:false ~now:(oldest +. 0.02) ~queue_len:2
          ~oldest_arrival:oldest
      with
      | B.Dispatch 2 -> ()
      | _ -> Alcotest.failf "timer did not fire at oldest=%.17g" oldest)
    [ 0.1; 1.; 3.7; 1234.56789; 1e6; 0.30000000000000004 ]

(* --- loadgen ---------------------------------------------------------------- *)

let lg ?(rps = 50.) ?(duration = 1.) ?(deadline = 0.5) ?burst ?(seed = 7) () =
  { L.profile = L.Open_loop { rps }; duration; deadline; burst; seed }

let test_open_arrivals () =
  let base = L.open_arrivals (lg ()) in
  Alcotest.(check bool) "nonempty" true (base <> []);
  Alcotest.(check bool) "sorted, in range" true
    (List.for_all (fun t -> t >= 0. && t < 1.) base
    && List.sort compare base = base);
  Alcotest.(check bool) "same seed, same stream" true
    (base = L.open_arrivals (lg ()));
  Alcotest.(check bool) "different seed, different stream" true
    (base <> L.open_arrivals (lg ~seed:8 ()));
  let with_burst =
    L.open_arrivals (lg ~burst:{ L.start = 0.4; dur = 0.2; rps = 300. } ())
  in
  Alcotest.(check bool) "burst only adds arrivals (base stream unchanged)"
    true
    (List.for_all (fun t -> List.mem t with_burst) base);
  Alcotest.(check bool) "burst extras stay inside the window" true
    (List.for_all
       (fun t -> t >= 0.4 && t < 0.6)
       (List.filter (fun t -> not (List.mem t base)) with_burst))

let test_synth_inputs () =
  let shapes = [ [ 1; 3; 4 ]; [ 4; 5 ] ] in
  let a = L.synth_inputs ~seed:1 ~shapes 0 in
  Alcotest.(check (list (list int))) "shapes" shapes (List.map T.shape a);
  Alcotest.(check bool) "deterministic" true
    (compare a (L.synth_inputs ~seed:1 ~shapes 0) = 0);
  Alcotest.(check bool) "rid-dependent" true
    (compare a (L.synth_inputs ~seed:1 ~shapes 1) <> 0)

(* --- virtual-time server --------------------------------------------------- *)

let count records f = List.length (List.filter f records)
let is_completed r = match r.Srv.outcome with Srv.Completed _ -> true | _ -> false
let is_shed r = match r.Srv.outcome with Srv.Shed _ -> true | _ -> false
let is_rejected r = match r.Srv.outcome with Srv.Rejected _ -> true | _ -> false

(* One closed-loop client, constant 10 ms service, 10 ms think: requests
   at 0, 0.02 and 0.04 virtual seconds, each alone in a bucket-1 batch. *)
let test_closed_loop_hand_check () =
  let s =
    Srv.simulate (scfg ())
      ~latency:(fun _ -> 0.01)
      {
        L.profile = L.Closed_loop { clients = 1; think = 0.01 };
        duration = 0.05;
        deadline = 1.;
        burst = None;
        seed = 0;
      }
  in
  Alcotest.(check int) "three requests" 3 (List.length s.Srv.records);
  Alcotest.(check int) "three singleton batches" 3 (List.length s.Srv.batches);
  List.iter
    (fun r ->
      match r.Srv.outcome with
      | Srv.Completed { completion; _ } ->
        Alcotest.(check (float 1e-9)) "e2e is one service time" 0.01
          (completion -. r.Srv.req.L.arrival)
      | _ -> Alcotest.fail "all requests complete")
    s.Srv.records;
  Alcotest.(check (float 1e-9)) "makespan" 0.05 s.Srv.makespan

let test_hopeless_requests_are_shed_not_run () =
  let s =
    Srv.simulate (scfg ())
      ~latency:(fun _ -> 0.01)
      (lg ~deadline:0.001 ())
  in
  Alcotest.(check int) "nothing executed" 0 (List.length s.Srv.batches);
  Alcotest.(check bool) "everything shed" true
    (s.Srv.records <> [] && List.for_all is_shed s.Srv.records)

let test_backpressure_rejects () =
  let cfg = scfg ~batcher:(bcfg ~queue_cap:2 ~max_wait:0.05 ()) ~workers:1 ~max_inflight:1 () in
  let s = Srv.simulate cfg ~latency:(fun _ -> 0.05) (lg ~rps:200. ~duration:0.3 ~deadline:10. ()) in
  Alcotest.(check bool) "queue bound rejects the excess" true
    (count s.Srv.records is_rejected > 0);
  Alcotest.(check bool) "queue depth never exceeds cap" true
    (List.for_all (fun (b : P.batch) -> List.length b.P.members <= 2 + 1) s.Srv.batches)

let test_overload_burst_sheds () =
  let cfg = scfg ~batcher:(bcfg ~queue_cap:64 ()) () in
  let s =
    Srv.simulate cfg
      ~latency:(fun b -> 0.01 *. (1. +. (0.2 *. float_of_int b)))
      (lg ~rps:40. ~deadline:0.08
         ~burst:{ L.start = 0.3; dur = 0.2; rps = 2000. }
         ())
  in
  Alcotest.(check bool) "burst activates shedding" true
    (count s.Srv.records is_shed > 0);
  Alcotest.(check bool) "steady load still completes" true
    (count s.Srv.records is_completed > 0)

let test_conservation () =
  let s =
    Srv.simulate (scfg ())
      ~latency:(fun b -> 0.002 *. float_of_int b)
      (lg ~rps:150. ~deadline:0.05 ())
  in
  let completed = count s.Srv.records is_completed in
  Alcotest.(check int) "every request has exactly one outcome"
    (List.length s.Srv.records)
    (completed + count s.Srv.records is_shed + count s.Srv.records is_rejected);
  Alcotest.(check int) "batch members account for every completion" completed
    (List.fold_left (fun a (b : P.batch) -> a + List.length b.P.members) 0 s.Srv.batches);
  List.iter
    (fun (b : P.batch) ->
      Alcotest.(check bool) "members fit the bucket" true
        (List.length b.P.members >= 1 && List.length b.P.members <= b.P.bucket))
    s.Srv.batches

(* Random serving scenarios — shared by the determinism property and the
   event-log conservation property below. *)
let sim_arb =
  let gen =
    let open QCheck.Gen in
    let profile =
      oneof
        [
          map (fun rps -> L.Open_loop { rps = float_of_int rps }) (int_range 5 200);
          map2
            (fun c think ->
              L.Closed_loop { clients = c; think = 0.001 *. float_of_int think })
            (int_range 1 5) (int_range 1 40);
        ]
    in
    let burst =
      opt
        (map2
           (fun s rps ->
             { L.start = 0.05 *. float_of_int s; dur = 0.2; rps = float_of_int rps })
           (int_range 0 10) (int_range 100 1000))
    in
    let lg =
      map2
        (fun (profile, burst) (duration, deadline, seed) ->
          {
            L.profile;
            duration = 0.1 *. float_of_int duration;
            deadline = 0.01 *. float_of_int deadline;
            burst;
            seed;
          })
        (pair profile burst)
        (triple (int_range 2 10) (int_range 2 40) (int_range 0 1000))
    in
    let cfg =
      map2
        (fun (mw, cap, batching) (workers, inflight) ->
          {
            Srv.batcher =
              {
                B.buckets = [ 1; 2; 4; 8 ];
                max_wait = 0.002 *. float_of_int mw;
                queue_cap = cap;
                batching;
              };
            workers;
            max_inflight = inflight;
            service_scale = 1.;
          })
        (triple (int_range 0 20) (int_range 1 64) bool)
        (pair (int_range 1 4) (int_range 1 4))
    in
    pair cfg lg
  in
  QCheck.make gen ~print:(fun (cfg, lg) ->
      Printf.sprintf
        "seed=%d dur=%g dl=%g batching=%b cap=%d mw=%g workers=%d inflight=%d burst=%b %s"
        lg.L.seed lg.L.duration lg.L.deadline cfg.Srv.batcher.B.batching
        cfg.Srv.batcher.B.queue_cap cfg.Srv.batcher.B.max_wait
        cfg.Srv.workers cfg.Srv.max_inflight (lg.L.burst <> None)
        (match lg.L.profile with
        | L.Open_loop { rps } -> Printf.sprintf "open rps=%g" rps
        | L.Closed_loop { clients; think } ->
          Printf.sprintf "closed clients=%d think=%g" clients think))

let sim_latency b = 0.003 *. (1. +. (0.25 *. float_of_int b))

(* Satellite: same seed => identical schedules — batch compositions, shed
   sets, timings — across repeated runs, for random configs and traffic. *)
let prop_simulate_deterministic =
  QCheck.Test.make ~name:"same seed => identical schedule" ~count:30 sim_arb
    (fun (cfg, lg) ->
      let s1 = Srv.simulate cfg ~latency:sim_latency lg in
      let s2 = Srv.simulate cfg ~latency:sim_latency lg in
      compare s1 s2 = 0)

(* Tentpole: whatever the scenario, the emitted lifecycle event log passes
   the strict validator — every request's first event is an admission
   decision, every admitted request reaches exactly one terminal event,
   timestamps are monotone per request — and the JSONL export round-trips
   bit-exactly through the strict JSON parser. *)
let prop_event_log_conserves =
  QCheck.Test.make ~name:"event log: lifecycle conservation" ~count:30 sim_arb
    (fun (cfg, lg) ->
      let log = E.create ~capacity:(1 lsl 16) () in
      let s = E.with_log log (fun () -> Srv.simulate cfg ~latency:sim_latency lg) in
      let evs = E.sort_events (E.events log) in
      let jsonl = E.to_jsonl evs in
      match E.check jsonl with
      | Error m -> QCheck.Test.fail_report ("event log invalid: " ^ m)
      | Ok (n, rids) ->
        n = List.length evs
        && E.dropped log = 0
        && rids = List.length s.Srv.records
        && (match E.parse_jsonl jsonl with
           | Ok back -> compare back evs = 0
           | Error _ -> false))

(* The event log agrees with the schedule's stats: one Admitted per
   admitted request, one terminal per request, and the Completed events'
   miss flags sum to deadline_miss. *)
let test_event_counts_match_stats () =
  let log = E.create () in
  let s =
    E.with_log log (fun () ->
        Srv.simulate
          (scfg ~batcher:(bcfg ~queue_cap:8 ()) ())
          ~latency:sim_latency
          (lg ~rps:150. ~deadline:0.05 ~burst:{ L.start = 0.3; dur = 0.2; rps = 800. } ()))
  in
  let st = Srv.stats s in
  let evs = E.events log in
  let count k = List.length (List.filter (fun e -> e.E.kind = k) evs) in
  Alcotest.(check int) "admitted events" st.Srv.admitted (count E.Admitted);
  Alcotest.(check int) "rejected events" st.Srv.rejected (count E.Rejected);
  Alcotest.(check int) "shed events" st.Srv.shed (count E.Shed);
  Alcotest.(check int) "completed events" st.Srv.completed (count E.Completed);
  Alcotest.(check int) "batched = dispatched = completed" st.Srv.completed
    (count E.Batched);
  Alcotest.(check int) "dispatched events" st.Srv.completed (count E.Dispatched);
  Alcotest.(check int) "miss flags sum to deadline_miss" st.Srv.deadline_miss
    (List.length
       (List.filter
          (fun e ->
            e.E.kind = E.Completed && List.assoc_opt "miss" e.E.attrs = Some "1")
          evs))

(* Regression: the flight recorder fires exactly once on the first
   deadline miss, even when the run misses many deadlines. Misses happen
   when a request joins a big-bucket batch whose service time exceeds its
   remaining slack (shedding only guards against the bucket-1 minimum). *)
let test_flight_fires_once_on_first_miss () =
  let fr = E.Flight.create () in
  E.set_flight (Some fr);
  let dumps0 = Metrics.value (Metrics.counter "obs.flight_dumps") in
  let s =
    Fun.protect
      ~finally:(fun () -> E.set_flight None)
      (fun () ->
        Srv.simulate
          (scfg ~batcher:(bcfg ~queue_cap:64 ()) ())
          ~latency:(fun b -> 0.012 *. float_of_int b)
          (lg ~rps:200. ~duration:0.5 ~deadline:0.06 ()))
  in
  let st = Srv.stats s in
  Alcotest.(check bool)
    (Printf.sprintf "scenario produces several misses (%d)" st.Srv.deadline_miss)
    true
    (st.Srv.deadline_miss >= 2);
  Alcotest.(check bool) "flight recorder fired" true (E.Flight.fired fr);
  Alcotest.(check int) "exactly one dump" (dumps0 + 1)
    (Metrics.value (Metrics.counter "obs.flight_dumps"));
  (* the dump names the first miss *)
  match E.Flight.dump fr with
  | None -> Alcotest.fail "fired but no dump"
  | Some d ->
    Alcotest.(check bool) "dump records the reason" true
      (let n = String.length d in
       let needle = "deadline_miss" in
       let m = String.length needle in
       let rec go i = i + m <= n && (String.sub d i m = needle || go (i + 1)) in
       go 0)

(* --- burn-rate SLO alerts --------------------------------------------------- *)

(* Hand-computed: budget 0.1, one rule (fast 1s / slow 4s, burn 2,
   min_count 2). At t=2.0 the fast window holds a single bad sample —
   gated by min_count. At t=2.5 the fast window (1.5, 2.5] is 2/2 bad
   (burn 10) and the slow window (-1.5, 2.5] is 2/4 bad (burn 5): both
   over threshold, so the rule fires there. *)
let test_slo_hand_check () =
  let cfg =
    {
      Slo.objective = 0.9;
      min_count = 2;
      rules = [ { Slo.rname = "r"; fast = 1.; slow = 4.; burn = 2. } ];
    }
  in
  let sample t good = { Slo.t; good } in
  let v =
    Slo.evaluate cfg
      [ sample 1.0 true; sample 2.5 false; sample 0.5 true; sample 2.0 false ]
  in
  Alcotest.(check int) "total" 4 v.Slo.total;
  Alcotest.(check int) "bad" 2 v.Slo.bad;
  Alcotest.(check (float 1e-9)) "miss ratio" 0.5 v.Slo.miss_ratio;
  Alcotest.(check (float 1e-9)) "budget" 0.1 v.Slo.budget;
  Alcotest.(check bool) "fired" true (Slo.fired v);
  (match v.Slo.alerts with
  | [ a ] ->
    Alcotest.(check bool) "rule fired" true a.Slo.fired;
    Alcotest.(check (float 1e-9)) "fires at the second bad sample" 2.5 a.Slo.at;
    Alcotest.(check (float 1e-9)) "fast burn" 10. a.Slo.fast_burn;
    Alcotest.(check (float 1e-9)) "slow burn" 5. a.Slo.slow_burn
  | _ -> Alcotest.fail "one alert per rule");
  let quiet = Slo.evaluate cfg [ sample 0.5 true; sample 1.0 true ] in
  Alcotest.(check bool) "all-good traffic never fires" false (Slo.fired quiet);
  (* machine-readable verdict parses and carries the alert *)
  match Hidet_obs.Json.parse (Slo.verdict_to_json v) with
  | Error m -> Alcotest.fail ("verdict json: " ^ m)
  | Ok j ->
    let open Hidet_obs.Json in
    let alerts = member "alerts" j |> Option.get |> to_arr |> Option.get in
    Alcotest.(check int) "one alert in json" 1 (List.length alerts);
    Alcotest.(check (option bool)) "fired in json" (Some true)
      (match member "fired" (List.hd alerts) with
      | Some (Bool b) -> Some b
      | _ -> None)

(* End to end over schedules: a low-load run keeps its budget, an
   overload run burns it and fires. *)
let test_slo_verdict_from_schedule () =
  let low =
    Srv.simulate (scfg ()) ~latency:sim_latency (lg ~rps:20. ~deadline:0.5 ())
  in
  let v = Srv.slo_verdict ~duration:1. low in
  Alcotest.(check int) "no bad requests at low load" 0 v.Slo.bad;
  Alcotest.(check bool) "no alert at low load" false (Slo.fired v);
  let over =
    Srv.simulate
      (scfg ~batcher:(bcfg ~queue_cap:8 ()) ())
      ~latency:sim_latency
      (lg ~rps:60. ~deadline:0.05
         ~burst:{ L.start = 0.2; dur = 0.4; rps = 1500. }
         ())
  in
  let v = Srv.slo_verdict ~duration:1. over in
  Alcotest.(check bool) "overload burns the budget" true (v.Slo.bad > 0);
  Alcotest.(check bool) "overload fires an alert" true (Slo.fired v)

(* --- registry, schedule cache, real execution ------------------------------ *)

(* Compiling the batch buckets twice must tune each distinct kernel shape
   exactly once: the second load performs zero fresh tuner trials and is
   served entirely by the schedule cache. *)
let test_bucket_variants_tune_once () =
  SC.clear ();
  let trials () = Metrics.value (Metrics.counter "tuner.trials") in
  let hits () = Metrics.value (Metrics.counter "schedule_cache.hits") in
  let load () =
    R.load ~engine:(module HE) ~device:dev ~buckets:[ 1; 2; 4; 8 ]
      (R.Zoo "tiny_cnn")
  in
  let t0 = trials () in
  let m1 = load () in
  let t1 = trials () in
  Alcotest.(check bool) "cold load runs fresh trials" true (t1 > t0);
  let h1 = hits () in
  let m2 = load () in
  Alcotest.(check int) "warm load performs zero fresh trials" t1 (trials ());
  Alcotest.(check bool) "warm load is served by the schedule cache" true
    (hits () > h1);
  List.iter
    (fun (v : R.variant) ->
      Alcotest.(check (float 0.)) "no fresh tuning cost on the warm load" 0.
        v.R.result.Hidet_runtime.Engine.tuning_cost)
    m2.R.variants;
  Alcotest.(check (list int)) "ascending buckets" [ 1; 2; 4; 8 ]
    (List.map (fun (v : R.variant) -> v.R.bucket) m1.R.variants);
  (* bucket 1 is always compiled, even when not requested *)
  let m3 = R.load ~engine:(module HE) ~device:dev ~buckets:[ 4 ] (R.Zoo "tiny_cnn") in
  Alcotest.(check (list int)) "bucket 1 added" [ 1; 4 ]
    (List.map (fun (v : R.variant) -> v.R.bucket) m3.R.variants)

let model =
  lazy
    (R.load ~engine:(module HE) ~device:dev ~buckets:[ 1; 2; 4; 8 ]
       (R.Zoo "tiny_separable"))

let req rid = { L.rid; client = -1; arrival = 0.; deadline = 1. }

(* Satellite: every bucket's output rows equal the per-request batch-1
   reference bit for bit; padded tail rows never leak into responses. *)
let test_bucket_outputs_match_batch1 () =
  let model = Lazy.force model in
  let mk bid bucket rids =
    {
      P.bid;
      bucket;
      members = List.map req rids;
      dispatch = 0.;
      completion = 0.;
      worker = 0;
    }
  in
  let batches =
    [
      mk 0 1 [ 0 ];
      mk 1 2 [ 1; 2 ];
      mk 2 4 [ 3; 4; 5 ];
      mk 3 8 [ 6; 7; 8; 9; 10 ];
    ]
  in
  Alcotest.(check int) "padding counted" 4
    (List.fold_left (fun a b -> a + P.padded_rows b) 0 batches);
  let responses = P.execute ~seed:5 model batches in
  Alcotest.(check int) "one response per member" 11 (List.length responses);
  Alcotest.(check int) "all responses bit-identical to batch-1" 0
    (P.check ~seed:5 model responses)

let test_serve_end_to_end () =
  let model = Lazy.force model in
  let cfg = scfg ~service_scale:2000. () in
  let r =
    Srv.run cfg model
      (lg ~rps:30. ~duration:0.6 ~deadline:0.3 ~seed:2 ())
  in
  Alcotest.(check (option int)) "no mismatches" (Some 0) r.Srv.mismatches;
  Alcotest.(check bool) "some requests completed" true
    (r.Srv.summary.Srv.completed > 0);
  Alcotest.(check bool) "some real batching happened" true
    (List.exists
       (fun (b : P.batch) -> List.length b.P.members > 1)
       r.Srv.schedule.Srv.batches);
  Alcotest.(check int) "a response per completion"
    r.Srv.summary.Srv.completed
    (List.length r.Srv.responses)

let () =
  Alcotest.run "hidet_serve"
    [
      ( "batcher",
        [
          Alcotest.test_case "bucket_for" `Quick test_bucket_for;
          Alcotest.test_case "validate rejects bad configs" `Quick
            test_validate_rejects;
          Alcotest.test_case "decide" `Quick test_decide;
          Alcotest.test_case "timer fires at its own boundary" `Quick
            test_decide_timer_boundary;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "open-loop arrivals" `Quick test_open_arrivals;
          Alcotest.test_case "synthesized inputs" `Quick test_synth_inputs;
        ] );
      ( "server",
        [
          Alcotest.test_case "closed-loop hand check" `Quick
            test_closed_loop_hand_check;
          Alcotest.test_case "hopeless requests shed, not run" `Quick
            test_hopeless_requests_are_shed_not_run;
          Alcotest.test_case "bounded queue rejects" `Quick
            test_backpressure_rejects;
          Alcotest.test_case "overload burst sheds" `Quick
            test_overload_burst_sheds;
          Alcotest.test_case "outcome conservation" `Quick test_conservation;
          QCheck_alcotest.to_alcotest prop_simulate_deterministic;
        ] );
      ( "telemetry",
        [
          QCheck_alcotest.to_alcotest prop_event_log_conserves;
          Alcotest.test_case "event counts match stats" `Quick
            test_event_counts_match_stats;
          Alcotest.test_case "flight fires once on first miss" `Quick
            test_flight_fires_once_on_first_miss;
          Alcotest.test_case "burn-rate hand check" `Quick test_slo_hand_check;
          Alcotest.test_case "burn-rate verdict from schedules" `Quick
            test_slo_verdict_from_schedule;
        ] );
      ( "registry",
        [
          Alcotest.test_case "bucket variants tune once" `Quick
            test_bucket_variants_tune_once;
        ] );
      ( "pool",
        [
          Alcotest.test_case "bucket outputs match batch-1" `Quick
            test_bucket_outputs_match_batch1;
          Alcotest.test_case "serve end to end" `Quick test_serve_end_to_end;
        ] );
    ]
