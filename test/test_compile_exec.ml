(* Parity suite for the closure-compiling execution backend: on randomly
   generated kernels the compiled backend must equal the legacy interpreter
   bit for bit (including errors), and the domain-parallel grid must equal
   the sequential grid. *)

open Hidet_ir
module Interp = Hidet_gpu.Interp
module CE = Hidet_gpu.Compile_exec
module G = QCheck.Gen

(* --- random kernel generator --------------------------------------------- *)

type spec = {
  grid : int;
  block : int;
  staged : bool;  (** stage input through shared memory with a barrier *)
  reduce : int;  (** 0 = single store, else a reduction loop of this extent *)
  pred_tail : bool;  (** predicate the output store on a tail condition *)
  block_invariant : bool;
      (** index the output by [threadIdx] only: blocks collide, so the
          parallel-grid gate must force sequential execution *)
  value_seed : int;
  input_seed : int;
}

let spec_gen =
  let open G in
  let* grid = 1 -- 4 in
  let* block = oneofl [ 16; 32; 64 ] in
  let* staged = bool in
  let* reduce = oneofl [ 0; 0; 2; 3; 4 ] in
  let* pred_tail = bool in
  let* block_invariant = frequency [ (3, return false); (1, return true) ] in
  let* value_seed = 0 -- 1_000_000 in
  let+ input_seed = 0 -- 1_000_000 in
  {
    grid;
    block;
    staged;
    reduce;
    pred_tail;
    block_invariant;
    value_seed;
    input_seed;
  }

let spec_print s =
  Printf.sprintf
    "{grid=%d; block=%d; staged=%b; reduce=%d; pred_tail=%b; \
     block_invariant=%b; value_seed=%d; input_seed=%d}"
    s.grid s.block s.staged s.reduce s.pred_tail s.block_invariant s.value_seed
    s.input_seed

(* A random float-valued expression over in-bounds loads, the thread index,
   and constants; depth-bounded. Mixes int and float subterms to exercise
   the promotion rules, and [Select] to exercise short-circuiting. *)
let gen_value rng ~(a : Buffer.t) ~(b : Buffer.t) ~(smem : Buffer.t option)
    ~(n : int) ~(gid : Expr.t) =
  let idx () =
    match Random.State.int rng 4 with
    | 0 -> gid
    | 1 -> Expr.sub (Expr.int (n - 1)) gid
    | 2 -> Expr.modulo (Expr.mul gid (Expr.int 3)) (Expr.int n)
    | _ -> Expr.modulo (Expr.add gid (Expr.int 7)) (Expr.int n)
  in
  let leaf () =
    match Random.State.int rng 6 with
    | 0 -> Expr.load a [ idx () ]
    | 1 -> Expr.load b [ idx () ]
    | 2 -> (
      match smem with
      | Some s ->
        Expr.load s
          [ Expr.sub (Expr.int (List.hd s.Buffer.dims - 1)) Expr.Thread_idx ]
      | None -> Expr.load a [ idx () ])
    | 3 -> Expr.float (float_of_int (Random.State.int rng 9) /. 4.)
    | 4 -> Expr.int (Random.State.int rng 5)
    | _ -> Expr.Thread_idx
  in
  let rec go depth =
    if depth = 0 then leaf ()
    else
      match Random.State.int rng 8 with
      | 0 -> Expr.add (go (depth - 1)) (go (depth - 1))
      | 1 -> Expr.sub (go (depth - 1)) (go (depth - 1))
      | 2 -> Expr.mul (go (depth - 1)) (go (depth - 1))
      | 3 -> Expr.min_ (go (depth - 1)) (go (depth - 1))
      | 4 -> Expr.max_ (go (depth - 1)) (go (depth - 1))
      | 5 ->
        let u =
          match Random.State.int rng 4 with
          | 0 -> Expr.Abs
          | 1 -> Expr.Tanh
          | 2 -> Expr.Neg
          | _ -> Expr.Sqrt
        in
        Expr.unop u (go (depth - 1))
      | 6 ->
        Expr.select
          (Expr.lt Expr.Thread_idx (Expr.int (1 + Random.State.int rng 31)))
          (go (depth - 1))
          (go (depth - 1))
      | _ -> leaf ()
  in
  go (1 + Random.State.int rng 2)

let build_kernel (s : spec) =
  let n = s.grid * s.block in
  let a = Buffer.create "A" [ n ] and b = Buffer.create "B" [ n ] in
  let c = Buffer.create "C" [ n ] in
  let smem =
    if s.staged then Some (Buffer.create ~scope:Buffer.Shared "smem" [ s.block ])
    else None
  in
  let reg =
    if s.reduce > 0 then Some (Buffer.create ~scope:Buffer.Register "acc" [ 1 ])
    else None
  in
  let gid =
    Expr.add (Expr.mul Expr.Block_idx (Expr.int s.block)) Expr.Thread_idx
  in
  let rng = Random.State.make [| s.value_seed |] in
  let value = gen_value rng ~a ~b ~smem ~n ~gid in
  let out_idx = if s.block_invariant then Expr.Thread_idx else gid in
  let stage =
    match smem with
    | Some sm ->
      [
        Stmt.store sm [ Expr.Thread_idx ] (Expr.load a [ gid ]); Stmt.sync;
      ]
    | None -> []
  in
  let x = Var.fresh "x" in
  let store_out v =
    let st = Stmt.let_ x out_idx (Stmt.store c [ Expr.var x ] v) in
    if s.pred_tail then Stmt.if_ (Expr.lt gid (Expr.int (max 1 (n - 3)))) st
    else st
  in
  let compute =
    match reg with
    | Some r ->
      let rv = Var.fresh "r" in
      [
        Stmt.store r [ Expr.int 0 ] (Expr.float 0.);
        Stmt.for_ rv (Expr.int s.reduce)
          (Stmt.store r [ Expr.int 0 ]
             (Expr.add
                (Expr.load r [ Expr.int 0 ])
                (Expr.add value (Expr.mul (Expr.var rv) (Expr.float 0.5)))));
        store_out (Expr.load r [ Expr.int 0 ]);
      ]
    | None -> [ store_out value ]
  in
  let k =
    Kernel.create
      ?shared:(Option.map (fun sm -> [ sm ]) smem)
      ?regs:(Option.map (fun r -> [ r ]) reg)
      ~name:"gen" ~params:[ a; b; c ] ~grid_dim:s.grid ~block_dim:s.block
      (Stmt.seq (stage @ compute))
  in
  (k, a, b, c, n)

let make_inputs seed n =
  let rng = Random.State.make [| seed |] in
  Array.init n (fun _ -> (Random.State.float rng 4.) -. 2.)

let bits = Int64.bits_of_float

let arrays_equal_bits x y =
  Array.length x = Array.length y
  && Array.for_all Fun.id (Array.init (Array.length x) (fun i -> bits x.(i) = bits y.(i)))

(* Run a kernel through one backend; capture either the output array or the
   raised exception (compared structurally, i.e. message included). *)
let capture runner (k : Kernel.t) ~a ~b ~c ~n ~seed =
  let av = make_inputs seed n
  and bv = make_inputs (seed + 1) n
  and cv = Array.make n 0. in
  try
    runner k [ (a, av); (b, bv); (c, cv) ];
    Ok cv
  with e -> Error e

let same_result r1 r2 =
  match (r1, r2) with
  | Ok x, Ok y -> arrays_equal_bits x y
  | Error e1, Error e2 -> e1 = e2
  | _ -> false

(* --- qcheck properties ---------------------------------------------------- *)

let arb_spec = QCheck.make ~print:spec_print spec_gen

let prop_compiled_eq_legacy =
  QCheck.Test.make ~count:60 ~name:"compiled backend == legacy interpreter"
    arb_spec (fun s ->
      let k, a, b, c, n = build_kernel s in
      let r_legacy = capture Interp.run k ~a ~b ~c ~n ~seed:s.input_seed in
      let r_compiled =
        capture (CE.run ~parallel:false) k ~a ~b ~c ~n ~seed:s.input_seed
      in
      same_result r_legacy r_compiled)

let prop_parallel_eq_sequential =
  QCheck.Test.make ~count:60 ~name:"parallel grid == sequential grid" arb_spec
    (fun s ->
      let k, a, b, c, n = build_kernel s in
      let r_par =
        capture (CE.run ~parallel:true) k ~a ~b ~c ~n ~seed:s.input_seed
      in
      let r_seq =
        capture (CE.run ~parallel:false) k ~a ~b ~c ~n ~seed:s.input_seed
      in
      same_result r_par r_seq)

let prop_gate_respects_collisions =
  QCheck.Test.make ~count:40
    ~name:"parallel-grid gate rejects block-colliding stores" arb_spec
    (fun s ->
      let k, _, _, _, _ = build_kernel s in
      (* Colliding output indices must never be declared disjoint. *)
      QCheck.assume (s.block_invariant && s.grid > 1);
      not (Verify.block_disjoint_writes k))

(* --- deterministic error-parity cases (PR 3 negative-path kernels) -------- *)

let both_raise_same name mk =
  Alcotest.test_case name `Quick (fun () ->
      let k, bindings_of = mk () in
      let go runner =
        try
          runner k (bindings_of ());
          Ok ()
        with e -> Error e
      in
      let r1 = go Interp.run and r2 = go (CE.run ~parallel:false) in
      (match r1 with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "legacy interpreter did not raise");
      Alcotest.(check bool)
        "same exception (constructor and message)" true (r1 = r2))

let runtime_divergence_kernel () =
  let c = Buffer.create "C" [ 32 ] in
  let x = Var.fresh "x" in
  let body =
    Stmt.seq
      [
        Stmt.let_ x Expr.Thread_idx
          (Stmt.if_ (Expr.lt (Expr.var x) (Expr.int 16)) Stmt.sync);
        Stmt.store c [ Expr.Thread_idx ] (Expr.float 0.);
      ]
  in
  let k =
    Kernel.create ~name:"rt_diverge" ~params:[ c ] ~grid_dim:1 ~block_dim:32
      body
  in
  (k, fun () -> [ (c, Array.make 32 0.) ])

let oob_store_kernel () =
  let c = Buffer.create "C" [ 8 ] in
  let body = Stmt.store c [ Expr.Thread_idx ] (Expr.float 1.) in
  let k = Kernel.create ~name:"oob" ~params:[ c ] ~grid_dim:1 ~block_dim:32 body in
  (k, fun () -> [ (c, Array.make 8 0.) ])

let negative_index_kernel () =
  let a = Buffer.create "A" [ 32 ] and c = Buffer.create "C" [ 32 ] in
  let body =
    Stmt.store c [ Expr.Thread_idx ]
      (Expr.load a [ Expr.sub Expr.Thread_idx (Expr.int 1) ])
  in
  let k =
    Kernel.create ~name:"neg" ~params:[ a; c ] ~grid_dim:1 ~block_dim:32 body
  in
  (k, fun () -> [ (a, Array.make 32 0.); (c, Array.make 32 0.) ])

let missing_binding_kernel () =
  let c = Buffer.create "C" [ 8 ] in
  let k =
    Kernel.create ~name:"missing" ~params:[ c ] ~grid_dim:1 ~block_dim:1
      (Stmt.store c [ Expr.int 0 ] (Expr.float 1.))
  in
  (k, fun () -> [])

(* --- deterministic result-parity cases ------------------------------------ *)

let check_same_outputs name k bindings_of outputs =
  Alcotest.test_case name `Quick (fun () ->
      let run runner =
        let bs = bindings_of () in
        runner k bs;
        List.map (fun b -> List.assq b bs) outputs
      in
      let o1 = run Interp.run and o2 = run (CE.run ~parallel:false) in
      List.iter2
        (fun x y ->
          Alcotest.(check bool) "outputs bit-identical" true
            (arrays_equal_bits x y))
        o1 o2)

let mma_kernel () =
  let a = Buffer.create "A" [ 8; 4 ] and b = Buffer.create "B" [ 4; 8 ] in
  let c = Buffer.create "C" [ 8; 8 ] in
  let sa = Buffer.create ~scope:Buffer.Shared "sa" [ 8; 4 ] in
  let sb = Buffer.create ~scope:Buffer.Shared "sb" [ 4; 8 ] in
  let sc = Buffer.create ~scope:Buffer.Warp "sc" [ 8; 8 ] in
  let copy_in =
    Stmt.seq
      [
        Stmt.store sa
          [ Expr.div Expr.Thread_idx (Expr.int 4);
            Expr.modulo Expr.Thread_idx (Expr.int 4) ]
          (Expr.load a
             [ Expr.div Expr.Thread_idx (Expr.int 4);
               Expr.modulo Expr.Thread_idx (Expr.int 4) ]);
        Stmt.store sb
          [ Expr.div Expr.Thread_idx (Expr.int 8);
            Expr.modulo Expr.Thread_idx (Expr.int 8) ]
          (Expr.load b
             [ Expr.div Expr.Thread_idx (Expr.int 8);
               Expr.modulo Expr.Thread_idx (Expr.int 8) ]);
      ]
  in
  let mma =
    Stmt.Mma
      {
        m = 8;
        n = 8;
        k = 4;
        a = sa;
        a_off = [ Expr.int 0; Expr.int 0 ];
        b = sb;
        b_off = [ Expr.int 0; Expr.int 0 ];
        c = sc;
        c_off = [ Expr.int 0; Expr.int 0 ];
      }
  in
  let writeback =
    Stmt.seq
      (List.init 2 (fun r ->
           Stmt.store c
             [ Expr.add
                 (Expr.mul (Expr.int r) (Expr.int 4))
                 (Expr.div Expr.Thread_idx (Expr.int 8));
               Expr.modulo Expr.Thread_idx (Expr.int 8) ]
             (Expr.load sc
                [ Expr.add
                    (Expr.mul (Expr.int r) (Expr.int 4))
                    (Expr.div Expr.Thread_idx (Expr.int 8));
                  Expr.modulo Expr.Thread_idx (Expr.int 8) ])))
  in
  let body = Stmt.seq [ copy_in; Stmt.sync; mma; Stmt.sync; writeback ] in
  let k =
    Kernel.create ~shared:[ sa; sb ] ~warp_bufs:[ sc ] ~name:"mma"
      ~params:[ a; b; c ] ~grid_dim:1 ~block_dim:32 body
  in
  let bindings_of () =
    [
      (a, Array.init 32 (fun x -> float_of_int (x mod 5) -. 2.));
      (b, Array.init 32 (fun x -> float_of_int (x mod 7) -. 3.));
      (c, Array.make 64 0.);
    ]
  in
  (k, bindings_of, [ c ])

let select_guard_kernel () =
  let a = Buffer.create "A" [ 8 ] and c = Buffer.create "C" [ 32 ] in
  let guarded =
    Expr.select
      (Expr.lt Expr.Thread_idx (Expr.int 8))
      (Expr.load a [ Expr.Thread_idx ])
      (Expr.float 0.)
  in
  let k =
    Kernel.create ~name:"guard" ~params:[ a; c ] ~grid_dim:1 ~block_dim:32
      (Stmt.store c [ Expr.Thread_idx ] guarded)
  in
  let bindings_of () =
    [ (a, Array.init 8 float_of_int); (c, Array.make 32 (-1.)) ]
  in
  (k, bindings_of, [ c ])

(* --- parallel-grid gate unit checks --------------------------------------- *)

let vadd_kernel () =
  let n = 128 in
  let a = Buffer.create "A" [ n ] and c = Buffer.create "C" [ n ] in
  let gid = Expr.add (Expr.mul Expr.Block_idx (Expr.int 32)) Expr.Thread_idx in
  ( Kernel.create ~name:"vadd" ~params:[ a; c ] ~grid_dim:4 ~block_dim:32
      (Stmt.store c [ gid ] (Expr.add (Expr.load a [ gid ]) (Expr.float 1.))),
    a,
    c )

let test_gate_accepts_block_indexed () =
  let k, _, _ = vadd_kernel () in
  Alcotest.(check bool) "disjoint" true (Verify.block_disjoint_writes k)

let test_gate_accepts_let_tainted () =
  let n = 64 in
  let c = Buffer.create "C" [ n ] in
  let x = Var.fresh "x" in
  let gid = Expr.add (Expr.mul Expr.Block_idx (Expr.int 32)) Expr.Thread_idx in
  let k =
    Kernel.create ~name:"lt" ~params:[ c ] ~grid_dim:2 ~block_dim:32
      (Stmt.let_ x gid (Stmt.store c [ Expr.var x ] (Expr.float 1.)))
  in
  Alcotest.(check bool) "let-bound taint flows" true
    (Verify.block_disjoint_writes k)

let test_gate_rejects_thread_only_index () =
  let c = Buffer.create "C" [ 32 ] in
  let k =
    Kernel.create ~name:"collide" ~params:[ c ] ~grid_dim:2 ~block_dim:32
      (Stmt.store c [ Expr.Thread_idx ] (Expr.float 1.))
  in
  Alcotest.(check bool) "colliding blocks rejected" false
    (Verify.block_disjoint_writes k)

let test_gate_rejects_read_write_buffer () =
  let n = 64 in
  let c = Buffer.create "C" [ n ] in
  let gid = Expr.add (Expr.mul Expr.Block_idx (Expr.int 32)) Expr.Thread_idx in
  let k =
    Kernel.create ~name:"rw" ~params:[ c ] ~grid_dim:2 ~block_dim:32
      (Stmt.store c [ gid ] (Expr.add (Expr.load c [ gid ]) (Expr.float 1.)))
  in
  Alcotest.(check bool) "read+write global rejected" false
    (Verify.block_disjoint_writes k)

let test_gate_rejects_for_bound_taint () =
  (* A [For]-bound variable ranges from 0 in every block: it must not count
     as block-dependent even when its extent does. *)
  let c = Buffer.create "C" [ 64 ] in
  let i = Var.fresh "i" in
  let k =
    Kernel.create ~name:"forv" ~params:[ c ] ~grid_dim:2 ~block_dim:1
      (Stmt.for_ i
         (Expr.add Expr.Block_idx (Expr.int 2))
         (Stmt.store c [ Expr.var i ] (Expr.float 1.)))
  in
  Alcotest.(check bool) "for-var not tainted" false
    (Verify.block_disjoint_writes k)

(* --- observability counters ----------------------------------------------- *)

let test_metrics_counters () =
  let k, a, c = vadd_kernel () in
  let before_threads = Hidet_obs.Metrics.(value (counter "sim.threads")) in
  let before_stmts = Hidet_obs.Metrics.(value (counter "sim.statements")) in
  CE.run k [ (a, Array.make 128 1.); (c, Array.make 128 0.) ];
  let d_threads =
    Hidet_obs.Metrics.(value (counter "sim.threads")) - before_threads
  in
  let d_stmts =
    Hidet_obs.Metrics.(value (counter "sim.statements")) - before_stmts
  in
  Alcotest.(check int) "threads counted" (Kernel.num_threads k) d_threads;
  Alcotest.(check bool) "statements counted" true (d_stmts >= 128)

let test_compile_once_run_many () =
  let k, a, c = vadd_kernel () in
  let compiled = CE.compile k in
  Alcotest.(check bool) "grid provably disjoint" true (CE.parallel_grid compiled);
  let cv1 = Array.make 128 0. and cv2 = Array.make 128 0. in
  CE.run_compiled compiled [ (a, Array.make 128 1.); (c, cv1) ];
  CE.run_compiled compiled [ (a, Array.make 128 2.); (c, cv2) ];
  Alcotest.(check (float 0.)) "first launch" 2. cv1.(5);
  Alcotest.(check (float 0.)) "second launch reuses program" 3. cv2.(5)

let () =
  Alcotest.run "compile_exec"
    [
      ( "parity",
        [
          QCheck_alcotest.to_alcotest prop_compiled_eq_legacy;
          QCheck_alcotest.to_alcotest prop_parallel_eq_sequential;
          QCheck_alcotest.to_alcotest prop_gate_respects_collisions;
        ] );
      ( "error parity",
        [
          both_raise_same "runtime barrier divergence" runtime_divergence_kernel;
          both_raise_same "out-of-bounds store" oob_store_kernel;
          both_raise_same "negative index load" negative_index_kernel;
          both_raise_same "missing binding" missing_binding_kernel;
        ] );
      ( "result parity",
        [
          (let k, b, o = mma_kernel () in
           check_same_outputs "mma tile" k b o);
          (let k, b, o = select_guard_kernel () in
           check_same_outputs "select guards OOB" k b o);
        ] );
      ( "parallel gate",
        [
          Alcotest.test_case "block-indexed accepted" `Quick
            test_gate_accepts_block_indexed;
          Alcotest.test_case "let-tainted accepted" `Quick
            test_gate_accepts_let_tainted;
          Alcotest.test_case "thread-only index rejected" `Quick
            test_gate_rejects_thread_only_index;
          Alcotest.test_case "read+write buffer rejected" `Quick
            test_gate_rejects_read_write_buffer;
          Alcotest.test_case "for-bound var not tainted" `Quick
            test_gate_rejects_for_bound_taint;
        ] );
      ( "observability",
        [
          Alcotest.test_case "metrics counters" `Quick test_metrics_counters;
          Alcotest.test_case "compile once, run many" `Quick
            test_compile_once_run_many;
        ] );
    ]
