(* Tests for the engines and the baselines: loop-oriented kernels'
   correctness, input-centric space mathematics (with brute-force checked
   factorization counts), tuner behavior (prime failure, budget capping,
   strategies), library dispatch, the engine capability contracts, and
   cross-engine correctness on an executable model. *)

module LS = Hidet_baselines.Loop_sched
module IC = Hidet_baselines.Input_centric
module Lib = Hidet_baselines.Library_engine
module HE = Hidet.Hidet_engine
module E = Hidet_runtime.Engine
module Plan = Hidet_runtime.Plan
module C = Hidet_sched.Compiled
module MT = Hidet_sched.Matmul_template
module M = Hidet_models.Models
module G = Hidet_graph.Graph
module T = Hidet_tensor.Tensor

let dev = Hidet_gpu.Device.rtx3090

(* --- loop-oriented kernels ----------------------------------------------------- *)

let loop_gemm_ok ?(batch = 1) ~m ~n ~k s =
  let a = T.rand ~seed:1 [ batch; m; k ] and b = T.rand ~seed:2 [ k; n ] in
  let expect = T.matmul a b in
  let c = LS.gemm ~batch ~m ~n ~k s in
  C.verify c;
  T.allclose ~rtol:1e-3 ~atol:1e-4 expect (C.run c [ a; b ])

let test_loop_gemm () =
  let s = { LS.tile_m = 32; tile_n = 32; tile_k = 8; thread_m = 4; thread_n = 4;
            use_shared = true; unroll = false } in
  Alcotest.(check bool) "shared" true (loop_gemm_ok ~m:64 ~n:64 ~k:32 s);
  Alcotest.(check bool) "direct" true
    (loop_gemm_ok ~m:64 ~n:64 ~k:32 { s with LS.use_shared = false });
  Alcotest.(check bool) "unrolled" true
    (loop_gemm_ok ~m:64 ~n:64 ~k:32 { s with LS.unroll = true });
  Alcotest.(check bool) "batched" true
    (loop_gemm_ok ~batch:2 ~m:32 ~n:32 ~k:16
       { s with LS.tile_k = 16 })

let test_loop_gemm_divisor_constraint () =
  let s = { LS.tile_m = 32; tile_n = 32; tile_k = 8; thread_m = 4; thread_n = 4;
            use_shared = true; unroll = false } in
  (* 100 is not divisible by 32. *)
  Alcotest.(check bool) "non-divisor rejected" true
    (try
       ignore (LS.gemm ~m:100 ~n:64 ~k:32 s);
       false
     with Invalid_argument _ -> true);
  (* Thread count below a warp rejected. *)
  Alcotest.(check bool) "tiny block rejected" true
    (Result.is_error
       (LS.check ~m:64 ~n:64 ~k:32
          { s with LS.tile_m = 4; tile_n = 4; thread_m = 1; thread_n = 1 }))

let test_loop_gemm_not_pipelined () =
  (* The central claim: loop-oriented kernels never exhibit the double
     buffering pattern, so they get no overlap credit. *)
  let s = { LS.tile_m = 32; tile_n = 32; tile_k = 8; thread_m = 4; thread_n = 4;
            use_shared = true; unroll = false } in
  let c = LS.gemm ~m:256 ~n:256 ~k:256 s in
  List.iter
    (fun k ->
      Alcotest.(check int) "stages = 1" 1 (Hidet_gpu.Pipeline.effective_stages k))
    c.C.kernels

let test_loop_conv () =
  let x = T.rand ~seed:3 [ 2; 4; 8; 8 ] and w = T.rand ~seed:4 [ 8; 4; 3; 3 ] in
  let expect = T.conv2d x w ~stride:1 ~padding:1 in
  let s = { LS.tile_m = 8; tile_n = 32; tile_k = 6; thread_m = 1; thread_n = 1;
            use_shared = true; unroll = false } in
  let c = LS.conv2d ~x_shape:[ 2; 4; 8; 8 ] ~w_shape:[ 8; 4; 3; 3 ] ~stride:1
      ~pad_h:1 ~pad_w:1 s in
  Alcotest.(check bool) "conv" true
    (T.allclose ~rtol:1e-3 ~atol:1e-4 expect (C.run c [ x; w ]))

let test_loop_depthwise () =
  let x = T.rand ~seed:5 [ 1; 4; 8; 8 ] and w = T.rand ~seed:6 [ 4; 1; 3; 3 ] in
  let expect = T.depthwise_conv2d x w ~stride:1 ~padding:1 in
  List.iter
    (fun s ->
      let c = LS.depthwise ~x_shape:[ 1; 4; 8; 8 ] ~w_shape:[ 4; 1; 3; 3 ]
          ~stride:1 ~padding:1 s in
      Alcotest.(check bool)
        (Printf.sprintf "dw tile %d/%d" s.LS.dw_tile_p s.LS.dw_thread_p)
        true
        (T.allclose ~rtol:1e-3 ~atol:1e-4 expect (C.run c [ x; w ])))
    [
      { LS.dw_tile_p = 64; dw_thread_p = 1; dw_unroll = false };
      { LS.dw_tile_p = 64; dw_thread_p = 2; dw_unroll = true };
      { LS.dw_tile_p = 32; dw_thread_p = 4; dw_unroll = true };
    ]

(* --- input-centric space mathematics -------------------------------------------- *)

let brute_force_factorizations n j =
  (* Count ordered j-tuples of positive ints whose product is n. *)
  let rec go n j = if j = 1 then 1
    else
      List.fold_left
        (fun acc d -> if n mod d = 0 then acc + go (n / d) (j - 1) else acc)
        0
        (List.init n (fun i -> i + 1))
  in
  go n j

let test_ordered_factorizations () =
  List.iter
    (fun (n, j) ->
      Alcotest.(check (float 0.5))
        (Printf.sprintf "F_%d(%d)" j n)
        (float_of_int (brute_force_factorizations n j))
        (IC.ordered_factorizations n j))
    [ (12, 2); (12, 3); (64, 4); (60, 3); (1, 4); (17, 2); (100, 4) ]

let prop_random_factorization_product =
  QCheck.Test.make ~name:"random factorization multiplies back" ~count:200
    QCheck.(pair (int_range 1 4096) (int_range 1 5))
    (fun (n, j) ->
      let rng = Random.State.make [| n; j |] in
      let module IC = Hidet_baselines.Input_centric in
      let parts = IC.random_factorization rng n j in
      Array.fold_left ( * ) 1 parts = n)

let test_space_sizes_in_paper_range () =
  (* ResNet-50 convolution spaces land in the paper's 1e4..1e8 band. *)
  let g = M.resnet50 () in
  List.iter
    (fun (n : G.node) ->
      match n.G.op with
      | Hidet_graph.Op.Conv2d { stride; pad_h; pad_w } ->
        let x_shape = G.node_shape g (List.nth n.G.inputs 0) in
        let w_shape = G.node_shape g (List.nth n.G.inputs 1) in
        let s = IC.conv_space_size ~x_shape ~w_shape ~stride ~pad_h ~pad_w in
        if s < 1e4 || s > 1e8 then
          Alcotest.failf "space %.3g out of paper band for %s" s
            (String.concat "x" (List.map string_of_int w_shape))
      | _ -> ())
    (G.nodes g)

let test_prime_sizes_fail () =
  (* For a prime above the 1024-thread block limit the input-centric space
     is empty (the paper's 2039 case). Primes below it admit only degenerate
     whole-row schedules, far slower than Hidet's. *)
  let tune size =
    IC.tune_gemm ~strategy:IC.Random_search ~trials:500 ~device:dev ~seed:1
      ~m:size ~n:size ~k:size
      ~compile:(fun s -> LS.gemm ~m:size ~n:size ~k:size s)
      ()
  in
  Alcotest.(check bool) "prime 2039 fails" true (tune 2039 = None);
  (match Hidet_sched.Tuner.tune_matmul ~device:dev ~m:2039 ~n:2039 ~k:2039 () with
  | None -> Alcotest.fail "hidet must handle 2039"
  | Some (_, _, st) -> (
    match tune 1021 with
    | None -> () (* also fine: space effectively empty *)
    | Some t ->
      (* Hidet's 2039 kernel does 8x the work of a 1021 kernel; despite that
         it should still be far better than the degenerate loop schedule. *)
      Alcotest.(check bool) "degenerate prime schedule is catastrophic" true
        (t.IC.latency > st.Hidet_sched.Tuner.best_latency /. 2.)))

let test_budget_capped_by_space () =
  (* A tiny space is exhausted below the trial budget — the paper's
     AutoTVM-on-Bert effect ("less than 20 schedules"). A 7x7 spatial grid
     gives the depthwise space only F_3(49) * 2 = 12 points. *)
  match
    IC.tune_depthwise ~strategy:IC.Random_search ~trials:1000 ~device:dev
      ~seed:2 ~p:49
      ~compile:(fun s ->
        LS.depthwise ~x_shape:[ 1; 8; 7; 7 ] ~w_shape:[ 8; 1; 3; 3 ] ~stride:1
          ~padding:1 s)
      ()
  with
  | Some t ->
    Alcotest.(check bool)
      (Printf.sprintf "capped (%d trials)" t.IC.trials)
      true (t.IC.trials < 1000)
  | None -> Alcotest.fail "depthwise 7x7 must have valid schedules" 

let test_strategies_find_schedules () =
  List.iter
    (fun strategy ->
      match
        IC.tune_gemm ~strategy ~trials:300 ~device:dev ~seed:3 ~m:256 ~n:256
          ~k:256
          ~compile:(fun s -> LS.gemm ~m:256 ~n:256 ~k:256 s)
          ()
      with
      | Some t -> Alcotest.(check bool) "positive latency" true (t.IC.latency > 0.)
      | None -> Alcotest.fail "no schedule for 256^3")
    [ IC.Random_search; IC.Evolutionary ]

(* --- library engines -------------------------------------------------------------- *)

let test_library_pick () =
  let big = Lib.pick_matmul ~m:4096 ~n:4096 ~k:1024 () in
  Alcotest.(check int) "big problems get big tiles" 128 big.MT.block_m;
  let small = Lib.pick_matmul ~m:32 ~n:32 ~k:64 () in
  Alcotest.(check bool) "small problems get the fallback tile" true
    (small.MT.block_m <= 64);
  List.iter
    (fun cfg -> Alcotest.(check bool) "valid" true (Result.is_ok (MT.check cfg)))
    [ big; small ];
  Alcotest.(check bool) "libraries ship pipelined kernels" true
    (big.MT.stages >= 2)

let test_fused_attention_latency () =
  let l = Lib.fused_attention_latency dev ~heads:12 ~seq:128 ~dim:64 in
  Alcotest.(check bool) "positive and sub-millisecond" true (l > 0. && l < 1e-3);
  let l2 = Lib.fused_attention_latency dev ~heads:12 ~seq:512 ~dim:64 in
  Alcotest.(check bool) "grows with sequence" true (l2 > l)

(* --- engine contracts --------------------------------------------------------------- *)

let engines : (module E.S) list =
  [
    (module Lib.Pytorch);
    (module Lib.Ort);
    (module Lib.Tensorrt);
    (module IC.Autotvm);
    (module IC.Ansor);
    (module HE);
  ]

let test_engine_results_sane () =
  let g () = M.Tiny.cnn () in
  List.iter
    (fun (module Eng : E.S) ->
      let r = Eng.compile dev (g ()) in
      Alcotest.(check bool) (Eng.name ^ " latency finite") true
        (r.E.latency > 0. && r.E.latency < 1.);
      Alcotest.(check bool) (Eng.name ^ " kernels > 0") true (r.E.kernel_count > 0);
      Alcotest.(check bool) (Eng.name ^ " tuning cost >= 0") true
        (r.E.tuning_cost >= 0.))
    engines

let test_fusion_levels_order_kernel_counts () =
  (* More fusion capability => fewer kernels on a fused-friendly model. *)
  let count (module Eng : E.S) = (Eng.compile dev (M.Tiny.cnn ())).E.kernel_count in
  let torch = count (module Lib.Pytorch) in
  let ort = count (module Lib.Ort) in
  let trt = count (module Lib.Tensorrt) in
  Alcotest.(check bool)
    (Printf.sprintf "pytorch %d >= ort %d >= trt %d" torch ort trt)
    true
    (torch >= ort && ort >= trt)

let test_libraries_tune_for_free () =
  List.iter
    (fun (module Eng : E.S) ->
      Alcotest.(check (float 0.)) (Eng.name ^ " no tuning cost") 0.
        (Eng.compile dev (M.Tiny.cnn ())).E.tuning_cost)
    [ (module Lib.Pytorch : E.S); (module Lib.Ort); (module Lib.Tensorrt) ]

let test_tuners_pay_tuning_cost () =
  (* Hidet's fresh trials may have been absorbed by the process-global
     schedule cache (earlier tests compiled the same workloads), so the
     from-scratch cost — fresh + cache-served — is the invariant. *)
  List.iter
    (fun (module Eng : E.S) ->
      Alcotest.(check bool) (Eng.name ^ " pays tuning") true
        (E.total_tuning_cost (Eng.compile dev (M.Tiny.cnn ())) > 0.))
    [ (module IC.Autotvm : E.S); (module IC.Ansor); (module HE) ]

let test_cross_engine_correctness () =
  (* Every engine that produces an executable plan must compute the same
     function. *)
  let g = M.Tiny.cnn () in
  let x = T.rand ~seed:31 [ 1; 3; 16; 16 ] in
  let expect = Hidet_graph.Reference.run1 g [ x ] in
  List.iter
    (fun (module Eng : E.S) ->
      match (Eng.compile dev (M.Tiny.cnn ())).E.plan with
      | None -> Alcotest.failf "%s produced no plan" Eng.name
      | Some plan ->
        let got = Plan.run1 plan [ x ] in
        if not (T.allclose ~rtol:1e-2 ~atol:1e-3 expect got) then
          Alcotest.failf "%s disagrees with reference (max %g)" Eng.name
            (T.max_abs_diff expect got))
    engines

let test_table1_capabilities () =
  (* The qualitative Table-1 relations the benchmark prints. *)
  let caps (module Eng : E.S) = Eng.caps in
  Alcotest.(check bool) "hidet graph opt high" true
    ((caps (module HE)).E.graph_opt = E.High);
  Alcotest.(check bool) "hidet kernel opt high" true
    ((caps (module HE)).E.kernel_opt = E.High);
  Alcotest.(check bool) "hidet tunes fast" true
    ((caps (module HE)).E.tuning_time = E.High);
  Alcotest.(check bool) "autotvm tunes slowly" true
    ((caps (module IC.Autotvm)).E.tuning_time = E.Low);
  Alcotest.(check bool) "pytorch no graph opt" true
    ((caps (module Lib.Pytorch)).E.graph_opt = E.Low)

let () =
  Alcotest.run "hidet_engines"
    [
      ( "loop kernels",
        [
          Alcotest.test_case "gemm variants" `Quick test_loop_gemm;
          Alcotest.test_case "divisor constraint" `Quick test_loop_gemm_divisor_constraint;
          Alcotest.test_case "never pipelined" `Quick test_loop_gemm_not_pipelined;
          Alcotest.test_case "conv" `Quick test_loop_conv;
          Alcotest.test_case "depthwise" `Quick test_loop_depthwise;
        ] );
      ( "input-centric space",
        [
          Alcotest.test_case "factorization counts" `Quick test_ordered_factorizations;
          QCheck_alcotest.to_alcotest prop_random_factorization_product;
          Alcotest.test_case "paper-range space sizes" `Quick test_space_sizes_in_paper_range;
          Alcotest.test_case "prime sizes fail" `Quick test_prime_sizes_fail;
          Alcotest.test_case "budget capped by space" `Quick test_budget_capped_by_space;
          Alcotest.test_case "both strategies work" `Quick test_strategies_find_schedules;
        ] );
      ( "library dispatch",
        [
          Alcotest.test_case "matmul pick" `Quick test_library_pick;
          Alcotest.test_case "fused attention" `Quick test_fused_attention_latency;
        ] );
      ( "engine contracts",
        [
          Alcotest.test_case "results sane" `Quick test_engine_results_sane;
          Alcotest.test_case "fusion levels vs kernel counts" `Quick
            test_fusion_levels_order_kernel_counts;
          Alcotest.test_case "libraries tune for free" `Quick test_libraries_tune_for_free;
          Alcotest.test_case "tuners pay" `Quick test_tuners_pay_tuning_cost;
          Alcotest.test_case "cross-engine correctness" `Quick test_cross_engine_correctness;
          Alcotest.test_case "table 1 capabilities" `Quick test_table1_capabilities;
        ] );
    ]
