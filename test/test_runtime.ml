(* Tests for the runtime layer: execution plans (argument wiring, constant
   forcing, intermediate reshaping, multi-output graphs) and the shared
   group compiler (fusion predicates, fallback to standalone kernels). *)

module G = Hidet_graph.Graph
module Op = Hidet_graph.Op
module Passes = Hidet_graph.Passes
module Plan = Hidet_runtime.Plan
module GC = Hidet_runtime.Group_compiler
module RB = Hidet_sched.Rule_based
module C = Hidet_sched.Compiled
module T = Hidet_tensor.Tensor
module Ref = Hidet_graph.Reference

let dev = Hidet_gpu.Device.rtx3090

let rule_based_config ~fuse =
  {
    GC.schedule_anchor =
      (fun g n -> RB.schedule (Op.to_def n.G.op (List.map (G.node_shape g) n.G.inputs)));
    may_fuse_prologue = (fun _ -> fuse);
    may_fuse_epilogue = (fun _ -> fuse);
  }

let chain_graph () =
  let g = G.create () in
  let x = G.input g [ 4; 8 ] in
  let w = G.constant g (T.rand ~seed:1 [ 8; 8 ]) in
  let mm = G.matmul g x w in
  let r = G.relu g mm in
  let out = G.reshape g r [ 32 ] in
  G.set_outputs g [ out ];
  g

let test_plan_runs_and_reshapes () =
  let g = chain_graph () in
  let plan = GC.compile_graph (rule_based_config ~fuse:true) g in
  let x = T.rand ~seed:2 [ 4; 8 ] in
  let got = Plan.run1 plan [ x ] in
  Alcotest.(check (list int)) "shape follows graph" [ 32 ] (T.shape got);
  Alcotest.(check bool) "matches reference" true
    (T.allclose ~rtol:1e-3 ~atol:1e-4 (Ref.run1 g [ x ]) got)

let test_fusion_predicate_controls_kernels () =
  let g = chain_graph () in
  let fused = GC.compile_graph (rule_based_config ~fuse:true) g in
  let unfused = GC.compile_graph (rule_based_config ~fuse:false) g in
  Alcotest.(check bool)
    (Printf.sprintf "fused %d < unfused %d steps" (List.length fused.Plan.steps)
       (List.length unfused.Plan.steps))
    true
    (List.length fused.Plan.steps < List.length unfused.Plan.steps);
  (* Both compute the same function. *)
  let x = T.rand ~seed:3 [ 4; 8 ] in
  Alcotest.(check bool) "same results" true
    (T.allclose ~rtol:1e-3 ~atol:1e-4 (Plan.run1 fused [ x ]) (Plan.run1 unfused [ x ]))

let test_standalone_fallback_on_unfusable () =
  (* A transpose whose rank cannot match the row-template softmax buffer
     must fall back to a standalone kernel, preserving semantics. *)
  let g = G.create () in
  let x = G.input g [ 2; 3; 5 ] in
  let t = G.transpose g x [ 1; 0; 2 ] in
  let s = G.softmax g t in
  G.set_outputs g [ s ];
  let cfg =
    {
      GC.schedule_anchor =
        (fun g n ->
          match n.G.op with
          | Op.Softmax ->
            (* rows x cols buffer: rank 2 vs the rank-3 transpose. *)
            Hidet_sched.Row_templates.softmax ~rows:6 ~cols:5 ()
          | op -> RB.schedule (Op.to_def op (List.map (G.node_shape g) n.G.inputs)));
      may_fuse_prologue = (fun _ -> true);
      may_fuse_epilogue = (fun _ -> true);
    }
  in
  let plan = GC.compile_graph cfg g in
  Alcotest.(check int) "transpose ran standalone" 2 (List.length plan.Plan.steps);
  let x_val = T.rand ~seed:4 [ 2; 3; 5 ] in
  Alcotest.(check bool) "semantics preserved" true
    (T.allclose ~rtol:1e-4 ~atol:1e-5 (Ref.run1 g [ x_val ]) (Plan.run1 plan [ x_val ]))

let test_multi_output_graph () =
  let g = G.create () in
  let x = G.input g [ 8 ] in
  let a = G.relu g x in
  let b = G.gelu g x in
  G.set_outputs g [ a; b ];
  let plan = GC.compile_graph (rule_based_config ~fuse:true) g in
  let x_val = T.rand ~seed:5 [ 8 ] in
  match (Plan.run plan [ (List.hd (G.input_ids g), x_val) ], Ref.run g [ (List.hd (G.input_ids g), x_val) ]) with
  | [ ga; gb ], [ ra; rb ] ->
    Alcotest.(check bool) "output a" true (T.allclose ra ga);
    Alcotest.(check bool) "output b" true (T.allclose rb gb)
  | _ -> Alcotest.fail "expected two outputs"

let test_unbound_input_rejected () =
  let g = chain_graph () in
  let plan = GC.compile_graph (rule_based_config ~fuse:true) g in
  Alcotest.(check bool) "missing input raises" true
    (try
       ignore (Plan.run plan []);
       false
     with Invalid_argument _ -> true)

let test_plan_accounting () =
  let g = chain_graph () in
  let plan = GC.compile_graph (rule_based_config ~fuse:true) g in
  Alcotest.(check bool) "latency positive" true (Plan.latency dev plan > 0.);
  Alcotest.(check bool) "kernel count positive" true (Plan.kernel_count plan > 0);
  let src = Plan.cuda_source plan in
  Alcotest.(check bool) "cuda source nonempty" true (String.length src > 200)

(* Weight thunks ([Graph.constant_lazy]) are shared across plans and OCaml's
   [Lazy] is not domain-safe: unsynchronized concurrent forcing can raise
   [Lazy.Undefined] or run the thunk twice. [Plan.run] serializes forcing, so
   the thunk runs exactly once no matter how many domains race through it. *)
let lazy_weight_graph counter =
  let g = G.create () in
  let x = G.input g [ 4; 8 ] in
  let w =
    G.constant_lazy g [ 8; 8 ]
      (lazy
        (Atomic.incr counter;
         T.rand ~seed:1 [ 8; 8 ]))
  in
  G.set_outputs g [ G.relu g (G.matmul g x w) ];
  g

let test_constant_forced_once_across_domains () =
  let forced = Atomic.make 0 in
  let plan =
    GC.compile_graph (rule_based_config ~fuse:true) (lazy_weight_graph forced)
  in
  let x = T.rand ~seed:2 [ 4; 8 ] in
  let domains =
    List.init 4 (fun _ -> Domain.spawn (fun () -> Plan.run1 plan [ x ]))
  in
  let results = List.map Domain.join domains in
  Alcotest.(check int) "thunk ran exactly once" 1 (Atomic.get forced);
  List.iter
    (fun r ->
      Alcotest.(check bool) "all domains agree bit for bit" true
        (compare (T.data r) (T.data (List.hd results)) = 0))
    results

let test_prepare_forces_constants_eagerly () =
  let forced = Atomic.make 0 in
  let plan =
    GC.compile_graph (rule_based_config ~fuse:true) (lazy_weight_graph forced)
  in
  Alcotest.(check int) "compilation does not force weights" 0 (Atomic.get forced);
  Plan.prepare plan;
  Alcotest.(check int) "prepare forces them" 1 (Atomic.get forced);
  ignore (Plan.run1 plan [ T.rand ~seed:2 [ 4; 8 ] ]);
  Alcotest.(check int) "run reuses the forced value" 1 (Atomic.get forced)

let () =
  Alcotest.run "hidet_runtime"
    [
      ( "plan",
        [
          Alcotest.test_case "runs and reshapes" `Quick test_plan_runs_and_reshapes;
          Alcotest.test_case "multi-output" `Quick test_multi_output_graph;
          Alcotest.test_case "unbound input" `Quick test_unbound_input_rejected;
          Alcotest.test_case "accounting" `Quick test_plan_accounting;
          Alcotest.test_case "constants force once across domains" `Quick
            test_constant_forced_once_across_domains;
          Alcotest.test_case "prepare forces constants eagerly" `Quick
            test_prepare_forces_constants_eagerly;
        ] );
      ( "group compiler",
        [
          Alcotest.test_case "fusion predicate" `Quick test_fusion_predicate_controls_kernels;
          Alcotest.test_case "standalone fallback" `Quick test_standalone_fallback_on_unfusable;
        ] );
    ]
