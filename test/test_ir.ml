(* Tests for the tensor-program IR: expression smart constructors, the
   simplifier (with a property test that simplification preserves
   evaluation), substitution, the verifier and the CUDA code generator. *)

open Hidet_ir

let e_int = Alcotest.testable Expr.pp Expr.equal

(* --- smart constructors ------------------------------------------------ *)

let test_constant_folding () =
  Alcotest.check e_int "add" (Expr.int 7) (Expr.add (Expr.int 3) (Expr.int 4));
  Alcotest.check e_int "mul" (Expr.int 12) (Expr.mul (Expr.int 3) (Expr.int 4));
  Alcotest.check e_int "div trunc" (Expr.int 2) (Expr.div (Expr.int 7) (Expr.int 3));
  Alcotest.check e_int "mod" (Expr.int 1) (Expr.modulo (Expr.int 7) (Expr.int 3));
  Alcotest.check e_int "min" (Expr.int 3) (Expr.min_ (Expr.int 3) (Expr.int 4));
  Alcotest.check e_int "max" (Expr.int 4) (Expr.max_ (Expr.int 3) (Expr.int 4))

let test_identities () =
  let v = Expr.var (Var.fresh "x") in
  Alcotest.check e_int "x+0" v (Expr.add v (Expr.int 0));
  Alcotest.check e_int "0+x" v (Expr.add (Expr.int 0) v);
  Alcotest.check e_int "x*1" v (Expr.mul v (Expr.int 1));
  Alcotest.check e_int "x*0" (Expr.int 0) (Expr.mul v (Expr.int 0));
  Alcotest.check e_int "x/1" v (Expr.div v (Expr.int 1));
  Alcotest.check e_int "x%1" (Expr.int 0) (Expr.modulo v (Expr.int 1));
  Alcotest.check e_int "x-0" v (Expr.sub v (Expr.int 0))

let test_bool_folding () =
  let v = Expr.var (Var.fresh "c") in
  Alcotest.check e_int "true&&c" v (Expr.and_ (Expr.bool true) v);
  Alcotest.check e_int "false&&c" (Expr.bool false) (Expr.and_ (Expr.bool false) v);
  Alcotest.check e_int "false||c" v (Expr.or_ (Expr.bool false) v);
  Alcotest.check e_int "not not c" v (Expr.not_ (Expr.not_ v));
  Alcotest.check e_int "select true" (Expr.int 1)
    (Expr.select (Expr.bool true) (Expr.int 1) (Expr.int 2))

let test_subst () =
  let x = Var.fresh "x" and y = Var.fresh "y" in
  let e = Expr.add (Expr.var x) (Expr.mul (Expr.var y) (Expr.var x)) in
  let e' = Expr.subst x (Expr.int 2) e in
  Alcotest.check e_int "subst" (Expr.add (Expr.int 2) (Expr.mul (Expr.var y) (Expr.int 2))) e'

let test_free_vars () =
  let x = Var.fresh "x" and y = Var.fresh "y" in
  let e = Expr.add (Expr.var x) (Expr.mul (Expr.var y) (Expr.var x)) in
  Alcotest.(check int) "two free vars" 2 (List.length (Expr.free_vars e));
  Alcotest.(check bool) "x first" true (Var.equal x (List.hd (Expr.free_vars e)))

(* --- evaluation --------------------------------------------------------- *)

let const_env =
  {
    Expr.lookup = (fun _ -> Expr.V_int 0);
    load = (fun _ _ -> Expr.V_float 0.);
    thread_idx = 5;
    block_idx = 2;
  }

let test_eval_indices () =
  Alcotest.(check int) "tid" 5 (Expr.eval_int const_env Expr.Thread_idx);
  Alcotest.(check int) "bid" 2 (Expr.eval_int const_env Expr.Block_idx);
  let e = Expr.Binop (Expr.Add, Expr.Thread_idx, Expr.Int 10) in
  Alcotest.(check int) "tid+10" 15 (Expr.eval_int const_env e)

let test_eval_float_intrinsics () =
  let check name expected e =
    Alcotest.(check (float 1e-6)) name expected (Expr.eval_float const_env e)
  in
  check "exp" (exp 1.) (Expr.Unop (Expr.Exp, Expr.Float 1.));
  check "sqrt" 3. (Expr.Unop (Expr.Sqrt, Expr.Float 9.));
  check "tanh" (tanh 0.5) (Expr.Unop (Expr.Tanh, Expr.Float 0.5));
  Alcotest.(check (float 1e-4)) "erf(1)" 0.8427
    (Expr.eval_float const_env (Expr.Unop (Expr.Erf, Expr.Float 1.)))

(* --- simplifier property: evaluation is preserved ----------------------- *)

let arb_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Expr.Int n) (int_range (-20) 20);
        map (fun f -> Expr.Float (float_of_int f /. 4.)) (int_range (-40) 40);
        return Expr.Thread_idx;
        return Expr.Block_idx;
      ]
  in
  let rec gen n =
    if n = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 4,
            let op =
              oneofl
                [ Expr.Add; Expr.Sub; Expr.Mul; Expr.Min; Expr.Max ]
            in
            map3 (fun op a b -> Expr.Binop (op, a, b)) op (gen (n / 2)) (gen (n / 2)) );
          ( 1,
            map3
              (fun c a b ->
                Expr.Select (Expr.Binop (Expr.Lt, c, Expr.Int 0), a, b))
              (gen (n / 2)) (gen (n / 2)) (gen (n / 2)) );
        ]
  in
  QCheck.make ~print:Expr.to_string (gen 6)

let prop_simplify_preserves_eval =
  QCheck.Test.make ~name:"simplify preserves evaluation" ~count:500 arb_expr
    (fun e ->
      let v1 = Expr.eval const_env e in
      let v2 = Expr.eval const_env (Simplify.expr e) in
      Expr.float_of_value v1 = Expr.float_of_value v2
      || Float.abs (Expr.float_of_value v1 -. Expr.float_of_value v2) < 1e-9)

let prop_simplify_idempotent =
  QCheck.Test.make ~name:"simplify is idempotent" ~count:300 arb_expr (fun e ->
      let s = Simplify.expr e in
      Expr.equal s (Simplify.expr s))

(* --- statement simplification ------------------------------------------- *)

let test_stmt_simplify () =
  let buf = Buffer.create "out" [ 8 ] in
  let i = Var.fresh "i" in
  (* for i in range(1): out[i] = i  ==>  out[0] = 0 *)
  let s =
    Stmt.for_ i (Expr.int 1) (Stmt.store buf [ Expr.var i ] (Expr.var i))
  in
  (match s with
  | Stmt.Store { indices = [ Expr.Int 0 ]; value = Expr.Int 0; _ } -> ()
  | _ -> Alcotest.fail "trivial loop not collapsed");
  (* extent-0 loop vanishes *)
  let s0 = Stmt.for_ (Var.fresh "j") (Expr.int 0) Stmt.sync in
  Alcotest.(check bool) "empty loop" true (s0 = Stmt.nop)

let test_let_inlining () =
  let buf = Buffer.create "out" [ 8 ] in
  let x = Var.fresh "x" in
  let s =
    Stmt.let_ x (Expr.int 3) (Stmt.store buf [ Expr.var x ] (Expr.var x))
  in
  match Simplify.stmt s with
  | Stmt.Store { indices = [ Expr.Int 3 ]; value = Expr.Int 3; _ } -> ()
  | other -> Alcotest.failf "let not inlined: %s" (Stmt.to_string other)

(* --- unrolling ------------------------------------------------------------ *)

let run_small kernel bindings = Hidet_gpu.Interp.run kernel bindings

let test_unroll_expands () =
  let out = Buffer.create "out" [ 4 ] in
  let i = Var.fresh "i" in
  let s =
    Stmt.for_ ~unroll:true i (Expr.int 4)
      (Stmt.store out [ Expr.var i ] (Expr.mul (Expr.var i) (Expr.int 2)))
  in
  Alcotest.(check int) "one unrollable loop" 1 (Unroll.count_unrollable s);
  let u = Unroll.stmt s in
  Alcotest.(check int) "no loops left" 0
    (Stmt.count (function Stmt.For _ -> true | _ -> false) u);
  Alcotest.(check int) "four stores" 4
    (Stmt.count (function Stmt.Store _ -> true | _ -> false) u)

let test_unroll_respects_threshold () =
  let out = Buffer.create "out" [ 64 ] in
  let i = Var.fresh "i" in
  let s =
    Stmt.for_ ~unroll:true i (Expr.int 64)
      (Stmt.store out [ Expr.var i ] (Expr.var i))
  in
  Alcotest.(check int) "large loop kept" 1
    (Stmt.count (function Stmt.For _ -> true | _ -> false) (Unroll.stmt s));
  Alcotest.(check int) "custom threshold expands" 0
    (Stmt.count
       (function Stmt.For _ -> true | _ -> false)
       (Unroll.stmt ~threshold:64 s))

let test_unroll_keeps_unmarked () =
  let out = Buffer.create "out" [ 4 ] in
  let i = Var.fresh "i" in
  let s = Stmt.for_ i (Expr.int 4) (Stmt.store out [ Expr.var i ] (Expr.var i)) in
  Alcotest.(check int) "unmarked loop kept" 1
    (Stmt.count (function Stmt.For _ -> true | _ -> false) (Unroll.stmt s))

let test_unroll_preserves_semantics () =
  (* A nested marked loop nest writing a function of both indices: the
     unrolled kernel must produce identical output. *)
  let out = Buffer.create "out" [ 3; 5 ] in
  let i = Var.fresh "i" and j = Var.fresh "j" in
  let body =
    Stmt.for_ ~unroll:true i (Expr.int 3)
      (Stmt.for_ ~unroll:true j (Expr.int 5)
         (Stmt.store out
            [ Expr.var i; Expr.var j ]
            (Expr.add
               (Expr.mul (Expr.var i) (Expr.int 10))
               (Expr.add (Expr.var j) Expr.Thread_idx))))
  in
  let mk body =
    Kernel.create ~name:"u" ~params:[ out ] ~grid_dim:1 ~block_dim:1 body
  in
  let a = Array.make 15 0. and b = Array.make 15 0. in
  run_small (mk body) [ (out, a) ];
  run_small (Unroll.kernel (mk body)) [ (out, b) ];
  Alcotest.(check bool) "same output" true (a = b)

let test_unroll_matmul_template_semantics () =
  (* Unrolling the real template must not change its results. *)
  let module MT = Hidet_sched.Matmul_template in
  let m, n, k = (20, 24, 16) in
  let c = MT.compile ~m ~n ~k MT.default_config in
  let unrolled =
    {
      c with
      Hidet_sched.Compiled.kernels = List.map Unroll.kernel c.Hidet_sched.Compiled.kernels;
    }
  in
  let a = Hidet_tensor.Tensor.rand ~seed:1 [ 1; m; k ] in
  let b = Hidet_tensor.Tensor.rand ~seed:2 [ k; n ] in
  let r1 = Hidet_sched.Compiled.run c [ a; b ] in
  let r2 = Hidet_sched.Compiled.run unrolled [ a; b ] in
  Alcotest.(check bool) "template unroll-invariant" true
    (Hidet_tensor.Tensor.allclose r1 r2)

(* --- verifier ------------------------------------------------------------ *)

let make_kernel ?shared ?regs body params =
  Kernel.create ?shared ?regs ~name:"k" ~params ~grid_dim:1 ~block_dim:32 body

let test_verify_ok () =
  let a = Buffer.create "a" [ 32 ] in
  let body = Stmt.store a [ Expr.Thread_idx ] (Expr.float 1.) in
  Alcotest.(check bool) "ok" true (Result.is_ok (Verify.kernel (make_kernel body [ a ])))

let test_verify_unbound_var () =
  let a = Buffer.create "a" [ 32 ] in
  let v = Var.fresh "ghost" in
  let body = Stmt.store a [ Expr.var v ] (Expr.float 1.) in
  Alcotest.(check bool) "unbound" true
    (Result.is_error (Verify.kernel (make_kernel body [ a ])))

let test_verify_undeclared_buffer () =
  let a = Buffer.create "a" [ 32 ] in
  let ghost = Buffer.create "ghost" [ 4 ] in
  let body = Stmt.store a [ Expr.Thread_idx ] (Expr.load ghost [ Expr.int 0 ]) in
  Alcotest.(check bool) "undeclared" true
    (Result.is_error (Verify.kernel (make_kernel body [ a ])))

let test_verify_divergent_sync () =
  let a = Buffer.create "a" [ 32 ] in
  let body =
    Stmt.seq
      [
        Stmt.if_ (Expr.lt Expr.Thread_idx (Expr.int 16)) Stmt.sync;
        Stmt.store a [ Expr.Thread_idx ] (Expr.float 0.);
      ]
  in
  Alcotest.(check bool) "divergent sync rejected" true
    (Result.is_error (Verify.kernel (make_kernel body [ a ])))

let test_verify_uniform_sync_ok () =
  let a = Buffer.create "a" [ 32 ] in
  let i = Var.fresh "i" in
  let body =
    Stmt.for_ i (Expr.int 4)
      (Stmt.seq [ Stmt.sync; Stmt.store a [ Expr.Thread_idx ] (Expr.var i) ])
  in
  Alcotest.(check bool) "uniform sync ok" true
    (Result.is_ok (Verify.kernel (make_kernel body [ a ])))

let test_verify_rank_mismatch () =
  let a = Buffer.create "a" [ 4; 8 ] in
  (* Bypass the Stmt.store arity check to exercise the verifier. *)
  let body = Stmt.Store { buf = a; indices = [ Expr.int 0 ]; value = Expr.float 0. } in
  Alcotest.(check bool) "rank mismatch" true
    (Result.is_error (Verify.kernel (make_kernel body [ a ])))

let mma_stmt a b c ~m ~n ~k =
  Stmt.Mma
    {
      m; n; k;
      a; a_off = [ Expr.int 0; Expr.int 0 ];
      b; b_off = [ Expr.int 0; Expr.int 0 ];
      c; c_off = [ Expr.int 0; Expr.int 0 ];
    }

let test_verify_mma_tile_too_big () =
  (* An 8x8x8 MMA tile cannot fit in 4x4 operands. *)
  let sa = Buffer.create ~scope:Buffer.Shared "sa" [ 4; 4 ] in
  let sb = Buffer.create ~scope:Buffer.Shared "sb" [ 4; 4 ] in
  let sc = Buffer.create ~scope:Buffer.Warp "sc" [ 4; 4 ] in
  let k =
    Kernel.create ~shared:[ sa; sb ] ~warp_bufs:[ sc ] ~name:"mma_big"
      ~params:[] ~grid_dim:1 ~block_dim:32
      (mma_stmt sa sb sc ~m:8 ~n:8 ~k:8)
  in
  Alcotest.(check bool) "tile exceeds dims" true (Result.is_error (Verify.kernel k))

let test_verify_mma_rank1_operand () =
  let sa = Buffer.create ~scope:Buffer.Shared "sa" [ 16 ] in
  let sb = Buffer.create ~scope:Buffer.Shared "sb" [ 4; 4 ] in
  let sc = Buffer.create ~scope:Buffer.Warp "sc" [ 4; 4 ] in
  let k =
    Kernel.create ~shared:[ sa; sb ] ~warp_bufs:[ sc ] ~name:"mma_rank1"
      ~params:[] ~grid_dim:1 ~block_dim:32
      (Stmt.Mma
         {
           m = 4; n = 4; k = 4;
           a = sa; a_off = [ Expr.int 0 ];
           b = sb; b_off = [ Expr.int 0; Expr.int 0 ];
           c = sc; c_off = [ Expr.int 0; Expr.int 0 ];
         })
  in
  Alcotest.(check bool) "rank-1 operand rejected" true
    (Result.is_error (Verify.kernel k))

let test_verify_mma_undeclared_operand () =
  (* The accumulator is not declared as a warp buffer of the kernel. *)
  let sa = Buffer.create ~scope:Buffer.Shared "sa" [ 4; 4 ] in
  let sb = Buffer.create ~scope:Buffer.Shared "sb" [ 4; 4 ] in
  let ghost = Buffer.create ~scope:Buffer.Warp "ghost" [ 4; 4 ] in
  let k =
    Kernel.create ~shared:[ sa; sb ] ~name:"mma_ghost" ~params:[] ~grid_dim:1
      ~block_dim:32
      (mma_stmt sa sb ghost ~m:4 ~n:4 ~k:4)
  in
  Alcotest.(check bool) "undeclared operand rejected" true
    (Result.is_error (Verify.kernel k))

let test_verify_block_too_big () =
  let a = Buffer.create "a" [ 4 ] in
  let k =
    Kernel.create ~name:"big" ~params:[ a ] ~grid_dim:1 ~block_dim:2048
      (Stmt.store a [ Expr.int 0 ] (Expr.float 0.))
  in
  Alcotest.(check bool) "block too big" true (Result.is_error (Verify.kernel k))

(* --- codegen ------------------------------------------------------------- *)

let test_codegen_contains () =
  let a = Buffer.create "A" [ 64; 8 ] in
  let s = Buffer.create ~scope:Buffer.Shared "SmemA" [ 64; 8 ] in
  let i = Var.fresh "i" in
  let body =
    Stmt.seq
      [
        Stmt.for_ ~unroll:true i (Expr.int 4)
          (Stmt.store s
             [ Expr.var i; Expr.Thread_idx ]
             (Expr.load a [ Expr.var i; Expr.Thread_idx ]));
        Stmt.sync;
      ]
  in
  let k =
    Kernel.create ~shared:[ s ] ~name:"copy" ~params:[ a ] ~grid_dim:2
      ~block_dim:8 body
  in
  let src = Cuda_codegen.kernel k in
  let contains sub =
    Alcotest.(check bool) (Printf.sprintf "contains %S" sub) true
      (let rec search i =
         if i + String.length sub > String.length src then false
         else if String.sub src i (String.length sub) = sub then true
         else search (i + 1)
       in
       search 0)
  in
  contains "__global__";
  contains "__shared__ float";
  contains "__syncthreads()";
  contains "#pragma unroll";
  contains "__launch_bounds__(8)"

let () =
  Alcotest.run "hidet_ir"
    [
      ( "expr",
        [
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "identities" `Quick test_identities;
          Alcotest.test_case "bool folding" `Quick test_bool_folding;
          Alcotest.test_case "subst" `Quick test_subst;
          Alcotest.test_case "free vars" `Quick test_free_vars;
          Alcotest.test_case "eval indices" `Quick test_eval_indices;
          Alcotest.test_case "eval intrinsics" `Quick test_eval_float_intrinsics;
        ] );
      ( "simplify",
        [
          QCheck_alcotest.to_alcotest prop_simplify_preserves_eval;
          QCheck_alcotest.to_alcotest prop_simplify_idempotent;
          Alcotest.test_case "stmt simplify" `Quick test_stmt_simplify;
          Alcotest.test_case "let inlining" `Quick test_let_inlining;
        ] );
      ( "unroll",
        [
          Alcotest.test_case "expands marked loops" `Quick test_unroll_expands;
          Alcotest.test_case "threshold" `Quick test_unroll_respects_threshold;
          Alcotest.test_case "keeps unmarked" `Quick test_unroll_keeps_unmarked;
          Alcotest.test_case "preserves semantics" `Quick test_unroll_preserves_semantics;
          Alcotest.test_case "matmul template invariant" `Quick
            test_unroll_matmul_template_semantics;
        ] );
      ( "verify",
        [
          Alcotest.test_case "ok kernel" `Quick test_verify_ok;
          Alcotest.test_case "unbound var" `Quick test_verify_unbound_var;
          Alcotest.test_case "undeclared buffer" `Quick test_verify_undeclared_buffer;
          Alcotest.test_case "divergent sync" `Quick test_verify_divergent_sync;
          Alcotest.test_case "uniform sync" `Quick test_verify_uniform_sync_ok;
          Alcotest.test_case "rank mismatch" `Quick test_verify_rank_mismatch;
          Alcotest.test_case "mma tile too big" `Quick test_verify_mma_tile_too_big;
          Alcotest.test_case "mma rank-1 operand" `Quick test_verify_mma_rank1_operand;
          Alcotest.test_case "mma undeclared operand" `Quick
            test_verify_mma_undeclared_operand;
          Alcotest.test_case "block too big" `Quick test_verify_block_too_big;
        ] );
      ( "codegen",
        [ Alcotest.test_case "cuda text" `Quick test_codegen_contains ] );
    ]
