(* Emits CUDA C for the golden-file tests (test/golden/*.cu).

   Run as a standalone executable — one compile per invocation — because
   generated buffer names embed process-global ids: a fresh process makes
   the output deterministic, a shared test process would not.

   To refresh the goldens after an intentional codegen change:
     dune build @golden-regen   (or: dune promote after a failing diff) *)

module MT = Hidet_sched.Matmul_template
module C = Hidet_sched.Compiled
module G = Hidet_graph.Graph
module HE = Hidet.Hidet_engine
module Plan = Hidet_runtime.Plan

let dev = Hidet_gpu.Device.rtx3090

(* The quickstart example's matmul: 123x77x45 is divisible by none of the
   tile sizes, so the source exercises predicated partial tiles. *)
let matmul () =
  print_string (C.cuda_source (MT.compile ~m:123 ~n:77 ~k:45 MT.default_config))

(* The conv_fusion example's Conv2d-BN-ReLU as a single implicit-GEMM
   kernel: im2col prologue + matmul anchor + reshape/scale-shift/relu
   epilogues. *)
let fused_conv () =
  let n, c, h, oc, kernel, stride, padding = (1, 8, 14, 16, 3, 1, 1) in
  let g = G.create () in
  G.name g "conv_bn_relu";
  let x = G.input g [ n; c; h; h ] in
  let w = G.constant_rand g ~seed:1 [ oc; c; kernel; kernel ] in
  let scale = G.constant_rand g ~seed:2 [ oc ] in
  let shift = G.constant_rand g ~seed:3 [ oc ] in
  let conv = G.conv2d g x w ~stride ~padding in
  let out = G.relu g (G.scale_shift g conv ~scale ~shift) in
  G.set_outputs g [ out ];
  let plan, _ = HE.compile_plan dev g in
  print_string (Plan.cuda_source plan)

let () =
  match Sys.argv with
  | [| _; "matmul" |] -> matmul ()
  | [| _; "fused_conv" |] -> fused_conv ()
  | _ ->
    prerr_endline "usage: golden_gen (matmul|fused_conv)";
    exit 2
