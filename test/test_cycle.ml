(* Tests for the cycle-approximate fidelity model: coalescing segments and
   bank-conflict degrees, the static-vs-traced exact-match property on
   affine kernels, the LRU cache model, warp-scheduler monotonicity, the
   opt-in contract (analytic estimates unchanged), the domain-safe space
   memo and Traffic.block_reuse edge cases. *)

module Access = Hidet_cycle.Access
module Cache = Hidet_cycle.Cache_model
module WS = Hidet_cycle.Warp_sched
module Fid = Hidet_cycle.Fidelity
module PM = Hidet_gpu.Perf_model
module Traffic = Hidet_gpu.Traffic
module MT = Hidet_sched.Matmul_template
module Space = Hidet_sched.Space
module Buffer = Hidet_ir.Buffer
module Var = Hidet_ir.Var
module Expr = Hidet_ir.Expr
module Stmt = Hidet_ir.Stmt
module Kernel = Hidet_ir.Kernel

let dev = Hidet_gpu.Device.rtx3090

(* --- coalescing and bank conflicts ---------------------------------------- *)

let test_segments () =
  let seg = Access.segments ~line:128 in
  (* 32 consecutive f32 lanes: one 128-byte segment. *)
  Alcotest.(check int) "unit stride" 1
    (seg (List.init 32 (fun l -> 4 * l)));
  (* stride 2: 256 bytes -> 2 segments. *)
  Alcotest.(check int) "stride 2" 2
    (seg (List.init 32 (fun l -> 8 * l)));
  (* stride 32 floats = one line per lane. *)
  Alcotest.(check int) "fully strided" 32
    (seg (List.init 32 (fun l -> 128 * l)));
  (* broadcast: all lanes on one address. *)
  Alcotest.(check int) "broadcast" 1 (seg (List.init 32 (fun _ -> 4)));
  (* translation invariance: shifting all addresses keeps the count. *)
  Alcotest.(check int) "translation invariant" 2
    (seg (List.init 32 (fun l -> 1_000_000 + (8 * l))))

let test_conflict_degree () =
  let cd = Access.conflict_degree in
  Alcotest.(check int) "unit stride free" 1
    (cd (List.init 32 (fun l -> 4 * l)));
  (* stride 32 words: every lane hits bank 0 with a distinct word. *)
  Alcotest.(check int) "32-way" 32
    (cd (List.init 32 (fun l -> 128 * l)));
  (* stride 2 words: 2 lanes per bank. *)
  Alcotest.(check int) "2-way" 2 (cd (List.init 32 (fun l -> 8 * l)));
  (* broadcast of one word is conflict-free. *)
  Alcotest.(check int) "broadcast free" 1 (cd (List.init 32 (fun _ -> 64)))

(* --- static vs traced: exact match on affine kernels ---------------------- *)

(* A generated affine kernel: optional thread guard, a loop of [ext]
   iterations, and a list of access sites with per-lane index
   a*tid + b + c*i (affine in the thread id, loop-uniform offsets). *)
type spec = { glb : bool; store : bool; a : int; b : int; c : int }

let build_kernel (ext, guard, specs) =
  let g = Buffer.create "g" [ 65536 ] in
  let s = Buffer.create ~scope:Buffer.Shared "s" [ 2048 ] in
  let i = Var.fresh "i" in
  let open Expr in
  let idx sp =
    add
      (add (mul (int sp.a) Thread_idx) (int sp.b))
      (mul (int sp.c) (var i))
  in
  let site sp =
    let buf = if sp.glb then g else s in
    (* shared indices stay inside the 2048-elt buffer (mod is the identity
       on these ranges, so the pattern stays loop-uniform) *)
    let e = if sp.glb then idx sp else modulo (idx sp) (int 2048) in
    if sp.store then Stmt.store buf [ e ] (float 1.0)
    else Stmt.store buf [ e ] (load buf [ e ])
  in
  let body = Stmt.seq (List.map site specs) in
  let body = if guard then Stmt.if_ (lt Thread_idx (int 16)) body else body in
  let body = Stmt.for_ i (int ext) body in
  Kernel.create ~name:"affine" ~params:[ g ] ~grid_dim:4 ~block_dim:32 body

let spec_gen =
  let open QCheck.Gen in
  let* glb = bool in
  let* store = bool in
  let* a = oneofl [ 0; 1; 2; 4; 32 ] in
  let* b = oneofl [ 0; 1; 64 ] in
  let* c = oneofl [ 0; 32; 64 ] in
  return { glb; store; a; b; c }

let kernel_gen =
  let open QCheck.Gen in
  let* ext = int_range 1 4 in
  let* guard = bool in
  let* specs = list_size (int_range 1 4) spec_gen in
  return (ext, guard, specs)

let show_case (ext, guard, specs) =
  Printf.sprintf "ext=%d guard=%b [%s]" ext guard
    (String.concat "; "
       (List.map
          (fun sp ->
            Printf.sprintf "%s%s a=%d b=%d c=%d"
              (if sp.glb then "g" else "s")
              (if sp.store then "!" else "?")
              sp.a sp.b sp.c)
          specs))

let prop_static_matches_trace =
  QCheck.Test.make ~name:"static = traced on affine kernels" ~count:300
    (QCheck.make ~print:show_case kernel_gen)
    (fun case ->
      let k = build_kernel case in
      let st = Access.static_sites k in
      let tr = Access.traced_sites k in
      List.length st.Access.sites = List.length tr.Access.t_sites
      && List.for_all2
           (fun (s : Access.site) (t : Access.site) ->
             (* every generated site is affine, so the static walker must
                not have fallen back... *)
             s.Access.static
             (* ...and its counts must match the executed trace exactly. *)
             && s.Access.kind = t.Access.kind
             && s.Access.weight = t.Access.weight
             && s.Access.transactions = t.Access.transactions
             && s.Access.conflict = t.Access.conflict)
           st.Access.sites tr.Access.t_sites)

let test_zero_trip_alignment () =
  (* A loop that never runs still contributes (zero-weight) sites in the
     same structural order from both walkers. *)
  let k = build_kernel (1, false, [ { glb = true; store = false; a = 1; b = 0; c = 0 } ]) in
  let g = List.hd k.Kernel.params in
  let j = Var.fresh "j" in
  (* Stmt.for_ folds extent-0 loops away; build the node directly so the
     walkers see a genuine zero-trip loop. *)
  let dead =
    Stmt.For
      {
        var = j;
        extent = Expr.int 0;
        unroll = false;
        body = Stmt.store g [ Expr.var j ] (Expr.float 0.);
      }
  in
  let k = Kernel.map_body (fun b -> Stmt.seq [ dead; b ]) k in
  let st = Access.static_sites k in
  let tr = Access.traced_sites k in
  Alcotest.(check int) "site counts align" (List.length st.Access.sites)
    (List.length tr.Access.t_sites);
  let dead_site = List.hd st.Access.sites in
  Alcotest.(check (float 0.)) "zero-trip weight" 0. dead_site.Access.weight

(* --- cache model ---------------------------------------------------------- *)

let test_cache_lru () =
  let g = { Cache.size = 2 * 128; line = 128; ways = 2 } in
  (* one set, 2 ways: [0;1;0;1] all fit; adding 2 evicts LRU (0). *)
  let s = Cache.simulate g [| 0; 1; 0; 1; 2; 0 |] in
  Alcotest.(check int) "accesses" 6 s.Cache.accesses;
  (* hits: second 0, second 1; 2 misses; final 0 was evicted by 2. *)
  Alcotest.(check int) "hits" 2 s.Cache.hits;
  let s', misses = Cache.simulate_through g [| 0; 1; 0; 1; 2; 0 |] in
  Alcotest.(check int) "through = simulate" s.Cache.hits s'.Cache.hits;
  Alcotest.(check (list int)) "miss stream" [ 0; 1; 2; 0 ]
    (Array.to_list misses);
  (* a stream that fits is all hits after the cold pass *)
  let big = { Cache.size = 64 * 128; line = 128; ways = 4 } in
  let stream = Array.init 64 (fun i -> i mod 8) in
  let s2 = Cache.simulate big stream in
  Alcotest.(check int) "fits: only cold misses" (64 - 8) s2.Cache.hits

(* --- warp scheduler ------------------------------------------------------- *)

let base_work =
  {
    WS.iters = 8;
    mem_txn_per_iter = 4.;
    dram_frac = 0.5;
    l2_frac = 0.25;
    tail_mem_txn = 4.;
    smem_cycles_per_iter = 16.;
    compute_cycles_per_iter = 64.;
    tail_compute_cycles = 32.;
    sync_cycles_per_iter = 8.;
    stages = 1;
    warps = 8;
    mem_issue_cycles = 2.;
    dram_service_cycles = 19.;
    l2_service_cycles = 6.;
    l1_latency = 30.;
    l2_latency = 200.;
    dram_latency = 400.;
  }

let test_warp_sched_monotone () =
  let c w = (WS.simulate w).WS.cycles in
  (* Deeper pipelines can only help: prefetch gating is relaxed. *)
  Alcotest.(check bool) "stages hide latency" true
    (c { base_work with WS.stages = 3 } <= c base_work);
  (* More resident warps means more total work on the SM: completion of
     the whole resident set cannot get faster. *)
  Alcotest.(check bool) "more warps, more cycles" true
    (c { base_work with WS.warps = 16 } >= c base_work);
  (* More warps overlap better: 2x the warps must cost < 2x the cycles
     while there is latency left to hide. *)
  Alcotest.(check bool) "latency hiding" true
    (c { base_work with WS.warps = 16 } < 2. *. c base_work);
  (* Positive, finite, deterministic. *)
  let x = c base_work in
  Alcotest.(check bool) "finite" true (Float.is_finite x && x > 0.);
  Alcotest.(check (float 0.)) "deterministic" x (c base_work)

(* --- opt-in contract ------------------------------------------------------ *)

let template_kernels () =
  (MT.compile ~m:256 ~n:256 ~k:256 MT.default_config).Hidet_sched.Compiled.kernels

let test_analytic_unchanged () =
  (* With analytic fidelity (explicit or default), estimates are exactly
     the analytic model's — the cycle subsystem must not perturb them. *)
  List.iter
    (fun k ->
      let base = PM.kernel dev k in
      Alcotest.(check bool) "explicit analytic" true
        (PM.estimate ~fidelity:`Analytic dev k = base);
      Alcotest.(check bool) "default fidelity" true
        (PM.estimate dev k = base))
    (template_kernels ());
  Alcotest.(check string) "default is analytic" "analytic"
    (PM.fidelity_to_string (PM.default_fidelity ()))

let test_cycle_estimate_sane () =
  List.iter
    (fun k ->
      let e, x = Fid.kernel dev k in
      Alcotest.(check bool) "feasible" true e.PM.feasible;
      Alcotest.(check bool) "finite positive latency" true
        (Float.is_finite e.PM.latency && e.PM.latency > 0.);
      Alcotest.(check bool) "registered hook agrees" true
        (PM.estimate ~fidelity:`Cycle dev k = e);
      Alcotest.(check bool) "coalescing derived" true
        (x.Fid.txn_per_access >= 1.);
      Alcotest.(check bool) "conflicts derived" true
        (x.Fid.conflict_factor >= 1.);
      Alcotest.(check bool) "hit rates in range" true
        (x.Fid.l1_hit >= 0. && x.Fid.l1_hit <= 1. && x.Fid.l2_hit >= 0.
       && x.Fid.l2_hit <= 1.);
      Alcotest.(check bool) "main loop analyzed statically" true
        (x.Fid.n_static > 0))
    (template_kernels ())

let test_fidelity_round_trip () =
  List.iter
    (fun f ->
      Alcotest.(check bool) "round trip" true
        (PM.fidelity_of_string (PM.fidelity_to_string f) = Some f))
    [ `Analytic; `Cycle ];
  Alcotest.(check bool) "unknown rejected" true
    (PM.fidelity_of_string "bogus" = None);
  Alcotest.(check string) "analytic keys unchanged" ""
    (PM.fidelity_cache_suffix `Analytic);
  Alcotest.(check string) "cycle keys distinct" "#cycle"
    (PM.fidelity_cache_suffix `Cycle)

(* --- domain-safe space memo ----------------------------------------------- *)

let test_space_concurrent_forcing () =
  (* Four domains race the first forcing; all must get the same (physically
     equal) list. Before the memo was domain-safe this raised
     Lazy.Undefined or CamlinternalLazy.Undefined under contention. *)
  let domains =
    Array.init 4 (fun _ -> Domain.spawn (fun () -> Space.matmul ()))
  in
  let results = Array.map Domain.join domains in
  let first = results.(0) in
  Alcotest.(check bool) "non-empty" true (List.length first > 0);
  Array.iter
    (fun r -> Alcotest.(check bool) "physically equal" true (r == first))
    results;
  Alcotest.(check bool) "later calls hit the memo" true
    (Space.matmul () == first)

(* --- Traffic.block_reuse edge cases --------------------------------------- *)

let test_block_reuse_edges () =
  let k = List.hd (template_kernels ()) in
  (* window larger than the grid: still well-defined and within [1, w]. *)
  let w_big = 10 * k.Kernel.grid_dim in
  let r = Traffic.block_reuse ~window:w_big k in
  Alcotest.(check bool) "window > grid in range" true
    (r >= 1. && r <= float_of_int w_big);
  (* single-block grid: no cross-block sharing, reuse is exactly 1. *)
  let k1 = MT.compile ~m:64 ~n:64 ~k:64 MT.default_config in
  let single =
    List.find (fun k -> k.Kernel.grid_dim = 1)
      k1.Hidet_sched.Compiled.kernels
  in
  Alcotest.(check (float 1e-9)) "single block" 1.
    (Traffic.block_reuse ~window:8 single);
  (* monotone non-decreasing in the window: a larger window can only add
     sharing partners. *)
  let prev = ref 0. in
  for w = 1 to 12 do
    let r = Traffic.block_reuse ~window:w k in
    Alcotest.(check bool)
      (Printf.sprintf "monotone at window %d" w)
      true (r >= !prev);
    prev := r
  done

let () =
  Alcotest.run "cycle"
    [
      ( "access",
        [
          Alcotest.test_case "coalescing segments" `Quick test_segments;
          Alcotest.test_case "bank conflicts" `Quick test_conflict_degree;
          QCheck_alcotest.to_alcotest prop_static_matches_trace;
          Alcotest.test_case "zero-trip alignment" `Quick
            test_zero_trip_alignment;
        ] );
      ("cache", [ Alcotest.test_case "set-assoc LRU" `Quick test_cache_lru ]);
      ( "warp scheduler",
        [ Alcotest.test_case "monotonicity" `Quick test_warp_sched_monotone ] );
      ( "fidelity",
        [
          Alcotest.test_case "analytic unchanged" `Quick
            test_analytic_unchanged;
          Alcotest.test_case "cycle estimate sane" `Quick
            test_cycle_estimate_sane;
          Alcotest.test_case "mode round trip" `Quick test_fidelity_round_trip;
        ] );
      ( "space",
        [
          Alcotest.test_case "concurrent forcing" `Quick
            test_space_concurrent_forcing;
        ] );
      ( "block reuse",
        [ Alcotest.test_case "edge cases" `Quick test_block_reuse_edges ] );
    ]
