(* Tests for multi-device sharded execution: the cluster cost model,
   partition-then-gather identity under every bit-exact strategy, the
   ULP-bounded all-reduce epilogue of row-parallel tensor parallelism,
   pipeline virtual-time schedule conservation, per-device schedule-cache
   isolation, plus the Passes.rebatch edge cases and the
   Space.sample_matmul clamping regression the shard work depends on. *)

module Shard = Hidet_shard.Shard
module BS = Hidet_shard.Batch_split
module Cluster = Hidet_gpu.Cluster
module Device = Hidet_gpu.Device
module G = Hidet_graph.Graph
module Passes = Hidet_graph.Passes
module T = Hidet_tensor.Tensor
module SC = Hidet_sched.Schedule_cache
module Space = Hidet_sched.Space

let rtx = Device.rtx3090
let a100 = Device.a100

(* A small batch-splittable MLP: input [batch; rows; dim], [layers] of
   matmul+relu against rank-2 weights. Splittable by every strategy
   (leading batch dim, rank-2 leaf weights, contiguous stages). *)
let mlp_graph ?(rows = 3) ?(dim = 16) ?(layers = 2) ~batch ~seed () =
  let g = G.create () in
  G.name g (Printf.sprintf "qmlp_b%d_r%d_d%d_l%d" batch rows dim layers);
  let x = G.input g [ batch; rows; dim ] in
  let h = ref x in
  for i = 1 to layers do
    let w = G.constant_rand g ~seed:(seed + i) [ dim; dim ] in
    h := G.relu g (G.matmul g !h w)
  done;
  G.set_outputs g [ !h ];
  g

let rand_inputs ~seed g =
  List.mapi
    (fun i id -> T.rand ~seed:(seed + (31 * i)) (G.node_shape g id))
    (G.input_ids g)

(* --- collective cost model -------------------------------------------------- *)

let test_cluster_costs () =
  let cl = Cluster.homogeneous ~n:4 rtx in
  let { Cluster.latency = l; bandwidth = bw } = cl.Cluster.link in
  let bytes = 1e6 in
  Alcotest.(check (float 1e-12))
    "p2p = alpha + beta"
    (l +. (bytes /. bw))
    (Cluster.p2p_time cl ~bytes);
  Alcotest.(check (float 1e-12))
    "ring all-reduce"
    ((2. *. 3. *. l) +. (2. *. 3. /. 4. *. bytes /. bw))
    (Cluster.all_reduce_time cl ~bytes);
  Alcotest.(check (float 1e-12))
    "ring all-gather"
    ((3. *. l) +. (3. /. 4. *. bytes /. bw))
    (Cluster.all_gather_time cl ~bytes);
  (* A single device pays nothing for any collective. *)
  let solo = Cluster.homogeneous ~n:1 rtx in
  Alcotest.(check (float 0.)) "solo all-reduce free" 0.
    (Cluster.all_reduce_time solo ~bytes);
  Alcotest.(check (float 0.)) "solo all-gather free" 0.
    (Cluster.all_gather_time solo ~bytes);
  (match Cluster.homogeneous ~n:0 rtx with
  | _ -> Alcotest.fail "n = 0 must be rejected"
  | exception Invalid_argument _ -> ());
  match Cluster.of_devices [] with
  | _ -> Alcotest.fail "empty device list must be rejected"
  | exception Invalid_argument _ -> ()

(* --- split-size arithmetic -------------------------------------------------- *)

let test_split_sizes () =
  let sizes ~rows ~parts = Array.to_list (BS.split_sizes ~rows ~parts) in
  Alcotest.(check (list int)) "even" [ 4; 4 ] (sizes ~rows:8 ~parts:2);
  Alcotest.(check (list int))
    "ceil-first" [ 3; 2; 2 ]
    (sizes ~rows:7 ~parts:3);
  Alcotest.(check (list int)) "one row each" [ 1; 1; 1 ]
    (sizes ~rows:3 ~parts:3);
  List.iter
    (fun (rows, parts) ->
      match BS.split_sizes ~rows ~parts with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [ (2, 3); (5, 0); (4, -1) ];
  (* Sum is always conserved. *)
  for rows = 1 to 12 do
    for parts = 1 to rows do
      Alcotest.(check int)
        (Printf.sprintf "sum %d/%d" rows parts)
        rows
        (List.fold_left ( + ) 0 (sizes ~rows ~parts))
    done
  done

(* --- partition-then-gather identity (bit-exact strategies) ------------------ *)

(* Random small MLPs x random device counts: every strategy that preserves
   reduction extents must reproduce the single-device baseline bit for
   bit ([Shard.verify] compares via [Int64.bits_of_float]). *)
let bit_exact_arb =
  let gen =
    let open QCheck.Gen in
    let* batch = int_range 2 6 in
    let* devices = int_range 2 (min 4 batch) in
    let* rows = int_range 2 4 in
    let* dim = oneofl [ 8; 16 ] in
    let* layers = int_range 1 3 in
    let* strat =
      oneofl
        [ Shard.Data; Shard.Tensor Shard.Gather;
          Shard.Pipeline { microbatches = 2 } ]
    in
    let* seed = int_range 0 10_000 in
    return (batch, devices, rows, dim, layers, strat, seed)
  in
  QCheck.make gen ~print:(fun (b, d, r, dm, l, s, seed) ->
      Printf.sprintf "batch=%d devices=%d rows=%d dim=%d layers=%d %s seed=%d"
        b d r dm l (Shard.strategy_to_string s) seed)

let prop_bit_exact_identity =
  QCheck.Test.make ~name:"bit-exact strategies match baseline bitwise"
    ~count:25 bit_exact_arb
    (fun (batch, devices, rows, dim, layers, strat, seed) ->
      let g = mlp_graph ~rows ~dim ~layers ~batch ~seed () in
      let cl = Cluster.homogeneous ~n:devices rtx in
      match Shard.plan ~strategy:strat cl g with
      | exception Invalid_argument _ -> true (* not partitionable: skip *)
      | shard -> (
        if Shard.ulp_budget shard <> 0 then
          QCheck.Test.fail_report "bit-exact strategy has nonzero ulp budget";
        match Shard.verify shard (rand_inputs ~seed:(seed + 7) g) with
        | Ok _ -> true
        | Error msg -> QCheck.Test.fail_report msg))

(* The gather really is partition-then-concat: outputs of a data-parallel
   run must equal slicing the baseline output along the batch axis. *)
let test_data_split_is_row_partition () =
  let g = mlp_graph ~batch:5 ~seed:3 () in
  let cl = Cluster.homogeneous ~n:2 rtx in
  let shard = Shard.plan ~strategy:Shard.Data cl g in
  let inputs = rand_inputs ~seed:11 g in
  let sharded = Shard.run1 shard inputs in
  (* 5 rows over 2 devices: ceil-first gives 3 + 2. *)
  Alcotest.(check string)
    "describe records the split" "data[rows 3+2 | 2x rtx3090]"
    (Shard.describe shard);
  let baseline =
    match
      Hidet_runtime.Plan.run (Shard.baseline shard)
        (List.combine (G.input_ids g) inputs)
    with
    | [ o ] -> o
    | _ -> Alcotest.fail "one output expected"
  in
  Alcotest.(check bool) "bitwise equal" true
    (compare (T.data sharded) (T.data baseline) = 0)

(* --- all-reduce epilogue (tensor-reduce) ------------------------------------ *)

(* Row-parallel tensor parallelism regroups the k-sum into per-device
   partial sums: equal within the documented ULP budget, and the budget
   must actually be positive (the strategy is not claimed bit-exact). *)
let reduce_arb =
  let gen =
    let open QCheck.Gen in
    let* batch = int_range 1 3 in
    let* m = oneofl [ 2; 3; 5 ] in
    let* k = oneofl [ 16; 32; 64 ] in
    let* n = oneofl [ 8; 16 ] in
    let* devices = int_range 2 4 in
    let* seed = int_range 0 10_000 in
    return (batch, m, k, n, devices, seed)
  in
  QCheck.make gen ~print:(fun (b, m, k, n, d, s) ->
      Printf.sprintf "matmul b=%d %dx%dx%d devices=%d seed=%d" b m k n d s)

let prop_all_reduce_ulp =
  QCheck.Test.make ~name:"all-reduce epilogue within the ULP budget" ~count:25
    reduce_arb (fun (batch, m, k, n, devices, seed) ->
      let g = G.create () in
      G.name g "qmm";
      let a = G.input g [ batch; m; k ] in
      let w = G.constant_rand g ~seed [ k; n ] in
      G.set_outputs g [ G.matmul g a w ];
      let cl = Cluster.homogeneous ~n:devices rtx in
      match Shard.plan ~strategy:(Shard.Tensor Shard.Reduce) cl g with
      | exception Invalid_argument _ -> true
      | shard -> (
        if Shard.ulp_budget shard <= 0 then
          QCheck.Test.fail_report "tensor-reduce must carry a ULP budget";
        match Shard.verify shard (rand_inputs ~seed:(seed + 13) g) with
        | Ok _ -> true
        | Error msg -> QCheck.Test.fail_report msg))

(* --- pipeline schedule conservation ----------------------------------------- *)

let pipeline_arb =
  let gen =
    let open QCheck.Gen in
    let* stages = int_range 1 4 in
    let* micros = int_range 1 6 in
    let* lat_seed = int_range 0 1_000_000 in
    return (stages, micros, lat_seed)
  in
  QCheck.make gen ~print:(fun (s, m, seed) ->
      Printf.sprintf "stages=%d micros=%d seed=%d" s m seed)

let prop_pipeline_conserves =
  QCheck.Test.make
    ~name:"pipeline schedule: every microbatch once, no device overlap"
    ~count:200 pipeline_arb (fun (stages, micros, lat_seed) ->
      let rs = Random.State.make [| lat_seed |] in
      let lat = Array.init stages (fun _ ->
          Array.init micros (fun _ -> 1e-6 +. Random.State.float rs 1e-4))
      in
      let xf = Array.init stages (fun _ ->
          Array.init micros (fun _ -> Random.State.float rs 1e-5))
      in
      let sched, makespan =
        Shard.pipeline_schedule
          ~latency:(fun ~stage ~micro -> lat.(stage).(micro))
          ~xfer:(fun ~stage ~micro -> xf.(stage).(micro))
          ~stages ~micros
      in
      (* Conservation: exactly one residence per (stage, micro). *)
      if List.length sched <> stages * micros then
        QCheck.Test.fail_report "wrong number of stage executions";
      let seen = Hashtbl.create 16 in
      List.iter
        (fun (e : Shard.stage_exec) ->
          let key = (e.Shard.stage, e.Shard.micro) in
          if Hashtbl.mem seen key then
            QCheck.Test.fail_report "microbatch dispatched twice on a stage";
          Hashtbl.replace seen key e)
        sched;
      for s = 0 to stages - 1 do
        for m = 0 to micros - 1 do
          if not (Hashtbl.mem seen (s, m)) then
            QCheck.Test.fail_report "microbatch never dispatched"
        done
      done;
      List.iter
        (fun (e : Shard.stage_exec) ->
          (* Stage s lives on device s; residencies are well-formed. *)
          if e.Shard.device <> e.Shard.stage then
            QCheck.Test.fail_report "stage not pinned to its device";
          if not (e.Shard.finish >= e.Shard.start && e.Shard.start >= 0.) then
            QCheck.Test.fail_report "negative or inverted residency";
          (* A microbatch cannot enter a stage before the previous stage
             (plus the inter-device transfer) has produced it. *)
          if e.Shard.stage > 0 then begin
            let up = Hashtbl.find seen (e.Shard.stage - 1, e.Shard.micro) in
            if
              e.Shard.start
              < up.Shard.finish
                +. xf.(e.Shard.stage).(e.Shard.micro)
                -. 1e-15
            then QCheck.Test.fail_report "stage starts before its input"
          end)
        sched;
      (* No overlap on one device: per stage, residencies are disjoint. *)
      for s = 0 to stages - 1 do
        let on_dev =
          List.sort
            (fun (a : Shard.stage_exec) b -> compare a.Shard.start b.Shard.start)
            (List.filter (fun (e : Shard.stage_exec) -> e.Shard.stage = s) sched)
        in
        ignore
          (List.fold_left
             (fun prev (e : Shard.stage_exec) ->
               if e.Shard.start < prev -. 1e-15 then
                 QCheck.Test.fail_report "two microbatches overlap on a device";
               e.Shard.finish)
             0. on_dev)
      done;
      (* Makespan is the last finish. *)
      let max_finish =
        List.fold_left
          (fun acc (e : Shard.stage_exec) -> Float.max acc e.Shard.finish)
          0. sched
      in
      abs_float (makespan -. max_finish) < 1e-15)

(* End to end: a pipeline-sharded plan conserves requests — each batch row
   of the output comes out exactly once and equals the baseline's row. *)
let test_pipeline_end_to_end () =
  let g = mlp_graph ~batch:6 ~layers:3 ~seed:17 () in
  let cl = Cluster.homogeneous ~n:3 rtx in
  let shard =
    Shard.plan ~strategy:(Shard.Pipeline { microbatches = 3 }) cl g
  in
  Alcotest.(check int) "schedule has stages x micros residencies" 9
    (List.length (Shard.schedule shard));
  match Shard.verify shard (rand_inputs ~seed:23 g) with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

(* --- per-device schedule caches --------------------------------------------- *)

let test_cache_isolation () =
  SC.clear ();
  let g = mlp_graph ~batch:4 ~seed:41 () in
  ignore (Shard.plan ~strategy:Shard.Data (Cluster.homogeneous ~n:2 rtx) g);
  let keys_r = SC.keys_for_device rtx.Device.name in
  Alcotest.(check bool) "rtx3090 tuned something" true (keys_r <> []);
  Alcotest.(check (list string)) "a100 untouched" []
    (SC.keys_for_device a100.Device.name);
  (* Homogeneous devices share one cache partition: entries = rtx keys. *)
  Alcotest.(check int) "homogeneous cluster shares entries"
    (List.length keys_r) (SC.size ());
  (* A heterogeneous cluster tunes the a100 fragments separately; the
     rtx3090 partition is reused, never overwritten or leaked into. *)
  ignore
    (Shard.plan ~strategy:Shard.Data (Cluster.of_devices [ rtx; a100 ]) g);
  let keys_r' = SC.keys_for_device rtx.Device.name in
  let keys_a = SC.keys_for_device a100.Device.name in
  Alcotest.(check bool) "a100 now has its own entries" true (keys_a <> []);
  Alcotest.(check bool) "rtx3090 entries preserved" true
    (List.for_all (fun k -> List.mem k keys_r') keys_r);
  Alcotest.(check int) "partitions are disjoint: sizes add up"
    (List.length keys_r' + List.length keys_a)
    (SC.size ())

(* --- Passes.rebatch edge cases ---------------------------------------------- *)

let shapes g = List.map (fun (n : G.node) -> n.G.shape) (G.nodes g)

let test_rebatch_edges () =
  let g1 = mlp_graph ~batch:1 ~seed:51 () in
  (* batch 1 -> 1 is the identity on shapes. *)
  Alcotest.(check (list (list int)))
    "rebatch 1 is identity" (shapes g1)
    (shapes (Passes.rebatch g1 1));
  (* Round trip through a larger batch restores every shape. *)
  Alcotest.(check (list (list int)))
    "rebatch up then down round-trips" (shapes g1)
    (shapes (Passes.rebatch (Passes.rebatch g1 6) 1));
  (* Rebatch composes: (1 -> 2 -> 6) = (1 -> 6). *)
  Alcotest.(check (list (list int)))
    "rebatch composes"
    (shapes (Passes.rebatch g1 6))
    (shapes (Passes.rebatch (Passes.rebatch g1 2) 6));
  (* A second input whose leading dim the old batch does not divide is
     rejected rather than silently mis-scaled. *)
  let bad = G.create () in
  let x = G.input bad [ 2; 8 ] in
  let y = G.input bad [ 3; 8 ] in
  G.set_outputs bad [ G.concat bad [ x; y ] ~axis:0 ];
  (match Passes.rebatch bad 4 with
  | _ -> Alcotest.fail "non-dividing leading dim must be rejected"
  | exception Invalid_argument _ -> ());
  match Passes.rebatch g1 0 with
  | _ -> Alcotest.fail "batch 0 must be rejected"
  | exception Invalid_argument _ -> ()

(* Rebatch-then-split composition: deriving a serving bucket via rebatch
   and then sharding it behaves exactly like sharding a natively-built
   graph of that batch. *)
let test_rebatch_then_split () =
  let g4 = Passes.rebatch (mlp_graph ~batch:1 ~seed:61 ()) 4 in
  let native = mlp_graph ~batch:4 ~seed:61 () in
  Alcotest.(check (list (list int)))
    "rebatched graph matches native shapes" (shapes native) (shapes g4);
  let cl = Cluster.homogeneous ~n:2 rtx in
  let shard = Shard.plan ~strategy:Shard.Data cl g4 in
  Alcotest.(check string)
    "split of the rebatched bucket" "data[rows 2+2 | 2x rtx3090]"
    (Shard.describe shard);
  match Shard.verify shard (rand_inputs ~seed:67 g4) with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

(* --- Space.sample_matmul clamping regression -------------------------------- *)

let test_sample_matmul_clamps () =
  let n = Space.size () in
  let distinct cfgs =
    List.length (List.sort_uniq compare cfgs) = List.length cfgs
  in
  let full = Space.sample_matmul (Random.State.make [| 42 |]) n in
  Alcotest.(check int) "count = size returns the whole space" n
    (List.length full);
  Alcotest.(check bool) "whole space distinct" true (distinct full);
  (* Regression: count at/beyond/below the space boundary used to raise
     (Array.sub with a negative length); now it clamps. *)
  Alcotest.(check int) "count > size clamps" n
    (List.length (Space.sample_matmul (Random.State.make [| 42 |]) (n + 17)));
  Alcotest.(check int) "count 0 is empty" 0
    (List.length (Space.sample_matmul (Random.State.make [| 1 |]) 0));
  Alcotest.(check int) "negative count is empty" 0
    (List.length (Space.sample_matmul (Random.State.make [| 1 |]) (-3)));
  let near = Space.sample_matmul (Random.State.make [| 7 |]) (n - 1) in
  Alcotest.(check int) "count = size - 1" (n - 1) (List.length near);
  Alcotest.(check bool) "near-boundary draws distinct" true (distinct near);
  (* Deterministic given the state. *)
  Alcotest.(check bool) "same seed, same sample" true
    (Space.sample_matmul (Random.State.make [| 9 |]) 25
    = Space.sample_matmul (Random.State.make [| 9 |]) 25)

(* --- strategy parsing -------------------------------------------------------- *)

let test_strategy_strings () =
  let round s = Option.map Shard.strategy_to_string (Shard.strategy_of_string s) in
  Alcotest.(check (option string)) "data" (Some "data") (round "data");
  Alcotest.(check (option string)) "tensor" (Some "tensor-gather")
    (round "tensor");
  Alcotest.(check (option string)) "tensor-reduce" (Some "tensor-reduce")
    (round "tensor-reduce");
  Alcotest.(check (option string)) "pipeline" (Some "pipeline:4")
    (round "pipeline");
  Alcotest.(check (option string)) "unknown" None (round "model-parallel");
  Alcotest.(check bool) "bit-exactness per strategy" true
    (Shard.bit_exact Shard.Data
    && Shard.bit_exact (Shard.Tensor Shard.Gather)
    && (not (Shard.bit_exact (Shard.Tensor Shard.Reduce)))
    && Shard.bit_exact (Shard.Pipeline { microbatches = 4 }))

let () =
  Alcotest.run "shard"
    [
      ( "cluster",
        [
          Alcotest.test_case "collective cost model" `Quick test_cluster_costs;
          Alcotest.test_case "split sizes" `Quick test_split_sizes;
        ] );
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_bit_exact_identity;
          Alcotest.test_case "data split is a row partition" `Quick
            test_data_split_is_row_partition;
          QCheck_alcotest.to_alcotest prop_all_reduce_ulp;
        ] );
      ( "pipeline",
        [
          QCheck_alcotest.to_alcotest prop_pipeline_conserves;
          Alcotest.test_case "pipeline end to end" `Quick
            test_pipeline_end_to_end;
        ] );
      ( "cache",
        [
          Alcotest.test_case "per-device cache isolation" `Quick
            test_cache_isolation;
        ] );
      ( "rebatch",
        [
          Alcotest.test_case "edge cases" `Quick test_rebatch_edges;
          Alcotest.test_case "rebatch then split" `Quick
            test_rebatch_then_split;
        ] );
      ( "space",
        [
          Alcotest.test_case "sample_matmul clamps" `Quick
            test_sample_matmul_clamps;
        ] );
      ( "strategy",
        [ Alcotest.test_case "string round-trip" `Quick test_strategy_strings ] );
    ]
