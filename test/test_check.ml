(* Tests for the differential correctness harness: the suite engine runs
   clean on pinned seeds, an intentionally injected fusion index-remap bug is
   caught and shrunk to a re-runnable repro, and HGF serialization
   round-trips every generator-produced graph. *)

module Check = Hidet_check.Check
module Gen = Hidet_check.Gen
module Oracle = Hidet_check.Oracle
module Fuse = Hidet_fusion.Fuse
module Graph = Hidet_graph.Graph
module Graph_io = Hidet_graph.Graph_io

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* --- the suite itself ----------------------------------------------------- *)

let test_suite_clean () =
  (* A modest pinned-seed run across all four paths must pass; the CLI
     acceptance run (seed 42, 500 cases) exercises the same engine at
     scale. *)
  let s = Check.run_suite ~seed:7 ~cases:20 ~max_size:6 () in
  Alcotest.(check bool)
    (Printf.sprintf "clean suite: %s" (Check.summary_to_string s))
    true (Check.ok s);
  Alcotest.(check bool) "performed comparisons" true (s.Check.s_checks > 0);
  let checks_of p =
    try List.assoc p s.Check.s_per_path with Not_found -> 0
  in
  Alcotest.(check bool) "rule path exercised" true (checks_of Oracle.Rule > 0);
  Alcotest.(check bool) "fused path exercised" true (checks_of Oracle.Fused > 0)

let test_suite_deterministic () =
  let run () =
    let s = Check.run_suite ~seed:11 ~cases:6 ~max_size:5 () in
    (s.Check.s_checks, s.Check.s_skips, List.length s.Check.s_failures)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same counts on replay" true (a = b)

(* --- fault injection ------------------------------------------------------- *)

(* The acceptance demonstration: flipping [Fuse.inject_index_bug] mirrors the
   innermost output index of fused epilogue stores — an in-bounds remap that
   no bounds check or verifier can see, only differential comparison. *)
let test_injection_detected () =
  Fun.protect
    ~finally:(fun () -> Fuse.inject_index_bug := false)
    (fun () ->
      Fuse.inject_index_bug := true;
      let s = Check.run_suite ~seed:42 ~cases:11 ~max_shrunk:5 () in
      Alcotest.(check bool) "injected bug detected" true (not (Check.ok s));
      let f = List.hd s.Check.s_failures in
      (* The repro is self-contained: a rerun command line plus the shrunk
         case. *)
      Alcotest.(check bool) "repro has rerun command" true
        (contains ~sub:"hidetc fuzz --seed 42" f.Check.f_repro);
      Alcotest.(check bool) "repro has shrunk case" true
        (contains ~sub:"shrunk case:" f.Check.f_repro);
      (* A failing graph case prints its HGF text (seed + HGF repro). *)
      let graph_failure =
        List.find_opt (fun f -> f.Check.f_kind = "graph") s.Check.s_failures
      in
      (match graph_failure with
      | Some gf ->
        Alcotest.(check bool) "graph repro is HGF" true
          (contains ~sub:"(graph" gf.Check.f_repro)
      | None -> Alcotest.fail "expected a failing graph case among the first 11");
      (* Re-runnable: replaying the recorded offset alone still fails... *)
      let replay =
        Check.run_suite ~seed:42 ~cases:1 ~offset:f.Check.f_index ~max_shrunk:0 ()
      in
      Alcotest.(check bool) "offset replay still fails" true
        (not (Check.ok replay));
      (* ...and the same offset passes once the bug is gone. *)
      Fuse.inject_index_bug := false;
      let fixed =
        Check.run_suite ~seed:42 ~cases:1 ~offset:f.Check.f_index ~max_shrunk:0 ()
      in
      Alcotest.(check bool) "clean after un-injecting" true (Check.ok fixed))

(* --- HGF round-trip -------------------------------------------------------- *)

let graph_fingerprint g =
  ( Graph.get_name g,
    List.map
      (fun (n : Graph.node) -> (n.Graph.id, n.Graph.shape))
      (Graph.nodes g),
    Graph.outputs g )

let hgf_roundtrip_prop seed =
  let rs = Random.State.make [| seed |] in
  let g = Gen.gen_graph rs ~max_size:6 in
  let printed = Graph_io.to_string g in
  let g' = Graph_io.of_string printed in
  (* print ∘ parse ∘ print = print, and the reload preserves structure. *)
  Graph_io.to_string g' = printed && graph_fingerprint g' = graph_fingerprint g

let test_hgf_roundtrip_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30 ~name:"hgf round-trip over generated graphs"
       QCheck.small_nat hgf_roundtrip_prop)

let test_hgf_adversarial_name () =
  (* Names with quotes and backslashes must survive serialization — this
     exact shape was mis-escaped before the printer/parser fix. *)
  List.iter
    (fun name ->
      let g = Graph.create () in
      Graph.name g name;
      let x = Graph.input g [ 2; 2 ] in
      let y = Graph.add_op g (Hidet_graph.Op.Unary Hidet_graph.Op.Relu) [ x ] in
      Graph.set_outputs g [ y ];
      let g' = Graph_io.of_string (Graph_io.to_string g) in
      Alcotest.(check string)
        (Printf.sprintf "name %S round-trips" name)
        name (Graph.get_name g'))
    [
      {|plain|};
      {|with "quotes"|};
      {|back\slash|};
      {|mixed \" both \\ "ends"|};
      {|trailing backslash \|};
    ]

(* --- shrinker --------------------------------------------------------------- *)

let test_shrink_converges () =
  (* Shrinking against a predicate that only cares about the case kind must
     drive a matmul case down to trivial dimensions. *)
  let is_matmul = function Gen.C_matmul _ -> true | _ -> false in
  let big =
    Gen.C_matmul
      { batch = 2; m = 32; n = 24; k = 16; n_cfgs = 3; pro = true;
        epis = [ Gen.E_relu; Gen.E_scale 2. ] }
  in
  match Hidet_check.Shrink.shrink is_matmul big with
  | Gen.C_matmul { batch; m; n; k; n_cfgs; pro; epis } ->
    Alcotest.(check bool) "fully shrunk" true
      (batch = 1 && m = 1 && n = 1 && k = 1 && n_cfgs = 1 && (not pro)
      && epis = [])
  | _ -> Alcotest.fail "shrinker changed the case kind"

let () =
  Alcotest.run "hidet_check"
    [
      ( "suite",
        [
          Alcotest.test_case "clean on pinned seed" `Quick test_suite_clean;
          Alcotest.test_case "deterministic" `Quick test_suite_deterministic;
        ] );
      ( "injection",
        [
          Alcotest.test_case "fusion index bug caught and shrunk" `Quick
            test_injection_detected;
        ] );
      ( "hgf",
        [
          test_hgf_roundtrip_qcheck;
          Alcotest.test_case "adversarial names" `Quick
            test_hgf_adversarial_name;
        ] );
      ( "shrink",
        [ Alcotest.test_case "converges to minimum" `Quick test_shrink_converges ] );
    ]
