(* Tests for the Hidet scheduling layer: the matmul template across the
   configuration space (correctness on awkward sizes, double buffering,
   split-k, tensor cores, batching), the reduce and row templates, the
   hardware-centric space and the exhaustive tuner. *)

module MT = Hidet_sched.Matmul_template
module Space = Hidet_sched.Space
module Tu = Hidet_sched.Tuner
module RT = Hidet_sched.Row_templates
module Red = Hidet_sched.Reduce_template
module RB = Hidet_sched.Rule_based
module C = Hidet_sched.Compiled
module Def = Hidet_compute.Def
module T = Hidet_tensor.Tensor
module Pipeline = Hidet_gpu.Pipeline

let dev = Hidet_gpu.Device.rtx3090

let matmul_ok ?(batch = 1) ?(a_batched = true) ?(b_batched = false) ~m ~n ~k cfg =
  let a = T.rand ~seed:1 (if a_batched then [ batch; m; k ] else [ m; k ]) in
  let b = T.rand ~seed:2 (if b_batched then [ batch; k; n ] else [ k; n ]) in
  let a_full = if a_batched then a else T.reshape a [ 1; m; k ] in
  let expect =
    if batch = 1 && not a_batched then
      T.reshape (T.matmul (T.reshape a_full [ m; k ]) b) [ 1; m; n ]
    else T.matmul a b
  in
  let compiled = MT.compile ~batch ~a_batched ~b_batched ~m ~n ~k cfg in
  C.verify compiled;
  let got = C.run compiled [ a; b ] in
  T.allclose ~rtol:1e-3 ~atol:1e-4 expect (T.reshape got (T.shape expect))

let base = MT.default_config

let test_matmul_basic () =
  Alcotest.(check bool) "64^3 db" true (matmul_ok ~m:64 ~n:64 ~k:64 base)

let test_matmul_no_db () =
  Alcotest.(check bool) "no pipeline" true
    (matmul_ok ~m:64 ~n:64 ~k:64 { base with MT.stages = 1 });
  Alcotest.(check bool) "3-stage pipeline" true
    (matmul_ok ~m:64 ~n:64 ~k:96 { base with MT.stages = 3 });
  Alcotest.(check bool) "3-stage odd sizes" true
    (matmul_ok ~m:45 ~n:70 ~k:59 { base with MT.stages = 3 });
  Alcotest.(check bool) "4-stage pipeline" true
    (matmul_ok ~m:64 ~n:64 ~k:128 { base with MT.stages = 4 });
  Alcotest.(check bool) "4-stage odd sizes" true
    (matmul_ok ~m:45 ~n:70 ~k:131 { base with MT.stages = 4 });
  Alcotest.(check bool) "swizzled (gm mod 4 = 0)" true
    (matmul_ok ~m:256 ~n:64 ~k:32 { base with MT.swizzle = true });
  Alcotest.(check bool) "swizzled (column-major fallback)" true
    (matmul_ok ~m:70 ~n:64 ~k:32 { base with MT.swizzle = true });
  Alcotest.(check bool) "swizzled 4-stage split-k" true
    (matmul_ok ~m:128 ~n:96 ~k:100
       { base with MT.swizzle = true; stages = 4; split_k = 2 })

let test_matmul_odd_sizes () =
  (* Nothing divides: exercises full predication. *)
  Alcotest.(check bool) "70x50x33" true (matmul_ok ~m:70 ~n:50 ~k:33 base);
  Alcotest.(check bool) "prime 37x41x29" true
    (matmul_ok ~m:37 ~n:41 ~k:29 { base with MT.stages = 1 });
  Alcotest.(check bool) "1x1000x32 (classifier shape)" true
    (matmul_ok ~m:1 ~n:100 ~k:32 { base with MT.block_m = 16; block_n = 64; warp_m = 16; warp_n = 32 })

let test_matmul_split_k () =
  Alcotest.(check bool) "sk2" true
    (matmul_ok ~m:48 ~n:48 ~k:96 { base with MT.split_k = 2 });
  Alcotest.(check bool) "sk4 odd" true
    (matmul_ok ~m:33 ~n:47 ~k:100 { base with MT.split_k = 4 });
  (* split_k larger than the number of k tiles: some blocks do zero trips. *)
  Alcotest.(check bool) "sk8 small k" true
    (matmul_ok ~m:32 ~n:32 ~k:24
       { base with MT.split_k = 8; block_m = 32; block_n = 32; warp_m = 16; warp_n = 16 })

let test_matmul_tensor_core () =
  Alcotest.(check bool) "tc" true
    (matmul_ok ~m:64 ~n:64 ~k:32
       { base with MT.use_tensor_core = true; warp_m = 32; warp_n = 32; block_k = 16 });
  Alcotest.(check bool) "tc odd" true
    (matmul_ok ~m:50 ~n:70 ~k:40
       {
         base with
         MT.use_tensor_core = true;
         block_m = 32;
         block_n = 32;
         warp_m = 16;
         warp_n = 16;
         block_k = 8;
       })

let test_matmul_batched () =
  let cfg = { base with MT.block_m = 32; block_n = 32; warp_m = 16; warp_n = 16 } in
  Alcotest.(check bool) "bmm" true
    (matmul_ok ~batch:3 ~b_batched:true ~m:24 ~n:24 ~k:24 cfg);
  Alcotest.(check bool) "shared weights" true
    (matmul_ok ~batch:2 ~a_batched:false ~b_batched:true ~m:16 ~n:40 ~k:24 cfg)

let test_config_check () =
  let bad cfg = Result.is_error (MT.check cfg) in
  Alcotest.(check bool) "warp not dividing" true
    (bad { base with MT.warp_m = 48 });
  Alcotest.(check bool) "tc warp not 16x" true
    (bad { base with MT.use_tensor_core = true; warp_m = 24 });
  Alcotest.(check bool) "split_k range" true (bad { base with MT.split_k = 0 });
  Alcotest.(check bool) "register tile too large" true
    (bad { base with MT.block_m = 128; block_n = 256; warp_m = 128; warp_n = 256 })

let test_double_buffer_structure () =
  (* The pipelined template must exhibit the structural overlap pattern; the
     non-pipelined one must not. *)
  let k cfg = List.hd (MT.compile ~m:128 ~n:128 ~k:128 cfg).C.kernels in
  Alcotest.(check int) "db kernel stages" 2
    (Pipeline.effective_stages (k base));
  Alcotest.(check int) "plain kernel stages" 1
    (Pipeline.effective_stages (k { base with MT.stages = 1 }))

let test_db_faster_in_model () =
  let lat cfg = C.latency dev (MT.compile ~m:1024 ~n:1024 ~k:1024 cfg) in
  Alcotest.(check bool) "double buffering wins" true
    (lat base < lat { base with MT.stages = 1 })

let test_swizzle_faster_in_model () =
  (* On a bandwidth-bound shape (large m and n, small k) the panelized
     block swizzle keeps a launch window of blocks on a few operand
     panels, so the L2-reuse term must make it strictly faster than the
     identical row-major schedule; structurally both kernels match. *)
  let lat cfg = C.latency dev (MT.compile ~m:2048 ~n:2048 ~k:64 cfg) in
  Alcotest.(check bool) "swizzle wins on bandwidth-bound shape" true
    (lat { base with MT.swizzle = true } < lat base);
  let deep = { base with MT.stages = 4 } in
  Alcotest.(check bool) "4-stage beats 2-stage in the model" true
    (C.latency dev (MT.compile ~m:1024 ~n:1024 ~k:4096 deep)
    < C.latency dev (MT.compile ~m:1024 ~n:1024 ~k:4096 base))

(* --- hardware-centric space --------------------------------------------------- *)

let test_space_size () =
  let size = Space.size () in
  Alcotest.(check bool)
    (Printf.sprintf "space size %d within [180, 500]" size)
    true
    (size >= 180 && size <= 500)

let test_space_all_valid () =
  List.iter
    (fun cfg ->
      match MT.check cfg with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid config %s: %s" (MT.config_to_string cfg) e)
    (Space.matmul ())

let test_space_input_agnostic () =
  (* The base space does not depend on the problem size (only the split-k
     extension looks at the grid). *)
  Alcotest.(check int) "same size"
    (List.length (Space.matmul ()))
    (List.length (Space.matmul ()))

let test_space_split_k_extension () =
  let small = Space.matmul_with_split_k ~m:64 ~n:49 in
  let large = Space.matmul_with_split_k ~m:4096 ~n:4096 in
  Alcotest.(check bool) "small grids get split-k variants" true
    (List.length small > List.length large);
  Alcotest.(check bool) "large grids keep the base space" true
    (List.length large = List.length (Space.matmul ()))

let test_space_dedup () =
  (* Both enumerations are duplicate-free: the cache stores winner indices,
     so a duplicate would make two indices name the same schedule. *)
  let distinct cfgs =
    let seen = Hashtbl.create 256 in
    List.iter (fun c -> Hashtbl.replace seen (MT.config_to_string c) ()) cfgs;
    Hashtbl.length seen
  in
  let base = Space.matmul () in
  Alcotest.(check int) "matmul () is duplicate-free" (List.length base)
    (distinct base);
  let sk = Space.matmul_with_split_k ~m:64 ~n:49 in
  Alcotest.(check int) "split-k extension is duplicate-free"
    (List.length sk) (distinct sk);
  Alcotest.(check int) "dedup is idempotent" (List.length base)
    (List.length (Space.dedup base))

let test_space_widened () =
  (* The widened space actually contains the new dimensions. *)
  let cfgs = Space.matmul () in
  let has p = List.exists p cfgs in
  Alcotest.(check bool) "has 3-stage schedules" true
    (has (fun c -> c.MT.stages = 3));
  Alcotest.(check bool) "has 4-stage schedules" true
    (has (fun c -> c.MT.stages = 4));
  Alcotest.(check bool) "has swizzled schedules" true
    (has (fun c -> c.MT.swizzle));
  Alcotest.(check bool) "split-k enters via the extension" true
    (List.exists
       (fun c -> c.MT.split_k > 1)
       (Space.matmul_with_split_k ~m:64 ~n:49))

let test_config_string_round_trip () =
  (* config_of_string inverts config_to_string over the whole widened
     space (guided search warm-starts parse configs back from TSV logs). *)
  List.iter
    (fun cfg ->
      let s = MT.config_to_string cfg in
      match MT.config_of_string s with
      | Some cfg' when cfg' = cfg -> ()
      | Some cfg' ->
        Alcotest.failf "round trip changed %s into %s" s
          (MT.config_to_string cfg')
      | None -> Alcotest.failf "config_of_string failed on %s" s)
    (Space.matmul_with_split_k ~m:64 ~n:49);
  Alcotest.(check bool) "garbage rejected" true
    (MT.config_of_string "b64x64_w32x32" = None
    && MT.config_of_string "" = None
    && MT.config_of_string "b64x64x8_w32x32_sk1" = None)

let space_sampled_cases =
  (* Every 13th config of the space, compiled at an awkward size, must be
     numerically exact. *)
  List.filteri (fun i _ -> i mod 13 = 0) (Space.matmul ())
  |> List.map (fun cfg ->
         Alcotest.test_case (MT.config_to_string cfg) `Quick (fun () ->
             Alcotest.(check bool) "exact at 37x53x41" true
               (matmul_ok ~m:37 ~n:53 ~k:41 cfg)))

(* --- tuner ---------------------------------------------------------------------- *)

let test_tuner_picks_minimum () =
  let candidates = [ 1; 2; 3; 4 ] in
  (* Fake compile: sequential work grows with |c - 3|, so 3 is fastest. *)
  let compile c =
    let k = 64 * (1 + abs (c - 3)) in
    MT.compile ~m:32 ~n:32 ~k
      { base with MT.block_m = 32; block_n = 32; warp_m = 16; warp_n = 16 }
  in
  match Tu.tune ~device:dev ~candidates ~compile () with
  | Some (best, _, st) ->
    Alcotest.(check int) "best candidate" 3 best;
    Alcotest.(check int) "best index" 2 st.Tu.best_index;
    Alcotest.(check int) "all trials counted" 4 st.Tu.trials;
    Alcotest.(check int) "none rejected" 0 st.Tu.rejected;
    Alcotest.(check (float 1e-6)) "simulated cost" (4. *. Tu.seconds_per_trial)
      st.Tu.simulated_seconds
  | None -> Alcotest.fail "tuner found nothing"

let test_tuner_skips_invalid () =
  (* Candidates the template rejects never reach the device: they are
     reported as [rejected] and cost no simulated measurement seconds. *)
  let candidates = [ `Bad; `Good; `Bad2 ] in
  let compile = function
    | `Bad | `Bad2 -> invalid_arg "bad"
    | `Good -> MT.compile ~m:64 ~n:64 ~k:64 base
  in
  match Tu.tune ~device:dev ~candidates ~compile () with
  | Some (best, _, st) ->
    Alcotest.(check bool) "picked good" true (best = `Good);
    Alcotest.(check int) "only measured billed" 1 st.Tu.trials;
    Alcotest.(check int) "rejected reported" 2 st.Tu.rejected;
    Alcotest.(check (float 1e-6)) "rejected cost nothing" Tu.seconds_per_trial
      st.Tu.simulated_seconds
  | None -> Alcotest.fail "tuner found nothing"

let test_tune_matmul_end_to_end () =
  match Tu.tune_matmul ~device:dev ~m:256 ~n:256 ~k:256 () with
  | Some (cfg, compiled, st) ->
    Alcotest.(check bool) "feasible" true (C.feasible dev compiled);
    Alcotest.(check bool) "latency positive" true (st.Tu.best_latency > 0.);
    Alcotest.(check bool) "config valid" true (Result.is_ok (MT.check cfg))
  | None -> Alcotest.fail "no schedule for 256^3"

(* --- guided search -------------------------------------------------------------- *)

module Se = Hidet_sched.Search
module Tlog = Hidet_obs.Tuning_log

(* Drive the guided run protocol directly against a synthetic, deterministic
   latency landscape over the real widened space — no compilation, so the
   qcheck property can afford many seeds. *)
let guided_candidates = Array.of_list (Space.matmul_with_split_k ~m:64 ~n:49)

let synthetic_latency (c : MT.config) =
  let f = Se.matmul_ops.Se.features c in
  let acc = ref 0. in
  Array.iteri
    (fun i x -> acc := !acc +. (x *. float_of_int (1 + (i mod 3)))) f;
  (* a couple of infeasible pockets so observe sees infinities too *)
  if c.MT.block_m = 128 && c.MT.split_k > 1 then infinity else !acc

let drive_guided ~seed =
  let t = Se.guided_matmul ~params:{ Se.default_guided_params with Se.seed } () in
  match Se.start t ~candidates:guided_candidates with
  | None -> Alcotest.fail "guided start returned no run"
  | Some run ->
    let trail = ref [] in
    let continue = ref true in
    while !continue do
      match Se.next_batch run with
      | [] -> continue := false
      | batch ->
        List.iter
          (fun (i, p) ->
            let lat = synthetic_latency guided_candidates.(i) in
            trail := (i, Tlog.proposer_to_string p, lat) :: !trail;
            Se.observe run ~index:i ~latency:lat)
          batch
    done;
    List.rev !trail

let prop_guided_deterministic =
  QCheck.Test.make ~count:25
    ~name:"guided search: same seed => identical trial sequence and winner"
    QCheck.small_nat (fun seed ->
      let a = drive_guided ~seed and b = drive_guided ~seed in
      let n = Array.length guided_candidates in
      let budget =
        max Se.default_guided_params.Se.population
          (int_of_float
             (Se.default_guided_params.Se.budget_fraction *. float_of_int n))
      in
      let indices = List.map (fun (i, _, _) -> i) a in
      let distinct = List.sort_uniq compare indices in
      a = b
      && List.length a <= budget
      && List.length distinct = List.length indices
      && List.for_all (fun i -> i >= 0 && i < n) indices)

let trial_key (t : Tlog.trial) =
  ( t.Tlog.index,
    t.Tlog.config,
    Tlog.proposer_to_string t.Tlog.proposer,
    t.Tlog.latency )

let test_guided_parallel_eq_sequential () =
  (* The real tuner: the guided trial sequence and the winner must not
     depend on whether measurement ran across domains. *)
  let tune ~parallel =
    Tlog.start ();
    let r =
      Tu.tune_matmul ~device:dev ~parallel ~search:(Se.guided_matmul ())
        ~m:64 ~n:49 ~k:32 ()
    in
    (r, Tlog.stop ())
  in
  let r_seq, log_seq = tune ~parallel:false in
  let r_par, log_par = tune ~parallel:true in
  match (r_seq, r_par) with
  | Some (c1, _, st1), Some (c2, _, st2) ->
    Alcotest.(check string) "same winner" (MT.config_to_string c1)
      (MT.config_to_string c2);
    Alcotest.(check int) "same best index" st1.Tu.best_index st2.Tu.best_index;
    Alcotest.(check int) "same trials" st1.Tu.trials st2.Tu.trials;
    Alcotest.(check bool) "same logged trial sequence" true
      (List.map trial_key log_seq = List.map trial_key log_par)
  | _ -> Alcotest.fail "guided tune_matmul found nothing"

let test_guided_within_budget_and_quality () =
  (* Guided measures a bounded fraction and, on this small problem, must
     land close to the exhaustive winner (the bench gates check 5% on the
     quickstart shapes; here we assert a loose 10% to keep the unit test
     robust to space curation changes). *)
  let exh = Tu.tune_matmul ~device:dev ~m:64 ~n:49 ~k:32 () in
  let gui =
    Tu.tune_matmul ~device:dev ~search:(Se.guided_matmul ()) ~m:64 ~n:49 ~k:32
      ()
  in
  match (exh, gui) with
  | Some (_, _, st_e), Some (_, _, st_g) ->
    let n = List.length (Space.matmul_with_split_k ~m:64 ~n:49) in
    Alcotest.(check bool)
      (Printf.sprintf "guided trials %d <= 30%% of %d" st_g.Tu.trials n)
      true
      (float_of_int st_g.Tu.trials <= 0.30 *. float_of_int n);
    Alcotest.(check bool)
      (Printf.sprintf "guided %.3g within 10%% of exhaustive %.3g"
         st_g.Tu.best_latency st_e.Tu.best_latency)
      true
      (st_g.Tu.best_latency <= 1.10 *. st_e.Tu.best_latency)
  | _ -> Alcotest.fail "tuning found nothing"

let test_guided_warm_start () =
  (* A warm start fit from (synthetic) prior trials must not break the
     search, and the winner must still be a member of the space. *)
  let warm =
    List.filteri (fun i _ -> i mod 5 = 0) (Array.to_list guided_candidates)
    |> List.map (fun c -> (c, synthetic_latency c))
    |> List.filter (fun (_, l) -> l < infinity)
  in
  match
    Tu.tune_matmul ~device:dev ~search:(Se.guided_matmul ~warm ())
      ~m:64 ~n:49 ~k:32 ()
  with
  | Some (cfg, _, st) ->
    Alcotest.(check bool) "winner in space" true
      (List.exists (fun c -> c = cfg) (Array.to_list guided_candidates));
    Alcotest.(check bool) "measured something" true (st.Tu.trials > 0)
  | None -> Alcotest.fail "warm-started guided tune found nothing"

let test_search_mode_round_trip () =
  Alcotest.(check bool) "exhaustive" true
    (Se.mode_of_string "exhaustive" = Some `Exhaustive);
  Alcotest.(check bool) "guided" true
    (Se.mode_of_string "guided" = Some `Guided);
  Alcotest.(check bool) "garbage" true (Se.mode_of_string "annealed" = None);
  Alcotest.(check string) "to_string guided" "guided" (Se.mode_to_string `Guided);
  Alcotest.(check string) "cache suffix exhaustive empty" ""
    (Se.cache_suffix Se.Exhaustive);
  Alcotest.(check string) "cache suffix guided" "#guided"
    (Se.cache_suffix (Se.guided_matmul ()))

(* --- rule-based, reduce and row templates -------------------------------------- *)

module Op = Hidet_graph.Op

let rule_based_cases =
  let cases =
    [
      ("relu", Op.Unary Op.Relu, [ [ 3; 17 ] ]);
      ("gelu", Op.Unary Op.Gelu, [ [ 2; 33 ] ]);
      ("sigmoid", Op.Unary Op.Sigmoid, [ [ 5; 5 ] ]);
      ("relu6", Op.Unary (Op.Clip (0., 6.)), [ [ 4; 11 ] ]);
      ("tanh", Op.Unary Op.Tanh_act, [ [ 4; 9 ] ]);
      ("add", Op.Binary Op.Add, [ [ 3; 8 ]; [ 3; 8 ] ]);
      ("mul", Op.Binary Op.Mul, [ [ 3; 8 ]; [ 3; 8 ] ]);
      ("bias_add", Op.Bias_add, [ [ 2; 4; 6 ]; [ 6 ] ]);
      ("scale_shift", Op.Scale_shift, [ [ 1; 4; 3; 3 ]; [ 4 ]; [ 4 ] ]);
      ("reshape", Op.Reshape [ 6; 4 ], [ [ 2; 12 ] ]);
      ("transpose", Op.Transpose [ 1; 0; 2 ], [ [ 2; 3; 4 ] ]);
      ("im2col", Op.Im2col { kh = 3; kw = 3; stride = 2; pad_h = 1; pad_w = 1 },
       [ [ 1; 3; 9; 9 ] ]);
      ("maxpool",
       Op.Pool2d { kind = Op.Max_pool; kernel = 3; stride = 2; padding = 1 },
       [ [ 1; 2; 9; 9 ] ]);
      ("avgpool",
       Op.Pool2d { kind = Op.Avg_pool; kernel = 2; stride = 2; padding = 0 },
       [ [ 1; 2; 8; 8 ] ]);
      ("global_avg_pool", Op.Global_avg_pool, [ [ 2; 3; 5; 5 ] ]);
      ("conv2d", Op.Conv2d { stride = 1; pad_h = 1; pad_w = 1 },
       [ [ 1; 3; 6; 6 ]; [ 4; 3; 3; 3 ] ]);
      ("dwconv", Op.Depthwise_conv2d { stride = 1; padding = 1 },
       [ [ 1; 4; 6; 6 ]; [ 4; 1; 3; 3 ] ]);
      ("concat", Op.Concat { axis = 1 }, [ [ 1; 2; 4 ]; [ 1; 3; 4 ]; [ 1; 1; 4 ] ]);
    ]
  in
  List.map
    (fun (name, op, in_shapes) ->
      Alcotest.test_case ("rule-based " ^ name) `Quick (fun () ->
          let inputs = List.mapi (fun i s -> T.rand ~seed:(100 + i) s) in_shapes in
          let expect = Op.eval op inputs in
          let compiled = RB.schedule (Op.to_def op in_shapes) in
          C.verify compiled;
          let got = C.run compiled inputs in
          if not (T.allclose ~rtol:1e-3 ~atol:1e-4 expect got) then
            Alcotest.failf "%s: rule-based kernel disagrees (max diff %g)" name
              (T.max_abs_diff expect got)))
    cases

let test_reduce_template_matches_rule_based () =
  let def = Op.to_def Op.Global_avg_pool [ [ 2; 5; 12; 12 ] ] in
  let x = T.rand ~seed:11 [ 2; 5; 12; 12 ] in
  let a = C.run (RB.schedule def) [ x ] in
  List.iter
    (fun cfg ->
      let b = C.run (Red.schedule ~config:cfg def) [ x ] in
      Alcotest.(check bool)
        (Printf.sprintf "block %d" cfg.Red.block_size)
        true
        (T.allclose ~rtol:1e-4 ~atol:1e-5 a b))
    Red.space

let test_reduce_template_rejects () =
  Alcotest.(check bool) "no reduction" true
    (try
       ignore (Red.schedule (Op.to_def (Op.Unary Op.Relu) [ [ 4 ] ]));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "non pow2 block" true
    (try
       ignore
         (Red.schedule ~config:{ Red.block_size = 96 }
            (Op.to_def Op.Global_avg_pool [ [ 1; 1; 4; 4 ] ]));
       false
     with Invalid_argument _ -> true)

let test_softmax_template () =
  List.iter
    (fun (rows, cols, block) ->
      let x = T.rand ~seed:12 [ rows; cols ] in
      let c = RT.softmax ~block_size:block ~rows ~cols () in
      C.verify c;
      let got = C.run c [ x ] in
      Alcotest.(check bool)
        (Printf.sprintf "softmax %dx%d b%d" rows cols block)
        true
        (T.allclose ~rtol:1e-4 ~atol:1e-5 (T.softmax x ~axis:1) got))
    [ (4, 64, 64); (3, 100, 128); (7, 33, 32); (1, 257, 256) ]

let test_layernorm_template () =
  List.iter
    (fun (rows, cols) ->
      let x = T.rand ~seed:13 [ rows; cols ] in
      let gamma = T.rand ~seed:14 [ cols ] and beta = T.rand ~seed:15 [ cols ] in
      let c = RT.layernorm ~rows ~cols () in
      let got = C.run c [ x; gamma; beta ] in
      Alcotest.(check bool)
        (Printf.sprintf "layernorm %dx%d" rows cols)
        true
        (T.allclose ~rtol:1e-2 ~atol:1e-3
           (T.layernorm x ~gamma ~beta ~eps:1e-5)
           got))
    [ (4, 64); (2, 100); (5, 7) ]

let test_compiled_plumbing () =
  let c = MT.compile ~m:32 ~n:32 ~k:32 { base with MT.block_m = 32; block_n = 32; warp_m = 16; warp_n = 16 } in
  Alcotest.(check bool) "cuda source mentions kernel" true
    (let src = C.cuda_source c in
     String.length src > 100
     &&
     let rec search i =
       if i + 10 > String.length src then false
       else if String.sub src i 10 = "__global__" then true
       else search (i + 1)
     in
     search 0);
  Alcotest.(check bool) "wrong input count rejected" true
    (try
       ignore (C.run c [ T.rand [ 32; 32 ] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "wrong element count rejected" true
    (try
       ignore (C.run c [ T.rand [ 16; 16 ]; T.rand [ 32; 32 ] ]);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "hidet_sched"
    [
      ( "matmul template",
        [
          Alcotest.test_case "basic" `Quick test_matmul_basic;
          Alcotest.test_case "no double buffer" `Quick test_matmul_no_db;
          Alcotest.test_case "odd sizes" `Quick test_matmul_odd_sizes;
          Alcotest.test_case "split-k" `Quick test_matmul_split_k;
          Alcotest.test_case "tensor core" `Quick test_matmul_tensor_core;
          Alcotest.test_case "batched" `Quick test_matmul_batched;
          Alcotest.test_case "config check" `Quick test_config_check;
          Alcotest.test_case "pipeline structure" `Quick test_double_buffer_structure;
          Alcotest.test_case "db faster in model" `Quick test_db_faster_in_model;
          Alcotest.test_case "swizzle faster in model" `Quick
            test_swizzle_faster_in_model;
        ] );
      ( "space",
        [
          Alcotest.test_case "size" `Quick test_space_size;
          Alcotest.test_case "all valid" `Quick test_space_all_valid;
          Alcotest.test_case "input agnostic" `Quick test_space_input_agnostic;
          Alcotest.test_case "split-k extension" `Quick test_space_split_k_extension;
          Alcotest.test_case "duplicate-free" `Quick test_space_dedup;
          Alcotest.test_case "widened dimensions" `Quick test_space_widened;
          Alcotest.test_case "config string round trip" `Quick
            test_config_string_round_trip;
        ] );
      ("space sampled correctness", space_sampled_cases);
      ( "tuner",
        [
          Alcotest.test_case "picks minimum" `Quick test_tuner_picks_minimum;
          Alcotest.test_case "skips invalid" `Quick test_tuner_skips_invalid;
          Alcotest.test_case "matmul end-to-end" `Quick test_tune_matmul_end_to_end;
        ] );
      ( "guided search",
        [
          QCheck_alcotest.to_alcotest prop_guided_deterministic;
          Alcotest.test_case "parallel == sequential" `Quick
            test_guided_parallel_eq_sequential;
          Alcotest.test_case "budget and quality" `Quick
            test_guided_within_budget_and_quality;
          Alcotest.test_case "warm start" `Quick test_guided_warm_start;
          Alcotest.test_case "mode round trip" `Quick test_search_mode_round_trip;
        ] );
      ("rule-based op zoo", rule_based_cases);
      ( "other templates",
        [
          Alcotest.test_case "reduce = rule-based" `Quick
            test_reduce_template_matches_rule_based;
          Alcotest.test_case "reduce rejects" `Quick test_reduce_template_rejects;
          Alcotest.test_case "softmax rows" `Quick test_softmax_template;
          Alcotest.test_case "layernorm rows" `Quick test_layernorm_template;
          Alcotest.test_case "compiled plumbing" `Quick test_compiled_plumbing;
        ] );
    ]
