(* Tests for the Hidet scheduling layer: the matmul template across the
   configuration space (correctness on awkward sizes, double buffering,
   split-k, tensor cores, batching), the reduce and row templates, the
   hardware-centric space and the exhaustive tuner. *)

module MT = Hidet_sched.Matmul_template
module Space = Hidet_sched.Space
module Tu = Hidet_sched.Tuner
module RT = Hidet_sched.Row_templates
module Red = Hidet_sched.Reduce_template
module RB = Hidet_sched.Rule_based
module C = Hidet_sched.Compiled
module Def = Hidet_compute.Def
module T = Hidet_tensor.Tensor
module Pipeline = Hidet_gpu.Pipeline

let dev = Hidet_gpu.Device.rtx3090

let matmul_ok ?(batch = 1) ?(a_batched = true) ?(b_batched = false) ~m ~n ~k cfg =
  let a = T.rand ~seed:1 (if a_batched then [ batch; m; k ] else [ m; k ]) in
  let b = T.rand ~seed:2 (if b_batched then [ batch; k; n ] else [ k; n ]) in
  let a_full = if a_batched then a else T.reshape a [ 1; m; k ] in
  let expect =
    if batch = 1 && not a_batched then
      T.reshape (T.matmul (T.reshape a_full [ m; k ]) b) [ 1; m; n ]
    else T.matmul a b
  in
  let compiled = MT.compile ~batch ~a_batched ~b_batched ~m ~n ~k cfg in
  C.verify compiled;
  let got = C.run compiled [ a; b ] in
  T.allclose ~rtol:1e-3 ~atol:1e-4 expect (T.reshape got (T.shape expect))

let base = MT.default_config

let test_matmul_basic () =
  Alcotest.(check bool) "64^3 db" true (matmul_ok ~m:64 ~n:64 ~k:64 base)

let test_matmul_no_db () =
  Alcotest.(check bool) "no pipeline" true
    (matmul_ok ~m:64 ~n:64 ~k:64 { base with MT.stages = 1 });
  Alcotest.(check bool) "3-stage pipeline" true
    (matmul_ok ~m:64 ~n:64 ~k:96 { base with MT.stages = 3 });
  Alcotest.(check bool) "3-stage odd sizes" true
    (matmul_ok ~m:45 ~n:70 ~k:59 { base with MT.stages = 3 });
  Alcotest.(check bool) "swizzled (gm mod 4 = 0)" true
    (matmul_ok ~m:256 ~n:64 ~k:32 { base with MT.swizzle = true });
  Alcotest.(check bool) "swizzled (column-major fallback)" true
    (matmul_ok ~m:70 ~n:64 ~k:32 { base with MT.swizzle = true })

let test_matmul_odd_sizes () =
  (* Nothing divides: exercises full predication. *)
  Alcotest.(check bool) "70x50x33" true (matmul_ok ~m:70 ~n:50 ~k:33 base);
  Alcotest.(check bool) "prime 37x41x29" true
    (matmul_ok ~m:37 ~n:41 ~k:29 { base with MT.stages = 1 });
  Alcotest.(check bool) "1x1000x32 (classifier shape)" true
    (matmul_ok ~m:1 ~n:100 ~k:32 { base with MT.block_m = 16; block_n = 64; warp_m = 16; warp_n = 32 })

let test_matmul_split_k () =
  Alcotest.(check bool) "sk2" true
    (matmul_ok ~m:48 ~n:48 ~k:96 { base with MT.split_k = 2 });
  Alcotest.(check bool) "sk4 odd" true
    (matmul_ok ~m:33 ~n:47 ~k:100 { base with MT.split_k = 4 });
  (* split_k larger than the number of k tiles: some blocks do zero trips. *)
  Alcotest.(check bool) "sk8 small k" true
    (matmul_ok ~m:32 ~n:32 ~k:24
       { base with MT.split_k = 8; block_m = 32; block_n = 32; warp_m = 16; warp_n = 16 })

let test_matmul_tensor_core () =
  Alcotest.(check bool) "tc" true
    (matmul_ok ~m:64 ~n:64 ~k:32
       { base with MT.use_tensor_core = true; warp_m = 32; warp_n = 32; block_k = 16 });
  Alcotest.(check bool) "tc odd" true
    (matmul_ok ~m:50 ~n:70 ~k:40
       {
         base with
         MT.use_tensor_core = true;
         block_m = 32;
         block_n = 32;
         warp_m = 16;
         warp_n = 16;
         block_k = 8;
       })

let test_matmul_batched () =
  let cfg = { base with MT.block_m = 32; block_n = 32; warp_m = 16; warp_n = 16 } in
  Alcotest.(check bool) "bmm" true
    (matmul_ok ~batch:3 ~b_batched:true ~m:24 ~n:24 ~k:24 cfg);
  Alcotest.(check bool) "shared weights" true
    (matmul_ok ~batch:2 ~a_batched:false ~b_batched:true ~m:16 ~n:40 ~k:24 cfg)

let test_config_check () =
  let bad cfg = Result.is_error (MT.check cfg) in
  Alcotest.(check bool) "warp not dividing" true
    (bad { base with MT.warp_m = 48 });
  Alcotest.(check bool) "tc warp not 16x" true
    (bad { base with MT.use_tensor_core = true; warp_m = 24 });
  Alcotest.(check bool) "split_k range" true (bad { base with MT.split_k = 0 });
  Alcotest.(check bool) "register tile too large" true
    (bad { base with MT.block_m = 128; block_n = 256; warp_m = 128; warp_n = 256 })

let test_double_buffer_structure () =
  (* The pipelined template must exhibit the structural overlap pattern; the
     non-pipelined one must not. *)
  let k cfg = List.hd (MT.compile ~m:128 ~n:128 ~k:128 cfg).C.kernels in
  Alcotest.(check int) "db kernel stages" 2
    (Pipeline.effective_stages (k base));
  Alcotest.(check int) "plain kernel stages" 1
    (Pipeline.effective_stages (k { base with MT.stages = 1 }))

let test_db_faster_in_model () =
  let lat cfg = C.latency dev (MT.compile ~m:1024 ~n:1024 ~k:1024 cfg) in
  Alcotest.(check bool) "double buffering wins" true
    (lat base < lat { base with MT.stages = 1 })

(* --- hardware-centric space --------------------------------------------------- *)

let test_space_size () =
  let size = Space.size () in
  Alcotest.(check bool)
    (Printf.sprintf "space size %d within [150, 250]" size)
    true
    (size >= 150 && size <= 250)

let test_space_all_valid () =
  List.iter
    (fun cfg ->
      match MT.check cfg with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid config %s: %s" (MT.config_to_string cfg) e)
    Space.matmul

let test_space_input_agnostic () =
  (* The base space does not depend on the problem size (only the split-k
     extension looks at the grid). *)
  Alcotest.(check int) "same size" (List.length Space.matmul)
    (List.length Space.matmul)

let test_space_split_k_extension () =
  let small = Space.matmul_with_split_k ~m:64 ~n:49 in
  let large = Space.matmul_with_split_k ~m:4096 ~n:4096 in
  Alcotest.(check bool) "small grids get split-k variants" true
    (List.length small > List.length large);
  Alcotest.(check bool) "large grids keep the base space" true
    (List.length large = List.length Space.matmul)

let space_sampled_cases =
  (* Every 13th config of the space, compiled at an awkward size, must be
     numerically exact. *)
  List.filteri (fun i _ -> i mod 13 = 0) Space.matmul
  |> List.map (fun cfg ->
         Alcotest.test_case (MT.config_to_string cfg) `Quick (fun () ->
             Alcotest.(check bool) "exact at 37x53x41" true
               (matmul_ok ~m:37 ~n:53 ~k:41 cfg)))

(* --- tuner ---------------------------------------------------------------------- *)

let test_tuner_picks_minimum () =
  let candidates = [ 1; 2; 3; 4 ] in
  (* Fake compile: sequential work grows with |c - 3|, so 3 is fastest. *)
  let compile c =
    let k = 64 * (1 + abs (c - 3)) in
    MT.compile ~m:32 ~n:32 ~k
      { base with MT.block_m = 32; block_n = 32; warp_m = 16; warp_n = 16 }
  in
  match Tu.tune ~device:dev ~candidates ~compile () with
  | Some (best, _, st) ->
    Alcotest.(check int) "best candidate" 3 best;
    Alcotest.(check int) "best index" 2 st.Tu.best_index;
    Alcotest.(check int) "all trials counted" 4 st.Tu.trials;
    Alcotest.(check int) "none rejected" 0 st.Tu.rejected;
    Alcotest.(check (float 1e-6)) "simulated cost" (4. *. Tu.seconds_per_trial)
      st.Tu.simulated_seconds
  | None -> Alcotest.fail "tuner found nothing"

let test_tuner_skips_invalid () =
  (* Candidates the template rejects never reach the device: they are
     reported as [rejected] and cost no simulated measurement seconds. *)
  let candidates = [ `Bad; `Good; `Bad2 ] in
  let compile = function
    | `Bad | `Bad2 -> invalid_arg "bad"
    | `Good -> MT.compile ~m:64 ~n:64 ~k:64 base
  in
  match Tu.tune ~device:dev ~candidates ~compile () with
  | Some (best, _, st) ->
    Alcotest.(check bool) "picked good" true (best = `Good);
    Alcotest.(check int) "only measured billed" 1 st.Tu.trials;
    Alcotest.(check int) "rejected reported" 2 st.Tu.rejected;
    Alcotest.(check (float 1e-6)) "rejected cost nothing" Tu.seconds_per_trial
      st.Tu.simulated_seconds
  | None -> Alcotest.fail "tuner found nothing"

let test_tune_matmul_end_to_end () =
  match Tu.tune_matmul ~device:dev ~m:256 ~n:256 ~k:256 () with
  | Some (cfg, compiled, st) ->
    Alcotest.(check bool) "feasible" true (C.feasible dev compiled);
    Alcotest.(check bool) "latency positive" true (st.Tu.best_latency > 0.);
    Alcotest.(check bool) "config valid" true (Result.is_ok (MT.check cfg))
  | None -> Alcotest.fail "no schedule for 256^3"

(* --- rule-based, reduce and row templates -------------------------------------- *)

module Op = Hidet_graph.Op

let rule_based_cases =
  let cases =
    [
      ("relu", Op.Unary Op.Relu, [ [ 3; 17 ] ]);
      ("gelu", Op.Unary Op.Gelu, [ [ 2; 33 ] ]);
      ("sigmoid", Op.Unary Op.Sigmoid, [ [ 5; 5 ] ]);
      ("relu6", Op.Unary (Op.Clip (0., 6.)), [ [ 4; 11 ] ]);
      ("tanh", Op.Unary Op.Tanh_act, [ [ 4; 9 ] ]);
      ("add", Op.Binary Op.Add, [ [ 3; 8 ]; [ 3; 8 ] ]);
      ("mul", Op.Binary Op.Mul, [ [ 3; 8 ]; [ 3; 8 ] ]);
      ("bias_add", Op.Bias_add, [ [ 2; 4; 6 ]; [ 6 ] ]);
      ("scale_shift", Op.Scale_shift, [ [ 1; 4; 3; 3 ]; [ 4 ]; [ 4 ] ]);
      ("reshape", Op.Reshape [ 6; 4 ], [ [ 2; 12 ] ]);
      ("transpose", Op.Transpose [ 1; 0; 2 ], [ [ 2; 3; 4 ] ]);
      ("im2col", Op.Im2col { kh = 3; kw = 3; stride = 2; pad_h = 1; pad_w = 1 },
       [ [ 1; 3; 9; 9 ] ]);
      ("maxpool",
       Op.Pool2d { kind = Op.Max_pool; kernel = 3; stride = 2; padding = 1 },
       [ [ 1; 2; 9; 9 ] ]);
      ("avgpool",
       Op.Pool2d { kind = Op.Avg_pool; kernel = 2; stride = 2; padding = 0 },
       [ [ 1; 2; 8; 8 ] ]);
      ("global_avg_pool", Op.Global_avg_pool, [ [ 2; 3; 5; 5 ] ]);
      ("conv2d", Op.Conv2d { stride = 1; pad_h = 1; pad_w = 1 },
       [ [ 1; 3; 6; 6 ]; [ 4; 3; 3; 3 ] ]);
      ("dwconv", Op.Depthwise_conv2d { stride = 1; padding = 1 },
       [ [ 1; 4; 6; 6 ]; [ 4; 1; 3; 3 ] ]);
      ("concat", Op.Concat { axis = 1 }, [ [ 1; 2; 4 ]; [ 1; 3; 4 ]; [ 1; 1; 4 ] ]);
    ]
  in
  List.map
    (fun (name, op, in_shapes) ->
      Alcotest.test_case ("rule-based " ^ name) `Quick (fun () ->
          let inputs = List.mapi (fun i s -> T.rand ~seed:(100 + i) s) in_shapes in
          let expect = Op.eval op inputs in
          let compiled = RB.schedule (Op.to_def op in_shapes) in
          C.verify compiled;
          let got = C.run compiled inputs in
          if not (T.allclose ~rtol:1e-3 ~atol:1e-4 expect got) then
            Alcotest.failf "%s: rule-based kernel disagrees (max diff %g)" name
              (T.max_abs_diff expect got)))
    cases

let test_reduce_template_matches_rule_based () =
  let def = Op.to_def Op.Global_avg_pool [ [ 2; 5; 12; 12 ] ] in
  let x = T.rand ~seed:11 [ 2; 5; 12; 12 ] in
  let a = C.run (RB.schedule def) [ x ] in
  List.iter
    (fun cfg ->
      let b = C.run (Red.schedule ~config:cfg def) [ x ] in
      Alcotest.(check bool)
        (Printf.sprintf "block %d" cfg.Red.block_size)
        true
        (T.allclose ~rtol:1e-4 ~atol:1e-5 a b))
    Red.space

let test_reduce_template_rejects () =
  Alcotest.(check bool) "no reduction" true
    (try
       ignore (Red.schedule (Op.to_def (Op.Unary Op.Relu) [ [ 4 ] ]));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "non pow2 block" true
    (try
       ignore
         (Red.schedule ~config:{ Red.block_size = 96 }
            (Op.to_def Op.Global_avg_pool [ [ 1; 1; 4; 4 ] ]));
       false
     with Invalid_argument _ -> true)

let test_softmax_template () =
  List.iter
    (fun (rows, cols, block) ->
      let x = T.rand ~seed:12 [ rows; cols ] in
      let c = RT.softmax ~block_size:block ~rows ~cols () in
      C.verify c;
      let got = C.run c [ x ] in
      Alcotest.(check bool)
        (Printf.sprintf "softmax %dx%d b%d" rows cols block)
        true
        (T.allclose ~rtol:1e-4 ~atol:1e-5 (T.softmax x ~axis:1) got))
    [ (4, 64, 64); (3, 100, 128); (7, 33, 32); (1, 257, 256) ]

let test_layernorm_template () =
  List.iter
    (fun (rows, cols) ->
      let x = T.rand ~seed:13 [ rows; cols ] in
      let gamma = T.rand ~seed:14 [ cols ] and beta = T.rand ~seed:15 [ cols ] in
      let c = RT.layernorm ~rows ~cols () in
      let got = C.run c [ x; gamma; beta ] in
      Alcotest.(check bool)
        (Printf.sprintf "layernorm %dx%d" rows cols)
        true
        (T.allclose ~rtol:1e-2 ~atol:1e-3
           (T.layernorm x ~gamma ~beta ~eps:1e-5)
           got))
    [ (4, 64); (2, 100); (5, 7) ]

let test_compiled_plumbing () =
  let c = MT.compile ~m:32 ~n:32 ~k:32 { base with MT.block_m = 32; block_n = 32; warp_m = 16; warp_n = 16 } in
  Alcotest.(check bool) "cuda source mentions kernel" true
    (let src = C.cuda_source c in
     String.length src > 100
     &&
     let rec search i =
       if i + 10 > String.length src then false
       else if String.sub src i 10 = "__global__" then true
       else search (i + 1)
     in
     search 0);
  Alcotest.(check bool) "wrong input count rejected" true
    (try
       ignore (C.run c [ T.rand [ 32; 32 ] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "wrong element count rejected" true
    (try
       ignore (C.run c [ T.rand [ 16; 16 ]; T.rand [ 32; 32 ] ]);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "hidet_sched"
    [
      ( "matmul template",
        [
          Alcotest.test_case "basic" `Quick test_matmul_basic;
          Alcotest.test_case "no double buffer" `Quick test_matmul_no_db;
          Alcotest.test_case "odd sizes" `Quick test_matmul_odd_sizes;
          Alcotest.test_case "split-k" `Quick test_matmul_split_k;
          Alcotest.test_case "tensor core" `Quick test_matmul_tensor_core;
          Alcotest.test_case "batched" `Quick test_matmul_batched;
          Alcotest.test_case "config check" `Quick test_config_check;
          Alcotest.test_case "pipeline structure" `Quick test_double_buffer_structure;
          Alcotest.test_case "db faster in model" `Quick test_db_faster_in_model;
        ] );
      ( "space",
        [
          Alcotest.test_case "size ~200" `Quick test_space_size;
          Alcotest.test_case "all valid" `Quick test_space_all_valid;
          Alcotest.test_case "input agnostic" `Quick test_space_input_agnostic;
          Alcotest.test_case "split-k extension" `Quick test_space_split_k_extension;
        ] );
      ("space sampled correctness", space_sampled_cases);
      ( "tuner",
        [
          Alcotest.test_case "picks minimum" `Quick test_tuner_picks_minimum;
          Alcotest.test_case "skips invalid" `Quick test_tuner_skips_invalid;
          Alcotest.test_case "matmul end-to-end" `Quick test_tune_matmul_end_to_end;
        ] );
      ("rule-based op zoo", rule_based_cases);
      ( "other templates",
        [
          Alcotest.test_case "reduce = rule-based" `Quick
            test_reduce_template_matches_rule_based;
          Alcotest.test_case "reduce rejects" `Quick test_reduce_template_rejects;
          Alcotest.test_case "softmax rows" `Quick test_softmax_template;
          Alcotest.test_case "layernorm rows" `Quick test_layernorm_template;
          Alcotest.test_case "compiled plumbing" `Quick test_compiled_plumbing;
        ] );
    ]
