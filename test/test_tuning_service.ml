(* Tests for the tuning service: parallel/sequential determinism of the
   tuner, the process-global schedule cache (hit/miss, stale entries,
   persistence), the engine's warm-start behaviour, and the occupancy-limit
   guard for register-free kernels. *)

module MT = Hidet_sched.Matmul_template
module Space = Hidet_sched.Space
module Tu = Hidet_sched.Tuner
module SC = Hidet_sched.Schedule_cache
module Par = Hidet_sched.Parallel
module C = Hidet_sched.Compiled
module PM = Hidet_gpu.Perf_model
module E = Hidet_runtime.Engine
module HE = Hidet.Hidet_engine
module M = Hidet_models.Models

let dev = Hidet_gpu.Device.rtx3090

(* --- parallel == sequential ------------------------------------------------ *)

(* Random sub-spaces of the matmul space at random problem sizes: the
   parallel enumeration must select the identical winner (config, index,
   latency) and report identical accounting as the sequential one. *)

let gen_case =
  let open QCheck.Gen in
  let size = oneofa [| 17; 32; 49; 64; 96; 128 |] in
  let* m = size and* n = size and* k = size in
  let* stride = int_range 5 19 in
  let* offset = int_range 0 4 in
  return (m, n, k, stride, offset)

let arb_case =
  QCheck.make
    ~print:(fun (m, n, k, stride, offset) ->
      Printf.sprintf "m=%d n=%d k=%d stride=%d offset=%d" m n k stride offset)
    gen_case

let sub_space ~m ~n ~stride ~offset =
  Space.matmul_with_split_k ~m ~n
  |> List.filteri (fun i _ -> i mod stride = offset)

let prop_parallel_matches_sequential =
  QCheck.Test.make ~name:"parallel tuning = sequential tuning" ~count:12
    arb_case (fun (m, n, k, stride, offset) ->
      let candidates = sub_space ~m ~n ~stride ~offset in
      QCheck.assume (candidates <> []);
      let compile cfg = MT.compile ~m ~n ~k cfg in
      let run ~parallel ?workers () =
        Tu.tune ~parallel ?workers ~device:dev ~candidates ~compile ()
      in
      match (run ~parallel:false (), run ~parallel:true ~workers:4 ()) with
      | None, None -> true
      | Some (c1, _, s1), Some (c2, _, s2) ->
        c1 = c2
        && s1.Tu.best_index = s2.Tu.best_index
        && s1.Tu.best_latency = s2.Tu.best_latency
        && s1.Tu.trials = s2.Tu.trials
        && s1.Tu.rejected = s2.Tu.rejected
        && s1.Tu.simulated_seconds = s2.Tu.simulated_seconds
      | _ -> false)

let test_parallel_ties_break_low () =
  (* Four identical candidates: every domain count must pick index 0. *)
  let candidates = [ 0; 1; 2; 3 ] in
  let compile _ = MT.compile ~m:64 ~n:64 ~k:64 MT.default_config in
  List.iter
    (fun workers ->
      match Tu.tune ~workers ~device:dev ~candidates ~compile () with
      | Some (best, _, st) ->
        Alcotest.(check int)
          (Printf.sprintf "tie -> lowest index (workers=%d)" workers)
          0 best;
        Alcotest.(check int) "best_index" 0 st.Tu.best_index
      | None -> Alcotest.fail "tuner found nothing")
    [ 1; 2; 4; 8 ]

let test_parallel_speedup () =
  (* The acceptance demo needs >= 4 real cores; on smaller machines we only
     check that the parallel path agrees with the sequential one on the full
     ~220-candidate space. *)
  let m = 512 and n = 49 and k = 512 in
  let candidates = Space.matmul_with_split_k ~m ~n in
  let compile cfg = MT.compile ~m ~n ~k cfg in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let seq, seq_t =
    time (fun () -> Tu.tune ~parallel:false ~device:dev ~candidates ~compile ())
  in
  let par, par_t =
    time (fun () -> Tu.tune ~parallel:true ~device:dev ~candidates ~compile ())
  in
  (match (seq, par) with
  | Some (c1, _, s1), Some (c2, _, s2) ->
    Alcotest.(check bool) "same winner" true (c1 = c2);
    Alcotest.(check int) "same index" s1.Tu.best_index s2.Tu.best_index
  | _ -> Alcotest.fail "tuner found nothing");
  if Domain.recommended_domain_count () >= 4 then
    Alcotest.(check bool)
      (Printf.sprintf ">=2x speedup on %d candidates (seq %.2fs, par %.2fs)"
         (List.length candidates) seq_t par_t)
      true
      (par_t *. 2. <= seq_t)
  else
    Printf.printf
      "  [speedup check skipped: %d core(s) here, need >= 4; seq %.2fs par %.2fs]\n"
      (Domain.recommended_domain_count ()) seq_t par_t

let test_parallel_map_propagates_errors () =
  Alcotest.check_raises "worker exception reaches caller" (Failure "boom")
    (fun () ->
      ignore (Par.map ~workers:4 (fun i -> if i = 5 then failwith "boom" else i)
                (Array.init 32 Fun.id)))

(* --- schedule cache -------------------------------------------------------- *)

let entry_testable =
  Alcotest.testable
    (fun fmt (e : SC.entry) ->
      Format.fprintf fmt "{idx=%d; size=%d; trials=%d; rej=%d; sim=%g; lat=%g}"
        e.SC.best_index e.SC.space_size e.SC.trials e.SC.rejected
        e.SC.simulated_seconds e.SC.best_latency)
    ( = )

let tune_cached ~key candidates =
  SC.tune ~device:dev ~key ~candidates
    ~compile:(fun cfg -> MT.compile ~m:64 ~n:64 ~k:64 cfg)
    ()

let test_cache_miss_then_hit () =
  SC.clear ();
  let candidates =
    List.filteri (fun i _ -> i mod 40 = 0) (Space.matmul ())
  in
  (match tune_cached ~key:"m64n64k64" candidates with
  | Some (_, _, SC.Fresh st) ->
    Alcotest.(check int) "one entry" 1 (SC.size ());
    Alcotest.(check int) "first call misses" 1 (SC.misses ());
    (* The second call must serve the stored entry and agree with the
       fresh stats field by field. *)
    (match tune_cached ~key:"m64n64k64" candidates with
    | Some (cand2, _, SC.Hit e) ->
      Alcotest.(check int) "hit counted" 1 (SC.hits ());
      Alcotest.check entry_testable "entry mirrors fresh stats"
        {
          SC.best_index = st.Tu.best_index;
          space_size = List.length candidates;
          trials = st.Tu.trials;
          rejected = st.Tu.rejected;
          simulated_seconds = st.Tu.simulated_seconds;
          best_latency = st.Tu.best_latency;
        }
        e;
      Alcotest.(check bool) "same winner" true
        (cand2 = List.nth candidates st.Tu.best_index)
    | _ -> Alcotest.fail "second call did not hit")
  | _ -> Alcotest.fail "first call was not fresh");
  (* A different key is a different workload: no false sharing. *)
  match tune_cached ~key:"other" candidates with
  | Some (_, _, SC.Fresh _) ->
    Alcotest.(check int) "two entries" 2 (SC.size ())
  | _ -> Alcotest.fail "distinct key must tune fresh"

let test_cache_search_modes_do_not_alias () =
  (* A guided winner must never answer for the exhaustive oracle (or vice
     versa): the search mode is folded into the cache key. *)
  let module Se = Hidet_sched.Search in
  SC.clear ();
  let candidates = List.filteri (fun i _ -> i mod 10 = 0) (Space.matmul ()) in
  let tune ~search =
    SC.tune ~device:dev ~key:"modes" ~search ~candidates
      ~compile:(fun cfg -> MT.compile ~m:64 ~n:64 ~k:64 cfg)
      ()
  in
  (match tune ~search:Se.Exhaustive with
  | Some (_, _, SC.Fresh _) -> ()
  | _ -> Alcotest.fail "exhaustive first call must be fresh");
  (match tune ~search:(Se.guided_matmul ()) with
  | Some (_, _, SC.Fresh _) ->
    Alcotest.(check int) "guided gets its own entry" 2 (SC.size ())
  | Some (_, _, SC.Hit _) ->
    Alcotest.fail "guided call served the exhaustive entry"
  | None -> Alcotest.fail "guided call found nothing");
  (* Both modes now hit their own entries. *)
  (match tune ~search:Se.Exhaustive with
  | Some (_, _, SC.Hit _) -> ()
  | _ -> Alcotest.fail "exhaustive re-tune should hit");
  match tune ~search:(Se.guided_matmul ()) with
  | Some (_, _, SC.Hit _) -> ()
  | _ -> Alcotest.fail "guided re-tune should hit"

let test_cache_stale_space_retunes () =
  SC.clear ();
  let candidates = List.filteri (fun i _ -> i mod 50 = 0) (Space.matmul ()) in
  (* Entry recorded against a differently-sized space: index is meaningless,
     the service must retune and overwrite. *)
  SC.add ~device:dev.Hidet_gpu.Device.name ~key:"stale"
    {
      SC.best_index = 3;
      space_size = List.length candidates + 7;
      trials = 10;
      rejected = 0;
      simulated_seconds = 15.;
      best_latency = 1e-3;
    };
  match tune_cached ~key:"stale" candidates with
  | Some (_, _, SC.Fresh _) -> (
    match SC.find ~device:dev.Hidet_gpu.Device.name ~key:"stale" with
    | Some e ->
      Alcotest.(check int) "overwritten with real space size"
        (List.length candidates) e.SC.space_size
    | None -> Alcotest.fail "entry vanished")
  | _ -> Alcotest.fail "stale entry must not be served"

let test_cache_uninstantiable_winner_retunes () =
  SC.clear ();
  let candidates = [ `Bad; `Good ] in
  let compile = function
    | `Bad -> invalid_arg "template rejects this now"
    | `Good -> MT.compile ~m:64 ~n:64 ~k:64 MT.default_config
  in
  (* The stored winner no longer instantiates (template evolved under the
     key): the service must fall back to a fresh tune, not crash. *)
  SC.add ~device:dev.Hidet_gpu.Device.name ~key:"evolved"
    {
      SC.best_index = 0;
      space_size = 2;
      trials = 2;
      rejected = 0;
      simulated_seconds = 3.;
      best_latency = 1e-3;
    };
  match SC.tune ~device:dev ~key:"evolved" ~candidates ~compile () with
  | Some (cand, _, SC.Fresh _) ->
    Alcotest.(check bool) "retuned to the feasible winner" true (cand = `Good)
  | _ -> Alcotest.fail "uninstantiable winner must trigger a fresh tune"

(* --- persistence ----------------------------------------------------------- *)

let with_temp_file f =
  let path = Filename.temp_file "hidet_cache_test" ".cache" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_persistence_round_trip () =
  SC.clear ();
  let e =
    {
      SC.best_index = 5;
      space_size = 40;
      trials = 38;
      rejected = 2;
      simulated_seconds = 57.;
      best_latency = 2.5e-4;
    }
  in
  SC.add ~device:"rtx3090" ~key:"matmul_b1_m64_n64_k64" e;
  SC.add ~device:"rtx3090" ~key:"weird key with spaces" { e with SC.best_index = 1 };
  with_temp_file (fun path ->
      SC.save path;
      SC.clear ();
      Alcotest.(check int) "cleared" 0 (SC.size ());
      (match SC.load path with
      | Ok n -> Alcotest.(check int) "both entries loaded" 2 n
      | Error msg -> Alcotest.failf "load failed: %s" msg);
      match SC.find ~device:"rtx3090" ~key:"matmul_b1_m64_n64_k64" with
      | Some got -> Alcotest.check entry_testable "round-trips exactly" e got
      | None -> Alcotest.fail "entry lost in round trip")

let test_persistence_rejects_foreign_and_stale () =
  with_temp_file (fun path ->
      let write s =
        let oc = open_out path in
        output_string oc s;
        close_out oc
      in
      write "not a cache file\njunk\n";
      Alcotest.(check bool) "foreign file rejected" true
        (Result.is_error (SC.load path));
      write "HIDET-SCHEDULE-CACHE v99\nrtx3090\tk\t0\t1\t1\t0\t1.5\t1e-4\n";
      Alcotest.(check bool) "future version rejected" true
        (Result.is_error (SC.load path));
      write "";
      Alcotest.(check bool) "empty file rejected" true
        (Result.is_error (SC.load path)))

let test_persistence_skips_corrupt_lines () =
  SC.clear ();
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "HIDET-SCHEDULE-CACHE v1\n";
      output_string oc "rtx3090\tgood\t2\t10\t9\t1\t13.5\t0.00025\n";
      output_string oc "rtx3090\ttruncated\t2\t10\n";
      output_string oc "total garbage line\n";
      output_string oc "rtx3090\tbad_index\t12\t10\t9\t1\t13.5\t0.00025\n";
      output_string oc "rtx3090\talso_good\t0\t4\t4\t0\t6\t0.001\n";
      close_out oc;
      (match SC.load path with
      | Ok n -> Alcotest.(check int) "only well-formed lines load" 2 n
      | Error msg -> Alcotest.failf "load failed: %s" msg);
      match SC.find ~device:"rtx3090" ~key:"good" with
      | Some e ->
        Alcotest.(check int) "fields parsed" 2 e.SC.best_index;
        Alcotest.(check int) "trials parsed" 9 e.SC.trials
      | None -> Alcotest.fail "good entry skipped")

let test_persistence_rejects_nonfinite_floats () =
  SC.clear ();
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "HIDET-SCHEDULE-CACHE v1\n";
      (* "nan" and "inf" parse as floats; negatives parse as ints/floats —
         all must be rejected, not loaded into the stats. *)
      output_string oc "rtx3090\tnan_sim\t2\t10\t9\t1\tnan\t0.00025\n";
      output_string oc "rtx3090\tnan_lat\t2\t10\t9\t1\t13.5\tnan\n";
      output_string oc "rtx3090\tinf_sim\t2\t10\t9\t1\tinf\t0.00025\n";
      output_string oc "rtx3090\tneg_sim\t2\t10\t9\t1\t-13.5\t0.00025\n";
      output_string oc "rtx3090\tneg_lat\t2\t10\t9\t1\t13.5\t-0.00025\n";
      output_string oc "rtx3090\tgood\t2\t10\t9\t1\t13.5\t0.00025\n";
      close_out oc;
      (match SC.load path with
      | Ok n -> Alcotest.(check int) "only the finite line loads" 1 n
      | Error msg -> Alcotest.failf "load failed: %s" msg);
      Alcotest.(check bool) "good entry present" true
        (SC.find ~device:"rtx3090" ~key:"good" <> None);
      Alcotest.(check bool) "nan entry rejected" true
        (SC.find ~device:"rtx3090" ~key:"nan_sim" = None))

let test_concurrent_saves_leave_loadable_file () =
  SC.clear ();
  let e =
    {
      SC.best_index = 1;
      space_size = 8;
      trials = 8;
      rejected = 0;
      simulated_seconds = 2.5;
      best_latency = 1e-4;
    }
  in
  for i = 0 to 19 do
    SC.add ~device:"rtx3090" ~key:(Printf.sprintf "wl%d" i) e
  done;
  with_temp_file (fun path ->
      (* Two domains hammer save on the same path. With the old fixed
         [path ^ ".tmp"] temp name their partial writes interleave; with
         per-call unique temp names every rename publishes one complete
         file, so the survivor must always load. *)
      let saver () =
        for _ = 1 to 25 do
          SC.save path
        done
      in
      let d1 = Domain.spawn saver and d2 = Domain.spawn saver in
      Domain.join d1;
      Domain.join d2;
      SC.clear ();
      (match SC.load path with
      | Ok n -> Alcotest.(check int) "all entries present" 20 n
      | Error msg -> Alcotest.failf "concurrent saves corrupted the file: %s" msg);
      (* No temp droppings left behind. *)
      let dir = Filename.dirname path and base = Filename.basename path in
      let leftovers =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f ->
               String.length f > String.length base
               && String.sub f 0 (String.length base) = base)
      in
      Alcotest.(check (list string)) "temp files cleaned up" [] leftovers)

(* --- hit/stale accounting --------------------------------------------------- *)

let test_cache_counters_agree_on_stale () =
  SC.clear ();
  let candidates = List.filteri (fun i _ -> i mod 50 = 0) (Space.matmul ()) in
  SC.add ~device:dev.Hidet_gpu.Device.name ~key:"stale_counts"
    {
      SC.best_index = 0;
      space_size = List.length candidates + 3;
      trials = 5;
      rejected = 0;
      simulated_seconds = 1.;
      best_latency = 1e-3;
    };
  (match tune_cached ~key:"stale_counts" candidates with
  | Some (_, _, SC.Fresh _) -> ()
  | _ -> Alcotest.fail "stale entry must retune");
  (* A stale lookup is stale (and a miss — it paid a tuning run), never a
     hit: the raw counters must agree with the schedule_cache.* metrics. *)
  Alcotest.(check int) "no hit counted" 0 (SC.hits ());
  Alcotest.(check int) "stale counted" 1 (SC.stale ());
  Alcotest.(check int) "miss counted" 1 (SC.misses ())

(* --- engine warm start ----------------------------------------------------- *)

let test_engine_warm_start () =
  SC.clear ();
  let cold = HE.compile dev (M.Tiny.cnn ()) in
  Alcotest.(check bool) "cold compile pays fresh trials" true
    (cold.E.tuning_cost > 0.);
  let warm = HE.compile dev (M.Tiny.cnn ()) in
  Alcotest.(check (float 1e-9)) "warm compile runs zero fresh trials" 0.
    warm.E.tuning_cost;
  Alcotest.(check bool) "avoided cost reported" true
    (warm.E.cached_tuning_cost > 0.);
  Alcotest.(check (float 1e-6)) "total cost is compile-order independent"
    (E.total_tuning_cost cold)
    (E.total_tuning_cost warm);
  Alcotest.(check (float 1e-9)) "same predicted latency" cold.E.latency
    warm.E.latency

(* --- occupancy guard ------------------------------------------------------- *)

let test_occupancy_regs_zero () =
  (* A kernel using no registers is not register-limited; the thread and
     block caps still apply (the old model divided by zero here). *)
  (match PM.blocks_per_sm_limit dev ~block_dim:256 ~smem:0 ~regs:0 with
  | Ok blocks ->
    let by_threads =
      dev.Hidet_gpu.Device.max_threads_per_sm / 256
    in
    Alcotest.(check int) "thread-limited"
      (min by_threads dev.Hidet_gpu.Device.max_blocks_per_sm)
      blocks
  | Error e -> Alcotest.failf "regs=0 must stay feasible: %s" e);
  (* Shared memory still limits a register-free kernel. *)
  match
    PM.blocks_per_sm_limit dev ~block_dim:128
      ~smem:(dev.Hidet_gpu.Device.shared_mem_per_sm / 2)
      ~regs:0
  with
  | Ok blocks -> Alcotest.(check int) "smem-limited" 2 blocks
  | Error e -> Alcotest.failf "regs=0 with smem must stay feasible: %s" e

let () =
  Alcotest.run "hidet_tuning_service"
    [
      ( "parallel tuner",
        [
          QCheck_alcotest.to_alcotest prop_parallel_matches_sequential;
          Alcotest.test_case "ties break to lowest index" `Quick
            test_parallel_ties_break_low;
          Alcotest.test_case "speedup / full-space agreement" `Slow
            test_parallel_speedup;
          Alcotest.test_case "worker errors propagate" `Quick
            test_parallel_map_propagates_errors;
        ] );
      ( "schedule cache",
        [
          Alcotest.test_case "miss then hit" `Quick test_cache_miss_then_hit;
          Alcotest.test_case "search modes do not alias" `Quick
            test_cache_search_modes_do_not_alias;
          Alcotest.test_case "stale space retunes" `Quick
            test_cache_stale_space_retunes;
          Alcotest.test_case "uninstantiable winner retunes" `Quick
            test_cache_uninstantiable_winner_retunes;
          Alcotest.test_case "counters agree on stale" `Quick
            test_cache_counters_agree_on_stale;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "round trip" `Quick test_persistence_round_trip;
          Alcotest.test_case "foreign/stale headers" `Quick
            test_persistence_rejects_foreign_and_stale;
          Alcotest.test_case "corrupt lines skipped" `Quick
            test_persistence_skips_corrupt_lines;
          Alcotest.test_case "non-finite floats rejected" `Quick
            test_persistence_rejects_nonfinite_floats;
          Alcotest.test_case "concurrent saves stay loadable" `Quick
            test_concurrent_saves_leave_loadable_file;
        ] );
      ( "engine warm start",
        [ Alcotest.test_case "zero fresh trials" `Quick test_engine_warm_start ] );
      ( "occupancy",
        [
          Alcotest.test_case "regs = 0 guarded" `Quick test_occupancy_regs_zero;
        ] );
    ]
