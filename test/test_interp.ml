(* Tests for the GPU simulator: functional interpreter (lockstep threads,
   barriers, memory scopes, MMA), pipeline pattern validation and the
   analytic performance model's qualitative behaviours. *)

open Hidet_ir
module Interp = Hidet_gpu.Interp
module Device = Hidet_gpu.Device
module Perf = Hidet_gpu.Perf_model
module Pipeline = Hidet_gpu.Pipeline
module Traffic = Hidet_gpu.Traffic

let dev = Device.rtx3090

(* --- basic execution ----------------------------------------------------- *)

let test_vector_add () =
  let n = 256 in
  let a = Buffer.create "A" [ n ] and b = Buffer.create "B" [ n ] in
  let c = Buffer.create "C" [ n ] in
  let gid =
    Expr.add (Expr.mul Expr.Block_idx (Expr.int 64)) Expr.Thread_idx
  in
  let body = Stmt.store c [ gid ] (Expr.add (Expr.load a [ gid ]) (Expr.load b [ gid ])) in
  let k = Kernel.create ~name:"vadd" ~params:[ a; b; c ] ~grid_dim:4 ~block_dim:64 body in
  let av = Array.init n float_of_int in
  let bv = Array.init n (fun i -> float_of_int (2 * i)) in
  let cv = Array.make n 0. in
  Interp.run k [ (a, av); (b, bv); (c, cv) ];
  Alcotest.(check bool) "all elements" true
    (Array.for_all Fun.id (Array.init n (fun i -> cv.(i) = float_of_int (3 * i))))

let test_predicated_store () =
  (* Grid covers 96 > n = 80 elements; predication protects the tail. *)
  let n = 80 in
  let c = Buffer.create "C" [ n ] in
  let gid = Expr.add (Expr.mul Expr.Block_idx (Expr.int 32)) Expr.Thread_idx in
  let body = Stmt.if_ (Expr.lt gid (Expr.int n)) (Stmt.store c [ gid ] (Expr.float 1.)) in
  let k = Kernel.create ~name:"pred" ~params:[ c ] ~grid_dim:3 ~block_dim:32 body in
  let cv = Array.make n 0. in
  Interp.run k [ (c, cv) ];
  Alcotest.(check bool) "all ones" true (Array.for_all (fun x -> x = 1.) cv)

let test_shared_memory_reverse () =
  (* Stage into shared memory, barrier, read back reversed: exercises the
     barrier actually separating phases. *)
  let n = 64 in
  let a = Buffer.create "A" [ n ] and c = Buffer.create "C" [ n ] in
  let smem = Buffer.create ~scope:Buffer.Shared "smem" [ n ] in
  let body =
    Stmt.seq
      [
        Stmt.store smem [ Expr.Thread_idx ] (Expr.load a [ Expr.Thread_idx ]);
        Stmt.sync;
        Stmt.store c [ Expr.Thread_idx ]
          (Expr.load smem [ Expr.sub (Expr.int (n - 1)) Expr.Thread_idx ]);
      ]
  in
  let k =
    Kernel.create ~shared:[ smem ] ~name:"rev" ~params:[ a; c ] ~grid_dim:1
      ~block_dim:n body
  in
  let av = Array.init n float_of_int and cv = Array.make n 0. in
  Interp.run k [ (a, av); (c, cv) ];
  Alcotest.(check bool) "reversed" true
    (Array.for_all Fun.id (Array.init n (fun i -> cv.(i) = float_of_int (n - 1 - i))))

let test_multi_barrier_accumulate () =
  (* Tree reduction in shared memory with a barrier per level. *)
  let n = 64 in
  let a = Buffer.create "A" [ n ] and c = Buffer.create "C" [ 1 ] in
  let smem = Buffer.create ~scope:Buffer.Shared "smem" [ n ] in
  let stride = Var.fresh "s" in
  let rec levels s acc =
    if s = 0 then List.rev acc
    else
      levels (s / 2)
        (Stmt.seq
           [
             Stmt.if_
               (Expr.lt Expr.Thread_idx (Expr.int s))
               (Stmt.store smem [ Expr.Thread_idx ]
                  (Expr.add
                     (Expr.load smem [ Expr.Thread_idx ])
                     (Expr.load smem [ Expr.add Expr.Thread_idx (Expr.int s) ])));
             Stmt.sync;
           ]
        :: acc)
  in
  ignore stride;
  let body =
    Stmt.seq
      ([
         Stmt.store smem [ Expr.Thread_idx ] (Expr.load a [ Expr.Thread_idx ]);
         Stmt.sync;
       ]
      @ levels (n / 2) []
      @ [
          Stmt.if_
            (Expr.eq Expr.Thread_idx (Expr.int 0))
            (Stmt.store c [ Expr.int 0 ] (Expr.load smem [ Expr.int 0 ]));
        ])
  in
  let k =
    Kernel.create ~shared:[ smem ] ~name:"reduce" ~params:[ a; c ] ~grid_dim:1
      ~block_dim:n body
  in
  let av = Array.init n float_of_int and cv = Array.make 1 0. in
  Interp.run k [ (a, av); (c, cv) ];
  Alcotest.(check (float 1e-9)) "sum" (float_of_int (n * (n - 1) / 2)) cv.(0)

let test_register_privacy () =
  (* Each thread's register accumulator is private. *)
  let n = 32 in
  let c = Buffer.create "C" [ n ] in
  let r = Buffer.create ~scope:Buffer.Register "acc" [ 1 ] in
  let i = Var.fresh "i" in
  let body =
    Stmt.seq
      [
        Stmt.for_ i (Expr.int 4)
          (Stmt.store r [ Expr.int 0 ]
             (Expr.add (Expr.load r [ Expr.int 0 ]) Expr.Thread_idx));
        Stmt.store c [ Expr.Thread_idx ] (Expr.load r [ Expr.int 0 ]);
      ]
  in
  let k = Kernel.create ~regs:[ r ] ~name:"regs" ~params:[ c ] ~grid_dim:1 ~block_dim:n body in
  let cv = Array.make n 0. in
  Interp.run k [ (c, cv) ];
  Alcotest.(check bool) "private accumulators" true
    (Array.for_all Fun.id (Array.init n (fun t -> cv.(t) = float_of_int (4 * t))))

let test_barrier_divergence_detected () =
  let c = Buffer.create "C" [ 32 ] in
  let body =
    Stmt.seq
      [
        Stmt.if_ (Expr.lt Expr.Thread_idx (Expr.int 16)) Stmt.sync;
        Stmt.store c [ Expr.Thread_idx ] (Expr.float 0.);
      ]
  in
  (* Verification rejects this kernel before execution even starts. *)
  let k = Kernel.create ~name:"diverge" ~params:[ c ] ~grid_dim:1 ~block_dim:32 body in
  Alcotest.(check bool) "rejected" true
    (try
       Interp.run k [ (c, Array.make 32 0.) ];
       false
     with Failure _ | Interp.Barrier_divergence _ -> true)

let test_out_of_bounds_detected () =
  let c = Buffer.create "C" [ 8 ] in
  let body = Stmt.store c [ Expr.Thread_idx ] (Expr.float 1.) in
  let k = Kernel.create ~name:"oob" ~params:[ c ] ~grid_dim:1 ~block_dim:32 body in
  Alcotest.(check bool) "raises" true
    (try
       Interp.run k [ (c, Array.make 8 0.) ];
       false
     with Interp.Invalid_access _ -> true)

let test_runtime_barrier_divergence () =
  (* The divergent condition hides behind a let-bound copy of the thread
     index, so static verification cannot see it; the lockstep interpreter
     must still catch the divergence when the barrier executes. *)
  let c = Buffer.create "C" [ 32 ] in
  let x = Var.fresh "x" in
  let body =
    Stmt.seq
      [
        Stmt.let_ x Expr.Thread_idx
          (Stmt.if_ (Expr.lt (Expr.var x) (Expr.int 16)) Stmt.sync);
        Stmt.store c [ Expr.Thread_idx ] (Expr.float 0.);
      ]
  in
  let k = Kernel.create ~name:"rt_diverge" ~params:[ c ] ~grid_dim:1 ~block_dim:32 body in
  Alcotest.(check bool) "passes static verification" true
    (Result.is_ok (Verify.kernel k));
  Alcotest.(check bool) "caught at runtime" true
    (try
       Interp.run k [ (c, Array.make 32 0.) ];
       false
     with Interp.Barrier_divergence _ -> true)

let test_negative_index_detected () =
  (* Indices below zero are as invalid as ones past the end. *)
  let a = Buffer.create "A" [ 32 ] and c = Buffer.create "C" [ 32 ] in
  let body =
    Stmt.store c [ Expr.Thread_idx ]
      (Expr.load a [ Expr.sub Expr.Thread_idx (Expr.int 1) ])
  in
  let k = Kernel.create ~name:"neg" ~params:[ a; c ] ~grid_dim:1 ~block_dim:32 body in
  Alcotest.(check bool) "raises" true
    (try
       Interp.run k [ (a, Array.make 32 0.); (c, Array.make 32 0.) ];
       false
     with Interp.Invalid_access _ -> true)

let test_missing_binding () =
  let c = Buffer.create "C" [ 8 ] in
  let k =
    Kernel.create ~name:"missing" ~params:[ c ] ~grid_dim:1 ~block_dim:1
      (Stmt.store c [ Expr.int 0 ] (Expr.float 1.))
  in
  Alcotest.(check bool) "raises" true
    (try
       Interp.run k [];
       false
     with Invalid_argument _ -> true)

let test_mma_tile () =
  (* One warp computing a 8x8x4 tile with the MMA statement. *)
  let a = Buffer.create "A" [ 8; 4 ] and b = Buffer.create "B" [ 4; 8 ] in
  let c = Buffer.create "C" [ 8; 8 ] in
  let sa = Buffer.create ~scope:Buffer.Shared "sa" [ 8; 4 ] in
  let sb = Buffer.create ~scope:Buffer.Shared "sb" [ 4; 8 ] in
  let sc = Buffer.create ~scope:Buffer.Warp "sc" [ 8; 8 ] in
  let i = Var.fresh "i" in
  let copy_in =
    Stmt.for_ i (Expr.int 1)
      (Stmt.seq
         [
           Stmt.if_
             (Expr.lt Expr.Thread_idx (Expr.int 32))
             (Stmt.seq
                [
                  Stmt.store sa
                    [ Expr.div Expr.Thread_idx (Expr.int 4);
                      Expr.modulo Expr.Thread_idx (Expr.int 4) ]
                    (Expr.load a
                       [ Expr.div Expr.Thread_idx (Expr.int 4);
                         Expr.modulo Expr.Thread_idx (Expr.int 4) ]);
                  Stmt.store sb
                    [ Expr.div Expr.Thread_idx (Expr.int 8);
                      Expr.modulo Expr.Thread_idx (Expr.int 8) ]
                    (Expr.load b
                       [ Expr.div Expr.Thread_idx (Expr.int 8);
                         Expr.modulo Expr.Thread_idx (Expr.int 8) ]);
                ]);
         ])
  in
  let mma =
    Stmt.Mma
      {
        m = 8;
        n = 8;
        k = 4;
        a = sa;
        a_off = [ Expr.int 0; Expr.int 0 ];
        b = sb;
        b_off = [ Expr.int 0; Expr.int 0 ];
        c = sc;
        c_off = [ Expr.int 0; Expr.int 0 ];
      }
  in
  let writeback =
    Stmt.seq
      (List.init 2 (fun r ->
           Stmt.store c
             [ Expr.add (Expr.mul (Expr.int r) (Expr.int 4))
                 (Expr.div Expr.Thread_idx (Expr.int 8));
               Expr.modulo Expr.Thread_idx (Expr.int 8) ]
             (Expr.load sc
                [ Expr.add (Expr.mul (Expr.int r) (Expr.int 4))
                    (Expr.div Expr.Thread_idx (Expr.int 8));
                  Expr.modulo Expr.Thread_idx (Expr.int 8) ])))
  in
  let body = Stmt.seq [ copy_in; Stmt.sync; mma; Stmt.sync; writeback ] in
  let k =
    Kernel.create ~shared:[ sa; sb ] ~warp_bufs:[ sc ] ~name:"mma"
      ~params:[ a; b; c ] ~grid_dim:1 ~block_dim:32 body
  in
  let av = Array.init 32 (fun x -> float_of_int (x mod 5) -. 2.) in
  let bv = Array.init 32 (fun x -> float_of_int (x mod 7) -. 3.) in
  let cv = Array.make 64 0. in
  Interp.run k [ (a, av); (b, bv); (c, cv) ];
  (* Reference. *)
  let expect = Array.make 64 0. in
  for ii = 0 to 7 do
    for jj = 0 to 7 do
      let acc = ref 0. in
      for kk = 0 to 3 do
        acc := !acc +. (av.((ii * 4) + kk) *. bv.((kk * 8) + jj))
      done;
      expect.((ii * 8) + jj) <- !acc
    done
  done;
  Alcotest.(check bool) "mma result" true
    (Array.for_all Fun.id (Array.init 64 (fun x -> Float.abs (cv.(x) -. expect.(x)) < 1e-6)))

let test_select_guards_oob () =
  (* Expr.Select must not evaluate the untaken branch: predicated loads at
     tile edges index out of bounds in the dead branch. *)
  let a = Buffer.create "A" [ 8 ] and c = Buffer.create "C" [ 32 ] in
  let guarded =
    Expr.select
      (Expr.lt Expr.Thread_idx (Expr.int 8))
      (Expr.load a [ Expr.Thread_idx ])
      (Expr.float 0.)
  in
  let k =
    Kernel.create ~name:"guard" ~params:[ a; c ] ~grid_dim:1 ~block_dim:32
      (Stmt.store c [ Expr.Thread_idx ] guarded)
  in
  let av = Array.init 8 float_of_int and cv = Array.make 32 (-1.) in
  Interp.run k [ (a, av); (c, cv) ];
  Alcotest.(check (float 0.)) "in bounds" 3. cv.(3);
  Alcotest.(check (float 0.)) "guarded tail" 0. cv.(20)

let test_multi_warp_mma () =
  (* Two warps, each with its own warp-scope accumulator: warp buffers must
     not alias across warps. *)
  let c = Buffer.create "C" [ 2 ] in
  let frag = Buffer.create ~scope:Buffer.Warp "frag" [ 2; 2 ] in
  let sa = Buffer.create ~scope:Buffer.Shared "sa" [ 2; 2 ] in
  let sb = Buffer.create ~scope:Buffer.Shared "sb" [ 2; 2 ] in
  let warp = Expr.div Expr.Thread_idx (Expr.int 32) in
  let lane = Expr.modulo Expr.Thread_idx (Expr.int 32) in
  let body =
    Stmt.seq
      [
        (* identity A, B = warp-invariant values; frag accumulates per warp *)
        Stmt.if_
          (Expr.lt Expr.Thread_idx (Expr.int 4))
          (Stmt.seq
             [
               Stmt.store sa
                 [ Expr.div Expr.Thread_idx (Expr.int 2);
                   Expr.modulo Expr.Thread_idx (Expr.int 2) ]
                 (Expr.select
                    (Expr.eq
                       (Expr.div Expr.Thread_idx (Expr.int 2))
                       (Expr.modulo Expr.Thread_idx (Expr.int 2)))
                    (Expr.float 1.) (Expr.float 0.));
               Stmt.store sb
                 [ Expr.div Expr.Thread_idx (Expr.int 2);
                   Expr.modulo Expr.Thread_idx (Expr.int 2) ]
                 (Expr.float 2.);
             ]);
        Stmt.sync;
        (* each warp seeds its own fragment with its warp id + 1 *)
        Stmt.if_
          (Expr.eq lane (Expr.int 0))
          (Stmt.store frag [ Expr.int 0; Expr.int 0 ]
             (Expr.add (Expr.mul warp (Expr.float 10.)) (Expr.float 1.)));
        Stmt.sync;
        Stmt.Mma
          {
            m = 2; n = 2; k = 2;
            a = sa; a_off = [ Expr.int 0; Expr.int 0 ];
            b = sb; b_off = [ Expr.int 0; Expr.int 0 ];
            c = frag; c_off = [ Expr.int 0; Expr.int 0 ];
          };
        Stmt.sync;
        Stmt.if_
          (Expr.eq lane (Expr.int 0))
          (Stmt.store c [ warp ] (Expr.load frag [ Expr.int 0; Expr.int 0 ]));
      ]
  in
  let k =
    Kernel.create ~shared:[ sa; sb ] ~warp_bufs:[ frag ] ~name:"warps"
      ~params:[ c ] ~grid_dim:1 ~block_dim:64 body
  in
  let cv = Array.make 2 0. in
  Interp.run k [ (c, cv) ];
  (* frag[0][0] starts at (10w + 1) and gains A.B[0][0] = 2. *)
  Alcotest.(check (float 1e-9)) "warp 0" 3. cv.(0);
  Alcotest.(check (float 1e-9)) "warp 1" 13. cv.(1)

(* --- pipeline pattern detection ------------------------------------------ *)

let pipelined_loop_body reg smem_a glob =
  (* prefetch (global -> regs), compute (reads shared), stage (regs -> shared) *)
  Stmt.seq
    [
      Stmt.store reg [ Expr.int 0 ] (Expr.load glob [ Expr.Thread_idx ]);
      Stmt.store reg [ Expr.int 1 ]
        (Expr.add (Expr.load reg [ Expr.int 1 ]) (Expr.load smem_a [ Expr.Thread_idx ]));
      Stmt.store smem_a [ Expr.Thread_idx ] (Expr.load reg [ Expr.int 0 ]);
      Stmt.sync;
    ]

let test_pipeline_pattern_positive () =
  let glob = Buffer.create "G" [ 64 ] in
  let smem = Buffer.create ~scope:Buffer.Shared "S" [ 64 ] in
  let reg = Buffer.create ~scope:Buffer.Register "R" [ 2 ] in
  let k0 = Var.fresh "k0" in
  let body = Stmt.for_ k0 (Expr.int 8) (pipelined_loop_body reg smem glob) in
  Alcotest.(check bool) "pattern found" true (Pipeline.has_overlap_pattern body)

let test_pipeline_pattern_negative () =
  (* Classic non-pipelined loop: global -> shared directly, sync, compute. *)
  let glob = Buffer.create "G" [ 64 ] in
  let smem = Buffer.create ~scope:Buffer.Shared "S" [ 64 ] in
  let reg = Buffer.create ~scope:Buffer.Register "R" [ 1 ] in
  let k0 = Var.fresh "k0" in
  let body =
    Stmt.for_ k0 (Expr.int 8)
      (Stmt.seq
         [
           Stmt.store smem [ Expr.Thread_idx ] (Expr.load glob [ Expr.Thread_idx ]);
           Stmt.sync;
           Stmt.store reg [ Expr.int 0 ]
             (Expr.add (Expr.load reg [ Expr.int 0 ]) (Expr.load smem [ Expr.Thread_idx ]));
           Stmt.sync;
         ])
  in
  Alcotest.(check bool) "no pattern" false (Pipeline.has_overlap_pattern body);
  let k =
    Kernel.create ~shared:[ smem ] ~regs:[ reg ] ~pipeline_stages:2
      ~name:"fake" ~params:[ glob ] ~grid_dim:1 ~block_dim:64 body
  in
  Alcotest.(check int) "claim downgraded" 1 (Pipeline.effective_stages k)

(* --- traffic extraction --------------------------------------------------- *)

let test_traffic_counts () =
  let a = Buffer.create "A" [ 1024 ] and c = Buffer.create "C" [ 1024 ] in
  let i = Var.fresh "i" in
  let body =
    Stmt.for_ i (Expr.int 4)
      (Stmt.store c
         [ Expr.add (Expr.mul (Expr.var i) (Expr.int 256)) Expr.Thread_idx ]
         (Expr.mul
            (Expr.load a
               [ Expr.add (Expr.mul (Expr.var i) (Expr.int 256)) Expr.Thread_idx ])
            (Expr.float 2.)))
  in
  let k = Kernel.create ~name:"scale" ~params:[ a; c ] ~grid_dim:4 ~block_dim:256 body in
  let t = Traffic.kernel k in
  Alcotest.(check (float 1e-9)) "load bytes/thread" 16. t.Traffic.global_load_bytes;
  Alcotest.(check (float 1e-9)) "store bytes/thread" 16. t.Traffic.global_store_bytes;
  Alcotest.(check (float 1e-9)) "flops/thread" 4. t.Traffic.flops

let test_coalescing_stride () =
  let tid = Expr.Thread_idx in
  Alcotest.(check int) "unit" 1 (Traffic.coalescing_stride tid);
  Alcotest.(check int) "strided"
    128
    (Traffic.coalescing_stride (Expr.mul tid (Expr.int 128)));
  Alcotest.(check int) "broadcast" 0 (Traffic.coalescing_stride (Expr.int 7))

let test_block_reuse () =
  let mk body params = Kernel.create ~name:"br" ~params ~grid_dim:64 ~block_dim:32 body in
  (* every block streams its own disjoint slice: no cross-block reuse *)
  let a = Buffer.create "A" [ 64 * 32 ] and c = Buffer.create "C" [ 64 * 32 ] in
  let idx = Expr.add (Expr.mul Expr.Block_idx (Expr.int 32)) Expr.Thread_idx in
  let disjoint = mk (Stmt.store c [ idx ] (Expr.load a [ idx ])) [ a; c ] in
  Alcotest.(check (float 1e-9)) "disjoint slices" 1.
    (Traffic.block_reuse ~window:8 disjoint);
  (* every block loads the same operand: full reuse across the window *)
  let shared_in = Buffer.create "S" [ 32 ] in
  let shared =
    mk
      (Stmt.store c [ idx ] (Expr.load shared_in [ Expr.Thread_idx ]))
      [ shared_in; c ]
  in
  Alcotest.(check (float 1e-9)) "block-invariant operand" 8.
    (Traffic.block_reuse ~window:8 shared);
  (* half the sites block-invariant, half disjoint, equal weights: the
     window's union traffic is (1/8 + 1) / 2 of naive *)
  let mixed =
    mk
      (Stmt.store c [ idx ]
         (Expr.add
            (Expr.load shared_in [ Expr.Thread_idx ])
            (Expr.load a [ idx ])))
      [ shared_in; a; c ]
  in
  let r = Traffic.block_reuse ~window:8 mixed in
  Alcotest.(check bool)
    (Printf.sprintf "mixed reuse %.3f in (1, 8)" r)
    true
    (r > 1.5 && r < 2.)

(* --- performance model qualitative behaviour ------------------------------ *)

let simple_streaming_kernel ~grid ~block ~iters =
  let a = Buffer.create "A" [ grid * block * iters ] in
  let c = Buffer.create "C" [ grid * block * iters ] in
  let i = Var.fresh "i" in
  let idx =
    Expr.add
      (Expr.mul (Expr.var i) (Expr.int (grid * block)))
      (Expr.add (Expr.mul Expr.Block_idx (Expr.int block)) Expr.Thread_idx)
  in
  let body = Stmt.for_ i (Expr.int iters) (Stmt.store c [ idx ] (Expr.load a [ idx ])) in
  Kernel.create ~name:"stream" ~params:[ a; c ] ~grid_dim:grid ~block_dim:block body

let test_perf_monotone_in_work () =
  let t1 = (Perf.kernel dev (simple_streaming_kernel ~grid:256 ~block:256 ~iters:4)).Perf.latency in
  let t2 = (Perf.kernel dev (simple_streaming_kernel ~grid:256 ~block:256 ~iters:16)).Perf.latency in
  Alcotest.(check bool) "more work is slower" true (t2 > t1 *. 2.

)

let test_perf_bandwidth_plausible () =
  (* A large streaming kernel should land near memory bandwidth: moving
     2 * 256MB at ~936GB/s is ~0.57 ms; accept a generous band. *)
  let k = simple_streaming_kernel ~grid:4096 ~block:256 ~iters:64 in
  let e = Perf.kernel dev k in
  let bytes = 2. *. 4. *. float_of_int (4096 * 256 * 64) in
  let ideal = bytes /. dev.Device.mem_bandwidth in
  Alcotest.(check bool) "within 4x of roofline" true
    (e.Perf.latency > ideal *. 0.9 && e.Perf.latency < ideal *. 4.)

let test_perf_infeasible_smem () =
  let a = Buffer.create "A" [ 64 ] in
  let smem = Buffer.create ~scope:Buffer.Shared "S" [ 1024; 64 ] (* 256 KB *) in
  let k =
    Kernel.create ~shared:[ smem ] ~name:"too_big" ~params:[ a ] ~grid_dim:1
      ~block_dim:64
      (Stmt.store smem [ Expr.int 0; Expr.int 0 ] (Expr.float 0.))
  in
  let e = Perf.kernel dev k in
  Alcotest.(check bool) "infeasible" false e.Perf.feasible

let test_perf_occupancy_small_grid () =
  (* A grid with a single block cannot saturate the device: latency should
     be much worse than the same work spread over many blocks. *)
  let one = simple_streaming_kernel ~grid:1 ~block:256 ~iters:1024 in
  let many = simple_streaming_kernel ~grid:1024 ~block:256 ~iters:1 in
  let t_one = (Perf.kernel dev one).Perf.latency in
  let t_many = (Perf.kernel dev many).Perf.latency in
  Alcotest.(check bool) "parallelism wins" true (t_one > t_many *. 4.)

let test_perf_wave_quantization () =
  (* Same per-block work, grids straddling a wave boundary. *)
  let block = 256 in
  let k_grid g = simple_streaming_kernel ~grid:g ~block ~iters:8 in
  let e1 = Perf.kernel dev (k_grid 492) in
  (* 82 SMs x 6 blocks/SM = 492: exactly one wave *)
  let e2 = Perf.kernel dev (k_grid 493) in
  Alcotest.(check bool) "wave boundary" true (e2.Perf.waves = e1.Perf.waves + 1)

let test_a100_streams_faster () =
  (* More bandwidth: a large streaming kernel finishes sooner on the A100
     device model, while a CUDA-core-bound kernel does not. *)
  let k = simple_streaming_kernel ~grid:4096 ~block:256 ~iters:64 in
  let t3090 = (Perf.kernel Device.rtx3090 k).Perf.latency in
  let ta100 = (Perf.kernel Device.a100 k).Perf.latency in
  Alcotest.(check bool) "bandwidth-bound kernel faster on a100" true
    (ta100 < t3090)

let () =
  Alcotest.run "hidet_gpu"
    [
      ( "interp",
        [
          Alcotest.test_case "vector add" `Quick test_vector_add;
          Alcotest.test_case "predicated store" `Quick test_predicated_store;
          Alcotest.test_case "shared memory reverse" `Quick test_shared_memory_reverse;
          Alcotest.test_case "tree reduction" `Quick test_multi_barrier_accumulate;
          Alcotest.test_case "register privacy" `Quick test_register_privacy;
          Alcotest.test_case "barrier divergence" `Quick test_barrier_divergence_detected;
          Alcotest.test_case "out of bounds" `Quick test_out_of_bounds_detected;
          Alcotest.test_case "runtime barrier divergence" `Quick
            test_runtime_barrier_divergence;
          Alcotest.test_case "negative index" `Quick test_negative_index_detected;
          Alcotest.test_case "missing binding" `Quick test_missing_binding;
          Alcotest.test_case "mma tile" `Quick test_mma_tile;
          Alcotest.test_case "select guards OOB" `Quick test_select_guards_oob;
          Alcotest.test_case "multi-warp mma" `Quick test_multi_warp_mma;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "positive" `Quick test_pipeline_pattern_positive;
          Alcotest.test_case "negative + downgrade" `Quick test_pipeline_pattern_negative;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "counts" `Quick test_traffic_counts;
          Alcotest.test_case "coalescing stride" `Quick test_coalescing_stride;
          Alcotest.test_case "block reuse" `Quick test_block_reuse;
        ] );
      ( "perf_model",
        [
          Alcotest.test_case "monotone in work" `Quick test_perf_monotone_in_work;
          Alcotest.test_case "bandwidth plausible" `Quick test_perf_bandwidth_plausible;
          Alcotest.test_case "infeasible smem" `Quick test_perf_infeasible_smem;
          Alcotest.test_case "small grid underutilizes" `Quick test_perf_occupancy_small_grid;
          Alcotest.test_case "wave quantization" `Quick test_perf_wave_quantization;
          Alcotest.test_case "a100 bandwidth" `Quick test_a100_streams_faster;
        ] );
    ]
