(* hidetc: command-line driver for the Hidet reproduction.

   Subcommands:
     compile  — compile a model with an engine; report latency / tuning cost
                and optionally dump the generated CUDA C
     bench    — compare all engines on one model
     models   — list the model zoo
     inspect  — print a model's computation graph *)

open Cmdliner
module M = Hidet_models.Models
module G = Hidet_graph.Graph
module E = Hidet_runtime.Engine
module Plan = Hidet_runtime.Plan
module HE = Hidet.Hidet_engine
module Lib = Hidet_baselines.Library_engine
module IC = Hidet_baselines.Input_centric

let dev = Hidet_gpu.Device.rtx3090

let engines : (string * (module E.S)) list =
  [
    ("hidet", (module HE));
    ("pytorch", (module Lib.Pytorch));
    ("onnxruntime", (module Lib.Ort));
    ("tensorrt", (module Lib.Tensorrt));
    ("autotvm", (module IC.Autotvm));
    ("ansor", (module IC.Ansor));
  ]

let model_names = List.map fst M.all

let model_arg =
  let doc =
    Printf.sprintf "Model to compile: %s." (String.concat ", " model_names)
  in
  Arg.(
    required
    & opt (some (enum (List.map (fun n -> (n, n)) model_names))) None
    & info [ "model"; "m" ] ~docv:"MODEL" ~doc)

let model_opt_arg =
  let doc =
    Printf.sprintf "Model to compile: %s." (String.concat ", " model_names)
  in
  Arg.(
    value
    & opt (some (enum (List.map (fun n -> (n, n)) model_names))) None
    & info [ "model"; "m" ] ~docv:"MODEL" ~doc)

let batch_arg =
  Arg.(value & opt int 1 & info [ "batch"; "b" ] ~docv:"N" ~doc:"Batch size.")

let engine_arg =
  let doc =
    Printf.sprintf "Engine: %s." (String.concat ", " (List.map fst engines))
  in
  Arg.(
    value
    & opt (enum (List.map (fun (n, _) -> (n, n)) engines)) "hidet"
    & info [ "engine"; "e" ] ~docv:"ENGINE" ~doc)

let dump_cuda_arg =
  Arg.(
    value & flag
    & info [ "dump-cuda" ] ~doc:"Print the generated CUDA C translation unit.")

let breakdown_arg =
  Arg.(
    value & flag
    & info [ "breakdown" ]
        ~doc:"Print the per-step latency breakdown of the compiled plan.")

let report (r : E.result) =
  Printf.printf "model:        %s\n" r.E.model;
  Printf.printf "engine:       %s\n" r.E.engine;
  Printf.printf "latency:      %.3f ms (predicted, %s)\n" (r.E.latency *. 1e3)
    dev.Hidet_gpu.Device.name;
  Printf.printf "tuning cost:  %.0f simulated seconds (%.2f h), fresh\n"
    r.E.tuning_cost
    (r.E.tuning_cost /. 3600.);
  if r.E.cached_tuning_cost > 0. then
    Printf.printf "              %.0f simulated seconds served from the schedule cache\n"
      r.E.cached_tuning_cost;
  Printf.printf "tuning wall:  %.3f s on this machine\n" r.E.tuning_wall;
  Printf.printf "compile wall: %.2f s on this machine\n" r.E.compile_wall;
  Printf.printf "kernels:      %d\n" r.E.kernel_count

let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"PATH"
        ~doc:
          "Warm-start the schedule cache from \\$(docv) (if it exists) and \
           save it back after compiling, so repeated runs perform zero fresh \
           tuning trials.")

let with_schedule_cache path f =
  match path with
  | None -> f ()
  | Some path ->
    (if Sys.file_exists path then
       match Hidet_sched.Schedule_cache.load path with
       | Ok n -> Printf.printf "schedule cache: loaded %d entries from %s\n" n path
       | Error msg ->
         Printf.eprintf "schedule cache: ignoring %s (%s)\n" path msg);
    f ();
    (match Hidet_sched.Schedule_cache.save path with
    | () ->
      Printf.printf "schedule cache: saved %d entries to %s\n"
        (Hidet_sched.Schedule_cache.size ()) path
    | exception Sys_error msg ->
      Printf.eprintf "schedule cache: could not save %s (%s)\n" path msg)

let file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "file"; "f" ] ~docv:"PATH"
        ~doc:"Compile a graph saved in the HGF text format instead of a zoo model.")

let graph_of model file batch =
  match file with
  | Some path -> Hidet_graph.Graph_io.load path
  | None -> (
    match model with
    | Some m -> M.by_name ~batch m
    | None -> failwith "pass --model or --file")

let compile_cmd =
  let run model batch engine dump_cuda breakdown file cache =
    let g = graph_of model file batch in
    let (module Eng : E.S) = List.assoc engine engines in
    let r = ref None in
    with_schedule_cache cache (fun () -> r := Some (Eng.compile dev g));
    let r = Option.get !r in
    report r;
    (if breakdown then
       match r.E.plan with
       | Some plan ->
         print_endline "\nper-step latency breakdown (slowest first):";
         let steps =
           List.map
             (fun (s : Plan.step) ->
               (Hidet_sched.Compiled.latency dev s.Plan.compiled,
                s.Plan.compiled.Hidet_sched.Compiled.name))
             plan.Plan.steps
         in
         List.iter
           (fun (l, n) -> Printf.printf "  %9.1f us  %s\n" (l *. 1e6) n)
           (List.sort (fun (a, _) (b, _) -> compare b a) steps)
       | None -> prerr_endline "engine produced no executable plan");
    if dump_cuda then
      match r.E.plan with
      | Some plan -> print_string (Plan.cuda_source plan)
      | None -> prerr_endline "engine produced no executable plan"
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile one model (or saved graph) with one engine.")
    Term.(
      const run $ model_opt_arg $ batch_arg $ engine_arg $ dump_cuda_arg
      $ breakdown_arg $ file_arg $ cache_arg)

let bench_cmd =
  let run model batch cache =
    let header = Printf.sprintf "%-14s %12s %14s %10s" "engine" "latency(ms)"
        "tuning(h)" "kernels" in
    print_endline header;
    with_schedule_cache cache (fun () ->
        List.iter
          (fun (name, (module Eng : E.S)) ->
            let r = Eng.compile dev (M.by_name ~batch model) in
            Printf.printf "%-14s %12.3f %14.2f %10d\n%!" name (r.E.latency *. 1e3)
              (E.total_tuning_cost r /. 3600.)
              r.E.kernel_count)
          engines)
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Compare every engine on one model.")
    Term.(const run $ model_arg $ batch_arg $ cache_arg)

let models_cmd =
  let run () =
    List.iter
      (fun (name, mk) ->
        let g = mk () in
        Printf.printf "%-14s %4d nodes  %7.2f GFLOPs\n" name (G.num_nodes g)
          (G.flops g /. 1e9))
      M.all
  in
  Cmd.v (Cmd.info "models" ~doc:"List the model zoo.") Term.(const run $ const ())

let export_cmd =
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"PATH" ~doc:"Output file (HGF text format).")
  in
  let run model batch out =
    let g = M.by_name ~batch model in
    Hidet_graph.Graph_io.save g out;
    Printf.printf "wrote %s (%d nodes)\n" out (G.num_nodes g)
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Serialize a zoo model to the HGF text format.")
    Term.(const run $ model_arg $ batch_arg $ out_arg)

let inspect_cmd =
  let run model batch =
    Format.printf "%a@." G.pp (M.by_name ~batch model)
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Print a model's computation graph.")
    Term.(const run $ model_arg $ batch_arg)

let () =
  let info =
    Cmd.info "hidetc" ~version:"1.0.0"
      ~doc:
        "OCaml reproduction of Hidet (ASPLOS 2023): task-mapping tensor \
         program compiler on a simulated GPU."
  in
  exit (Cmd.eval (Cmd.group info [ compile_cmd; bench_cmd; models_cmd; inspect_cmd; export_cmd ]))
